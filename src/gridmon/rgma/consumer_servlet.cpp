#include "gridmon/rgma/consumer_servlet.hpp"

#include <set>

namespace gridmon::rgma {

ConsumerServlet::ConsumerServlet(net::Network& net, host::Host& host,
                                 net::Interface& nic, std::string name,
                                 Registry& registry,
                                 ConsumerServletConfig config)
    : net_(net),
      host_(host),
      nic_(nic),
      name_(std::move(name)),
      registry_(registry),
      config_(config),
      pool_(host.simulation(), config.pool_size),
      port_(host.simulation(), config.backlog) {}

void ConsumerServlet::add_producer_servlet(ProducerServlet& servlet) {
  servlets_[servlet.name()] = &servlet;
}

bool ConsumerServlet::producer_allowed(const std::string& servlet) {
  if (!resilience_.client.enabled) return true;
  auto [it, inserted] = producer_breakers_.try_emplace(
      servlet, resilience::CircuitBreaker(resilience_.client.breaker));
  return it->second.allow(host_.simulation().now());
}

void ConsumerServlet::record_producer(const std::string& servlet,
                                      bool success) {
  if (!resilience_.client.enabled) return;
  auto it = producer_breakers_.find(servlet);
  if (it != producer_breakers_.end()) {
    it->second.record(host_.simulation().now(), success);
  }
}

sim::Task<RgmaReply> ConsumerServlet::query(net::Interface& client,
                                            std::string table,
                                            std::string where,
                                            trace::Ctx ctx) {
  auto& sim = host_.simulation();
  {
    trace::Span tool(ctx, trace::SpanKind::ClientTool);
    co_await sim.delay(config_.client_latency);
  }
  if (!co_await net_.connect(client, nic_, ctx, config_.connect_timeout)) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Timeout, name_);
    RgmaReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    RgmaReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    if (ctx) {
      ctx.col->instant(ctx,
                       reply.timed_out ? trace::SpanKind::Timeout
                                       : trace::SpanKind::Refused,
                       name_);
    }
    co_return reply;
  }
  net::AdmissionSlot slot(&port_);
  if (!co_await net_.transfer(client, nic_, config_.request_bytes, ctx,
                              trace::SpanKind::RequestSend,
                              config_.connect_timeout)) {
    RgmaReply reply;
    reply.timed_out = true;
    co_return reply;
  }

  RgmaReply reply;
  {
    trace::Span wait(ctx, trace::SpanKind::PoolWait, name_);
    auto lease = co_await pool_.acquire();
    wait.end();
    {
      trace::Span cpu(ctx, trace::SpanKind::Cpu, "query_base",
                      config_.query_base_cpu);
      co_await host_.cpu().consume(config_.query_base_cpu);
    }
    {
      trace::Span servlet(ctx, trace::SpanKind::Servlet);
      co_await sim.delay(config_.servlet_latency);
    }

    // Mediation step 1: which producers hold this table?
    auto producers = co_await registry_.lookup(nic_, table, ctx);

    // Step 2: query each hosting servlet once.
    std::set<std::string> seen;
    for (const auto& info : producers) {
      if (!seen.insert(info.servlet).second) continue;
      auto it = servlets_.find(info.servlet);
      if (it == servlets_.end()) continue;
      if (!producer_allowed(info.servlet)) {
        // Breaker open toward this producer: skip it this round instead
        // of stalling the mediation on a dead servlet's timeout.
        reply.failed = true;
        continue;
      }
      RgmaReply part = co_await it->second->select(nic_, table, where, ctx);
      record_producer(info.servlet,
                      part.admitted && !part.timed_out && !part.failed);
      if (!part.admitted) {
        // A dead ProducerServlet shrinks the merged result silently —
        // mediation degrades rather than fails outright.
        if (part.timed_out || part.failed) reply.failed = true;
        continue;
      }
      if (part.stale) reply.stale = true;
      reply.rows += part.rows;
      reply.response_bytes += part.response_bytes;
    }
    {
      trace::Span merge(ctx, trace::SpanKind::Merge, name_,
                        static_cast<double>(reply.rows));
      co_await host_.cpu().consume(config_.merge_row_cpu *
                                   static_cast<double>(reply.rows));
    }
    reply.response_bytes += 128;
    reply.admitted = true;
    if (reply.rows > 0) reply.failed = false;  // partial results still count
  }
  if (!co_await net_.transfer(nic_, client, reply.response_bytes, ctx,
                              trace::SpanKind::ResponseSend,
                              config_.connect_timeout)) {
    reply.timed_out = true;
  }
  co_return reply;
}

sim::Task<bool> ConsumerServlet::subscribe(
    net::Interface& consumer, std::string table,
    std::string predicate, ProducerServlet::RowCallback on_row) {
  co_await net_.transfer(consumer, nic_, config_.request_bytes);
  auto lease = co_await pool_.acquire();
  co_await host_.cpu().consume(config_.query_base_cpu);
  auto producers = co_await registry_.lookup(nic_, table);
  bool any = false;
  std::set<std::string> seen;
  for (const auto& info : producers) {
    if (!seen.insert(info.servlet).second) continue;
    auto it = servlets_.find(info.servlet);
    if (it == servlets_.end()) continue;
    // The producer pushes straight to the consumer's interface.
    it->second->subscribe(consumer, table, predicate, on_row);
    any = true;
  }
  co_return any;
}

}  // namespace gridmon::rgma
