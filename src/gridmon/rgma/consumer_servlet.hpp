#pragma once

/// \file consumer_servlet.hpp
/// The R-GMA ConsumerServlet: mediates a Consumer's SQL query — consults
/// the Registry for suitable Producers, queries their ProducerServlets,
/// merges the rows, and returns them. Also brokers streaming
/// subscriptions (the push model MDS lacks).

#include <functional>
#include <map>
#include <string>

#include "gridmon/host/host.hpp"
#include "gridmon/net/network.hpp"
#include "gridmon/net/server_port.hpp"
#include "gridmon/rgma/producer_servlet.hpp"
#include "gridmon/rgma/registry.hpp"
#include "gridmon/sim/resource.hpp"
#include "gridmon/sim/task.hpp"

namespace gridmon::rgma {

struct ConsumerServletConfig {
  int pool_size = 4;
  int backlog = 40;
  /// Java consumer API overhead per call on the client side.
  double client_latency = 0.1;
  /// Servlet CPU per mediated query.
  double query_base_cpu = 0.12;
  /// Non-CPU blocking time per request in the servlet container.
  double servlet_latency = 0.25;
  /// CPU per merged row.
  double merge_row_cpu = 0.0002;
  double request_bytes = 600;
  double row_bytes = 120;
  /// Client/transfer patience on a dead path (blackholed SYN, partitioned
  /// WAN). Only consulted under faults.
  double connect_timeout = 75.0;
};

class ConsumerServlet {
 public:
  ConsumerServlet(net::Network& net, host::Host& host, net::Interface& nic,
                  std::string name, Registry& registry,
                  ConsumerServletConfig config = {});

  const std::string& name() const noexcept { return name_; }
  host::Host& host() noexcept { return host_; }
  net::Interface& nic() noexcept { return nic_; }
  net::ServerPort& port() noexcept { return port_; }

  /// Install the overload-control layer: server policy on the listen
  /// port, a per-ProducerServlet circuit breaker on the mediation fan-out.
  void set_resilience(const resilience::Config& config) {
    resilience_ = config;
    port_.set_policy(config.server);
  }

  /// Make a ProducerServlet resolvable by the name the Registry returns.
  void add_producer_servlet(ProducerServlet& servlet);

  /// Full mediated pull query for `table` on behalf of a consumer at
  /// `client`.
  sim::Task<RgmaReply> query(net::Interface& client,
                             std::string table,
                             std::string where = "", trace::Ctx ctx = {});

  /// Attach resource timelines ("<name>.pool") to a trace collector.
  void instrument(trace::Collector& col) {
    pool_.set_probe(&col.track(name_ + ".pool"));
  }

  /// Set up a streaming subscription: rows of `table` matching
  /// `predicate` flow producer -> consumer as they are published.
  sim::Task<bool> subscribe(net::Interface& consumer,
                            std::string table,
                            std::string predicate,
                            ProducerServlet::RowCallback on_row);

  // ---- fault injection ----
  /// Crash the ConsumerServlet container (blackhole: host gone). It holds
  /// no monitoring state of its own, so restart is immediate.
  void crash(bool blackhole = false) { port_.crash(blackhole); }
  void restart() { port_.restart(); }
  bool process_up() const noexcept { return port_.up(); }

 private:
  /// Per-producer circuit breaker (pass-throughs while client disabled).
  bool producer_allowed(const std::string& servlet);
  void record_producer(const std::string& servlet, bool success);

  net::Network& net_;
  host::Host& host_;
  net::Interface& nic_;
  std::string name_;
  Registry& registry_;
  ConsumerServletConfig config_;
  std::map<std::string, ProducerServlet*> servlets_;
  sim::Resource pool_;
  net::ServerPort port_;
  resilience::Config resilience_{};
  std::map<std::string, resilience::CircuitBreaker> producer_breakers_;
};

}  // namespace gridmon::rgma
