#include "gridmon/rgma/producer_servlet.hpp"

#include "gridmon/rdbms/sql_parser.hpp"

namespace gridmon::rgma {

ProducerServlet::ProducerServlet(net::Network& net, host::Host& host,
                                 net::Interface& nic, std::string name,
                                 ProducerServletConfig config)
    : net_(net),
      host_(host),
      nic_(nic),
      name_(std::move(name)),
      config_(config),
      pool_(host.simulation(), config.pool_size),
      port_(host.simulation(), config.backlog) {}

Producer& ProducerServlet::add_producer(const std::string& producer_name,
                                        std::string table,
                                        const std::string& predicate,
                                        std::size_t max_rows) {
  rdbms::Schema schema({{"host", rdbms::ColumnType::Text},
                        {"metric", rdbms::ColumnType::Text},
                        {"value", rdbms::ColumnType::Real},
                        {"ts", rdbms::ColumnType::Real}});
  producers_.push_back(std::make_unique<Producer>(
      producer_name, table, std::move(schema), predicate, max_rows));
  return *producers_.back();
}

Producer* ProducerServlet::find_producer(const std::string& name) {
  for (auto& p : producers_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

sim::Task<void> ProducerServlet::publish(Producer& producer, rdbms::Row row) {
  // Storing a tuple costs a sliver of servlet CPU.
  co_await host_.cpu().consume(0.001);
  last_publish_at_ = host_.simulation().now();
  for (auto& sub : subscriptions_) {
    if (sub.table != producer.table()) continue;
    if (sub.predicate) {
      rdbms::RowContext ctx{&producer.data().schema(), &row};
      auto keep = rdbms::SqlExpr::truth(sub.predicate->eval(ctx));
      if (!keep || !*keep) continue;
    }
    host_.simulation().spawn(push_row(sub.consumer, sub.on_row, row));
  }
  producer.publish(std::move(row));
}

sim::Task<void> ProducerServlet::push_row(net::Interface* consumer,
                                          RowCallback on_row,
                                          rdbms::Row row) {
  co_await host_.cpu().consume(config_.stream_send_cpu);
  co_await net_.transfer(nic_, *consumer, config_.row_bytes);
  ++tuples_pushed_;
  if (on_row) on_row(row);
}

void ProducerServlet::subscribe(net::Interface& consumer,
                                std::string table,
                                const std::string& predicate,
                                RowCallback on_row) {
  Subscription sub;
  sub.consumer = &consumer;
  sub.table = table;
  if (!predicate.empty()) {
    sub.predicate = rdbms::sql_parse_expression(predicate);
  }
  sub.on_row = std::move(on_row);
  subscriptions_.push_back(std::move(sub));
}

sim::Task<RgmaReply> ProducerServlet::select(net::Interface& from,
                                             std::string table,
                                             std::string where,
                                             trace::Ctx ctx) {
  trace::Span op(ctx, trace::SpanKind::ProducerSelect, name_);
  if (!co_await net_.transfer(from, nic_, config_.request_bytes, op.ctx(),
                              trace::SpanKind::RequestSend,
                              config_.connect_timeout)) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Timeout, name_);
    RgmaReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    RgmaReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    if (ctx) {
      ctx.col->instant(ctx,
                       reply.timed_out ? trace::SpanKind::Timeout
                                       : trace::SpanKind::Refused,
                       name_);
    }
    co_return reply;
  }
  net::AdmissionSlot slot(&port_);

  RgmaReply reply;
  {
    trace::Span wait(op.ctx(), trace::SpanKind::PoolWait, name_);
    auto lease = co_await pool_.acquire();
    wait.end();
    {
      trace::Span cpu(op.ctx(), trace::SpanKind::Cpu, "query_base",
                      config_.query_base_cpu);
      co_await host_.cpu().consume(config_.query_base_cpu);
    }
    {
      trace::Span servlet(op.ctx(), trace::SpanKind::Servlet);
      co_await host_.simulation().delay(config_.servlet_latency);
    }

    trace::Span sql(op.ctx(), trace::SpanKind::SqlExecute, table);
    rdbms::SqlExprPtr predicate;
    if (!where.empty()) predicate = rdbms::sql_parse_expression(where);

    std::size_t examined = 0;
    std::size_t producers_hit = 0;
    for (auto& producer : producers_) {
      if (producer->table() != table) continue;
      ++producers_hit;
      producer->data().scan([&](std::size_t, const rdbms::Row& row) {
        ++examined;
        bool keep = true;
        if (predicate) {
          rdbms::RowContext row_ctx{&producer->data().schema(), &row};
          auto t = rdbms::SqlExpr::truth(predicate->eval(row_ctx));
          keep = t.has_value() && *t;
        }
        if (keep) ++reply.rows;
        return true;
      });
    }
    sql.set_arg(static_cast<double>(examined));
    co_await host_.cpu().consume(
        config_.per_producer_cpu * static_cast<double>(producers_hit) +
        config_.row_cpu * static_cast<double>(examined));
    sql.end();
    reply.response_bytes =
        128 + config_.row_bytes * static_cast<double>(reply.rows);
    reply.admitted = true;
    if (config_.stale_after > 0 && producers_hit > 0 &&
        host_.simulation().now() - last_publish_at_ > config_.stale_after) {
      // The buffers still answer, but nothing has been published for a
      // while: latest-N semantics silently serve old measurements.
      reply.stale = true;
    }
  }
  if (!co_await net_.transfer(nic_, from, reply.response_bytes, op.ctx(),
                              trace::SpanKind::ResponseSend,
                              config_.connect_timeout)) {
    reply.timed_out = true;
  }
  co_return reply;
}

sim::Task<RgmaReply> ProducerServlet::client_query(net::Interface& client,
                                                   std::string table,
                                                   std::string where,
                                                   trace::Ctx ctx) {
  {
    trace::Span tool(ctx, trace::SpanKind::ClientTool);
    co_await host_.simulation().delay(config_.client_latency);
  }
  if (!co_await net_.connect(client, nic_, ctx, config_.connect_timeout)) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Timeout, name_);
    RgmaReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  co_return co_await select(client, table, where, ctx);
}

void ProducerServlet::start_registration(Registry& registry) {
  if (registering_) return;
  registering_ = true;
  host_.simulation().spawn(registration_loop(registry));
}

sim::Task<void> ProducerServlet::registration_loop(Registry& registry) {
  auto& sim = host_.simulation();
  for (;;) {
    // A crashed servlet stops renewing leases; the Registry ages its
    // producers out and re-learns them after restart.
    if (port_.up()) {
      // Indexed loop: register_producer suspends every iteration, and
      // producers_ must be re-entered through the index afterwards
      // rather than through a live iterator.
      for (std::size_t i = 0; i < producers_.size(); ++i) {
        ProducerInfo info{producers_[i]->name(), producers_[i]->table(),
                          name_, producers_[i]->predicate()};
        co_await registry.register_producer(nic_, info);
      }
    }
    co_await sim.delay(config_.reregister_interval);
    if (!registering_) co_return;
  }
}

void ProducerServlet::start_publishing(double interval) {
  if (publishing_) return;
  publishing_ = true;
  host_.simulation().spawn(publisher_loop(interval));
}

sim::Task<void> ProducerServlet::publisher_loop(double interval) {
  auto& sim = host_.simulation();
  for (;;) {
    if (!publishers_down_ && port_.up()) {
      ++publish_sequence_;
      // Indexed loop: publish suspends every iteration (see above).
      for (std::size_t i = 0; i < producers_.size(); ++i) {
        rdbms::Row row;
        row.push_back(rdbms::Value::text(name_));
        row.push_back(rdbms::Value::text("seq"));
        row.push_back(
            rdbms::Value::real(static_cast<double>(publish_sequence_)));
        row.push_back(rdbms::Value::real(sim.now()));
        co_await publish(*producers_[i], std::move(row));
      }
    }
    co_await sim.delay(interval);
    if (!publishing_) co_return;
  }
}

}  // namespace gridmon::rgma
