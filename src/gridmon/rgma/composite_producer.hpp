#pragma once

/// \file composite_producer.hpp
/// The aggregate information server R-GMA lacked. The paper (§2.4,
/// §3.6): "this component could easily be built for R-GMA by using a
/// composite Consumer/Producer that registered with the data streams of
/// a number of Producers, and served the data in an aggregated form."
///
/// That is exactly this class: its consumer half subscribes to the data
/// streams of source ProducerServlets; every received tuple is
/// re-published through its producer half (one merged Producer behind a
/// standard ProducerServlet), which answers queries like any other
/// information server — filling the "None" cell of Table 1.

#include <cstdint>
#include <memory>
#include <string>

#include "gridmon/host/host.hpp"
#include "gridmon/net/network.hpp"
#include "gridmon/rgma/producer_servlet.hpp"
#include "gridmon/rgma/registry.hpp"
#include "gridmon/sim/task.hpp"

namespace gridmon::rgma {

struct CompositeProducerConfig {
  /// Bounded history of the merged stream (latest-N rows overall).
  std::size_t merge_history = 5000;
  /// CPU to ingest one pushed tuple (consumer half, re-publish).
  double ingest_cpu = 0.0006;
  /// Serving-side servlet configuration.
  ProducerServletConfig servlet;
};

class CompositeProducer {
 public:
  CompositeProducer(net::Network& net, host::Host& host, net::Interface& nic,
                    std::string name, std::string table,
                    CompositeProducerConfig config = {});

  const std::string& name() const noexcept { return name_; }
  const std::string& table() const noexcept { return table_; }

  /// The serving half: clients query it like any ProducerServlet.
  ProducerServlet& servlet() noexcept { return *servlet_; }

  /// Subscribe to a source servlet's stream of `table()`; its future
  /// tuples flow into the merged store.
  void attach_source(ProducerServlet& source);

  /// Register the merged producer with the Registry (so ConsumerServlets
  /// can discover the aggregate) and keep its lease fresh.
  void start_registration(Registry& registry) {
    servlet_->start_registration(registry);
  }

  /// Client query against the merged store.
  sim::Task<RgmaReply> client_query(net::Interface& client,
                                    std::string where = "") {
    return servlet_->client_query(client, table_, std::move(where));
  }

  std::size_t sources() const noexcept { return sources_; }
  std::uint64_t tuples_ingested() const noexcept { return ingested_; }
  std::size_t merged_rows() const { return merged_->data().row_count(); }

 private:
  sim::Task<void> ingest(rdbms::Row row);

  net::Network& net_;
  host::Host& host_;
  net::Interface& nic_;
  std::string name_;
  std::string table_;
  CompositeProducerConfig config_;
  std::unique_ptr<ProducerServlet> servlet_;
  Producer* merged_;
  std::size_t sources_ = 0;
  std::uint64_t ingested_ = 0;
};

}  // namespace gridmon::rgma
