#include "gridmon/rgma/registry.hpp"

namespace gridmon::rgma {
namespace {

std::string quote(const std::string& s) {
  return rdbms::Value::text(s).to_string();
}

}  // namespace

Registry::Registry(net::Network& net, host::Host& host, net::Interface& nic,
                   RegistryConfig config)
    : net_(net),
      host_(host),
      nic_(nic),
      config_(config),
      pool_(host.simulation(), config.pool_size),
      port_(host.simulation(), config.backlog) {
  db_.execute(
      "CREATE TABLE producers (producer TEXT, tablename TEXT, servlet TEXT, "
      "predicate TEXT, expires REAL)");
  db_.execute("CREATE INDEX ON producers (tablename)");
  if (config_.store.enabled()) {
    store_ = std::make_unique<store::TableStore>(host, db_.table("producers"),
                                                 config_.store);
    db_.table("producers").set_journal(store_.get());
    store_->log().start();
  }
}

void Registry::crash(bool blackhole) {
  port_.crash(blackhole);
  if (store_) store_->log().crash();
  rows_at_crash_ = db_.table("producers").row_count();
  awaiting_recovery_ = true;
  recovered_at_ = -1;
  // The in-process producer table dies with the servlet container. With
  // durability off producers re-appear only as their servlets renew
  // leases; the store's crash() above already closed the log, so this
  // clearing sweep journals nothing.
  db_.execute("DELETE FROM producers WHERE expires < 1e300");
  db_.table("producers").vacuum();
}

void Registry::restart() {
  if (store_) {
    host_.simulation().spawn(recover_then_restart());
    return;
  }
  port_.restart();
  note_recovery_progress();
}

sim::Task<void> Registry::recover_then_restart() {
  co_await store_->log().recover();
  port_.restart();
  note_recovery_progress();
}

void Registry::note_recovery_progress() {
  if (awaiting_recovery_ && registered_count() >= rows_at_crash_) {
    recovered_at_ = host_.simulation().now();
    awaiting_recovery_ = false;
  }
}

sim::Task<bool> Registry::register_producer(net::Interface& from,
                                            ProducerInfo info) {
  co_await net_.transfer(from, nic_, config_.request_bytes);
  if (!port_.try_admit()) co_return false;
  net::AdmissionSlot slot(&port_);
  auto lease = co_await pool_.acquire();
  co_await host_.cpu().consume(config_.register_cpu);

  double expires = host_.simulation().now() + config_.lease_seconds;
  auto existing = db_.execute("SELECT producer FROM producers WHERE producer = " +
                              quote(info.producer));
  co_await host_.cpu().consume(config_.row_cpu *
                               static_cast<double>(existing.rows_examined));
  if (!existing.rows.empty()) {
    db_.execute("DELETE FROM producers WHERE producer = " +
                quote(info.producer));
  }
  db_.execute("INSERT INTO producers VALUES (" + quote(info.producer) + ", " +
              quote(info.table) + ", " + quote(info.servlet) + ", " +
              quote(info.predicate) + ", " + std::to_string(expires) + ")");
  ++registrations_;
  // Durable modes: the registration is acknowledged only once its WAL
  // records reached the platter (group commit batches concurrent ones).
  if (store_) co_await store_->log().commit();
  note_recovery_progress();
  co_await net_.transfer(nic_, from, 128);  // ack
  co_return true;
}

sim::Task<rdbms::QueryResult> Registry::run_lookup(std::string table,
                                                   trace::Ctx ctx) {
  trace::Span sql(ctx, trace::SpanKind::SqlExecute, "producers");
  double now = host_.simulation().now();
  auto result = db_.execute(
      "SELECT producer, tablename, servlet, predicate FROM producers WHERE "
      "tablename = " +
      quote(table) + " AND expires >= " + std::to_string(now));
  sql.set_arg(static_cast<double>(result.rows_examined));
  co_await host_.cpu().consume(config_.row_cpu *
                               static_cast<double>(result.rows_examined));
  co_return result;
}

sim::Task<std::vector<ProducerInfo>> Registry::lookup(
    net::Interface& from, std::string table, trace::Ctx ctx) {
  trace::Span op(ctx, trace::SpanKind::RegistryLookup, table);
  std::vector<ProducerInfo> out;
  co_await net_.transfer(from, nic_, config_.request_bytes, op.ctx(),
                         trace::SpanKind::RequestSend);
  if (!port_.try_admit()) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Refused, "registry");
    co_return out;
  }
  net::AdmissionSlot slot(&port_);
  {
    trace::Span wait(op.ctx(), trace::SpanKind::PoolWait, "registry");
    auto lease = co_await pool_.acquire();
    wait.end();
    {
      trace::Span cpu(op.ctx(), trace::SpanKind::Cpu, "query_base",
                      config_.query_base_cpu);
      co_await host_.cpu().consume(config_.query_base_cpu);
    }
    {
      trace::Span servlet(op.ctx(), trace::SpanKind::Servlet);
      co_await host_.simulation().delay(config_.servlet_latency);
    }
    auto result = co_await run_lookup(table, op.ctx());
    for (const auto& row : result.rows) {
      out.push_back(ProducerInfo{row[0].as_text(), row[1].as_text(),
                                 row[2].as_text(), row[3].as_text()});
    }
  }
  co_await net_.transfer(
      nic_, from, 128 + config_.row_bytes * static_cast<double>(out.size()),
      op.ctx(), trace::SpanKind::ResponseSend);
  co_return out;
}

sim::Task<RgmaReply> Registry::client_query(net::Interface& client,
                                            std::string table,
                                            trace::Ctx ctx) {
  auto& sim = host_.simulation();
  {
    trace::Span tool(ctx, trace::SpanKind::ClientTool);
    co_await sim.delay(config_.client_latency);
  }
  if (!co_await net_.connect(client, nic_, ctx, config_.connect_timeout)) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Timeout, "registry");
    RgmaReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    RgmaReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    if (ctx) {
      ctx.col->instant(ctx,
                       reply.timed_out ? trace::SpanKind::Timeout
                                       : trace::SpanKind::Refused,
                       "registry");
    }
    co_return reply;
  }
  net::AdmissionSlot slot(&port_);
  if (!co_await net_.transfer(client, nic_, config_.request_bytes, ctx,
                              trace::SpanKind::RequestSend,
                              config_.connect_timeout)) {
    RgmaReply reply;
    reply.timed_out = true;
    co_return reply;
  }

  RgmaReply reply;
  {
    trace::Span wait(ctx, trace::SpanKind::PoolWait, "registry");
    auto lease = co_await pool_.acquire();
    wait.end();
    {
      trace::Span cpu(ctx, trace::SpanKind::Cpu, "query_base",
                      config_.query_base_cpu);
      co_await host_.cpu().consume(config_.query_base_cpu);
    }
    {
      trace::Span servlet(ctx, trace::SpanKind::Servlet);
      co_await host_.simulation().delay(config_.servlet_latency);
    }
    auto result = co_await run_lookup(table, ctx);
    reply.rows = result.rows.size();
    reply.response_bytes =
        128 + config_.row_bytes * static_cast<double>(result.rows.size());
    reply.admitted = true;
  }
  if (!co_await net_.transfer(nic_, client, reply.response_bytes, ctx,
                              trace::SpanKind::ResponseSend,
                              config_.connect_timeout)) {
    reply.timed_out = true;
  }
  co_return reply;
}

void Registry::start_sweeper() {
  host_.simulation().spawn(sweeper_loop());
}

sim::Task<void> Registry::sweeper_loop() {
  auto& sim = host_.simulation();
  for (;;) {
    co_await sim.delay(config_.sweep_interval);
    auto lease = co_await pool_.acquire();
    co_await host_.cpu().consume(config_.register_cpu);
    auto result = db_.execute("DELETE FROM producers WHERE expires < " +
                              std::to_string(sim.now()));
    co_await host_.cpu().consume(config_.row_cpu *
                                 static_cast<double>(result.rows_examined));
    db_.table("producers").vacuum();
    // Lease sweeps mutate durable state too; bound how long they can sit
    // un-flushed (nobody waits on the sweep, so this only costs the loop).
    if (store_) co_await store_->log().commit();
  }
}

std::size_t Registry::registered_count() {
  return db_.table("producers").row_count();
}

}  // namespace gridmon::rgma
