#include "gridmon/rgma/registry.hpp"

namespace gridmon::rgma {
namespace {

std::string quote(const std::string& s) {
  return rdbms::Value::text(s).to_string();
}

}  // namespace

Registry::Registry(net::Network& net, host::Host& host, net::Interface& nic,
                   RegistryConfig config)
    : net_(net),
      host_(host),
      nic_(nic),
      config_(config),
      pool_(host.simulation(), config.pool_size),
      port_(config.backlog) {
  db_.execute(
      "CREATE TABLE producers (producer TEXT, tablename TEXT, servlet TEXT, "
      "predicate TEXT, expires REAL)");
  db_.execute("CREATE INDEX ON producers (tablename)");
}

sim::Task<bool> Registry::register_producer(net::Interface& from,
                                            ProducerInfo info) {
  co_await net_.transfer(from, nic_, config_.request_bytes);
  if (!port_.try_admit()) co_return false;
  net::AdmissionSlot slot(&port_);
  auto lease = co_await pool_.acquire();
  co_await host_.cpu().consume(config_.register_cpu);

  double expires = host_.simulation().now() + config_.lease_seconds;
  auto existing = db_.execute("SELECT producer FROM producers WHERE producer = " +
                              quote(info.producer));
  co_await host_.cpu().consume(config_.row_cpu *
                               static_cast<double>(existing.rows_examined));
  if (!existing.rows.empty()) {
    db_.execute("DELETE FROM producers WHERE producer = " +
                quote(info.producer));
  }
  db_.execute("INSERT INTO producers VALUES (" + quote(info.producer) + ", " +
              quote(info.table) + ", " + quote(info.servlet) + ", " +
              quote(info.predicate) + ", " + std::to_string(expires) + ")");
  ++registrations_;
  co_await net_.transfer(nic_, from, 128);  // ack
  co_return true;
}

sim::Task<rdbms::QueryResult> Registry::run_lookup(std::string table) {
  double now = host_.simulation().now();
  auto result = db_.execute(
      "SELECT producer, tablename, servlet, predicate FROM producers WHERE "
      "tablename = " +
      quote(table) + " AND expires >= " + std::to_string(now));
  co_await host_.cpu().consume(config_.row_cpu *
                               static_cast<double>(result.rows_examined));
  co_return result;
}

sim::Task<std::vector<ProducerInfo>> Registry::lookup(
    net::Interface& from, std::string table) {
  std::vector<ProducerInfo> out;
  co_await net_.transfer(from, nic_, config_.request_bytes);
  if (!port_.try_admit()) co_return out;
  net::AdmissionSlot slot(&port_);
  {
    auto lease = co_await pool_.acquire();
    co_await host_.cpu().consume(config_.query_base_cpu);
    co_await host_.simulation().delay(config_.servlet_latency);
    auto result = co_await run_lookup(table);
    for (const auto& row : result.rows) {
      out.push_back(ProducerInfo{row[0].as_text(), row[1].as_text(),
                                 row[2].as_text(), row[3].as_text()});
    }
  }
  co_await net_.transfer(
      nic_, from, 128 + config_.row_bytes * static_cast<double>(out.size()));
  co_return out;
}

sim::Task<RgmaReply> Registry::client_query(net::Interface& client,
                                            std::string table) {
  auto& sim = host_.simulation();
  co_await sim.delay(config_.client_latency);
  co_await net_.connect(client, nic_);
  if (!port_.try_admit()) co_return RgmaReply{};
  net::AdmissionSlot slot(&port_);
  co_await net_.transfer(client, nic_, config_.request_bytes);

  RgmaReply reply;
  {
    auto lease = co_await pool_.acquire();
    co_await host_.cpu().consume(config_.query_base_cpu);
    co_await host_.simulation().delay(config_.servlet_latency);
    auto result = co_await run_lookup(table);
    reply.rows = result.rows.size();
    reply.response_bytes =
        128 + config_.row_bytes * static_cast<double>(result.rows.size());
    reply.admitted = true;
  }
  co_await net_.transfer(nic_, client, reply.response_bytes);
  co_return reply;
}

void Registry::start_sweeper() {
  host_.simulation().spawn(sweeper_loop());
}

sim::Task<void> Registry::sweeper_loop() {
  auto& sim = host_.simulation();
  for (;;) {
    co_await sim.delay(config_.sweep_interval);
    auto lease = co_await pool_.acquire();
    co_await host_.cpu().consume(config_.register_cpu);
    auto result = db_.execute("DELETE FROM producers WHERE expires < " +
                              std::to_string(sim.now()));
    co_await host_.cpu().consume(config_.row_cpu *
                                 static_cast<double>(result.rows_examined));
    db_.table("producers").vacuum();
  }
}

std::size_t Registry::registered_count() {
  return db_.table("producers").row_count();
}

}  // namespace gridmon::rgma
