#include "gridmon/rgma/composite_producer.hpp"

namespace gridmon::rgma {

CompositeProducer::CompositeProducer(net::Network& net, host::Host& host,
                                     net::Interface& nic, std::string name,
                                     std::string table,
                                     CompositeProducerConfig config)
    : net_(net),
      host_(host),
      nic_(nic),
      name_(std::move(name)),
      table_(std::move(table)),
      config_(config),
      servlet_(std::make_unique<ProducerServlet>(net, host, nic,
                                                 name_ + "-servlet",
                                                 config.servlet)) {
  merged_ = &servlet_->add_producer(name_ + "-merged", table_, "",
                                    config_.merge_history);
}

void CompositeProducer::attach_source(ProducerServlet& source) {
  ++sources_;
  // The consumer half: the source pushes matching tuples to our NIC; each
  // arrival is ingested into the merged store.
  source.subscribe(nic_, table_, "", [this](const rdbms::Row& row) {
    host_.simulation().spawn(ingest(row));
  });
}

sim::Task<void> CompositeProducer::ingest(rdbms::Row row) {
  co_await host_.cpu().consume(config_.ingest_cpu);
  ++ingested_;
  co_await servlet_->publish(*merged_, std::move(row));
}

}  // namespace gridmon::rgma
