#pragma once

/// \file producer_servlet.hpp
/// The R-GMA ProducerServlet: hosts Producers (each publishing rows of
/// one relation), answers mediated SQL SELECTs, re-registers its
/// producers' soft-state leases with the Registry, and pushes matching
/// tuples to streaming subscribers.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gridmon/host/host.hpp"
#include "gridmon/net/network.hpp"
#include "gridmon/net/server_port.hpp"
#include "gridmon/rdbms/database.hpp"
#include "gridmon/rgma/registry.hpp"
#include "gridmon/sim/resource.hpp"
#include "gridmon/sim/task.hpp"

namespace gridmon::rgma {

/// A Producer publishes rows of one table. Rows live in a bounded
/// history buffer (latest-N semantics, like an R-GMA LatestProducer).
class Producer {
 public:
  Producer(std::string name, std::string table, rdbms::Schema schema,
           std::string predicate, std::size_t max_rows = 30)
      : name_(std::move(name)),
        table_(std::move(table)),
        predicate_(std::move(predicate)),
        data_("producer_" + name_, std::move(schema)),
        max_rows_(max_rows) {}

  const std::string& name() const noexcept { return name_; }
  const std::string& table() const noexcept { return table_; }
  const std::string& predicate() const noexcept { return predicate_; }
  rdbms::Table& data() noexcept { return data_; }
  const rdbms::Table& data() const noexcept { return data_; }

  /// Insert a row; the oldest row is dropped beyond max_rows.
  void publish(rdbms::Row row) {
    data_.insert(std::move(row));
    while (data_.row_count() > max_rows_) {
      bool erased = false;
      data_.scan([&](std::size_t id, const rdbms::Row&) {
        data_.erase_row(id);
        erased = true;
        return false;  // stop after the first (oldest) live row
      });
      if (!erased) break;
    }
    if (data_.row_count() == max_rows_) data_.vacuum();
  }

  /// Drop every buffered row (a crashed servlet loses its tuple store).
  void clear() {
    std::vector<std::size_t> ids;
    data_.scan([&](std::size_t id, const rdbms::Row&) {
      ids.push_back(id);
      return true;
    });
    for (std::size_t id : ids) data_.erase_row(id);
    data_.vacuum();
  }

 private:
  std::string name_;
  std::string table_;
  std::string predicate_;
  rdbms::Table data_;
  std::size_t max_rows_;
};

struct ProducerServletConfig {
  int pool_size = 4;
  int backlog = 40;
  /// Java API overhead on the caller side per request.
  double client_latency = 0.15;
  /// Servlet CPU per SELECT (thread spawn, HTTP handling).
  double query_base_cpu = 0.08;
  /// CPU per producer consulted (one JDBC statement each).
  double per_producer_cpu = 0.02;
  /// CPU per tuple examined while answering.
  double row_cpu = 0.0002;
  /// Non-CPU time the servlet thread is blocked per request (JVM GC
  /// pauses, JDBC round trips, XML marshalling waits).
  double servlet_latency = 0.55;
  double request_bytes = 700;
  double row_bytes = 120;
  /// Producers re-register at this period (must beat the Registry lease).
  double reregister_interval = 45;
  /// CPU to push one tuple to one streaming subscriber.
  double stream_send_cpu = 0.0003;
  /// Client/transfer patience on a dead path (blackholed SYN, partitioned
  /// WAN). Only consulted under faults.
  double connect_timeout = 75.0;
  /// Replies built when nothing has been published for this long are
  /// flagged stale (the publishers stopped — e.g. the monitored site is
  /// partitioned away). 0 disables the check.
  double stale_after = 0;
};

class ProducerServlet {
 public:
  ProducerServlet(net::Network& net, host::Host& host, net::Interface& nic,
                  std::string name, ProducerServletConfig config = {});

  const std::string& name() const noexcept { return name_; }
  host::Host& host() noexcept { return host_; }
  net::Interface& nic() noexcept { return nic_; }
  net::ServerPort& port() noexcept { return port_; }

  /// Create a producer hosted by this servlet. Default schema:
  /// (host TEXT, metric TEXT, value REAL, ts REAL).
  Producer& add_producer(const std::string& producer_name,
                         std::string table,
                         const std::string& predicate = "",
                         std::size_t max_rows = 30);
  std::size_t producer_count() const noexcept { return producers_.size(); }
  Producer* find_producer(const std::string& name);

  /// Publish a row through a producer: stores it and pushes to any
  /// matching streaming subscribers.
  sim::Task<void> publish(Producer& producer, rdbms::Row row);

  /// Answer a mediated SELECT covering every local producer of `table`.
  sim::Task<RgmaReply> select(net::Interface& from, std::string table,
                              std::string where = "", trace::Ctx ctx = {});

  /// A user querying this servlet directly (the paper's Experiment 3
  /// "queried the ProducerServlet directly"): adds the Java client API
  /// latency and connection setup around select().
  sim::Task<RgmaReply> client_query(net::Interface& client,
                                    std::string table,
                                    std::string where = "",
                                    trace::Ctx ctx = {});

  /// Attach resource timelines ("<name>.pool") to a trace collector.
  void instrument(trace::Collector& col) {
    pool_.set_probe(&col.track(name_ + ".pool"));
  }

  /// Register all producers with `registry` and keep their leases fresh.
  void start_registration(Registry& registry);

  /// Streaming: deliver future rows of `table` matching `predicate` (SQL
  /// WHERE syntax, empty = all) to `consumer`, invoking `on_row` after
  /// the network push completes.
  using RowCallback = std::function<void(const rdbms::Row&)>;
  void subscribe(net::Interface& consumer, std::string table,
                 const std::string& predicate, RowCallback on_row);

  std::uint64_t tuples_pushed() const noexcept { return tuples_pushed_; }

  // ---- fault injection ----
  /// Crash the servlet container (blackhole: host gone). Producer tuple
  /// stores are volatile: restart comes back with empty history buffers
  /// until publishers insert again, and Registry leases lapse meanwhile.
  void crash(bool blackhole = false) {
    port_.crash(blackhole);
    for (auto& p : producers_) p->clear();
  }
  void restart() { port_.restart(); }
  bool process_up() const noexcept { return port_.up(); }

  /// Start a synthetic measurement feed: every producer inserts one row
  /// per `interval`. Gives fault scenarios live data whose freshness the
  /// stale_after check can judge.
  void start_publishing(double interval);
  /// Pause (or resume) the publisher feed — the monitored sensors died
  /// while the servlet is still answering queries from its buffers.
  void set_publishers_down(bool down) noexcept { publishers_down_ = down; }
  /// Time of the most recent publish() through this servlet.
  double last_publish_at() const noexcept { return last_publish_at_; }

 private:
  struct Subscription {
    net::Interface* consumer;
    std::string table;
    rdbms::SqlExprPtr predicate;  // null = match all
    RowCallback on_row;
  };

  sim::Task<void> registration_loop(Registry& registry);
  sim::Task<void> publisher_loop(double interval);
  sim::Task<void> push_row(net::Interface* consumer, RowCallback on_row,
                           rdbms::Row row);

  net::Network& net_;
  host::Host& host_;
  net::Interface& nic_;
  std::string name_;
  ProducerServletConfig config_;
  std::vector<std::unique_ptr<Producer>> producers_;
  std::vector<Subscription> subscriptions_;
  sim::Resource pool_;
  net::ServerPort port_;
  bool registering_ = false;
  bool publishing_ = false;
  bool publishers_down_ = false;
  double last_publish_at_ = -1;
  std::uint64_t tuples_pushed_ = 0;
  std::uint64_t publish_sequence_ = 0;
};

}  // namespace gridmon::rgma
