#pragma once

/// \file registry.hpp
/// The R-GMA Registry: an RDBMS-backed directory of Producers. Producers
/// advertise (table name, predicate, hosting servlet) with soft-state
/// leases; Consumers (via their ConsumerServlet) look up which producers
/// can answer a SQL query. Implemented, as in R-GMA 1.18, as a Java
/// servlet in front of a SQL database — which is why its per-request CPU
/// cost is the highest of the three systems studied.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gridmon/host/host.hpp"
#include "gridmon/net/network.hpp"
#include "gridmon/net/server_port.hpp"
#include "gridmon/rdbms/database.hpp"
#include "gridmon/sim/resource.hpp"
#include "gridmon/sim/task.hpp"
#include "gridmon/store/table_store.hpp"

namespace gridmon::rgma {

struct RgmaReply {
  bool admitted = false;
  std::size_t rows = 0;
  double response_bytes = 0;
  bool timed_out = false;  // connect or transfer gave up on a dead path
  bool failed = false;     // admitted but the backend could not answer
  bool stale = false;      // rows predate the last publisher activity gap
};

struct ProducerInfo {
  std::string producer;  // unique producer name
  std::string table;     // relation it publishes
  std::string servlet;   // ProducerServlet hosting it
  std::string predicate; // fixed-attribute predicate it declared
};

struct RegistryConfig {
  /// Effective servlet-container concurrency (the DB serializes most of
  /// the request anyway).
  int pool_size = 4;
  int backlog = 300;
  /// Java client-side API overhead per call.
  double client_latency = 0.15;
  /// Servlet + JDBC CPU per request (thread spawn, XML/HTTP handling).
  double query_base_cpu = 0.22;
  /// Non-CPU blocking time per request in the servlet container.
  double servlet_latency = 0.1;
  /// CPU to process one soft-state (re-)registration.
  double register_cpu = 0.02;
  /// CPU per row the RDBMS examines.
  double row_cpu = 0.0004;
  double request_bytes = 600;
  double row_bytes = 160;
  double lease_seconds = 120;
  double sweep_interval = 30;
  /// Client/transfer patience on a dead path (blackholed SYN, partitioned
  /// WAN). Only consulted under faults.
  double connect_timeout = 75.0;
  /// Durability of the producer directory. Volatile reproduces the paper
  /// (R-GMA 1.18's in-memory registry DB); wal / wal+snapshot persist the
  /// producers table through the host disk and replay it on restart.
  store::StoreConfig store;
};

class Registry {
 public:
  Registry(net::Network& net, host::Host& host, net::Interface& nic,
           RegistryConfig config = {});

  host::Host& host() noexcept { return host_; }
  net::Interface& nic() noexcept { return nic_; }
  net::ServerPort& port() noexcept { return port_; }
  rdbms::Database& database() noexcept { return db_; }

  /// (Re-)register a producer; refreshes its lease.
  sim::Task<bool> register_producer(net::Interface& from,
                                    ProducerInfo info);

  /// Which producers can answer queries on `table`? Used by
  /// ConsumerServlets during mediation.
  sim::Task<std::vector<ProducerInfo>> lookup(net::Interface& from,
                                              std::string table,
                                              trace::Ctx ctx = {});

  /// A user querying the Registry directly (the paper's Experiment 2
  /// directory-server workload).
  sim::Task<RgmaReply> client_query(net::Interface& client,
                                    std::string table, trace::Ctx ctx = {});

  /// Attach resource timelines ("registry.pool") to a trace collector.
  void instrument(trace::Collector& col) {
    pool_.set_probe(&col.track("registry.pool"));
  }

  /// Begin the periodic expired-lease sweep.
  void start_sweeper();

  std::size_t registered_count();
  std::uint64_t registrations() const noexcept { return registrations_; }

  /// Durability engine behind the producers table (null when volatile).
  const store::Log* store_log() const noexcept {
    return store_ ? &store_->log() : nullptr;
  }
  /// Absolute sim time when the directory re-converged to its pre-crash
  /// row count after the most recent crash (-1 until it happens). Durable
  /// modes get there via replay; volatile waits for lease renewals.
  double recovered_at() const noexcept { return recovered_at_; }

  // ---- fault injection ----
  /// Crash the Registry servlet container (blackhole: host gone). The
  /// in-memory producer table dies with the process; the StableImage in
  /// the store (if durability is on) survives for restart() to replay.
  void crash(bool blackhole = false);
  void restart();
  bool process_up() const noexcept { return port_.up(); }

 private:
  sim::Task<void> sweeper_loop();
  sim::Task<void> recover_then_restart();
  void note_recovery_progress();
  sim::Task<rdbms::QueryResult> run_lookup(std::string table,
                                           trace::Ctx ctx = {});

  net::Network& net_;
  host::Host& host_;
  net::Interface& nic_;
  RegistryConfig config_;
  rdbms::Database db_;
  sim::Resource pool_;
  net::ServerPort port_;
  std::uint64_t registrations_ = 0;
  std::unique_ptr<store::TableStore> store_;
  std::size_t rows_at_crash_ = 0;
  bool awaiting_recovery_ = false;
  double recovered_at_ = -1;
};

}  // namespace gridmon::rgma
