#include "gridmon/mds/gris.hpp"

namespace gridmon::mds {

Gris::Gris(net::Network& net, host::Host& host, net::Interface& nic,
           std::string name, std::vector<ProviderSpec> providers,
           GrisConfig config)
    : net_(net),
      host_(host),
      nic_(nic),
      name_(std::move(name)),
      host_dn_(ldap::Dn::parse("Mds-Host-hn=" + name_ + ", o=grid")),
      config_(config),
      pool_(host.simulation(), config.pool_size),
      port_(host.simulation(), config.backlog) {
  // Root + host entry so provider entries always have a parent.
  ldap::Entry root(ldap::Dn::parse("o=grid"));
  root.add("objectclass", "organization");
  dit_.add(std::move(root));
  ldap::Entry host_entry(host_dn_);
  host_entry.add("objectclass", "MdsHost");
  host_entry.add("Mds-Host-hn", name_);
  dit_.add(std::move(host_entry));

  providers_.reserve(providers.size());
  for (auto& spec : providers) {
    providers_.push_back(ProviderState{std::move(spec), -1, 0, false});
  }

  root_dn_ = ldap::Dn::parse("o=grid");
  all_filter_ = ldap::Filter::parse("(objectclass=MdsDevice)");
  if (!providers_.empty()) {
    part_filter_ = ldap::Filter::parse("(Mds-provider-name=" +
                                       providers_.front().spec.name + ")");
  }
}

ldap::Entry Gris::suffix_entry() const {
  ldap::Entry e(host_dn_);
  e.add("objectclass", "MdsHost");
  e.add("Mds-Host-hn", name_);
  return e;
}

std::size_t Gris::entry_count() const {
  std::size_t n = 0;
  for (const auto& p : providers_) {
    n += static_cast<std::size_t>(p.spec.entries);
  }
  return n;
}

const ldap::Filter& Gris::scope_filter(QueryScope scope) const {
  if (scope == QueryScope::Part && part_filter_) return *part_filter_;
  return *all_filter_;
}

sim::Task<Gris::RefreshOutcome> Gris::refresh(QueryScope scope,
                                              trace::Ctx ctx) {
  auto& sim = host_.simulation();
  RefreshOutcome out;
  std::size_t limit =
      (scope == QueryScope::Part && !providers_.empty()) ? 1
                                                         : providers_.size();
  // Indexed accesses throughout: a reference into providers_ must not
  // live across a suspension (or the loop back-edge that follows one) —
  // another frame can grow the vector and reallocate it while we wait.
  for (std::size_t i = 0; i < limit; ++i) {
    bool fresh =
        config_.cache_enabled && sim.now() < providers_[i].fresh_until;
    if (fresh) {
      // Negative-cached entries from a failed refresh are still expired
      // data even though the TTL bookkeeping calls them fresh.
      if (providers_[i].stale) out.stale = true;
      continue;
    }
    out.hit = false;
    if (resilience_.server.serve_stale && port_.overloaded() &&
        config_.cache_enabled && providers_[i].sequence > 0) {
      // Degraded mode under shed pressure: answer from the expired cache
      // instead of forking the provider — the query costs what a cache
      // hit costs, and the staleness is visible to the client.
      out.stale = true;
      continue;
    }
    if (collectors_down_) {
      // The provider script hangs (wedged daemon, dead NFS mount): the
      // worker waits out the exec timeout, holding its pool lease, then
      // either serves the expired cache or gives up.
      co_await sim.delay(config_.provider_timeout);
      if (config_.cache_enabled && providers_[i].sequence > 0) {
        out.stale = true;
        // slapd keeps serving the old entry and re-tries the script only
        // after another TTL: the outage surfaces as stale data, not as a
        // server that hangs on every query.
        providers_[i].stale = true;
        providers_[i].fresh_until =
            sim.now() + providers_[i].spec.cache_ttl;
      } else {
        out.failed = true;
      }
      continue;
    }
    // Fork and run the provider script on this host's CPU.
    co_await host_.fork_exec(providers_[i].spec.exec_cpu_ref, ctx,
                             providers_[i].spec.name);
    ++provider_runs_;
    ++providers_[i].sequence;
    for (auto& entry : run_provider(providers_[i].spec, host_dn_,
                                    providers_[i].sequence)) {
      dit_.add(std::move(entry));
    }
    providers_[i].fresh_until = sim.now() + providers_[i].spec.cache_ttl;
    providers_[i].stale = false;
  }
  co_return out;
}

sim::Task<MdsReply> Gris::serve(QueryScope scope, trace::Ctx ctx) {
  co_return co_await serve_filter(scope, scope_filter(scope), {}, 0, ctx);
}

sim::Task<MdsReply> Gris::serve_filter(QueryScope refresh_scope,
                                       const ldap::Filter& filter,
                                       std::vector<std::string> attrs,
                                       std::size_t size_limit,
                                       trace::Ctx ctx) {
  auto& sim = host_.simulation();
  MdsReply reply;
  trace::Span wait(ctx, trace::SpanKind::PoolWait, name_);
  auto lease = co_await pool_.acquire();
  wait.end();
  {
    trace::Span cpu(ctx, trace::SpanKind::Cpu, "query_base",
                    config_.query_base_cpu);
    co_await host_.cpu().consume(config_.query_base_cpu);
  }

  RefreshOutcome outcome = co_await refresh(refresh_scope, ctx);
  bool hit = outcome.hit;
  reply.cache_hit = hit;
  reply.stale = outcome.stale;
  reply.failed = outcome.failed;
  if (hit && config_.cache_enabled && config_.cache_serve_latency > 0) {
    // Backend freshness re-validation (polling waits, not CPU).
    trace::Span validate(ctx, trace::SpanKind::CacheValidate);
    lease.release();
    co_await sim.delay(config_.cache_serve_latency);
    validate.end();
    trace::Span rewait(ctx, trace::SpanKind::PoolWait, name_);
    lease = co_await pool_.acquire();
  }

  trace::Span search(ctx, trace::SpanKind::LdapSearch);
  auto result = dit_.search(root_dn_, ldap::Scope::Subtree, filter, attrs,
                            size_limit);
  search.set_arg(static_cast<double>(result.entries_examined));
  co_await host_.cpu().consume(
      config_.examine_cpu_per_entry *
          static_cast<double>(result.entries_examined) +
      config_.serialize_cpu_per_entry *
          static_cast<double>(result.entries.size()));
  search.end();
  reply.entries = result.entries.size();
  reply.response_bytes = result.wire_bytes();
  reply.payload = std::move(result.entries);
  co_return reply;
}

sim::Task<MdsReply> Gris::search(net::Interface& client,
                                 SearchRequest request, trace::Ctx ctx) {
  auto& sim = host_.simulation();
  {
    trace::Span tool(ctx, trace::SpanKind::ClientTool);
    co_await sim.delay(config_.client_tool_latency);
  }
  if (!co_await net_.connect(client, nic_, ctx, config_.connect_timeout)) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Timeout, name_);
    MdsReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    MdsReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    if (ctx) {
      ctx.col->instant(ctx,
                       reply.timed_out ? trace::SpanKind::Timeout
                                       : trace::SpanKind::Refused,
                       name_);
    }
    co_return reply;
  }
  net::AdmissionSlot slot(&port_);
  if (!co_await net_.transfer(
          client, nic_,
          config_.request_bytes + static_cast<double>(request.filter.size()),
          ctx, trace::SpanKind::RequestSend, config_.connect_timeout)) {
    MdsReply reply;
    reply.timed_out = true;
    co_return reply;
  }

  auto filter = ldap::Filter::parse(request.filter);
  MdsReply reply = co_await serve_filter(QueryScope::All, *filter,
                                         std::move(request.attributes),
                                         request.size_limit, ctx);
  reply.admitted = true;
  if (!co_await net_.transfer(nic_, client, reply.response_bytes, ctx,
                              trace::SpanKind::ResponseSend,
                              config_.connect_timeout)) {
    reply.timed_out = true;
  }
  co_return reply;
}

sim::Task<MdsReply> Gris::query(net::Interface& client, QueryScope scope,
                                trace::Ctx ctx) {
  auto& sim = host_.simulation();
  // Client tool startup + GSI authentication.
  {
    trace::Span tool(ctx, trace::SpanKind::ClientTool);
    co_await sim.delay(config_.client_tool_latency);
  }
  if (!co_await net_.connect(client, nic_, ctx, config_.connect_timeout)) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Timeout, name_);
    MdsReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    MdsReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    if (ctx) {
      ctx.col->instant(ctx,
                       reply.timed_out ? trace::SpanKind::Timeout
                                       : trace::SpanKind::Refused,
                       name_);
    }
    co_return reply;  // connection refused or SYNs swallowed
  }
  net::AdmissionSlot slot(&port_);
  if (!co_await net_.transfer(client, nic_, config_.request_bytes, ctx,
                              trace::SpanKind::RequestSend,
                              config_.connect_timeout)) {
    MdsReply reply;
    reply.timed_out = true;
    co_return reply;
  }

  MdsReply reply = co_await serve(scope, ctx);
  reply.admitted = true;

  if (!co_await net_.transfer(nic_, client, reply.response_bytes, ctx,
                              trace::SpanKind::ResponseSend,
                              config_.connect_timeout)) {
    reply.timed_out = true;
  }
  co_return reply;
}

sim::Task<MdsReply> Gris::fetch(net::Interface& requester, trace::Ctx ctx) {
  trace::Span span(ctx, trace::SpanKind::Fetch, name_);
  if (!co_await net_.connect(requester, nic_, span.ctx(),
                             config_.connect_timeout)) {
    MdsReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    MdsReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    co_return reply;
  }
  net::AdmissionSlot slot(&port_);
  if (!co_await net_.transfer(requester, nic_, config_.request_bytes,
                              span.ctx(), trace::SpanKind::RequestSend,
                              config_.connect_timeout)) {
    MdsReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  MdsReply reply = co_await serve(QueryScope::All, span.ctx());
  reply.admitted = true;
  if (!co_await net_.transfer(nic_, requester, reply.response_bytes,
                              span.ctx(), trace::SpanKind::ResponseSend,
                              config_.connect_timeout)) {
    reply.timed_out = true;
  }
  co_return reply;
}

}  // namespace gridmon::mds
