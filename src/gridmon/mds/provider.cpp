#include "gridmon/mds/provider.hpp"

namespace gridmon::mds {

std::vector<ldap::Entry> run_provider(const ProviderSpec& spec,
                                      const ldap::Dn& host_dn,
                                      std::uint64_t sequence) {
  std::vector<ldap::Entry> out;
  out.reserve(static_cast<std::size_t>(spec.entries));
  for (int i = 0; i < spec.entries; ++i) {
    ldap::Entry e(ldap::Dn::parse("Mds-Device-name=" + spec.name + "-" +
                                  std::to_string(i) + ", " +
                                  host_dn.to_string()));
    e.add("objectclass", "MdsDevice");
    e.add("objectclass", "Mds" + spec.name);
    e.add("Mds-Device-name", spec.name + "-" + std::to_string(i));
    e.add("Mds-provider-name", spec.name);
    e.add("Mds-validfrom-sequence", std::to_string(sequence));
    // Pad to the configured entry size so the wire model sees realistic
    // LDIF volumes.
    int pad = spec.bytes_per_entry -
              static_cast<int>(e.wire_bytes());
    if (pad > 0) e.add("Mds-data", std::string(static_cast<size_t>(pad), 'd'));
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace gridmon::mds
