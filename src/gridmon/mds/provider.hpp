#pragma once

/// \file provider.hpp
/// MDS Information Providers: the shell-script sensors a GRIS forks to
/// obtain fresh data. Each provider contributes a handful of LDAP entries
/// under the host's DN; executing one costs fork/exec plus script CPU.

#include <string>
#include <vector>

#include "gridmon/ldap/entry.hpp"

namespace gridmon::mds {

struct ProviderSpec {
  std::string name = "memory";
  /// Entries the provider emits per run.
  int entries = 4;
  /// Approximate payload bytes per entry (LDIF attribute text).
  int bytes_per_entry = 600;
  /// Reference CPU-seconds consumed by one execution of the script
  /// (on top of fork/exec overhead). MDS 2.1 providers were shell/perl
  /// pipelines over /proc; ~80 ms on a 1 GHz machine.
  double exec_cpu_ref = 0.08;
  /// Data validity: how long a GRIS may serve this provider's output from
  /// cache (the per-provider TTL in grid-info-resource-ldif.conf).
  double cache_ttl = 30.0;
};

/// Deterministically synthesize the LDAP entries one provider run yields
/// for `host_dn` (e.g. "Mds-Host-hn=lucky7.mcs.anl.gov, Mds-Vo-name=local,
/// o=grid"). `sequence` distinguishes runs so tests can observe freshness.
std::vector<ldap::Entry> run_provider(const ProviderSpec& spec,
                                      const ldap::Dn& host_dn,
                                      std::uint64_t sequence);

}  // namespace gridmon::mds
