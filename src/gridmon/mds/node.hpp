#pragma once

/// \file node.hpp
/// The registration interface of the MDS hierarchy. "Each service
/// registers with others using a soft-state protocol... any GRIS or GIIS
/// can register with another, making this approach modular and
/// extensible" (paper §2.1 / Figure 1). Both Gris and Giis implement
/// MdsNode, so a GIIS can aggregate either — enabling the multi-layer
/// deployments the paper's §3.6 conclusion calls for.

#include <string>

#include "gridmon/ldap/dn.hpp"
#include "gridmon/ldap/entry.hpp"
#include "gridmon/net/network.hpp"
#include "gridmon/sim/task.hpp"
#include "gridmon/trace/span.hpp"

namespace gridmon::mds {

struct MdsReply;

class MdsNode {
 public:
  virtual ~MdsNode() = default;

  /// Unique name in the registration namespace.
  virtual const std::string& node_name() const = 0;
  /// The subtree this node's data lives under in an aggregator's DIT.
  virtual const ldap::Dn& suffix() const = 0;
  /// The entry that roots that subtree (MdsHost for a GRIS, MdsVo for a
  /// GIIS).
  virtual ldap::Entry suffix_entry() const = 0;
  /// Network attachment point registrations are sent from.
  virtual net::Interface& registration_nic() = 0;
  /// Soft-state re-registration period.
  virtual double registration_interval() const = 0;
  /// Server-to-server data pull (no client-tool latency). Payload entries
  /// either already live under suffix() or are rebased there on merge.
  virtual sim::Task<MdsReply> fetch(net::Interface& requester,
                                    trace::Ctx ctx = {}) = 0;
  /// Whether the registrant's own daemon is alive. A crashed node skips
  /// its soft-state registration beats, so aggregators age it out.
  virtual bool node_up() const { return true; }
};

}  // namespace gridmon::mds
