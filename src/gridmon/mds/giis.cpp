#include "gridmon/mds/giis.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "gridmon/sim/event.hpp"

namespace gridmon::mds {
namespace {

const ldap::Dn& grid_root() {
  static const ldap::Dn kRoot = ldap::Dn::parse("o=grid");
  return kRoot;
}

}  // namespace

Giis::Giis(net::Network& net, host::Host& host, net::Interface& nic,
           std::string name, GiisConfig config)
    : net_(net),
      host_(host),
      nic_(nic),
      name_(std::move(name)),
      vo_dn_(ldap::Dn::parse("Mds-Vo-name=" + name_ + ", o=grid")),
      config_(config),
      refresh_done_(host.simulation()),
      pool_(host.simulation(), config.pool_size),
      port_(host.simulation(), config.backlog) {
  ldap::Entry root(grid_root());
  root.add("objectclass", "organization");
  dit_.add(std::move(root));
}

ldap::Entry Giis::suffix_entry() const {
  ldap::Entry e(vo_dn_);
  e.add("objectclass", "MdsVo");
  e.add("Mds-Vo-name", name_);
  return e;
}

void Giis::add_registrant(MdsNode& node) {
  auto [it, inserted] = registrants_.emplace(node.node_name(), Registrant{});
  bool was_alive = !inserted && it->second.alive;
  it->second.node = &node;
  it->second.alive = true;
  it->second.expires_at =
      host_.simulation().now() + config_.registration_ttl;
  if (inserted || !was_alive) {
    host_.simulation().spawn(registration_loop(node));
  }
}

void Giis::crash(bool blackhole) {
  port_.crash(blackhole);
  // Volatile state: the aggregate tree and the registration table both
  // live in the slapd process. Registrant-side loops keep beating (their
  // cron does not know the GIIS died) and re-populate after restart.
  dit_ = ldap::Dit{};
  ldap::Entry root(grid_root());
  root.add("objectclass", "organization");
  dit_.add(std::move(root));
  for (auto& [name, r] : registrants_) {
    r.fetched = false;
    r.expires_at = -1;
  }
  cache_fresh_until_ = -1;
}

void Giis::kill_registrant(const std::string& node_name) {
  auto it = registrants_.find(node_name);
  if (it != registrants_.end()) it->second.alive = false;
}

std::size_t Giis::live_registrant_count() const {
  std::size_t n = 0;
  double now = host_.simulation().now();
  for (const auto& [name, r] : registrants_) {
    if (r.expires_at >= now) ++n;
  }
  return n;
}

sim::Task<void> Giis::registration_loop(MdsNode& node) {
  auto& sim = host_.simulation();
  // Deterministic phase offset so hundreds of registrants do not fire in
  // lockstep every interval.
  double interval = node.registration_interval();
  double phase =
      static_cast<double>(std::hash<std::string>{}(node.node_name()) %
                          100000) /
      100000.0 * interval;
  co_await sim.delay(phase);
  for (;;) {
    // A crashed registrant skips its beats (nothing left to send them);
    // the registration then ages out and revives after its restart.
    if (node.node_up()) co_await serve_registration(node);
    co_await sim.delay(node.registration_interval());
    auto it = registrants_.find(node.node_name());
    if (it == registrants_.end() || !it->second.alive) co_return;
  }
}

sim::Task<void> Giis::serve_registration(MdsNode& node) {
  co_await net_.transfer(node.registration_nic(), nic_,
                         config_.registration_bytes);
  // A registration arriving while this GIIS is down is simply lost; the
  // registrant's next beat after restart re-establishes it.
  if (!port_.up()) co_return;
  co_await host_.cpu().consume(config_.registration_cpu);
  ++registrations_;
  auto it = registrants_.find(node.node_name());
  if (it != registrants_.end() && it->second.alive) {
    it->second.expires_at =
        host_.simulation().now() + config_.registration_ttl;
  }
}

void Giis::sweep() {
  double now = host_.simulation().now();
  for (auto& [name, r] : registrants_) {
    if (r.expires_at < now && r.fetched) {
      dit_.remove_subtree(r.node->suffix());
      r.fetched = false;
    }
  }
}

sim::Task<void> Giis::merge_payload(MdsNode& node, MdsReply reply,
                                    trace::Ctx ctx) {
  trace::Span span(ctx, trace::SpanKind::Merge, node.node_name(),
                   static_cast<double>(reply.entries));
  auto it = registrants_.find(node.node_name());
  if (it == registrants_.end()) co_return;
  // (Re)build this registrant's slice of the aggregate tree.
  if (it->second.fetched) dit_.remove_subtree(node.suffix());
  dit_.add(node.suffix_entry());

  // Entries already under the node's suffix (a GRIS's devices) stay put;
  // anything else (a child GIIS's hosts/VOs rooted at o=grid) is rebased
  // under the suffix. Parents must land before children: sort by depth.
  std::vector<ldap::Entry>& payload = reply.payload;
  for (auto& entry : payload) {
    const ldap::Dn& dn = entry.dn();
    if (dn == node.suffix()) continue;  // replaced by suffix_entry()
    if (!dn.is_descendant_of(node.suffix())) {
      entry.set_dn(dn.rebased(grid_root(), node.suffix()));
    }
  }
  std::stable_sort(payload.begin(), payload.end(),
                   [](const ldap::Entry& a, const ldap::Entry& b) {
                     return a.dn().depth() < b.dn().depth();
                   });
  std::size_t merged = 0;
  for (auto& entry : payload) {
    if (entry.dn() == node.suffix()) continue;
    dit_.add(std::move(entry));
    ++merged;
  }
  co_await host_.cpu().consume(config_.merge_cpu_per_entry *
                               static_cast<double>(merged + 1));
  // Re-derived after the suspension: a registration or sweep may have
  // touched registrants_ while the merge CPU was being charged, and the
  // iterator from before the co_await must not be trusted.
  auto done = registrants_.find(node.node_name());
  if (done != registrants_.end()) done->second.fetched = true;
}

bool Giis::fetch_allowed(const std::string& node) {
  if (!resilience_.client.enabled) return true;
  auto [it, inserted] =
      fetch_breakers_.try_emplace(node, resilience_.client.breaker);
  return it->second.allow(host_.simulation().now());
}

void Giis::record_fetch(const std::string& node, bool success) {
  if (!resilience_.client.enabled) return;
  auto it = fetch_breakers_.find(node);
  if (it != fetch_breakers_.end()) {
    it->second.record(host_.simulation().now(), success);
  }
}

sim::Task<bool> Giis::refresh_cache(trace::Ctx ctx) {
  auto& sim = host_.simulation();
  if (sim.now() < cache_fresh_until_) co_return false;
  if (resilience_.server.serve_stale && port_.overloaded() &&
      cache_fresh_until_ >= 0) {
    // Degraded mode under shed pressure: answer from the expired
    // aggregate instead of re-pulling every registrant; the staleness is
    // visible to the client, and the next unpressured query refreshes.
    co_return true;
  }
  if (refreshing_) {
    // Another worker is already pulling; wait for it.
    trace::Span span(ctx, trace::SpanKind::CacheValidate, name_);
    co_await refresh_done_;
    co_return false;
  }
  refreshing_ = true;
  refresh_done_.reset();
  trace::Span span(ctx, trace::SpanKind::CacheRefresh, name_);

  sweep();
  // Pull every live registrant in parallel (skipping any whose breaker
  // is open from earlier failed fetches).
  sim::WaitGroup wg(sim);
  struct FetchResult {
    MdsNode* node;
    MdsReply reply;
  };
  auto results = std::make_shared<std::vector<FetchResult>>();
  for (auto& [name, r] : registrants_) {
    if (r.expires_at < sim.now()) continue;
    if (!fetch_allowed(name)) continue;
    MdsNode* node = r.node;
    auto fetch_one = [](Giis& self, MdsNode& n, trace::Ctx c,
                        std::shared_ptr<std::vector<FetchResult>> out)
        -> sim::Task<void> {
      MdsReply reply = co_await n.fetch(self.nic_, c);
      self.record_fetch(n.node_name(),
                        reply.admitted && !reply.timed_out && !reply.failed);
      out->push_back(FetchResult{&n, std::move(reply)});
    };
    sim.spawn(wg.track(fetch_one(*this, *node, span.ctx(), results)));
  }
  bool all_answered = co_await wg.wait_for(config_.fetch_timeout);
  if (!all_answered) {
    // Stragglers (e.g. behind a network partition) keep running but this
    // refresh proceeds with whatever arrived; copy to avoid racing them.
    auto arrived = std::make_shared<std::vector<FetchResult>>(*results);
    results = arrived;
  }

  for (auto& fr : *results) {
    if (!fr.reply.admitted) continue;
    co_await merge_payload(*fr.node, std::move(fr.reply), span.ctx());
  }

  cache_fresh_until_ = sim.now() + config_.cachettl;
  refreshing_ = false;
  refresh_done_.trigger();
  co_return false;
}

ldap::FilterPtr Giis::scope_filter(QueryScope scope) const {
  if (scope == QueryScope::Part) {
    return ldap::Filter::parse("(Mds-provider-name=ip0)");
  }
  return ldap::Filter::parse("(objectclass=MdsDevice)");
}

sim::Task<MdsReply> Giis::query(net::Interface& client, QueryScope scope,
                                trace::Ctx ctx) {
  SearchRequest request;
  request.filter = scope_filter(scope)->to_string();
  co_return co_await search(client, std::move(request), ctx);
}

sim::Task<MdsReply> Giis::search(net::Interface& client,
                                 SearchRequest request, trace::Ctx ctx) {
  auto& sim = host_.simulation();
  {
    trace::Span tool(ctx, trace::SpanKind::ClientTool);
    co_await sim.delay(config_.client_tool_latency);
  }
  if (!co_await net_.connect(client, nic_, ctx, config_.connect_timeout)) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Timeout, name_);
    MdsReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    MdsReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    if (ctx) {
      ctx.col->instant(ctx,
                       reply.timed_out ? trace::SpanKind::Timeout
                                       : trace::SpanKind::Refused,
                       name_);
    }
    co_return reply;
  }
  net::AdmissionSlot slot(&port_);
  if (!co_await net_.transfer(
          client, nic_,
          config_.request_bytes + static_cast<double>(request.filter.size()),
          ctx, trace::SpanKind::RequestSend, config_.connect_timeout)) {
    MdsReply reply;
    reply.timed_out = true;
    co_return reply;
  }

  MdsReply reply;
  {
    trace::Span wait(ctx, trace::SpanKind::PoolWait, name_);
    auto lease = co_await pool_.acquire();
    wait.end();
    {
      trace::Span cpu(ctx, trace::SpanKind::Cpu, "query_base",
                      config_.query_base_cpu);
      co_await host_.cpu().consume(config_.query_base_cpu);
    }
    reply.stale = co_await refresh_cache(ctx);
    trace::Span search_span(ctx, trace::SpanKind::LdapSearch);
    auto filter = ldap::Filter::parse(request.filter);
    auto result = dit_.search(grid_root(), ldap::Scope::Subtree, *filter,
                              request.attributes, request.size_limit);
    search_span.set_arg(static_cast<double>(result.entries_examined));
    co_await host_.cpu().consume(
        config_.examine_cpu_per_entry *
            static_cast<double>(result.entries_examined) +
        config_.serialize_cpu_per_entry *
            static_cast<double>(result.entries.size()));
    reply.entries = result.entries.size();
    reply.response_bytes = result.wire_bytes();
    reply.cache_hit = true;
    reply.admitted = true;
    reply.payload = std::move(result.entries);
  }
  if (!co_await net_.transfer(nic_, client, reply.response_bytes, ctx,
                              trace::SpanKind::ResponseSend,
                              config_.connect_timeout)) {
    reply.timed_out = true;
  }
  co_return reply;
}

sim::Task<MdsReply> Giis::fetch(net::Interface& requester, trace::Ctx ctx) {
  trace::Span span(ctx, trace::SpanKind::Fetch, name_);
  if (!co_await net_.connect(requester, nic_, span.ctx(),
                             config_.connect_timeout)) {
    MdsReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    MdsReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    co_return reply;
  }
  net::AdmissionSlot slot(&port_);
  if (!co_await net_.transfer(requester, nic_, config_.request_bytes,
                              span.ctx(), trace::SpanKind::RequestSend,
                              config_.connect_timeout)) {
    MdsReply reply;
    reply.timed_out = true;
    co_return reply;
  }

  MdsReply reply;
  {
    trace::Span wait(span.ctx(), trace::SpanKind::PoolWait, name_);
    auto lease = co_await pool_.acquire();
    wait.end();
    {
      trace::Span cpu(span.ctx(), trace::SpanKind::Cpu, "query_base",
                      config_.query_base_cpu);
      co_await host_.cpu().consume(config_.query_base_cpu);
    }
    reply.stale = co_await refresh_cache(span.ctx());
    // Everything except the o=grid root travels upward.
    trace::Span search_span(span.ctx(), trace::SpanKind::LdapSearch);
    auto filter = ldap::Filter::parse(
        "(|(objectclass=MdsDevice)(objectclass=MdsHost)(objectclass=MdsVo))");
    auto result = dit_.search(grid_root(), ldap::Scope::Subtree, *filter);
    search_span.set_arg(static_cast<double>(result.entries_examined));
    co_await host_.cpu().consume(
        config_.examine_cpu_per_entry *
            static_cast<double>(result.entries_examined) +
        config_.serialize_cpu_per_entry *
            static_cast<double>(result.entries.size()));
    reply.entries = result.entries.size();
    reply.response_bytes = result.wire_bytes();
    reply.payload = std::move(result.entries);
    reply.admitted = true;
  }
  if (!co_await net_.transfer(nic_, requester, reply.response_bytes,
                              span.ctx(), trace::SpanKind::ResponseSend,
                              config_.connect_timeout)) {
    reply.timed_out = true;
  }
  co_return reply;
}

}  // namespace gridmon::mds
