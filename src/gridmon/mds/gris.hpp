#pragma once

/// \file gris.hpp
/// Grid Resource Information Service: the per-resource slapd front-end of
/// MDS 2.1. Serves LDAP searches over the entries produced by its
/// information providers; provider output is cached per provider TTL, and
/// on a cache miss the provider script is forked and executed.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gridmon/host/host.hpp"
#include "gridmon/ldap/dit.hpp"
#include "gridmon/mds/node.hpp"
#include "gridmon/mds/provider.hpp"
#include "gridmon/net/network.hpp"
#include "gridmon/net/server_port.hpp"
#include "gridmon/sim/resource.hpp"
#include "gridmon/sim/task.hpp"

namespace gridmon::mds {

/// What a query asks for: everything the server holds, or a single
/// provider's slice of it (the paper's Experiment 4 "query part" case).
enum class QueryScope { All, Part };

/// A full LDAP search request, for clients that need more than the two
/// canned experiment scopes: an RFC-1960 filter, optional attribute
/// selection, and an optional size limit (slapd semantics).
struct SearchRequest {
  std::string filter = "(objectclass=*)";
  std::vector<std::string> attributes;  // empty: all
  std::size_t size_limit = 0;           // 0: unlimited
};

/// Result of one client query attempt.
struct MdsReply {
  bool admitted = false;        // false: connection refused, retry later
  std::size_t entries = 0;      // entries returned
  double response_bytes = 0;
  bool cache_hit = true;
  bool timed_out = false;  // connect or transfer gave up on a dead path
  bool failed = false;     // admitted but the backend could not collect
  bool stale = false;      // served from an expired cache (collector down)
  /// The entries themselves (consumed by a GIIS merging a fetch; plain
  /// clients can ignore it).
  std::vector<ldap::Entry> payload;
};

struct GrisConfig {
  /// slapd worker threads that make progress concurrently.
  int pool_size = 4;
  /// Listen/accept backlog before connections are refused.
  int backlog = 512;
  /// Fixed client-side latency per query: grid-info-search startup plus
  /// the GSI authentication round trips (dominates light-load response).
  double client_tool_latency = 1.2;
  /// Extra backend latency when serving provider data from cache: the MDS
  /// 2.1 GRIS backend re-validates provider freshness with polling waits.
  double cache_serve_latency = 2.0;
  /// Server CPU per query: connection handling, GSI session crypto, and
  /// filter parsing (reference seconds).
  double query_base_cpu = 0.004;
  /// CPU per entry examined by the filter during the search walk.
  double examine_cpu_per_entry = 0.00005;
  /// CPU per entry serialized into the LDIF response.
  double serialize_cpu_per_entry = 0.00012;
  /// Request size on the wire.
  double request_bytes = 512;
  /// If false, provider data is never cached: every query re-executes all
  /// relevant information providers (the paper's "nocache" GRIS).
  bool cache_enabled = true;
  /// Soft-state re-registration period toward a GIIS.
  double registration_interval = 30.0;
  /// How long a client (or this server's transfers) waits on a dead path —
  /// blackholed SYN or partitioned WAN — before giving up. Only consulted
  /// under faults; fault-free runs never hit it.
  double connect_timeout = 75.0;
  /// How long a worker waits on a hung provider script before declaring
  /// the collection failed (exec timeout). The lease is held throughout.
  double provider_timeout = 10.0;
};

class Gris final : public MdsNode {
 public:
  /// `name` doubles as the registered host name in DNs; several Gris
  /// instances may share one physical Host (the paper's Experiment 4).
  Gris(net::Network& net, host::Host& host, net::Interface& nic,
       std::string name, std::vector<ProviderSpec> providers,
       GrisConfig config = {});

  const std::string& name() const noexcept { return name_; }
  host::Host& host() noexcept { return host_; }
  net::Interface& nic() noexcept { return nic_; }
  const GrisConfig& config() const noexcept { return config_; }
  const ldap::Dit& dit() const noexcept { return dit_; }
  std::size_t provider_count() const noexcept { return providers_.size(); }

  /// Total entries currently served (all providers fresh).
  std::size_t entry_count() const;

  /// One full client query: connect, admission, request, server
  /// processing (provider refresh on miss, DIT search), response.
  sim::Task<MdsReply> query(net::Interface& client,
                            QueryScope scope = QueryScope::All,
                            trace::Ctx ctx = {});

  /// General LDAP search with a caller-supplied filter, attribute
  /// selection and size limit. Same service pipeline as query().
  sim::Task<MdsReply> search(net::Interface& client, SearchRequest request,
                             trace::Ctx ctx = {});

  /// Attach resource timelines ("<name>.pool") to a trace collector.
  void instrument(trace::Collector& col) {
    pool_.set_probe(&col.track(name_ + ".pool"));
  }

  // ---- MdsNode ----
  const std::string& node_name() const override { return name_; }
  const ldap::Dn& suffix() const override { return host_dn_; }
  ldap::Entry suffix_entry() const override;
  net::Interface& registration_nic() override { return nic_; }
  double registration_interval() const override {
    return config_.registration_interval;
  }
  /// Server-to-server fetch used by a GIIS cache refresh: like a query
  /// from `requester` but without the client-tool latency.
  sim::Task<MdsReply> fetch(net::Interface& requester,
                            trace::Ctx ctx = {}) override;

  /// Number of provider executions so far (tests / diagnostics).
  std::uint64_t provider_runs() const noexcept { return provider_runs_; }

  net::ServerPort& port() noexcept { return port_; }

  /// Install the overload-control layer: server policy on the listen
  /// port, serve-stale degraded mode for the provider cache.
  void set_resilience(const resilience::Config& config) {
    resilience_ = config;
    port_.set_policy(config.server);
  }

  // ---- fault injection ----
  /// Crash the slapd (blackhole: the whole host vanished). The provider
  /// cache is volatile: restart comes back cold.
  void crash(bool blackhole = false) {
    port_.crash(blackhole);
    for (auto& p : providers_) {
      p.fresh_until = -1;  // the slapd cache is volatile
      p.stale = false;
    }
  }
  void restart() { port_.restart(); }
  bool process_up() const noexcept { return port_.up(); }
  /// Hang (or un-hang) the information provider scripts: queries needing
  /// fresh data wait out `provider_timeout`, then either serve the expired
  /// cache (stale) or fail.
  void set_collectors_down(bool down) noexcept { collectors_down_ = down; }
  bool node_up() const override { return port_.up(); }

 private:
  struct ProviderState {
    ProviderSpec spec;
    double fresh_until = -1;  // simulated time the cached data expires
    std::uint64_t sequence = 0;
    bool stale = false;  // the cached entries outlived a failed refresh
  };

  /// What a backend refresh pass actually delivered.
  struct RefreshOutcome {
    bool hit = true;     // everything already fresh (a cache hit)
    bool stale = false;  // expired cache served because a provider hung
    bool failed = false;  // no data obtainable for some needed provider
  };

  /// Ensure provider data needed by `scope` is in the DIT, forking the
  /// provider scripts for anything stale.
  sim::Task<RefreshOutcome> refresh(QueryScope scope, trace::Ctx ctx);

  /// The search itself plus CPU charges; returns the reply (admitted set
  /// by caller).
  sim::Task<MdsReply> serve(QueryScope scope, trace::Ctx ctx);

  /// Shared backend: refresh per `refresh_scope`, then run an arbitrary
  /// filtered search with attribute selection and size limit.
  sim::Task<MdsReply> serve_filter(QueryScope refresh_scope,
                                   const ldap::Filter& filter,
                                   std::vector<std::string> attrs,
                                   std::size_t size_limit, trace::Ctx ctx);

  const ldap::Filter& scope_filter(QueryScope scope) const;

  net::Network& net_;
  host::Host& host_;
  net::Interface& nic_;
  std::string name_;
  ldap::Dn host_dn_;
  ldap::Dn root_dn_;
  // Canned per-scope filters, parsed once (queries reuse them).
  ldap::FilterPtr all_filter_;
  ldap::FilterPtr part_filter_;  // null when there are no providers
  GrisConfig config_;
  std::vector<ProviderState> providers_;
  ldap::Dit dit_;
  sim::Resource pool_;
  net::ServerPort port_;
  std::uint64_t provider_runs_ = 0;
  bool collectors_down_ = false;
  resilience::Config resilience_{};
};

}  // namespace gridmon::mds
