#pragma once

/// \file giis.hpp
/// Grid Index Information Service: the MDS aggregate directory. Any
/// MdsNode — a GRIS *or another GIIS* — registers with soft state; the
/// GIIS pulls registrant data on cache miss (controlled by `cachettl`)
/// and answers LDAP searches over the aggregated tree. Implementing
/// MdsNode itself makes multi-level hierarchies (paper Figure 1, and the
/// fix proposed in §3.6) a first-class deployment.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gridmon/host/host.hpp"
#include "gridmon/ldap/dit.hpp"
#include "gridmon/mds/gris.hpp"
#include "gridmon/mds/node.hpp"
#include "gridmon/net/network.hpp"
#include "gridmon/net/server_port.hpp"
#include "gridmon/sim/event.hpp"
#include "gridmon/sim/resource.hpp"
#include "gridmon/sim/task.hpp"

namespace gridmon::mds {

struct GiisConfig {
  int pool_size = 4;
  int backlog = 512;
  /// grid-info-search startup + GSI latency on the client side.
  double client_tool_latency = 1.2;
  double query_base_cpu = 0.004;
  double examine_cpu_per_entry = 0.00005;
  double serialize_cpu_per_entry = 0.00012;
  /// CPU to process one incoming soft-state registration message.
  double registration_cpu = 0.008;
  double registration_bytes = 512;
  /// Registrations older than this many seconds age out (soft state).
  double registration_ttl = 90.0;
  /// How long pulled registrant data stays fresh. The paper's
  /// directory-server experiments set this "to a very large value so
  /// that the data was always in the cache".
  double cachettl = 1e18;
  /// CPU to merge one fetched entry into the aggregate DIT.
  double merge_cpu_per_entry = 0.0002;
  /// Give up on registrants that have not answered a cache pull after
  /// this long (LDAP operation timeout); their old data is kept out of
  /// this refresh and retried on the next one.
  double fetch_timeout = 60.0;
  double request_bytes = 512;
  /// Re-registration period when this GIIS registers upward to a parent.
  double upward_registration_interval = 30.0;
  /// Client/transfer patience on a dead path (blackholed SYN, partitioned
  /// WAN). Only consulted under faults.
  double connect_timeout = 75.0;
};

class Giis final : public MdsNode {
 public:
  Giis(net::Network& net, host::Host& host, net::Interface& nic,
       std::string name, GiisConfig config = {});

  const std::string& name() const noexcept { return name_; }
  host::Host& host() noexcept { return host_; }
  net::Interface& nic() noexcept { return nic_; }
  net::ServerPort& port() noexcept { return port_; }

  /// Install the overload-control layer: server policy on the listen
  /// port, serve-stale for the aggregate cache, and a per-registrant
  /// circuit breaker on the GIIS->GRIS fetch fan-out.
  void set_resilience(const resilience::Config& config) {
    resilience_ = config;
    port_.set_policy(config.server);
  }

  /// Register a node (GRIS or child GIIS) and start its periodic
  /// soft-state re-registration. The node must outlive this Giis.
  void add_registrant(MdsNode& node);

  /// Stop a registrant's re-registration loop (simulates death); its
  /// registration then ages out after registration_ttl.
  void kill_registrant(const std::string& node_name);

  std::size_t live_registrant_count() const;
  std::size_t entry_count() const noexcept { return dit_.size(); }
  std::uint64_t registrations_processed() const noexcept {
    return registrations_;
  }

  /// Full client query (tool latency + connect + admission + serve).
  sim::Task<MdsReply> query(net::Interface& client,
                            QueryScope scope = QueryScope::All,
                            trace::Ctx ctx = {});

  /// General LDAP search against the aggregate tree (caller-supplied
  /// filter, attribute selection, size limit).
  sim::Task<MdsReply> search(net::Interface& client, SearchRequest request,
                             trace::Ctx ctx = {});

  /// Attach resource timelines ("<name>.pool") to a trace collector.
  void instrument(trace::Collector& col) {
    pool_.set_probe(&col.track(name_ + ".pool"));
  }

  // ---- MdsNode (this GIIS registering to a parent GIIS) ----
  const std::string& node_name() const override { return name_; }
  const ldap::Dn& suffix() const override { return vo_dn_; }
  ldap::Entry suffix_entry() const override;
  net::Interface& registration_nic() override { return nic_; }
  double registration_interval() const override {
    return config_.upward_registration_interval;
  }
  /// Server-to-server pull of this GIIS's whole aggregate (hosts, VOs
  /// and devices). Refreshes this level's own cache first, so pulls
  /// cascade down a multi-level hierarchy.
  sim::Task<MdsReply> fetch(net::Interface& requester,
                            trace::Ctx ctx = {}) override;
  bool node_up() const override { return port_.up(); }

  // ---- fault injection ----
  /// Crash the slapd: the aggregate DIT and registration table are
  /// volatile, so restart comes back with an empty tree and re-learns
  /// registrants from their next soft-state beats.
  void crash(bool blackhole = false);
  void restart() { port_.restart(); }
  bool process_up() const noexcept { return port_.up(); }

 private:
  struct Registrant {
    MdsNode* node;
    double expires_at = 0;
    bool alive = true;      // re-registration loop running
    bool fetched = false;   // data currently merged into the DIT
  };

  sim::Task<void> registration_loop(MdsNode& node);
  sim::Task<void> serve_registration(MdsNode& node);

  /// Pull data from every live registrant whose cache slice is stale.
  /// Returns true when the refresh was skipped under shed pressure and
  /// the (expired) aggregate was served stale instead.
  sim::Task<bool> refresh_cache(trace::Ctx ctx);

  /// Per-registrant circuit breaker on the fetch fan-out (pass-throughs
  /// while the client policy is disabled).
  bool fetch_allowed(const std::string& node);
  void record_fetch(const std::string& node, bool success);

  /// Merge one fetch result under the node's suffix.
  sim::Task<void> merge_payload(MdsNode& node, MdsReply reply,
                                trace::Ctx ctx);

  /// Drop registrations (and their subtrees) that have aged out.
  void sweep();

  ldap::FilterPtr scope_filter(QueryScope scope) const;

  net::Network& net_;
  host::Host& host_;
  net::Interface& nic_;
  std::string name_;
  ldap::Dn vo_dn_;
  GiisConfig config_;
  std::map<std::string, Registrant> registrants_;
  ldap::Dit dit_;
  double cache_fresh_until_ = -1;
  bool refreshing_ = false;
  sim::Event refresh_done_;
  sim::Resource pool_;
  net::ServerPort port_;
  std::uint64_t registrations_ = 0;
  resilience::Config resilience_{};
  std::map<std::string, resilience::CircuitBreaker> fetch_breakers_;
};

}  // namespace gridmon::mds
