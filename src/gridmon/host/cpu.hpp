#pragma once

/// \file cpu.hpp
/// Multi-core processor-sharing CPU. Work is expressed in *reference*
/// CPU-seconds (seconds on a 1000 MHz core); a faster or slower host scales
/// the wall time accordingly, which lets cost constants be written once and
/// reused across the heterogeneous testbed (1133 MHz Lucky nodes, 1208 and
/// 756 MHz UC client nodes).

#include "gridmon/sim/ps_server.hpp"
#include "gridmon/sim/simulation.hpp"

namespace gridmon::host {

class Cpu {
 public:
  Cpu(sim::Simulation& sim, int cores, double mhz)
      : cores_(cores),
        speed_(mhz / 1000.0),
        ps_(sim, static_cast<double>(cores), cores) {}

  int cores() const noexcept { return cores_; }
  double speed_factor() const noexcept { return speed_; }

  /// Awaitable: execute `ref_seconds` of reference CPU work under
  /// processor sharing with everything else on this CPU.
  sim::PsServer::ConsumeAwaiter consume(double ref_seconds) {
    return ps_.consume(ref_seconds / speed_);
  }

  /// Number of runnable processes right now (feeds load1).
  int runnable() const noexcept { return ps_.active_jobs(); }

  /// Cumulative busy core-seconds (local units) for utilization sampling.
  double busy_core_seconds() const { return ps_.served_total(); }

  /// Underlying PS server — exposed so a trace probe can watch the run
  /// queue (see sim::UsageProbe).
  sim::PsServer& ps() noexcept { return ps_; }

  /// Utilization (0..100) over an interval given a served-work delta.
  double utilization_percent(double served_delta, double dt) const {
    if (dt <= 0) return 0;
    double u = 100.0 * served_delta / (static_cast<double>(cores_) * dt);
    return u < 0 ? 0 : (u > 100 ? 100 : u);
  }

 private:
  int cores_;
  double speed_;
  sim::PsServer ps_;
};

}  // namespace gridmon::host
