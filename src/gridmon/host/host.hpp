#pragma once

/// \file host.hpp
/// A simulated machine: named CPU plus Ganglia-style gauges (cpu_user +
/// cpu_system percentage and the one-minute load average the paper calls
/// "load" and "load1").

#include <memory>
#include <string>

#include "gridmon/host/cpu.hpp"
#include "gridmon/host/disk.hpp"
#include "gridmon/metrics/load_average.hpp"
#include "gridmon/metrics/sampler.hpp"
#include "gridmon/sim/simulation.hpp"
#include "gridmon/sim/task.hpp"
#include "gridmon/trace/collector.hpp"

namespace gridmon::host {

struct HostSpec {
  std::string name;
  std::string site;
  int cores = 2;
  double mhz = 1133;  // Lucky testbed default: dual PIII 1133
};

class Host {
 public:
  Host(sim::Simulation& sim, HostSpec spec)
      : sim_(sim), spec_(std::move(spec)),
        cpu_(sim, spec_.cores, spec_.mhz), disk_(sim) {}
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const noexcept { return spec_.name; }
  const std::string& site() const noexcept { return spec_.site; }
  Cpu& cpu() noexcept { return cpu_; }
  const Cpu& cpu() const noexcept { return cpu_; }
  Disk& disk() noexcept { return disk_; }
  const Disk& disk() const noexcept { return disk_; }
  sim::Simulation& simulation() noexcept { return sim_; }

  /// Spawn-a-process cost model: fork/exec overhead plus the program's own
  /// CPU work, all under processor sharing. Used for MDS shell-script
  /// information providers. `detail` labels the trace span with the
  /// provider name.
  sim::Task<void> fork_exec(double program_ref_seconds, trace::Ctx ctx = {},
                            std::string_view detail = {}) {
    trace::Span span(ctx, trace::SpanKind::ForkExec, detail,
                     program_ref_seconds);
    co_await cpu_.consume(kForkExecOverheadRefSeconds + program_ref_seconds);
  }

  /// Register this host's Ganglia gauges with a sampler. Gauge names are
  /// "<host>.load1" and "<host>.cpu_pct".
  void attach(metrics::Sampler& sampler) {
    auto* self = this;
    auto& sim = sim_;
    auto load_state = std::make_shared<double>(sim.now());
    sampler.add_gauge(
        name() + ".load1", [self, &sim, load_state]() mutable {
          double now = sim.now();
          double dt = now - *load_state;
          *load_state = now;
          self->load1_.sample(dt > 0 ? dt : 5.0,
                              static_cast<double>(self->cpu_.runnable()));
          return self->load1_.value();
        });
    struct CpuState {
      double last_served;
      double last_t;
    };
    auto cpu_state = std::make_shared<CpuState>(
        CpuState{cpu_.busy_core_seconds(), sim.now()});
    sampler.add_gauge(name() + ".cpu_pct", [self, &sim, cpu_state]() {
      double served = self->cpu_.busy_core_seconds();
      double now = sim.now();
      double pct = self->cpu_.utilization_percent(
          served - cpu_state->last_served, now - cpu_state->last_t);
      cpu_state->last_served = served;
      cpu_state->last_t = now;
      return pct;
    });
  }

  const metrics::LoadAverage& load1() const noexcept { return load1_; }

  /// fork+exec of a shell-script provider on year-2002 Linux: process
  /// creation, dynamic linking, interpreter startup.
  static constexpr double kForkExecOverheadRefSeconds = 0.020;

 private:
  sim::Simulation& sim_;
  HostSpec spec_;
  Cpu cpu_;
  Disk disk_;
  metrics::LoadAverage load1_;
};

}  // namespace gridmon::host
