#pragma once

/// \file disk.hpp
/// A simulated local disk: one request at a time (a single IDE spindle on
/// the year-2002 Lucky nodes), sequential-transfer bandwidth for reads and
/// writes, and a fixed barrier latency per fsync (seek + rotational wait +
/// on-platter cache flush). The durability subsystem (src/gridmon/store)
/// drives every WAL and snapshot byte through here so persistence costs
/// flow through the same cost model as CPU and network time.

#include <cstdint>

#include "gridmon/sim/resource.hpp"
#include "gridmon/sim/simulation.hpp"
#include "gridmon/sim/task.hpp"

namespace gridmon::host {

struct DiskSpec {
  /// Sequential write bandwidth, bytes/second (~25 MB/s IDE of the era).
  double write_bandwidth = 25e6;
  /// Sequential read bandwidth, bytes/second (reads stream a bit faster).
  double read_bandwidth = 30e6;
  /// One write barrier: seek + rotational latency + cache flush.
  double fsync_latency = 0.008;
};

/// FIFO-serialized disk. All three operations queue on a single slot, so
/// a long snapshot write delays the WAL flush behind it, exactly like a
/// shared spindle would.
class Disk {
 public:
  Disk(sim::Simulation& sim, DiskSpec spec = {})
      : sim_(sim), spec_(spec), spindle_(sim, 1) {}
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  const DiskSpec& spec() const noexcept { return spec_; }
  /// Retune the disk (the [store] fsync/bandwidth knobs land here).
  void set_spec(const DiskSpec& spec) noexcept { spec_ = spec; }

  /// Append `bytes` sequentially. Time = bytes / write_bandwidth.
  sim::Task<void> write(double bytes) {
    auto lease = co_await spindle_.acquire();
    if (bytes > 0 && spec_.write_bandwidth > 0) {
      co_await sim_.delay(bytes / spec_.write_bandwidth);
    }
    bytes_written_ += bytes > 0 ? bytes : 0;
  }

  /// Stream `bytes` back in. Time = bytes / read_bandwidth.
  sim::Task<void> read(double bytes) {
    auto lease = co_await spindle_.acquire();
    if (bytes > 0 && spec_.read_bandwidth > 0) {
      co_await sim_.delay(bytes / spec_.read_bandwidth);
    }
    bytes_read_ += bytes > 0 ? bytes : 0;
  }

  /// Write barrier: everything written before this is durable after it.
  sim::Task<void> fsync() {
    auto lease = co_await spindle_.acquire();
    if (spec_.fsync_latency > 0) co_await sim_.delay(spec_.fsync_latency);
    ++fsyncs_;
  }

  double bytes_written() const noexcept { return bytes_written_; }
  double bytes_read() const noexcept { return bytes_read_; }
  std::uint64_t fsyncs() const noexcept { return fsyncs_; }

 private:
  sim::Simulation& sim_;
  DiskSpec spec_;
  sim::Resource spindle_;
  double bytes_written_ = 0;
  double bytes_read_ = 0;
  std::uint64_t fsyncs_ = 0;
};

}  // namespace gridmon::host
