#pragma once

/// \file time_series.hpp
/// Timestamped metric series with windowed aggregation — the in-memory
/// equivalent of what the paper collected through Ganglia.

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace gridmon::metrics {

struct Point {
  double t;
  double value;
};

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  void record(double t, double value) { points_.push_back({t, value}); }

  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }
  const std::vector<Point>& points() const noexcept { return points_; }

  double last() const { return points_.empty() ? 0.0 : points_.back().value; }

  /// Mean of samples with t in [t0, t1] (the paper's 10-minute averages).
  double mean_over(double t0, double t1) const {
    double sum = 0;
    std::size_t n = 0;
    for (const auto& p : points_) {
      if (p.t >= t0 && p.t <= t1) {
        sum += p.value;
        ++n;
      }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  }

  double max_over(double t0, double t1) const {
    double best = 0;
    bool any = false;
    for (const auto& p : points_) {
      if (p.t >= t0 && p.t <= t1) {
        best = any ? std::max(best, p.value) : p.value;
        any = true;
      }
    }
    return any ? best : 0.0;
  }

  double mean() const {
    if (points_.empty()) return 0;
    double sum = 0;
    for (const auto& p : points_) sum += p.value;
    return sum / static_cast<double>(points_.size());
  }

  void clear() { points_.clear(); }

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace gridmon::metrics
