#pragma once

/// \file sampler.hpp
/// Ganglia-style metric collector: polls registered gauges on a fixed
/// interval (5 s in the paper) and appends to named time series.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gridmon/metrics/time_series.hpp"
#include "gridmon/sim/simulation.hpp"
#include "gridmon/sim/task.hpp"

namespace gridmon::metrics {

class Sampler {
 public:
  using Gauge = std::function<double()>;

  Sampler(sim::Simulation& sim, double interval_seconds = 5.0)
      : sim_(sim), interval_(interval_seconds) {}
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Register a gauge; it is polled every interval once start() runs.
  void add_gauge(const std::string& name, Gauge gauge) {
    gauges_.emplace_back(name, std::move(gauge));
    series_.emplace(name, TimeSeries(name));
  }

  /// Begin sampling (spawns the polling process). Samples are taken at
  /// t = start + k*interval for k = 1, 2, ...
  void start() { sim_.spawn(poll_loop(*this)); }

  const TimeSeries& series(const std::string& name) const {
    static const TimeSeries kEmpty;
    auto it = series_.find(name);
    return it == series_.end() ? kEmpty : it->second;
  }

  bool has_series(const std::string& name) const {
    return series_.contains(name);
  }

  double interval() const noexcept { return interval_; }

 private:
  static sim::Task<void> poll_loop(Sampler& self) {
    for (;;) {
      co_await self.sim_.delay(self.interval_);
      double now = self.sim_.now();
      for (auto& [name, gauge] : self.gauges_) {
        self.series_.at(name).record(now, gauge());
      }
    }
  }

  sim::Simulation& sim_;
  double interval_;
  std::vector<std::pair<std::string, Gauge>> gauges_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace gridmon::metrics
