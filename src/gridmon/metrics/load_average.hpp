#pragma once

/// \file load_average.hpp
/// Linux-style exponentially-damped run-queue average ("load1", the
/// Ganglia `load_one` metric used throughout the paper).

#include <cmath>

namespace gridmon::metrics {

/// Feed the instantaneous number of runnable processes at a fixed sampling
/// cadence; `value()` is the one-minute load average exactly as the Linux
/// kernel computes it (exp-decay with a 60 s time constant).
class LoadAverage {
 public:
  explicit LoadAverage(double time_constant_seconds = 60.0)
      : tau_(time_constant_seconds) {}

  void sample(double dt_seconds, double runnable) {
    double decay = std::exp(-dt_seconds / tau_);
    value_ = value_ * decay + runnable * (1.0 - decay);
  }

  double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  double tau_;
  double value_ = 0;
};

}  // namespace gridmon::metrics
