#pragma once

/// \file report.hpp
/// Tabular result formatting: aligned text tables for the terminal and CSV
/// for downstream plotting. Every bench binary prints its figures through
/// this so the output matches the paper's series layout.

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace gridmon::metrics {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_columns(std::vector<std::string> names) {
    columns_ = std::move(names);
  }

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Convenience: format doubles with fixed precision; "-" for NaN-ish
  /// sentinel (negative values used as "not measured").
  static std::string num(double v, int precision = 2) {
    if (v < 0) return "-";
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  const std::string& title() const noexcept { return title_; }
  const std::vector<std::string>& columns() const noexcept { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  void print_text(std::ostream& os) const {
    std::vector<std::size_t> widths(columns_.size(), 0);
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    os << "== " << title_ << " ==\n";
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
           << cells[c];
      }
      os << '\n';
    };
    print_row(columns_);
    std::size_t total = 2 * columns_.size();
    for (auto w : widths) total += w;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(row);
  }

  void print_csv(std::ostream& os) const {
    os << "# " << title_ << '\n';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << (c ? "," : "") << columns_[c];
    }
    os << '\n';
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << (c ? "," : "") << row[c];
      }
      os << '\n';
    }
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gridmon::metrics
