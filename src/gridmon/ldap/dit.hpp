#pragma once

/// \file dit.hpp
/// Directory Information Tree: the hierarchical entry store behind a GRIS
/// or GIIS. Supports add/replace/remove and base/one-level/subtree search
/// with filter, attribute selection and a size limit (slapd semantics).

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gridmon/ldap/entry.hpp"
#include "gridmon/ldap/filter.hpp"

namespace gridmon::ldap {

enum class Scope { Base, One, Subtree };

struct SearchResult {
  std::vector<Entry> entries;
  bool size_limit_exceeded = false;
  /// Entries visited during evaluation (drives simulated search cost).
  std::size_t entries_examined = 0;

  double wire_bytes() const {
    double b = 64;  // result envelope
    for (const auto& e : entries) b += e.wire_bytes();
    return b;
  }
};

class Dit {
 public:
  /// Add an entry; its parent must already exist unless the entry is a
  /// suffix (top-level) entry. Replaces an existing entry at the same DN.
  void add(Entry entry);

  /// Remove an entry and its whole subtree. Returns entries removed.
  std::size_t remove_subtree(const Dn& dn);

  bool contains(const Dn& dn) const;
  const Entry* find(const Dn& dn) const;
  std::size_t size() const noexcept { return nodes_.size(); }

  /// LDAP search. `attrs` empty means all attributes; size_limit 0 means
  /// unlimited.
  SearchResult search(const Dn& base, Scope scope, const Filter& filter,
                      const std::vector<std::string>& attrs = {},
                      std::size_t size_limit = 0) const;

  /// All DNs in the tree (normalized), sorted — handy for tests/dumps.
  std::vector<std::string> dns() const;

  void clear() { nodes_.clear(); }

 private:
  struct Node {
    Entry entry;
    std::set<std::string> children;  // normalized child DNs
  };

  std::map<std::string, Node> nodes_;
};

}  // namespace gridmon::ldap
