#pragma once

/// \file filter.hpp
/// LDAP search filters per RFC 1960 (the string representation used by the
/// ldapsearch tooling the paper's user scripts drove):
///
///   (&(objectclass=MdsHost)(Mds-Host-hn=lucky*))
///   (|(cpu>=4)(!(os=linux)))
///   (description=*)
///
/// Supported item types: equality, presence, substring (initial/any/final),
/// >=, <=, ~= (treated as equality). Values compare case-insensitively;
/// ordering comparisons go numeric when both sides parse as numbers.

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "gridmon/ldap/entry.hpp"

namespace gridmon::ldap {

class FilterError : public std::runtime_error {
 public:
  explicit FilterError(const std::string& msg) : std::runtime_error(msg) {}
};

class Filter;
using FilterPtr = std::unique_ptr<Filter>;

class Filter {
 public:
  virtual ~Filter() = default;
  virtual bool matches(const Entry& e) const = 0;
  virtual std::string to_string() const = 0;

  /// Parse an RFC 1960 filter string. Throws FilterError on bad syntax.
  static FilterPtr parse(std::string_view text);

  /// The match-everything filter "(objectclass=*)".
  static FilterPtr match_all();
};

class AndFilter final : public Filter {
 public:
  explicit AndFilter(std::vector<FilterPtr> children)
      : children_(std::move(children)) {}
  bool matches(const Entry& e) const override;
  std::string to_string() const override;

 private:
  std::vector<FilterPtr> children_;
};

class OrFilter final : public Filter {
 public:
  explicit OrFilter(std::vector<FilterPtr> children)
      : children_(std::move(children)) {}
  bool matches(const Entry& e) const override;
  std::string to_string() const override;

 private:
  std::vector<FilterPtr> children_;
};

class NotFilter final : public Filter {
 public:
  explicit NotFilter(FilterPtr child) : child_(std::move(child)) {}
  bool matches(const Entry& e) const override;
  std::string to_string() const override;

 private:
  FilterPtr child_;
};

class PresenceFilter final : public Filter {
 public:
  explicit PresenceFilter(std::string attr) : attr_(std::move(attr)) {}
  bool matches(const Entry& e) const override;
  std::string to_string() const override;

 private:
  std::string attr_;
};

enum class CompareOp { Equal, GreaterEq, LessEq, Approx };

class CompareFilter final : public Filter {
 public:
  CompareFilter(std::string attr, CompareOp op, std::string value)
      : attr_(std::move(attr)), op_(op), value_(std::move(value)) {}
  bool matches(const Entry& e) const override;
  std::string to_string() const override;

 private:
  std::string attr_;
  CompareOp op_;
  std::string value_;
};

/// attr=initial*any*any*final — any component may be empty.
class SubstringFilter final : public Filter {
 public:
  SubstringFilter(std::string attr, std::string initial,
                  std::vector<std::string> any, std::string final_part);
  bool matches(const Entry& e) const override;
  std::string to_string() const override;

 private:
  std::string attr_;
  std::string initial_;
  std::vector<std::string> any_;
  std::string final_;
  // Lowercased copies of the components, so matches() compares in place
  // instead of building lowered strings per candidate value.
  std::string initial_lc_;
  std::vector<std::string> any_lc_;
  std::string final_lc_;
};

}  // namespace gridmon::ldap
