#include "gridmon/ldap/entry.hpp"

#include <algorithm>
#include <cctype>

namespace gridmon::ldap {
namespace {

bool iequal(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string Entry::norm(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

void Entry::add(const std::string& attr, std::string value) {
  attrs_[norm(attr)].push_back(std::move(value));
}

void Entry::set(const std::string& attr, std::string value) {
  auto& vals = attrs_[norm(attr)];
  vals.clear();
  vals.push_back(std::move(value));
}

bool Entry::has_attribute(const std::string& attr) const {
  return attrs_.find(norm(attr)) != attrs_.end();
}

const std::vector<std::string>& Entry::values(const std::string& attr) const {
  static const std::vector<std::string> kEmpty;
  auto it = attrs_.find(norm(attr));
  return it == attrs_.end() ? kEmpty : it->second;
}

const std::string& Entry::value(const std::string& attr) const {
  static const std::string kEmpty;
  const auto& v = values(attr);
  return v.empty() ? kEmpty : v.front();
}

bool Entry::matches_value(const std::string& attr,
                          const std::string& v) const {
  for (const auto& candidate : values(attr)) {
    if (iequal(candidate, v)) return true;
  }
  return false;
}

std::vector<std::string> Entry::attribute_names() const {
  std::vector<std::string> names;
  names.reserve(attrs_.size());
  for (const auto& [name, values] : attrs_) names.push_back(name);
  return names;
}

Entry Entry::project(const std::vector<std::string>& attrs) const {
  if (attrs.empty()) return *this;
  Entry out(dn_);
  for (const auto& want : attrs) {
    auto it = attrs_.find(norm(want));
    if (it != attrs_.end()) out.attrs_[it->first] = it->second;
  }
  return out;
}

double Entry::wire_bytes() const {
  double bytes = static_cast<double>(dn_.to_string().size()) + 8;
  for (const auto& [name, values] : attrs_) {
    for (const auto& v : values) {
      bytes += static_cast<double>(name.size() + v.size() + 3);
    }
  }
  return bytes;
}

}  // namespace gridmon::ldap
