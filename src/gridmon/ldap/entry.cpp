#include "gridmon/ldap/entry.hpp"

#include <algorithm>
#include <cctype>

namespace gridmon::ldap {
namespace {

bool iequal(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const Dn& empty_dn() {
  static const Dn kEmpty;
  return kEmpty;
}

}  // namespace

std::string Entry::norm(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool Entry::is_norm(const std::string& s) noexcept {
  for (unsigned char c : s) {
    if (std::tolower(c) != c) return false;
  }
  return true;
}

Entry::Entry(Dn dn) : rep_(std::make_shared<Rep>()) {
  rep_->dn = std::move(dn);
}

Entry::Rep& Entry::mut() {
  if (!rep_) {
    rep_ = std::make_shared<Rep>();
  } else if (rep_.use_count() > 1) {
    auto clone = std::make_shared<Rep>();
    clone->dn = rep_->dn;
    clone->attrs = rep_->attrs;
    rep_ = std::move(clone);
  }
  rep_->wire_cache = -1;
  return *rep_;
}

const Dn& Entry::dn() const noexcept { return rep_ ? rep_->dn : empty_dn(); }

void Entry::set_dn(Dn dn) { mut().dn = std::move(dn); }

void Entry::add(const std::string& attr, std::string value) {
  mut().attrs[norm(attr)].push_back(std::move(value));
}

void Entry::set(const std::string& attr, std::string value) {
  auto& vals = mut().attrs[norm(attr)];
  vals.clear();
  vals.push_back(std::move(value));
}

bool Entry::has_attribute(const std::string& attr) const {
  if (!rep_) return false;
  const AttrMap& attrs = rep_->attrs;
  auto it = is_norm(attr) ? attrs.find(attr) : attrs.find(norm(attr));
  return it != attrs.end();
}

const std::vector<std::string>& Entry::values(const std::string& attr) const {
  static const std::vector<std::string> kEmpty;
  if (!rep_) return kEmpty;
  const AttrMap& attrs = rep_->attrs;
  auto it = is_norm(attr) ? attrs.find(attr) : attrs.find(norm(attr));
  return it == attrs.end() ? kEmpty : it->second;
}

const std::string& Entry::value(const std::string& attr) const {
  static const std::string kEmpty;
  const auto& v = values(attr);
  return v.empty() ? kEmpty : v.front();
}

bool Entry::matches_value(const std::string& attr,
                          const std::string& v) const {
  for (const auto& candidate : values(attr)) {
    if (iequal(candidate, v)) return true;
  }
  return false;
}

std::vector<std::string> Entry::attribute_names() const {
  std::vector<std::string> names;
  if (!rep_) return names;
  names.reserve(rep_->attrs.size());
  for (const auto& [name, values] : rep_->attrs) names.push_back(name);
  return names;
}

std::size_t Entry::attribute_count() const noexcept {
  return rep_ ? rep_->attrs.size() : 0;
}

Entry Entry::project(const std::vector<std::string>& attrs) const {
  if (attrs.empty()) return *this;  // shares the representation
  Entry out(dn());
  if (!rep_) return out;
  for (const auto& want : attrs) {
    auto it = rep_->attrs.find(norm(want));
    if (it != rep_->attrs.end()) out.rep_->attrs[it->first] = it->second;
  }
  return out;
}

double Entry::wire_bytes() const {
  if (!rep_) return 8;  // bare envelope: empty DN + no attributes
  if (rep_->wire_cache >= 0) return rep_->wire_cache;
  double bytes = static_cast<double>(rep_->dn.to_string().size()) + 8;
  for (const auto& [name, values] : rep_->attrs) {
    for (const auto& v : values) {
      bytes += static_cast<double>(name.size() + v.size() + 3);
    }
  }
  rep_->wire_cache = bytes;
  return bytes;
}

}  // namespace gridmon::ldap
