#include "gridmon/ldap/ldif.hpp"

namespace gridmon::ldap {

std::string to_ldif(const Entry& entry) {
  std::string out = "dn: " + entry.dn().to_string() + "\n";
  for (const auto& name : entry.attribute_names()) {
    for (const auto& v : entry.values(name)) {
      out += name;
      out += ": ";
      out += v;
      out += '\n';
    }
  }
  return out;
}

std::string to_ldif(const std::vector<Entry>& entries) {
  std::string out;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i) out += '\n';
    out += to_ldif(entries[i]);
  }
  return out;
}

std::vector<Entry> from_ldif(std::string_view text) {
  std::vector<Entry> out;
  Entry current;
  bool in_record = false;
  std::string pending_attr;  // attribute awaiting continuation lines
  std::string pending_value;

  auto flush_pending = [&] {
    if (!pending_attr.empty()) {
      if (pending_attr == "dn") {
        current.set_dn(Dn::parse(pending_value));
      } else {
        current.add(pending_attr, pending_value);
      }
      pending_attr.clear();
      pending_value.clear();
    }
  };
  auto flush_record = [&] {
    flush_pending();
    if (in_record) {
      if (current.dn().empty()) {
        throw LdifError("LDIF record without dn:");
      }
      out.push_back(std::move(current));
      current = Entry();
      in_record = false;
    }
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos
                             ? std::string_view::npos
                             : eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;

    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) {
      flush_record();
      continue;
    }
    if (line.front() == '#') continue;
    if (line.front() == ' ') {
      // Continuation of the previous value.
      if (pending_attr.empty()) {
        throw LdifError("continuation line with no preceding attribute");
      }
      pending_value += std::string(line.substr(1));
      continue;
    }
    flush_pending();
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      throw LdifError("malformed LDIF line: " + std::string(line));
    }
    pending_attr = std::string(line.substr(0, colon));
    std::string_view value = line.substr(colon + 1);
    if (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    pending_value = std::string(value);
    in_record = true;
  }
  flush_record();
  return out;
}

}  // namespace gridmon::ldap
