#include "gridmon/ldap/dit.hpp"

#include <stdexcept>

namespace gridmon::ldap {

void Dit::add(Entry entry) {
  const Dn& dn = entry.dn();
  if (dn.empty()) throw DnError("cannot add entry with empty DN");
  std::string key = dn.normalized();
  Dn parent = dn.parent();
  if (!parent.empty()) {
    auto pit = nodes_.find(parent.normalized());
    if (pit == nodes_.end()) {
      throw DnError("parent entry does not exist: " + parent.to_string());
    }
    pit->second.children.insert(key);
  }
  auto it = nodes_.find(key);
  if (it != nodes_.end()) {
    it->second.entry = std::move(entry);  // replace, keep children
  } else {
    Node node;
    node.entry = std::move(entry);
    nodes_.emplace(std::move(key), std::move(node));
  }
}

std::size_t Dit::remove_subtree(const Dn& dn) {
  std::string key = dn.normalized();
  auto it = nodes_.find(key);
  if (it == nodes_.end()) return 0;
  std::size_t removed = 0;
  // Depth-first removal of children (copy the set: we mutate nodes_).
  auto children = it->second.children;
  for (const auto& child : children) {
    auto cit = nodes_.find(child);
    if (cit != nodes_.end()) {
      removed += remove_subtree(cit->second.entry.dn());
    }
  }
  Dn parent = dn.parent();
  if (!parent.empty()) {
    auto pit = nodes_.find(parent.normalized());
    if (pit != nodes_.end()) pit->second.children.erase(key);
  }
  nodes_.erase(key);
  return removed + 1;
}

bool Dit::contains(const Dn& dn) const {
  return nodes_.find(dn.normalized()) != nodes_.end();
}

const Entry* Dit::find(const Dn& dn) const {
  auto it = nodes_.find(dn.normalized());
  return it == nodes_.end() ? nullptr : &it->second.entry;
}

SearchResult Dit::search(const Dn& base, Scope scope, const Filter& filter,
                         const std::vector<std::string>& attrs,
                         std::size_t size_limit) const {
  SearchResult result;
  auto consider = [&](const Entry& e) -> bool {
    ++result.entries_examined;
    if (!filter.matches(e)) return true;
    if (size_limit != 0 && result.entries.size() >= size_limit) {
      result.size_limit_exceeded = true;
      return false;  // stop the walk
    }
    result.entries.push_back(e.project(attrs));
    return true;
  };

  auto base_it = nodes_.find(base.normalized());
  if (base_it == nodes_.end() && !base.empty()) return result;

  switch (scope) {
    case Scope::Base:
      if (base_it != nodes_.end()) consider(base_it->second.entry);
      break;
    case Scope::One: {
      if (base_it == nodes_.end()) break;
      for (const auto& child : base_it->second.children) {
        auto cit = nodes_.find(child);
        if (cit != nodes_.end() && !consider(cit->second.entry)) break;
      }
      break;
    }
    case Scope::Subtree: {
      if (base.empty()) {
        // Whole-tree search from the (virtual) root.
        for (const auto& [key, node] : nodes_) {
          if (!consider(node.entry)) break;
        }
        break;
      }
      // Iterative DFS from the base.
      std::vector<const Node*> stack{&base_it->second};
      bool stopped = false;
      while (!stack.empty() && !stopped) {
        const Node* node = stack.back();
        stack.pop_back();
        if (!consider(node->entry)) {
          stopped = true;
          break;
        }
        for (const auto& child : node->children) {
          auto cit = nodes_.find(child);
          if (cit != nodes_.end()) stack.push_back(&cit->second);
        }
      }
      break;
    }
  }
  return result;
}

std::vector<std::string> Dit::dns() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [key, node] : nodes_) out.push_back(key);
  return out;
}

}  // namespace gridmon::ldap
