#pragma once

/// \file entry.hpp
/// An LDAP entry: a DN plus multi-valued attributes with case-insensitive
/// attribute names and case-insensitive value matching (the directory
/// string syntax MDS uses everywhere).

#include <map>
#include <string>
#include <vector>

#include "gridmon/ldap/dn.hpp"

namespace gridmon::ldap {

class Entry {
 public:
  Entry() = default;
  explicit Entry(Dn dn) : dn_(std::move(dn)) {}

  const Dn& dn() const noexcept { return dn_; }
  void set_dn(Dn dn) { dn_ = std::move(dn); }

  /// Append a value to an attribute (attributes are multi-valued).
  void add(const std::string& attr, std::string value);
  /// Replace all values of an attribute.
  void set(const std::string& attr, std::string value);

  bool has_attribute(const std::string& attr) const;
  /// All values of an attribute ([] if absent).
  const std::vector<std::string>& values(const std::string& attr) const;
  /// First value, or "" if absent.
  const std::string& value(const std::string& attr) const;

  /// True if any value of `attr` equals `v` case-insensitively.
  bool matches_value(const std::string& attr, const std::string& v) const;

  /// Attribute names (normalized lowercase), insertion-independent order.
  std::vector<std::string> attribute_names() const;

  std::size_t attribute_count() const noexcept { return attrs_.size(); }

  /// Copy of this entry keeping only the named attributes (empty selection
  /// keeps everything) — LDAP attribute selection on search.
  Entry project(const std::vector<std::string>& attrs) const;

  /// Approximate serialized size (drives the network model).
  double wire_bytes() const;

 private:
  static std::string norm(const std::string& s);

  Dn dn_;
  std::map<std::string, std::vector<std::string>> attrs_;  // key lowercased
};

}  // namespace gridmon::ldap
