#pragma once

/// \file entry.hpp
/// An LDAP entry: a DN plus multi-valued attributes with case-insensitive
/// attribute names and case-insensitive value matching (the directory
/// string syntax MDS uses everywhere).
///
/// Entries are copy-on-write: copying (including the identity projection a
/// search result returns) shares the underlying representation, and only
/// the mutators clone it. Search-heavy services hand out thousands of
/// entry copies per simulated query, so the share-on-copy behaviour is
/// what keeps the hot query path allocation-free.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gridmon/ldap/dn.hpp"

namespace gridmon::ldap {

class Entry {
 public:
  Entry() = default;
  explicit Entry(Dn dn);

  const Dn& dn() const noexcept;
  void set_dn(Dn dn);

  /// Append a value to an attribute (attributes are multi-valued).
  void add(const std::string& attr, std::string value);
  /// Replace all values of an attribute.
  void set(const std::string& attr, std::string value);

  bool has_attribute(const std::string& attr) const;
  /// All values of an attribute ([] if absent).
  const std::vector<std::string>& values(const std::string& attr) const;
  /// First value, or "" if absent.
  const std::string& value(const std::string& attr) const;

  /// True if any value of `attr` equals `v` case-insensitively.
  bool matches_value(const std::string& attr, const std::string& v) const;

  /// Attribute names (normalized lowercase), insertion-independent order.
  std::vector<std::string> attribute_names() const;

  std::size_t attribute_count() const noexcept;

  /// Copy of this entry keeping only the named attributes (empty selection
  /// keeps everything) — LDAP attribute selection on search.
  Entry project(const std::vector<std::string>& attrs) const;

  /// Approximate serialized size (drives the network model). Cached per
  /// representation; mutation through this class invalidates the cache.
  double wire_bytes() const;

 private:
  using AttrMap = std::map<std::string, std::vector<std::string>>;
  struct Rep {
    Dn dn;
    AttrMap attrs;  // key lowercased
    double wire_cache = -1;  // < 0: not yet computed
  };

  static std::string norm(const std::string& s);
  /// True if `s` contains no character that normalization would change —
  /// lets lookups with already-lowercase names skip the allocation.
  static bool is_norm(const std::string& s) noexcept;

  /// Writable rep, cloned first if shared (copy-on-write).
  Rep& mut();
  const Rep* rep() const noexcept { return rep_.get(); }

  std::shared_ptr<Rep> rep_;
};

}  // namespace gridmon::ldap
