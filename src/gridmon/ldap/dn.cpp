#include "gridmon/ldap/dn.hpp"

#include <algorithm>
#include <cctype>

namespace gridmon::ldap {
namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string_view::npos) return {};
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

bool operator==(const Rdn& a, const Rdn& b) {
  return a.attr == b.attr && to_lower(a.value) == to_lower(b.value);
}

Dn Dn::parse(std::string_view text) {
  Dn dn;
  text = trim(text);
  if (text.empty()) return dn;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    std::string_view part =
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos);
    pos = (comma == std::string_view::npos) ? text.size() + 1 : comma + 1;
    part = trim(part);
    if (part.empty()) throw DnError("empty RDN in DN");
    std::size_t eq = part.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw DnError("RDN missing attribute=value: " + std::string(part));
    }
    Rdn rdn;
    rdn.attr = to_lower(trim(part.substr(0, eq)));
    rdn.value = std::string(trim(part.substr(eq + 1)));
    if (rdn.value.empty()) throw DnError("RDN missing value: " + std::string(part));
    dn.rdns_.push_back(std::move(rdn));
  }
  return dn;
}

Dn Dn::rebased(const Dn& from, const Dn& to) const {
  if (!(*this == from) && !is_descendant_of(from)) {
    throw DnError("rebase: " + to_string() + " is not under " +
                  from.to_string());
  }
  Dn out;
  std::size_t keep = rdns_.size() - from.rdns_.size();
  out.rdns_.assign(rdns_.begin(),
                   rdns_.begin() + static_cast<std::ptrdiff_t>(keep));
  out.rdns_.insert(out.rdns_.end(), to.rdns_.begin(), to.rdns_.end());
  return out;
}

Dn Dn::parent() const {
  Dn p;
  if (rdns_.size() > 1) {
    p.rdns_.assign(rdns_.begin() + 1, rdns_.end());
  }
  return p;
}

bool Dn::is_child_of(const Dn& ancestor) const {
  return rdns_.size() == ancestor.rdns_.size() + 1 &&
         is_descendant_of(ancestor);
}

bool Dn::is_descendant_of(const Dn& ancestor) const {
  if (ancestor.rdns_.size() >= rdns_.size()) return false;
  std::size_t offset = rdns_.size() - ancestor.rdns_.size();
  for (std::size_t i = 0; i < ancestor.rdns_.size(); ++i) {
    if (!(rdns_[offset + i] == ancestor.rdns_[i])) return false;
  }
  return true;
}

std::string Dn::normalized() const {
  std::string out;
  for (std::size_t i = 0; i < rdns_.size(); ++i) {
    if (i) out += ',';
    out += rdns_[i].attr;
    out += '=';
    out += to_lower(rdns_[i].value);
  }
  return out;
}

std::string Dn::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < rdns_.size(); ++i) {
    if (i) out += ", ";
    out += rdns_[i].attr;
    out += '=';
    out += rdns_[i].value;
  }
  return out;
}

bool operator==(const Dn& a, const Dn& b) {
  if (a.rdns_.size() != b.rdns_.size()) return false;
  for (std::size_t i = 0; i < a.rdns_.size(); ++i) {
    if (!(a.rdns_[i] == b.rdns_[i])) return false;
  }
  return true;
}

}  // namespace gridmon::ldap
