#include "gridmon/ldap/filter.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <optional>

namespace gridmon::ldap {
namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::optional<double> as_number(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

/// Case-insensitive three-way comparison; numeric when both parse.
/// The character loop has the same sign as comparing lowercased copies
/// (std::string compares bytes as unsigned char) without allocating them.
int compare_values(const std::string& a, const std::string& b) {
  auto na = as_number(a), nb = as_number(b);
  if (na && nb) {
    if (*na < *nb) return -1;
    if (*na > *nb) return 1;
    return 0;
  }
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    int ca = std::tolower(static_cast<unsigned char>(a[i]));
    int cb = std::tolower(static_cast<unsigned char>(b[i]));
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

/// v.find(needle, pos) on the lowercased strings, without building them.
/// `needle` must already be lowercase.
std::size_t ci_find(const std::string& v, const std::string& needle,
                    std::size_t pos) {
  if (needle.empty()) return pos <= v.size() ? pos : std::string::npos;
  if (needle.size() > v.size()) return std::string::npos;
  for (; pos + needle.size() <= v.size(); ++pos) {
    std::size_t i = 0;
    while (i < needle.size() &&
           std::tolower(static_cast<unsigned char>(v[pos + i])) ==
               static_cast<unsigned char>(needle[i])) {
      ++i;
    }
    if (i == needle.size()) return pos;
  }
  return std::string::npos;
}

/// v.compare(pos, needle.size(), needle) == 0 on the lowercased strings.
/// `needle` must already be lowercase and pos + needle.size() <= v.size().
bool ci_equal_at(const std::string& v, std::size_t pos,
                 const std::string& needle) {
  for (std::size_t i = 0; i < needle.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(v[pos + i])) !=
        static_cast<unsigned char>(needle[i])) {
      return false;
    }
  }
  return true;
}

class FilterParser {
 public:
  explicit FilterParser(std::string_view text) : text_(text) {}

  FilterPtr parse() {
    skip_ws();
    FilterPtr f = filter();
    skip_ws();
    if (pos_ != text_.size()) {
      throw FilterError("trailing characters after filter");
    }
    return f;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void expect(char c) {
    if (peek() != c) {
      throw FilterError(std::string("expected '") + c + "' at position " +
                        std::to_string(pos_));
    }
    ++pos_;
  }

  FilterPtr filter() {
    expect('(');
    FilterPtr f;
    switch (peek()) {
      case '&':
        ++pos_;
        f = std::make_unique<AndFilter>(filter_list());
        break;
      case '|':
        ++pos_;
        f = std::make_unique<OrFilter>(filter_list());
        break;
      case '!':
        ++pos_;
        f = std::make_unique<NotFilter>(filter());
        break;
      default:
        f = item();
    }
    expect(')');
    return f;
  }

  std::vector<FilterPtr> filter_list() {
    std::vector<FilterPtr> children;
    while (peek() == '(') children.push_back(filter());
    if (children.empty()) {
      throw FilterError("empty filter list for &/| at position " +
                        std::to_string(pos_));
    }
    return children;
  }

  FilterPtr item() {
    std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '=' && text_[pos_] != '>' &&
           text_[pos_] != '<' && text_[pos_] != '~' && text_[pos_] != ')') {
      ++pos_;
    }
    if (pos_ == start) throw FilterError("missing attribute name");
    std::string attr = to_lower(text_.substr(start, pos_ - start));

    CompareOp op = CompareOp::Equal;
    switch (peek()) {
      case '>':
        ++pos_;
        expect('=');
        op = CompareOp::GreaterEq;
        break;
      case '<':
        ++pos_;
        expect('=');
        op = CompareOp::LessEq;
        break;
      case '~':
        ++pos_;
        expect('=');
        op = CompareOp::Approx;
        break;
      case '=':
        ++pos_;
        break;
      default:
        throw FilterError("missing comparison operator");
    }

    // Scan the value up to the closing ')'.
    std::size_t vstart = pos_;
    while (pos_ < text_.size() && text_[pos_] != ')') ++pos_;
    std::string value(text_.substr(vstart, pos_ - vstart));

    if (op == CompareOp::Equal && value.find('*') != std::string::npos) {
      if (value == "*") return std::make_unique<PresenceFilter>(attr);
      // Split on '*' into initial / any... / final.
      std::vector<std::string> parts;
      std::size_t p = 0;
      for (;;) {
        std::size_t star = value.find('*', p);
        if (star == std::string::npos) {
          parts.push_back(value.substr(p));
          break;
        }
        parts.push_back(value.substr(p, star - p));
        p = star + 1;
      }
      std::string initial = parts.front();
      std::string final_part = parts.back();
      std::vector<std::string> any(parts.begin() + 1, parts.end() - 1);
      // Drop empty "any" components ("a**b" behaves as "a*b").
      std::erase_if(any, [](const std::string& s) { return s.empty(); });
      return std::make_unique<SubstringFilter>(attr, std::move(initial),
                                               std::move(any),
                                               std::move(final_part));
    }
    if (value.empty()) throw FilterError("missing value for " + attr);
    return std::make_unique<CompareFilter>(attr, op, std::move(value));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

FilterPtr Filter::parse(std::string_view text) {
  return FilterParser(text).parse();
}

FilterPtr Filter::match_all() { return parse("(objectclass=*)"); }

bool AndFilter::matches(const Entry& e) const {
  for (const auto& c : children_) {
    if (!c->matches(e)) return false;
  }
  return true;
}

std::string AndFilter::to_string() const {
  std::string out = "(&";
  for (const auto& c : children_) out += c->to_string();
  return out + ")";
}

bool OrFilter::matches(const Entry& e) const {
  for (const auto& c : children_) {
    if (c->matches(e)) return true;
  }
  return false;
}

std::string OrFilter::to_string() const {
  std::string out = "(|";
  for (const auto& c : children_) out += c->to_string();
  return out + ")";
}

bool NotFilter::matches(const Entry& e) const { return !child_->matches(e); }

std::string NotFilter::to_string() const {
  return "(!" + child_->to_string() + ")";
}

bool PresenceFilter::matches(const Entry& e) const {
  if (attr_ == "objectclass") return true;  // every entry has a class
  return e.has_attribute(attr_);
}

std::string PresenceFilter::to_string() const {
  return "(" + attr_ + "=*)";
}

bool CompareFilter::matches(const Entry& e) const {
  for (const auto& v : e.values(attr_)) {
    int cmp = compare_values(v, value_);
    switch (op_) {
      case CompareOp::Equal:
      case CompareOp::Approx:
        if (cmp == 0) return true;
        break;
      case CompareOp::GreaterEq:
        if (cmp >= 0) return true;
        break;
      case CompareOp::LessEq:
        if (cmp <= 0) return true;
        break;
    }
  }
  return false;
}

std::string CompareFilter::to_string() const {
  const char* op = op_ == CompareOp::GreaterEq ? ">="
                   : op_ == CompareOp::LessEq  ? "<="
                   : op_ == CompareOp::Approx  ? "~="
                                               : "=";
  return "(" + attr_ + op + value_ + ")";
}

SubstringFilter::SubstringFilter(std::string attr, std::string initial,
                                 std::vector<std::string> any,
                                 std::string final_part)
    : attr_(std::move(attr)),
      initial_(std::move(initial)),
      any_(std::move(any)),
      final_(std::move(final_part)),
      initial_lc_(to_lower(initial_)),
      final_lc_(to_lower(final_)) {
  any_lc_.reserve(any_.size());
  for (const auto& part : any_) any_lc_.push_back(to_lower(part));
}

bool SubstringFilter::matches(const Entry& e) const {
  for (const auto& v : e.values(attr_)) {
    std::size_t pos = 0;
    if (!initial_lc_.empty()) {
      if (v.size() < initial_lc_.size() || !ci_equal_at(v, 0, initial_lc_)) {
        continue;
      }
      pos = initial_lc_.size();
    }
    bool ok = true;
    for (const auto& want : any_lc_) {
      std::size_t found = ci_find(v, want, pos);
      if (found == std::string::npos) {
        ok = false;
        break;
      }
      pos = found + want.size();
    }
    if (!ok) continue;
    if (!final_lc_.empty()) {
      if (v.size() < pos + final_lc_.size()) continue;
      if (!ci_equal_at(v, v.size() - final_lc_.size(), final_lc_)) continue;
      // The final segment must not overlap the part already consumed.
      if (v.size() - final_lc_.size() < pos) continue;
    }
    return true;
  }
  return false;
}

std::string SubstringFilter::to_string() const {
  std::string out = "(" + attr_ + "=" + initial_ + "*";
  for (const auto& a : any_) {
    out += a;
    out += '*';
  }
  return out + final_ + ")";
}

}  // namespace gridmon::ldap
