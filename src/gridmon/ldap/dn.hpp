#pragma once

/// \file dn.hpp
/// LDAP distinguished names: parsing, normalization and tree relations.
/// A DN is a sequence of RDNs from most-specific to suffix, e.g.
/// "Mds-Device-name=memory, Mds-Host-hn=lucky7.mcs.anl.gov, o=grid".

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gridmon::ldap {

struct Rdn {
  std::string attr;   // normalized lowercase
  std::string value;  // original case preserved

  friend bool operator==(const Rdn& a, const Rdn& b);
};

class DnError : public std::runtime_error {
 public:
  explicit DnError(const std::string& msg) : std::runtime_error(msg) {}
};

class Dn {
 public:
  Dn() = default;

  /// Parse "attr=value, attr=value, ...". Throws DnError on empty RDNs or
  /// missing '='. Whitespace around separators is insignificant.
  static Dn parse(std::string_view text);

  bool empty() const noexcept { return rdns_.empty(); }
  std::size_t depth() const noexcept { return rdns_.size(); }
  const std::vector<Rdn>& rdns() const noexcept { return rdns_; }
  const Rdn& front() const { return rdns_.front(); }

  /// The DN with the leading (most specific) RDN removed.
  Dn parent() const;

  /// Re-root this DN: replace the trailing `from` suffix with `to`.
  /// "dev=x, host=h, o=grid".rebased("o=grid", "vo=a, o=grid") ==
  /// "dev=x, host=h, vo=a, o=grid". Throws DnError if `from` is not a
  /// suffix of this DN.
  Dn rebased(const Dn& from, const Dn& to) const;

  /// True if `this` sits directly under `ancestor`.
  bool is_child_of(const Dn& ancestor) const;
  /// True if `ancestor` is a (possibly distant) suffix of this DN; a DN is
  /// a descendant of itself for LDAP subtree-scope purposes? No — strict.
  bool is_descendant_of(const Dn& ancestor) const;

  /// Canonical form for map keys: lowercased, single separator, no spaces.
  std::string normalized() const;
  /// Display form preserving value case.
  std::string to_string() const;

  friend bool operator==(const Dn& a, const Dn& b);
  friend bool operator<(const Dn& a, const Dn& b) {
    return a.normalized() < b.normalized();
  }

 private:
  std::vector<Rdn> rdns_;
};

}  // namespace gridmon::ldap
