#pragma once

/// \file ldif.hpp
/// LDIF rendering of entries and a size estimator for the wire model.

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "gridmon/ldap/entry.hpp"

namespace gridmon::ldap {

/// Render one entry as an LDIF record ("dn: ..." then "attr: value").
std::string to_ldif(const Entry& entry);

/// Render a result set: blank-line separated records.
std::string to_ldif(const std::vector<Entry>& entries);

/// Parse LDIF records (the output format of to_ldif / ldapsearch):
/// blank-line separated records, each starting with "dn:", followed by
/// "attr: value" lines. Lines beginning with '#' are comments;
/// continuation lines (leading space) extend the previous value.
/// Throws LdifError on malformed input.
std::vector<Entry> from_ldif(std::string_view text);

class LdifError : public std::runtime_error {
 public:
  explicit LdifError(const std::string& msg) : std::runtime_error(msg) {}
};

}  // namespace gridmon::ldap
