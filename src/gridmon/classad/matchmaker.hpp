#pragma once

/// \file matchmaker.hpp
/// ClassAd matchmaking, as used by the Condor negotiator and the Hawkeye
/// Manager: two-way Requirements matching, Rank evaluation, and one-way
/// constraint scans over a set of ads.

#include <string>
#include <vector>

#include "gridmon/classad/classad.hpp"

namespace gridmon::classad {

/// One-way test: does `candidate` satisfy `constraint`? The constraint
/// expression is evaluated with MY = candidate (so bare attribute names
/// refer to the candidate's attributes, e.g. "CpuLoad > 50").
/// UNDEFINED/ERROR count as no-match.
bool satisfies(const ClassAd& candidate, const Expr& constraint,
               double current_time = 0);

/// Two-way match: A.Requirements is true evaluated against B, and
/// B.Requirements is true evaluated against A. A missing Requirements
/// attribute on either side fails the match (classic matchmaker rule).
bool symmetric_match(const ClassAd& a, const ClassAd& b,
                     double current_time = 0);

/// One-way match of `trigger` against `candidate`: trigger.Requirements
/// evaluated with MY = trigger, TARGET = candidate. This is the Hawkeye
/// Trigger-vs-Startd direction.
bool one_way_match(const ClassAd& trigger, const ClassAd& candidate,
                   double current_time = 0);

/// Evaluate `ranker`.Rank against a candidate; non-numeric ranks count as 0.
double rank_of(const ClassAd& ranker, const ClassAd& candidate,
               double current_time = 0);

/// Scan: return indices of all ads satisfying the constraint. This is the
/// full-table walk the Hawkeye Manager performs for constraint queries.
std::vector<std::size_t> scan(const std::vector<const ClassAd*>& ads,
                              const Expr& constraint, double current_time = 0);

/// Among candidates matching `request` two-way, pick the best by
/// request.Rank (ties broken by lowest index). Returns -1 if none match.
int best_match(const ClassAd& request,
               const std::vector<const ClassAd*>& candidates,
               double current_time = 0);

}  // namespace gridmon::classad
