#include "gridmon/classad/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace gridmon::classad {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> lex(std::string_view in) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = in.size();

  auto push = [&](TokenKind k, std::size_t at, std::string text = {}) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.offset = at;
    out.push_back(std::move(t));
  };

  while (i < n) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    std::size_t start = i;
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(in[j])) ++j;
      push(TokenKind::Identifier, start,
           std::string(in.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      std::size_t j = i;
      bool is_real = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(in[j]))) ++j;
      if (j < n && in[j] == '.') {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(in[j]))) ++j;
      }
      if (j < n && (in[j] == 'e' || in[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (in[k] == '+' || in[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(in[k]))) {
          is_real = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(in[j]))) ++j;
        }
      }
      std::string text(in.substr(i, j - i));
      Token t;
      t.offset = start;
      if (is_real) {
        t.kind = TokenKind::RealLiteral;
        t.real_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::IntegerLiteral;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '"') {
      std::string text;
      std::size_t j = i + 1;
      while (j < n && in[j] != '"') {
        if (in[j] == '\\' && j + 1 < n) {
          char esc = in[j + 1];
          switch (esc) {
            case 'n':
              text.push_back('\n');
              break;
            case 't':
              text.push_back('\t');
              break;
            default:
              text.push_back(esc);
          }
          j += 2;
        } else {
          text.push_back(in[j]);
          ++j;
        }
      }
      if (j >= n) throw LexError("unterminated string literal", start);
      push(TokenKind::StringLiteral, start, std::move(text));
      i = j + 1;
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && in[i + 1] == b;
    };
    if (c == '=' && i + 2 < n && in[i + 1] == '?' && in[i + 2] == '=') {
      push(TokenKind::MetaEqual, start);
      i += 3;
      continue;
    }
    if (c == '=' && i + 2 < n && in[i + 1] == '!' && in[i + 2] == '=') {
      push(TokenKind::MetaNotEqual, start);
      i += 3;
      continue;
    }
    if (two('=', '=')) {
      push(TokenKind::Equal, start);
      i += 2;
      continue;
    }
    if (two('!', '=')) {
      push(TokenKind::NotEqual, start);
      i += 2;
      continue;
    }
    if (two('<', '=')) {
      push(TokenKind::LessEq, start);
      i += 2;
      continue;
    }
    if (two('>', '=')) {
      push(TokenKind::GreaterEq, start);
      i += 2;
      continue;
    }
    if (two('&', '&')) {
      push(TokenKind::And, start);
      i += 2;
      continue;
    }
    if (two('|', '|')) {
      push(TokenKind::Or, start);
      i += 2;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::LParen, start);
        break;
      case ')':
        push(TokenKind::RParen, start);
        break;
      case '[':
        push(TokenKind::LBracket, start);
        break;
      case ']':
        push(TokenKind::RBracket, start);
        break;
      case ',':
        push(TokenKind::Comma, start);
        break;
      case ';':
        push(TokenKind::Semicolon, start);
        break;
      case '.':
        push(TokenKind::Dot, start);
        break;
      case '=':
        push(TokenKind::Assign, start);
        break;
      case '+':
        push(TokenKind::Plus, start);
        break;
      case '-':
        push(TokenKind::Minus, start);
        break;
      case '*':
        push(TokenKind::Star, start);
        break;
      case '/':
        push(TokenKind::Slash, start);
        break;
      case '%':
        push(TokenKind::Percent, start);
        break;
      case '<':
        push(TokenKind::Less, start);
        break;
      case '>':
        push(TokenKind::Greater, start);
        break;
      case '!':
        push(TokenKind::Not, start);
        break;
      case '?':
        push(TokenKind::Question, start);
        break;
      case ':':
        push(TokenKind::Colon, start);
        break;
      default:
        throw LexError(std::string("unexpected character '") + c + "'",
                       start);
    }
    ++i;
  }
  push(TokenKind::End, n);
  return out;
}

}  // namespace gridmon::classad
