#include "gridmon/classad/classad.hpp"

#include <stdexcept>

#include "gridmon/classad/parser.hpp"

namespace gridmon::classad {

ClassAd& ClassAd::operator=(const ClassAd& other) {
  if (this == &other) return *this;
  attrs_.clear();
  order_.clear();
  for (const auto& name : other.order_) {
    attrs_.emplace(name, other.attrs_.at(name)->clone());
    order_.push_back(name);
  }
  return *this;
}

ClassAd ClassAd::parse(std::string_view text) {
  ClassAd ad;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;

    // Trim.
    std::size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string_view::npos) continue;
    std::size_t e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    if (line.empty() || line.front() == '#') continue;

    // Split on the first '=' that is not part of ==, =?=, =!=, <=, >=, !=.
    std::size_t eq = std::string_view::npos;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] != '=') continue;
      if (i + 1 < line.size() &&
          (line[i + 1] == '=' || line[i + 1] == '?' || line[i + 1] == '!')) {
        ++i;  // skip the operator
        continue;
      }
      if (i > 0 && (line[i - 1] == '=' || line[i - 1] == '<' ||
                    line[i - 1] == '>' || line[i - 1] == '!')) {
        continue;
      }
      eq = i;
      break;
    }
    if (eq == std::string_view::npos) {
      throw ParseError("classad line missing '=': " + std::string(line));
    }
    std::string name(line.substr(0, eq));
    std::size_t ne = name.find_last_not_of(" \t");
    if (ne == std::string::npos) {
      throw ParseError("classad line missing attribute name");
    }
    name.resize(ne + 1);
    ad.insert_text(name, line.substr(eq + 1));
  }
  return ad;
}

void ClassAd::insert(const std::string& name, ExprPtr expr) {
  auto [it, inserted] = attrs_.insert_or_assign(name, std::move(expr));
  if (inserted) order_.push_back(name);
}

void ClassAd::insert_text(const std::string& name,
                          std::string_view expr_text) {
  insert(name, parse_expression(expr_text));
}

void ClassAd::insert(const std::string& name, std::int64_t v) {
  insert(name, std::make_unique<LiteralExpr>(Value::integer(v)));
}
void ClassAd::insert(const std::string& name, double v) {
  insert(name, std::make_unique<LiteralExpr>(Value::real(v)));
}
void ClassAd::insert(const std::string& name, bool v) {
  insert(name, std::make_unique<LiteralExpr>(Value::boolean(v)));
}
void ClassAd::insert(const std::string& name, const std::string& v) {
  insert(name, std::make_unique<LiteralExpr>(Value::string(v)));
}
void ClassAd::insert(const std::string& name, const char* v) {
  insert(name, std::make_unique<LiteralExpr>(Value::string(v)));
}

bool ClassAd::erase(const std::string& name) {
  auto it = attrs_.find(name);
  if (it == attrs_.end()) return false;
  for (auto oit = order_.begin(); oit != order_.end(); ++oit) {
    if (istrcmp(*oit, name) == 0) {
      order_.erase(oit);
      break;
    }
  }
  attrs_.erase(it);
  return true;
}

bool ClassAd::contains(const std::string& name) const {
  return attrs_.find(name) != attrs_.end();
}

const Expr* ClassAd::lookup(const std::string& name) const {
  auto it = attrs_.find(name);
  return it == attrs_.end() ? nullptr : it->second.get();
}

Value ClassAd::evaluate(const std::string& name, const ClassAd* target,
                        double current_time) const {
  const Expr* e = lookup(name);
  if (e == nullptr) return Value::undefined();
  return evaluate_expr(*e, target, current_time);
}

Value ClassAd::evaluate_expr(const Expr& e, const ClassAd* target,
                             double current_time) const {
  EvalContext ctx;
  ctx.my = this;
  ctx.target = target;
  ctx.current_time = current_time;
  return e.evaluate(ctx);
}

void ClassAd::update(const ClassAd& other) {
  for (const auto& name : other.order_) {
    insert(name, other.attrs_.at(name)->clone());
  }
}

std::vector<std::string> ClassAd::names() const { return order_; }

std::string ClassAd::to_string() const {
  std::string out;
  for (const auto& name : order_) {
    out += name;
    out += " = ";
    out += attrs_.at(name)->to_string();
    out += '\n';
  }
  return out;
}

double ClassAd::wire_bytes() const {
  return static_cast<double>(to_string().size());
}

}  // namespace gridmon::classad
