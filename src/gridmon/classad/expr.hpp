#pragma once

/// \file expr.hpp
/// Expression AST and evaluator for the old-ClassAd language.
///
/// Semantics follow Condor's classic ads: four-valued logic where
/// UNDEFINED arises from missing attributes and propagates through strict
/// operators, ERROR from type mismatches; `&&`/`||` use the dominance
/// truth tables (FALSE dominates AND, TRUE dominates OR, then ERROR, then
/// UNDEFINED); `=?=`/`=!=` are the total "is-identical" comparisons that
/// never yield UNDEFINED.

#include <memory>
#include <string>
#include <vector>

#include "gridmon/classad/value.hpp"

namespace gridmon::classad {

class ClassAd;

/// Everything an expression can see while evaluating: the ad it lives in
/// (MY), the candidate ad (TARGET), a recursion guard, and the current
/// time for the time() builtin.
struct EvalContext {
  const ClassAd* my = nullptr;
  const ClassAd* target = nullptr;
  int depth = 0;
  double current_time = 0;

  static constexpr int kMaxDepth = 64;
};

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

class Expr {
 public:
  virtual ~Expr() = default;
  virtual Value evaluate(EvalContext& ctx) const = 0;
  virtual std::string to_string() const = 0;
  virtual ExprPtr clone() const = 0;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  Value evaluate(EvalContext&) const override { return value_; }
  std::string to_string() const override { return value_.to_string(); }
  ExprPtr clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }
  const Value& value() const noexcept { return value_; }

 private:
  Value value_;
};

enum class AttrScope { Default, My, Target };

class AttrRefExpr final : public Expr {
 public:
  AttrRefExpr(AttrScope scope, std::string name)
      : scope_(scope), name_(std::move(name)) {}
  Value evaluate(EvalContext& ctx) const override;
  std::string to_string() const override;
  ExprPtr clone() const override {
    return std::make_unique<AttrRefExpr>(scope_, name_);
  }
  const std::string& name() const noexcept { return name_; }
  AttrScope scope() const noexcept { return scope_; }

 private:
  AttrScope scope_;
  std::string name_;
};

enum class UnaryOp { Negate, Not };

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}
  Value evaluate(EvalContext& ctx) const override;
  std::string to_string() const override;
  ExprPtr clone() const override {
    return std::make_unique<UnaryExpr>(op_, operand_->clone());
  }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

enum class BinaryOp {
  Add,
  Subtract,
  Multiply,
  Divide,
  Modulus,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Equal,
  NotEqual,
  MetaEqual,
  MetaNotEqual,
  And,
  Or,
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Value evaluate(EvalContext& ctx) const override;
  std::string to_string() const override;
  ExprPtr clone() const override {
    return std::make_unique<BinaryExpr>(op_, lhs_->clone(), rhs_->clone());
  }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class TernaryExpr final : public Expr {
 public:
  TernaryExpr(ExprPtr cond, ExprPtr then_e, ExprPtr else_e)
      : cond_(std::move(cond)),
        then_(std::move(then_e)),
        else_(std::move(else_e)) {}
  Value evaluate(EvalContext& ctx) const override;
  std::string to_string() const override;
  ExprPtr clone() const override {
    return std::make_unique<TernaryExpr>(cond_->clone(), then_->clone(),
                                         else_->clone());
  }

 private:
  ExprPtr cond_;
  ExprPtr then_;
  ExprPtr else_;
};

class CallExpr final : public Expr {
 public:
  CallExpr(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  Value evaluate(EvalContext& ctx) const override;
  std::string to_string() const override;
  ExprPtr clone() const override {
    std::vector<ExprPtr> copy;
    copy.reserve(args_.size());
    for (const auto& a : args_) copy.push_back(a->clone());
    return std::make_unique<CallExpr>(name_, std::move(copy));
  }

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

/// Three-state logical interpretation of a value: booleans as themselves,
/// numbers C-style (nonzero is true), strings are ERROR.
Value to_logical(const Value& v);

/// Case-insensitive ASCII string comparison (ClassAd string semantics).
int istrcmp(const std::string& a, const std::string& b);

}  // namespace gridmon::classad
