#include "gridmon/classad/value.hpp"

#include <cmath>
#include <sstream>

namespace gridmon::classad {

std::string Value::to_string() const {
  switch (type_) {
    case ValueType::Undefined:
      return "UNDEFINED";
    case ValueType::Error:
      return "ERROR";
    case ValueType::Boolean:
      return as_boolean() ? "TRUE" : "FALSE";
    case ValueType::Integer:
      return std::to_string(as_integer());
    case ValueType::Real: {
      std::ostringstream os;
      double d = as_real();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        os << d << ".0";
      } else {
        os << d;
      }
      return os.str();
    }
    case ValueType::String: {
      std::string out = "\"";
      for (char c : as_string()) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out.push_back('"');
      return out;
    }
  }
  return "ERROR";
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  return a.data_ == b.data_;
}

}  // namespace gridmon::classad
