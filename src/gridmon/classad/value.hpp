#pragma once

/// \file value.hpp
/// ClassAd runtime values with the classic four-valued logic: booleans,
/// numbers and strings plus the UNDEFINED and ERROR sentinels that drive
/// Condor matchmaking semantics.

#include <cstdint>
#include <string>
#include <variant>

namespace gridmon::classad {

enum class ValueType { Undefined, Error, Boolean, Integer, Real, String };

class Value {
 public:
  Value() : type_(ValueType::Undefined) {}

  static Value undefined() { return Value(); }
  static Value error() {
    Value v;
    v.type_ = ValueType::Error;
    return v;
  }
  static Value boolean(bool b) {
    Value v;
    v.type_ = ValueType::Boolean;
    v.data_ = b;
    return v;
  }
  static Value integer(std::int64_t i) {
    Value v;
    v.type_ = ValueType::Integer;
    v.data_ = i;
    return v;
  }
  static Value real(double d) {
    Value v;
    v.type_ = ValueType::Real;
    v.data_ = d;
    return v;
  }
  static Value string(std::string s) {
    Value v;
    v.type_ = ValueType::String;
    v.data_ = std::move(s);
    return v;
  }

  ValueType type() const noexcept { return type_; }
  bool is_undefined() const noexcept { return type_ == ValueType::Undefined; }
  bool is_error() const noexcept { return type_ == ValueType::Error; }
  bool is_boolean() const noexcept { return type_ == ValueType::Boolean; }
  bool is_integer() const noexcept { return type_ == ValueType::Integer; }
  bool is_real() const noexcept { return type_ == ValueType::Real; }
  bool is_string() const noexcept { return type_ == ValueType::String; }
  bool is_number() const noexcept { return is_integer() || is_real(); }
  /// UNDEFINED or ERROR — the "exceptional" values that propagate.
  bool is_exceptional() const noexcept { return is_undefined() || is_error(); }

  bool as_boolean() const { return std::get<bool>(data_); }
  std::int64_t as_integer() const { return std::get<std::int64_t>(data_); }
  double as_real() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric coercion (integer widens to double). Precondition: is_number().
  double as_number() const {
    return is_integer() ? static_cast<double>(as_integer()) : as_real();
  }

  /// Render in ClassAd literal syntax.
  std::string to_string() const;

  /// Structural equality (exact: type and payload; strings case-sensitive).
  /// This is NOT ClassAd `==` — see eval's compare ops for that.
  friend bool operator==(const Value& a, const Value& b);

 private:
  ValueType type_;
  std::variant<std::monostate, bool, std::int64_t, double, std::string> data_;
};

}  // namespace gridmon::classad
