#include "gridmon/classad/expr.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "gridmon/classad/classad.hpp"

namespace gridmon::classad {
namespace {

char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

/// Promote booleans to integers for arithmetic/ordering, per classic
/// Condor behaviour (TRUE behaves as 1).
Value promote_bool(const Value& v) {
  if (v.is_boolean()) return Value::integer(v.as_boolean() ? 1 : 0);
  return v;
}

Value arith(BinaryOp op, const Value& lv, const Value& rv) {
  if (lv.is_error() || rv.is_error()) return Value::error();
  if (lv.is_undefined() || rv.is_undefined()) return Value::undefined();
  Value l = promote_bool(lv), r = promote_bool(rv);
  if (!l.is_number() || !r.is_number()) return Value::error();
  if (l.is_integer() && r.is_integer()) {
    std::int64_t a = l.as_integer(), b = r.as_integer();
    switch (op) {
      case BinaryOp::Add:
        return Value::integer(a + b);
      case BinaryOp::Subtract:
        return Value::integer(a - b);
      case BinaryOp::Multiply:
        return Value::integer(a * b);
      case BinaryOp::Divide:
        return b == 0 ? Value::error() : Value::integer(a / b);
      case BinaryOp::Modulus:
        return b == 0 ? Value::error() : Value::integer(a % b);
      default:
        return Value::error();
    }
  }
  double a = l.as_number(), b = r.as_number();
  switch (op) {
    case BinaryOp::Add:
      return Value::real(a + b);
    case BinaryOp::Subtract:
      return Value::real(a - b);
    case BinaryOp::Multiply:
      return Value::real(a * b);
    case BinaryOp::Divide:
      return b == 0 ? Value::error() : Value::real(a / b);
    case BinaryOp::Modulus:
      return b == 0 ? Value::error() : Value::real(std::fmod(a, b));
    default:
      return Value::error();
  }
}

Value compare(BinaryOp op, const Value& lv, const Value& rv) {
  if (lv.is_error() || rv.is_error()) return Value::error();
  if (lv.is_undefined() || rv.is_undefined()) return Value::undefined();
  Value l = promote_bool(lv), r = promote_bool(rv);
  int cmp;
  if (l.is_number() && r.is_number()) {
    double a = l.as_number(), b = r.as_number();
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else if (l.is_string() && r.is_string()) {
    cmp = istrcmp(l.as_string(), r.as_string());
  } else {
    return Value::error();  // string vs number, etc.
  }
  switch (op) {
    case BinaryOp::Less:
      return Value::boolean(cmp < 0);
    case BinaryOp::LessEq:
      return Value::boolean(cmp <= 0);
    case BinaryOp::Greater:
      return Value::boolean(cmp > 0);
    case BinaryOp::GreaterEq:
      return Value::boolean(cmp >= 0);
    case BinaryOp::Equal:
      return Value::boolean(cmp == 0);
    case BinaryOp::NotEqual:
      return Value::boolean(cmp != 0);
    default:
      return Value::error();
  }
}

/// `=?=`: total equality — TRUE iff same type and equal payload (strings
/// case-insensitive); UNDEFINED =?= UNDEFINED is TRUE. Never exceptional.
Value meta_equal(const Value& lv, const Value& rv) {
  Value l = promote_bool(lv), r = promote_bool(rv);
  if (l.type() != r.type()) {
    // ints and reals compare numerically across the divide
    if (l.is_number() && r.is_number()) {
      return Value::boolean(l.as_number() == r.as_number());
    }
    return Value::boolean(false);
  }
  switch (l.type()) {
    case ValueType::Undefined:
    case ValueType::Error:
      return Value::boolean(true);
    case ValueType::Integer:
      return Value::boolean(l.as_integer() == r.as_integer());
    case ValueType::Real:
      return Value::boolean(l.as_real() == r.as_real());
    case ValueType::String:
      return Value::boolean(istrcmp(l.as_string(), r.as_string()) == 0);
    case ValueType::Boolean:
      return Value::boolean(l.as_boolean() == r.as_boolean());
  }
  return Value::boolean(false);
}

const char* binary_op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add:
      return "+";
    case BinaryOp::Subtract:
      return "-";
    case BinaryOp::Multiply:
      return "*";
    case BinaryOp::Divide:
      return "/";
    case BinaryOp::Modulus:
      return "%";
    case BinaryOp::Less:
      return "<";
    case BinaryOp::LessEq:
      return "<=";
    case BinaryOp::Greater:
      return ">";
    case BinaryOp::GreaterEq:
      return ">=";
    case BinaryOp::Equal:
      return "==";
    case BinaryOp::NotEqual:
      return "!=";
    case BinaryOp::MetaEqual:
      return "=?=";
    case BinaryOp::MetaNotEqual:
      return "=!=";
    case BinaryOp::And:
      return "&&";
    case BinaryOp::Or:
      return "||";
  }
  return "?";
}

}  // namespace

int istrcmp(const std::string& a, const std::string& b) {
  std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    char ca = lower(a[i]), cb = lower(b[i]);
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

Value to_logical(const Value& v) {
  switch (v.type()) {
    case ValueType::Boolean:
      return v;
    case ValueType::Integer:
      return Value::boolean(v.as_integer() != 0);
    case ValueType::Real:
      return Value::boolean(v.as_real() != 0);
    case ValueType::Undefined:
      return Value::undefined();
    case ValueType::Error:
    case ValueType::String:
      return Value::error();
  }
  return Value::error();
}

Value AttrRefExpr::evaluate(EvalContext& ctx) const {
  if (ctx.depth >= EvalContext::kMaxDepth) return Value::error();
  const ClassAd* ad = nullptr;
  switch (scope_) {
    case AttrScope::My:
      ad = ctx.my;
      break;
    case AttrScope::Target:
      ad = ctx.target;
      break;
    case AttrScope::Default:
      ad = ctx.my;
      break;
  }
  if (ad != nullptr) {
    if (const Expr* e = ad->lookup(name_)) {
      // Attribute bodies evaluate in the scope of the ad that owns them.
      EvalContext inner = ctx;
      ++inner.depth;
      if (scope_ == AttrScope::Target) {
        std::swap(inner.my, inner.target);
      }
      return e->evaluate(inner);
    }
  }
  // Unqualified names fall through to TARGET (classic resolution order).
  if (scope_ == AttrScope::Default && ctx.target != nullptr) {
    if (const Expr* e = ctx.target->lookup(name_)) {
      EvalContext inner = ctx;
      ++inner.depth;
      std::swap(inner.my, inner.target);
      return e->evaluate(inner);
    }
  }
  return Value::undefined();
}

std::string AttrRefExpr::to_string() const {
  switch (scope_) {
    case AttrScope::My:
      return "MY." + name_;
    case AttrScope::Target:
      return "TARGET." + name_;
    case AttrScope::Default:
      return name_;
  }
  return name_;
}

Value UnaryExpr::evaluate(EvalContext& ctx) const {
  Value v = operand_->evaluate(ctx);
  if (v.is_error()) return Value::error();
  if (v.is_undefined()) return Value::undefined();
  if (op_ == UnaryOp::Negate) {
    Value p = v.is_boolean() ? Value::integer(v.as_boolean() ? 1 : 0) : v;
    if (p.is_integer()) return Value::integer(-p.as_integer());
    if (p.is_real()) return Value::real(-p.as_real());
    return Value::error();
  }
  Value l = to_logical(v);
  if (l.is_boolean()) return Value::boolean(!l.as_boolean());
  return l;
}

std::string UnaryExpr::to_string() const {
  return std::string(op_ == UnaryOp::Negate ? "-" : "!") + "(" +
         operand_->to_string() + ")";
}

Value BinaryExpr::evaluate(EvalContext& ctx) const {
  if (op_ == BinaryOp::And || op_ == BinaryOp::Or) {
    Value l = to_logical(lhs_->evaluate(ctx));
    bool dominant = (op_ == BinaryOp::And) ? false : true;
    if (l.is_boolean() && l.as_boolean() == dominant) {
      return Value::boolean(dominant);  // short-circuit on the dominator
    }
    Value r = to_logical(rhs_->evaluate(ctx));
    if (r.is_boolean() && r.as_boolean() == dominant) {
      return Value::boolean(dominant);
    }
    if (l.is_error() || r.is_error()) return Value::error();
    if (l.is_undefined() || r.is_undefined()) return Value::undefined();
    return Value::boolean(!dominant);
  }
  Value l = lhs_->evaluate(ctx);
  Value r = rhs_->evaluate(ctx);
  switch (op_) {
    case BinaryOp::Add:
    case BinaryOp::Subtract:
    case BinaryOp::Multiply:
    case BinaryOp::Divide:
    case BinaryOp::Modulus:
      return arith(op_, l, r);
    case BinaryOp::MetaEqual:
      return meta_equal(l, r);
    case BinaryOp::MetaNotEqual: {
      Value eq = meta_equal(l, r);
      return Value::boolean(!eq.as_boolean());
    }
    default:
      return compare(op_, l, r);
  }
}

std::string BinaryExpr::to_string() const {
  // Appends instead of one operator+ chain: GCC 12's -Wrestrict misfires
  // on nested char*/string concatenations at -O2 (GCC PR 105651).
  std::string out = "(";
  out += lhs_->to_string();
  out += ' ';
  out += binary_op_name(op_);
  out += ' ';
  out += rhs_->to_string();
  out += ')';
  return out;
}

Value TernaryExpr::evaluate(EvalContext& ctx) const {
  Value c = to_logical(cond_->evaluate(ctx));
  if (c.is_undefined()) return Value::undefined();
  if (c.is_error()) return Value::error();
  return c.as_boolean() ? then_->evaluate(ctx) : else_->evaluate(ctx);
}

std::string TernaryExpr::to_string() const {
  std::string out = "(";
  out += cond_->to_string();
  out += " ? ";
  out += then_->to_string();
  out += " : ";
  out += else_->to_string();
  out += ')';
  return out;
}

Value CallExpr::evaluate(EvalContext& ctx) const {
  std::string fn;
  fn.reserve(name_.size());
  for (char c : name_) fn.push_back(lower(c));

  std::vector<Value> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->evaluate(ctx));

  auto need = [&](std::size_t n) { return args.size() == n; };

  if (fn == "isundefined" && need(1)) {
    return Value::boolean(args[0].is_undefined());
  }
  if (fn == "iserror" && need(1)) return Value::boolean(args[0].is_error());
  if (fn == "time" && need(0)) {
    return Value::integer(static_cast<std::int64_t>(ctx.current_time));
  }

  // All remaining builtins are strict.
  for (const auto& a : args) {
    if (a.is_error()) return Value::error();
    if (a.is_undefined()) return Value::undefined();
  }

  if (fn == "floor" && need(1) && args[0].is_number()) {
    return Value::integer(
        static_cast<std::int64_t>(std::floor(args[0].as_number())));
  }
  if (fn == "ceiling" && need(1) && args[0].is_number()) {
    return Value::integer(
        static_cast<std::int64_t>(std::ceil(args[0].as_number())));
  }
  if (fn == "round" && need(1) && args[0].is_number()) {
    return Value::integer(
        static_cast<std::int64_t>(std::llround(args[0].as_number())));
  }
  if (fn == "abs" && need(1)) {
    if (args[0].is_integer()) {
      return Value::integer(std::abs(args[0].as_integer()));
    }
    if (args[0].is_real()) return Value::real(std::abs(args[0].as_real()));
    return Value::error();
  }
  if ((fn == "min" || fn == "max") && need(2) && args[0].is_number() &&
      args[1].is_number()) {
    bool pick_first = (fn == "min")
                          ? args[0].as_number() <= args[1].as_number()
                          : args[0].as_number() >= args[1].as_number();
    return pick_first ? args[0] : args[1];
  }
  if (fn == "int" && need(1)) {
    if (args[0].is_number()) {
      return Value::integer(static_cast<std::int64_t>(args[0].as_number()));
    }
    if (args[0].is_boolean()) {
      return Value::integer(args[0].as_boolean() ? 1 : 0);
    }
    return Value::error();
  }
  if (fn == "real" && need(1) && args[0].is_number()) {
    return Value::real(args[0].as_number());
  }
  if (fn == "string" && need(1)) {
    if (args[0].is_string()) return args[0];
    return Value::string(args[0].to_string());
  }
  if (fn == "strcat") {
    std::string out;
    for (const auto& a : args) {
      if (!a.is_string()) return Value::error();
      out += a.as_string();
    }
    return Value::string(std::move(out));
  }
  if (fn == "size" && need(1) && args[0].is_string()) {
    return Value::integer(static_cast<std::int64_t>(args[0].as_string().size()));
  }
  if ((fn == "toupper" || fn == "tolower") && need(1) && args[0].is_string()) {
    std::string out = args[0].as_string();
    for (char& c : out) {
      c = (fn == "toupper")
              ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
              : lower(c);
    }
    return Value::string(std::move(out));
  }
  if (fn == "substr" && (args.size() == 2 || args.size() == 3) &&
      args[0].is_string() && args[1].is_integer()) {
    const std::string& s = args[0].as_string();
    auto off = args[1].as_integer();
    if (off < 0) off = std::max<std::int64_t>(0, off + static_cast<std::int64_t>(s.size()));
    if (off > static_cast<std::int64_t>(s.size())) return Value::string("");
    std::int64_t len = static_cast<std::int64_t>(s.size()) - off;
    if (args.size() == 3) {
      if (!args[2].is_integer()) return Value::error();
      len = std::min(len, args[2].as_integer());
      if (len < 0) len = 0;
    }
    return Value::string(s.substr(static_cast<std::size_t>(off),
                                  static_cast<std::size_t>(len)));
  }
  return Value::error();  // unknown function or arity mismatch
}

std::string CallExpr::to_string() const {
  std::string out = name_ + "(";
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (i) out += ", ";
    out += args_[i]->to_string();
  }
  return out + ")";
}

}  // namespace gridmon::classad
