#pragma once

/// \file lexer.hpp
/// Tokenizer for the old-ClassAd expression language used by Condor 6.x /
/// Hawkeye 0.1.x: identifiers, numeric and string literals, the usual C
/// operator set plus the meta-comparison operators =?= and =!=.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gridmon::classad {

enum class TokenKind {
  End,
  Identifier,
  IntegerLiteral,
  RealLiteral,
  StringLiteral,
  // punctuation / operators
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Dot,
  Assign,       // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Equal,        // ==
  NotEqual,     // !=
  MetaEqual,    // =?=
  MetaNotEqual, // =!=
  And,          // &&
  Or,           // ||
  Not,          // !
  Question,
  Colon,
};

struct Token {
  TokenKind kind;
  std::string text;       // identifier or string payload
  std::int64_t int_value = 0;
  double real_value = 0;
  std::size_t offset = 0;  // position in input, for diagnostics
};

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& msg, std::size_t offset)
      : std::runtime_error(msg + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Tokenize a complete expression. Newlines are plain whitespace here;
/// old-style ad blocks are split into per-attribute lines before lexing.
std::vector<Token> lex(std::string_view input);

}  // namespace gridmon::classad
