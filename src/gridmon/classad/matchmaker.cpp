#include "gridmon/classad/matchmaker.hpp"

namespace gridmon::classad {
namespace {

bool is_true(const Value& v) {
  Value l = to_logical(v);
  return l.is_boolean() && l.as_boolean();
}

}  // namespace

bool satisfies(const ClassAd& candidate, const Expr& constraint,
               double current_time) {
  return is_true(candidate.evaluate_expr(constraint, nullptr, current_time));
}

bool symmetric_match(const ClassAd& a, const ClassAd& b,
                     double current_time) {
  if (!a.contains("Requirements") || !b.contains("Requirements")) {
    return false;
  }
  return is_true(a.evaluate("Requirements", &b, current_time)) &&
         is_true(b.evaluate("Requirements", &a, current_time));
}

bool one_way_match(const ClassAd& trigger, const ClassAd& candidate,
                   double current_time) {
  if (!trigger.contains("Requirements")) return false;
  return is_true(trigger.evaluate("Requirements", &candidate, current_time));
}

double rank_of(const ClassAd& ranker, const ClassAd& candidate,
               double current_time) {
  Value v = ranker.evaluate("Rank", &candidate, current_time);
  if (v.is_number()) return v.as_number();
  if (v.is_boolean()) return v.as_boolean() ? 1.0 : 0.0;
  return 0.0;
}

std::vector<std::size_t> scan(const std::vector<const ClassAd*>& ads,
                              const Expr& constraint, double current_time) {
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < ads.size(); ++i) {
    if (ads[i] != nullptr && satisfies(*ads[i], constraint, current_time)) {
      hits.push_back(i);
    }
  }
  return hits;
}

int best_match(const ClassAd& request,
               const std::vector<const ClassAd*>& candidates,
               double current_time) {
  int best = -1;
  double best_rank = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const ClassAd* c = candidates[i];
    if (c == nullptr || !symmetric_match(request, *c, current_time)) continue;
    double r = rank_of(request, *c, current_time);
    if (best < 0 || r > best_rank) {
      best = static_cast<int>(i);
      best_rank = r;
    }
  }
  return best;
}

}  // namespace gridmon::classad
