#pragma once

/// \file classad.hpp
/// The ClassAd itself: an ordered, case-insensitive map from attribute
/// names to expressions, with old-syntax ("Attr = expr" per line) parsing
/// and printing.

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gridmon/classad/expr.hpp"
#include "gridmon/classad/value.hpp"

namespace gridmon::classad {

class ClassAd {
 public:
  ClassAd() = default;
  ClassAd(const ClassAd& other) { *this = other; }
  ClassAd& operator=(const ClassAd& other);
  ClassAd(ClassAd&&) noexcept = default;
  ClassAd& operator=(ClassAd&&) noexcept = default;

  /// Parse an old-syntax ad: one `Attr = expr` per line. Blank lines and
  /// lines starting with '#' are skipped. Throws on malformed input.
  static ClassAd parse(std::string_view text);

  /// Insert (or replace) an attribute with an already-built expression.
  void insert(const std::string& name, ExprPtr expr);
  /// Insert (or replace) an attribute parsed from expression text.
  void insert_text(const std::string& name, std::string_view expr_text);
  /// Shorthands for literal values.
  void insert(const std::string& name, std::int64_t v);
  void insert(const std::string& name, double v);
  void insert(const std::string& name, bool v);
  void insert(const std::string& name, const std::string& v);
  void insert(const std::string& name, const char* v);

  bool erase(const std::string& name);
  bool contains(const std::string& name) const;
  std::size_t size() const noexcept { return attrs_.size(); }
  bool empty() const noexcept { return attrs_.empty(); }

  /// The raw expression bound to `name`, or nullptr.
  const Expr* lookup(const std::string& name) const;

  /// Evaluate attribute `name` with this ad as MY and an optional TARGET.
  Value evaluate(const std::string& name, const ClassAd* target = nullptr,
                 double current_time = 0) const;

  /// Evaluate an arbitrary expression in this ad's scope.
  Value evaluate_expr(const Expr& e, const ClassAd* target = nullptr,
                      double current_time = 0) const;

  /// Merge: copy every attribute of `other` into this ad (overwriting).
  void update(const ClassAd& other);

  /// Attribute names in insertion order.
  std::vector<std::string> names() const;

  /// Old-syntax rendering, one attribute per line, insertion order.
  std::string to_string() const;

  /// Approximate wire size in bytes when shipped between daemons.
  double wire_bytes() const;

 private:
  struct NameLess {
    bool operator()(const std::string& a, const std::string& b) const {
      return istrcmp(a, b) < 0;
    }
  };

  // Map for lookup plus a vector for stable order.
  std::map<std::string, ExprPtr, NameLess> attrs_;
  std::vector<std::string> order_;
};

}  // namespace gridmon::classad
