#pragma once

/// \file parser.hpp
/// Recursive-descent parser for old-ClassAd expressions.
///
/// Grammar (lowest to highest precedence):
///   expr        := or_expr [ '?' expr ':' expr ]
///   or_expr     := and_expr { '||' and_expr }
///   and_expr    := cmp_expr { '&&' cmp_expr }
///   cmp_expr    := add_expr { ('<'|'<='|'>'|'>='|'=='|'!='|'=?='|'=!=') add_expr }
///   add_expr    := mul_expr { ('+'|'-') mul_expr }
///   mul_expr    := unary { ('*'|'/'|'%') unary }
///   unary       := ('-'|'!'|'+') unary | primary
///   primary     := literal | ref | call | '(' expr ')'
///   ref         := [ ('MY'|'TARGET') '.' ] identifier
///
/// The reserved words TRUE/FALSE/UNDEFINED/ERROR (any case) are literals.

#include <stdexcept>
#include <string>
#include <string_view>

#include "gridmon/classad/expr.hpp"
#include "gridmon/classad/lexer.hpp"

namespace gridmon::classad {

class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Parse a complete expression; throws ParseError / LexError on bad input.
ExprPtr parse_expression(std::string_view input);

}  // namespace gridmon::classad
