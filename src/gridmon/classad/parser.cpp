#include "gridmon/classad/parser.hpp"

#include <cctype>

namespace gridmon::classad {
namespace {

bool iequals(const std::string& a, const char* b) {
  std::size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return i == a.size() && b[i] == '\0';
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ExprPtr parse() {
    ExprPtr e = expression();
    expect(TokenKind::End, "trailing input after expression");
    return e;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }
  bool check(TokenKind k) const { return peek().kind == k; }
  bool match(TokenKind k) {
    if (check(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(TokenKind k, const char* what) {
    if (!match(k)) {
      throw ParseError(std::string("expected ") + what + " near offset " +
                       std::to_string(peek().offset));
    }
  }

  ExprPtr expression() {
    ExprPtr cond = or_expr();
    if (match(TokenKind::Question)) {
      ExprPtr then_e = expression();
      expect(TokenKind::Colon, "':' in conditional");
      ExprPtr else_e = expression();
      return std::make_unique<TernaryExpr>(std::move(cond), std::move(then_e),
                                           std::move(else_e));
    }
    return cond;
  }

  ExprPtr or_expr() {
    ExprPtr lhs = and_expr();
    while (match(TokenKind::Or)) {
      lhs = std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(lhs),
                                         and_expr());
    }
    return lhs;
  }

  ExprPtr and_expr() {
    ExprPtr lhs = cmp_expr();
    while (match(TokenKind::And)) {
      lhs = std::make_unique<BinaryExpr>(BinaryOp::And, std::move(lhs),
                                         cmp_expr());
    }
    return lhs;
  }

  ExprPtr cmp_expr() {
    ExprPtr lhs = add_expr();
    for (;;) {
      BinaryOp op;
      switch (peek().kind) {
        case TokenKind::Less:
          op = BinaryOp::Less;
          break;
        case TokenKind::LessEq:
          op = BinaryOp::LessEq;
          break;
        case TokenKind::Greater:
          op = BinaryOp::Greater;
          break;
        case TokenKind::GreaterEq:
          op = BinaryOp::GreaterEq;
          break;
        case TokenKind::Equal:
          op = BinaryOp::Equal;
          break;
        case TokenKind::NotEqual:
          op = BinaryOp::NotEqual;
          break;
        case TokenKind::MetaEqual:
          op = BinaryOp::MetaEqual;
          break;
        case TokenKind::MetaNotEqual:
          op = BinaryOp::MetaNotEqual;
          break;
        default:
          return lhs;
      }
      advance();
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), add_expr());
    }
  }

  ExprPtr add_expr() {
    ExprPtr lhs = mul_expr();
    for (;;) {
      if (match(TokenKind::Plus)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Add, std::move(lhs),
                                           mul_expr());
      } else if (match(TokenKind::Minus)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Subtract, std::move(lhs),
                                           mul_expr());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr mul_expr() {
    ExprPtr lhs = unary();
    for (;;) {
      if (match(TokenKind::Star)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Multiply, std::move(lhs),
                                           unary());
      } else if (match(TokenKind::Slash)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Divide, std::move(lhs),
                                           unary());
      } else if (match(TokenKind::Percent)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Modulus, std::move(lhs),
                                           unary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr unary() {
    if (match(TokenKind::Minus)) {
      return std::make_unique<UnaryExpr>(UnaryOp::Negate, unary());
    }
    if (match(TokenKind::Not)) {
      return std::make_unique<UnaryExpr>(UnaryOp::Not, unary());
    }
    if (match(TokenKind::Plus)) return unary();
    return primary();
  }

  ExprPtr primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::IntegerLiteral:
        advance();
        return std::make_unique<LiteralExpr>(Value::integer(t.int_value));
      case TokenKind::RealLiteral:
        advance();
        return std::make_unique<LiteralExpr>(Value::real(t.real_value));
      case TokenKind::StringLiteral:
        advance();
        return std::make_unique<LiteralExpr>(Value::string(t.text));
      case TokenKind::LParen: {
        advance();
        ExprPtr e = expression();
        expect(TokenKind::RParen, "')'");
        return e;
      }
      case TokenKind::Identifier:
        return identifier();
      default:
        throw ParseError("unexpected token near offset " +
                         std::to_string(t.offset));
    }
  }

  ExprPtr identifier() {
    Token t = advance();
    if (iequals(t.text, "true")) {
      return std::make_unique<LiteralExpr>(Value::boolean(true));
    }
    if (iequals(t.text, "false")) {
      return std::make_unique<LiteralExpr>(Value::boolean(false));
    }
    if (iequals(t.text, "undefined")) {
      return std::make_unique<LiteralExpr>(Value::undefined());
    }
    if (iequals(t.text, "error")) {
      return std::make_unique<LiteralExpr>(Value::error());
    }
    if ((iequals(t.text, "my") || iequals(t.text, "target")) &&
        check(TokenKind::Dot)) {
      advance();  // '.'
      if (!check(TokenKind::Identifier)) {
        throw ParseError("expected attribute name after scope qualifier");
      }
      Token attr = advance();
      AttrScope scope =
          iequals(t.text, "my") ? AttrScope::My : AttrScope::Target;
      return std::make_unique<AttrRefExpr>(scope, attr.text);
    }
    if (check(TokenKind::LParen)) {
      advance();
      std::vector<ExprPtr> args;
      if (!check(TokenKind::RParen)) {
        args.push_back(expression());
        while (match(TokenKind::Comma)) args.push_back(expression());
      }
      expect(TokenKind::RParen, "')' after arguments");
      return std::make_unique<CallExpr>(t.text, std::move(args));
    }
    return std::make_unique<AttrRefExpr>(AttrScope::Default, t.text);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

ExprPtr parse_expression(std::string_view input) {
  Parser parser(lex(input));
  return parser.parse();
}

}  // namespace gridmon::classad
