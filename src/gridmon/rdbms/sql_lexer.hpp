#pragma once

/// \file sql_lexer.hpp
/// Tokenizer for the SQL subset R-GMA mediates (SELECT/INSERT/UPDATE/
/// DELETE/CREATE/DROP). Keywords are case-insensitive; strings are
/// single-quoted with '' as the escape.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gridmon::rdbms {

enum class SqlTokenKind {
  End,
  Identifier,   // possibly a keyword; parser decides
  Integer,
  Real,
  String,
  LParen,
  RParen,
  Comma,
  Star,
  Semicolon,
  Eq,        // =
  NotEq,     // != or <>
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Plus,
  Minus,
  Slash,
  Percent,
  Dot,
};

struct SqlToken {
  SqlTokenKind kind;
  std::string text;
  std::int64_t int_value = 0;
  double real_value = 0;
  std::size_t offset = 0;

  /// Case-insensitive keyword test for Identifier tokens.
  bool is_keyword(const char* kw) const;
};

class SqlError : public std::runtime_error {
 public:
  explicit SqlError(const std::string& msg) : std::runtime_error(msg) {}
};

std::vector<SqlToken> sql_lex(std::string_view input);

}  // namespace gridmon::rdbms
