#pragma once

/// \file database.hpp
/// The database engine: named tables plus a statement executor. Execution
/// reports rows examined/returned so callers (the R-GMA servlets, the
/// Hawkeye Manager) can charge realistic simulated CPU time per query.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "gridmon/rdbms/sql_ast.hpp"
#include "gridmon/rdbms/sql_parser.hpp"
#include "gridmon/rdbms/table.hpp"

namespace gridmon::rdbms {

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  std::size_t affected = 0;       // for INSERT/UPDATE/DELETE
  std::size_t rows_examined = 0;  // cost accounting

  /// Approximate wire size of the result set.
  double wire_bytes() const {
    double b = 64;
    for (const auto& row : rows) {
      for (const auto& v : row) {
        b += static_cast<double>(v.to_string().size() + 2);
      }
    }
    return b;
  }
};

class Database {
 public:
  /// Parse and execute one statement.
  QueryResult execute(std::string_view sql);
  /// Execute a pre-parsed statement.
  QueryResult execute(const Statement& stmt);

  bool has_table(const std::string& name) const;
  Table& table(const std::string& name);
  const Table& table(const std::string& name) const;
  std::vector<std::string> table_names() const;
  std::size_t table_count() const noexcept { return tables_.size(); }

 private:
  QueryResult run(const CreateTableStmt& s);
  QueryResult run(const DropTableStmt& s);
  QueryResult run(const CreateIndexStmt& s);
  QueryResult run(const InsertStmt& s);
  QueryResult run(const SelectStmt& s);
  QueryResult run(const UpdateStmt& s);
  QueryResult run(const DeleteStmt& s);

  std::map<std::string, Table> tables_;  // key: lowercase name
};

}  // namespace gridmon::rdbms
