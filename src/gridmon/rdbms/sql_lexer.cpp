#include "gridmon/rdbms/sql_lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace gridmon::rdbms {

bool SqlToken::is_keyword(const char* kw) const {
  if (kind != SqlTokenKind::Identifier) return false;
  std::size_t i = 0;
  for (; i < text.size() && kw[i] != '\0'; ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(kw[i]))) {
      return false;
    }
  }
  return i == text.size() && kw[i] == '\0';
}

std::vector<SqlToken> sql_lex(std::string_view in) {
  std::vector<SqlToken> out;
  std::size_t i = 0;
  const std::size_t n = in.size();
  auto push = [&](SqlTokenKind k, std::size_t at, std::string text = {}) {
    SqlToken t;
    t.kind = k;
    t.text = std::move(text);
    t.offset = at;
    out.push_back(std::move(t));
  };

  while (i < n) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    std::size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(in[j])) ||
                       in[j] == '_')) {
        ++j;
      }
      push(SqlTokenKind::Identifier, start, std::string(in.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      std::size_t j = i;
      bool is_real = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(in[j]))) ++j;
      if (j < n && in[j] == '.') {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(in[j]))) ++j;
      }
      if (j < n && (in[j] == 'e' || in[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (in[k] == '+' || in[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(in[k]))) {
          is_real = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(in[j]))) ++j;
        }
      }
      std::string text(in.substr(i, j - i));
      SqlToken t;
      t.offset = start;
      if (is_real) {
        t.kind = SqlTokenKind::Real;
        t.real_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = SqlTokenKind::Integer;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      std::size_t j = i + 1;
      for (;;) {
        if (j >= n) throw SqlError("unterminated string literal");
        if (in[j] == '\'') {
          if (j + 1 < n && in[j + 1] == '\'') {
            text.push_back('\'');
            j += 2;
            continue;
          }
          break;
        }
        text.push_back(in[j]);
        ++j;
      }
      push(SqlTokenKind::String, start, std::move(text));
      i = j + 1;
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && in[i + 1] == b;
    };
    if (two('!', '=') || two('<', '>')) {
      push(SqlTokenKind::NotEq, start);
      i += 2;
      continue;
    }
    if (two('<', '=')) {
      push(SqlTokenKind::LessEq, start);
      i += 2;
      continue;
    }
    if (two('>', '=')) {
      push(SqlTokenKind::GreaterEq, start);
      i += 2;
      continue;
    }
    switch (c) {
      case '(':
        push(SqlTokenKind::LParen, start);
        break;
      case ')':
        push(SqlTokenKind::RParen, start);
        break;
      case ',':
        push(SqlTokenKind::Comma, start);
        break;
      case '*':
        push(SqlTokenKind::Star, start);
        break;
      case ';':
        push(SqlTokenKind::Semicolon, start);
        break;
      case '=':
        push(SqlTokenKind::Eq, start);
        break;
      case '<':
        push(SqlTokenKind::Less, start);
        break;
      case '>':
        push(SqlTokenKind::Greater, start);
        break;
      case '+':
        push(SqlTokenKind::Plus, start);
        break;
      case '-':
        push(SqlTokenKind::Minus, start);
        break;
      case '/':
        push(SqlTokenKind::Slash, start);
        break;
      case '%':
        push(SqlTokenKind::Percent, start);
        break;
      case '.':
        push(SqlTokenKind::Dot, start);
        break;
      default:
        throw SqlError(std::string("unexpected character '") + c +
                       "' at offset " + std::to_string(start));
    }
    ++i;
  }
  push(SqlTokenKind::End, n);
  return out;
}

}  // namespace gridmon::rdbms
