#include "gridmon/rdbms/sql_ast.hpp"

#include <cctype>

#include "gridmon/rdbms/sql_lexer.hpp"  // SqlError

namespace gridmon::rdbms {
namespace {

Value bool_value(std::optional<bool> b) {
  if (!b) return Value::null();
  return Value::integer(*b ? 1 : 0);
}

char fold(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::optional<bool> SqlExpr::truth(const Value& v) {
  if (v.is_null()) return std::nullopt;
  if (v.is_number()) return v.as_number() != 0;
  return !v.as_text().empty();
}

Value SqlColumnRef::eval(const RowContext& ctx) const {
  auto idx = ctx.schema->index_of(name_);
  if (!idx) throw SqlError("unknown column: " + name_);
  return (*ctx.row)[*idx];
}

Value SqlBinary::eval(const RowContext& ctx) const {
  if (op_ == SqlBinOp::And || op_ == SqlBinOp::Or) {
    auto l = truth(lhs_->eval(ctx));
    auto r = truth(rhs_->eval(ctx));
    if (op_ == SqlBinOp::And) {
      // Kleene AND: false dominates unknown.
      if ((l && !*l) || (r && !*r)) return Value::integer(0);
      if (!l || !r) return Value::null();
      return Value::integer(1);
    }
    if ((l && *l) || (r && *r)) return Value::integer(1);
    if (!l || !r) return Value::null();
    return Value::integer(0);
  }

  Value l = lhs_->eval(ctx);
  Value r = rhs_->eval(ctx);
  switch (op_) {
    case SqlBinOp::Add:
    case SqlBinOp::Subtract:
    case SqlBinOp::Multiply:
    case SqlBinOp::Divide: {
      if (l.is_null() || r.is_null()) return Value::null();
      if (!l.is_number() || !r.is_number()) {
        throw SqlError("arithmetic on non-numeric value");
      }
      if (l.is_integer() && r.is_integer() && op_ != SqlBinOp::Divide) {
        std::int64_t a = l.as_integer(), b = r.as_integer();
        switch (op_) {
          case SqlBinOp::Add:
            return Value::integer(a + b);
          case SqlBinOp::Subtract:
            return Value::integer(a - b);
          default:
            return Value::integer(a * b);
        }
      }
      double a = l.as_number(), b = r.as_number();
      switch (op_) {
        case SqlBinOp::Add:
          return Value::real(a + b);
        case SqlBinOp::Subtract:
          return Value::real(a - b);
        case SqlBinOp::Multiply:
          return Value::real(a * b);
        default:
          if (b == 0) return Value::null();  // SQL: division by zero -> NULL
          return Value::real(a / b);
      }
    }
    default: {
      auto cmp = Value::compare(l, r);
      if (!cmp) return Value::null();
      switch (op_) {
        case SqlBinOp::Eq:
          return bool_value(*cmp == 0);
        case SqlBinOp::NotEq:
          return bool_value(*cmp != 0);
        case SqlBinOp::Less:
          return bool_value(*cmp < 0);
        case SqlBinOp::LessEq:
          return bool_value(*cmp <= 0);
        case SqlBinOp::Greater:
          return bool_value(*cmp > 0);
        case SqlBinOp::GreaterEq:
          return bool_value(*cmp >= 0);
        default:
          throw SqlError("bad operator");
      }
    }
  }
}

std::string SqlBinary::to_string() const {
  const char* op = "?";
  switch (op_) {
    case SqlBinOp::Add:
      op = "+";
      break;
    case SqlBinOp::Subtract:
      op = "-";
      break;
    case SqlBinOp::Multiply:
      op = "*";
      break;
    case SqlBinOp::Divide:
      op = "/";
      break;
    case SqlBinOp::Eq:
      op = "=";
      break;
    case SqlBinOp::NotEq:
      op = "<>";
      break;
    case SqlBinOp::Less:
      op = "<";
      break;
    case SqlBinOp::LessEq:
      op = "<=";
      break;
    case SqlBinOp::Greater:
      op = ">";
      break;
    case SqlBinOp::GreaterEq:
      op = ">=";
      break;
    case SqlBinOp::And:
      op = "AND";
      break;
    case SqlBinOp::Or:
      op = "OR";
      break;
  }
  // Appends instead of one operator+ chain: GCC 12's -Wrestrict misfires
  // on nested char*/string concatenations at -O2 (GCC PR 105651).
  std::string out = "(";
  out += lhs_->to_string();
  out += ' ';
  out += op;
  out += ' ';
  out += rhs_->to_string();
  out += ')';
  return out;
}

Value SqlNot::eval(const RowContext& ctx) const {
  auto t = truth(inner_->eval(ctx));
  if (!t) return Value::null();
  return Value::integer(*t ? 0 : 1);
}

Value SqlNegate::eval(const RowContext& ctx) const {
  Value v = inner_->eval(ctx);
  if (v.is_null()) return Value::null();
  if (v.is_integer()) return Value::integer(-v.as_integer());
  if (v.is_real()) return Value::real(-v.as_real());
  throw SqlError("negation of non-numeric value");
}

bool SqlLike::like_match(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match with backtracking on '%'.
  std::size_t t = 0, p = 0;
  std::size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || fold(pattern[p]) == fold(text[t]))) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Value SqlLike::eval(const RowContext& ctx) const {
  Value v = subject_->eval(ctx);
  if (v.is_null()) return Value::null();
  if (!v.is_text()) throw SqlError("LIKE requires a string subject");
  bool m = like_match(v.as_text(), pattern_);
  return Value::integer((m != negated_) ? 1 : 0);
}

std::string SqlLike::to_string() const {
  return subject_->to_string() + (negated_ ? " NOT LIKE " : " LIKE ") +
         Value::text(pattern_).to_string();
}

Value SqlIn::eval(const RowContext& ctx) const {
  Value v = subject_->eval(ctx);
  if (v.is_null()) return Value::null();
  bool saw_null = false;
  for (const auto& item : items_) {
    Value w = item->eval(ctx);
    auto cmp = Value::compare(v, w);
    if (!cmp) {
      if (w.is_null()) saw_null = true;
      continue;
    }
    if (*cmp == 0) return Value::integer(negated_ ? 0 : 1);
  }
  if (saw_null) return Value::null();  // SQL: x IN (..., NULL) is unknown
  return Value::integer(negated_ ? 1 : 0);
}

std::string SqlIn::to_string() const {
  std::string out =
      subject_->to_string() + (negated_ ? " NOT IN (" : " IN (");
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i) out += ", ";
    out += items_[i]->to_string();
  }
  return out + ")";
}

Value SqlIsNull::eval(const RowContext& ctx) const {
  bool is_null = subject_->eval(ctx).is_null();
  return Value::integer((is_null != negated_) ? 1 : 0);
}

}  // namespace gridmon::rdbms
