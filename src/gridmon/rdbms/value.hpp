#pragma once

/// \file value.hpp
/// SQL values: NULL, 64-bit integers, doubles and strings, with SQL
/// comparison semantics (numeric cross-type comparison; NULL compares as
/// "unknown", surfaced via std::optional).

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace gridmon::rdbms {

class Value {
 public:
  Value() = default;  // NULL

  static Value null() { return Value(); }
  static Value integer(std::int64_t v) { return Value(Payload(v)); }
  static Value real(double v) { return Value(Payload(v)); }
  static Value text(std::string v) { return Value(Payload(std::move(v))); }

  bool is_null() const noexcept {
    return std::holds_alternative<std::monostate>(data_);
  }
  bool is_integer() const noexcept {
    return std::holds_alternative<std::int64_t>(data_);
  }
  bool is_real() const noexcept {
    return std::holds_alternative<double>(data_);
  }
  bool is_text() const noexcept {
    return std::holds_alternative<std::string>(data_);
  }
  bool is_number() const noexcept { return is_integer() || is_real(); }

  std::int64_t as_integer() const { return std::get<std::int64_t>(data_); }
  double as_real() const { return std::get<double>(data_); }
  const std::string& as_text() const { return std::get<std::string>(data_); }
  double as_number() const {
    return is_integer() ? static_cast<double>(as_integer()) : as_real();
  }

  /// SQL three-way comparison. nullopt when either side is NULL or the
  /// types are incomparable (number vs string).
  static std::optional<int> compare(const Value& a, const Value& b);

  /// Literal rendering ("NULL", 42, 3.5, 'quoted').
  std::string to_string() const;

  /// Exact (structural) equality, for tests. NULL == NULL here.
  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }

 private:
  using Payload = std::variant<std::monostate, std::int64_t, double,
                               std::string>;
  explicit Value(Payload p) : data_(std::move(p)) {}
  Payload data_;
};

}  // namespace gridmon::rdbms
