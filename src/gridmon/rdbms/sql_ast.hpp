#pragma once

/// \file sql_ast.hpp
/// Statement and expression AST for the SQL subset, with SQL three-valued
/// NULL logic in expression evaluation.

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "gridmon/rdbms/schema.hpp"
#include "gridmon/rdbms/sql_lexer.hpp"  // SqlError
#include "gridmon/rdbms/table.hpp"
#include "gridmon/rdbms/value.hpp"

namespace gridmon::rdbms {

class SqlExpr;
using SqlExprPtr = std::unique_ptr<SqlExpr>;

/// Row context for expression evaluation.
struct RowContext {
  const Schema* schema;
  const Row* row;
};

class SqlExpr {
 public:
  virtual ~SqlExpr() = default;
  /// Evaluate to a Value; boolean results are integer 1/0, unknown is NULL.
  virtual Value eval(const RowContext& ctx) const = 0;
  virtual std::string to_string() const = 0;

  /// SQL truth of a value: NULL -> unknown (nullopt), numbers C-style.
  static std::optional<bool> truth(const Value& v);
};

class SqlLiteral final : public SqlExpr {
 public:
  explicit SqlLiteral(Value v) : value_(std::move(v)) {}
  Value eval(const RowContext&) const override { return value_; }
  std::string to_string() const override { return value_.to_string(); }
  const Value& value() const noexcept { return value_; }

 private:
  Value value_;
};

class SqlColumnRef final : public SqlExpr {
 public:
  explicit SqlColumnRef(std::string name) : name_(std::move(name)) {}
  Value eval(const RowContext& ctx) const override;
  std::string to_string() const override { return name_; }
  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

enum class SqlBinOp {
  Add,
  Subtract,
  Multiply,
  Divide,
  Eq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  And,
  Or,
};

class SqlBinary final : public SqlExpr {
 public:
  SqlBinary(SqlBinOp op, SqlExprPtr l, SqlExprPtr r)
      : op_(op), lhs_(std::move(l)), rhs_(std::move(r)) {}
  Value eval(const RowContext& ctx) const override;
  std::string to_string() const override;

 private:
  SqlBinOp op_;
  SqlExprPtr lhs_;
  SqlExprPtr rhs_;
};

class SqlNot final : public SqlExpr {
 public:
  explicit SqlNot(SqlExprPtr e) : inner_(std::move(e)) {}
  Value eval(const RowContext& ctx) const override;
  std::string to_string() const override {
    return "NOT (" + inner_->to_string() + ")";
  }

 private:
  SqlExprPtr inner_;
};

class SqlNegate final : public SqlExpr {
 public:
  explicit SqlNegate(SqlExprPtr e) : inner_(std::move(e)) {}
  Value eval(const RowContext& ctx) const override;
  std::string to_string() const override {
    return "-(" + inner_->to_string() + ")";
  }

 private:
  SqlExprPtr inner_;
};

/// expr LIKE 'pattern' — % any run, _ one char, case-insensitive.
class SqlLike final : public SqlExpr {
 public:
  SqlLike(SqlExprPtr subject, std::string pattern, bool negated)
      : subject_(std::move(subject)),
        pattern_(std::move(pattern)),
        negated_(negated) {}
  Value eval(const RowContext& ctx) const override;
  std::string to_string() const override;
  static bool like_match(const std::string& text, const std::string& pattern);

 private:
  SqlExprPtr subject_;
  std::string pattern_;
  bool negated_;
};

class SqlIn final : public SqlExpr {
 public:
  SqlIn(SqlExprPtr subject, std::vector<SqlExprPtr> items, bool negated)
      : subject_(std::move(subject)),
        items_(std::move(items)),
        negated_(negated) {}
  Value eval(const RowContext& ctx) const override;
  std::string to_string() const override;

 private:
  SqlExprPtr subject_;
  std::vector<SqlExprPtr> items_;
  bool negated_;
};

class SqlIsNull final : public SqlExpr {
 public:
  SqlIsNull(SqlExprPtr subject, bool negated)
      : subject_(std::move(subject)), negated_(negated) {}
  Value eval(const RowContext& ctx) const override;
  std::string to_string() const override {
    return subject_->to_string() + (negated_ ? " IS NOT NULL" : " IS NULL");
  }

 private:
  SqlExprPtr subject_;
  bool negated_;
};

// ---- statements ----

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

struct CreateIndexStmt {
  std::string table;
  std::string column;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty: positional
  std::vector<std::vector<SqlExprPtr>> rows;
};

struct OrderBy {
  std::string column;
  bool descending = false;
};

/// One item of a SELECT list: a plain column or an aggregate over one.
struct SelectItem {
  enum class Kind { Column, CountStar, Count, Sum, Avg, Min, Max };
  Kind kind = Kind::Column;
  std::string column;  // unused for CountStar

  std::string display_name() const {
    switch (kind) {
      case Kind::Column:
        return column;
      case Kind::CountStar:
        return "COUNT(*)";
      case Kind::Count:
        return "COUNT(" + column + ")";
      case Kind::Sum:
        return "SUM(" + column + ")";
      case Kind::Avg:
        return "AVG(" + column + ")";
      case Kind::Min:
        return "MIN(" + column + ")";
      case Kind::Max:
        return "MAX(" + column + ")";
    }
    return column;
  }
  bool is_aggregate() const { return kind != Kind::Column; }
};

struct SelectStmt {
  std::vector<SelectItem> items;  // empty: SELECT *
  std::string table;
  SqlExprPtr where;  // may be null
  std::optional<std::string> group_by;
  std::optional<OrderBy> order_by;
  std::optional<std::size_t> limit;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, SqlExprPtr>> assignments;
  SqlExprPtr where;
};

struct DeleteStmt {
  std::string table;
  SqlExprPtr where;
};

using Statement = std::variant<CreateTableStmt, DropTableStmt,
                               CreateIndexStmt, InsertStmt, SelectStmt,
                               UpdateStmt, DeleteStmt>;

}  // namespace gridmon::rdbms
