#pragma once

/// \file sql_parser.hpp
/// Parser for the SQL subset:
///
///   CREATE TABLE t (col TYPE, ...)        TYPE: INT|INTEGER|REAL|FLOAT|
///                                               DOUBLE|TEXT|VARCHAR[(n)]
///   CREATE INDEX ON t (col)
///   DROP TABLE [IF EXISTS] t
///   INSERT INTO t [(cols)] VALUES (...), (...)
///   SELECT *|cols FROM t [WHERE expr] [ORDER BY col [ASC|DESC]] [LIMIT n]
///   UPDATE t SET col = expr, ... [WHERE expr]
///   DELETE FROM t [WHERE expr]
///
/// WHERE grammar: OR < AND < NOT < comparison/LIKE/IN/IS < additive <
/// multiplicative < unary < primary.

#include <string_view>

#include "gridmon/rdbms/sql_ast.hpp"

namespace gridmon::rdbms {

/// Parse a single statement (trailing ';' allowed). Throws SqlError.
Statement sql_parse(std::string_view input);

/// Parse just an expression (for producer predicates etc.).
SqlExprPtr sql_parse_expression(std::string_view input);

}  // namespace gridmon::rdbms
