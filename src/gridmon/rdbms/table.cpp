#include "gridmon/rdbms/table.hpp"

#include <algorithm>

namespace gridmon::rdbms {

void Table::check_row(const Row& row) const {
  if (row.size() != schema_.column_count()) {
    throw TableError("row arity " + std::to_string(row.size()) +
                     " != schema arity " +
                     std::to_string(schema_.column_count()) + " for table " +
                     name_);
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) continue;
    switch (schema_.column(i).type) {
      case ColumnType::Integer:
        if (!v.is_integer()) {
          throw TableError("type mismatch in column " +
                           schema_.column(i).name);
        }
        break;
      case ColumnType::Real:
        if (!v.is_number()) {
          throw TableError("type mismatch in column " +
                           schema_.column(i).name);
        }
        break;
      case ColumnType::Text:
        if (!v.is_text()) {
          throw TableError("type mismatch in column " +
                           schema_.column(i).name);
        }
        break;
    }
  }
}

void Table::insert(Row row) {
  check_row(row);
  // Widen integers stored into REAL columns so comparisons are uniform.
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (schema_.column(i).type == ColumnType::Real && row[i].is_integer()) {
      row[i] = Value::real(static_cast<double>(row[i].as_integer()));
    }
  }
  rows_.push_back(std::move(row));
  tombstone_.push_back(false);
  ++live_rows_;
  index_insert(rows_.size() - 1);
  if (journal_ != nullptr) journal_->on_insert(rows_.back());
}

void Table::create_index(const std::string& column) {
  auto idx = schema_.index_of(column);
  if (!idx) throw TableError("no such column to index: " + column);
  indexed_column_ = *idx;
  index_.clear();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (!tombstone_[i]) index_insert(i);
  }
}

bool Table::has_index_on(const std::string& column) const {
  auto idx = schema_.index_of(column);
  return idx && indexed_column_ && *idx == *indexed_column_;
}

std::vector<std::size_t> Table::find_equal(const std::string& column,
                                           const Value& v) const {
  std::vector<std::size_t> out;
  auto idx = schema_.index_of(column);
  if (!idx) throw TableError("no such column: " + column);
  if (indexed_column_ && *indexed_column_ == *idx) {
    auto [lo, hi] = index_.equal_range(index_key(v));
    for (auto it = lo; it != hi; ++it) {
      if (!tombstone_[it->second]) out.push_back(it->second);
    }
    // equal_range walks hash buckets in implementation-defined order;
    // sorting restores the ascending-id order the scan path produces, so
    // both paths are interchangeable and deterministic.
    std::sort(out.begin(), out.end());
    // Hash key is the rendered literal; values rendering identically are
    // genuinely equal for our value domain.
    return out;
  }
  scan([&](std::size_t id, const Row& row) {
    auto cmp = Value::compare(row[*idx], v);
    if (cmp && *cmp == 0) out.push_back(id);
    return true;
  });
  return out;
}

void Table::update_row(std::size_t id, Row row) {
  check_row(row);
  if (tombstone_.at(id)) throw TableError("update of deleted row");
  index_erase(id);
  rows_[id] = std::move(row);
  index_insert(id);
  if (journal_ != nullptr) journal_->on_update(id, rows_[id]);
}

void Table::erase_row(std::size_t id) {
  if (tombstone_.at(id)) return;
  index_erase(id);
  tombstone_[id] = true;
  --live_rows_;
  if (journal_ != nullptr) journal_->on_erase(id);
}

void Table::vacuum() {
  std::vector<Row> kept;
  kept.reserve(live_rows_);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (!tombstone_[i]) kept.push_back(std::move(rows_[i]));
  }
  rows_ = std::move(kept);
  tombstone_.assign(rows_.size(), false);
  if (indexed_column_) {
    index_.clear();
    for (std::size_t i = 0; i < rows_.size(); ++i) index_insert(i);
  }
  if (journal_ != nullptr) journal_->on_vacuum();
}

void Table::index_insert(std::size_t id) {
  if (!indexed_column_) return;
  index_.emplace(index_key(rows_[id][*indexed_column_]), id);
}

void Table::index_erase(std::size_t id) {
  if (!indexed_column_) return;
  // gridmon-lint: iteration-order-independent -- erases the unique entry
  // whose mapped id matches; which order the equal-key group is walked in
  // cannot change which entry is removed or anything observable.
  auto [lo, hi] = index_.equal_range(index_key(rows_[id][*indexed_column_]));
  for (auto it = lo; it != hi; ++it) {
    if (it->second == id) {
      index_.erase(it);
      return;
    }
  }
}

}  // namespace gridmon::rdbms
