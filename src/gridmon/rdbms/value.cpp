#include "gridmon/rdbms/value.hpp"

#include <sstream>

namespace gridmon::rdbms {

std::optional<int> Value::compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  if (a.is_number() && b.is_number()) {
    double x = a.as_number(), y = b.as_number();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.is_text() && b.is_text()) {
    int c = a.as_text().compare(b.as_text());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return std::nullopt;  // incomparable types
}

std::string Value::to_string() const {
  if (is_null()) return "NULL";
  if (is_integer()) return std::to_string(as_integer());
  if (is_real()) {
    std::ostringstream os;
    os << as_real();
    return os.str();
  }
  std::string out = "'";
  for (char c : as_text()) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += '\'';
  return out;
}

}  // namespace gridmon::rdbms
