#include "gridmon/rdbms/sql_parser.hpp"

#include "gridmon/rdbms/sql_lexer.hpp"

namespace gridmon::rdbms {
namespace {

class SqlParser {
 public:
  explicit SqlParser(std::vector<SqlToken> tokens)
      : tokens_(std::move(tokens)) {}

  Statement statement() {
    Statement stmt = dispatch();
    match(SqlTokenKind::Semicolon);
    expect_end();
    return stmt;
  }

  SqlExprPtr lone_expression() {
    SqlExprPtr e = expression();
    expect_end();
    return e;
  }

 private:
  Statement dispatch() {
    if (keyword("SELECT")) return select();
    if (keyword("INSERT")) return insert();
    if (keyword("UPDATE")) return update();
    if (keyword("DELETE")) return del();
    if (keyword("CREATE")) {
      if (keyword("TABLE")) return create_table();
      if (keyword("INDEX")) return create_index();
      throw SqlError("expected TABLE or INDEX after CREATE");
    }
    if (keyword("DROP")) return drop_table();
    throw SqlError("unrecognized statement near '" + peek().text + "'");
  }

  // ---- token helpers ----
  const SqlToken& peek() const { return tokens_[pos_]; }
  const SqlToken& advance() { return tokens_[pos_++]; }
  bool check(SqlTokenKind k) const { return peek().kind == k; }
  bool match(SqlTokenKind k) {
    if (check(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(SqlTokenKind k, const char* what) {
    if (!match(k)) {
      throw SqlError(std::string("expected ") + what + " near '" +
                     peek().text + "'");
    }
  }
  void expect_end() {
    if (!check(SqlTokenKind::End)) {
      throw SqlError("trailing input near '" + peek().text + "'");
    }
  }
  bool keyword(const char* kw) {
    if (peek().is_keyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect_keyword(const char* kw) {
    if (!keyword(kw)) {
      throw SqlError(std::string("expected ") + kw + " near '" + peek().text +
                     "'");
    }
  }
  std::string identifier(const char* what) {
    if (!check(SqlTokenKind::Identifier)) {
      throw SqlError(std::string("expected ") + what + " near '" +
                     peek().text + "'");
    }
    return advance().text;
  }

  // ---- statements ----
  Statement select() {
    SelectStmt s;
    if (!match(SqlTokenKind::Star)) {
      s.items.push_back(select_item());
      while (match(SqlTokenKind::Comma)) s.items.push_back(select_item());
    }
    expect_keyword("FROM");
    s.table = identifier("table name");
    if (keyword("WHERE")) s.where = expression();
    if (keyword("GROUP")) {
      expect_keyword("BY");
      s.group_by = identifier("group-by column");
    }
    if (keyword("ORDER")) {
      expect_keyword("BY");
      OrderBy ob;
      ob.column = identifier("order-by column");
      if (keyword("DESC")) {
        ob.descending = true;
      } else {
        keyword("ASC");
      }
      s.order_by = std::move(ob);
    }
    if (keyword("LIMIT")) {
      if (!check(SqlTokenKind::Integer)) {
        throw SqlError("expected integer after LIMIT");
      }
      s.limit = static_cast<std::size_t>(advance().int_value);
    }
    return s;
  }

  SelectItem select_item() {
    SelectItem item;
    struct AggName {
      const char* kw;
      SelectItem::Kind kind;
    };
    static constexpr AggName kAggs[] = {
        {"COUNT", SelectItem::Kind::Count},
        {"SUM", SelectItem::Kind::Sum},
        {"AVG", SelectItem::Kind::Avg},
        {"MIN", SelectItem::Kind::Min},
        {"MAX", SelectItem::Kind::Max},
    };
    for (const auto& agg : kAggs) {
      if (peek().is_keyword(agg.kw) &&
          tokens_[pos_ + 1].kind == SqlTokenKind::LParen) {
        advance();  // aggregate name
        advance();  // '('
        if (agg.kind == SelectItem::Kind::Count &&
            match(SqlTokenKind::Star)) {
          item.kind = SelectItem::Kind::CountStar;
        } else {
          item.kind = agg.kind;
          item.column = identifier("aggregated column");
        }
        expect(SqlTokenKind::RParen, "')' after aggregate");
        return item;
      }
    }
    item.kind = SelectItem::Kind::Column;
    item.column = identifier("column name");
    return item;
  }

  Statement insert() {
    expect_keyword("INTO");
    InsertStmt s;
    s.table = identifier("table name");
    if (match(SqlTokenKind::LParen)) {
      s.columns.push_back(identifier("column name"));
      while (match(SqlTokenKind::Comma)) {
        s.columns.push_back(identifier("column name"));
      }
      expect(SqlTokenKind::RParen, "')'");
    }
    expect_keyword("VALUES");
    do {
      expect(SqlTokenKind::LParen, "'('");
      std::vector<SqlExprPtr> row;
      row.push_back(expression());
      while (match(SqlTokenKind::Comma)) row.push_back(expression());
      expect(SqlTokenKind::RParen, "')'");
      s.rows.push_back(std::move(row));
    } while (match(SqlTokenKind::Comma));
    return s;
  }

  Statement update() {
    UpdateStmt s;
    s.table = identifier("table name");
    expect_keyword("SET");
    do {
      std::string col = identifier("column name");
      expect(SqlTokenKind::Eq, "'='");
      s.assignments.emplace_back(std::move(col), expression());
    } while (match(SqlTokenKind::Comma));
    if (keyword("WHERE")) s.where = expression();
    return s;
  }

  Statement del() {
    expect_keyword("FROM");
    DeleteStmt s;
    s.table = identifier("table name");
    if (keyword("WHERE")) s.where = expression();
    return s;
  }

  Statement create_table() {
    CreateTableStmt s;
    s.table = identifier("table name");
    expect(SqlTokenKind::LParen, "'('");
    do {
      ColumnDef col;
      col.name = identifier("column name");
      col.type = column_type();
      s.columns.push_back(std::move(col));
    } while (match(SqlTokenKind::Comma));
    expect(SqlTokenKind::RParen, "')'");
    if (s.columns.empty()) throw SqlError("table needs at least one column");
    return s;
  }

  ColumnType column_type() {
    if (keyword("INT") || keyword("INTEGER") || keyword("BIGINT")) {
      return ColumnType::Integer;
    }
    if (keyword("REAL") || keyword("FLOAT") || keyword("DOUBLE")) {
      return ColumnType::Real;
    }
    if (keyword("TEXT") || keyword("STRING")) return ColumnType::Text;
    if (keyword("VARCHAR") || keyword("CHAR")) {
      if (match(SqlTokenKind::LParen)) {
        if (!check(SqlTokenKind::Integer)) {
          throw SqlError("expected length in VARCHAR(n)");
        }
        advance();
        expect(SqlTokenKind::RParen, "')'");
      }
      return ColumnType::Text;
    }
    throw SqlError("unknown column type near '" + peek().text + "'");
  }

  Statement create_index() {
    CreateIndexStmt s;
    // Accept both "CREATE INDEX ON t (col)" and
    // "CREATE INDEX name ON t (col)".
    if (!peek().is_keyword("ON")) identifier("index name");
    expect_keyword("ON");
    s.table = identifier("table name");
    expect(SqlTokenKind::LParen, "'('");
    s.column = identifier("column name");
    expect(SqlTokenKind::RParen, "')'");
    return s;
  }

  Statement drop_table() {
    expect_keyword("TABLE");
    DropTableStmt s;
    if (keyword("IF")) {
      expect_keyword("EXISTS");
      s.if_exists = true;
    }
    s.table = identifier("table name");
    return s;
  }

  // ---- expressions ----
  SqlExprPtr expression() { return or_expr(); }

  SqlExprPtr or_expr() {
    SqlExprPtr lhs = and_expr();
    while (keyword("OR")) {
      lhs = std::make_unique<SqlBinary>(SqlBinOp::Or, std::move(lhs),
                                        and_expr());
    }
    return lhs;
  }

  SqlExprPtr and_expr() {
    SqlExprPtr lhs = not_expr();
    while (keyword("AND")) {
      lhs = std::make_unique<SqlBinary>(SqlBinOp::And, std::move(lhs),
                                        not_expr());
    }
    return lhs;
  }

  SqlExprPtr not_expr() {
    if (keyword("NOT")) return std::make_unique<SqlNot>(not_expr());
    return predicate();
  }

  SqlExprPtr predicate() {
    SqlExprPtr lhs = additive();
    // IS [NOT] NULL
    if (keyword("IS")) {
      bool negated = keyword("NOT");
      expect_keyword("NULL");
      return std::make_unique<SqlIsNull>(std::move(lhs), negated);
    }
    bool negated = false;
    if (peek().is_keyword("NOT") &&
        (tokens_[pos_ + 1].is_keyword("LIKE") ||
         tokens_[pos_ + 1].is_keyword("IN"))) {
      keyword("NOT");
      negated = true;
    }
    if (keyword("LIKE")) {
      if (!check(SqlTokenKind::String)) {
        throw SqlError("expected string pattern after LIKE");
      }
      std::string pattern = advance().text;
      return std::make_unique<SqlLike>(std::move(lhs), std::move(pattern),
                                       negated);
    }
    if (keyword("IN")) {
      expect(SqlTokenKind::LParen, "'('");
      std::vector<SqlExprPtr> items;
      items.push_back(expression());
      while (match(SqlTokenKind::Comma)) items.push_back(expression());
      expect(SqlTokenKind::RParen, "')'");
      return std::make_unique<SqlIn>(std::move(lhs), std::move(items),
                                     negated);
    }
    SqlBinOp op;
    switch (peek().kind) {
      case SqlTokenKind::Eq:
        op = SqlBinOp::Eq;
        break;
      case SqlTokenKind::NotEq:
        op = SqlBinOp::NotEq;
        break;
      case SqlTokenKind::Less:
        op = SqlBinOp::Less;
        break;
      case SqlTokenKind::LessEq:
        op = SqlBinOp::LessEq;
        break;
      case SqlTokenKind::Greater:
        op = SqlBinOp::Greater;
        break;
      case SqlTokenKind::GreaterEq:
        op = SqlBinOp::GreaterEq;
        break;
      default:
        return lhs;  // bare additive expression
    }
    advance();
    return std::make_unique<SqlBinary>(op, std::move(lhs), additive());
  }

  SqlExprPtr additive() {
    SqlExprPtr lhs = multiplicative();
    for (;;) {
      if (match(SqlTokenKind::Plus)) {
        lhs = std::make_unique<SqlBinary>(SqlBinOp::Add, std::move(lhs),
                                          multiplicative());
      } else if (match(SqlTokenKind::Minus)) {
        lhs = std::make_unique<SqlBinary>(SqlBinOp::Subtract, std::move(lhs),
                                          multiplicative());
      } else {
        return lhs;
      }
    }
  }

  SqlExprPtr multiplicative() {
    SqlExprPtr lhs = unary();
    for (;;) {
      if (match(SqlTokenKind::Star)) {
        lhs = std::make_unique<SqlBinary>(SqlBinOp::Multiply, std::move(lhs),
                                          unary());
      } else if (match(SqlTokenKind::Slash)) {
        lhs = std::make_unique<SqlBinary>(SqlBinOp::Divide, std::move(lhs),
                                          unary());
      } else {
        return lhs;
      }
    }
  }

  SqlExprPtr unary() {
    if (match(SqlTokenKind::Minus)) {
      return std::make_unique<SqlNegate>(unary());
    }
    if (match(SqlTokenKind::Plus)) return unary();
    return primary();
  }

  SqlExprPtr primary() {
    const SqlToken& t = peek();
    switch (t.kind) {
      case SqlTokenKind::Integer:
        advance();
        return std::make_unique<SqlLiteral>(Value::integer(t.int_value));
      case SqlTokenKind::Real:
        advance();
        return std::make_unique<SqlLiteral>(Value::real(t.real_value));
      case SqlTokenKind::String:
        advance();
        return std::make_unique<SqlLiteral>(Value::text(t.text));
      case SqlTokenKind::LParen: {
        advance();
        SqlExprPtr e = expression();
        expect(SqlTokenKind::RParen, "')'");
        return e;
      }
      case SqlTokenKind::Identifier:
        if (t.is_keyword("NULL")) {
          advance();
          return std::make_unique<SqlLiteral>(Value::null());
        }
        if (t.is_keyword("TRUE")) {
          advance();
          return std::make_unique<SqlLiteral>(Value::integer(1));
        }
        if (t.is_keyword("FALSE")) {
          advance();
          return std::make_unique<SqlLiteral>(Value::integer(0));
        }
        advance();
        return std::make_unique<SqlColumnRef>(t.text);
      default:
        throw SqlError("unexpected token '" + t.text + "' in expression");
    }
  }

  std::vector<SqlToken> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Statement sql_parse(std::string_view input) {
  return SqlParser(sql_lex(input)).statement();
}

SqlExprPtr sql_parse_expression(std::string_view input) {
  return SqlParser(sql_lex(input)).lone_expression();
}

}  // namespace gridmon::rdbms
