#pragma once

/// \file table.hpp
/// Heap-of-rows table with an optional single-column hash index used for
/// equality lookups (the "indexed resident database" the paper credits for
/// the Hawkeye Manager's efficiency, and the MySQL-style backend of the
/// R-GMA Registry).

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "gridmon/rdbms/schema.hpp"
#include "gridmon/rdbms/value.hpp"

namespace gridmon::rdbms {

using Row = std::vector<Value>;

class TableError : public std::runtime_error {
 public:
  explicit TableError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Observer of committed mutations, in apply order, after validation and
/// widening — exactly what a write-ahead log must re-apply to reproduce
/// the table (store::TableStore is the one implementation).
class TableJournal {
 public:
  virtual ~TableJournal() = default;
  virtual void on_insert(const Row& row) = 0;
  virtual void on_update(std::size_t id, const Row& row) = 0;
  virtual void on_erase(std::size_t id) = 0;
  virtual void on_vacuum() = 0;
};

class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const noexcept { return name_; }
  const Schema& schema() const noexcept { return schema_; }
  std::size_t row_count() const noexcept { return live_rows_; }
  /// Physical slots, live + tombstoned (snapshots must preserve slot ids
  /// because WAL records address rows by slot).
  std::size_t slot_count() const noexcept { return rows_.size(); }

  /// Attach (or detach with nullptr) the mutation observer.
  void set_journal(TableJournal* journal) noexcept { journal_ = journal; }

  /// Append a row (arity and basic type compatibility are checked; an
  /// integer value silently widens into a REAL column).
  void insert(Row row);

  /// Build (or rebuild) a hash index on the named column.
  void create_index(const std::string& column);
  bool has_index_on(const std::string& column) const;

  /// Visit every live row: fn(row_id, row). Return false to stop.
  template <typename Fn>
  void scan(Fn&& fn) const {
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (!tombstone_[i]) {
        if (!fn(i, rows_[i])) return;
      }
    }
  }

  /// Equality probe via the index if one covers `column`; falls back to a
  /// full scan. Returns live row ids.
  std::vector<std::size_t> find_equal(const std::string& column,
                                      const Value& v) const;

  const Row& row(std::size_t id) const { return rows_.at(id); }
  bool is_live(std::size_t id) const { return !tombstone_.at(id); }

  /// Overwrite a live row in place (keeps indexes in sync).
  void update_row(std::size_t id, Row row);

  /// Tombstone a row.
  void erase_row(std::size_t id);

  /// Drop tombstoned rows and rebuild indexes.
  void vacuum();

 private:
  static std::string index_key(const Value& v) { return v.to_string(); }
  void check_row(const Row& row) const;
  void index_insert(std::size_t id);
  void index_erase(std::size_t id);

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<bool> tombstone_;
  std::size_t live_rows_ = 0;

  std::optional<std::size_t> indexed_column_;
  std::unordered_multimap<std::string, std::size_t> index_;
  TableJournal* journal_ = nullptr;
};

}  // namespace gridmon::rdbms
