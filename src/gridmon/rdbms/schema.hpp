#pragma once

/// \file schema.hpp
/// Table schemas: ordered, case-insensitively named, typed columns.

#include <algorithm>
#include <cctype>
#include <optional>
#include <string>
#include <vector>

namespace gridmon::rdbms {

enum class ColumnType { Integer, Real, Text };

struct ColumnDef {
  std::string name;
  ColumnType type;
};

inline std::string sql_lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> cols) : cols_(std::move(cols)) {}

  const std::vector<ColumnDef>& columns() const noexcept { return cols_; }
  std::size_t column_count() const noexcept { return cols_.size(); }

  std::optional<std::size_t> index_of(const std::string& name) const {
    std::string want = sql_lower(name);
    for (std::size_t i = 0; i < cols_.size(); ++i) {
      if (sql_lower(cols_[i].name) == want) return i;
    }
    return std::nullopt;
  }

  const ColumnDef& column(std::size_t i) const { return cols_[i]; }

 private:
  std::vector<ColumnDef> cols_;
};

}  // namespace gridmon::rdbms
