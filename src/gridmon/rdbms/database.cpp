#include "gridmon/rdbms/database.hpp"

#include <algorithm>

#include "gridmon/rdbms/sql_lexer.hpp"  // SqlError

namespace gridmon::rdbms {

QueryResult Database::execute(std::string_view sql) {
  return execute(sql_parse(sql));
}

QueryResult Database::execute(const Statement& stmt) {
  return std::visit([this](const auto& s) { return run(s); }, stmt);
}

bool Database::has_table(const std::string& name) const {
  return tables_.find(sql_lower(name)) != tables_.end();
}

Table& Database::table(const std::string& name) {
  auto it = tables_.find(sql_lower(name));
  if (it == tables_.end()) throw SqlError("no such table: " + name);
  return it->second;
}

const Table& Database::table(const std::string& name) const {
  auto it = tables_.find(sql_lower(name));
  if (it == tables_.end()) throw SqlError("no such table: " + name);
  return it->second;
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, t] : tables_) out.push_back(name);
  return out;
}

QueryResult Database::run(const CreateTableStmt& s) {
  std::string key = sql_lower(s.table);
  if (tables_.find(key) != tables_.end()) {
    throw SqlError("table already exists: " + s.table);
  }
  tables_.emplace(key, Table(s.table, Schema(s.columns)));
  return {};
}

QueryResult Database::run(const DropTableStmt& s) {
  std::string key = sql_lower(s.table);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (s.if_exists) return {};
    throw SqlError("no such table: " + s.table);
  }
  tables_.erase(it);
  return {};
}

QueryResult Database::run(const CreateIndexStmt& s) {
  table(s.table).create_index(s.column);
  return {};
}

QueryResult Database::run(const InsertStmt& s) {
  Table& t = table(s.table);
  const Schema& schema = t.schema();
  QueryResult result;
  RowContext empty_ctx{&schema, nullptr};

  for (const auto& exprs : s.rows) {
    Row row(schema.column_count(), Value::null());
    if (s.columns.empty()) {
      if (exprs.size() != schema.column_count()) {
        throw SqlError("INSERT arity mismatch for table " + s.table);
      }
      for (std::size_t i = 0; i < exprs.size(); ++i) {
        row[i] = exprs[i]->eval(empty_ctx);
      }
    } else {
      if (exprs.size() != s.columns.size()) {
        throw SqlError("INSERT column/value count mismatch");
      }
      for (std::size_t i = 0; i < exprs.size(); ++i) {
        auto idx = schema.index_of(s.columns[i]);
        if (!idx) throw SqlError("unknown column: " + s.columns[i]);
        row[*idx] = exprs[i]->eval(empty_ctx);
      }
    }
    t.insert(std::move(row));
    ++result.affected;
  }
  return result;
}

namespace {

/// Online state for one aggregate over one group.
struct AggState {
  std::size_t count = 0;
  double sum = 0;
  Value min = Value::null();
  Value max = Value::null();

  void add(const Value& v) {
    if (v.is_null()) return;  // SQL aggregates skip NULLs
    ++count;
    if (v.is_number()) sum += v.as_number();
    auto cmin = Value::compare(v, min);
    if (min.is_null() || (cmin && *cmin < 0)) min = v;
    auto cmax = Value::compare(v, max);
    if (max.is_null() || (cmax && *cmax > 0)) max = v;
  }

  Value finish(SelectItem::Kind kind, std::size_t group_rows) const {
    switch (kind) {
      case SelectItem::Kind::CountStar:
        return Value::integer(static_cast<std::int64_t>(group_rows));
      case SelectItem::Kind::Count:
        return Value::integer(static_cast<std::int64_t>(count));
      case SelectItem::Kind::Sum:
        return count ? Value::real(sum) : Value::null();
      case SelectItem::Kind::Avg:
        return count ? Value::real(sum / static_cast<double>(count))
                     : Value::null();
      case SelectItem::Kind::Min:
        return min;
      case SelectItem::Kind::Max:
        return max;
      case SelectItem::Kind::Column:
        return Value::null();
    }
    return Value::null();
  }
};

}  // namespace

QueryResult Database::run(const SelectStmt& s) {
  const Table& t = table(s.table);
  const Schema& schema = t.schema();
  QueryResult result;

  bool has_aggregate = false;
  for (const auto& item : s.items) {
    if (item.is_aggregate()) has_aggregate = true;
  }

  std::vector<std::size_t> matched;
  t.scan([&](std::size_t id, const Row& row) {
    ++result.rows_examined;
    if (s.where) {
      RowContext ctx{&schema, &row};
      auto keep = SqlExpr::truth(s.where->eval(ctx));
      if (!keep || !*keep) return true;
    }
    matched.push_back(id);
    return true;
  });

  if (has_aggregate || s.group_by) {
    // ---- aggregation path ----
    for (const auto& item : s.items) {
      if (!item.is_aggregate()) {
        if (!s.group_by ||
            sql_lower(item.column) != sql_lower(*s.group_by)) {
          throw SqlError("bare column " + item.column +
                         " mixed with aggregates must be the GROUP BY key");
        }
      }
      result.columns.push_back(item.display_name());
    }
    std::optional<std::size_t> group_idx;
    if (s.group_by) {
      group_idx = schema.index_of(*s.group_by);
      if (!group_idx) throw SqlError("unknown column: " + *s.group_by);
    }
    // Resolve aggregated columns once.
    std::vector<std::optional<std::size_t>> agg_cols;
    for (const auto& item : s.items) {
      if (item.is_aggregate() && item.kind != SelectItem::Kind::CountStar) {
        auto idx = schema.index_of(item.column);
        if (!idx) throw SqlError("unknown column: " + item.column);
        agg_cols.push_back(idx);
      } else {
        agg_cols.push_back(std::nullopt);
      }
    }
    struct Group {
      Value key;
      std::size_t rows = 0;
      std::vector<AggState> states;
    };
    std::map<std::string, Group> groups;  // keyed by rendered group value
    for (auto id : matched) {
      const Row& row = t.row(id);
      std::string key = group_idx ? row[*group_idx].to_string() : "";
      auto [it, inserted] = groups.emplace(key, Group{});
      Group& g = it->second;
      if (inserted) {
        g.key = group_idx ? row[*group_idx] : Value::null();
        g.states.resize(s.items.size());
      }
      ++g.rows;
      for (std::size_t i = 0; i < s.items.size(); ++i) {
        if (agg_cols[i]) g.states[i].add(row[*agg_cols[i]]);
      }
    }
    if (groups.empty() && !s.group_by) {
      groups.emplace("", Group{Value::null(), 0,
                               std::vector<AggState>(s.items.size())});
    }
    for (const auto& [key, g] : groups) {
      Row out;
      for (std::size_t i = 0; i < s.items.size(); ++i) {
        const auto& item = s.items[i];
        if (!item.is_aggregate()) {
          out.push_back(g.key);
        } else {
          out.push_back(g.states[i].finish(item.kind, g.rows));
        }
      }
      result.rows.push_back(std::move(out));
    }
    std::size_t limit = s.limit.value_or(result.rows.size());
    if (result.rows.size() > limit) result.rows.resize(limit);
    return result;
  }

  // ---- plain projection path ----
  std::vector<std::size_t> proj;
  if (s.items.empty()) {
    for (std::size_t i = 0; i < schema.column_count(); ++i) {
      proj.push_back(i);
      result.columns.push_back(schema.column(i).name);
    }
  } else {
    for (const auto& item : s.items) {
      auto idx = schema.index_of(item.column);
      if (!idx) throw SqlError("unknown column: " + item.column);
      proj.push_back(*idx);
      result.columns.push_back(schema.column(*idx).name);
    }
  }

  if (s.order_by) {
    auto idx = schema.index_of(s.order_by->column);
    if (!idx) throw SqlError("unknown column: " + s.order_by->column);
    bool desc = s.order_by->descending;
    std::stable_sort(matched.begin(), matched.end(),
                     [&](std::size_t a, std::size_t b) {
                       auto cmp = Value::compare(t.row(a)[*idx],
                                                 t.row(b)[*idx]);
                       int c = cmp ? *cmp : 0;
                       return desc ? c > 0 : c < 0;
                     });
  }

  std::size_t limit = s.limit.value_or(matched.size());
  for (std::size_t k = 0; k < matched.size() && k < limit; ++k) {
    const Row& row = t.row(matched[k]);
    Row out;
    out.reserve(proj.size());
    for (auto i : proj) out.push_back(row[i]);
    result.rows.push_back(std::move(out));
  }
  return result;
}

QueryResult Database::run(const UpdateStmt& s) {
  Table& t = table(s.table);
  const Schema& schema = t.schema();
  QueryResult result;

  std::vector<std::pair<std::size_t, SqlExpr*>> sets;
  for (const auto& [col, expr] : s.assignments) {
    auto idx = schema.index_of(col);
    if (!idx) throw SqlError("unknown column: " + col);
    sets.emplace_back(*idx, expr.get());
  }

  std::vector<std::size_t> targets;
  t.scan([&](std::size_t id, const Row& row) {
    ++result.rows_examined;
    if (s.where) {
      RowContext ctx{&schema, &row};
      auto keep = SqlExpr::truth(s.where->eval(ctx));
      if (!keep || !*keep) return true;
    }
    targets.push_back(id);
    return true;
  });

  for (auto id : targets) {
    Row row = t.row(id);
    RowContext ctx{&schema, &row};
    Row updated = row;
    for (auto& [idx, expr] : sets) updated[idx] = expr->eval(ctx);
    t.update_row(id, std::move(updated));
    ++result.affected;
  }
  return result;
}

QueryResult Database::run(const DeleteStmt& s) {
  Table& t = table(s.table);
  const Schema& schema = t.schema();
  QueryResult result;

  std::vector<std::size_t> targets;
  t.scan([&](std::size_t id, const Row& row) {
    ++result.rows_examined;
    if (s.where) {
      RowContext ctx{&schema, &row};
      auto keep = SqlExpr::truth(s.where->eval(ctx));
      if (!keep || !*keep) return true;
    }
    targets.push_back(id);
    return true;
  });

  for (auto id : targets) {
    t.erase_row(id);
    ++result.affected;
  }
  return result;
}

}  // namespace gridmon::rdbms
