#pragma once

// gridmon-lint: hot-path — per-event cost dominates sweep wall-clock.

/// \file network.hpp
/// Flow-level network model.
///
/// Every host gets a full-duplex network interface: independent
/// processor-sharing servers for transmit and receive, in bytes/second.
/// Hosts within a site share a switched LAN (each NIC is its own
/// bottleneck, matching the paper's 100 Mbps switched testbed). Sites are
/// joined by WAN pipes: a shared PS bandwidth server plus propagation
/// latency, with an optional per-flow cap modelling the TCP window limit.
///
/// The saturation thresholds the paper attributes to "the network on the
/// server side can no longer handle the traffic" emerge from the rx/tx
/// servers of the machine hosting the service.

#include <cassert>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "gridmon/sim/event.hpp"
#include "gridmon/sim/ps_server.hpp"
#include "gridmon/sim/simulation.hpp"
#include "gridmon/sim/task.hpp"
#include "gridmon/trace/collector.hpp"

namespace gridmon::net {

/// A host's attachment point: duplex PS bandwidth servers.
class Interface {
 public:
  Interface(sim::Simulation& sim, std::string host, std::string site,
            double bandwidth_bytes_per_s)
      : host_(std::move(host)),
        site_(std::move(site)),
        tx_(sim, bandwidth_bytes_per_s, 1),
        rx_(sim, bandwidth_bytes_per_s, 1) {}

  const std::string& host() const noexcept { return host_; }
  const std::string& site() const noexcept { return site_; }
  sim::PsServer& tx() noexcept { return tx_; }
  sim::PsServer& rx() noexcept { return rx_; }

 private:
  std::string host_;
  std::string site_;
  sim::PsServer tx_;
  sim::PsServer rx_;
};

struct WanSpec {
  double bandwidth_bytes_per_s = 5e6;  // ~40 Mbps shared path
  double one_way_latency = 0.005;      // 5 ms one way (ANL <-> UChicago)
  double per_flow_cap_bytes_per_s = 2.5e6;  // 64 KB TCP window / ~25 ms RTT
};

struct SiteSpec {
  std::string name;
  double nic_bandwidth_bytes_per_s = 12.5e6;  // 100 Mbps
  double one_way_latency = 0.0001;            // switched LAN
};

class Network {
 public:
  explicit Network(sim::Simulation& sim) : sim_(sim) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  void add_site(SiteSpec spec) { sites_[spec.name] = spec; }

  /// Connect two sites with a WAN pipe (order-insensitive lookup).
  void add_wan(const std::string& a, const std::string& b, WanSpec spec) {
    wans_[wan_key(a, b)] = std::make_unique<Wan>(sim_, spec);
  }

  /// Create (and own) the NIC for a host on a site.
  Interface& attach(const std::string& host_name,
                    const std::string& site_name) {
    auto site_it = sites_.find(site_name);
    if (site_it == sites_.end()) {
      throw std::invalid_argument("unknown site: " + site_name);
    }
    auto [it, inserted] = interfaces_.emplace(
        host_name,
        std::make_unique<Interface>(sim_, host_name, site_name,
                                    site_it->second.nic_bandwidth_bytes_per_s));
    if (!inserted) {
      throw std::invalid_argument("host already attached: " + host_name);
    }
    return *it->second;
  }

  Interface& interface(const std::string& host_name) {
    auto it = interfaces_.find(host_name);
    if (it == interfaces_.end()) {
      throw std::invalid_argument("unknown host: " + host_name);
    }
    return *it->second;
  }

  /// One-way propagation latency between two interfaces.
  double latency(const Interface& from, const Interface& to) const {
    if (&from == &to) return 0;
    if (from.site() == to.site()) {
      return sites_.at(from.site()).one_way_latency;
    }
    return wan_between(from.site(), to.site()).spec.one_way_latency;
  }

  /// Round-trip time between two interfaces.
  double rtt(const Interface& from, const Interface& to) const {
    return 2 * latency(from, to);
  }

  /// The smallest one-way propagation latency of any WAN pipe — the
  /// natural conservative-lookahead bound for host/site-sharded
  /// execution (sim::ShardGroup): no cross-site effect can propagate
  /// faster than this. Returns 0 when no WANs exist (single-site
  /// topologies have no cross-site traffic to bound).
  double min_cross_site_latency() const {
    double min_latency = 0;
    for (const auto& [key, wan] : wans_) {
      if (min_latency == 0 || wan->spec.one_way_latency < min_latency) {
        min_latency = wan->spec.one_way_latency;
      }
    }
    return min_latency;
  }

  /// Move `payload_bytes` from `from` to `to`. Adds per-message protocol
  /// overhead, shares the sender NIC, (for cross-site flows) the WAN pipe,
  /// and the receiver NIC, then waits propagation latency. Loopback
  /// traffic bypasses the NIC entirely. A transfer across a partitioned
  /// WAN stalls (TCP retransmission) until the link heals — or, when the
  /// caller passes a non-negative `stall_timeout`, gives up after waiting
  /// that many seconds for the heal and returns false (connection reset /
  /// retransmission limit). The timeout bounds only the partition stall,
  /// not bandwidth-sharing time, so fault-free behaviour is unchanged.
  /// Returns true when the payload was delivered.
  /// The optional trace context opens a span of `kind` covering the whole
  /// store-and-forward path (tx share, WAN share, rx share, propagation);
  /// its arg records the payload bytes.
  sim::Task<bool> transfer(Interface& from, Interface& to,
                           double payload_bytes, trace::Ctx ctx = {},
                           trace::SpanKind kind = trace::SpanKind::NetTransfer,
                           double stall_timeout = -1) {
    if (&from == &to) co_return true;  // local IPC: negligible at this scale
    trace::Span span(ctx, kind, {}, payload_bytes);
    double bytes = payload_bytes + kMessageOverheadBytes;
    co_await from.tx().consume(bytes);
    if (from.site() != to.site()) {
      Wan& wan = wan_between(from.site(), to.site());
      if (stall_timeout < 0) {
        while (wan.down) co_await *wan.healed;
      } else {
        double deadline = sim_.now() + stall_timeout;
        while (wan.down) {
          bool healed = co_await wan.healed->wait_for(deadline - sim_.now());
          if (!healed && wan.down) co_return false;
        }
      }
      co_await wan.pipe.consume(bytes);
    }
    co_await to.rx().consume(bytes);
    co_await sim_.delay(latency(from, to));
    co_return true;
  }

  /// Fault injection: partition (or heal) the WAN between two sites.
  /// In-flight and new cross-site transfers stall until the link heals,
  /// which is how soft-state protocols discover dead peers.
  void set_wan_down(const std::string& a, const std::string& b, bool down) {
    Wan& wan = wan_between(a, b);
    if (wan.down && !down) wan.healed->trigger();
    if (down) wan.healed->reset();
    wan.down = down;
  }

  bool wan_down(const std::string& a, const std::string& b) const {
    return wan_between(a, b).down;
  }

  /// Fault injection: scale the WAN pipe rate to `factor` of the spec'd
  /// bandwidth (factor 1 restores it). Models link degradation — loss or
  /// competing bulk traffic — without partitioning the path.
  void set_wan_degraded(const std::string& a, const std::string& b,
                        double factor) {
    Wan& wan = wan_between(a, b);
    wan.pipe.set_total_rate(wan.spec.bandwidth_bytes_per_s * factor);
  }

  /// TCP-style connection establishment: one round trip of small packets.
  /// Traced as a single Connect span (the SYN legs are not split out).
  /// Returns false when a SYN times out across a downed WAN (see
  /// `transfer`); with the default stall_timeout it never fails.
  sim::Task<bool> connect(Interface& from, Interface& to,
                          trace::Ctx ctx = {}, double stall_timeout = -1) {
    trace::Span span(ctx, trace::SpanKind::Connect);
    if (!co_await transfer(from, to, kSynBytes, {},
                           trace::SpanKind::NetTransfer, stall_timeout)) {
      co_return false;
    }
    co_return co_await transfer(to, from, kSynBytes, {},
                                trace::SpanKind::NetTransfer, stall_timeout);
  }

  sim::Simulation& simulation() noexcept { return sim_; }

  static constexpr double kMessageOverheadBytes = 256;
  static constexpr double kSynBytes = 64;

 private:
  struct Wan {
    WanSpec spec;
    sim::PsServer pipe;
    bool down = false;
    std::unique_ptr<sim::Event> healed;
    Wan(sim::Simulation& sim, WanSpec s)
        : spec(s),
          pipe(sim, s.bandwidth_bytes_per_s, 1, s.per_flow_cap_bytes_per_s),
          healed(std::make_unique<sim::Event>(sim)) {}
  };

  static std::pair<std::string, std::string> wan_key(const std::string& a,
                                                     const std::string& b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  const Wan& wan_between(const std::string& a, const std::string& b) const {
    auto it = wans_.find(wan_key(a, b));
    if (it == wans_.end()) {
      throw std::invalid_argument("no WAN between " + a + " and " + b);
    }
    return *it->second;
  }
  Wan& wan_between(const std::string& a, const std::string& b) {
    return const_cast<Wan&>(
        static_cast<const Network*>(this)->wan_between(a, b));
  }

  sim::Simulation& sim_;
  std::map<std::string, SiteSpec> sites_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Wan>> wans_;
  std::map<std::string, std::unique_ptr<Interface>> interfaces_;
};

}  // namespace gridmon::net
