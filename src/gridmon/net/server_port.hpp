#pragma once

/// \file server_port.hpp
/// Listen-queue admission control. A server accepts at most `backlog`
/// in-flight requests (accepted + queued); beyond that, new connections
/// are refused (RST / accept-queue overflow) and clients must back off and
/// retry.
///
/// This models the effect the paper repeatedly observes: past a
/// concurrency threshold "the network on the server side can no longer
/// handle the traffic from the queries, which limits the number of
/// concurrent queries presented to the information server" — throughput
/// flattens and *host load drops*, because most clients sit in
/// exponential backoff instead of being served.

#include <cstdint>
#include <utility>

namespace gridmon::net {

class ServerPort {
 public:
  explicit ServerPort(int backlog) : backlog_(backlog) {}
  ServerPort(const ServerPort&) = delete;
  ServerPort& operator=(const ServerPort&) = delete;

  /// Try to admit a new request. Returns false (a refused connection)
  /// when the backlog is full.
  bool try_admit() {
    if (in_flight_ >= backlog_) {
      ++refused_;
      return false;
    }
    ++in_flight_;
    ++admitted_;
    return true;
  }

  /// Release the admission slot (request fully processed or failed).
  void release() { --in_flight_; }

  int in_flight() const noexcept { return in_flight_; }
  int backlog() const noexcept { return backlog_; }
  std::uint64_t total_admitted() const noexcept { return admitted_; }
  std::uint64_t total_refused() const noexcept { return refused_; }

 private:
  int backlog_;
  int in_flight_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t refused_ = 0;
};

/// RAII admission slot.
class AdmissionSlot {
 public:
  AdmissionSlot() noexcept = default;
  explicit AdmissionSlot(ServerPort* port) noexcept : port_(port) {}
  AdmissionSlot(AdmissionSlot&& o) noexcept
      : port_(std::exchange(o.port_, nullptr)) {}
  AdmissionSlot& operator=(AdmissionSlot&& o) noexcept {
    if (this != &o) {
      release();
      port_ = std::exchange(o.port_, nullptr);
    }
    return *this;
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;
  ~AdmissionSlot() { release(); }

  void release() noexcept {
    if (port_ != nullptr) {
      port_->release();
      port_ = nullptr;
    }
  }

 private:
  ServerPort* port_ = nullptr;
};

}  // namespace gridmon::net
