#pragma once

// gridmon-lint: hot-path — per-event cost dominates sweep wall-clock.

/// \file server_port.hpp
/// Listen-queue admission control. A server accepts at most `backlog`
/// in-flight requests (accepted + queued); beyond that, new connections
/// are refused (RST / accept-queue overflow) and clients must back off and
/// retry.
///
/// This models the effect the paper repeatedly observes: past a
/// concurrency threshold "the network on the server side can no longer
/// handle the traffic from the queries, which limits the number of
/// concurrent queries presented to the information server" — throughput
/// flattens and *host load drops*, because most clients sit in
/// exponential backoff instead of being served.
///
/// For fault injection the port also models the two classic failure
/// signatures of a dead service:
///  - Refusing: the process is down but the host is up, so connections
///    get an immediate RST (cheap, client retries fast).
///  - Blackhole: the host is gone, SYNs vanish, and the client hangs
///    until its own connect timeout expires (expensive).

#include <coroutine>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "gridmon/resilience/policy.hpp"
#include "gridmon/sim/event.hpp"
#include "gridmon/sim/simulation.hpp"
#include "gridmon/sim/task.hpp"

namespace gridmon::net {

enum class PortState { Up, Refusing, Blackhole };

/// Outcome of an `admit()` attempt. `Shed` means the request was parked
/// in the resilience wait queue but dropped before service because its
/// queue wait exceeded the deadline budget (dead work the server declined
/// to do).
enum class Admission { Ok, Refused, TimedOut, Shed };

class ServerPort {
 public:
  ServerPort(sim::Simulation& sim, int backlog)
      : backlog_(backlog), up_(sim) {
    up_.trigger();
  }
  ServerPort(const ServerPort&) = delete;
  ServerPort& operator=(const ServerPort&) = delete;

  /// Try to admit a new request. Returns false (a refused connection)
  /// when the backlog is full or the service is down.
  bool try_admit() {
    if (state_ != PortState::Up || in_flight_ >= backlog_) {
      ++refused_;
      return false;
    }
    ++in_flight_;
    ++admitted_;
    return true;
  }

  /// Admission with failure semantics. When the port is Up this behaves
  /// exactly like try_admit() and completes synchronously (the coroutine
  /// never suspends, so fault-free runs cost no sim events). A Refusing
  /// port answers immediately; a Blackhole port swallows the attempt until
  /// the service restarts or `timeout` seconds pass (timeout < 0 waits
  /// forever, like a client with no connect timeout).
  ///
  /// With a resilience ServerPolicy installed, a full-but-Up port parks
  /// the request in a bounded wait queue instead of refusing; freed slots
  /// are handed to waiters in policy order (FIFO/LIFO/deadline-EDF), and
  /// waiters whose queue wait outlives their deadline are shed lazily at
  /// hand-off time. `deadline` is an absolute sim-time by which service
  /// must have started (negative = derive from the policy's
  /// deadline_budget).
  sim::Task<Admission> admit(double timeout = -1, double deadline = -1) {
    if (state_ == PortState::Blackhole) {
      if (timeout < 0) {
        while (state_ == PortState::Blackhole) co_await up_;
      } else {
        double wait_deadline = up_.sim().now() + timeout;
        while (state_ == PortState::Blackhole) {
          bool restarted =
              co_await up_.wait_for(wait_deadline - up_.sim().now());
          if (!restarted && state_ == PortState::Blackhole) {
            ++refused_;
            co_return Admission::TimedOut;
          }
        }
      }
    }
    if (policy_.enabled && state_ == PortState::Up && in_flight_ >= backlog_ &&
        queue_.size() < policy_.queue_limit) {
      QueueAwaiter waiter;
      waiter.port = this;
      waiter.arrival = up_.sim().now();
      waiter.deadline = deadline >= 0 ? deadline
                        : policy_.deadline_budget > 0
                            ? waiter.arrival + policy_.deadline_budget
                            : std::numeric_limits<double>::infinity();
      waiter.seq = next_seq_++;
      ++total_queued_;
      co_return co_await waiter;
    }
    co_return try_admit() ? Admission::Ok : Admission::Refused;
  }

  /// Release the admission slot (request fully processed or failed).
  /// Under a resilience policy the freed slot is handed directly to a
  /// queued waiter — after shedding waiters whose deadline has already
  /// passed — without ever decrementing in_flight_, mirroring
  /// sim::Resource's slot hand-off.
  void release() {
    if (policy_.enabled && !queue_.empty()) {
      shed_expired();
      if (!queue_.empty()) {
        std::size_t winner = pick_waiter();
        QueueAwaiter* w = queue_[winner];
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(winner));
        w->result = Admission::Ok;
        ++admitted_;
        up_.sim().schedule_resume(0, w->handle);
        return;
      }
    }
    --in_flight_;
  }

  /// Crash the service: refuse (RST) or, when the whole host is gone,
  /// blackhole new connections. In-flight requests are the caller's
  /// problem — services drop them at their own crash points.
  void crash(bool blackhole = false) {
    state_ = blackhole ? PortState::Blackhole : PortState::Refusing;
    up_.reset();
    // Queued waiters see the crash as a refused connection.
    std::vector<QueueAwaiter*> drained;
    drained.swap(queue_);
    for (QueueAwaiter* w : drained) {
      w->result = Admission::Refused;
      ++refused_;
      up_.sim().schedule_resume(0, w->handle);
    }
  }

  /// Bring the service back; wakes clients hanging on a blackholed SYN.
  void restart() {
    state_ = PortState::Up;
    up_.trigger();
  }

  bool up() const noexcept { return state_ == PortState::Up; }
  PortState state() const noexcept { return state_; }

  /// Install (or clear) the resilience server policy. With `enabled`
  /// false — the default — every code path is byte-identical to a port
  /// without the resilience layer.
  void set_policy(const resilience::ServerPolicy& policy) {
    policy_ = policy;
  }
  const resilience::ServerPolicy& policy() const noexcept { return policy_; }

  /// Shed-pressure signal for serve-stale degraded modes: true when the
  /// policy is on and in-flight occupancy has crossed the pressure
  /// threshold (or requests are already queueing behind a full backlog).
  bool overloaded() const noexcept {
    if (!policy_.enabled || state_ != PortState::Up) return false;
    return !queue_.empty() ||
           static_cast<double>(in_flight_) >=
               policy_.pressure_threshold * static_cast<double>(backlog_);
  }

  int in_flight() const noexcept { return in_flight_; }
  int backlog() const noexcept { return backlog_; }
  std::size_t queued() const noexcept { return queue_.size(); }
  std::uint64_t total_admitted() const noexcept { return admitted_; }
  std::uint64_t total_refused() const noexcept { return refused_; }
  std::uint64_t total_queued() const noexcept { return total_queued_; }
  std::uint64_t total_shed() const noexcept { return total_shed_; }

 private:
  /// One parked admission attempt. Lives on the awaiting coroutine's
  /// frame; the port holds only a raw pointer for the park duration, and
  /// every exit path (hand-off, shed, crash) resumes the frame exactly
  /// once via the scheduler.
  struct QueueAwaiter {
    ServerPort* port = nullptr;
    double arrival = 0;
    double deadline = 0;  // absolute; +inf when no budget applies
    std::uint64_t seq = 0;
    Admission result = Admission::Refused;
    std::coroutine_handle<> handle;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      port->queue_.push_back(this);
    }
    Admission await_resume() const noexcept { return result; }
  };

  /// Lazily drop waiters whose service deadline already passed: doing
  /// their work now would be dead work the client has given up on.
  void shed_expired() {
    double now = up_.sim().now();
    for (std::size_t i = 0; i < queue_.size();) {
      if (now > queue_[i]->deadline) {
        QueueAwaiter* w = queue_[i];
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        w->result = Admission::Shed;
        ++total_shed_;
        up_.sim().schedule_resume(0, w->handle);
      } else {
        ++i;
      }
    }
  }

  /// Index of the waiter the freed slot goes to, per the discipline.
  /// queue_ is append-ordered, so FIFO is the front and LIFO the back;
  /// EDF picks the earliest deadline with arrival order as tie-break.
  std::size_t pick_waiter() const {
    switch (policy_.discipline) {
      case resilience::QueueDiscipline::Fifo:
        return 0;
      case resilience::QueueDiscipline::Lifo:
        return queue_.size() - 1;
      case resilience::QueueDiscipline::DeadlineEdf: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < queue_.size(); ++i) {
          if (queue_[i]->deadline < queue_[best]->deadline) best = i;
        }
        return best;
      }
    }
    return 0;
  }

  int backlog_;
  PortState state_ = PortState::Up;
  int in_flight_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t total_queued_ = 0;
  std::uint64_t total_shed_ = 0;
  std::uint64_t next_seq_ = 0;
  resilience::ServerPolicy policy_{};
  std::vector<QueueAwaiter*> queue_;
  sim::Event up_;
};

/// RAII admission slot.
class AdmissionSlot {
 public:
  AdmissionSlot() noexcept = default;
  explicit AdmissionSlot(ServerPort* port) noexcept : port_(port) {}
  AdmissionSlot(AdmissionSlot&& o) noexcept
      : port_(std::exchange(o.port_, nullptr)) {}
  AdmissionSlot& operator=(AdmissionSlot&& o) noexcept {
    if (this != &o) {
      release();
      port_ = std::exchange(o.port_, nullptr);
    }
    return *this;
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;
  ~AdmissionSlot() { release(); }

  void release() noexcept {
    if (port_ != nullptr) {
      port_->release();
      port_ = nullptr;
    }
  }

 private:
  ServerPort* port_ = nullptr;
};

}  // namespace gridmon::net
