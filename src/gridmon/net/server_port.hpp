#pragma once

// gridmon-lint: hot-path — per-event cost dominates sweep wall-clock.

/// \file server_port.hpp
/// Listen-queue admission control. A server accepts at most `backlog`
/// in-flight requests (accepted + queued); beyond that, new connections
/// are refused (RST / accept-queue overflow) and clients must back off and
/// retry.
///
/// This models the effect the paper repeatedly observes: past a
/// concurrency threshold "the network on the server side can no longer
/// handle the traffic from the queries, which limits the number of
/// concurrent queries presented to the information server" — throughput
/// flattens and *host load drops*, because most clients sit in
/// exponential backoff instead of being served.
///
/// For fault injection the port also models the two classic failure
/// signatures of a dead service:
///  - Refusing: the process is down but the host is up, so connections
///    get an immediate RST (cheap, client retries fast).
///  - Blackhole: the host is gone, SYNs vanish, and the client hangs
///    until its own connect timeout expires (expensive).

#include <cstdint>
#include <utility>

#include "gridmon/sim/event.hpp"
#include "gridmon/sim/simulation.hpp"
#include "gridmon/sim/task.hpp"

namespace gridmon::net {

enum class PortState { Up, Refusing, Blackhole };

/// Outcome of an `admit()` attempt.
enum class Admission { Ok, Refused, TimedOut };

class ServerPort {
 public:
  ServerPort(sim::Simulation& sim, int backlog)
      : backlog_(backlog), up_(sim) {
    up_.trigger();
  }
  ServerPort(const ServerPort&) = delete;
  ServerPort& operator=(const ServerPort&) = delete;

  /// Try to admit a new request. Returns false (a refused connection)
  /// when the backlog is full or the service is down.
  bool try_admit() {
    if (state_ != PortState::Up || in_flight_ >= backlog_) {
      ++refused_;
      return false;
    }
    ++in_flight_;
    ++admitted_;
    return true;
  }

  /// Admission with failure semantics. When the port is Up this behaves
  /// exactly like try_admit() and completes synchronously (the coroutine
  /// never suspends, so fault-free runs cost no sim events). A Refusing
  /// port answers immediately; a Blackhole port swallows the attempt until
  /// the service restarts or `timeout` seconds pass (timeout < 0 waits
  /// forever, like a client with no connect timeout).
  sim::Task<Admission> admit(double timeout = -1) {
    if (state_ == PortState::Blackhole) {
      if (timeout < 0) {
        while (state_ == PortState::Blackhole) co_await up_;
      } else {
        double deadline = up_.sim().now() + timeout;
        while (state_ == PortState::Blackhole) {
          bool restarted = co_await up_.wait_for(deadline - up_.sim().now());
          if (!restarted && state_ == PortState::Blackhole) {
            ++refused_;
            co_return Admission::TimedOut;
          }
        }
      }
    }
    co_return try_admit() ? Admission::Ok : Admission::Refused;
  }

  /// Release the admission slot (request fully processed or failed).
  void release() { --in_flight_; }

  /// Crash the service: refuse (RST) or, when the whole host is gone,
  /// blackhole new connections. In-flight requests are the caller's
  /// problem — services drop them at their own crash points.
  void crash(bool blackhole = false) {
    state_ = blackhole ? PortState::Blackhole : PortState::Refusing;
    up_.reset();
  }

  /// Bring the service back; wakes clients hanging on a blackholed SYN.
  void restart() {
    state_ = PortState::Up;
    up_.trigger();
  }

  bool up() const noexcept { return state_ == PortState::Up; }
  PortState state() const noexcept { return state_; }

  int in_flight() const noexcept { return in_flight_; }
  int backlog() const noexcept { return backlog_; }
  std::uint64_t total_admitted() const noexcept { return admitted_; }
  std::uint64_t total_refused() const noexcept { return refused_; }

 private:
  int backlog_;
  PortState state_ = PortState::Up;
  int in_flight_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t refused_ = 0;
  sim::Event up_;
};

/// RAII admission slot.
class AdmissionSlot {
 public:
  AdmissionSlot() noexcept = default;
  explicit AdmissionSlot(ServerPort* port) noexcept : port_(port) {}
  AdmissionSlot(AdmissionSlot&& o) noexcept
      : port_(std::exchange(o.port_, nullptr)) {}
  AdmissionSlot& operator=(AdmissionSlot&& o) noexcept {
    if (this != &o) {
      release();
      port_ = std::exchange(o.port_, nullptr);
    }
    return *this;
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;
  ~AdmissionSlot() { release(); }

  void release() noexcept {
    if (port_ != nullptr) {
      port_->release();
      port_ = nullptr;
    }
  }

 private:
  ServerPort* port_ = nullptr;
};

}  // namespace gridmon::net
