#pragma once

/// \file probe.hpp
/// Instrumentation hook for the queueing primitives. A probe attached to
/// a PsServer or Resource is notified on every population change —
/// sampling "from the inside" instead of polling, so a timeline built
/// from probe callbacks is exact, not an approximation.
///
/// The hook is a raw pointer tested on the hot path; with no probe
/// attached the cost is one predictable branch. The trace module
/// implements this interface; sim itself depends on nothing.

#include "gridmon/sim/event_queue.hpp"

namespace gridmon::sim {

struct UsageProbe {
  /// `active`: jobs in service (PsServer) or slots held (Resource).
  /// `backlog`: remaining service units (PsServer: pending work or
  /// bytes in flight) or queued waiters (Resource).
  virtual void on_usage(SimTime t, double active, double backlog) = 0;

 protected:
  ~UsageProbe() = default;
};

}  // namespace gridmon::sim
