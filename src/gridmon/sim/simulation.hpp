#pragma once

// gridmon-lint: hot-path — per-event cost dominates sweep wall-clock.

/// \file simulation.hpp
/// The simulation executive: clock, pending-event set, and detached-task
/// ownership. Single-threaded and fully deterministic.

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "gridmon/sim/event_queue.hpp"
#include "gridmon/sim/task.hpp"

namespace gridmon::sim {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation() { shutdown(); }

  /// Current simulated time in seconds.
  SimTime now() const noexcept { return now_; }

  /// Schedule a callback `delay` seconds from now. Negative delays clamp
  /// to zero (fires after already-pending events at the current time).
  void schedule(SimTime delay, EventQueue::Callback cb) {
    queue_.push(now_ + (delay > 0 ? delay : 0), std::move(cb));
  }

  /// Schedule a coroutine resumption `delay` seconds from now. Stored as a
  /// bare handle in the event queue: no std::function, no allocation.
  void schedule_resume(SimTime delay, std::coroutine_handle<> h) {
    queue_.push_resume(now_ + (delay > 0 ? delay : 0), h);
  }

  /// Launch a detached process. The simulation owns the coroutine frame and
  /// releases it after the task runs to completion (or at shutdown).
  void spawn(Task<void> task) {
    auto handle = task.native_handle();
    tasks_.push_back(std::move(task));
    queue_.push(now_, [handle] {
      if (handle && !handle.done()) handle.resume();
    });
  }

  /// Awaitable: suspend the current coroutine for `seconds` of simulated
  /// time. `co_await sim.delay(1.0);`
  struct DelayAwaiter {
    Simulation& sim;
    SimTime seconds;
    bool await_ready() const noexcept { return seconds <= 0; }
    void await_suspend(std::coroutine_handle<> h) const {
      sim.schedule_resume(seconds, h);
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(SimTime seconds) { return DelayAwaiter{*this, seconds}; }

  /// Run until the pending-event set drains or the clock passes `until`
  /// (infinite by default). Returns the number of events executed.
  ///
  /// A zero-delay event cycle (events endlessly rescheduling at the same
  /// timestamp) would freeze simulated time; the kSameTimeEventLimit
  /// guard turns that bug into a loud failure instead of a silent hang.
  std::size_t run(SimTime until = kForever) {
    std::size_t executed = 0;
    std::size_t at_same_time = 0;
    while (!queue_.empty()) {
      SimTime at = queue_.next_time();
      if (at > until) break;
      SimTime fire_at;
      auto fired = queue_.pop(fire_at);
      assert(fire_at >= now_ && "event queue went backwards");
      if (fire_at == now_) {
        if (++at_same_time > kSameTimeEventLimit) {
          throw std::logic_error(
              "simulation stalled: >10M events at t=" + std::to_string(now_));
        }
      } else {
        at_same_time = 0;
      }
      now_ = fire_at;
      fired();
      ++executed;
      if (++events_since_prune_ >= prune_threshold_) prune_done_tasks();
    }
    if (now_ < until && until != kForever) now_ = until;
    // Reclaim frames eagerly only when the run drained the queue; a
    // windowed caller (sim::ShardGroup drives the simulation in
    // lookahead-sized slices, tens of thousands of calls per run) would
    // otherwise pay an O(live tasks) sweep per window — quadratic over
    // the run. Sliced calls rely on the amortized in-loop prune above.
    if (executed > 0 && queue_.empty()) prune_done_tasks();
    return executed;
  }

  /// Execute at most `max_events` events (diagnostics / incremental
  /// driving). Returns the number executed.
  std::size_t run_events(std::size_t max_events) {
    std::size_t executed = 0;
    while (!queue_.empty() && executed < max_events) {
      SimTime fire_at;
      auto fired = queue_.pop(fire_at);
      now_ = fire_at;
      fired();
      ++executed;
      if (++events_since_prune_ >= prune_threshold_) prune_done_tasks();
    }
    return executed;
  }

  /// Destroy all detached coroutine frames and drop pending events without
  /// running them. Must be called (or ~Simulation reached) while every
  /// resource the frames reference is still alive.
  void shutdown() {
    // Destroying a frame runs destructors of its locals, which may release
    // resources and schedule wake-ups; those land in the queue and are then
    // discarded.
    tasks_.clear();
    queue_.clear();
  }

  /// Number of live detached tasks (mostly for tests/diagnostics).
  std::size_t live_task_count() const noexcept { return tasks_.size(); }

  static constexpr SimTime kForever = 1e300;

 private:
  static constexpr std::size_t kPruneInterval = 1024;
  static constexpr std::size_t kSameTimeEventLimit = 10'000'000;

  void prune_done_tasks() {
    events_since_prune_ = 0;
    std::erase_if(tasks_, [](const Task<void>& t) { return t.done(); });
    // Each prune is O(live tasks); spacing prunes at least that many
    // events apart keeps the amortized cost per event constant even with
    // 100k spawned user processes.
    prune_threshold_ = std::max(kPruneInterval, tasks_.size());
  }

  EventQueue queue_;
  SimTime now_ = 0;
  std::size_t events_since_prune_ = 0;
  std::size_t prune_threshold_ = kPruneInterval;
  std::vector<Task<void>> tasks_;
};

}  // namespace gridmon::sim
