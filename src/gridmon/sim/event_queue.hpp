#pragma once

// gridmon-lint: hot-path — per-event cost dominates sweep wall-clock.

/// \file event_queue.hpp
/// Deterministic pending-event set for the discrete-event simulator.
///
/// Events at equal timestamps fire in insertion order (a monotonically
/// increasing sequence number breaks ties), which keeps every run with the
/// same seed bit-identical.
///
/// Implementation: an indexed binary min-heap. The heap array holds only
/// the ordering keys (timestamp, sequence number) plus an index into a
/// slab of payload slots, so sift operations move 24-byte keys and never
/// touch the payloads. Slots are recycled through a free list, and
/// coroutine wake-ups (the vast majority of events) are stored as bare
/// handles — no std::function, no allocation. The strict total order on
/// (at, seq) means the pop sequence is independent of the heap's internal
/// layout, so this structure is drop-in byte-compatible with the previous
/// std::priority_queue implementation.

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace gridmon::sim {

/// Simulated time in seconds.
using SimTime = double;

class EventQueue {
 public:
  // gridmon-lint: suppress(hotpath.std-function) -- cold-path API
  // boundary only: arbitrary callables enter via schedule()/push(), which
  // fire once per process spawn or timer, not per event. The per-event
  // hot path is push_resume()/pop(), which moves bare coroutine handles
  // and never touches this type.
  using Callback = std::function<void()>;

  /// The payload of a popped event: either a callback or a bare coroutine
  /// handle. Invoke with operator().
  class Fired {
   public:
    void operator()() {
      if (handle_) {
        handle_.resume();
      } else {
        cb_();
      }
    }

   private:
    friend class EventQueue;
    Callback cb_;
    std::coroutine_handle<> handle_;
  };

  /// Schedule `cb` to fire at absolute time `at`.
  void push(SimTime at, Callback cb) {
    std::uint32_t slot = acquire_slot();
    slots_[slot].cb = std::move(cb);
    slots_[slot].handle = nullptr;
    heap_.push_back(Key{at, next_seq_++, slot});
    sift_up(heap_.size() - 1);
  }

  /// Schedule a coroutine resumption at absolute time `at`. Equivalent to
  /// push(at, [h] { h.resume(); }) but stores the handle directly, keeping
  /// the wake-up path allocation-free.
  void push_resume(SimTime at, std::coroutine_handle<> h) {
    std::uint32_t slot = acquire_slot();
    slots_[slot].handle = h;
    heap_.push_back(Key{at, next_seq_++, slot});
    sift_up(heap_.size() - 1);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  SimTime next_time() const { return heap_.front().at; }

  /// Remove and return the earliest pending event's payload.
  /// Precondition: !empty().
  Fired pop(SimTime& at_out) {
    assert(!heap_.empty());
    Key top = heap_.front();
    at_out = top.at;
    Fired fired;
    Slot& s = slots_[top.slot];
    fired.handle_ = s.handle;
    if (!s.handle) fired.cb_ = std::move(s.cb);
    release_slot(top.slot);
    Key last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = last;
      sift_down(0);
    }
    return fired;
  }

  void clear() {
    heap_.clear();
    slots_.clear();
    free_head_ = kNil;
  }

 private:
  struct Key {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Slot {
    Callback cb;
    std::coroutine_handle<> handle;
    std::uint32_t next_free = kNil;
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;

  static bool earlier(const Key& a, const Key& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    Key k = heap_[i];
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (!earlier(k, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = k;
  }

  void sift_down(std::size_t i) {
    Key k = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
      if (!earlier(heap_[child], k)) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = k;
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNil) {
      std::uint32_t s = free_head_;
      free_head_ = slots_[s].next_free;
      return s;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void release_slot(std::uint32_t s) noexcept {
    slots_[s].handle = nullptr;
    slots_[s].next_free = free_head_;
    free_head_ = s;
  }

  std::vector<Key> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNil;
  std::uint64_t next_seq_ = 0;
};

}  // namespace gridmon::sim
