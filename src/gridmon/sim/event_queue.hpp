#pragma once

/// \file event_queue.hpp
/// Deterministic pending-event set for the discrete-event simulator.
///
/// Events at equal timestamps fire in insertion order (a monotonically
/// increasing sequence number breaks ties), which keeps every run with the
/// same seed bit-identical.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gridmon::sim {

/// Simulated time in seconds.
using SimTime = double;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` to fire at absolute time `at`.
  void push(SimTime at, Callback cb) {
    heap_.push(Entry{at, next_seq_++, std::move(cb)});
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  SimTime next_time() const { return heap_.top().at; }

  /// Remove and return the earliest pending event's callback.
  /// Precondition: !empty().
  Callback pop(SimTime& at_out) {
    // std::priority_queue::top() is const; the callback must be moved out,
    // so we const_cast the owned entry. This is safe: the entry is removed
    // immediately afterwards and never observed again.
    Entry& top = const_cast<Entry&>(heap_.top());
    at_out = top.at;
    Callback cb = std::move(top.cb);
    heap_.pop();
    return cb;
  }

  void clear() {
    while (!heap_.empty()) heap_.pop();
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace gridmon::sim
