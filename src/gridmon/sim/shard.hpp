#pragma once

/// \file shard.hpp
/// Conservative-lookahead sharded execution for the discrete-event
/// engine.
///
/// A ShardGroup drives K ShardRunners (shard 0 is usually a full
/// sim::Simulation; the others can be lean special-purpose runners such
/// as the frontier workload's SoA client shards) through fixed windows
/// of `lookahead` simulated seconds. Within a window every shard
/// advances independently; cross-shard effects travel as ShardMessages
/// through per-sender outboxes that are exchanged at the window barrier.
///
/// Determinism argument (the property the golden tests pin):
///  - A message posted in a window is never deliverable before the next
///    barrier: post() rejects deliver_at earlier than the current
///    window's end, and the lookahead bound (the minimum cross-site
///    one-way latency, see net::Network::min_cross_site_latency) makes
///    that restriction physically free.
///  - At the barrier each receiver's new messages are sorted by the
///    canonical key (deliver_at, uid, seq) — sender identity is *not*
///    part of the key, so the delivery order is independent of how
///    entities were partitioned into shards.
///  - Within a window a shard interleaves local work and deliveries by
///    time, with the fixed tie rule "local events first, then messages"
///    at equal timestamps.
/// Together: the sequence of deliveries each shard observes is a pure
/// function of the message multiset, not of the shard count, so a run
/// with K shards is byte-identical to the same model run with one.
///
/// Protocol contract for senders: two messages that agree on
/// (deliver_at, uid) must originate from the same shard (their relative
/// order is then fixed by seq). Request/reply protocols that keep at
/// most one in-flight exchange per uid satisfy this by construction.
///
/// Threads are opt-in (threads >= 2): persistent workers own disjoint
/// shard sets for the whole run, and all cross-thread hand-off happens
/// at the mutex/condition-variable barrier, so the threaded schedule is
/// (provably, and under TSan in CI) identical to the serial one.

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "gridmon/sim/simulation.hpp"

namespace gridmon::sim {

/// One cross-shard event. `kind`/`a`/`f` are receiver-defined payload;
/// `uid` is the global entity id that anchors the canonical order.
struct ShardMessage {
  SimTime deliver_at = 0;
  std::uint64_t uid = 0;   // global entity id — primary tiebreak
  std::uint64_t seq = 0;   // per-sender running count — final tiebreak
  std::uint32_t kind = 0;  // receiver-defined discriminator
  std::uint32_t from = 0;  // sending shard (filled by post)
  std::uint64_t a = 0;     // payload word
  double f = 0;            // payload value
};

/// The canonical delivery order: (deliver_at, uid, seq), nothing else.
inline bool shard_message_before(const ShardMessage& x,
                                 const ShardMessage& y) {
  if (x.deliver_at != y.deliver_at) return x.deliver_at < y.deliver_at;
  if (x.uid != y.uid) return x.uid < y.uid;
  return x.seq < y.seq;
}

/// What the group drives. Implementations must advance their local
/// clock to `until` in run() even when idle, and must tolerate run()
/// calls that do not move the clock (until == now).
class ShardRunner {
 public:
  virtual ~ShardRunner() = default;
  ShardRunner() = default;
  ShardRunner(const ShardRunner&) = delete;
  ShardRunner& operator=(const ShardRunner&) = delete;

  virtual SimTime now() const = 0;
  /// Process all local work with timestamps <= until and advance the
  /// clock to `until`. Returns the number of events executed.
  virtual std::size_t run(SimTime until) = 0;
  /// Deliver one cross-shard message. Called with now() ==
  /// m.deliver_at, in canonical order among same-window messages.
  virtual void deliver(const ShardMessage& m) = 0;
};

/// Adapter presenting a full Simulation as a shard: deliveries invoke a
/// handler at the simulation's current time (the handler typically
/// spawns a coroutine or schedules work).
class SimulationShard final : public ShardRunner {
 public:
  using Handler = std::function<void(const ShardMessage&)>;

  SimulationShard(Simulation& sim, Handler handler)
      : sim_(sim), handler_(std::move(handler)) {}

  SimTime now() const override { return sim_.now(); }
  std::size_t run(SimTime until) override { return sim_.run(until); }
  void deliver(const ShardMessage& m) override { handler_(m); }

  Simulation& simulation() noexcept { return sim_; }

 private:
  Simulation& sim_;
  Handler handler_;
};

class ShardGroup {
 public:
  /// `shards` must outlive the group. `lookahead` is the window length
  /// in simulated seconds (> 0). `threads` >= 2 enables the worker
  /// pool; 0/1 runs windows inline on the caller's thread.
  ShardGroup(std::vector<ShardRunner*> shards, double lookahead,
             int threads = 0)
      : shards_(), lookahead_(lookahead) {
    if (shards.empty()) throw std::invalid_argument("ShardGroup: no shards");
    if (!(lookahead > 0)) {
      throw std::invalid_argument("ShardGroup: lookahead must be positive");
    }
    shards_.reserve(shards.size());
    for (ShardRunner* r : shards) {
      PerShard shard;
      shard.runner = r;
      shards_.push_back(std::move(shard));
      shards_.back().outbox.resize(shards.size());
    }
    int usable = static_cast<int>(shards.size());
    if (threads >= 2) start_workers(std::min(threads, usable));
  }

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  ~ShardGroup() { stop_workers(); }

  /// Queue a message from shard `from` to shard `to`. Buffered in the
  /// sender's outbox until the next barrier — posting to your own shard
  /// takes the same barrier trip, which is what keeps K=1 and K=N
  /// byte-identical. Enforces the conservative bound: the message must
  /// not be deliverable inside the window that produced it.
  void post(int from, int to, ShardMessage m) {
    assert(from >= 0 && static_cast<std::size_t>(from) < shards_.size());
    assert(to >= 0 && static_cast<std::size_t>(to) < shards_.size());
    if (m.deliver_at < window_end_) {
      throw std::logic_error(
          "ShardGroup::post: deliver_at precedes the current window end "
          "(lookahead violated)");
    }
    PerShard& s = shards_[static_cast<std::size_t>(from)];
    m.seq = s.next_seq++;
    m.from = static_cast<std::uint32_t>(from);
    s.outbox[static_cast<std::size_t>(to)].push_back(m);
  }

  /// Drive every shard to absolute time `until` in lookahead windows.
  /// Returns the number of events executed across all shards.
  std::size_t run(SimTime until) {
    std::size_t executed = 0;
    while (now_ < until) {
      exchange();
      SimTime end = now_ + lookahead_;
      if (end > until) end = until;
      window_end_ = end;
      if (workers_.empty()) {
        for (PerShard& s : shards_) executed += run_window(s, end);
      } else {
        executed += run_window_threaded(end);
      }
      now_ = end;
      ++windows_;
    }
    // Deliver anything due exactly at `until` posted by the last window
    // on the next run() call; callers observing state between runs see
    // every shard quiesced at `until`.
    return executed;
  }

  SimTime now() const noexcept { return now_; }
  int shard_count() const noexcept { return static_cast<int>(shards_.size()); }
  double lookahead() const noexcept { return lookahead_; }
  std::uint64_t windows_run() const noexcept { return windows_; }
  /// Total cross-shard messages delivered so far. Call between run()s
  /// (the counter is per-shard inside a window).
  std::uint64_t messages_delivered() const noexcept {
    std::uint64_t total = 0;
    for (const PerShard& s : shards_) total += s.delivered;
    return total;
  }

 private:
  struct PerShard {
    ShardRunner* runner = nullptr;
    std::deque<ShardMessage> inbox;  // canonical order, popped from front
    std::vector<std::vector<ShardMessage>> outbox;  // by target shard
    std::uint64_t next_seq = 0;
    std::uint64_t delivered = 0;
  };

  /// One shard's window: interleave local events and due deliveries by
  /// time; at equal timestamps local events fire first (runner->run is
  /// inclusive of `until`), then messages in canonical order.
  std::size_t run_window(PerShard& s, SimTime end) {
    std::size_t executed = 0;
    while (!s.inbox.empty() && s.inbox.front().deliver_at <= end) {
      SimTime at = s.inbox.front().deliver_at;
      executed += s.runner->run(at);
      while (!s.inbox.empty() && s.inbox.front().deliver_at == at) {
        s.runner->deliver(s.inbox.front());
        s.inbox.pop_front();
        ++s.delivered;
      }
    }
    executed += s.runner->run(end);
    return executed;
  }

  /// Barrier phase (single-threaded): move every outbox into its
  /// target's inbox in canonical order.
  void exchange() {
    for (std::size_t to = 0; to < shards_.size(); ++to) {
      scratch_.clear();
      for (PerShard& from : shards_) {
        std::vector<ShardMessage>& box = from.outbox[to];
        scratch_.insert(scratch_.end(), box.begin(), box.end());
        box.clear();
      }
      if (scratch_.empty()) continue;
      std::stable_sort(scratch_.begin(), scratch_.end(),
                       shard_message_before);
      PerShard& target = shards_[to];
      auto middle = target.inbox.insert(target.inbox.end(), scratch_.begin(),
                                        scratch_.end());
      std::inplace_merge(target.inbox.begin(), middle, target.inbox.end(),
                         shard_message_before);
    }
  }

  // ---- worker pool (threads >= 2) ----

  void start_workers(int count) {
    workers_.reserve(static_cast<std::size_t>(count));
    worker_events_.assign(static_cast<std::size_t>(count), 0);
    for (int w = 0; w < count; ++w) {
      workers_.emplace_back([this, w, count] { worker_main(w, count); });
    }
  }

  void stop_workers() {
    if (workers_.empty()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  std::size_t run_window_threaded(SimTime end) {
    int n = static_cast<int>(workers_.size());
    {
      std::lock_guard<std::mutex> lock(mu_);
      threaded_end_ = end;
      done_count_ = 0;
      ++generation_;
    }
    cv_work_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this, n] { return done_count_ == n; });
    std::size_t executed = 0;
    for (std::size_t e : worker_events_) executed += e;
    std::fill(worker_events_.begin(), worker_events_.end(), std::size_t{0});
    return executed;
  }

  /// Workers own a fixed stride of shards for the whole run; shard
  /// state crosses threads only through the barrier's mutex.
  void worker_main(int w, int worker_count) {
    std::uint64_t seen = 0;
    for (;;) {
      SimTime end;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock,
                      [this, seen] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        end = threaded_end_;
      }
      std::size_t executed = 0;
      for (std::size_t s = static_cast<std::size_t>(w); s < shards_.size();
           s += static_cast<std::size_t>(worker_count)) {
        executed += run_window(shards_[s], end);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        worker_events_[static_cast<std::size_t>(w)] = executed;
        ++done_count_;
      }
      cv_done_.notify_one();
    }
  }

  std::vector<PerShard> shards_;
  double lookahead_;
  SimTime now_ = 0;
  SimTime window_end_ = 0;
  std::uint64_t windows_ = 0;
  std::vector<ShardMessage> scratch_;

  std::vector<std::thread> workers_;
  std::vector<std::size_t> worker_events_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int done_count_ = 0;
  SimTime threaded_end_ = 0;
  bool stop_ = false;
};

}  // namespace gridmon::sim
