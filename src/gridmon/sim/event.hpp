#pragma once

// gridmon-lint: hot-path — per-event cost dominates sweep wall-clock.

/// \file event.hpp
/// One-shot / resettable notification primitive for coroutine processes.

#include <coroutine>
#include <memory>
#include <utility>
#include <vector>

#include "gridmon/sim/simulation.hpp"

namespace gridmon::sim {

/// A level-triggered event. Awaiting a triggered event completes
/// immediately; otherwise the awaiter parks until `trigger()` is called.
/// `reset()` re-arms the event. `wait_for(timeout)` additionally races the
/// wait against a deadline, which is what lets a network stall or a
/// blackholed connection fail instead of hanging forever.
class Event {
  struct Waiter {
    std::coroutine_handle<> handle;
    bool done = false;      // resumed (by trigger or deadline)
    bool by_event = false;  // resumed because the event fired
  };
  /// A parked coroutine. Plain (untimed) waits store just the handle —
  /// no allocation; only deadline-racing waits carry shared race state.
  /// One vector keeps FIFO wake-up order across both kinds.
  struct Entry {
    std::coroutine_handle<> handle;
    std::shared_ptr<Waiter> timed;  // null for plain waits
  };

 public:
  explicit Event(Simulation& sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool triggered() const noexcept { return triggered_; }
  Simulation& sim() const noexcept { return sim_; }

  /// Fire the event: release all current waiters (scheduled at the current
  /// time, preserving FIFO order) and latch the triggered state.
  /// Wake-ups are queued, not run inline, so no waiter can observe the
  /// list mid-iteration; clearing after the loop keeps its capacity for
  /// the next round of waits.
  void trigger() {
    triggered_ = true;
    for (auto& w : waiters_) {
      if (w.timed) {
        if (w.timed->done) continue;  // already woken by its deadline
        w.timed->done = true;
        w.timed->by_event = true;
        sim_.schedule_resume(0, w.timed->handle);
      } else {
        sim_.schedule_resume(0, w.handle);
      }
    }
    waiters_.clear();
  }

  void reset() noexcept { triggered_ = false; }

  struct Awaiter {
    Event& ev;
    bool await_ready() const noexcept { return ev.triggered_; }
    void await_suspend(std::coroutine_handle<> h) {
      ev.waiters_.push_back(Entry{h, nullptr});
    }
    void await_resume() const noexcept {}
  };
  Awaiter operator co_await() noexcept { return Awaiter{*this}; }

  /// Awaitable: wait until the event triggers OR `timeout` seconds pass,
  /// whichever comes first. Resumes with true if the event fired (or was
  /// already triggered), false on deadline. A waiter abandoned at its
  /// deadline is skipped by a later trigger(), so the two wake-ups can
  /// never double-resume the coroutine.
  struct TimedAwaiter {
    Event& ev;
    double timeout;
    std::shared_ptr<Waiter> waiter;
    bool await_ready() const noexcept {
      return ev.triggered_ || timeout <= 0;
    }
    void await_suspend(std::coroutine_handle<> h) {
      waiter = std::make_shared<Waiter>();
      waiter->handle = h;
      ev.waiters_.push_back(Entry{h, waiter});
      auto w = waiter;
      ev.sim_.schedule(timeout, [w] {
        if (w->done) return;  // event won the race
        w->done = true;
        w->handle.resume();
      });
    }
    bool await_resume() const noexcept {
      return waiter ? waiter->by_event : ev.triggered_;
    }
  };
  TimedAwaiter wait_for(double timeout) noexcept {
    return TimedAwaiter{*this, timeout, nullptr};
  }

 private:
  Simulation& sim_;
  bool triggered_ = false;
  std::vector<Entry> waiters_;
};

/// Counts outstanding sub-tasks; `wait()` completes when the count reaches
/// zero. The usual pattern for fan-out/fan-in:
///
///   WaitGroup wg(sim);
///   for (auto& sub : subqueries) sim.spawn(wg.track(run(sub)));
///   co_await wg.wait();
class WaitGroup {
 public:
  explicit WaitGroup(Simulation& sim) : sim_(sim), ev_(sim) {}

  void add(int n = 1) {
    count_ += n;
    if (count_ > 0) ev_.reset();
  }

  void done() {
    if (--count_ == 0) ev_.trigger();
  }

  /// Wrap a task so its completion (normal or exceptional) decrements the
  /// group. Adds 1 to the count immediately.
  Task<void> track(Task<void> inner) {
    add(1);
    return run_tracked(std::move(inner), *this);
  }

  /// Awaitable completing when the count reaches zero. A group that never
  /// had tasks added is already complete.
  Event::Awaiter wait() noexcept {
    if (count_ == 0) ev_.trigger();
    return Event::Awaiter{ev_};
  }

  /// Wait at most `timeout` seconds; returns true if the group drained.
  /// Late tasks keep running — the caller simply stops waiting for them.
  /// (Implemented by polling at `poll_interval`, which avoids cancellable
  /// waits; fine for the coarse timeouts services use.)
  Task<bool> wait_for(double timeout, double poll_interval = 0.5) {
    double deadline = sim_.now() + timeout;
    while (count_ > 0) {
      if (sim_.now() >= deadline) co_return false;
      double remaining = deadline - sim_.now();
      co_await sim_.delay(remaining < poll_interval ? remaining
                                                    : poll_interval);
    }
    co_return true;
  }

  int pending() const noexcept { return count_; }

 private:
  static Task<void> run_tracked(Task<void> inner, WaitGroup& wg) {
    // Parameters live in the coroutine frame, so `inner` stays alive for
    // the duration of the child task. done() fires only on completion
    // (normal or exceptional) — NOT when the frame is destroyed at
    // shutdown, because the WaitGroup may already be gone by then.
    try {
      co_await inner;
    } catch (...) {
    }
    wg.done();
  }

  Simulation& sim_;
  int count_ = 0;
  Event ev_;
};

}  // namespace gridmon::sim
