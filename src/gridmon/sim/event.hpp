#pragma once

/// \file event.hpp
/// One-shot / resettable notification primitive for coroutine processes.

#include <coroutine>
#include <utility>
#include <vector>

#include "gridmon/sim/simulation.hpp"

namespace gridmon::sim {

/// A level-triggered event. Awaiting a triggered event completes
/// immediately; otherwise the awaiter parks until `trigger()` is called.
/// `reset()` re-arms the event.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool triggered() const noexcept { return triggered_; }

  /// Fire the event: release all current waiters (scheduled at the current
  /// time, preserving FIFO order) and latch the triggered state.
  void trigger() {
    triggered_ = true;
    auto waiters = std::exchange(waiters_, {});
    for (auto h : waiters) sim_.schedule_resume(0, h);
  }

  void reset() noexcept { triggered_ = false; }

  struct Awaiter {
    Event& ev;
    bool await_ready() const noexcept { return ev.triggered_; }
    void await_suspend(std::coroutine_handle<> h) {
      ev.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter operator co_await() noexcept { return Awaiter{*this}; }

 private:
  Simulation& sim_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counts outstanding sub-tasks; `wait()` completes when the count reaches
/// zero. The usual pattern for fan-out/fan-in:
///
///   WaitGroup wg(sim);
///   for (auto& sub : subqueries) sim.spawn(wg.track(run(sub)));
///   co_await wg.wait();
class WaitGroup {
 public:
  explicit WaitGroup(Simulation& sim) : sim_(sim), ev_(sim) {}

  void add(int n = 1) {
    count_ += n;
    if (count_ > 0) ev_.reset();
  }

  void done() {
    if (--count_ == 0) ev_.trigger();
  }

  /// Wrap a task so its completion (normal or exceptional) decrements the
  /// group. Adds 1 to the count immediately.
  Task<void> track(Task<void> inner) {
    add(1);
    return run_tracked(std::move(inner), *this);
  }

  /// Awaitable completing when the count reaches zero. A group that never
  /// had tasks added is already complete.
  Event::Awaiter wait() noexcept {
    if (count_ == 0) ev_.trigger();
    return Event::Awaiter{ev_};
  }

  /// Wait at most `timeout` seconds; returns true if the group drained.
  /// Late tasks keep running — the caller simply stops waiting for them.
  /// (Implemented by polling at `poll_interval`, which avoids cancellable
  /// waits; fine for the coarse timeouts services use.)
  Task<bool> wait_for(double timeout, double poll_interval = 0.5) {
    double deadline = sim_.now() + timeout;
    while (count_ > 0) {
      if (sim_.now() >= deadline) co_return false;
      double remaining = deadline - sim_.now();
      co_await sim_.delay(remaining < poll_interval ? remaining
                                                    : poll_interval);
    }
    co_return true;
  }

  int pending() const noexcept { return count_; }

 private:
  static Task<void> run_tracked(Task<void> inner, WaitGroup& wg) {
    // Parameters live in the coroutine frame, so `inner` stays alive for
    // the duration of the child task. done() fires only on completion
    // (normal or exceptional) — NOT when the frame is destroyed at
    // shutdown, because the WaitGroup may already be gone by then.
    try {
      co_await inner;
    } catch (...) {
    }
    wg.done();
  }

  Simulation& sim_;
  int count_ = 0;
  Event ev_;
};

}  // namespace gridmon::sim
