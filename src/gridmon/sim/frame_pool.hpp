#pragma once

// gridmon-lint: hot-path — per-event cost dominates sweep wall-clock.

/// \file frame_pool.hpp
/// Size-bucketed free-list allocator for coroutine frames.
///
/// A simulation run creates and destroys millions of short-lived coroutine
/// frames (one per query attempt, transfer, timer). The default allocator
/// round-trips each frame through malloc/free; this pool instead recycles
/// freed frames in per-size buckets, so steady-state frame allocation is a
/// pointer swap. Memory is retained until process exit (the pool holds the
/// peak frame population, which is bounded by the peak number of live
/// coroutines).
///
/// The pool is thread_local: the simulator is single-threaded, and this
/// keeps independent test threads from sharing free lists.

#include <cstddef>
#include <new>

namespace gridmon::sim::detail {

class FramePool {
 public:
  void* allocate(std::size_t size) {
    // A 16-byte header keeps max_align_t alignment for the frame and
    // records the block size so deallocate() can rebucket without a size
    // argument (coroutine frame deletes are unsized on some compilers).
    std::size_t total = size + kHeader;
    void* raw;
    if (total > kMaxPooled) {
      raw = ::operator new(total);
    } else {
      std::size_t bucket = (total + kGranularity - 1) / kGranularity;
      total = bucket * kGranularity;
      FreeNode*& head = buckets_[bucket - 1];
      if (head != nullptr) {
        raw = head;
        head = head->next;
      } else {
        raw = ::operator new(total);
      }
    }
    *static_cast<std::size_t*>(raw) = total;
    return static_cast<char*>(raw) + kHeader;
  }

  void deallocate(void* p) noexcept {
    void* raw = static_cast<char*>(p) - kHeader;
    std::size_t total = *static_cast<std::size_t*>(raw);
    if (total > kMaxPooled) {
      ::operator delete(raw);
      return;
    }
    auto* node = static_cast<FreeNode*>(raw);
    std::size_t bucket = total / kGranularity;
    node->next = buckets_[bucket - 1];
    buckets_[bucket - 1] = node;
  }

  ~FramePool() {
    for (FreeNode*& head : buckets_) {
      while (head != nullptr) {
        FreeNode* next = head->next;
        ::operator delete(head);
        head = next;
      }
    }
  }

 private:
  static constexpr std::size_t kHeader = 16;
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxPooled = 8192;

  struct FreeNode {
    FreeNode* next;
  };

  FreeNode* buckets_[kMaxPooled / kGranularity] = {};
};

inline FramePool& frame_pool() {
  static thread_local FramePool pool;
  return pool;
}

}  // namespace gridmon::sim::detail
