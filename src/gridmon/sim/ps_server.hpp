#pragma once

// gridmon-lint: hot-path — per-event cost dominates sweep wall-clock.

/// \file ps_server.hpp
/// Processor-sharing service center.
///
/// Models a resource with total service rate `total_rate` (units/second)
/// shared by up to `max_parallel` jobs at full single-job speed; with n >
/// max_parallel concurrent jobs each gets total_rate/n. Optionally each job
/// is capped at `per_job_cap` units/second (e.g. a TCP flow over a WAN).
///
/// Used for: CPUs (rate = #cores cpu-seconds/second, max_parallel = #cores)
/// and network links (rate = bytes/second, max_parallel = 1). Jobs interact
/// via `co_await ps.consume(amount)` which suspends until `amount` units of
/// service have been delivered under the fluid-sharing model.
///
/// Two execution modes share the public API:
///
/// * **Exact mode** (populations up to kVirtualThreshold): every arrival
///   and departure settles the elapsed service into each job's `remaining`
///   with the same floating-point operation sequence as the original
///   implementation, so reference experiments stay bit-identical. O(n) per
///   event, but over a contiguous vector.
/// * **Virtual-time mode** (beyond the threshold, one-way switch): jobs
///   carry a completion target on a shared service curve `v(t)` that
///   advances at the cached per-job rate; an arrival or departure updates
///   `v` in O(1) and maintains a min-heap keyed by (target, seq). O(log n)
///   per event, which is what makes 100k-user sweeps tractable. Results in
///   this mode differ from exact mode only by sub-nanosecond rounding in
///   completion times.
///
/// The bottleneck rate is cached in both modes and recomputed only when
/// the population or the configured rate changes.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <vector>

#include "gridmon/sim/probe.hpp"
#include "gridmon/sim/simulation.hpp"

namespace gridmon::sim {

class PsServer {
 public:
  /// Population at which the server leaves exact mode. Far above anything
  /// the paper-scale experiments reach (their servers peak near 550
  /// concurrent jobs), so those runs keep byte-identical outputs; the
  /// 100k-user sweeps cross it on the shared links and switch to O(log n).
  static constexpr std::size_t kVirtualThreshold = 2048;

  PsServer(Simulation& sim, double total_rate, int max_parallel,
           double per_job_cap = std::numeric_limits<double>::infinity())
      : sim_(sim),
        total_rate_(total_rate),
        max_parallel_(max_parallel),
        per_job_cap_(per_job_cap) {
    assert(total_rate > 0 && max_parallel > 0 && per_job_cap > 0);
  }
  PsServer(const PsServer&) = delete;
  PsServer& operator=(const PsServer&) = delete;

  /// Number of jobs currently in service.
  int active_jobs() const noexcept {
    return static_cast<int>(virtual_mode_ ? vheap_.size() : jobs_.size());
  }

  /// Total service units delivered so far (for utilization sampling:
  /// utilization over [t0,t1] = delta(served)/(total_rate*(t1-t0))).
  double served_total() const {
    double elapsed = sim_.now() - last_update_;
    std::size_t n = virtual_mode_ ? vheap_.size() : jobs_.size();
    return served_total_ +
           current_rate_per_job() * static_cast<double>(n) * elapsed;
  }

  double total_rate() const noexcept { return total_rate_; }

  /// True once the server has switched to the virtual-time service curve.
  bool virtual_mode() const noexcept { return virtual_mode_; }

  /// Change the total service rate mid-run (link degradation, slow host).
  /// Work already delivered is settled at the old rate; in-flight jobs
  /// continue at the new rate.
  void set_total_rate(double rate) {
    assert(rate > 0);
    if (virtual_mode_) {
      advance_v();
      total_rate_ = rate;
      rate_ = current_rate_per_job();
      vreschedule();
    } else {
      settle();
      total_rate_ = rate;
      reschedule();
    }
  }

  /// Attach (or detach with nullptr) a population probe: fired on every
  /// arrival and departure with the job count and remaining backlog.
  void set_probe(UsageProbe* probe) noexcept { probe_ = probe; }

  struct ConsumeAwaiter {
    PsServer& ps;
    double amount;
    bool await_ready() const noexcept { return amount <= 0; }
    void await_suspend(std::coroutine_handle<> h) { ps.add_job(amount, h); }
    void await_resume() const noexcept {}
  };

  /// Suspend until `amount` units of service have been delivered.
  ConsumeAwaiter consume(double amount) noexcept {
    return ConsumeAwaiter{*this, amount};
  }

 private:
  struct Job {
    double remaining;
    double eps;  // completion threshold to absorb float error
    std::coroutine_handle<> handle;
  };
  /// A job on the virtual-time curve: done when v_ reaches `target`.
  struct VJob {
    double target;
    double eps;
    std::uint64_t seq;  // arrival order, for FIFO completion ties
    std::coroutine_handle<> handle;
  };

  static double finish_eps(double amount) {
    return 1e-9 * (1.0 + std::abs(amount));
  }

  /// Residual service below this much time is completed rather than
  /// rescheduled (see complete_ready_jobs).
  static constexpr double kMinServiceDt = 1e-9;

  /// Per-job service rate given the current population.
  double current_rate_per_job() const noexcept {
    std::size_t n = virtual_mode_ ? vheap_.size() : jobs_.size();
    if (n == 0) return 0;
    double fair = (n <= static_cast<std::size_t>(max_parallel_))
                      ? total_rate_ / max_parallel_
                      : total_rate_ / static_cast<double>(n);
    return fair < per_job_cap_ ? fair : per_job_cap_;
  }

  void add_job(double amount, std::coroutine_handle<> h) {
    if (virtual_mode_) {
      advance_v();
      vpush(VJob{v_ + amount, finish_eps(amount), next_job_seq_++, h});
      rate_ = current_rate_per_job();
      vreschedule();
      notify_probe();
      return;
    }
    settle();
    jobs_.push_back(Job{amount, finish_eps(amount), h});
    if (jobs_.size() >= kVirtualThreshold) {
      switch_to_virtual();
    } else {
      reschedule();
    }
    notify_probe();
  }

  // ---- Exact mode (byte-identical to the reference implementation) ----

  /// Apply service delivered since last_update_ to all jobs.
  void settle() {
    SimTime now = sim_.now();
    double elapsed = now - last_update_;
    if (elapsed > 0 && !jobs_.empty()) {
      double r = current_rate_per_job();
      for (auto& job : jobs_) job.remaining -= r * elapsed;
      served_total_ += r * static_cast<double>(jobs_.size()) * elapsed;
    }
    last_update_ = now;
  }

  /// Schedule the next completion event (invalidates any earlier one via
  /// the generation counter).
  void reschedule() {
    ++generation_;
    if (jobs_.empty()) return;
    double r = current_rate_per_job();
    double min_remaining = std::numeric_limits<double>::infinity();
    for (const auto& job : jobs_) {
      double left = job.remaining > 0 ? job.remaining : 0;
      if (left < min_remaining) min_remaining = left;
    }
    SimTime dt = min_remaining / r;
    std::uint64_t gen = generation_;
    sim_.schedule(dt, [this, gen] { on_completion_event(gen); });
  }

  void on_completion_event(std::uint64_t gen) {
    if (gen != generation_) return;  // superseded by a later arrival
    settle();
    // A job also counts as done when its residual service is under one
    // nanosecond of work: at large simulated times such a sliver needs a
    // dt below the clock's floating-point resolution, and rescheduling it
    // would freeze simulated time in a same-timestamp event loop.
    double rate = current_rate_per_job();
    double sliver = rate * kMinServiceDt;
    std::vector<std::coroutine_handle<>> finished = take_scratch();
    std::size_t out = 0;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      if (jobs_[i].remaining <= std::max(jobs_[i].eps, sliver)) {
        finished.push_back(jobs_[i].handle);
      } else {
        if (out != i) jobs_[out] = jobs_[i];
        ++out;
      }
    }
    jobs_.resize(out);
    reschedule();
    if (!finished.empty()) notify_probe();
    // Resuming may re-enter consume()/settle(); the job list is already
    // consistent at this point.
    for (auto h : finished) h.resume();
    put_scratch(std::move(finished));
  }

  // ---- Virtual-time mode ----

  /// Advance the shared service curve to the current time at the cached
  /// per-job rate. O(1) — this is the whole point of the mode.
  void advance_v() {
    SimTime now = sim_.now();
    double elapsed = now - last_update_;
    if (elapsed > 0 && !vheap_.empty()) {
      v_ += rate_ * elapsed;
      served_total_ += rate_ * static_cast<double>(vheap_.size()) * elapsed;
    }
    last_update_ = now;
  }

  void vreschedule() {
    ++generation_;
    if (vheap_.empty()) {
      // Resetting the curve on drain bounds floating-point error growth.
      v_ = 0;
      return;
    }
    double gap = vheap_.front().target - v_;
    SimTime dt = gap > 0 ? gap / rate_ : 0;
    std::uint64_t gen = generation_;
    sim_.schedule(dt, [this, gen] { on_v_completion_event(gen); });
  }

  void on_v_completion_event(std::uint64_t gen) {
    if (gen != generation_) return;
    advance_v();
    double sliver = rate_ * kMinServiceDt;
    // Harvest every job whose target the curve has (to within its epsilon)
    // reached. Resume in arrival order, matching the FIFO discipline of
    // exact mode.
    finished_vjobs_.clear();
    while (!vheap_.empty()) {
      const VJob& top = vheap_.front();
      if (top.target - v_ > std::max(top.eps, sliver)) break;
      finished_vjobs_.push_back(top);
      vpop();
    }
    if (finished_vjobs_.empty()) {
      vreschedule();
      return;
    }
    std::sort(finished_vjobs_.begin(), finished_vjobs_.end(),
              [](const VJob& a, const VJob& b) { return a.seq < b.seq; });
    rate_ = current_rate_per_job();
    vreschedule();
    notify_probe();
    std::vector<std::coroutine_handle<>> finished = take_scratch();
    for (const VJob& j : finished_vjobs_) finished.push_back(j.handle);
    finished_vjobs_.clear();
    for (auto h : finished) h.resume();
    put_scratch(std::move(finished));
  }

  /// One-way transition: convert the settled exact-mode jobs into targets
  /// on a fresh service curve (v_ = 0, target = remaining).
  void switch_to_virtual() {
    virtual_mode_ = true;
    v_ = 0;
    vheap_.reserve(jobs_.size() * 2);
    for (const Job& j : jobs_) {
      vpush(VJob{j.remaining, j.eps, next_job_seq_++, j.handle});
    }
    jobs_.clear();
    jobs_.shrink_to_fit();
    rate_ = current_rate_per_job();
    vreschedule();
  }

  // Min-heap over (target, seq) in a contiguous vector.
  static bool vearlier(const VJob& a, const VJob& b) noexcept {
    if (a.target != b.target) return a.target < b.target;
    return a.seq < b.seq;
  }

  void vpush(VJob j) {
    vheap_.push_back(j);
    std::size_t i = vheap_.size() - 1;
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (!vearlier(j, vheap_[parent])) break;
      vheap_[i] = vheap_[parent];
      i = parent;
    }
    vheap_[i] = j;
  }

  void vpop() {
    VJob last = vheap_.back();
    vheap_.pop_back();
    if (vheap_.empty()) return;
    std::size_t i = 0;
    const std::size_t n = vheap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && vearlier(vheap_[child + 1], vheap_[child])) {
        ++child;
      }
      if (!vearlier(vheap_[child], last)) break;
      vheap_[i] = vheap_[child];
      i = child;
    }
    vheap_[i] = last;
  }

  // ---- Shared plumbing ----

  /// Report population and remaining backlog to the attached probe.
  /// Precondition: settle()/advance_v() has run at the current time.
  void notify_probe() {
    if (probe_ == nullptr) return;
    double backlog = 0;
    std::size_t n;
    if (virtual_mode_) {
      n = vheap_.size();
      for (const VJob& j : vheap_) {
        double left = j.target - v_;
        backlog += left > 0 ? left : 0;
      }
    } else {
      n = jobs_.size();
      for (const auto& job : jobs_) {
        backlog += job.remaining > 0 ? job.remaining : 0;
      }
    }
    probe_->on_usage(sim_.now(), static_cast<double>(n), backlog);
  }

  /// Reusable buffer for completion sweeps (avoids an allocation per
  /// departure batch). Swapped out while in use so re-entrant arrivals
  /// can't corrupt it.
  std::vector<std::coroutine_handle<>> take_scratch() noexcept {
    std::vector<std::coroutine_handle<>> v = std::move(scratch_);
    v.clear();
    return v;
  }
  // gridmon-lint: suppress(hotpath.by-value-param) -- sink parameter:
  // the single caller hands the buffer back with std::move, so by-value
  // is a pointer swap, never an element copy; a reference would reopen
  // the re-entrancy hazard take_scratch exists to close.
  void put_scratch(std::vector<std::coroutine_handle<>> v) noexcept {
    if (v.capacity() > scratch_.capacity()) scratch_ = std::move(v);
  }

  Simulation& sim_;
  double total_rate_;
  int max_parallel_;
  double per_job_cap_;
  std::vector<Job> jobs_;           // exact mode, insertion order
  std::vector<VJob> vheap_;         // virtual mode, heap order
  std::vector<VJob> finished_vjobs_;
  std::vector<std::coroutine_handle<>> scratch_;
  SimTime last_update_ = 0;
  double served_total_ = 0;
  double v_ = 0;     // virtual-time service curve (units per job)
  double rate_ = 0;  // cached per-job rate (virtual mode)
  std::uint64_t next_job_seq_ = 0;
  std::uint64_t generation_ = 0;
  bool virtual_mode_ = false;
  UsageProbe* probe_ = nullptr;
};

}  // namespace gridmon::sim
