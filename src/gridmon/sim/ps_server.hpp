#pragma once

/// \file ps_server.hpp
/// Processor-sharing service center.
///
/// Models a resource with total service rate `total_rate` (units/second)
/// shared by up to `max_parallel` jobs at full single-job speed; with n >
/// max_parallel concurrent jobs each gets total_rate/n. Optionally each job
/// is capped at `per_job_cap` units/second (e.g. a TCP flow over a WAN).
///
/// Used for: CPUs (rate = #cores cpu-seconds/second, max_parallel = #cores)
/// and network links (rate = bytes/second, max_parallel = 1). Jobs interact
/// via `co_await ps.consume(amount)` which suspends until `amount` units of
/// service have been delivered under the fluid-sharing model.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <list>
#include <vector>

#include "gridmon/sim/probe.hpp"
#include "gridmon/sim/simulation.hpp"

namespace gridmon::sim {

class PsServer {
 public:
  PsServer(Simulation& sim, double total_rate, int max_parallel,
           double per_job_cap = std::numeric_limits<double>::infinity())
      : sim_(sim),
        total_rate_(total_rate),
        max_parallel_(max_parallel),
        per_job_cap_(per_job_cap) {
    assert(total_rate > 0 && max_parallel > 0 && per_job_cap > 0);
  }
  PsServer(const PsServer&) = delete;
  PsServer& operator=(const PsServer&) = delete;

  /// Number of jobs currently in service.
  int active_jobs() const noexcept { return static_cast<int>(jobs_.size()); }

  /// Total service units delivered so far (for utilization sampling:
  /// utilization over [t0,t1] = delta(served)/(total_rate*(t1-t0))).
  double served_total() const {
    double elapsed = sim_.now() - last_update_;
    return served_total_ + current_rate_per_job() * jobs_.size() * elapsed;
  }

  double total_rate() const noexcept { return total_rate_; }

  /// Change the total service rate mid-run (link degradation, slow host).
  /// Work already delivered is settled at the old rate; in-flight jobs
  /// continue at the new rate.
  void set_total_rate(double rate) {
    assert(rate > 0);
    settle();
    total_rate_ = rate;
    reschedule();
  }

  /// Attach (or detach with nullptr) a population probe: fired on every
  /// arrival and departure with the job count and remaining backlog.
  void set_probe(UsageProbe* probe) noexcept { probe_ = probe; }

  struct ConsumeAwaiter {
    PsServer& ps;
    double amount;
    bool await_ready() const noexcept { return amount <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      ps.settle();
      ps.jobs_.push_back(Job{amount, finish_eps(amount), h});
      ps.reschedule();
      ps.notify_probe();
    }
    void await_resume() const noexcept {}
  };

  /// Suspend until `amount` units of service have been delivered.
  ConsumeAwaiter consume(double amount) noexcept {
    return ConsumeAwaiter{*this, amount};
  }

 private:
  struct Job {
    double remaining;
    double eps;  // completion threshold to absorb float error
    std::coroutine_handle<> handle;
  };

  static double finish_eps(double amount) {
    return 1e-9 * (1.0 + std::abs(amount));
  }

  /// Residual service below this much time is completed rather than
  /// rescheduled (see on_completion_event).
  static constexpr double kMinServiceDt = 1e-9;

  /// Per-job service rate given the current population.
  double current_rate_per_job() const noexcept {
    auto n = jobs_.size();
    if (n == 0) return 0;
    double fair = (n <= static_cast<std::size_t>(max_parallel_))
                      ? total_rate_ / max_parallel_
                      : total_rate_ / static_cast<double>(n);
    return fair < per_job_cap_ ? fair : per_job_cap_;
  }

  /// Apply service delivered since last_update_ to all jobs.
  void settle() {
    SimTime now = sim_.now();
    double elapsed = now - last_update_;
    if (elapsed > 0 && !jobs_.empty()) {
      double r = current_rate_per_job();
      for (auto& job : jobs_) job.remaining -= r * elapsed;
      served_total_ += r * jobs_.size() * elapsed;
    }
    last_update_ = now;
  }

  /// Schedule the next completion event (invalidates any earlier one via
  /// the generation counter).
  void reschedule() {
    ++generation_;
    if (jobs_.empty()) return;
    double r = current_rate_per_job();
    double min_remaining = std::numeric_limits<double>::infinity();
    for (const auto& job : jobs_) {
      double left = job.remaining > 0 ? job.remaining : 0;
      if (left < min_remaining) min_remaining = left;
    }
    SimTime dt = min_remaining / r;
    std::uint64_t gen = generation_;
    sim_.schedule(dt, [this, gen] { on_completion_event(gen); });
  }

  void on_completion_event(std::uint64_t gen) {
    if (gen != generation_) return;  // superseded by a later arrival
    settle();
    // A job also counts as done when its residual service is under one
    // nanosecond of work: at large simulated times such a sliver needs a
    // dt below the clock's floating-point resolution, and rescheduling it
    // would freeze simulated time in a same-timestamp event loop.
    double rate = current_rate_per_job();
    double sliver = rate * kMinServiceDt;
    std::vector<std::coroutine_handle<>> finished;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->remaining <= std::max(it->eps, sliver)) {
        finished.push_back(it->handle);
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
    reschedule();
    if (!finished.empty()) notify_probe();
    // Resuming may re-enter consume()/settle(); the job list is already
    // consistent at this point.
    for (auto h : finished) h.resume();
  }

  /// Report population and remaining backlog to the attached probe.
  /// Precondition: settle() has run at the current time, so `remaining`
  /// values are current.
  void notify_probe() {
    if (probe_ == nullptr) return;
    double backlog = 0;
    for (const auto& job : jobs_) {
      backlog += job.remaining > 0 ? job.remaining : 0;
    }
    probe_->on_usage(sim_.now(), static_cast<double>(jobs_.size()), backlog);
  }

  Simulation& sim_;
  double total_rate_;
  int max_parallel_;
  double per_job_cap_;
  std::list<Job> jobs_;
  SimTime last_update_ = 0;
  double served_total_ = 0;
  std::uint64_t generation_ = 0;
  UsageProbe* probe_ = nullptr;
};

}  // namespace gridmon::sim
