#pragma once

/// \file rng.hpp
/// Deterministic random number generation for simulations. A thin,
/// explicitly-seeded wrapper over xoshiro256** with the distributions the
/// workload models need. Never uses global state (Core Guidelines I.2).

#include <cassert>
#include <cmath>
#include <cstdint>

namespace gridmon::sim {

class Rng {
 public:
  /// Seeds are expanded with splitmix64 so nearby seeds give unrelated
  /// streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  /// Derive an independent child stream (per user, per host, ...).
  Rng fork() { return Rng(next_u64()); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    assert(n > 0);
    // Modulo bias is < 2^-40 for any n that fits practical workloads.
    return next_u64() % n;
  }

  /// Exponential with the given mean (mean = 1/rate).
  double exponential(double mean) {
    double u;
    do {
      u = uniform();
    } while (u <= 0);
    return -mean * std::log(u);
  }

  /// Normal via Box-Muller (mean, stddev).
  double normal(double mean, double stddev) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0);
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(6.283185307179586 * u2);
    have_spare_ = true;
    return mean + stddev * mag * std::cos(6.283185307179586 * u2);
  }

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed sizes).
  double pareto(double xm, double alpha) {
    double u;
    do {
      u = uniform();
    } while (u <= 0);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4];
  double spare_ = 0;
  bool have_spare_ = false;
};

}  // namespace gridmon::sim
