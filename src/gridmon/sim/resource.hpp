#pragma once

// gridmon-lint: hot-path — per-event cost dominates sweep wall-clock.

/// \file resource.hpp
/// Counting semaphore with FIFO hand-off — models thread pools, connection
/// limits, and other capacity-constrained server resources.

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>

#include "gridmon/sim/probe.hpp"
#include "gridmon/sim/simulation.hpp"

namespace gridmon::sim {

class Resource;

/// RAII ownership of one resource slot (Core Guidelines CP.20: never plain
/// acquire/release).
class ResourceLease {
 public:
  ResourceLease() noexcept = default;
  explicit ResourceLease(Resource* r) noexcept : resource_(r) {}
  ResourceLease(ResourceLease&& o) noexcept
      : resource_(std::exchange(o.resource_, nullptr)) {}
  ResourceLease& operator=(ResourceLease&& o) noexcept {
    if (this != &o) {
      release();
      resource_ = std::exchange(o.resource_, nullptr);
    }
    return *this;
  }
  ResourceLease(const ResourceLease&) = delete;
  ResourceLease& operator=(const ResourceLease&) = delete;
  ~ResourceLease() { release(); }

  void release() noexcept;
  bool owns() const noexcept { return resource_ != nullptr; }

 private:
  Resource* resource_ = nullptr;
};

/// FIFO counting semaphore. `co_await res.acquire()` yields a ResourceLease.
class Resource {
 public:
  Resource(Simulation& sim, int capacity)
      : sim_(sim), capacity_(capacity) {
    assert(capacity > 0);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  int capacity() const noexcept { return capacity_; }
  int in_use() const noexcept { return in_use_; }
  int queue_length() const noexcept {
    return static_cast<int>(waiters_.size());
  }
  /// Total slot-seconds consumed so far (for utilization sampling).
  double busy_integral() const noexcept {
    return busy_integral_ + in_use_ * (sim_.now() - last_change_);
  }
  /// Cumulative number of successful acquisitions.
  std::uint64_t total_acquisitions() const noexcept { return acquisitions_; }

  /// Attach (or detach with nullptr) an occupancy probe: fired whenever
  /// held slots or the waiter queue change.
  void set_probe(UsageProbe* probe) noexcept { probe_ = probe; }

  struct AcquireAwaiter {
    Resource& r;
    bool suspended = false;
    bool await_ready() const noexcept { return r.in_use_ < r.capacity_; }
    void await_suspend(std::coroutine_handle<> h) {
      suspended = true;
      r.waiters_.push_back(h);
      r.notify_probe();
    }
    ResourceLease await_resume() {
      if (!suspended) {
        // Immediate path: claim a free slot ourselves.
        r.note_change();
        ++r.in_use_;
        r.notify_probe();
      }
      // Suspended path: the releaser handed over its slot, so occupancy is
      // already correct.
      ++r.acquisitions_;
      return ResourceLease(&r);
    }
  };

  AcquireAwaiter acquire() noexcept { return AcquireAwaiter{*this}; }

 private:
  friend class ResourceLease;

  void release_slot() {
    if (!waiters_.empty()) {
      // Hand the slot directly to the next waiter; occupancy is unchanged.
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule_resume(0, h);
    } else {
      note_change();
      --in_use_;
      assert(in_use_ >= 0);
    }
    notify_probe();
  }

  void note_change() {
    busy_integral_ += in_use_ * (sim_.now() - last_change_);
    last_change_ = sim_.now();
  }

  void notify_probe() {
    if (probe_ != nullptr) {
      probe_->on_usage(sim_.now(), static_cast<double>(in_use_),
                       static_cast<double>(waiters_.size()));
    }
  }

  Simulation& sim_;
  int capacity_;
  int in_use_ = 0;
  std::uint64_t acquisitions_ = 0;
  double busy_integral_ = 0;
  SimTime last_change_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
  UsageProbe* probe_ = nullptr;
};

inline void ResourceLease::release() noexcept {
  if (resource_ != nullptr) {
    resource_->release_slot();
    resource_ = nullptr;
  }
}

}  // namespace gridmon::sim
