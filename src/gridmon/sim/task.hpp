#pragma once

// gridmon-lint: hot-path — per-event cost dominates sweep wall-clock.

/// \file task.hpp
/// Coroutine task type for simulation processes.
///
/// A `Task<T>` is a lazily-started coroutine: creating one does not run any
/// code; it runs when first awaited (or when handed to Simulation::spawn).
/// Awaiting a task suspends the caller until the task completes and then
/// yields its result (symmetric transfer, so arbitrarily deep call chains do
/// not grow the machine stack).
///
/// Tasks are single-owner, move-only RAII handles over the coroutine frame
/// (Core Guidelines R.1). A task that is awaited is kept alive by the
/// awaiting coroutine's frame; a task that is spawned is owned by the
/// Simulation until it finishes.

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "gridmon/sim/frame_pool.hpp"

namespace gridmon::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }

  // Route every Task<T> coroutine frame through the recycling pool; frame
  // churn (one frame per query attempt / transfer / timer) dominates the
  // allocator profile of large sweeps otherwise.
  static void* operator new(std::size_t size) {
    return frame_pool().allocate(size);
  }
  static void operator delete(void* p) noexcept {
    frame_pool().deallocate(p);
  }
};

/// On final suspend, transfer control to whichever coroutine was awaiting
/// this one (if any). The frame itself is destroyed by the owning Task.
template <typename Promise>
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;

  Task<T> get_return_object();
  FinalAwaiter<Promise> final_suspend() noexcept { return {}; }
  void return_value(T v) { value = std::move(v); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  FinalAwaiter<Promise> final_suspend() noexcept { return {}; }
  void return_void() {}
};

}  // namespace detail

/// A lazily-started simulation coroutine returning T.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(handle_type h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// True if this task holds a live coroutine frame.
  bool valid() const noexcept { return static_cast<bool>(handle_); }
  /// True once the coroutine has run to completion.
  bool done() const noexcept { return handle_ && handle_.done(); }

  /// Start or resume the coroutine directly. Used by the Simulation when
  /// running spawned (detached) tasks; most code should `co_await` instead.
  void resume() const {
    if (handle_ && !handle_.done()) handle_.resume();
  }

  /// Rethrow any exception the completed coroutine captured.
  void rethrow_if_exception() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  struct Awaiter {
    handle_type handle;
    bool await_ready() const noexcept { return !handle || handle.done(); }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> cont) noexcept {
      handle.promise().continuation = cont;
      return handle;  // start the child coroutine now
    }
    T await_resume() const {
      if (handle.promise().exception) {
        std::rethrow_exception(handle.promise().exception);
      }
      if constexpr (!std::is_void_v<T>) {
        return std::move(*handle.promise().value);
      }
    }
  };

  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }

  handle_type native_handle() const noexcept { return handle_; }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  handle_type handle_;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace gridmon::sim
