#pragma once

/// \file stats.hpp
/// Online summary statistics and percentile estimation for measured
/// quantities (response times, throughputs, loads).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace gridmon::sim {

/// Welford accumulator: count / mean / variance / min / max in O(1) memory.
class Accumulator {
 public:
  void add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept {
    return count_ ? min_ : 0.0;
  }
  double max() const noexcept {
    return count_ ? max_ : 0.0;
  }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  void merge(const Accumulator& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    double total = static_cast<double>(count_ + o.count_);
    double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(count_) *
                       static_cast<double>(o.count_) / total;
    mean_ += delta * static_cast<double>(o.count_) / total;
    count_ += o.count_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  void reset() { *this = Accumulator{}; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample reservoir with exact percentiles. Stores every sample; suitable
/// for the sample counts this study produces (<= a few million doubles).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
    acc_.add(x);
  }

  std::size_t count() const noexcept { return values_.size(); }
  double mean() const noexcept { return acc_.mean(); }
  double stddev() const noexcept { return acc_.stddev(); }
  double min() const noexcept { return acc_.min(); }
  double max() const noexcept { return acc_.max(); }

  /// Exact percentile via nearest-rank; q in [0, 1].
  double percentile(double q) const {
    if (values_.empty()) return 0;
    ensure_sorted();
    double rank = q * static_cast<double>(values_.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    auto hi = std::min(lo + 1, values_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return values_[lo] * (1 - frac) + values_[hi] * frac;
  }

  double median() const { return percentile(0.5); }

  void reset() {
    values_.clear();
    sorted_ = false;
    acc_.reset();
  }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  Accumulator acc_;
};

}  // namespace gridmon::sim
