#pragma once

// gridmon-lint: hot-path — per-event cost dominates sweep wall-clock.

/// \file channel.hpp
/// Unbounded FIFO mailbox between coroutine processes (the "Store" of
/// classic DES libraries). Producers push without blocking; consumers
/// `co_await ch.pop()`.

#include <cassert>
#include <coroutine>
#include <deque>
#include <utility>

#include "gridmon/sim/simulation.hpp"

namespace gridmon::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Simulation& sim) : sim_(sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void push(T item) {
    items_.push_back(std::move(item));
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule_resume(0, h);
    }
  }

  struct PopAwaiter {
    Channel& ch;
    bool await_ready() const noexcept { return !ch.items_.empty(); }
    void await_suspend(std::coroutine_handle<> h) {
      ch.waiters_.push_back(h);
    }
    T await_resume() {
      // An item may have been stolen by another consumer resumed earlier at
      // the same timestamp; in the simulator's FIFO wake-up discipline this
      // cannot happen (one wake-up per push), so the queue is non-empty.
      assert(!ch.items_.empty() &&
             "Channel wake-up with no item: one-wake-per-push invariant "
             "violated");
      T item = std::move(ch.items_.front());
      ch.items_.pop_front();
      return item;
    }
  };

  PopAwaiter pop() noexcept { return PopAwaiter{*this}; }

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }

 private:
  Simulation& sim_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace gridmon::sim
