#include "gridmon/fault/injector.hpp"

#include <stdexcept>
#include <utility>

namespace gridmon::fault {

void Injector::add_target(std::string name, Hooks hooks) {
  targets_[std::move(name)] = std::move(hooks);
}

void Injector::add_host(const std::string& name, host::Host& host) {
  hosts_[name] = SlowedHost{&host, host.cpu().ps().total_rate()};
}

void Injector::validate(const FaultEvent& ev) const {
  auto need_target = [&](bool want_collectors) {
    auto it = targets_.find(ev.target);
    if (it == targets_.end()) {
      throw std::invalid_argument("fault target not registered: " +
                                  ev.target);
    }
    if (want_collectors && !it->second.collectors) {
      throw std::invalid_argument("target has no collector hook: " +
                                  ev.target);
    }
  };
  switch (ev.kind) {
    case FaultKind::Crash:
    case FaultKind::Restart:
      need_target(false);
      break;
    case FaultKind::CollectorsDown:
    case FaultKind::CollectorsUp:
      need_target(true);
      break;
    case FaultKind::WanDown:
    case FaultKind::WanHeal:
    case FaultKind::WanDegrade:
    case FaultKind::WanRestore:
      if (net_ == nullptr) {
        throw std::invalid_argument("WAN fault armed without a network");
      }
      break;
    case FaultKind::HostSlow:
    case FaultKind::HostRestore:
      if (hosts_.find(ev.target) == hosts_.end()) {
        throw std::invalid_argument("fault host not registered: " +
                                    ev.target);
      }
      break;
  }
}

void Injector::arm(const FaultPlan& plan) {
  for (const auto& ev : plan.sorted()) {
    validate(ev);
    double delay = ev.at - sim_.now();
    if (delay < 0) delay = 0;
    sim_.schedule(delay, [this, ev] { apply(ev); });
  }
}

void Injector::apply(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::Crash:
      targets_.at(ev.target).crash(ev.blackhole);
      break;
    case FaultKind::Restart:
      targets_.at(ev.target).restart();
      break;
    case FaultKind::CollectorsDown:
      targets_.at(ev.target).collectors(true);
      break;
    case FaultKind::CollectorsUp:
      targets_.at(ev.target).collectors(false);
      break;
    case FaultKind::WanDown:
      net_->set_wan_down(ev.target, ev.target2, true);
      break;
    case FaultKind::WanHeal:
      net_->set_wan_down(ev.target, ev.target2, false);
      break;
    case FaultKind::WanDegrade:
      net_->set_wan_degraded(ev.target, ev.target2, ev.value);
      break;
    case FaultKind::WanRestore:
      net_->set_wan_degraded(ev.target, ev.target2, 1.0);
      break;
    case FaultKind::HostSlow: {
      auto& h = hosts_.at(ev.target);
      h.host->cpu().ps().set_total_rate(h.base_rate * ev.value);
      break;
    }
    case FaultKind::HostRestore: {
      auto& h = hosts_.at(ev.target);
      h.host->cpu().ps().set_total_rate(h.base_rate);
      break;
    }
  }
  ++injected_;
  if (trace_ != nullptr) {
    auto ctx = trace_->new_trace();
    if (ctx) {
      trace_->instant(ctx, trace::SpanKind::Fault,
                      std::string(fault_kind_name(ev.kind)) + ":" + ev.target);
    }
  }
}

}  // namespace gridmon::fault
