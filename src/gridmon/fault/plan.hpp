#pragma once

/// \file plan.hpp
/// A FaultPlan is a deterministic schedule of timed fault events — crash
/// and restart of a named service, WAN partition and heal windows, link
/// degradation, slowed hosts, hung collectors. Plans are plain data:
/// building one has no side effects, and the same plan armed on the same
/// seeded simulation reproduces the same run byte for byte.

#include <algorithm>
#include <string>
#include <vector>

namespace gridmon::fault {

enum class FaultKind {
  Crash,           ///< the target service's process dies
  Restart,         ///< the target service comes back (soft state empty)
  WanDown,         ///< partition the WAN between sites target/target2
  WanHeal,         ///< heal that partition
  WanDegrade,      ///< multiply the WAN capacity by `value`
  WanRestore,      ///< restore the WAN to full capacity
  HostSlow,        ///< multiply the target host's CPU rate by `value`
  HostRestore,     ///< restore the host's CPU rate
  CollectorsDown,  ///< the target's sensors / provider scripts hang
  CollectorsUp,    ///< the sensors answer again
};

inline const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::Crash: return "crash";
    case FaultKind::Restart: return "restart";
    case FaultKind::WanDown: return "wan_down";
    case FaultKind::WanHeal: return "wan_heal";
    case FaultKind::WanDegrade: return "wan_degrade";
    case FaultKind::WanRestore: return "wan_restore";
    case FaultKind::HostSlow: return "host_slow";
    case FaultKind::HostRestore: return "host_restore";
    case FaultKind::CollectorsDown: return "collectors_down";
    case FaultKind::CollectorsUp: return "collectors_up";
  }
  return "?";
}

struct FaultEvent {
  double at = 0;           ///< absolute sim time
  FaultKind kind = FaultKind::Crash;
  std::string target;      ///< service / host name, or site A for WAN events
  std::string target2;     ///< site B for WAN events
  double value = 1.0;      ///< degrade / slowdown factor
  bool blackhole = false;  ///< Crash only: host vanished (SYNs swallowed)
                           ///< rather than process died (connection refused)
};

class FaultPlan {
 public:
  FaultPlan& add(FaultEvent ev) {
    events_.push_back(std::move(ev));
    return *this;
  }

  /// Crash `target` at `at`, restart it at `until`.
  FaultPlan& crash(const std::string& target, double at, double until,
                   bool blackhole = false) {
    add({at, FaultKind::Crash, target, "", 1.0, blackhole});
    add({until, FaultKind::Restart, target, "", 1.0, false});
    return *this;
  }

  /// Partition the WAN between sites `a` and `b` over [at, until).
  FaultPlan& partition(const std::string& a, const std::string& b, double at,
                       double until) {
    add({at, FaultKind::WanDown, a, b, 1.0, false});
    add({until, FaultKind::WanHeal, a, b, 1.0, false});
    return *this;
  }

  /// Degrade the a<->b WAN to `factor` of its capacity over [at, until).
  FaultPlan& degrade_wan(const std::string& a, const std::string& b,
                         double at, double until, double factor) {
    add({at, FaultKind::WanDegrade, a, b, factor, false});
    add({until, FaultKind::WanRestore, a, b, 1.0, false});
    return *this;
  }

  /// Slow host `name` to `factor` of its CPU rate over [at, until).
  FaultPlan& slow_host(const std::string& name, double at, double until,
                       double factor) {
    add({at, FaultKind::HostSlow, name, "", factor, false});
    add({until, FaultKind::HostRestore, name, "", 1.0, false});
    return *this;
  }

  /// Hang `target`'s collectors (information providers, Hawkeye modules,
  /// R-GMA publishers) over [at, until) while its server stays up.
  FaultPlan& collector_outage(const std::string& target, double at,
                              double until) {
    add({at, FaultKind::CollectorsDown, target, "", 1.0, false});
    add({until, FaultKind::CollectorsUp, target, "", 1.0, false});
    return *this;
  }

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }

  /// Events in time order (stable: ties keep insertion order).
  std::vector<FaultEvent> sorted() const {
    std::vector<FaultEvent> out = events_;
    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent& x, const FaultEvent& y) {
                       return x.at < y.at;
                     });
    return out;
  }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace gridmon::fault
