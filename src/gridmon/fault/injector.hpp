#pragma once

/// \file injector.hpp
/// The Injector binds a FaultPlan to a live deployment: services register
/// crash/restart/collector hooks under a name, hosts register for CPU
/// slowdowns, and arm() schedules every event on the sim clock. All
/// mutation happens through the registered hooks, so the injector needs
/// no knowledge of any concrete service type — add_service() derives the
/// hooks from whatever fault surface the service exposes.

#include <cstddef>
#include <functional>
#include <map>
#include <string>

#include "gridmon/fault/plan.hpp"
#include "gridmon/host/host.hpp"
#include "gridmon/net/network.hpp"
#include "gridmon/sim/simulation.hpp"
#include "gridmon/trace/collector.hpp"

namespace gridmon::fault {

class Injector {
 public:
  /// What the injector can do to one named target. Unset hooks make the
  /// corresponding event kinds an arm()-time error for that target.
  struct Hooks {
    std::function<void(bool blackhole)> crash;
    std::function<void()> restart;
    std::function<void(bool down)> collectors;
  };

  /// `net` may be null when the plan holds no WAN events.
  explicit Injector(sim::Simulation& sim, net::Network* net = nullptr)
      : sim_(sim), net_(net) {}

  void add_target(std::string name, Hooks hooks);

  /// Register any service exposing crash(bool)/restart(); a collector
  /// hook is derived from set_collectors_down() or set_publishers_down()
  /// when the service has one.
  template <class Service>
  void add_service(std::string name, Service& svc) {
    Hooks h;
    h.crash = [&svc](bool blackhole) { svc.crash(blackhole); };
    h.restart = [&svc] { svc.restart(); };
    if constexpr (requires(Service& s) { s.set_collectors_down(true); }) {
      h.collectors = [&svc](bool down) { svc.set_collectors_down(down); };
    } else if constexpr (requires(Service& s) {
                           s.set_publishers_down(true);
                         }) {
      h.collectors = [&svc](bool down) { svc.set_publishers_down(down); };
    }
    add_target(std::move(name), std::move(h));
  }

  /// Register a host for HostSlow/HostRestore (remembers its base rate).
  void add_host(const std::string& name, host::Host& host);

  /// Emit a Fault instant span per injected event into `col` (may be
  /// null to turn back off).
  void set_trace(trace::Collector* col) noexcept { trace_ = col; }

  /// Validate the plan against the registered targets and schedule every
  /// event. Events whose time is already past fire immediately.
  void arm(const FaultPlan& plan);

  /// Events applied so far.
  std::size_t injected() const noexcept { return injected_; }

 private:
  struct SlowedHost {
    host::Host* host;
    double base_rate;
  };

  void validate(const FaultEvent& ev) const;
  void apply(const FaultEvent& ev);

  sim::Simulation& sim_;
  net::Network* net_;
  trace::Collector* trace_ = nullptr;
  std::map<std::string, Hooks> targets_;
  std::map<std::string, SlowedHost> hosts_;
  std::size_t injected_ = 0;
};

}  // namespace gridmon::fault
