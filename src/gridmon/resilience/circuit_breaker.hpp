#pragma once

/// \file circuit_breaker.hpp
/// Failure-rate-windowed circuit breaker with the classic three states:
///
///   Closed    — requests flow; outcomes are recorded in a fixed-size
///               ring.  When the ring holds >= min_samples outcomes and
///               the failure fraction reaches failure_threshold, the
///               breaker trips Open.
///   Open      — requests fast-fail locally (no network, no server work)
///               until open_duration sim-seconds have elapsed.
///   Half-open — after open_duration, up to half_open_probes requests are
///               let through.  Any probe failure re-opens (and restarts
///               the open timer); a successful probe closes the breaker
///               and clears the window.
///
/// Time is whatever clock the caller passes in (sim::Simulation::now());
/// the breaker itself holds no time source and no randomness, so it is
/// deterministic by construction.

#include <cstdint>
#include <vector>

namespace gridmon::resilience {

struct CircuitBreakerConfig {
  std::size_t window = 20;         // outcomes tracked in the ring
  std::size_t min_samples = 10;    // don't trip before this many outcomes
  double failure_threshold = 0.5;  // trip at >= this failure fraction
  double open_duration = 10.0;     // seconds Open before probing
  std::size_t half_open_probes = 1;  // concurrent probes while half-open
};

class CircuitBreaker {
 public:
  enum class State { Closed, Open, HalfOpen };

  CircuitBreaker() : CircuitBreaker(CircuitBreakerConfig{}) {}
  explicit CircuitBreaker(const CircuitBreakerConfig& config)
      : config_(config) {
    ring_.reserve(config_.window);
  }

  /// Current state, deriving HalfOpen from elapsed open time.
  State state(double now) const {
    if (state_ == State::Open && now - opened_at_ >= config_.open_duration) {
      return State::HalfOpen;
    }
    return state_;
  }

  /// May a request be sent now?  Counts a fast-fail when the answer is
  /// no; reserves a probe slot when half-open.
  bool allow(double now) {
    switch (state(now)) {
      case State::Closed:
        return true;
      case State::Open:
        ++fast_fails_;
        return false;
      case State::HalfOpen:
        if (probes_in_flight_ < config_.half_open_probes) {
          state_ = State::HalfOpen;
          ++probes_in_flight_;
          return true;
        }
        ++fast_fails_;
        return false;
    }
    return true;  // unreachable
  }

  /// Record the outcome of a request previously admitted by allow().
  void record(double now, bool success) {
    if (state_ == State::HalfOpen) {
      if (probes_in_flight_ > 0) --probes_in_flight_;
      if (success) {
        reset();
      } else {
        trip(now);
      }
      return;
    }
    if (state_ == State::Open) return;  // stale outcome from before the trip
    push(success);
    if (ring_.size() >= config_.min_samples && config_.window > 0) {
      double frac =
          static_cast<double>(failures_) / static_cast<double>(ring_.size());
      if (frac >= config_.failure_threshold) trip(now);
    }
  }

  std::uint64_t fast_fails() const { return fast_fails_; }
  std::uint64_t trips() const { return trips_; }

 private:
  void push(bool success) {
    if (ring_.size() < config_.window) {
      ring_.push_back(success);
    } else {
      if (!ring_[head_]) --failures_;
      ring_[head_] = success;
      head_ = (head_ + 1) % config_.window;
    }
    if (!success) ++failures_;
  }

  void trip(double now) {
    state_ = State::Open;
    opened_at_ = now;
    probes_in_flight_ = 0;
    ring_.clear();
    head_ = 0;
    failures_ = 0;
    ++trips_;
  }

  void reset() {
    state_ = State::Closed;
    probes_in_flight_ = 0;
    ring_.clear();
    head_ = 0;
    failures_ = 0;
  }

  CircuitBreakerConfig config_;
  State state_ = State::Closed;
  double opened_at_ = 0;
  std::size_t probes_in_flight_ = 0;
  std::vector<bool> ring_;
  std::size_t head_ = 0;
  std::size_t failures_ = 0;
  std::uint64_t fast_fails_ = 0;
  std::uint64_t trips_ = 0;
};

}  // namespace gridmon::resilience
