#pragma once

/// \file policy.hpp
/// Aggregate resilience configuration and the per-client policy object.
///
/// `Config` is what flows through core::ScenarioSpec's `[resilience]`
/// section: a client half (retry budget + circuit breaker, consumed by
/// the workloads and by inter-service callers) and a server half (queue
/// discipline + deadline shedding + serve-stale, consumed by
/// net::ServerPort and the service caches).  Everything defaults to
/// *disabled*, in which state every code path below is a pass-through
/// and simulation output is byte-identical to a tree without this
/// module.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "gridmon/resilience/backoff.hpp"
#include "gridmon/resilience/circuit_breaker.hpp"
#include "gridmon/resilience/retry_budget.hpp"

namespace gridmon::resilience {

/// Order in which a full listen queue hands freed slots to waiters.
enum class QueueDiscipline { Fifo, Lifo, DeadlineEdf };

inline const char* discipline_name(QueueDiscipline d) {
  switch (d) {
    case QueueDiscipline::Fifo: return "fifo";
    case QueueDiscipline::Lifo: return "lifo";
    case QueueDiscipline::DeadlineEdf: return "edf";
  }
  return "?";
}

inline QueueDiscipline parse_discipline(const std::string& s) {
  if (s == "fifo") return QueueDiscipline::Fifo;
  if (s == "lifo") return QueueDiscipline::Lifo;
  if (s == "edf" || s == "deadline-edf") return QueueDiscipline::DeadlineEdf;
  throw std::invalid_argument("unknown queue discipline: " + s);
}

/// Server-side knobs, installed on a net::ServerPort.
struct ServerPolicy {
  bool enabled = false;
  QueueDiscipline discipline = QueueDiscipline::Fifo;
  std::size_t queue_limit = 256;  // parked waiters beyond the listen queue
  double deadline_budget = 0;     // max queue wait before shedding; 0 = off
  bool serve_stale = false;       // caches may answer from expired entries
  double pressure_threshold = 0.9;  // in_flight/backlog ratio = "overloaded"
};

/// Client-side knobs, shared by workloads and inter-service callers.
struct ClientPolicyConfig {
  bool enabled = false;
  RetryBudgetConfig budget{};
  CircuitBreakerConfig breaker{};
};

/// Everything the `[resilience]` INI section configures.
struct Config {
  bool enabled = false;
  ClientPolicyConfig client{};
  ServerPolicy server{};
};

/// Per-caller resilience state: one retry budget and one circuit breaker
/// toward a single destination.  All methods are pass-throughs (always
/// allow, record nothing) when the policy is disabled, so wiring one into
/// a legacy retry loop cannot perturb existing goldens.
class ClientPolicy {
 public:
  ClientPolicy() = default;
  explicit ClientPolicy(const ClientPolicyConfig& config)
      : config_(config),
        budget_(config.budget),
        breaker_(config.breaker) {}

  bool enabled() const { return config_.enabled; }

  /// A fresh request is being issued: fund the retry budget.
  void on_query() {
    if (config_.enabled) budget_.deposit();
  }

  /// May an attempt (fresh or retry) be sent now?
  bool allow(double now) {
    if (!config_.enabled) return true;
    return breaker_.allow(now);
  }

  /// May a retry be scheduled?  Withdraws from the budget.
  bool allow_retry() {
    if (!config_.enabled) return true;
    return budget_.try_withdraw();
  }

  /// Record the outcome of an attempt admitted by allow().
  void record(double now, bool success) {
    if (config_.enabled) breaker_.record(now, success);
  }

  const RetryBudget& budget() const { return budget_; }
  const CircuitBreaker& breaker() const { return breaker_; }
  CircuitBreaker::State breaker_state(double now) const {
    return breaker_.state(now);
  }

 private:
  ClientPolicyConfig config_{};
  RetryBudget budget_{};
  CircuitBreaker breaker_{};
};

}  // namespace gridmon::resilience
