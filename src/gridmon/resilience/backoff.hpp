#pragma once

/// \file backoff.hpp
/// Shared retry-backoff policy used by every retry loop in the tree
/// (UserWorkload, OpenWorkload, inter-service calls).  Two modes:
///
///  - schedule mode: an explicit per-attempt delay table (the paper's
///    slapd-style 3/6/12/... ladder); attempts past the end reuse the
///    last entry.
///  - exponential mode (empty schedule): base * growth^k capped at `cap`.
///    growth == 1.0 reproduces the legacy "empty schedule -> constant 1 s"
///    fallback exactly.
///
/// Jitter multiplies the raw delay by uniform(1-jitter, 1+jitter) drawn
/// from the caller's forked sim::Rng, consuming exactly one draw per
/// delay so existing seed-determinism goldens are unaffected when the
/// parameters match the legacy inline arithmetic.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "gridmon/sim/rng.hpp"

namespace gridmon::resilience {

struct BackoffPolicy {
  std::vector<double> schedule;  // per-attempt delays; empty -> exponential
  double base = 1.0;             // exponential mode: first delay
  double growth = 1.0;           // exponential mode: multiplier per retry
  double cap = 120.0;            // exponential mode: delay ceiling
  double jitter = 0.02;          // +/- fraction applied multiplicatively

  /// Raw (unjittered) delay before the k-th retry (k counts from 0).
  double raw_delay(std::size_t k) const {
    if (!schedule.empty()) {
      return schedule[std::min(k, schedule.size() - 1)];
    }
    double d = base;
    for (std::size_t i = 0; i < k; ++i) {
      d *= growth;
      if (d >= cap) return cap;
    }
    return std::min(d, cap);
  }

  /// Jittered delay before the k-th retry.  Always consumes exactly one
  /// uniform draw from `rng` (even at jitter == 0), mirroring the legacy
  /// inline `delay *= uniform(...)` so RNG streams stay aligned.
  double delay(std::size_t k, sim::Rng& rng) const {
    return raw_delay(k) * rng.uniform(1.0 - jitter, 1.0 + jitter);
  }
};

}  // namespace gridmon::resilience
