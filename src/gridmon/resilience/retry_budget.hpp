#pragma once

/// \file retry_budget.hpp
/// Token-bucket retry budget (the Finagle "retry budget" shape): every
/// fresh request deposits `fill_ratio` tokens, every retry withdraws one
/// whole token.  In steady state retries are bounded to ~fill_ratio of
/// offered load, which is what prevents an outage from turning into a
/// self-sustaining retry storm (metastable failure): once the budget is
/// drained, clients stop amplifying and the server's recovery work is
/// bounded by fresh arrivals only.
///
/// Deterministic by construction — plain arithmetic on doubles, no time
/// source, no randomness.

#include <algorithm>
#include <cstdint>

namespace gridmon::resilience {

struct RetryBudgetConfig {
  double capacity = 10.0;   // max banked tokens
  double fill_ratio = 0.1;  // tokens deposited per fresh request
};

class RetryBudget {
 public:
  RetryBudget() = default;
  explicit RetryBudget(const RetryBudgetConfig& config)
      : config_(config), tokens_(config.capacity) {}

  /// A fresh (first-attempt) request was issued.
  void deposit() {
    tokens_ = std::min(config_.capacity, tokens_ + config_.fill_ratio);
  }

  /// Try to pay for one retry.  Returns false (and counts a suppression)
  /// when the budget is exhausted.
  bool try_withdraw() {
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      ++withdrawals_;
      return true;
    }
    ++suppressed_;
    return false;
  }

  double tokens() const { return tokens_; }
  std::uint64_t withdrawals() const { return withdrawals_; }
  std::uint64_t suppressed() const { return suppressed_; }

 private:
  RetryBudgetConfig config_{};
  double tokens_ = 10.0;
  std::uint64_t withdrawals_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace gridmon::resilience
