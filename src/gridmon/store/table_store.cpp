#include "gridmon/store/table_store.hpp"

namespace gridmon::store {
namespace {

// WAL record op tags.
constexpr std::uint8_t kOpInsert = 1;
constexpr std::uint8_t kOpUpdate = 2;
constexpr std::uint8_t kOpErase = 3;
constexpr std::uint8_t kOpVacuum = 4;

// Value tags inside rows.
constexpr std::uint8_t kValNull = 0;
constexpr std::uint8_t kValInteger = 1;
constexpr std::uint8_t kValReal = 2;
constexpr std::uint8_t kValText = 3;

}  // namespace

void TableStore::encode_row(Encoder& out, const rdbms::Row& row) {
  out.u32(static_cast<std::uint32_t>(row.size()));
  for (const rdbms::Value& v : row) {
    if (v.is_null()) {
      out.u8(kValNull);
    } else if (v.is_integer()) {
      out.u8(kValInteger);
      out.i64(v.as_integer());
    } else if (v.is_real()) {
      out.u8(kValReal);
      out.f64(v.as_real());
    } else {
      out.u8(kValText);
      out.str(v.as_text());
    }
  }
}

bool TableStore::decode_row(Decoder& in, rdbms::Row& row) {
  std::uint32_t n = 0;
  if (!in.u32(n)) return false;
  row.clear();
  row.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint8_t tag = 0;
    if (!in.u8(tag)) return false;
    switch (tag) {
      case kValNull:
        row.push_back(rdbms::Value::null());
        break;
      case kValInteger: {
        std::int64_t v = 0;
        if (!in.i64(v)) return false;
        row.push_back(rdbms::Value::integer(v));
        break;
      }
      case kValReal: {
        double v = 0;
        if (!in.f64(v)) return false;
        row.push_back(rdbms::Value::real(v));
        break;
      }
      case kValText: {
        std::string v;
        if (!in.str(v)) return false;
        row.push_back(rdbms::Value::text(std::move(v)));
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

void TableStore::on_insert(const rdbms::Row& row) {
  Encoder rec;
  rec.u8(kOpInsert);
  encode_row(rec, row);
  log_.append(rec.take());
}

void TableStore::on_update(std::size_t id, const rdbms::Row& row) {
  Encoder rec;
  rec.u8(kOpUpdate);
  rec.u64(static_cast<std::uint64_t>(id));
  encode_row(rec, row);
  log_.append(rec.take());
}

void TableStore::on_erase(std::size_t id) {
  Encoder rec;
  rec.u8(kOpErase);
  rec.u64(static_cast<std::uint64_t>(id));
  log_.append(rec.take());
}

void TableStore::on_vacuum() {
  Encoder rec;
  rec.u8(kOpVacuum);
  log_.append(rec.take());
}

void TableStore::write_snapshot(Encoder& out) const {
  out.u64(static_cast<std::uint64_t>(table_.slot_count()));
  for (std::size_t i = 0; i < table_.slot_count(); ++i) {
    out.u8(table_.is_live(i) ? 1 : 0);
    encode_row(out, table_.row(i));
  }
}

void TableStore::load_snapshot(Decoder& in) {
  std::uint64_t slots = 0;
  if (!in.u64(slots)) return;
  for (std::uint64_t i = 0; i < slots; ++i) {
    std::uint8_t live = 0;
    rdbms::Row row;
    if (!in.u8(live) || !decode_row(in, row)) return;
    // Re-create the slot, tombstoning dead ones so slot ids line up with
    // the WAL tail that follows the snapshot.
    table_.insert(std::move(row));
    if (live == 0) table_.erase_row(table_.slot_count() - 1);
  }
}

void TableStore::apply_record(Decoder& in) {
  std::uint8_t op = 0;
  if (!in.u8(op)) return;
  switch (op) {
    case kOpInsert: {
      rdbms::Row row;
      if (decode_row(in, row)) table_.insert(std::move(row));
      break;
    }
    case kOpUpdate: {
      std::uint64_t id = 0;
      rdbms::Row row;
      if (in.u64(id) && decode_row(in, row)) {
        table_.update_row(static_cast<std::size_t>(id), std::move(row));
      }
      break;
    }
    case kOpErase: {
      std::uint64_t id = 0;
      if (in.u64(id)) table_.erase_row(static_cast<std::size_t>(id));
      break;
    }
    case kOpVacuum:
      table_.vacuum();
      break;
    default:
      break;  // CRC-clean but unknown op: ignore (forward compatibility)
  }
}

}  // namespace gridmon::store
