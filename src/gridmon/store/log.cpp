#include "gridmon/store/log.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace gridmon::store {
namespace {

/// CPU charged per byte serialized into a snapshot (the service walks its
/// state and formats it; ~20ns/byte on the reference machine).
constexpr double kSnapshotCpuPerByte = 2e-8;

}  // namespace

std::optional<DurabilityMode> parse_mode(std::string_view name) {
  if (name == "volatile") return DurabilityMode::Volatile;
  if (name == "wal") return DurabilityMode::Wal;
  if (name == "wal+snapshot") return DurabilityMode::WalSnapshot;
  return std::nullopt;
}

Log::Log(host::Host& host, Durable& client, StoreConfig config)
    : host_(host), client_(client), config_(config) {
  if (config_.enabled()) {
    host::DiskSpec spec = host_.disk().spec();
    spec.fsync_latency = config_.fsync_latency;
    spec.write_bandwidth = config_.write_bandwidth;
    host_.disk().set_spec(spec);
  }
}

void Log::start() {
  if (config_.mode == DurabilityMode::WalSnapshot &&
      config_.snapshot_interval > 0) {
    host_.simulation().spawn(snapshot_loop(this));
  }
}

void Log::append(std::string payload) {
  if (!enabled() || down_) return;
  std::uint64_t seq = next_seq_++;
  append_frame(pending_, seq, payload);
  pending_last_seq_ = seq;
  ++stats_.appends;
  arm_timer();
}

void Log::arm_timer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  std::uint64_t epoch = epoch_;
  host_.simulation().schedule(config_.group_commit_window, [this, epoch] {
    if (epoch != epoch_) return;
    timer_armed_ = false;
    if (!flush_in_flight_ && !pending_.empty()) begin_flush();
  });
}

void Log::begin_flush() {
  flush_in_flight_ = true;
  flight_ = std::move(pending_);
  pending_.clear();
  flight_last_seq_ = pending_last_seq_;
  flight_started_ = host_.simulation().now();
  host_.simulation().spawn(run_flush(this));
}

sim::Task<void> Log::run_flush(Log* self) {
  std::uint64_t epoch = self->epoch_;
  co_await self->host_.disk().write(static_cast<double>(self->flight_.size()));
  if (self->epoch_ != epoch) co_return;  // crashed mid-write: torn tail kept
  co_await self->host_.disk().fsync();
  if (self->epoch_ != epoch) co_return;  // crashed mid-barrier
  self->image_.wal += self->flight_;
  self->durable_seq_ = self->flight_last_seq_;
  self->flight_.clear();
  self->flush_in_flight_ = false;
  ++self->stats_.flushes;
  self->stats_.wal_bytes = static_cast<double>(self->image_.wal.size());
  self->resume_ready_waiters();
  // Records that arrived during the flush form the next batch right away —
  // under load the effective window is the flush latency itself.
  if (!self->pending_.empty()) self->begin_flush();
}

void Log::resume_ready_waiters() {
  while (!waiters_.empty() && waiters_.front().seq <= durable_seq_) {
    host_.simulation().schedule_resume(0, waiters_.front().h);
    waiters_.pop_front();
  }
}

void Log::crash() {
  if (!enabled()) return;
  ++epoch_;
  timer_armed_ = false;
  if (flush_in_flight_) {
    // The write had been streaming for (now - start): that many bytes made
    // it to the platter. No fsync happened, but the model keeps partially
    // written sectors — replay truncates the torn frame at the end.
    double elapsed = host_.simulation().now() - flight_started_;
    double on_disk_f = std::floor(elapsed * config_.write_bandwidth);
    auto on_disk = on_disk_f > 0
                       ? static_cast<std::size_t>(
                             std::min(on_disk_f,
                                      static_cast<double>(flight_.size())))
                       : 0;
    image_.wal.append(flight_, 0, on_disk);
    flight_.clear();
    flush_in_flight_ = false;
  }
  pending_.clear();
  down_ = true;
  stats_.wal_bytes = static_cast<double>(image_.wal.size());
  std::deque<Waiter> waiters = std::move(waiters_);
  waiters_.clear();
  for (const Waiter& w : waiters) {
    host_.simulation().schedule_resume(0, w.h);
  }
}

sim::Task<void> Log::recover() {
  if (!enabled()) co_return;
  double t0 = host_.simulation().now();
  ++epoch_;  // invalidate any straggler timers/flushes
  down_ = true;
  co_await host_.disk().read(
      static_cast<double>(image_.snapshot.size() + image_.wal.size()));
  if (config_.mode == DurabilityMode::WalSnapshot &&
      !image_.snapshot.empty()) {
    Decoder snap(image_.snapshot);
    client_.load_snapshot(snap);
  }
  std::uint64_t applied = 0;
  std::uint64_t snapshot_seq = image_.snapshot_seq;
  Durable& client = client_;
  ReplayResult r = replay(
      image_.wal,
      [&client, &applied, snapshot_seq](std::uint64_t seq,
                                        std::string_view payload) {
        if (seq <= snapshot_seq) return;  // already inside the snapshot
        Decoder rec(payload);
        client.apply_record(rec);
        ++applied;
      });
  if (r.valid_bytes < image_.wal.size()) {
    image_.wal.resize(r.valid_bytes);  // drop the torn/corrupt tail forever
    ++stats_.torn_truncations;
  }
  co_await host_.cpu().consume(config_.replay_cpu_per_record *
                               static_cast<double>(applied));
  durable_seq_ = std::max(r.last_seq, image_.snapshot_seq);
  next_seq_ = durable_seq_ + 1;
  pending_.clear();
  pending_last_seq_ = 0;
  flight_.clear();
  flush_in_flight_ = false;
  timer_armed_ = false;
  stats_.replayed_records += applied;
  ++stats_.recoveries;
  stats_.last_replay_seconds = host_.simulation().now() - t0;
  stats_.wal_bytes = static_cast<double>(image_.wal.size());
  down_ = false;
}

sim::Task<void> Log::snapshot_loop(Log* self) {
  sim::Simulation& sim = self->host_.simulation();
  for (;;) {
    co_await sim.delay(self->config_.snapshot_interval);
    if (self->down_) continue;  // dead services don't snapshot
    co_await take_snapshot(self);
  }
}

sim::Task<void> Log::take_snapshot(Log* self) {
  std::uint64_t epoch = self->epoch_;
  // The image captures state as of the latest append, committed or not —
  // the snapshot covers every record numbered up to snap_seq.
  std::uint64_t snap_seq = self->next_seq_ - 1;
  Encoder enc;
  self->client_.write_snapshot(enc);
  std::string bytes = enc.take();
  co_await self->host_.cpu().consume(kSnapshotCpuPerByte *
                                     static_cast<double>(bytes.size()));
  if (self->epoch_ != epoch) co_return;
  co_await self->host_.disk().write(static_cast<double>(bytes.size()));
  if (self->epoch_ != epoch) co_return;
  co_await self->host_.disk().fsync();
  if (self->epoch_ != epoch) co_return;  // crash mid-snapshot: old one stays
  self->image_.snapshot = std::move(bytes);
  self->image_.snapshot_seq = snap_seq;
  ++self->stats_.snapshots;
  self->stats_.snapshot_bytes =
      static_cast<double>(self->image_.snapshot.size());
  // Compact: durable WAL records the snapshot now covers are dropped.
  std::string compacted;
  replay(self->image_.wal,
         [&compacted, snap_seq](std::uint64_t seq, std::string_view payload) {
           if (seq > snap_seq) append_frame(compacted, seq, payload);
         });
  self->image_.wal = std::move(compacted);
  self->stats_.wal_bytes = static_cast<double>(self->image_.wal.size());
}

}  // namespace gridmon::store
