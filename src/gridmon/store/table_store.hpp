#pragma once

/// \file table_store.hpp
/// Bridges an rdbms::Table to the Log engine: every committed mutation the
/// table reports through its TableJournal becomes one WAL record, and the
/// Durable side re-applies those records (or a whole-table snapshot) into
/// the same table on recovery. Attach with Table::set_journal and call
/// log().commit() from the service's request path before acknowledging.

#include "gridmon/host/host.hpp"
#include "gridmon/rdbms/table.hpp"
#include "gridmon/store/durable.hpp"
#include "gridmon/store/log.hpp"

namespace gridmon::store {

class TableStore final : public Durable, public rdbms::TableJournal {
 public:
  TableStore(host::Host& host, rdbms::Table& table, const StoreConfig& config)
      : table_(table), log_(host, *this, config) {}

  Log& log() noexcept { return log_; }
  const Log& log() const noexcept { return log_; }

  // TableJournal: frame one record per mutation.
  void on_insert(const rdbms::Row& row) override;
  void on_update(std::size_t id, const rdbms::Row& row) override;
  void on_erase(std::size_t id) override;
  void on_vacuum() override;

  // Durable: snapshot the whole table (tombstones included, so WAL records
  // addressing rows by slot id stay valid) and replay records.
  void write_snapshot(Encoder& out) const override;
  void load_snapshot(Decoder& in) override;
  void apply_record(Decoder& in) override;

 private:
  static void encode_row(Encoder& out, const rdbms::Row& row);
  static bool decode_row(Decoder& in, rdbms::Row& row);

  rdbms::Table& table_;
  Log log_;
};

}  // namespace gridmon::store
