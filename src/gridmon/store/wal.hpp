#pragma once

/// \file wal.hpp
/// Write-ahead-log record framing and replay. The on-"disk" WAL image is
/// a flat byte string of frames:
///
///   [u32 payload_len][u64 seq][u32 crc][payload bytes]
///
/// where crc = CRC-32 (IEEE polynomial, reflected) over the 8 seq bytes
/// followed by the payload. Replay walks frames front to back and stops
/// at the first incomplete frame (a torn tail from a crash mid-write) or
/// the first CRC mismatch (corruption); in both cases the clean prefix is
/// reported so the caller can truncate and carry on — a torn record is
/// never resurrected and never crashes the replayer.
///
/// Framing is deliberately free of simulated time or randomness: the WAL
/// byte image is a pure function of the append sequence, which is what
/// makes the byte-identical-per-seed golden tests possible.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace gridmon::store {

/// CRC-32 (IEEE 802.3 polynomial, reflected, init/final 0xFFFFFFFF) —
/// hand-rolled table implementation so the container needs no zlib.
std::uint32_t crc32(std::string_view data);
/// Incremental form: feed `data` into a running crc (start with 0).
std::uint32_t crc32_update(std::uint32_t crc, std::string_view data);

/// Frame one record onto the end of `image`.
void append_frame(std::string& image, std::uint64_t seq,
                  std::string_view payload);

/// Bytes one framed record of `payload_size` occupies.
constexpr std::size_t frame_overhead() { return 4 + 8 + 4; }

enum class ReplayStatus {
  Ok,        // every byte parsed as a whole, CRC-clean record
  TornTail,  // trailing partial frame (crash mid-write); prefix is clean
  Corrupt,   // a complete frame failed its CRC; prefix before it is clean
};

struct ReplayResult {
  ReplayStatus status = ReplayStatus::Ok;
  std::uint64_t records = 0;     // records delivered to `apply`
  std::uint64_t last_seq = 0;    // sequence number of the last clean record
  std::size_t valid_bytes = 0;   // length of the clean prefix
};

/// Walk `image` front to back, invoking `apply(seq, payload)` for every
/// CRC-clean record. Never throws on malformed input; see ReplayStatus.
ReplayResult replay(
    std::string_view image,
    const std::function<void(std::uint64_t seq, std::string_view payload)>&
        apply);

}  // namespace gridmon::store
