#pragma once

/// \file codec.hpp
/// Byte-exact little-endian encoding for WAL payloads and snapshots. The
/// determinism contract requires identical seed + plan => byte-identical
/// WAL images, so every multi-byte value is written with a fixed width and
/// a fixed byte order, and doubles are written as their IEEE-754 bit
/// pattern (never through text formatting, which could round differently).

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace gridmon::store {

/// Append-only encoder over a byte string.
class Encoder {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
    }
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// IEEE-754 bit pattern; byte-identical across platforms and seeds.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.append(s);
  }

  const std::string& bytes() const noexcept { return bytes_; }
  std::string take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Bounds-checked decoder: every getter returns false instead of reading
/// past the end, so torn or truncated input degrades into a clean parse
/// failure rather than undefined behaviour.
class Decoder {
 public:
  explicit Decoder(std::string_view bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& out) {
    if (pos_ + 1 > bytes_.size()) return false;
    out = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool u32(std::uint32_t& out) {
    if (pos_ + 4 > bytes_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[pos_ + static_cast<std::size_t>(i)]))
             << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& out) {
    if (pos_ + 8 > bytes_.size()) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes_[pos_ + static_cast<std::size_t>(i)]))
             << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool i64(std::int64_t& out) {
    std::uint64_t raw = 0;
    if (!u64(raw)) return false;
    out = static_cast<std::int64_t>(raw);
    return true;
  }

  bool f64(double& out) {
    std::uint64_t raw = 0;
    if (!u64(raw)) return false;
    out = std::bit_cast<double>(raw);
    return true;
  }

  bool str(std::string& out) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (pos_ + len > bytes_.size()) return false;
    out.assign(bytes_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace gridmon::store
