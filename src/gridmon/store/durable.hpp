#pragma once

/// \file durable.hpp
/// The client side of the durability subsystem: the mode/cost knobs every
/// durable service shares ([store] in gridmon_run INI) and the Durable
/// interface a service implements so the Log engine can snapshot it and
/// replay its records without knowing the concrete state type.

#include <optional>
#include <string>
#include <string_view>

#include "gridmon/store/codec.hpp"

namespace gridmon::store {

/// How much a service's registry state survives a crash.
enum class DurabilityMode {
  Volatile,     // the paper's soft state: a crash loses everything
  Wal,          // append-only log, replayed in full on restart
  WalSnapshot,  // periodic snapshots + compacted log tail
};

constexpr const char* mode_name(DurabilityMode m) {
  switch (m) {
    case DurabilityMode::Volatile:
      return "volatile";
    case DurabilityMode::Wal:
      return "wal";
    case DurabilityMode::WalSnapshot:
      return "wal+snapshot";
  }
  return "?";
}

/// Parse "volatile" | "wal" | "wal+snapshot" (nullopt on anything else).
std::optional<DurabilityMode> parse_mode(std::string_view name);

/// The [store] knob set. Disk-shaped knobs (fsync latency, bandwidth) are
/// applied to the hosting machine's simulated disk; the rest steer the
/// Log engine itself.
struct StoreConfig {
  DurabilityMode mode = DurabilityMode::Volatile;
  /// Seconds per write barrier on the service host's disk.
  double fsync_latency = 0.008;
  /// Sequential WAL/snapshot write bandwidth, bytes/second.
  double write_bandwidth = 25e6;
  /// Appends arriving within this window share one write+fsync (group
  /// commit). Also the worst-case volume of acknowledged-but-lost work.
  double group_commit_window = 0.005;
  /// Seconds between snapshots (WalSnapshot mode only).
  double snapshot_interval = 60;
  /// CPU charged per record re-applied during recovery replay.
  double replay_cpu_per_record = 5e-5;

  bool enabled() const noexcept { return mode != DurabilityMode::Volatile; }
};

/// What the Log engine needs from a durable service. All three calls are
/// synchronous state transforms: the engine accounts for their disk and
/// CPU cost around them, so implementations must not touch the sim clock.
class Durable {
 public:
  virtual ~Durable() = default;

  /// Serialize the full current state (WalSnapshot compaction).
  virtual void write_snapshot(Encoder& out) const = 0;

  /// Rebuild state from a snapshot produced by write_snapshot. The caller
  /// guarantees the service's volatile state is empty beforehand.
  virtual void load_snapshot(Decoder& in) = 0;

  /// Re-apply one WAL record produced by the service's own appends.
  virtual void apply_record(Decoder& in) = 0;
};

/// The bytes that survive a crash: the durable WAL image plus the last
/// committed snapshot. Services keep this alive across crash()/restart()
/// (their crash hook clears volatile state only), which is how the
/// simulation models data that was on the platter when the process died.
struct StableImage {
  std::string wal;
  std::string snapshot;
  std::uint64_t snapshot_seq = 0;  // records <= this live in the snapshot
};

}  // namespace gridmon::store
