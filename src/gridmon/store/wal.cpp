#include "gridmon/store/wal.hpp"

#include <array>

#include "gridmon/store/codec.hpp"

namespace gridmon::store {
namespace {

/// Table for the reflected IEEE polynomial 0xEDB88320, built once.
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

std::uint32_t read_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t read_u64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[at + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, std::string_view data) {
  const auto& table = crc_table();
  crc ^= 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::string_view data) { return crc32_update(0, data); }

void append_frame(std::string& image, std::uint64_t seq,
                  std::string_view payload) {
  Encoder header;
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u64(seq);
  // CRC covers the seq bytes (offset 4..12 of the header) and the payload,
  // so a record replayed under the wrong sequence number also fails.
  std::uint32_t crc = crc32_update(0, header.bytes().substr(4, 8));
  crc = crc32_update(crc, payload);
  header.u32(crc);
  image += header.bytes();
  image += payload;
}

ReplayResult replay(
    std::string_view image,
    const std::function<void(std::uint64_t seq, std::string_view payload)>&
        apply) {
  ReplayResult r;
  std::size_t pos = 0;
  const std::size_t header = frame_overhead();
  while (pos < image.size()) {
    if (image.size() - pos < header) {
      r.status = ReplayStatus::TornTail;
      break;
    }
    std::uint32_t len = read_u32(image, pos);
    if (image.size() - pos - header < len) {
      r.status = ReplayStatus::TornTail;
      break;
    }
    std::uint64_t seq = read_u64(image, pos + 4);
    std::uint32_t stored_crc = read_u32(image, pos + 12);
    std::string_view payload = image.substr(pos + header, len);
    std::uint32_t crc = crc32_update(0, image.substr(pos + 4, 8));
    crc = crc32_update(crc, payload);
    if (crc != stored_crc) {
      r.status = ReplayStatus::Corrupt;
      break;
    }
    if (apply) apply(seq, payload);
    ++r.records;
    r.last_seq = seq;
    pos += header + len;
    r.valid_bytes = pos;
  }
  return r;
}

}  // namespace gridmon::store
