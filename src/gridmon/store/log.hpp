#pragma once

/// \file log.hpp
/// The durability engine: group-committed write-ahead log plus periodic
/// snapshots with log compaction, driven through the hosting machine's
/// simulated disk so every persistence byte and barrier shows up in the
/// cost model.
///
/// Write path: a service mutates its in-memory state, append()s one
/// framed record per mutation, and co_awaits commit() before
/// acknowledging the client. Appends arriving within group_commit_window
/// share a single sequential disk write + fsync; commit() is the barrier
/// that resumes once the caller's records are on the platter.
///
/// Crash path: crash() discards the un-flushed batch and keeps whatever
/// the in-flight write had physically reached the disk (a torn tail of
/// floor(elapsed * bandwidth) bytes, truncated again at replay). The
/// StableImage — durable WAL bytes plus the last committed snapshot —
/// survives in the Log object exactly like platter contents survive a
/// process death. recover() charges the disk read and per-record replay
/// CPU, reloads the snapshot, re-applies the WAL tail, and re-opens the
/// log for appends.

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "gridmon/host/host.hpp"
#include "gridmon/sim/task.hpp"
#include "gridmon/store/durable.hpp"
#include "gridmon/store/wal.hpp"

namespace gridmon::store {

/// Counters a bench or gridmon_run's [store] columns can read.
struct StoreStats {
  std::uint64_t appends = 0;           // records handed to the log
  std::uint64_t commits = 0;           // commit() barriers requested
  std::uint64_t flushes = 0;           // group-commit write+fsync cycles
  std::uint64_t snapshots = 0;         // snapshots committed
  std::uint64_t recoveries = 0;        // successful recover() runs
  std::uint64_t replayed_records = 0;  // records re-applied across recoveries
  std::uint64_t torn_truncations = 0;  // replays that cut a torn tail
  double last_replay_seconds = 0;      // disk+CPU time of the last recover()
  double wal_bytes = 0;                // durable WAL image size
  double snapshot_bytes = 0;           // last committed snapshot size
};

class Log {
 public:
  /// Binds the engine to its host (disk + CPU) and the client whose
  /// state it snapshots and replays. Retunes the host disk with the
  /// config's fsync/bandwidth knobs when durability is enabled.
  Log(host::Host& host, Durable& client, StoreConfig config);
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  const StoreConfig& config() const noexcept { return config_; }
  bool enabled() const noexcept { return config_.enabled(); }
  /// True between crash() and the end of recover(): appends are dropped.
  bool down() const noexcept { return down_; }

  /// Spawn the periodic snapshotter (WalSnapshot mode; no-op otherwise).
  void start();

  /// Frame and enqueue one record. Returns immediately; the record
  /// becomes durable at the next group-commit flush. Dropped while the
  /// log is down (crash clearing, recovery replay).
  void append(std::string payload);

  /// Awaitable barrier: resumes once every record appended before this
  /// call is durable (or immediately when durability is off / the log is
  /// down — callers re-check state after a crash anyway).
  struct CommitAwaiter {
    Log& log;
    std::uint64_t target;
    bool await_ready() const noexcept {
      return !log.enabled() || log.down_ || log.durable_seq_ >= target;
    }
    void await_suspend(std::coroutine_handle<> h) {
      log.waiters_.push_back(Waiter{target, h});
    }
    void await_resume() const noexcept {}
  };
  CommitAwaiter commit() noexcept {
    if (enabled()) ++stats_.commits;
    return CommitAwaiter{*this, next_seq_ - 1};
  }

  /// Process death: drop the pending batch, keep the torn prefix of the
  /// in-flight write, wake every commit waiter, and close for appends.
  void crash();

  /// Replay snapshot + WAL into the (cleared) client. Costs one
  /// sequential disk read plus replay_cpu_per_record per record.
  sim::Task<void> recover();

  const StoreStats& stats() const noexcept { return stats_; }
  /// The bytes that survive crashes — golden determinism tests compare
  /// this image across runs of the same seed.
  const StableImage& image() const noexcept { return image_; }

 private:
  struct Waiter {
    std::uint64_t seq;
    std::coroutine_handle<> h;
  };

  static sim::Task<void> run_flush(Log* self);
  static sim::Task<void> snapshot_loop(Log* self);
  static sim::Task<void> take_snapshot(Log* self);
  void begin_flush();
  void arm_timer();
  void resume_ready_waiters();

  host::Host& host_;
  Durable& client_;
  StoreConfig config_;
  StableImage image_;

  std::string pending_;  // framed records awaiting the next flush
  std::uint64_t pending_last_seq_ = 0;
  std::string flight_;  // batch currently on its way to the disk
  std::uint64_t flight_last_seq_ = 0;
  double flight_started_ = 0;
  bool flush_in_flight_ = false;
  bool timer_armed_ = false;
  bool down_ = false;
  /// Bumped by crash()/recover(); scheduled callbacks and in-flight
  /// flushes from an older epoch are no-ops when they fire.
  std::uint64_t epoch_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t durable_seq_ = 0;
  std::deque<Waiter> waiters_;
  StoreStats stats_;
};

}  // namespace gridmon::store
