#pragma once

/// \file collector.hpp
/// Causal span collection and resource timelines for one simulation.
///
/// Design constraints (see docs/TRACING.md):
///  * Zero cost when disabled: all hot-path entry points take a `Ctx`
///    and begin with an inline null test; no allocation, no virtual
///    call, no branch beyond that test ever runs for untraced code.
///  * Deterministic: span sequence numbers are allocated in event
///    order, trace ids derive from the simulation seed via splitmix64,
///    and all storage is append-only vectors — so the same seed yields
///    a byte-identical trace file, which the determinism tests exploit
///    as a whole-simulator regression check.

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gridmon/sim/probe.hpp"
#include "gridmon/sim/simulation.hpp"
#include "gridmon/trace/span.hpp"

namespace gridmon::trace {

/// Everything collected for one simulation run, detached from the
/// Simulation so it can outlive the Testbed (bench binaries merge the
/// TraceData of several runs into one trace file).
struct TraceData {
  std::vector<SpanRecord> spans;
  std::vector<CounterSample> counters;
  /// Interned detail / track names; index 0 is always the empty string.
  std::vector<std::string> names;

  const std::string& name(std::uint32_t id) const { return names[id]; }
};

/// One traced run labelled with the series it belongs to (e.g. "MDS
/// GRIS (nocache)"); the unit the exporters and reports consume.
struct SeriesTrace {
  std::string series;
  TraceData data;
};

class CounterTrack;

class Collector {
 public:
  /// `id_salt` seeds the trace-id stream (pass the workload seed so
  /// different seeds produce different trace ids).
  Collector(sim::Simulation& sim, std::uint64_t id_salt)
      : sim_(sim), id_salt_(id_salt) {
    names_.push_back("");
  }
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  bool enabled() const noexcept { return enabled_; }

  /// Gate collection to a measurement window. Enabling flushes the
  /// current value of every counter track so timelines have a defined
  /// value at the window start.
  void set_enabled(bool on);

  /// Start a new trace (one user query). Returns the Ctx for its root
  /// span's children — or the null Ctx while collection is disabled, so
  /// the whole query stays untraced.
  Ctx new_trace() {
    if (!enabled_) return Ctx{};
    std::uint64_t id = mix(id_salt_ + ++trace_count_);
    return Ctx{this, id, 0};
  }

  /// Open a span. Returns the span seq, or 0 if collection is off.
  std::uint32_t open(const Ctx& parent, SpanKind kind,
                     std::string_view detail = {}, double arg = 0);

  /// Close a span at the current simulated time. seq 0 is a no-op.
  void close(std::uint32_t seq);

  /// Overwrite a span's argument (e.g. response bytes known at close).
  void set_arg(std::uint32_t seq, double arg);

  /// Record an instant marker (zero-duration span), e.g. a refused
  /// connection.
  void instant(const Ctx& parent, SpanKind kind, std::string_view detail = {},
               double arg = 0);

  /// Create (or look up) a named resource timeline and return the probe
  /// to hang on a sim::PsServer or sim::Resource. Track lifetime equals
  /// the Collector's.
  CounterTrack& track(std::string_view name);

  const std::vector<SpanRecord>& spans() const noexcept { return spans_; }
  const std::vector<CounterSample>& counters() const noexcept {
    return counters_;
  }
  const std::string& name(std::uint32_t id) const { return names_[id]; }
  sim::Simulation& simulation() noexcept { return sim_; }

  /// Move the collected data out (spans still open keep end = -1).
  TraceData take();

 private:
  friend class CounterTrack;

  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::uint32_t intern(std::string_view s);

  sim::Simulation& sim_;
  std::uint64_t id_salt_;
  std::uint64_t trace_count_ = 0;
  bool enabled_ = false;
  std::uint32_t next_seq_ = 0;
  std::vector<SpanRecord> spans_;
  std::vector<CounterSample> counters_;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> intern_index_;
  std::deque<CounterTrack> tracks_;  // deque: stable addresses for probes
};

/// A resource timeline fed by the sim-layer UsageProbe hooks. Tracks
/// remember the latest value even while collection is disabled, so the
/// first sample of a measurement window carries the true initial state.
class CounterTrack final : public sim::UsageProbe {
 public:
  CounterTrack(Collector& col, std::uint32_t name_id)
      : col_(col), name_id_(name_id) {}

  void on_usage(sim::SimTime t, double active, double backlog) override {
    last_active_ = active;
    last_backlog_ = backlog;
    if (col_.enabled_) {
      col_.counters_.push_back(CounterSample{name_id_, t, active, backlog});
    }
  }

  std::uint32_t name_id() const noexcept { return name_id_; }

 private:
  friend class Collector;
  Collector& col_;
  std::uint32_t name_id_;
  double last_active_ = 0;
  double last_backlog_ = 0;
};

/// RAII span: opens on construction (no-op for the null Ctx), closes on
/// end() or destruction. `ctx()` is the context child spans should use.
class Span {
 public:
  Span() noexcept = default;
  Span(const Ctx& parent, SpanKind kind, std::string_view detail = {},
       double arg = 0)
      : ctx_(parent) {
    if (parent.col != nullptr) {
      seq_ = parent.col->open(parent, kind, detail, arg);
      if (seq_ != 0) ctx_.parent = seq_;
    }
  }
  Span(Span&& o) noexcept
      : ctx_(std::exchange(o.ctx_, Ctx{})), seq_(std::exchange(o.seq_, 0)) {}
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      end();
      ctx_ = std::exchange(o.ctx_, Ctx{});
      seq_ = std::exchange(o.seq_, 0);
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Context for child spans (this span as parent).
  const Ctx& ctx() const noexcept { return ctx_; }

  void set_arg(double arg) {
    if (seq_ != 0) ctx_.col->set_arg(seq_, arg);
  }

  void end() noexcept {
    if (seq_ != 0) {
      ctx_.col->close(seq_);
      seq_ = 0;
    }
  }

 private:
  Ctx ctx_;
  std::uint32_t seq_ = 0;
};

}  // namespace gridmon::trace
