#pragma once

/// \file reader.hpp
/// Read a Chrome trace_event JSON file written by chrome_export back
/// into SeriesTrace structures — the input side of `gridmon_trace`, and
/// the round-trip check used by the trace tests. The embedded JSON
/// parser handles the full JSON value grammar (objects, arrays,
/// strings with escapes, numbers, booleans, null); it simply has no
/// reason to be fast.

#include <istream>
#include <stdexcept>
#include <string>
#include <vector>

#include "gridmon/trace/collector.hpp"

namespace gridmon::trace {

class ReadError : public std::runtime_error {
 public:
  explicit ReadError(const std::string& m) : std::runtime_error(m) {}
};

/// Parse a trace file; throws ReadError on malformed input. Events with
/// unknown `ph` values or span names are skipped, so files annotated by
/// other tools still load.
std::vector<SeriesTrace> read_chrome_trace(std::istream& in);

}  // namespace gridmon::trace
