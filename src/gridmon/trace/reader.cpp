#include "gridmon/trace/reader.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <variant>

namespace gridmon::trace {
namespace {

// ---- Minimal JSON value model + recursive-descent parser ----

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }

  const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  const std::string& str() const { return std::get<std::string>(v); }
  double num() const { return std::get<double>(v); }

  const JsonValue* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = object().find(key);
    return it == object().end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ReadError("JSON parse error at byte " + std::to_string(pos_) +
                    ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue{true};
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue{false};
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{nullptr};
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      (*obj)[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{obj};
    }
  }

  JsonValue array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    for (;;) {
      arr->push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{arr};
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Our writer only escapes control characters; decode the BMP
          // code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    return JsonValue{std::stod(s_.substr(start, pos_ - start))};
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Intern a string into a TraceData name table.
std::uint32_t intern(TraceData& data,
                     std::map<std::string, std::uint32_t>& index,
                     const std::string& s) {
  if (s.empty()) return 0;
  auto it = index.find(s);
  if (it != index.end()) return it->second;
  data.names.push_back(s);
  auto id = static_cast<std::uint32_t>(data.names.size() - 1);
  index.emplace(s, id);
  return id;
}

}  // namespace

std::vector<SeriesTrace> read_chrome_trace(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  Parser parser(text);
  JsonValue root = parser.parse();

  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw ReadError("no traceEvents array");
  }

  struct Partial {
    SeriesTrace st;
    std::map<std::string, std::uint32_t> interned;
  };
  std::map<int, Partial> by_pid;  // keyed by pid, insertion-ordered by id
  auto slot = [&](int pid) -> Partial& {
    auto [it, inserted] = by_pid.try_emplace(pid);
    if (inserted) {
      it->second.st.series = "pid " + std::to_string(pid);
      it->second.st.data.names.push_back("");
    }
    return it->second;
  };

  for (const JsonValue& ev : events->array()) {
    const JsonValue* ph = ev.find("ph");
    const JsonValue* pid_v = ev.find("pid");
    if (ph == nullptr || !ph->is_string() || pid_v == nullptr) continue;
    int pid = pid_v->is_number() ? static_cast<int>(pid_v->num()) : 0;
    Partial& part = slot(pid);
    const JsonValue* name = ev.find("name");
    const JsonValue* args = ev.find("args");

    if (ph->str() == "M") {
      if (name != nullptr && name->str() == "process_name" &&
          args != nullptr) {
        if (const JsonValue* n = args->find("name"); n != nullptr) {
          part.st.series = n->str();
        }
      }
    } else if (ph->str() == "X") {
      if (name == nullptr || !name->is_string()) continue;
      SpanRecord rec;
      if (!kind_from_name(name->str(), rec.kind)) continue;
      const JsonValue* ts = ev.find("ts");
      const JsonValue* dur = ev.find("dur");
      if (ts == nullptr || dur == nullptr) continue;
      rec.start = ts->num() * 1e-6;
      rec.end = rec.start + dur->num() * 1e-6;
      if (args != nullptr) {
        if (const JsonValue* t = args->find("t"); t != nullptr) {
          rec.trace_id = t->is_string()
                             ? std::strtoull(t->str().c_str(), nullptr, 10)
                             : static_cast<std::uint64_t>(t->num());
        }
        if (const JsonValue* s = args->find("s"); s != nullptr) {
          rec.seq = static_cast<std::uint32_t>(s->num());
        }
        if (const JsonValue* p = args->find("p"); p != nullptr) {
          rec.parent = static_cast<std::uint32_t>(p->num());
        }
        if (const JsonValue* d = args->find("d"); d != nullptr) {
          rec.name_id = intern(part.st.data, part.interned, d->str());
        }
        if (const JsonValue* v = args->find("v"); v != nullptr) {
          rec.arg = v->num();
        }
      }
      part.st.data.spans.push_back(rec);
    } else if (ph->str() == "C") {
      if (name == nullptr || args == nullptr) continue;
      CounterSample c;
      c.track = intern(part.st.data, part.interned, name->str());
      if (const JsonValue* ts = ev.find("ts"); ts != nullptr) {
        c.t = ts->num() * 1e-6;
      }
      if (const JsonValue* a = args->find("active"); a != nullptr) {
        c.active = a->num();
      }
      if (const JsonValue* b = args->find("backlog"); b != nullptr) {
        c.backlog = b->num();
      }
      part.st.data.counters.push_back(c);
    }
  }

  std::vector<SeriesTrace> out;
  out.reserve(by_pid.size());
  for (auto& [pid, part] : by_pid) out.push_back(std::move(part.st));
  return out;
}

}  // namespace gridmon::trace
