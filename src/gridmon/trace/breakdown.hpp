#pragma once

/// \file breakdown.hpp
/// Per-stage latency attribution computed from collected spans.
///
/// Two time notions per span kind:
///  * inclusive — wall time between open and close; nested child spans
///    are counted again under their own kinds, so inclusive times do
///    not sum to the query latency.
///  * self — inclusive minus the union of child-span intervals; self
///    times of all kinds DO sum (approximately) to the root span's
///    inclusive time, which makes `share` a true attribution: "the
///    GRIS-nocache stack spends 93% of its latency in fork_exec".

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "gridmon/trace/collector.hpp"

namespace gridmon::trace {

/// Aggregate statistics for one span kind within one series.
struct KindStats {
  SpanKind kind = SpanKind::Query;
  std::uint64_t count = 0;
  double incl_total = 0;  ///< sum of inclusive durations (seconds)
  double incl_p50 = 0;
  double incl_p95 = 0;
  double incl_p99 = 0;
  double self_total = 0;  ///< sum of self times (seconds)
  double share = 0;  ///< self_total / sum of root-span inclusive time
};

/// Breakdown of one series, kinds ordered by descending self_total.
struct SeriesBreakdown {
  std::string series;
  std::uint64_t traces = 0;     ///< number of root (Query) spans
  double root_total = 0;        ///< summed inclusive time of root spans
  std::vector<KindStats> kinds;
};

/// Linear-interpolated percentile of an unsorted sample set (q in
/// [0,1]). Returns 0 for an empty set.
double percentile(std::vector<double> xs, double q);

/// Aggregate the spans of one series. Open spans (end < start) are
/// ignored.
SeriesBreakdown compute_breakdown(const SeriesTrace& st);

/// Render breakdowns as aligned text tables (one per series) — the
/// `gridmon_trace` report and the EXPERIMENTS.md attribution source.
void print_breakdown(std::ostream& os,
                     const std::vector<SeriesBreakdown>& breakdowns);

}  // namespace gridmon::trace
