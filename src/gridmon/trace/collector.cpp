#include "gridmon/trace/collector.hpp"

#include <algorithm>

namespace gridmon::trace {

const char* kind_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::Query: return "query";
    case SpanKind::Think: return "think";
    case SpanKind::ClientTool: return "client_tool";
    case SpanKind::Connect: return "connect";
    case SpanKind::RequestSend: return "request_send";
    case SpanKind::Refused: return "refused";
    case SpanKind::Backoff: return "backoff";
    case SpanKind::PoolWait: return "pool_wait";
    case SpanKind::Cpu: return "cpu";
    case SpanKind::CacheValidate: return "cache_validate";
    case SpanKind::Servlet: return "servlet";
    case SpanKind::LdapSearch: return "ldap_search";
    case SpanKind::SqlExecute: return "sql_execute";
    case SpanKind::ClassAdEval: return "classad_eval";
    case SpanKind::Collect: return "collect";
    case SpanKind::ForkExec: return "fork_exec";
    case SpanKind::CacheRefresh: return "cache_refresh";
    case SpanKind::Fetch: return "fetch";
    case SpanKind::Merge: return "merge";
    case SpanKind::RegistryLookup: return "registry_lookup";
    case SpanKind::ProducerSelect: return "producer_select";
    case SpanKind::ResponseSend: return "response_send";
    case SpanKind::NetTransfer: return "net_transfer";
    case SpanKind::Timeout: return "timeout";
    case SpanKind::Fault: return "fault";
  }
  return "unknown";
}

bool kind_from_name(const std::string& name, SpanKind& out) noexcept {
  static constexpr SpanKind kAll[] = {
      SpanKind::Query,         SpanKind::Think,        SpanKind::ClientTool,
      SpanKind::Connect,       SpanKind::RequestSend,  SpanKind::Refused,
      SpanKind::Backoff,       SpanKind::PoolWait,     SpanKind::Cpu,
      SpanKind::CacheValidate, SpanKind::Servlet,      SpanKind::LdapSearch,
      SpanKind::SqlExecute,    SpanKind::ClassAdEval,  SpanKind::Collect,
      SpanKind::ForkExec,      SpanKind::CacheRefresh, SpanKind::Fetch,
      SpanKind::Merge,         SpanKind::RegistryLookup,
      SpanKind::ProducerSelect, SpanKind::ResponseSend,
      SpanKind::NetTransfer,   SpanKind::Timeout,      SpanKind::Fault,
  };
  for (SpanKind k : kAll) {
    if (name == kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

void Collector::set_enabled(bool on) {
  if (on == enabled_) return;
  enabled_ = on;
  if (on) {
    // Timelines need a defined value at the window start: flush the
    // remembered state of every track.
    sim::SimTime now = sim_.now();
    for (const auto& t : tracks_) {
      counters_.push_back(
          CounterSample{t.name_id_, now, t.last_active_, t.last_backlog_});
    }
  }
}

std::uint32_t Collector::open(const Ctx& parent, SpanKind kind,
                              std::string_view detail, double arg) {
  if (!enabled_) return 0;
  SpanRecord rec;
  rec.trace_id = parent.trace_id;
  rec.seq = ++next_seq_;
  rec.parent = parent.parent;
  rec.kind = kind;
  rec.name_id = detail.empty() ? 0 : intern(detail);
  rec.start = sim_.now();
  rec.arg = arg;
  spans_.push_back(rec);
  return rec.seq;
}

void Collector::close(std::uint32_t seq) {
  // Seqs are dense (1, 2, ...) and spans_ is append-only, so the record
  // for seq lives at spans_[seq - 1]. A span opened before take() reset
  // the store cannot be closed afterwards; the bounds test drops it.
  if (seq == 0 || seq > spans_.size()) return;
  spans_[seq - 1].end = sim_.now();
}

void Collector::set_arg(std::uint32_t seq, double arg) {
  if (seq == 0 || seq > spans_.size()) return;
  spans_[seq - 1].arg = arg;
}

void Collector::instant(const Ctx& parent, SpanKind kind,
                        std::string_view detail, double arg) {
  std::uint32_t seq = open(parent, kind, detail, arg);
  close(seq);
}

CounterTrack& Collector::track(std::string_view name) {
  std::uint32_t id = intern(name);
  for (auto& t : tracks_) {
    if (t.name_id() == id) return t;
  }
  tracks_.emplace_back(*this, id);
  return tracks_.back();
}

std::uint32_t Collector::intern(std::string_view s) {
  auto it = intern_index_.find(s);
  if (it != intern_index_.end()) return it->second;
  names_.emplace_back(s);
  auto id = static_cast<std::uint32_t>(names_.size() - 1);
  intern_index_.emplace(std::string(s), id);
  return id;
}

TraceData Collector::take() {
  enabled_ = false;  // stale Span handles must not close into fresh seqs
  TraceData out;
  out.spans = std::move(spans_);
  out.counters = std::move(counters_);
  out.names = names_;  // copy: tracks keep their interned ids valid
  spans_.clear();
  counters_.clear();
  next_seq_ = 0;
  return out;
}

}  // namespace gridmon::trace
