#include "gridmon/trace/breakdown.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "gridmon/metrics/report.hpp"

namespace gridmon::trace {

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double pos = q * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= xs.size()) return xs.back();
  double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[lo + 1] - xs[lo]) * frac;
}

namespace {

struct Interval {
  double start;
  double end;
};

/// Total length of the union of intervals, clipped to [lo, hi].
double union_length(std::vector<Interval>& xs, double lo, double hi) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  double total = 0;
  double cur_lo = 0;
  double cur_hi = -1;
  for (const Interval& iv : xs) {
    double s = std::max(iv.start, lo);
    double e = std::min(iv.end, hi);
    if (e <= s) continue;
    if (cur_hi < cur_lo) {
      cur_lo = s;
      cur_hi = e;
    } else if (s <= cur_hi) {
      cur_hi = std::max(cur_hi, e);
    } else {
      total += cur_hi - cur_lo;
      cur_lo = s;
      cur_hi = e;
    }
  }
  if (cur_hi >= cur_lo) total += cur_hi - cur_lo;
  return total;
}

}  // namespace

SeriesBreakdown compute_breakdown(const SeriesTrace& st) {
  SeriesBreakdown out;
  out.series = st.series;

  const auto& spans = st.data.spans;

  // Span seqs are dense per collector run, so index children by parent
  // seq directly. Reader-built traces preserve seqs, so this holds for
  // both in-memory and round-tripped data.
  std::map<std::uint32_t, std::vector<Interval>> children;
  for (const SpanRecord& s : spans) {
    if (s.end < s.start) continue;  // still open: not attributable
    if (s.parent != 0) {
      children[s.parent].push_back(Interval{s.start, s.end});
    }
  }

  struct Accum {
    std::uint64_t count = 0;
    double incl_total = 0;
    double self_total = 0;
    std::vector<double> durations;
  };
  std::map<SpanKind, Accum> by_kind;

  for (const SpanRecord& s : spans) {
    if (s.end < s.start) continue;
    double incl = s.end - s.start;
    double covered = 0;
    if (auto it = children.find(s.seq); it != children.end()) {
      covered = union_length(it->second, s.start, s.end);
    }
    Accum& a = by_kind[s.kind];
    ++a.count;
    a.incl_total += incl;
    a.durations.push_back(incl);
    // Think spans also sit at the top level of a trace but are idle time
    // *between* queries: keep their duration stats, yet exclude them from
    // self-time attribution so shares stay fractions of query latency.
    if (s.parent != 0 || s.kind == SpanKind::Query) {
      a.self_total += std::max(0.0, incl - covered);
    }
    if (s.parent == 0 && s.kind == SpanKind::Query) {
      ++out.traces;
      out.root_total += incl;
    }
  }

  for (auto& [kind, a] : by_kind) {
    KindStats ks;
    ks.kind = kind;
    ks.count = a.count;
    ks.incl_total = a.incl_total;
    ks.incl_p50 = percentile(a.durations, 0.50);
    ks.incl_p95 = percentile(a.durations, 0.95);
    ks.incl_p99 = percentile(a.durations, 0.99);
    ks.self_total = a.self_total;
    ks.share = out.root_total > 0 ? a.self_total / out.root_total : 0;
    out.kinds.push_back(ks);
  }
  std::stable_sort(out.kinds.begin(), out.kinds.end(),
                   [](const KindStats& a, const KindStats& b) {
                     return a.self_total > b.self_total;
                   });
  return out;
}

void print_breakdown(std::ostream& os,
                     const std::vector<SeriesBreakdown>& breakdowns) {
  for (const SeriesBreakdown& bd : breakdowns) {
    metrics::Table table("latency breakdown: " + bd.series + "  (" +
                         std::to_string(bd.traces) + " traces)");
    table.set_columns({"stage", "count", "p50 ms", "p95 ms", "p99 ms",
                       "incl s", "self s", "share %"});
    for (const KindStats& ks : bd.kinds) {
      table.add_row({kind_name(ks.kind), std::to_string(ks.count),
                     metrics::Table::num(ks.incl_p50 * 1e3, 3),
                     metrics::Table::num(ks.incl_p95 * 1e3, 3),
                     metrics::Table::num(ks.incl_p99 * 1e3, 3),
                     metrics::Table::num(ks.incl_total, 3),
                     metrics::Table::num(ks.self_total, 3),
                     metrics::Table::num(ks.share * 100, 1)});
    }
    table.print_text(os);
    os << '\n';
  }
}

}  // namespace gridmon::trace
