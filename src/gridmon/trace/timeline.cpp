#include "gridmon/trace/timeline.hpp"

#include <algorithm>

#include "gridmon/trace/chrome_export.hpp"

namespace gridmon::trace {

void write_counters_csv(std::ostream& os,
                        const std::vector<SeriesTrace>& series) {
  os << "series,track,t,active,backlog\n";
  for (const SeriesTrace& st : series) {
    for (const CounterSample& c : st.data.counters) {
      os << st.series << ',' << st.data.name(c.track) << ','
         << format_us(c.t) << ',' << c.active << ',' << c.backlog << '\n';
    }
  }
}

double integrate_active(const TraceData& data, std::string_view track,
                        double t0, double t1, double cap) {
  if (t1 <= t0) return 0;

  // Find the track's name id (samples reference it by id).
  std::uint32_t track_id = 0;
  for (std::size_t i = 0; i < data.names.size(); ++i) {
    if (data.names[i] == track) {
      track_id = static_cast<std::uint32_t>(i);
      break;
    }
  }
  if (track_id == 0) return 0;

  auto clamp = [&](double v) { return cap > 0 ? std::min(v, cap) : v; };

  // Samples for one track arrive in time order (append-only, event
  // order), so a single pass suffices.
  double total = 0;
  double cur_t = t0;
  double cur_v = 0;
  bool have_value = false;
  for (const CounterSample& c : data.counters) {
    if (c.track != track_id) continue;
    if (c.t <= t0) {
      cur_v = c.active;
      have_value = true;
      continue;
    }
    if (!have_value) {
      // No sample at/before t0: backfill with the first observed value.
      cur_v = c.active;
      have_value = true;
    }
    if (c.t >= t1) break;
    total += clamp(cur_v) * (c.t - cur_t);
    cur_t = c.t;
    cur_v = c.active;
  }
  total += clamp(cur_v) * (t1 - cur_t);
  return total;
}

}  // namespace gridmon::trace
