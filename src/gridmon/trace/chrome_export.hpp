#pragma once

/// \file chrome_export.hpp
/// Chrome trace_event JSON emission. The output loads directly in
/// chrome://tracing and https://ui.perfetto.dev: one "process" per
/// series, one "thread" lane per trace (query), "X" complete events for
/// spans and "C" counter events for resource timelines.
///
/// The writer controls every byte (fixed field order, fixed float
/// formatting), so two runs with the same seed emit identical files —
/// the determinism tests diff the bytes, not parsed structures.

#include <ostream>
#include <vector>

#include "gridmon/trace/collector.hpp"

namespace gridmon::trace {

/// Emit all series into one trace file.
void write_chrome_trace(std::ostream& os,
                        const std::vector<SeriesTrace>& series);

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

/// Format a simulated time (seconds) as trace microseconds ("%.3f").
std::string format_us(double seconds);

}  // namespace gridmon::trace
