#pragma once

/// \file timeline.hpp
/// Resource timelines derived from counter samples: CSV export for
/// plotting and step-function integration used by the trace-vs-sampler
/// accounting test.

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "gridmon/trace/collector.hpp"

namespace gridmon::trace {

/// Dump counter samples as `series,track,t,active,backlog` rows.
void write_counters_csv(std::ostream& os,
                        const std::vector<SeriesTrace>& series);

/// Integrate min(active, cap) of the named track over [t0, t1],
/// treating samples as a right-continuous step function (each sample's
/// value holds until the next one). Returns value-seconds; divide by
/// (t1 - t0) * cap for a utilization fraction. `cap <= 0` means no
/// clamp. Before the first sample the value is taken as the first
/// sample's (the collector flushes initial values at window start, so
/// in practice a sample exists at or before t0).
double integrate_active(const TraceData& data, std::string_view track,
                        double t0, double t1, double cap = 0);

}  // namespace gridmon::trace
