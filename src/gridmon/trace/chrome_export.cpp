#include "gridmon/trace/chrome_export.hpp"

#include <cinttypes>
#include <cstdio>

namespace gridmon::trace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);
  return buf;
}

namespace {

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<SeriesTrace>& series) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  char buf[256];
  int pid = 0;
  for (const auto& st : series) {
    ++pid;
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
       << json_escape(st.series) << "\"}}";
    for (const auto& span : st.data.spans) {
      if (span.end < span.start) continue;  // still open at export: drop
      sep();
      // Lane = trace id truncated to keep tids readable; purely cosmetic
      // (the full id travels in args.t).
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"X\",\"pid\":%d,\"tid\":%" PRIu64
                    ",\"ts\":%s,\"dur\":%s,\"cat\":\"span\",\"name\":\"%s\"",
                    pid, span.trace_id % 100000,
                    format_us(span.start).c_str(),
                    format_us(span.end - span.start).c_str(),
                    kind_name(span.kind));
      os << buf;
      os << ",\"args\":{\"t\":\"" << span.trace_id << "\",\"s\":" << span.seq
         << ",\"p\":" << span.parent;
      if (span.name_id != 0) {
        os << ",\"d\":\"" << json_escape(st.data.name(span.name_id)) << "\"";
      }
      if (span.arg != 0) os << ",\"v\":" << format_value(span.arg);
      os << "}}";
    }
    for (const auto& c : st.data.counters) {
      sep();
      os << "{\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":0,\"ts\":"
         << format_us(c.t) << ",\"name\":\""
         << json_escape(st.data.name(c.track))
         << "\",\"args\":{\"active\":" << format_value(c.active)
         << ",\"backlog\":" << format_value(c.backlog) << "}}";
    }
  }
  os << "\n]}\n";
}

}  // namespace gridmon::trace
