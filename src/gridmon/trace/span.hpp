#pragma once

/// \file span.hpp
/// Span taxonomy and raw trace records.
///
/// A *trace* is one user query from first attempt to final success; a
/// *span* is one causal stage inside it (client tool startup, connect,
/// request transfer, thread-pool wait, CPU slice, substrate operation,
/// provider fork/exec, response transfer, ...). Records are plain data:
/// the Collector appends them in event order, which makes trace files a
/// deterministic function of the simulation seed.

#include <cstdint>
#include <string>

#include "gridmon/sim/event_queue.hpp"

namespace gridmon::trace {

class Collector;

/// The causal stages a query can spend time in. Stages nest (a
/// `fork_exec` happens inside a `query`), so per-kind totals overlap;
/// the breakdown report separates inclusive duration from self time.
enum class SpanKind : std::uint8_t {
  Query,         // root: first attempt -> final success, per user query
  Think,         // client think time between queries
  ClientTool,    // client tool startup + GSI/servlet handshake latency
  Connect,       // TCP connection establishment (SYN round trip)
  RequestSend,   // client -> server request transfer
  Refused,       // instant marker: connection refused at admission
  Backoff,       // kernel SYN-retransmission wait after a refusal
  PoolWait,      // waiting for a slapd/servlet/daemon thread-pool slot
  Cpu,           // generic CPU service slice
  CacheValidate, // GRIS backend freshness re-validation (polling waits)
  Servlet,       // Java servlet container dispatch latency
  LdapSearch,    // DIT walk + entry serialization (LDAP backend)
  SqlExecute,    // SQL parse/scan over producer or registry tables
  ClassAdEval,   // ClassAd constraint scan / matchmaking
  Collect,       // Hawkeye module collection sweep (no resident DB)
  ForkExec,      // fork+exec of an information-provider script
  CacheRefresh,  // GIIS pull of stale registrant slices
  Fetch,         // one server-to-server fetch during a cache refresh
  Merge,         // merging fetched entries into the aggregate DIT
  RegistryLookup,// R-GMA mediation step 1: which producers hold a table
  ProducerSelect,// R-GMA mediation step 2: select at one ProducerServlet
  ResponseSend,  // server -> client response transfer
  NetTransfer,   // any other network transfer (registration, advertise)
  Timeout,       // instant: a deadline expired (connect, transfer, query)
  Fault,         // instant: an injected fault was applied or reverted
};

/// Stable wire name of a span kind (used in exporters and reports).
const char* kind_name(SpanKind kind) noexcept;

/// Parse a wire name back into a kind; returns false for unknown names.
bool kind_from_name(const std::string& name, SpanKind& out) noexcept;

/// One closed (or still-open) span. `seq` is unique per Collector and
/// doubles as the span id; `parent` is the enclosing span's seq (0 for
/// trace roots). `end < 0` means the span was still open at export time.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint32_t seq = 0;
  std::uint32_t parent = 0;
  SpanKind kind = SpanKind::Query;
  std::uint32_t name_id = 0;  // interned detail string; 0 = none
  sim::SimTime start = 0;
  sim::SimTime end = -1;
  double arg = 0;  // kind-specific: bytes moved, ref-seconds, entries
};

/// One step of a resource timeline: the instrumented resource's
/// population (`active`) and queued backlog (`backlog`) changed at `t`.
struct CounterSample {
  std::uint32_t track = 0;  // interned track name
  sim::SimTime t = 0;
  double active = 0;
  double backlog = 0;
};

/// Lightweight trace context threaded through the coroutine call chain.
/// A default-constructed Ctx is the *null* context: every trace
/// operation on it is an inline pointer test and nothing else, which is
/// what makes tracing zero-cost when disabled.
struct Ctx {
  Collector* col = nullptr;
  std::uint64_t trace_id = 0;
  std::uint32_t parent = 0;

  explicit operator bool() const noexcept { return col != nullptr; }
};

}  // namespace gridmon::trace
