#include "gridmon/core/scenario_spec.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "gridmon/core/adapters.hpp"
#include "gridmon/core/scenarios.hpp"

namespace gridmon::core {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

[[noreturn]] void bad_variant(const ScenarioSpec& spec) {
  throw ConfigError("service '" + spec.service_name() +
                    "' cannot answer the requested query variant");
}

/// Providers for a GRIS with the spec's overrides applied.
std::vector<mds::ProviderSpec> spec_providers(const ScenarioSpec& spec) {
  auto providers = default_providers(spec.collectors);
  for (auto& p : providers) {
    if (spec.provider_ttl > 0) p.cache_ttl = spec.provider_ttl;
    if (spec.provider_entries > 0) p.entries = spec.provider_entries;
    if (spec.provider_bytes > 0) p.bytes_per_entry = spec.provider_bytes;
  }
  return providers;
}

mds::QueryScope giis_scope(const ScenarioSpec& spec,
                           mds::QueryScope def) {
  switch (spec.query) {
    case QueryVariant::Default:
      return def;
    case QueryVariant::ScopeAll:
      return mds::QueryScope::All;
    case QueryVariant::ScopePart:
      return mds::QueryScope::Part;
    default:
      bad_variant(spec);
  }
}

}  // namespace

std::string ScenarioSpec::server_host() const {
  switch (service) {
    case ServiceKind::Gris:
    case ServiceKind::GrisNocache:
      return gris_host;
    case ServiceKind::Giis:
    case ServiceKind::GiisAggregate:
      return "lucky0";
    case ServiceKind::Hierarchy:
      // The flat series measures the root; the two-level series reports
      // one site server (the first mid lives on lucky1).
      return two_level ? "lucky1" : "lucky0";
    case ServiceKind::Agent:
      return "lucky4";
    case ServiceKind::Manager:
    case ServiceKind::ManagerAggregate:
    case ServiceKind::RgmaMediated:
    case ServiceKind::RgmaDirect:
    case ServiceKind::RgmaStandalone:
    case ServiceKind::RgmaComposite:
    case ServiceKind::StreamFanout:
    case ServiceKind::RgmaReplicated:
      return "lucky3";
    case ServiceKind::Registry:
      return "lucky1";
  }
  return "lucky0";
}

std::string ScenarioSpec::service_name() const {
  switch (service) {
    case ServiceKind::Gris:
      return "MDS GRIS (cache)";
    case ServiceKind::GrisNocache:
      return "MDS GRIS (nocache)";
    case ServiceKind::Giis:
      return "MDS GIIS";
    case ServiceKind::Agent:
      return "Hawkeye Agent";
    case ServiceKind::Manager:
      return "Hawkeye Manager";
    case ServiceKind::Registry:
      return "R-GMA Registry";
    case ServiceKind::RgmaMediated:
      return "R-GMA ProducerServlet (mediated)";
    case ServiceKind::RgmaDirect:
      return "R-GMA ProducerServlet (direct)";
    case ServiceKind::RgmaStandalone:
      return "R-GMA ProducerServlet (standalone)";
    case ServiceKind::GiisAggregate:
      return "MDS GIIS (aggregate)";
    case ServiceKind::ManagerAggregate:
      return "Hawkeye Manager (aggregate)";
    case ServiceKind::Hierarchy:
      return two_level ? "MDS GIIS (two-level)" : "MDS GIIS (flat)";
    case ServiceKind::RgmaComposite:
      return "R-GMA CompositeProducer";
    case ServiceKind::StreamFanout:
      return "R-GMA streaming fan-out";
    case ServiceKind::RgmaReplicated:
      return "R-GMA ProducerServlet (replicated)";
  }
  return "?";
}

namespace {

std::unique_ptr<Scenario> build_scenario(Testbed& tb,
                                         const ScenarioSpec& spec) {
  switch (spec.service) {
    case ServiceKind::Gris:
    case ServiceKind::GrisNocache: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      mds::GrisConfig gc;
      gc.cache_enabled = spec.service == ServiceKind::Gris;
      if (spec.gris_backlog > 0) gc.backlog = spec.gris_backlog;
      auto s = std::make_unique<GrisScenario>(tb, spec_providers(spec), gc,
                                              spec.gris_host);
      s->set_query(query_gris(*s->gris));
      return s;
    }
    case ServiceKind::Giis: {
      auto s = std::make_unique<GiisScenario>(
          tb, spec.gris_count, spec.collectors,
          spec.cachettl > 0 ? spec.cachettl : 1e18);
      s->set_query(
          query_giis(*s->giis, giis_scope(spec, mds::QueryScope::Part)));
      return s;
    }
    case ServiceKind::Agent: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      auto s = std::make_unique<AgentScenario>(tb, spec.collectors);
      s->set_query(query_agent(*s->agent));
      return s;
    }
    case ServiceKind::Manager: {
      hawkeye::ManagerConfig config;
      if (spec.manager_ad_lifetime > 0) {
        config.ad_lifetime = spec.manager_ad_lifetime;
      }
      if (spec.manager_stale_after > 0) {
        config.stale_after = spec.manager_stale_after;
      }
      config.store = spec.store;
      auto s = std::make_unique<ManagerScenario>(tb, spec.collectors, config);
      switch (spec.query) {
        case QueryVariant::Default:
          s->set_query(query_manager_status(*s->manager));
          break;
        case QueryVariant::ManagerDump:
          s->set_query(query_manager_dump(*s->manager));
          break;
        case QueryVariant::ManagerConstraint:
          s->set_query(query_manager_constraint(*s->manager, spec.constraint));
          break;
        default:
          bad_variant(spec);
      }
      return s;
    }
    case ServiceKind::Registry: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      rgma::RegistryConfig config;
      config.store = spec.store;
      auto s = std::make_unique<RegistryScenario>(
          tb, spec.servlets, spec.producers_each, std::move(config));
      s->set_query(query_registry(*s->registry, spec.table));
      return s;
    }
    case ServiceKind::RgmaMediated: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      auto s = std::make_unique<RgmaScenario>(
          tb, spec.collectors,
          spec.lucky_clients ? RgmaScenario::Consumers::PerLuckyNode
                             : RgmaScenario::Consumers::SingleAtUc);
      s->set_query(s->mediated_query(spec.table));
      return s;
    }
    case ServiceKind::RgmaDirect: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      auto s = std::make_unique<RgmaScenario>(tb, spec.collectors,
                                              RgmaScenario::Consumers::None);
      s->set_query(s->direct_query(spec.table));
      return s;
    }
    case ServiceKind::RgmaStandalone: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      rgma::ProducerServletConfig config;
      if (spec.ps_stale_after > 0) config.stale_after = spec.ps_stale_after;
      auto s = std::make_unique<StandaloneRgmaScenario>(
          tb, spec.collectors, config, spec.self_publish_interval);
      s->set_query(query_producer_servlet(*s->servlet, spec.table));
      return s;
    }
    case ServiceKind::GiisAggregate: {
      auto s = std::make_unique<GiisAggregationScenario>(tb, spec.gris_count,
                                                         spec.collectors);
      s->set_query(
          query_giis(*s->giis, giis_scope(spec, mds::QueryScope::All)));
      return s;
    }
    case ServiceKind::ManagerAggregate: {
      hawkeye::ManagerConfig config;
      config.store = spec.store;
      auto s = std::make_unique<ManagerAggregationScenario>(
          tb, spec.machines, spec.collectors, std::move(config));
      switch (spec.query) {
        case QueryVariant::Default:
        case QueryVariant::ManagerConstraint:
          // Worst case: a constraint no Startd ad satisfies forces a scan
          // of every resident ClassAd.
          s->set_query(query_manager_constraint(*s->manager, spec.constraint));
          break;
        case QueryVariant::ManagerDump:
          s->set_query(query_manager_dump(*s->manager));
          break;
        default:
          bad_variant(spec);
      }
      return s;
    }
    case ServiceKind::Hierarchy: {
      auto s = std::make_unique<HierarchyScenario>(
          tb, spec.gris_count, spec.two_level,
          spec.cachettl > 0 ? spec.cachettl : 45.0);
      bool routed = spec.query == QueryVariant::SiteRouted ||
                    (spec.query == QueryVariant::Default && spec.two_level);
      if (routed) {
        if (!spec.two_level) bad_variant(spec);
        s->set_query(s->site_routed_query());
      } else {
        s->set_query(
            query_giis(*s->root, giis_scope(spec, mds::QueryScope::Part)));
      }
      return s;
    }
    case ServiceKind::RgmaComposite: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      auto s = std::make_unique<CompositeScenario>(tb, spec.sources);
      auto* composite = s->composite.get();
      s->set_query([composite](net::Interface& client,
                               trace::Ctx) -> sim::Task<QueryAttempt> {
        auto r = co_await composite->client_query(client);
        co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                               r.failed, r.stale};
      });
      return s;
    }
    case ServiceKind::StreamFanout: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      // Push-only: no pull query to bind; query_fn() stays empty.
      return std::make_unique<FanoutScenario>(tb, spec.subscribers);
    }
    case ServiceKind::RgmaReplicated: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      auto s = std::make_unique<ReplicatedRgmaScenario>(tb, spec.replicas,
                                                        spec.pool_size);
      s->set_query(s->balanced_query(spec.table));
      return s;
    }
  }
  throw ConfigError("unhandled service kind");
}

}  // namespace

std::unique_ptr<Scenario> make_scenario(Testbed& tb,
                                        const ScenarioSpec& spec) {
  auto s = build_scenario(tb, spec);
  if (spec.resilience.enabled) s->apply_resilience(spec.resilience);
  return s;
}

std::map<std::string, std::map<std::string, std::string>> parse_ini(
    const std::string& text) {
  std::map<std::string, std::map<std::string, std::string>> out;
  std::string section;
  std::stringstream ss(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(ss, raw)) {
    ++line_no;
    // Strip inline comments (';' or '#').
    std::size_t cut = raw.find_first_of(";#");
    std::string line = trim(cut == std::string::npos ? raw
                                                     : raw.substr(0, cut));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw ConfigError("line " + std::to_string(line_no) +
                          ": malformed section header");
      }
      section = lower(trim(line.substr(1, line.size() - 2)));
      out[section];
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("line " + std::to_string(line_no) +
                        ": expected key = value");
    }
    std::string key = lower(trim(line.substr(0, eq)));
    std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      throw ConfigError("line " + std::to_string(line_no) +
                        ": empty key or value");
    }
    if (section.empty()) {
      throw ConfigError("line " + std::to_string(line_no) +
                        ": key before any [section]");
    }
    out[section][key] = value;
  }
  return out;
}

}  // namespace gridmon::core
