#include "gridmon/core/scenario_spec.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "gridmon/core/adapters.hpp"
#include "gridmon/core/scenarios.hpp"

namespace gridmon::core {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::vector<int> parse_int_list(const std::string& value, int line_no) {
  std::vector<int> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    try {
      std::size_t used = 0;
      int v = std::stoi(item, &used);
      if (used != item.size() || v <= 0) throw std::invalid_argument(item);
      out.push_back(v);
    } catch (const std::exception&) {
      throw ConfigError("line " + std::to_string(line_no) +
                        ": bad integer '" + item + "'");
    }
  }
  if (out.empty()) {
    throw ConfigError("line " + std::to_string(line_no) + ": empty list");
  }
  return out;
}

double parse_double(const std::string& value, int line_no) {
  try {
    std::size_t used = 0;
    double v = std::stod(value, &used);
    if (used != value.size() || v < 0) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw ConfigError("line " + std::to_string(line_no) + ": bad number '" +
                      value + "'");
  }
}

bool parse_bool(const std::string& value) {
  std::string v = lower(value);
  if (v == "true" || v == "yes" || v == "1" || v == "on") return true;
  if (v == "false" || v == "no" || v == "0" || v == "off") return false;
  throw ConfigError("expected a boolean, got '" + value + "'");
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Expect exactly `n` comma-separated fields for fault key `key`.
std::vector<std::string> fault_fields(const std::string& key,
                                      const std::string& value,
                                      std::size_t n) {
  auto fields = split_list(value);
  if (fields.size() != n) {
    throw ConfigError("[faults] " + key + " needs " + std::to_string(n) +
                      " comma-separated fields, got " +
                      std::to_string(fields.size()));
  }
  return fields;
}

void parse_fault_key(ScenarioSpec& spec, const std::string& key,
                     const std::string& value) {
  const int n = 0;
  if (key == "crash" || key == "blackhole") {
    auto f = fault_fields(key, value, 3);
    spec.faults.crash(f[0], parse_double(f[1], n), parse_double(f[2], n),
                      key == "blackhole");
  } else if (key == "partition") {
    auto f = fault_fields(key, value, 4);
    spec.faults.partition(f[0], f[1], parse_double(f[2], n),
                          parse_double(f[3], n));
  } else if (key == "degrade") {
    auto f = fault_fields(key, value, 5);
    spec.faults.degrade_wan(f[0], f[1], parse_double(f[2], n),
                            parse_double(f[3], n), parse_double(f[4], n));
  } else if (key == "slow_host") {
    auto f = fault_fields(key, value, 4);
    spec.faults.slow_host(f[0], parse_double(f[1], n), parse_double(f[2], n),
                          parse_double(f[3], n));
  } else if (key == "collector_outage") {
    auto f = fault_fields(key, value, 3);
    spec.faults.collector_outage(f[0], parse_double(f[1], n),
                                 parse_double(f[2], n));
  } else if (key == "query_deadline") {
    spec.query_deadline = parse_double(value, n);
  } else if (key == "max_attempts") {
    spec.max_attempts = static_cast<int>(parse_double(value, n));
  } else {
    throw ConfigError("unknown key '" + key + "' in [faults]");
  }
}

void parse_resilience_key(ScenarioSpec& spec, const std::string& key,
                          const std::string& value) {
  const int n = 0;
  auto& r = spec.resilience;
  if (key == "enabled") {
    bool on = parse_bool(value);
    r.enabled = on;
    r.client.enabled = on;
    r.server.enabled = on;
  } else if (key == "client") {
    r.client.enabled = parse_bool(value);
    r.enabled = r.client.enabled || r.server.enabled;
  } else if (key == "server") {
    r.server.enabled = parse_bool(value);
    r.enabled = r.client.enabled || r.server.enabled;
  } else if (key == "retry_budget") {
    r.client.budget.capacity = parse_double(value, n);
  } else if (key == "retry_ratio") {
    r.client.budget.fill_ratio = parse_double(value, n);
  } else if (key == "breaker_window") {
    r.client.breaker.window =
        static_cast<std::size_t>(parse_int_list(value, n).front());
  } else if (key == "breaker_min_samples") {
    r.client.breaker.min_samples =
        static_cast<std::size_t>(parse_int_list(value, n).front());
  } else if (key == "breaker_threshold") {
    r.client.breaker.failure_threshold = parse_double(value, n);
  } else if (key == "breaker_open_secs") {
    r.client.breaker.open_duration = parse_double(value, n);
  } else if (key == "breaker_probes") {
    r.client.breaker.half_open_probes =
        static_cast<std::size_t>(parse_int_list(value, n).front());
  } else if (key == "discipline") {
    try {
      r.server.discipline = resilience::parse_discipline(lower(value));
    } catch (const std::invalid_argument& e) {
      throw ConfigError(e.what());
    }
  } else if (key == "queue_limit") {
    r.server.queue_limit =
        static_cast<std::size_t>(parse_int_list(value, n).front());
  } else if (key == "deadline_budget") {
    r.server.deadline_budget = parse_double(value, n);
  } else if (key == "serve_stale") {
    r.server.serve_stale = parse_bool(value);
  } else if (key == "pressure") {
    r.server.pressure_threshold = parse_double(value, n);
  } else if (key == "goodput_deadline") {
    spec.goodput_deadline = parse_double(value, n);
  } else {
    throw ConfigError("unknown key '" + key + "' in [resilience]");
  }
}

void parse_store_key(ScenarioSpec& spec, const std::string& key,
                     const std::string& value) {
  const int n = 0;
  if (key == "mode") {
    auto mode = store::parse_mode(lower(value));
    if (!mode) {
      throw ConfigError("unknown durability mode '" + value +
                        "' (volatile | wal | wal+snapshot)");
    }
    spec.store.mode = *mode;
  } else if (key == "fsync_latency") {
    spec.store.fsync_latency = parse_double(value, n);
  } else if (key == "write_bandwidth") {
    spec.store.write_bandwidth = parse_double(value, n);
  } else if (key == "group_commit_window") {
    spec.store.group_commit_window = parse_double(value, n);
  } else if (key == "snapshot_interval") {
    spec.store.snapshot_interval = parse_double(value, n);
  } else if (key == "replay_cpu_per_record") {
    spec.store.replay_cpu_per_record = parse_double(value, n);
  } else {
    throw ConfigError("unknown key '" + key + "' in [store]");
  }
}

ServiceKind parse_service(const std::string& value, int line_no) {
  static const std::map<std::string, ServiceKind> kNames = {
      {"gris", ServiceKind::Gris},
      {"gris-nocache", ServiceKind::GrisNocache},
      {"giis", ServiceKind::Giis},
      {"agent", ServiceKind::Agent},
      {"manager", ServiceKind::Manager},
      {"registry", ServiceKind::Registry},
      {"rgma-mediated", ServiceKind::RgmaMediated},
      {"rgma-direct", ServiceKind::RgmaDirect},
      {"rgma-standalone", ServiceKind::RgmaStandalone},
      {"giis-aggregate", ServiceKind::GiisAggregate},
      {"manager-aggregate", ServiceKind::ManagerAggregate},
      {"hierarchy", ServiceKind::Hierarchy},
      {"rgma-composite", ServiceKind::RgmaComposite},
      {"stream-fanout", ServiceKind::StreamFanout},
      {"rgma-replicated", ServiceKind::RgmaReplicated},
  };
  auto it = kNames.find(lower(value));
  if (it == kNames.end()) {
    throw ConfigError("line " + std::to_string(line_no) +
                      ": unknown service '" + value + "'");
  }
  return it->second;
}

QueryVariant parse_query(const std::string& value) {
  static const std::map<std::string, QueryVariant> kNames = {
      {"default", QueryVariant::Default},
      {"all", QueryVariant::ScopeAll},
      {"part", QueryVariant::ScopePart},
      {"dump", QueryVariant::ManagerDump},
      {"constraint", QueryVariant::ManagerConstraint},
      {"site-routed", QueryVariant::SiteRouted},
  };
  auto it = kNames.find(lower(value));
  if (it == kNames.end()) {
    throw ConfigError("unknown query variant '" + value + "'");
  }
  return it->second;
}

[[noreturn]] void bad_variant(const ScenarioSpec& spec) {
  throw ConfigError("service '" + spec.service_name() +
                    "' cannot answer the requested query variant");
}

/// Providers for a GRIS with the spec's overrides applied.
std::vector<mds::ProviderSpec> spec_providers(const ScenarioSpec& spec) {
  auto providers = default_providers(spec.collectors);
  for (auto& p : providers) {
    if (spec.provider_ttl > 0) p.cache_ttl = spec.provider_ttl;
    if (spec.provider_entries > 0) p.entries = spec.provider_entries;
    if (spec.provider_bytes > 0) p.bytes_per_entry = spec.provider_bytes;
  }
  return providers;
}

mds::QueryScope giis_scope(const ScenarioSpec& spec,
                           mds::QueryScope def) {
  switch (spec.query) {
    case QueryVariant::Default:
      return def;
    case QueryVariant::ScopeAll:
      return mds::QueryScope::All;
    case QueryVariant::ScopePart:
      return mds::QueryScope::Part;
    default:
      bad_variant(spec);
  }
}

}  // namespace

std::string ScenarioSpec::server_host() const {
  switch (service) {
    case ServiceKind::Gris:
    case ServiceKind::GrisNocache:
      return gris_host;
    case ServiceKind::Giis:
    case ServiceKind::GiisAggregate:
      return "lucky0";
    case ServiceKind::Hierarchy:
      // The flat series measures the root; the two-level series reports
      // one site server (the first mid lives on lucky1).
      return two_level ? "lucky1" : "lucky0";
    case ServiceKind::Agent:
      return "lucky4";
    case ServiceKind::Manager:
    case ServiceKind::ManagerAggregate:
    case ServiceKind::RgmaMediated:
    case ServiceKind::RgmaDirect:
    case ServiceKind::RgmaStandalone:
    case ServiceKind::RgmaComposite:
    case ServiceKind::StreamFanout:
    case ServiceKind::RgmaReplicated:
      return "lucky3";
    case ServiceKind::Registry:
      return "lucky1";
  }
  return "lucky0";
}

std::string ScenarioSpec::service_name() const {
  switch (service) {
    case ServiceKind::Gris:
      return "MDS GRIS (cache)";
    case ServiceKind::GrisNocache:
      return "MDS GRIS (nocache)";
    case ServiceKind::Giis:
      return "MDS GIIS";
    case ServiceKind::Agent:
      return "Hawkeye Agent";
    case ServiceKind::Manager:
      return "Hawkeye Manager";
    case ServiceKind::Registry:
      return "R-GMA Registry";
    case ServiceKind::RgmaMediated:
      return "R-GMA ProducerServlet (mediated)";
    case ServiceKind::RgmaDirect:
      return "R-GMA ProducerServlet (direct)";
    case ServiceKind::RgmaStandalone:
      return "R-GMA ProducerServlet (standalone)";
    case ServiceKind::GiisAggregate:
      return "MDS GIIS (aggregate)";
    case ServiceKind::ManagerAggregate:
      return "Hawkeye Manager (aggregate)";
    case ServiceKind::Hierarchy:
      return two_level ? "MDS GIIS (two-level)" : "MDS GIIS (flat)";
    case ServiceKind::RgmaComposite:
      return "R-GMA CompositeProducer";
    case ServiceKind::StreamFanout:
      return "R-GMA streaming fan-out";
    case ServiceKind::RgmaReplicated:
      return "R-GMA ProducerServlet (replicated)";
  }
  return "?";
}

namespace {

std::unique_ptr<Scenario> build_scenario(Testbed& tb,
                                         const ScenarioSpec& spec) {
  switch (spec.service) {
    case ServiceKind::Gris:
    case ServiceKind::GrisNocache: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      mds::GrisConfig gc;
      gc.cache_enabled = spec.service == ServiceKind::Gris;
      if (spec.gris_backlog > 0) gc.backlog = spec.gris_backlog;
      auto s = std::make_unique<GrisScenario>(tb, spec_providers(spec), gc,
                                              spec.gris_host);
      s->set_query(query_gris(*s->gris));
      return s;
    }
    case ServiceKind::Giis: {
      auto s = std::make_unique<GiisScenario>(
          tb, spec.gris_count, spec.collectors,
          spec.cachettl > 0 ? spec.cachettl : 1e18);
      s->set_query(
          query_giis(*s->giis, giis_scope(spec, mds::QueryScope::Part)));
      return s;
    }
    case ServiceKind::Agent: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      auto s = std::make_unique<AgentScenario>(tb, spec.collectors);
      s->set_query(query_agent(*s->agent));
      return s;
    }
    case ServiceKind::Manager: {
      hawkeye::ManagerConfig config;
      if (spec.manager_ad_lifetime > 0) {
        config.ad_lifetime = spec.manager_ad_lifetime;
      }
      if (spec.manager_stale_after > 0) {
        config.stale_after = spec.manager_stale_after;
      }
      config.store = spec.store;
      auto s = std::make_unique<ManagerScenario>(tb, spec.collectors, config);
      switch (spec.query) {
        case QueryVariant::Default:
          s->set_query(query_manager_status(*s->manager));
          break;
        case QueryVariant::ManagerDump:
          s->set_query(query_manager_dump(*s->manager));
          break;
        case QueryVariant::ManagerConstraint:
          s->set_query(query_manager_constraint(*s->manager, spec.constraint));
          break;
        default:
          bad_variant(spec);
      }
      return s;
    }
    case ServiceKind::Registry: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      rgma::RegistryConfig config;
      config.store = spec.store;
      auto s = std::make_unique<RegistryScenario>(
          tb, spec.servlets, spec.producers_each, std::move(config));
      s->set_query(query_registry(*s->registry, spec.table));
      return s;
    }
    case ServiceKind::RgmaMediated: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      auto s = std::make_unique<RgmaScenario>(
          tb, spec.collectors,
          spec.lucky_clients ? RgmaScenario::Consumers::PerLuckyNode
                             : RgmaScenario::Consumers::SingleAtUc);
      s->set_query(s->mediated_query(spec.table));
      return s;
    }
    case ServiceKind::RgmaDirect: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      auto s = std::make_unique<RgmaScenario>(tb, spec.collectors,
                                              RgmaScenario::Consumers::None);
      s->set_query(s->direct_query(spec.table));
      return s;
    }
    case ServiceKind::RgmaStandalone: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      rgma::ProducerServletConfig config;
      if (spec.ps_stale_after > 0) config.stale_after = spec.ps_stale_after;
      auto s = std::make_unique<StandaloneRgmaScenario>(
          tb, spec.collectors, config, spec.self_publish_interval);
      s->set_query(query_producer_servlet(*s->servlet, spec.table));
      return s;
    }
    case ServiceKind::GiisAggregate: {
      auto s = std::make_unique<GiisAggregationScenario>(tb, spec.gris_count,
                                                         spec.collectors);
      s->set_query(
          query_giis(*s->giis, giis_scope(spec, mds::QueryScope::All)));
      return s;
    }
    case ServiceKind::ManagerAggregate: {
      hawkeye::ManagerConfig config;
      config.store = spec.store;
      auto s = std::make_unique<ManagerAggregationScenario>(
          tb, spec.machines, spec.collectors, std::move(config));
      switch (spec.query) {
        case QueryVariant::Default:
        case QueryVariant::ManagerConstraint:
          // Worst case: a constraint no Startd ad satisfies forces a scan
          // of every resident ClassAd.
          s->set_query(query_manager_constraint(*s->manager, spec.constraint));
          break;
        case QueryVariant::ManagerDump:
          s->set_query(query_manager_dump(*s->manager));
          break;
        default:
          bad_variant(spec);
      }
      return s;
    }
    case ServiceKind::Hierarchy: {
      auto s = std::make_unique<HierarchyScenario>(
          tb, spec.gris_count, spec.two_level,
          spec.cachettl > 0 ? spec.cachettl : 45.0);
      bool routed = spec.query == QueryVariant::SiteRouted ||
                    (spec.query == QueryVariant::Default && spec.two_level);
      if (routed) {
        if (!spec.two_level) bad_variant(spec);
        s->set_query(s->site_routed_query());
      } else {
        s->set_query(
            query_giis(*s->root, giis_scope(spec, mds::QueryScope::Part)));
      }
      return s;
    }
    case ServiceKind::RgmaComposite: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      auto s = std::make_unique<CompositeScenario>(tb, spec.sources);
      auto* composite = s->composite.get();
      s->set_query([composite](net::Interface& client,
                               trace::Ctx) -> sim::Task<QueryAttempt> {
        auto r = co_await composite->client_query(client);
        co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                               r.failed, r.stale};
      });
      return s;
    }
    case ServiceKind::StreamFanout: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      // Push-only: no pull query to bind; query_fn() stays empty.
      return std::make_unique<FanoutScenario>(tb, spec.subscribers);
    }
    case ServiceKind::RgmaReplicated: {
      if (spec.query != QueryVariant::Default) bad_variant(spec);
      auto s = std::make_unique<ReplicatedRgmaScenario>(tb, spec.replicas,
                                                        spec.pool_size);
      s->set_query(s->balanced_query(spec.table));
      return s;
    }
  }
  throw ConfigError("unhandled service kind");
}

}  // namespace

std::unique_ptr<Scenario> make_scenario(Testbed& tb,
                                        const ScenarioSpec& spec) {
  auto s = build_scenario(tb, spec);
  if (spec.resilience.enabled) s->apply_resilience(spec.resilience);
  return s;
}

std::map<std::string, std::map<std::string, std::string>> parse_ini(
    const std::string& text) {
  std::map<std::string, std::map<std::string, std::string>> out;
  std::string section;
  std::stringstream ss(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(ss, raw)) {
    ++line_no;
    // Strip inline comments (';' or '#').
    std::size_t cut = raw.find_first_of(";#");
    std::string line = trim(cut == std::string::npos ? raw
                                                     : raw.substr(0, cut));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw ConfigError("line " + std::to_string(line_no) +
                          ": malformed section header");
      }
      section = lower(trim(line.substr(1, line.size() - 2)));
      out[section];
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("line " + std::to_string(line_no) +
                        ": expected key = value");
    }
    std::string key = lower(trim(line.substr(0, eq)));
    std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      throw ConfigError("line " + std::to_string(line_no) +
                        ": empty key or value");
    }
    if (section.empty()) {
      throw ConfigError("line " + std::to_string(line_no) +
                        ": key before any [section]");
    }
    out[section][key] = value;
  }
  return out;
}

ScenarioSpec parse_scenario_spec(const std::string& text) {
  auto ini = parse_ini(text);
  auto exp_it = ini.find("experiment");
  if (exp_it == ini.end()) {
    throw ConfigError("missing [experiment] section");
  }
  for (const auto& [section, unused] : ini) {
    if (section != "experiment" && section != "faults" &&
        section != "store" && section != "resilience") {
      throw ConfigError("unknown section [" + section + "]");
    }
  }

  ScenarioSpec spec;
  for (const auto& [key, value] : exp_it->second) {
    // Line numbers are lost after the scan; report key names instead.
    const int n = 0;
    if (key == "service") {
      spec.service = parse_service(value, n);
    } else if (key == "query") {
      spec.query = parse_query(value);
    } else if (key == "users") {
      spec.users = parse_int_list(value, n);
    } else if (key == "collectors") {
      spec.collectors = parse_int_list(value, n).front();
    } else if (key == "clients") {
      std::string v = lower(value);
      if (v == "uc") {
        spec.lucky_clients = false;
      } else if (v == "lucky") {
        spec.lucky_clients = true;
      } else {
        throw ConfigError("clients must be 'uc' or 'lucky', got '" + value +
                          "'");
      }
    } else if (key == "warmup") {
      spec.warmup = parse_double(value, n);
    } else if (key == "duration") {
      spec.duration = parse_double(value, n);
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_double(value, n));
    } else if (key == "gris_count") {
      spec.gris_count = parse_int_list(value, n).front();
    } else if (key == "machines") {
      spec.machines = parse_int_list(value, n).front();
    } else if (key == "two_level") {
      spec.two_level = parse_bool(value);
    } else if (key == "replicas") {
      spec.replicas = parse_int_list(value, n).front();
    } else if (key == "pool_size") {
      spec.pool_size = parse_int_list(value, n).front();
    } else if (key == "servlets") {
      spec.servlets = parse_int_list(value, n).front();
    } else if (key == "producers_each") {
      spec.producers_each = parse_int_list(value, n).front();
    } else if (key == "subscribers") {
      spec.subscribers = parse_int_list(value, n).front();
    } else if (key == "sources") {
      spec.sources = parse_int_list(value, n).front();
    } else if (key == "table") {
      spec.table = value;
    } else if (key == "constraint") {
      spec.constraint = value;
    } else if (key == "cachettl") {
      spec.cachettl = parse_double(value, n);
    } else if (key == "provider_ttl") {
      spec.provider_ttl = parse_double(value, n);
    } else if (key == "gris_backlog") {
      spec.gris_backlog = parse_int_list(value, n).front();
    } else {
      throw ConfigError("unknown key '" + key + "' in [experiment]");
    }
  }
  auto faults_it = ini.find("faults");
  if (faults_it != ini.end()) {
    for (const auto& [key, value] : faults_it->second) {
      parse_fault_key(spec, key, value);
    }
  }
  auto store_it = ini.find("store");
  if (store_it != ini.end()) {
    for (const auto& [key, value] : store_it->second) {
      parse_store_key(spec, key, value);
    }
  }
  auto res_it = ini.find("resilience");
  if (res_it != ini.end()) {
    // Apply the master switch first so `enabled = true` composes with
    // per-side overrides regardless of key order in the file.
    auto en = res_it->second.find("enabled");
    if (en != res_it->second.end()) {
      parse_resilience_key(spec, "enabled", en->second);
    }
    for (const auto& [key, value] : res_it->second) {
      if (key == "enabled") continue;
      parse_resilience_key(spec, key, value);
    }
  }
  if (spec.store.enabled() && spec.service != ServiceKind::Registry &&
      spec.service != ServiceKind::Manager &&
      spec.service != ServiceKind::ManagerAggregate) {
    throw ConfigError("service '" + spec.service_name() +
                      "' has no durable-state support; [store] mode must "
                      "be volatile");
  }
  return spec;
}

}  // namespace gridmon::core
