#include "gridmon/core/testbed.hpp"

#include <stdexcept>

namespace gridmon::core {

Testbed::Testbed(TestbedConfig config)
    : config_(config),
      net_(sim_),
      sampler_(sim_, config.sample_interval),
      rng_(config.seed) {
  net_.add_site({.name = "anl",
                 .nic_bandwidth_bytes_per_s = config_.lan_bandwidth_bytes,
                 .one_way_latency = config_.lan_latency});
  net_.add_site({.name = "uc",
                 .nic_bandwidth_bytes_per_s = config_.lan_bandwidth_bytes,
                 .one_way_latency = config_.lan_latency});
  net_.add_wan("anl", "uc",
               {.bandwidth_bytes_per_s = config_.wan_bandwidth_bytes,
                .one_way_latency = config_.wan_one_way_latency,
                .per_flow_cap_bytes_per_s = config_.wan_per_flow_cap});

  for (int i : {0, 1, 3, 4, 5, 6, 7}) {
    std::string name = "lucky" + std::to_string(i);
    add_host(name, "anl", 2, 1133);
    lucky_.push_back(name);
  }
  for (int i = 1; i <= config_.uc_clients; ++i) {
    std::string name = (i < 10 ? "uc0" : "uc") + std::to_string(i);
    double mhz = (i <= config_.uc_fast_clients) ? 1208 : 756;
    add_host(name, "uc", 1, mhz);
    uc_.push_back(name);
  }
}

Testbed::~Testbed() {
  // Destroy all coroutine frames while hosts/NICs are still alive.
  sim_.shutdown();
}

host::Host& Testbed::add_host(const std::string& name,
                              const std::string& site, int cores,
                              double mhz) {
  auto host = std::make_unique<host::Host>(
      sim_, host::HostSpec{name, site, cores, mhz});
  host->attach(sampler_);
  net_.attach(name, site);
  auto [it, inserted] = hosts_.emplace(name, std::move(host));
  if (!inserted) throw std::invalid_argument("duplicate host: " + name);
  return *it->second;
}

host::Host& Testbed::host(const std::string& name) {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) {
    throw std::invalid_argument("unknown host: " + name);
  }
  return *it->second;
}

net::Interface& Testbed::nic(const std::string& name) {
  return net_.interface(name);
}

}  // namespace gridmon::core
