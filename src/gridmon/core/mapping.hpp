#pragma once

/// \file mapping.hpp
/// The paper's Table 1: the functional-component mapping that makes the
/// three systems comparable. Exposed as data so benches and docs print it
/// from one source of truth.

#include <string>
#include <vector>

namespace gridmon::core {

enum class Role {
  InformationCollector,
  InformationServer,
  AggregateInformationServer,
  DirectoryServer,
};

struct MappingEntry {
  Role role;
  std::string role_name;
  std::string mds;
  std::string rgma;
  std::string hawkeye;
};

/// Table 1 of the paper, row for row.
const std::vector<MappingEntry>& component_mapping();

std::string role_name(Role role);

}  // namespace gridmon::core
