#pragma once

/// \file scenario_spec.hpp
/// The unified scenario API: one declarative description (ScenarioSpec)
/// covering every deployment the study measures, one factory
/// (make_scenario) turning a spec into a live deployment on a Testbed.
/// Bench binaries, gridmon_run and the examples all construct through
/// this factory; the concrete scenario structs in scenarios.hpp are an
/// implementation detail reachable (when a bench needs direct member
/// access) via static_cast on the returned Scenario.
///
/// The same spec doubles as the gridmon_run INI format:
///
///   [experiment]
///   service   = gris            ; gris | gris-nocache | giis | agent |
///                               ; manager | registry | rgma-mediated |
///                               ; rgma-direct | rgma-standalone |
///                               ; giis-aggregate | manager-aggregate |
///                               ; hierarchy | rgma-composite |
///                               ; stream-fanout | rgma-replicated
///   query     = default         ; default | all | part | dump |
///                               ; constraint | site-routed
///   users     = 1, 10, 100      ; sweep of concurrent users
///   collectors = 10             ; providers/modules/producers per server
///   clients   = uc              ; uc | lucky
///   warmup    = 120             ; seconds
///   duration  = 600             ; seconds (the paper's 10 minutes)
///   seed      = 42
///
/// Topology keys for the extended services (all optional):
///
///   gris_count = 5        ; GIIS / hierarchy: number of GRIS aggregated
///   machines  = 100       ; manager-aggregate: advertising machines
///   two_level = true      ; hierarchy: route via 6 site GIISes
///   replicas  = 1         ; rgma-replicated: ProducerServlet replicas
///   pool_size = 4         ; rgma-replicated: servlet container pool
///   servlets  = 5         ; registry: ProducerServlet count
///   producers_each = 10   ; registry: producers per servlet
///   subscribers = 100     ; stream-fanout: consumer subscriptions
///   sources   = 10        ; rgma-composite: source servlets
///   table     = cpuload   ; R-GMA table queried
///   constraint = CpuLoad > 100000   ; manager-aggregate scan predicate
///   cachettl  = 45        ; giis/hierarchy cache TTL (seconds)
///   provider_ttl = 30     ; GRIS provider cache TTL override
///   gris_backlog = 512    ; GRIS listen backlog override (0 = default)
///
/// An optional [faults] section schedules deterministic fault injection
/// (times are absolute sim seconds, so warmup is included):
///
///   [faults]
///   crash            = server, 300, 360   ; target, at, restart-at
///   blackhole        = server, 300, 360   ; crash, host vanishes (no RST)
///   partition        = anl, uc, 300, 360  ; site-a, site-b, at, heal-at
///   degrade          = anl, uc, 300, 360, 0.1   ; ... capacity factor
///   slow_host        = lucky7, 300, 360, 0.25   ; host, at, until, factor
///   collector_outage = server, 300, 360   ; sensors hang, server stays up
///   query_deadline   = 25    ; client gives up a query after this long
///   max_attempts     = 5     ; retries before abandoning (0 = forever)
///
/// An optional [store] section turns on durable state for services that
/// support it (registry, manager, manager-aggregate). Omitting it (or
/// mode = volatile) reproduces the paper's soft-state behaviour exactly:
///
///   [store]
///   mode = wal+snapshot       ; volatile | wal | wal+snapshot
///   fsync_latency = 0.008     ; seconds per write barrier
///   write_bandwidth = 25e6    ; sequential bytes/second
///   group_commit_window = 0.005   ; batch appends for this long
///   snapshot_interval = 60    ; seconds between snapshots
///   replay_cpu_per_record = 5e-5  ; recovery CPU per replayed record
///
/// An optional [engine] section selects the execution engine
/// (docs/SCALE.md). Omitting it (or shards = 0) keeps the legacy
/// single-queue sequential engine, byte-identical to every previous
/// release:
///
///   [engine]
///   shards    = 8      ; user partitions for the sharded engine (0 = legacy)
///   threads   = 0      ; worker threads for the shards (0 = run inline)
///   lookahead = 0      ; conservative window seconds (0 = derive from the
///                      ; network's minimum cross-site one-way latency)
///
/// An optional [resilience] section turns on the overload-control layer
/// (docs/RESILIENCE.md). Omitting it (or enabled = false) keeps every
/// run byte-identical to a tree without the layer:
///
///   [resilience]
///   enabled  = true           ; master switch (client + server sides)
///   client   = true           ; client side only (budget + breaker)
///   server   = true           ; server side only (queue + shed + stale)
///   retry_budget = 10         ; banked retry tokens (bucket capacity)
///   retry_ratio  = 0.1        ; tokens deposited per fresh request
///   breaker_window = 20       ; outcomes in the failure-rate window
///   breaker_min_samples = 10  ; don't trip before this many outcomes
///   breaker_threshold = 0.5   ; failure fraction that trips Open
///   breaker_open_secs = 10    ; seconds Open before half-open probing
///   breaker_probes = 1        ; concurrent half-open probes
///   discipline = fifo         ; fifo | lifo | edf (freed-slot hand-off)
///   queue_limit = 256         ; parked waiters beyond the listen queue
///   deadline_budget = 0       ; shed after this queue wait (0 = off)
///   serve_stale = false       ; caches answer stale under shed pressure
///   pressure = 0.9            ; in-flight/backlog ratio = "overloaded"
///   goodput_deadline = 0      ; response bound for goodput (0 = all)
///
/// Lines starting with '#' or ';' are comments; inline ';' comments are
/// stripped. Unknown keys are an error (catches typos).

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "gridmon/fault/plan.hpp"
#include "gridmon/resilience/policy.hpp"
#include "gridmon/store/durable.hpp"

namespace gridmon::core {

class Scenario;
class SpecBuilder;
class Testbed;

class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& msg) : std::runtime_error(msg) {}
};

/// The [engine] execution knobs. `shards = 0` keeps the legacy
/// single-queue sequential engine (byte-identical to every previous
/// release); `shards >= 1` opts a scale run into the sharded
/// conservative-lookahead engine with that many user partitions.
struct EngineSpec {
  int shards = 0;     // user partitions (0 = legacy sequential engine)
  int threads = 0;    // worker threads for the shards (0 = run inline)
  double lookahead = 0;  // window seconds (0 = derive from the network)

  bool sharded() const { return shards > 0; }
};

/// Every deployment shape the study measures. The first eight are the
/// paper's own configurations; the rest are this repo's extensions and
/// ablations (multi-level hierarchy, the R-GMA aggregate the paper
/// lists as "None", push fan-out, servlet replication).
enum class ServiceKind {
  Gris,
  GrisNocache,
  Giis,
  Agent,
  Manager,
  Registry,
  RgmaMediated,
  RgmaDirect,
  RgmaStandalone,
  GiisAggregate,
  ManagerAggregate,
  Hierarchy,
  RgmaComposite,
  StreamFanout,
  RgmaReplicated,
};

/// Which canned query the workload issues. Default picks the query the
/// corresponding experiment used (Part scope for a GIIS, status for the
/// Manager, the constraint scan for manager-aggregate, ...).
enum class QueryVariant {
  Default,
  ScopeAll,           // MDS: query all data
  ScopePart,          // MDS: query one provider's slice
  ManagerDump,        // Hawkeye: full-data pool dump (Experiment 3)
  ManagerConstraint,  // Hawkeye: worst-case constraint scan (Experiment 4)
  SiteRouted,         // hierarchy: round-robin over the site GIISes
};

struct ScenarioSpec {
  ServiceKind service = ServiceKind::Gris;
  QueryVariant query = QueryVariant::Default;
  std::vector<int> users{10};
  /// Providers (GRIS), modules (Agent/Manager), producers (R-GMA),
  /// providers-per-GRIS (GIIS). Note the scenario-struct defaults differ
  /// for Hawkeye (11 modules); benches pass that explicitly.
  int collectors = 10;
  bool lucky_clients = false;
  double warmup = 120;
  double duration = 600;
  std::uint64_t seed = 42;

  // ---- topology knobs for specific services (ignored elsewhere) ----
  std::string gris_host = "lucky7";  // Gris*: hosting machine
  int gris_count = 5;       // Giis / GiisAggregate / Hierarchy
  int machines = 100;       // ManagerAggregate: advertisers
  bool two_level = false;   // Hierarchy: route via site GIISes
  int replicas = 1;         // RgmaReplicated
  int pool_size = 4;        // RgmaReplicated: servlet pool
  int servlets = 5;         // Registry
  int producers_each = 10;  // Registry
  int subscribers = 100;    // StreamFanout
  int sources = 10;         // RgmaComposite: source servlets
  std::string table = "cpuload";                // R-GMA table
  std::string constraint = "CpuLoad > 100000";  // ManagerAggregate scan
  double cachettl = 0;      // Giis/Hierarchy TTL (0 = service default)
  /// GRIS provider overrides (0 = keep default_providers() values).
  double provider_ttl = 0;
  /// GRIS listen-backlog override (0 = GrisConfig default). The overload
  /// benches shrink it so admission control, not slapd's worker queue,
  /// bounds in-server latency.
  int gris_backlog = 0;
  int provider_entries = 0;
  int provider_bytes = 0;
  /// RgmaStandalone: flag replies stale once publishers go silent (0 =
  /// never) and self-publish period for the servlet's producers (0 = off).
  double ps_stale_after = 0;
  double self_publish_interval = 0;
  /// Manager ad bookkeeping overrides (0 = service default).
  double manager_ad_lifetime = 0;
  double manager_stale_after = 0;

  /// The [store] durability knobs (volatile = the paper's soft state;
  /// only registry / manager / manager-aggregate honour other modes).
  store::StoreConfig store;

  /// The [faults] schedule (empty = fault-free run, zero overhead).
  fault::FaultPlan faults;
  /// Client-side end-to-end query deadline (0 = wait forever).
  double query_deadline = 0;
  /// Retries before a query is abandoned (0 = retry forever).
  int max_attempts = 0;

  /// The [resilience] overload-control knobs (disabled = byte-identical
  /// legacy behavior).
  resilience::Config resilience;
  /// Response-time bound for a completion to count toward goodput in
  /// measure() (0 = every completion is good).
  double goodput_deadline = 0;

  /// The [engine] execution knobs (shards = 0 keeps the legacy engine).
  EngineSpec engine;

  /// Host whose Ganglia metrics are reported (derived from the service).
  std::string server_host() const;
  std::string service_name() const;

  /// Start a validating builder. Prefer this over mutating fields
  /// directly in new code (gridmon_lint's spec-mutation check enforces
  /// it inside src/gridmon): the builder collects *every* error and
  /// reports them all at once from SpecBuilder::build().
  static SpecBuilder build();
};

/// Validating ScenarioSpec construction. Setters never throw; they (and
/// the INI `set()` path) record malformed input, and `build()` runs the
/// full cross-field validation, throwing one ConfigError that lists
/// every problem found rather than stopping at the first.
class SpecBuilder {
 public:
  SpecBuilder() = default;
  /// Seed the builder from an existing spec (e.g. a bench preset).
  explicit SpecBuilder(ScenarioSpec base) : spec_(std::move(base)) {}

  // ---- typed setters (validated in build()) ----
  SpecBuilder& service(ServiceKind v) { spec_.service = v; return *this; }
  SpecBuilder& query(QueryVariant v) { spec_.query = v; return *this; }
  SpecBuilder& users(std::vector<int> v) { spec_.users = std::move(v); return *this; }
  SpecBuilder& collectors(int v) { spec_.collectors = v; return *this; }
  SpecBuilder& lucky_clients(bool v) { spec_.lucky_clients = v; return *this; }
  SpecBuilder& window(double warmup, double duration) {
    spec_.warmup = warmup;
    spec_.duration = duration;
    return *this;
  }
  SpecBuilder& seed(std::uint64_t v) { spec_.seed = v; return *this; }
  SpecBuilder& gris_host(std::string v) { spec_.gris_host = std::move(v); return *this; }
  SpecBuilder& gris_count(int v) { spec_.gris_count = v; return *this; }
  SpecBuilder& machines(int v) { spec_.machines = v; return *this; }
  SpecBuilder& two_level(bool v) { spec_.two_level = v; return *this; }
  SpecBuilder& replicas(int v) { spec_.replicas = v; return *this; }
  SpecBuilder& pool_size(int v) { spec_.pool_size = v; return *this; }
  SpecBuilder& servlets(int v) { spec_.servlets = v; return *this; }
  SpecBuilder& producers_each(int v) { spec_.producers_each = v; return *this; }
  SpecBuilder& subscribers(int v) { spec_.subscribers = v; return *this; }
  SpecBuilder& sources(int v) { spec_.sources = v; return *this; }
  SpecBuilder& table(std::string v) { spec_.table = std::move(v); return *this; }
  SpecBuilder& constraint(std::string v) { spec_.constraint = std::move(v); return *this; }
  SpecBuilder& cachettl(double v) { spec_.cachettl = v; return *this; }
  SpecBuilder& provider_ttl(double v) { spec_.provider_ttl = v; return *this; }
  SpecBuilder& gris_backlog(int v) { spec_.gris_backlog = v; return *this; }
  SpecBuilder& provider_entries(int v) { spec_.provider_entries = v; return *this; }
  SpecBuilder& provider_bytes(int v) { spec_.provider_bytes = v; return *this; }
  SpecBuilder& ps_stale_after(double v) { spec_.ps_stale_after = v; return *this; }
  SpecBuilder& self_publish_interval(double v) { spec_.self_publish_interval = v; return *this; }
  SpecBuilder& manager_ad_lifetime(double v) { spec_.manager_ad_lifetime = v; return *this; }
  SpecBuilder& manager_stale_after(double v) { spec_.manager_stale_after = v; return *this; }
  SpecBuilder& store(store::StoreConfig v) { spec_.store = std::move(v); return *this; }
  SpecBuilder& faults(fault::FaultPlan v) { spec_.faults = std::move(v); return *this; }
  SpecBuilder& query_deadline(double v) { spec_.query_deadline = v; return *this; }
  SpecBuilder& max_attempts(int v) { spec_.max_attempts = v; return *this; }
  SpecBuilder& resilience(resilience::Config v) { spec_.resilience = std::move(v); return *this; }
  SpecBuilder& goodput_deadline(double v) { spec_.goodput_deadline = v; return *this; }
  SpecBuilder& engine(EngineSpec v) { spec_.engine = v; return *this; }
  SpecBuilder& shards(int v) { spec_.engine.shards = v; return *this; }
  SpecBuilder& threads(int v) { spec_.engine.threads = v; return *this; }
  SpecBuilder& lookahead(double v) { spec_.engine.lookahead = v; return *this; }

  /// The INI path: apply one `[section] key = value` triple. Malformed
  /// input is recorded (with `where`, e.g. a line number) instead of
  /// thrown, so a config file reports every bad key at once.
  SpecBuilder& set(const std::string& section, const std::string& key,
                   const std::string& value, const std::string& where = "");

  /// Record an error found outside the builder (e.g. a structural INI
  /// problem) so it joins the final report.
  SpecBuilder& note_error(std::string message);

  /// Errors collected so far (before build()'s validation pass).
  const std::vector<std::string>& errors() const { return errors_; }

  /// Validate everything and return the spec. Throws one ConfigError
  /// listing every collected and validation error; never throws on a
  /// clean spec.
  ScenarioSpec build();

 private:
  ScenarioSpec spec_;
  std::vector<std::string> errors_;
};

/// Build the deployment `spec` describes on `tb`: construct the services,
/// wire registrations, and bind the canonical query (per spec.query) so
/// the result is ready for `UserWorkload(tb, scenario->query_fn())`.
/// Does NOT advance simulated time — call `scenario->prefill()` once
/// afterwards to run the deployment's settling phase (cache warm-up,
/// first advertisements, registration rounds). Throws ConfigError for a
/// query variant the service cannot answer.
std::unique_ptr<Scenario> make_scenario(Testbed& tb, const ScenarioSpec& spec);

/// Parse the INI text through a SpecBuilder. Structural problems (a
/// malformed line, a missing [experiment] section) throw immediately
/// with a line number; key-level problems are collected and reported
/// together in one ConfigError from the builder's validation pass.
ScenarioSpec parse_scenario_spec(const std::string& text);

/// Low-level INI scan: section -> key -> value (all trimmed, keys
/// lowercased). Exposed for tests.
std::map<std::string, std::map<std::string, std::string>> parse_ini(
    const std::string& text);

}  // namespace gridmon::core
