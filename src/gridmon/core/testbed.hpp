#pragma once

/// \file testbed.hpp
/// The experiment platform of the paper, rebuilt in the simulator:
/// the "Lucky" testbed at ANL (seven dual-PIII-1133 Linux nodes named
/// lucky0, lucky1, lucky3..lucky7 on a 100 Mbps switched LAN) plus the
/// twenty UChicago client machines (fifteen 1208 MHz and five 756 MHz
/// uniprocessors) reached over a WAN, with a Ganglia-style sampler
/// polling every host at 5-second intervals.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gridmon/host/host.hpp"
#include "gridmon/metrics/sampler.hpp"
#include "gridmon/net/network.hpp"
#include "gridmon/sim/rng.hpp"
#include "gridmon/sim/simulation.hpp"

namespace gridmon::core {

struct TestbedConfig {
  int uc_clients = 20;
  int uc_fast_clients = 15;  // 1208 MHz; remainder run at 756 MHz
  double lan_bandwidth_bytes = 12.5e6;  // 100 Mbps NICs
  double lan_latency = 0.0001;
  double wan_bandwidth_bytes = 20e6;    // shared ANL<->UC path
  double wan_one_way_latency = 0.005;
  double wan_per_flow_cap = 2.5e6;      // TCP window / RTT
  double sample_interval = 5.0;         // Ganglia cadence in the paper
  std::uint64_t seed = 42;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;
  ~Testbed();

  sim::Simulation& sim() noexcept { return sim_; }
  net::Network& network() noexcept { return net_; }
  metrics::Sampler& sampler() noexcept { return sampler_; }
  sim::Rng& rng() noexcept { return rng_; }
  const TestbedConfig& config() const noexcept { return config_; }

  host::Host& host(const std::string& name);
  net::Interface& nic(const std::string& name);

  /// Lucky node names, in the paper's numbering (no lucky2).
  const std::vector<std::string>& lucky_names() const noexcept {
    return lucky_;
  }
  const std::vector<std::string>& uc_names() const noexcept { return uc_; }

  /// Add an extra machine (e.g. an admin workstation for examples).
  host::Host& add_host(const std::string& name, const std::string& site,
                       int cores, double mhz);

 private:
  TestbedConfig config_;
  sim::Simulation sim_;  // first member: destroyed last, shut down first
  net::Network net_;
  metrics::Sampler sampler_;
  sim::Rng rng_;
  std::map<std::string, std::unique_ptr<host::Host>> hosts_;
  std::vector<std::string> lucky_;
  std::vector<std::string> uc_;
};

}  // namespace gridmon::core
