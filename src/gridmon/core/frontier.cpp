#include "gridmon/core/frontier.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gridmon::core {
namespace {

// Mailbox protocol: one in-flight exchange per user, ever — a request
// is answered by exactly one reply before the user's next timer can
// send another. That satisfies the ShardGroup ordering contract (no
// two same-(deliver_at, uid) messages from different shards).
constexpr std::uint32_t kMsgRequest = 1;
constexpr std::uint32_t kMsgReply = 2;

// Reply flags, packed into ShardMessage::a.
constexpr std::uint64_t kFlagOk = 1u << 0;
constexpr std::uint64_t kFlagRefused = 1u << 1;
constexpr std::uint64_t kFlagTimeout = 1u << 2;
constexpr std::uint64_t kFlagFailed = 1u << 3;
constexpr std::uint64_t kFlagStale = 1u << 4;

// User FSM states (SoA byte per user).
constexpr std::uint8_t kThinking = 0;  // timer armed: issue next query
constexpr std::uint8_t kWaiting = 1;   // attempt in flight, no timer
constexpr std::uint8_t kBackoff = 2;   // timer armed: retry the query

/// Counter-based per-user randomness: two splitmix64 finalizer rounds
/// over (seed, uid, draw index). Stateless in everything but a 4-byte
/// per-user counter, and independent of shard placement by
/// construction.
std::uint64_t frontier_mix(std::uint64_t seed, std::uint64_t uid,
                           std::uint64_t n) {
  std::uint64_t x = seed + 0x9E3779B97F4A7C15ull * (uid + 1) +
                    0x94D049BB133111EBull * (n + 1);
  for (int round = 0; round < 2; ++round) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
  }
  return x;
}

}  // namespace

/// One client shard: contiguous struct-of-arrays user slabs plus a
/// timer heap whose keys are (fire time, uid) — canonical across shard
/// counts. At most one timer per user is live (users are either
/// thinking, backing off, or waiting on the gateway), so the heap never
/// needs cancellation.
struct FrontierWorkload::ClientShard final : sim::ShardRunner {
  ClientShard(FrontierWorkload& owner_ref, int group_index)
      : owner(owner_ref), index(group_index) {}

  FrontierWorkload& owner;
  int index;  // this shard's id inside the group (1-based)
  sim::SimTime now_ = 0;

  // SoA user slabs, indexed by local slot (= uid / shard count).
  std::vector<std::uint64_t> uids;
  std::vector<std::uint8_t> states;
  std::vector<std::uint16_t> retries;
  std::vector<std::uint32_t> draws;
  std::vector<double> query_starts;

  struct Timer {
    double at;
    std::uint64_t uid;
    std::uint32_t local;
  };
  std::vector<Timer> heap;  // min-heap on (at, uid)

  std::vector<FrontierCompletion> completions;  // in (t, uid) order
  std::uint64_t queries = 0;
  std::uint64_t refused = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;

  static bool timer_after(const Timer& x, const Timer& y) {
    if (x.at != y.at) return x.at > y.at;
    return x.uid > y.uid;
  }

  double draw01(std::uint32_t local) {
    std::uint64_t z = frontier_mix(owner.seed_, uids[local], draws[local]++);
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  void arm(double at, std::uint32_t local) {
    heap.push_back(Timer{at, uids[local], local});
    std::push_heap(heap.begin(), heap.end(), timer_after);
  }

  void add_user(std::uint64_t uid, double start_after) {
    std::uint32_t local = static_cast<std::uint32_t>(uids.size());
    uids.push_back(uid);
    states.push_back(kThinking);
    retries.push_back(0);
    draws.push_back(0);
    query_starts.push_back(0);
    // Desynchronized start, like the legacy workload's initial delay.
    arm(start_after + draw01(local) * owner.config_.think_time, local);
  }

  /// Timer expiry: a Thinking user starts a fresh query, a Backoff user
  /// retries the current one; both send one request to the gateway.
  void fire(std::uint32_t local) {
    if (states[local] == kThinking) {
      ++queries;
      retries[local] = 0;
      query_starts[local] = now_;
    }
    states[local] = kWaiting;
    owner.group_->post(
        index, 0,
        sim::ShardMessage{now_ + owner.lookahead_, uids[local], 0,
                          kMsgRequest, 0, 0, 0});
  }

  sim::SimTime now() const override { return now_; }

  std::size_t run(sim::SimTime until) override {
    std::size_t fired = 0;
    while (!heap.empty() && heap.front().at <= until) {
      Timer t = heap.front();
      std::pop_heap(heap.begin(), heap.end(), timer_after);
      heap.pop_back();
      now_ = t.at;
      fire(t.local);
      ++fired;
    }
    if (until > now_) now_ = until;
    return fired;
  }

  void deliver(const sim::ShardMessage& m) override {
    std::uint32_t local = static_cast<std::uint32_t>(
        m.uid / static_cast<std::uint64_t>(owner.config_.shards));
    if (m.a & kFlagOk) {
      completions.push_back(FrontierCompletion{
          now_, now_ - query_starts[local], m.f, m.uid,
          (m.a & kFlagStale) != 0});
      states[local] = kThinking;
      arm(now_ + owner.config_.think_time, local);
      return;
    }
    if (m.a & kFlagRefused) ++refused;
    if (m.a & kFlagTimeout) ++timeouts;
    if (m.a & kFlagFailed) ++failures;
    const std::vector<double>& sched = owner.config_.retry_schedule;
    std::size_t step = std::min<std::size_t>(retries[local],
                                             sched.size() - 1);
    double jitter = owner.config_.retry_jitter;
    double delay =
        sched[step] * (1.0 - jitter + 2.0 * jitter * draw01(local));
    if (retries[local] < 0xffff) ++retries[local];
    states[local] = kBackoff;
    arm(now_ + delay, local);
  }
};

FrontierWorkload::FrontierWorkload(Testbed& testbed, TracedQueryFn query,
                                   FrontierConfig config)
    : testbed_(testbed), query_(std::move(query)), config_(config) {
  if (config_.shards < 1) {
    throw std::invalid_argument("frontier workload needs >= 1 shard");
  }
  if (config_.retry_schedule.empty()) {
    throw std::invalid_argument("frontier workload needs a retry schedule");
  }
  lookahead_ = config_.lookahead > 0
                   ? config_.lookahead
                   : testbed_.network().min_cross_site_latency();
  if (!(lookahead_ > 0)) {
    throw std::invalid_argument(
        "frontier workload: no WAN latency to derive the lookahead from; "
        "set [engine] lookahead");
  }
  seed_ = testbed_.config().seed;
  if (config_.admission_port != nullptr) {
    if (config_.server_host.empty()) {
      throw std::invalid_argument(
          "frontier workload: admission_port needs server_host");
    }
    if (config_.pool_factor < 1) {
      throw std::invalid_argument(
          "frontier workload: pool_factor must be >= 1");
    }
    server_nic_ = &testbed_.nic(config_.server_host);
  }
  gateway_ = std::make_unique<sim::SimulationShard>(
      testbed_.sim(),
      [this](const sim::ShardMessage& m) { on_gateway_message(m); });
  std::vector<sim::ShardRunner*> runners{gateway_.get()};
  clients_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    clients_.push_back(std::make_unique<ClientShard>(*this, s + 1));
    runners.push_back(clients_.back().get());
  }
  group_ = std::make_unique<sim::ShardGroup>(std::move(runners), lookahead_,
                                             config_.threads);
}

FrontierWorkload::~FrontierWorkload() { testbed_.sim().shutdown(); }

void FrontierWorkload::spawn_users(int n) {
  if (users_ > 0) {
    throw std::logic_error("frontier workload: spawn_users already called");
  }
  if (n <= 0) throw std::invalid_argument("no users requested");
  const std::vector<std::string>& uc = testbed_.uc_names();
  int capacity = 50 * static_cast<int>(uc.size());
  if (n > capacity) {
    throw std::invalid_argument(
        "requested " + std::to_string(n) + " users but only " +
        std::to_string(capacity) + " fit on " + std::to_string(uc.size()) +
        " client hosts");
  }
  nics_.reserve(uc.size());
  hosts_.reserve(uc.size());
  for (const std::string& name : uc) {
    nics_.push_back(&testbed_.nic(name));
    hosts_.push_back(&testbed_.host(name));
  }
  double start = testbed_.sim().now();
  for (int u = 0; u < n; ++u) {
    std::uint64_t uid = static_cast<std::uint64_t>(u);
    clients_[uid % static_cast<std::uint64_t>(config_.shards)]->add_user(
        uid, start);
  }
  users_ = n;
}

std::size_t FrontierWorkload::run(double until) {
  return group_->run(until);
}

sim::Task<void> FrontierWorkload::gateway_attempt(FrontierWorkload& self,
                                                  std::uint64_t uid) {
  auto& sim = self.testbed_.sim();
  std::size_t slot = static_cast<std::size_t>(uid % self.nics_.size());
  ++self.attempts_;
  ++self.outstanding_;
  QueryAttempt a = co_await self.query_(*self.nics_[slot], trace::Ctx{});
  bool ok = a.admitted && !a.failed && !a.timed_out;
  std::uint64_t flags = 0;
  if (ok) flags |= kFlagOk;
  if (!a.admitted && !a.timed_out) flags |= kFlagRefused;
  if (a.timed_out) flags |= kFlagTimeout;
  if (a.failed) flags |= kFlagFailed;
  if (a.stale) flags |= kFlagStale;
  self.group_->post(0, self.shard_index_of(uid),
                    sim::ShardMessage{sim.now() + self.lookahead_, uid, 0,
                                      kMsgReply, 0, flags,
                                      a.response_bytes});
  // The client script's bookkeeping CPU, charged on the user's real UC
  // host after a successful query (the refused path must stay cheap: at
  // frontier scale most attempts bounce off the listen queue).
  if (ok && self.config_.client_cpu_per_query > 0) {
    co_await self.hosts_[slot]->cpu().consume(
        self.config_.client_cpu_per_query);
  }
  --self.outstanding_;
}

/// The batched refusal fast path. At frontier scale nearly every
/// attempt bounces off a full listen queue, and the per-attempt price
/// of that bounce — a 1.2 s tool startup plus a SYN each way across
/// three processor-sharing stages — is what dominates wall-clock. The
/// gateway therefore keeps a bounded standing pool of real attempts
/// (pool_factor x the port's listen backlog of gateway_attempt
/// coroutines) that run the full per-attempt physics, where the
/// authoritative admission still happens; the pool is sized so the
/// accept queue stays saturated and throughput, response time, and
/// server load are attempt-for-attempt those of the unbatched model.
/// Requests beyond the pool are doomed — thousands of pooled attempts
/// are already ahead of them in line for every freed slot — so each
/// lookahead-wide cohort of surplus requests is priced as ONE aggregate
/// SYN/RST round trip. Processor sharing is a fluid model: n identical
/// concurrent SYN flows between the same two NICs occupy the pipes like
/// one flow of n times the bytes, so the aggregate carries the cohort's
/// exact wire bytes. Shed refusal replies skip the tool-startup delay
/// and land up to one bucket early; the shift is milliseconds against a
/// seconds-deep retry ladder (the trade is documented in docs/SCALE.md,
/// "The batched refusal fast path"). A down port bypasses the gate
/// entirely so fault semantics stay with the real path.
///
/// Determinism across shard counts survives because every input is
/// K-independent: cohorts are [b*L, (b+1)*L) buckets of the canonical
/// (deliver_at, uid, seq) mailbox order, the flush fires at the bucket
/// boundary, and the pool counter moves only at flush and at
/// gateway-attempt completion — all gateway-shard sim times.
sim::Task<void> FrontierWorkload::flush_requests(FrontierWorkload& self) {
  auto head = self.buckets_.begin();
  std::vector<std::uint64_t> batch = std::move(head->second);
  self.buckets_.erase(head);
  const net::ServerPort& port = *self.config_.admission_port;
  auto& sim = self.testbed_.sim();
  std::size_t full = batch.size();
  if (port.up()) {
    std::uint64_t target =
        static_cast<std::uint64_t>(self.config_.pool_factor) *
        static_cast<std::uint64_t>(port.backlog());
    std::uint64_t room =
        target > self.outstanding_ ? target - self.outstanding_ : 0;
    full = std::min(full, static_cast<std::size_t>(room));
  }
  for (std::size_t i = 0; i < full; ++i) {
    sim.spawn(gateway_attempt(self, batch[i]));
  }
  std::size_t shed = batch.size() - full;
  if (shed == 0) co_return;
  self.attempts_ += shed;
  self.fast_refused_ += shed;
  // One aggregate round trip carrying the cohort's exact wire bytes
  // (transfer() adds one message overhead itself, hence the deduction).
  net::Interface& rep = *self.nics_[batch[full] % self.nics_.size()];
  double per_syn =
      net::Network::kSynBytes + net::Network::kMessageOverheadBytes;
  double bytes = static_cast<double>(shed) * per_syn -
                 net::Network::kMessageOverheadBytes;
  co_await self.testbed_.network().transfer(rep, *self.server_nic_, bytes);
  co_await self.testbed_.network().transfer(*self.server_nic_, rep, bytes);
  double at = sim.now() + self.lookahead_;
  for (std::size_t i = full; i < batch.size(); ++i) {
    self.group_->post(0, self.shard_index_of(batch[i]),
                      sim::ShardMessage{at, batch[i], 0, kMsgReply, 0,
                                        kFlagRefused, 0});
  }
}

void FrontierWorkload::on_gateway_message(const sim::ShardMessage& m) {
  if (m.kind != kMsgRequest) return;
  if (config_.admission_port == nullptr) {
    testbed_.sim().spawn(gateway_attempt(*this, m.uid));
    return;
  }
  // Deliveries arrive in canonical time order; bucket this request by
  // the lookahead-wide interval [b*L, (b+1)*L) holding its delivery
  // instant and flush the cohort at the bucket boundary. The first
  // member schedules the flush; a boundary-instant delivery (processed
  // before that flush fires, FIFO at equal times) keys a fresh bucket,
  // which is why buckets_ is a map and not a single pending vector.
  auto& sim = testbed_.sim();
  double deadline =
      (std::floor(sim.now() / lookahead_) + 1.0) * lookahead_;
  std::vector<std::uint64_t>& bucket = buckets_[deadline];
  if (bucket.empty()) {
    sim.schedule(deadline - sim.now(),
                 [this] { testbed_.sim().spawn(flush_requests(*this)); });
  }
  bucket.push_back(m.uid);
}

const std::vector<FrontierCompletion>& FrontierWorkload::merged_completions() {
  merged_.clear();
  for (const auto& shard : clients_) {
    merged_.insert(merged_.end(), shard->completions.begin(),
                   shard->completions.end());
  }
  // (t, uid) is a total order (one completion per user per instant), so
  // plain sort is deterministic and shard-count-independent.
  std::sort(merged_.begin(), merged_.end(),
            [](const FrontierCompletion& x, const FrontierCompletion& y) {
              if (x.t != y.t) return x.t < y.t;
              return x.uid < y.uid;
            });
  return merged_;
}

std::uint64_t FrontierWorkload::refused_attempts() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : clients_) total += shard->refused;
  return total;
}

std::uint64_t FrontierWorkload::timeout_attempts() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : clients_) total += shard->timeouts;
  return total;
}

std::uint64_t FrontierWorkload::failed_attempts() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : clients_) total += shard->failures;
  return total;
}

std::uint64_t FrontierWorkload::total_queries() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : clients_) total += shard->queries;
  return total;
}

double FrontierWorkload::now() const noexcept { return group_->now(); }

std::uint64_t FrontierWorkload::messages_delivered() const noexcept {
  return group_->messages_delivered();
}

MetricsReport FrontierWorkload::measure_window(
    double x, double warmup, double duration,
    const std::string& server_host) {
  double start = std::max(group_->now(), testbed_.sim().now());
  std::size_t events = run(start + warmup);
  double t0 = group_->now();
  std::uint64_t refused0 = refused_attempts();
  std::uint64_t errors0 = error_count();
  std::uint64_t attempts0 = attempts_;
  std::uint64_t queries0 = total_queries();
  events += run(t0 + duration);
  double t1 = group_->now();

  MetricsReport p;
  p.x = x;
  // Completions are walked in canonical (t, uid) order, so the float
  // accumulation below is byte-identical for every shard count.
  std::size_t completed = 0;
  double response_sum = 0;
  std::size_t stale = 0;
  for (const FrontierCompletion& c : merged_completions()) {
    if (c.t < t0 || c.t > t1) continue;
    ++completed;
    response_sum += c.response_time;
    if (c.stale) ++stale;
  }
  double span = t1 - t0;
  p.throughput =
      span > 0 ? static_cast<double>(completed) / span : 0;
  p.response = completed > 0
                   ? response_sum / static_cast<double>(completed)
                   : 0;
  p.load1 =
      testbed_.sampler().series(server_host + ".load1").mean_over(t0, t1);
  p.cpu =
      testbed_.sampler().series(server_host + ".cpu_pct").mean_over(t0, t1);
  p.refused = span > 0 ? static_cast<double>(refused_attempts() - refused0) /
                             span
                       : 0;
  p.availability = 1;  // the frontier FSM never abandons a query
  p.error_rate =
      span > 0 ? static_cast<double>(error_count() - errors0) / span : 0;
  p.stale_frac = completed > 0 ? static_cast<double>(stale) /
                                     static_cast<double>(completed)
                               : 0;
  p.goodput = p.throughput;  // no goodput deadline at the frontier
  double d_queries = static_cast<double>(total_queries() - queries0);
  p.retry_amp = d_queries > 0
                    ? static_cast<double>(attempts_ - attempts0) / d_queries
                    : 0;
  p.events = static_cast<double>(events);
  p.shards = static_cast<double>(config_.shards);
  return p;
}

}  // namespace gridmon::core
