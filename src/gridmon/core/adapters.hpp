#pragma once

/// \file adapters.hpp
/// TracedQueryFn factories binding each concrete service to the uniform
/// workload interface — the executable form of the paper's Table 1
/// component mapping. Each adapter forwards the workload's trace context
/// into the service call chain (a null Ctx when tracing is off).

#include "gridmon/core/workload.hpp"
#include "gridmon/hawkeye/agent.hpp"
#include "gridmon/hawkeye/manager.hpp"
#include "gridmon/mds/giis.hpp"
#include "gridmon/mds/gris.hpp"
#include "gridmon/rgma/consumer_servlet.hpp"
#include "gridmon/rgma/producer_servlet.hpp"
#include "gridmon/rgma/registry.hpp"

namespace gridmon::core {

/// MDS information server (GRIS) query.
inline TracedQueryFn query_gris(mds::Gris& gris,
                                mds::QueryScope scope = mds::QueryScope::All) {
  return [gris = &gris, scope](net::Interface& client,
                        trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto r = co_await gris->query(client, scope, ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

/// MDS directory / aggregate server (GIIS) query.
inline TracedQueryFn query_giis(
    mds::Giis& giis, mds::QueryScope scope = mds::QueryScope::Part) {
  return [giis = &giis, scope](net::Interface& client,
                        trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto r = co_await giis->query(client, scope, ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

/// Hawkeye information server (Agent) query: fresh module collection.
inline TracedQueryFn query_agent(hawkeye::Agent& agent) {
  return [agent = &agent](net::Interface& client,
                  trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto r = co_await agent->query(client, ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

/// Hawkeye directory server (Manager) status query.
inline TracedQueryFn query_manager_status(hawkeye::Manager& manager) {
  return [manager = &manager](net::Interface& client,
                    trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto r = co_await manager->query_status(client, ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

/// Hawkeye full-data dump (Experiment 3's workload against the pool).
inline TracedQueryFn query_manager_dump(hawkeye::Manager& manager) {
  return [manager = &manager](net::Interface& client,
                    trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto r = co_await manager->query_dump(client, ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

/// Hawkeye constraint scan (Experiment 4's worst-case query).
inline TracedQueryFn query_manager_constraint(hawkeye::Manager& manager,
                                              std::string constraint) {
  return [manager = &manager, constraint](net::Interface& client,
                                trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto r = co_await manager->query_constraint(client, constraint, ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

/// R-GMA mediated pull query through a ConsumerServlet.
inline TracedQueryFn query_consumer_servlet(rgma::ConsumerServlet& cs,
                                            std::string table) {
  return [cs = &cs, table](net::Interface& client,
                      trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto r = co_await cs->query(client, table, "", ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

/// R-GMA direct query against one ProducerServlet (the paper's
/// Experiment 3 "queried the ProducerServlet directly").
inline TracedQueryFn query_producer_servlet(rgma::ProducerServlet& ps,
                                            std::string table) {
  return [ps = &ps, table](net::Interface& client,
                      trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto r = co_await ps->client_query(client, table, "", ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

/// R-GMA Registry (directory server) lookup.
inline TracedQueryFn query_registry(rgma::Registry& registry,
                                    std::string table) {
  return [registry = &registry, table](net::Interface& client,
                            trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto r = co_await registry->client_query(client, table, ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

}  // namespace gridmon::core
