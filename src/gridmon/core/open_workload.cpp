#include "gridmon/core/open_workload.hpp"

#include <algorithm>

namespace gridmon::core {

OpenWorkload::OpenWorkload(Testbed& testbed, QueryFn query,
                           OpenWorkloadConfig config)
    : testbed_(testbed), query_(std::move(query)), config_(config) {}

OpenWorkload::OpenWorkload(Testbed& testbed, TracedQueryFn query,
                           OpenWorkloadConfig config)
    : OpenWorkload(testbed,
                   QueryFn([q = std::move(query)](net::Interface& nic) {
                     return q(nic, trace::Ctx{});
                   }),
                   config) {}

void OpenWorkload::start(const std::vector<std::string>& client_hosts) {
  testbed_.sim().spawn(arrival_loop(*this, client_hosts));
}

sim::Task<void> OpenWorkload::arrival_loop(OpenWorkload& self,
                                           std::vector<std::string> hosts) {
  auto& sim = self.testbed_.sim();
  sim::Rng rng = self.testbed_.rng().fork();
  std::size_t next_host = 0;
  for (;;) {
    co_await sim.delay(rng.exponential(1.0 / self.config_.arrival_rate));
    const std::string& host = hosts[next_host++ % hosts.size()];
    ++self.arrivals_;
    sim.spawn(one_query(self, self.testbed_.nic(host), rng.fork()));
  }
}

sim::Task<void> OpenWorkload::one_query(OpenWorkload& self,
                                        net::Interface& nic, sim::Rng rng) {
  auto& sim = self.testbed_.sim();
  ++self.outstanding_;
  double started = sim.now();
  QueryAttempt attempt;
  int retry = 0;
  for (;;) {
    attempt = co_await self.query_(nic);
    if (attempt.admitted) break;
    if (retry >= self.config_.max_retries) {
      ++self.failures_;
      --self.outstanding_;
      co_return;
    }
    const auto& schedule = self.config_.retry_schedule;
    double delay =
        schedule.empty()
            ? 1.0
            : schedule[std::min<std::size_t>(static_cast<std::size_t>(retry),
                                             schedule.size() - 1)];
    co_await sim.delay(delay * rng.uniform(0.98, 1.02));
    ++retry;
  }
  self.completions_.push_back(
      Completion{sim.now(), sim.now() - started, attempt.response_bytes});
  --self.outstanding_;
}

double OpenWorkload::throughput(double t0, double t1) const {
  if (t1 <= t0) return 0;
  std::size_t n = 0;
  for (const auto& c : completions_) {
    if (c.t >= t0 && c.t <= t1) ++n;
  }
  return static_cast<double>(n) / (t1 - t0);
}

double OpenWorkload::mean_response(double t0, double t1) const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& c : completions_) {
    if (c.t >= t0 && c.t <= t1) {
      sum += c.response_time;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0;
}

}  // namespace gridmon::core
