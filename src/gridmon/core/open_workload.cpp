#include "gridmon/core/open_workload.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace gridmon::core {

OpenWorkload::OpenWorkload(Testbed& testbed, QueryFn query,
                           OpenWorkloadConfig config)
    : testbed_(testbed),
      query_(std::move(query)),
      config_(config),
      policy_(config_.resilience) {
  // A schedule shorter than max_retries silently reused its last entry
  // for the extra retries; require the two knobs to agree.
  if (!config_.retry_schedule.empty() &&
      config_.retry_schedule.size() <
          static_cast<std::size_t>(std::max(config_.max_retries, 0))) {
    throw std::invalid_argument(
        "OpenWorkloadConfig: retry_schedule has " +
        std::to_string(config_.retry_schedule.size()) +
        " entries but max_retries allows " +
        std::to_string(config_.max_retries) +
        " retries; size the schedule to cover every retry (or leave it "
        "empty for the exponential default)");
  }
  backoff_.schedule = config_.retry_schedule;
  backoff_.jitter = config_.retry_jitter;
}

OpenWorkload::OpenWorkload(Testbed& testbed, TracedQueryFn query,
                           OpenWorkloadConfig config)
    : OpenWorkload(testbed,
                   QueryFn([q = std::move(query)](net::Interface& nic) {
                     return q(nic, trace::Ctx{});
                   }),
                   config) {}

void OpenWorkload::start(const std::vector<std::string>& client_hosts) {
  testbed_.sim().spawn(arrival_loop(*this, client_hosts));
}

sim::Task<void> OpenWorkload::arrival_loop(OpenWorkload& self,
                                           std::vector<std::string> hosts) {
  auto& sim = self.testbed_.sim();
  sim::Rng rng = self.testbed_.rng().fork();
  std::size_t next_host = 0;
  for (;;) {
    co_await sim.delay(rng.exponential(1.0 / self.config_.arrival_rate));
    const std::string& host = hosts[next_host++ % hosts.size()];
    ++self.arrivals_;
    sim.spawn(one_query(self, self.testbed_.nic(host), rng.fork()));
  }
}

sim::Task<void> OpenWorkload::one_query(OpenWorkload& self,
                                        net::Interface& nic, sim::Rng rng) {
  auto& sim = self.testbed_.sim();
  ++self.outstanding_;
  double started = sim.now();
  self.policy_.on_query();
  QueryAttempt attempt;
  int retry = 0;
  for (;;) {
    // Circuit breaker: while Open the attempt fails locally, costing the
    // network and server nothing.
    bool fast_failed = !self.policy_.allow(sim.now());
    if (fast_failed) {
      attempt = QueryAttempt{};
    } else {
      ++self.attempts_;
      attempt = co_await self.query_(nic);
      self.policy_.record(sim.now(), attempt.admitted);
    }
    if (attempt.admitted) break;
    if (retry >= self.config_.max_retries) {
      ++self.failures_;
      --self.outstanding_;
      co_return;
    }
    // Retry budget: exhausted means this one-shot script gives up now
    // instead of feeding the retry storm.
    if (!self.policy_.allow_retry()) {
      ++self.failures_;
      --self.outstanding_;
      co_return;
    }
    co_await sim.delay(
        self.backoff_.delay(static_cast<std::size_t>(retry), rng));
    ++retry;
  }
  self.completions_.push_back(
      Completion{sim.now(), sim.now() - started, attempt.response_bytes});
  --self.outstanding_;
}

double OpenWorkload::throughput(double t0, double t1) const {
  if (t1 <= t0) return 0;
  std::size_t n = 0;
  for (const auto& c : completions_) {
    if (c.t >= t0 && c.t <= t1) ++n;
  }
  return static_cast<double>(n) / (t1 - t0);
}

double OpenWorkload::mean_response(double t0, double t1) const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& c : completions_) {
    if (c.t >= t0 && c.t <= t1) {
      sum += c.response_time;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0;
}

}  // namespace gridmon::core
