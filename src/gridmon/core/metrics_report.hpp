#pragma once

/// \file metrics_report.hpp
/// The typed metrics row shared by every bench, tool and test: one
/// named-field struct (core::MetricsReport) plus a column schema that
/// drives a single CSV/JSON serializer. Adding a metric is a one-site
/// change — add the field, add a schema row, and every emitter (the
/// bench CSVs, gridmon_run, BENCH_*.json writers, the golden tests)
/// picks it up through the schema instead of re-interpreting positions.
///
/// Columns are organised in groups so emitters keep their historical
/// layouts byte-identical: the core group reproduces the original
/// 6-column bench CSV exactly, and the optional groups append in a
/// fixed order.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace gridmon::core {

/// One sweep point of a figure, with every metric a named field.
/// Replaces the positional row each bench used to re-interpret; the old
/// `SweepPoint` name remains as an alias in experiment.hpp.
struct MetricsReport {
  double x = 0;           // users / collectors / information servers
  double throughput = 0;  // queries per second
  double response = 0;    // seconds
  double load1 = 0;       // one-minute load average
  double cpu = 0;         // percent
  double refused = 0;     // refused connection attempts per second
  double availability = 1;  // completed / (completed + abandoned) queries
  double error_rate = 0;    // timeouts + failures + abandonments per second
  double stale_frac = 0;    // fraction of completions flagged stale
  double recovery = 0;      // first answered query past recovery_mark (-1:
                            // never) — service reachability
  double recovery_complete = 0;  // state re-converged past recovery_mark
                                 // (-1: never/unknown) — data recovery
  double goodput = 0;    // timely completions/s (== throughput without a
                         // goodput deadline); stale answers still count —
                         // answer quality is tracked by stale_frac
  double shed_rate = 0;  // deadline-shed admissions per second
  double retry_amp = 0;  // attempts per started query over the window
                         // (1.0 = no retries)

  // ---- engine stats (filled by the bench harness, not measure():
  // wall-clock measurement is banned inside src/gridmon by the
  // determinism contract) ----
  double events = 0;          // simulator events processed over the run
  double wall_clock_s = 0;    // host wall-clock seconds for the run
  double events_per_sec = 0;  // events / wall_clock_s
  double peak_rss_kb = -1;    // per-point peak RSS (-1: not measured)
  double shards = 1;          // event-queue shards the run used
};

/// Column groups, in the order they append to a CSV row. `kMetricCore`
/// alone reproduces the historical bench CSV layout byte-for-byte.
enum MetricGroup : unsigned {
  kMetricCore = 1u << 0,        // x..refused_per_sec (the paper's metrics)
  kMetricHealth = 1u << 1,      // availability, error_rate, stale_frac
  kMetricRecovery = 1u << 2,    // recovery, recovery_complete
  kMetricResilience = 1u << 3,  // goodput, shed_rate, retry_amp
  kMetricEngine = 1u << 4,      // events .. shards
  kMetricAll = (1u << 5) - 1,
};

/// One schema row: CSV column name, the field it reads, and its group.
struct MetricColumn {
  const char* name;
  double MetricsReport::* field;
  unsigned group;
};

/// The full schema in emission order (stable across releases; new
/// columns append within their group).
std::span<const MetricColumn> metric_columns();

/// Comma-joined header for the selected groups, preceded by any caller
/// prefix columns (e.g. {"bench", "series"}). No trailing newline.
std::string csv_header(unsigned groups,
                       std::span<const std::string> prefix = {});

/// One CSV data row for the selected groups, preceded by the prefix
/// cells. Values are written with the stream's current floating-point
/// formatting (set `os.precision(17)` for round-trip bytes). No
/// trailing newline.
void write_csv_row(std::ostream& os, const MetricsReport& p, unsigned groups,
                   std::span<const std::string> prefix = {});

/// The selected groups as `"name": value` JSON members joined by ", "
/// (no surrounding braces), so callers can splice run identity around
/// them. Values are emitted with enough digits to round-trip.
void write_json_fields(std::ostream& os, const MetricsReport& p,
                       unsigned groups);

}  // namespace gridmon::core
