#pragma once

/// \file experiment.hpp
/// Measurement protocol shared by every experiment: warm up, measure for
/// a fixed span (10 minutes in the paper), and report the four metrics of
/// §3.2 — throughput, response time, CPU load and load1 — for the machine
/// hosting the service under test.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gridmon/core/metrics_report.hpp"
#include "gridmon/core/testbed.hpp"
#include "gridmon/core/workload.hpp"
#include "gridmon/metrics/report.hpp"

namespace gridmon::net {
class ServerPort;
}

namespace gridmon::core {

struct MeasureConfig {
  double warmup = 120.0;
  double duration = 600.0;  // the paper's 10-minute span
  /// When set, span/counter collection is switched on for exactly the
  /// measured span: enabled once warmup ends, disabled when the duration
  /// expires. Null (the default) leaves tracing untouched.
  trace::Collector* collector = nullptr;
  /// When >= 0 (absolute sim time, typically a fault window's end), the
  /// SweepPoint's `recovery` reports the delay from this mark to the
  /// first successful query completion at or after it.
  double recovery_mark = -1;
  /// Optional probe polled once at the end of the window: the absolute
  /// sim time the crashed service's *state* re-converged to its pre-crash
  /// size (Scenario::recovered_at), or -1 if it never did. Feeds the
  /// SweepPoint's `recovery_complete`. The first-successful-query mark
  /// above dates service *reachability*; a soft-state service answers
  /// long before its contents are back, which is exactly the gap the two
  /// columns expose.
  std::function<double()> recovered_at;
  /// The service's listen port when a resilience policy is active: its
  /// shed counter is deltaed over the window into `shed_rate`. Null (the
  /// default) reports zero.
  const net::ServerPort* port = nullptr;
  /// Response-time bound for a completion to count toward goodput. 0 (the
  /// default) counts every completion, making goodput == throughput.
  double goodput_deadline = 0;
};

/// One sweep point of a figure. The historical name for the typed
/// metrics row; see metrics_report.hpp for the fields and the schema
/// that drives CSV/JSON emission.
using SweepPoint = MetricsReport;

/// Run the clock through warmup+duration and collect a SweepPoint for
/// `workload` with host metrics from `server_host`.
SweepPoint measure(Testbed& testbed, UserWorkload& workload,
                   const std::string& server_host, double x,
                   MeasureConfig config = {});

/// Replicate a whole sweep-point experiment across `seeds` independent
/// random streams and average the metrics (population stddev of the
/// throughput is reported through `throughput_stddev_out` when given).
/// `run_one` builds and measures a fresh deployment for one seed.
SweepPoint replicate(const std::vector<std::uint64_t>& seeds,
                     const std::function<SweepPoint(std::uint64_t)>& run_one,
                     double* throughput_stddev_out = nullptr);

/// A figure = one metric across sweep points for several series.
struct Series {
  std::string name;
  std::vector<SweepPoint> points;
};

/// Print the paper-style figure tables (one table per metric:
/// throughput, response time, load1, CPU) for a set of series sharing the
/// same x values. `first_figure` is the paper's figure number of the
/// throughput plot (e.g. 5 prints Figures 5-8).
void print_figures(std::ostream& os, int first_figure,
                   const std::string& subject, const std::string& x_label,
                   const std::vector<Series>& series);

}  // namespace gridmon::core
