/// SpecBuilder — validating ScenarioSpec construction.
///
/// All INI key parsing lives here: SpecBuilder::set() applies one
/// `[section] key = value` triple and *records* malformed input instead
/// of throwing, and build() runs the cross-field validation pass, so a
/// config file (or a bench preset) reports every problem in one
/// ConfigError rather than stopping at the first bad key.

#include <algorithm>
#include <cctype>
#include <sstream>

#include "gridmon/core/scenario_spec.hpp"

namespace gridmon::core {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::vector<int> parse_int_list(const std::string& value) {
  std::vector<int> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    try {
      std::size_t used = 0;
      int v = std::stoi(item, &used);
      if (used != item.size() || v <= 0) throw std::invalid_argument(item);
      out.push_back(v);
    } catch (const std::exception&) {
      throw ConfigError("bad integer '" + item + "'");
    }
  }
  if (out.empty()) throw ConfigError("empty list");
  return out;
}

int parse_int(const std::string& value) {
  return parse_int_list(value).front();
}

double parse_double(const std::string& value) {
  try {
    std::size_t used = 0;
    double v = std::stod(value, &used);
    if (used != value.size() || v < 0) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw ConfigError("bad number '" + value + "'");
  }
}

bool parse_bool(const std::string& value) {
  std::string v = lower(value);
  if (v == "true" || v == "yes" || v == "1" || v == "on") return true;
  if (v == "false" || v == "no" || v == "0" || v == "off") return false;
  throw ConfigError("expected a boolean, got '" + value + "'");
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Expect exactly `n` comma-separated fields for fault key `key`.
std::vector<std::string> fault_fields(const std::string& key,
                                      const std::string& value,
                                      std::size_t n) {
  auto fields = split_list(value);
  if (fields.size() != n) {
    throw ConfigError(key + " needs " + std::to_string(n) +
                      " comma-separated fields, got " +
                      std::to_string(fields.size()));
  }
  return fields;
}

ServiceKind parse_service(const std::string& value) {
  static const std::map<std::string, ServiceKind> kNames = {
      {"gris", ServiceKind::Gris},
      {"gris-nocache", ServiceKind::GrisNocache},
      {"giis", ServiceKind::Giis},
      {"agent", ServiceKind::Agent},
      {"manager", ServiceKind::Manager},
      {"registry", ServiceKind::Registry},
      {"rgma-mediated", ServiceKind::RgmaMediated},
      {"rgma-direct", ServiceKind::RgmaDirect},
      {"rgma-standalone", ServiceKind::RgmaStandalone},
      {"giis-aggregate", ServiceKind::GiisAggregate},
      {"manager-aggregate", ServiceKind::ManagerAggregate},
      {"hierarchy", ServiceKind::Hierarchy},
      {"rgma-composite", ServiceKind::RgmaComposite},
      {"stream-fanout", ServiceKind::StreamFanout},
      {"rgma-replicated", ServiceKind::RgmaReplicated},
  };
  auto it = kNames.find(lower(value));
  if (it == kNames.end()) {
    throw ConfigError("unknown service '" + value + "'");
  }
  return it->second;
}

QueryVariant parse_query(const std::string& value) {
  static const std::map<std::string, QueryVariant> kNames = {
      {"default", QueryVariant::Default},
      {"all", QueryVariant::ScopeAll},
      {"part", QueryVariant::ScopePart},
      {"dump", QueryVariant::ManagerDump},
      {"constraint", QueryVariant::ManagerConstraint},
      {"site-routed", QueryVariant::SiteRouted},
  };
  auto it = kNames.find(lower(value));
  if (it == kNames.end()) {
    throw ConfigError("unknown query variant '" + value + "'");
  }
  return it->second;
}

void apply_experiment_key(ScenarioSpec& spec, const std::string& key,
                          const std::string& value) {
  if (key == "service") {
    spec.service = parse_service(value);
  } else if (key == "query") {
    spec.query = parse_query(value);
  } else if (key == "users") {
    spec.users = parse_int_list(value);
  } else if (key == "collectors") {
    spec.collectors = parse_int(value);
  } else if (key == "clients") {
    std::string v = lower(value);
    if (v == "uc") {
      spec.lucky_clients = false;
    } else if (v == "lucky") {
      spec.lucky_clients = true;
    } else {
      throw ConfigError("clients must be 'uc' or 'lucky', got '" + value +
                        "'");
    }
  } else if (key == "warmup") {
    spec.warmup = parse_double(value);
  } else if (key == "duration") {
    spec.duration = parse_double(value);
  } else if (key == "seed") {
    spec.seed = static_cast<std::uint64_t>(parse_double(value));
  } else if (key == "gris_count") {
    spec.gris_count = parse_int(value);
  } else if (key == "machines") {
    spec.machines = parse_int(value);
  } else if (key == "two_level") {
    spec.two_level = parse_bool(value);
  } else if (key == "replicas") {
    spec.replicas = parse_int(value);
  } else if (key == "pool_size") {
    spec.pool_size = parse_int(value);
  } else if (key == "servlets") {
    spec.servlets = parse_int(value);
  } else if (key == "producers_each") {
    spec.producers_each = parse_int(value);
  } else if (key == "subscribers") {
    spec.subscribers = parse_int(value);
  } else if (key == "sources") {
    spec.sources = parse_int(value);
  } else if (key == "table") {
    spec.table = value;
  } else if (key == "constraint") {
    spec.constraint = value;
  } else if (key == "cachettl") {
    spec.cachettl = parse_double(value);
  } else if (key == "provider_ttl") {
    spec.provider_ttl = parse_double(value);
  } else if (key == "gris_backlog") {
    spec.gris_backlog = parse_int(value);
  } else {
    throw ConfigError("unknown key '" + key + "'");
  }
}

void apply_fault_key(ScenarioSpec& spec, const std::string& key,
                     const std::string& value) {
  if (key == "crash" || key == "blackhole") {
    auto f = fault_fields(key, value, 3);
    spec.faults.crash(f[0], parse_double(f[1]), parse_double(f[2]),
                      key == "blackhole");
  } else if (key == "partition") {
    auto f = fault_fields(key, value, 4);
    spec.faults.partition(f[0], f[1], parse_double(f[2]), parse_double(f[3]));
  } else if (key == "degrade") {
    auto f = fault_fields(key, value, 5);
    spec.faults.degrade_wan(f[0], f[1], parse_double(f[2]),
                            parse_double(f[3]), parse_double(f[4]));
  } else if (key == "slow_host") {
    auto f = fault_fields(key, value, 4);
    spec.faults.slow_host(f[0], parse_double(f[1]), parse_double(f[2]),
                          parse_double(f[3]));
  } else if (key == "collector_outage") {
    auto f = fault_fields(key, value, 3);
    spec.faults.collector_outage(f[0], parse_double(f[1]),
                                 parse_double(f[2]));
  } else if (key == "query_deadline") {
    spec.query_deadline = parse_double(value);
  } else if (key == "max_attempts") {
    spec.max_attempts = static_cast<int>(parse_double(value));
  } else {
    throw ConfigError("unknown key '" + key + "'");
  }
}

void apply_store_key(ScenarioSpec& spec, const std::string& key,
                     const std::string& value) {
  if (key == "mode") {
    auto mode = store::parse_mode(lower(value));
    if (!mode) {
      throw ConfigError("unknown durability mode '" + value +
                        "' (volatile | wal | wal+snapshot)");
    }
    spec.store.mode = *mode;
  } else if (key == "fsync_latency") {
    spec.store.fsync_latency = parse_double(value);
  } else if (key == "write_bandwidth") {
    spec.store.write_bandwidth = parse_double(value);
  } else if (key == "group_commit_window") {
    spec.store.group_commit_window = parse_double(value);
  } else if (key == "snapshot_interval") {
    spec.store.snapshot_interval = parse_double(value);
  } else if (key == "replay_cpu_per_record") {
    spec.store.replay_cpu_per_record = parse_double(value);
  } else {
    throw ConfigError("unknown key '" + key + "'");
  }
}

void apply_resilience_key(ScenarioSpec& spec, const std::string& key,
                          const std::string& value) {
  auto& r = spec.resilience;
  if (key == "enabled") {
    bool on = parse_bool(value);
    r.enabled = on;
    r.client.enabled = on;
    r.server.enabled = on;
  } else if (key == "client") {
    r.client.enabled = parse_bool(value);
    r.enabled = r.client.enabled || r.server.enabled;
  } else if (key == "server") {
    r.server.enabled = parse_bool(value);
    r.enabled = r.client.enabled || r.server.enabled;
  } else if (key == "retry_budget") {
    r.client.budget.capacity = parse_double(value);
  } else if (key == "retry_ratio") {
    r.client.budget.fill_ratio = parse_double(value);
  } else if (key == "breaker_window") {
    r.client.breaker.window = static_cast<std::size_t>(parse_int(value));
  } else if (key == "breaker_min_samples") {
    r.client.breaker.min_samples = static_cast<std::size_t>(parse_int(value));
  } else if (key == "breaker_threshold") {
    r.client.breaker.failure_threshold = parse_double(value);
  } else if (key == "breaker_open_secs") {
    r.client.breaker.open_duration = parse_double(value);
  } else if (key == "breaker_probes") {
    r.client.breaker.half_open_probes =
        static_cast<std::size_t>(parse_int(value));
  } else if (key == "discipline") {
    try {
      r.server.discipline = resilience::parse_discipline(lower(value));
    } catch (const std::invalid_argument& e) {
      throw ConfigError(e.what());
    }
  } else if (key == "queue_limit") {
    r.server.queue_limit = static_cast<std::size_t>(parse_int(value));
  } else if (key == "deadline_budget") {
    r.server.deadline_budget = parse_double(value);
  } else if (key == "serve_stale") {
    r.server.serve_stale = parse_bool(value);
  } else if (key == "pressure") {
    r.server.pressure_threshold = parse_double(value);
  } else if (key == "goodput_deadline") {
    spec.goodput_deadline = parse_double(value);
  } else {
    throw ConfigError("unknown key '" + key + "'");
  }
}

void apply_engine_key(ScenarioSpec& spec, const std::string& key,
                      const std::string& value) {
  if (key == "shards") {
    // 0 (legacy) is a legal value here, so bypass parse_int's > 0 rule.
    spec.engine.shards = static_cast<int>(parse_double(value));
  } else if (key == "threads") {
    spec.engine.threads = static_cast<int>(parse_double(value));
  } else if (key == "lookahead") {
    spec.engine.lookahead = parse_double(value);
  } else {
    throw ConfigError("unknown key '" + key + "'");
  }
}

}  // namespace

SpecBuilder ScenarioSpec::build() { return SpecBuilder{}; }

SpecBuilder& SpecBuilder::set(const std::string& section,
                              const std::string& key,
                              const std::string& value,
                              const std::string& where) {
  const std::string sec = lower(trim(section));
  const std::string k = lower(trim(key));
  try {
    if (sec == "experiment") {
      apply_experiment_key(spec_, k, trim(value));
    } else if (sec == "faults") {
      apply_fault_key(spec_, k, trim(value));
    } else if (sec == "store") {
      apply_store_key(spec_, k, trim(value));
    } else if (sec == "resilience") {
      apply_resilience_key(spec_, k, trim(value));
    } else if (sec == "engine") {
      apply_engine_key(spec_, k, trim(value));
    } else {
      throw ConfigError("unknown section [" + sec + "]");
    }
  } catch (const ConfigError& e) {
    std::string prefix = where.empty() ? "" : where + ": ";
    errors_.push_back(prefix + "[" + sec + "] " + k + ": " + e.what());
  }
  return *this;
}

SpecBuilder& SpecBuilder::note_error(std::string message) {
  errors_.push_back(std::move(message));
  return *this;
}

namespace {

/// Range and cross-field checks over the whole spec — every violation is
/// appended, none aborts the pass.
void validate_spec(const ScenarioSpec& spec, std::vector<std::string>& out) {
  auto require = [&out](bool ok, const std::string& msg) {
    if (!ok) out.push_back(msg);
  };
  require(!spec.users.empty(), "users: at least one sweep point required");
  for (int u : spec.users) {
    if (u <= 0) {
      out.push_back("users: sweep points must be positive, got " +
                    std::to_string(u));
      break;
    }
  }
  require(spec.collectors > 0, "collectors must be positive");
  require(spec.warmup >= 0, "warmup must be non-negative");
  require(spec.duration > 0, "duration must be positive");
  require(!spec.gris_host.empty(), "gris_host must name a machine");
  require(spec.gris_count > 0, "gris_count must be positive");
  require(spec.machines > 0, "machines must be positive");
  require(spec.replicas > 0, "replicas must be positive");
  require(spec.pool_size > 0, "pool_size must be positive");
  require(spec.servlets > 0, "servlets must be positive");
  require(spec.producers_each > 0, "producers_each must be positive");
  require(spec.subscribers > 0, "subscribers must be positive");
  require(spec.sources > 0, "sources must be positive");
  require(!spec.table.empty(), "table must not be empty");
  require(spec.cachettl >= 0, "cachettl must be non-negative");
  require(spec.provider_ttl >= 0, "provider_ttl must be non-negative");
  require(spec.gris_backlog >= 0, "gris_backlog must be non-negative");
  require(spec.provider_entries >= 0,
          "provider_entries must be non-negative");
  require(spec.provider_bytes >= 0, "provider_bytes must be non-negative");
  require(spec.ps_stale_after >= 0, "ps_stale_after must be non-negative");
  require(spec.self_publish_interval >= 0,
          "self_publish_interval must be non-negative");
  require(spec.manager_ad_lifetime >= 0,
          "manager_ad_lifetime must be non-negative");
  require(spec.manager_stale_after >= 0,
          "manager_stale_after must be non-negative");
  require(spec.query_deadline >= 0, "query_deadline must be non-negative");
  require(spec.max_attempts >= 0, "max_attempts must be non-negative");
  require(spec.goodput_deadline >= 0,
          "goodput_deadline must be non-negative");
  require(spec.store.fsync_latency >= 0,
          "[store] fsync_latency must be non-negative");
  require(spec.store.write_bandwidth > 0,
          "[store] write_bandwidth must be positive");
  require(spec.store.group_commit_window >= 0,
          "[store] group_commit_window must be non-negative");
  require(spec.store.snapshot_interval > 0,
          "[store] snapshot_interval must be positive");
  require(spec.store.replay_cpu_per_record >= 0,
          "[store] replay_cpu_per_record must be non-negative");
  if (spec.store.enabled() && spec.service != ServiceKind::Registry &&
      spec.service != ServiceKind::Manager &&
      spec.service != ServiceKind::ManagerAggregate) {
    out.push_back("service '" + spec.service_name() +
                  "' has no durable-state support; [store] mode must be "
                  "volatile");
  }
  require(spec.engine.shards >= 0, "[engine] shards must be non-negative");
  require(spec.engine.threads >= 0, "[engine] threads must be non-negative");
  require(spec.engine.lookahead >= 0,
          "[engine] lookahead must be non-negative");
  if (spec.engine.sharded()) {
    if (spec.service == ServiceKind::StreamFanout) {
      out.push_back(
          "[engine] shards: the sharded engine needs a pull query; "
          "stream-fanout is push-only");
    }
    if (!spec.faults.empty()) {
      out.push_back(
          "[engine] shards: fault injection is not supported by the "
          "sharded engine yet (run with shards = 0)");
    }
    if (spec.resilience.enabled) {
      out.push_back(
          "[engine] shards: the resilience layer is not supported by the "
          "sharded engine yet (run with shards = 0)");
    }
    if (spec.lucky_clients) {
      out.push_back(
          "[engine] shards: the sharded engine drives the UC client pool "
          "only; lucky_clients must be false");
    }
    if (spec.query_deadline > 0) {
      out.push_back(
          "[engine] shards: query_deadline is not supported by the "
          "sharded engine's frontier clients (run with shards = 0)");
    }
    if (spec.max_attempts > 0) {
      out.push_back(
          "[engine] shards: max_attempts is not supported by the "
          "sharded engine's frontier clients (run with shards = 0)");
    }
  }
}

}  // namespace

ScenarioSpec SpecBuilder::build() {
  std::vector<std::string> all = errors_;
  validate_spec(spec_, all);
  if (!all.empty()) {
    std::string msg = "invalid scenario spec (" +
                      std::to_string(all.size()) +
                      (all.size() == 1 ? " error):" : " errors):");
    for (const auto& e : all) msg += "\n  - " + e;
    throw ConfigError(msg);
  }
  return spec_;
}

ScenarioSpec parse_scenario_spec(const std::string& text) {
  auto ini = parse_ini(text);
  if (ini.find("experiment") == ini.end()) {
    throw ConfigError("missing [experiment] section");
  }
  SpecBuilder builder;
  // Apply the resilience master switch first so `enabled = true` composes
  // with per-side overrides regardless of key order in the file.
  auto res_it = ini.find("resilience");
  if (res_it != ini.end()) {
    auto en = res_it->second.find("enabled");
    if (en != res_it->second.end()) {
      builder.set("resilience", "enabled", en->second);
    }
  }
  for (const auto& [section, keys] : ini) {
    for (const auto& [key, value] : keys) {
      if (section == "resilience" && key == "enabled") continue;
      builder.set(section, key, value);
    }
  }
  return builder.build();
}

}  // namespace gridmon::core
