#include "gridmon/core/metrics_report.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

namespace gridmon::core {

std::span<const MetricColumn> metric_columns() {
  // Emission order is part of the CSV contract: core first (the
  // historical 6-column layout), then the optional groups in enum order.
  static constexpr std::array<MetricColumn, 19> kColumns{{
      {"x", &MetricsReport::x, kMetricCore},
      {"throughput", &MetricsReport::throughput, kMetricCore},
      {"response", &MetricsReport::response, kMetricCore},
      {"load1", &MetricsReport::load1, kMetricCore},
      {"cpu", &MetricsReport::cpu, kMetricCore},
      {"refused_per_sec", &MetricsReport::refused, kMetricCore},
      {"availability", &MetricsReport::availability, kMetricHealth},
      {"error_rate", &MetricsReport::error_rate, kMetricHealth},
      {"stale_frac", &MetricsReport::stale_frac, kMetricHealth},
      {"recovery_s", &MetricsReport::recovery, kMetricRecovery},
      {"recovery_complete_s", &MetricsReport::recovery_complete,
       kMetricRecovery},
      {"goodput", &MetricsReport::goodput, kMetricResilience},
      {"shed_per_sec", &MetricsReport::shed_rate, kMetricResilience},
      {"retry_amp", &MetricsReport::retry_amp, kMetricResilience},
      {"events", &MetricsReport::events, kMetricEngine},
      {"wall_clock_s", &MetricsReport::wall_clock_s, kMetricEngine},
      {"events_per_sec", &MetricsReport::events_per_sec, kMetricEngine},
      {"peak_rss_kb", &MetricsReport::peak_rss_kb, kMetricEngine},
      {"shards", &MetricsReport::shards, kMetricEngine},
  }};
  return kColumns;
}

std::string csv_header(unsigned groups, std::span<const std::string> prefix) {
  std::string out;
  for (const auto& cell : prefix) {
    if (!out.empty()) out += ',';
    out += cell;
  }
  for (const auto& col : metric_columns()) {
    if ((col.group & groups) == 0) continue;
    if (!out.empty()) out += ',';
    out += col.name;
  }
  return out;
}

void write_csv_row(std::ostream& os, const MetricsReport& p, unsigned groups,
                   std::span<const std::string> prefix) {
  bool first = true;
  for (const auto& cell : prefix) {
    if (!first) os << ',';
    os << cell;
    first = false;
  }
  for (const auto& col : metric_columns()) {
    if ((col.group & groups) == 0) continue;
    if (!first) os << ',';
    os << p.*(col.field);
    first = false;
  }
}

void write_json_fields(std::ostream& os, const MetricsReport& p,
                       unsigned groups) {
  bool first = true;
  for (const auto& col : metric_columns()) {
    if ((col.group & groups) == 0) continue;
    if (!first) os << ", ";
    double v = p.*(col.field);
    std::ostringstream num;
    num.precision(std::numeric_limits<double>::max_digits10);
    if (std::isfinite(v)) {
      num << v;
    } else {
      num << "null";  // JSON has no NaN/Inf literal
    }
    os << '"' << col.name << "\": " << num.str();
    first = false;
  }
}

}  // namespace gridmon::core
