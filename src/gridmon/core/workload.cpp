#include "gridmon/core/workload.hpp"

#include <algorithm>
#include <stdexcept>

namespace gridmon::core {

UserWorkload::UserWorkload(Testbed& testbed, QueryFn query,
                           WorkloadConfig config)
    : UserWorkload(testbed,
                   TracedQueryFn([q = std::move(query)](
                       net::Interface& nic, trace::Ctx) { return q(nic); }),
                   config) {}

UserWorkload::UserWorkload(Testbed& testbed, TracedQueryFn query,
                           WorkloadConfig config)
    : testbed_(testbed), query_(std::move(query)), config_(config) {}

void UserWorkload::spawn_users(int n,
                               const std::vector<std::string>& client_hosts) {
  if (client_hosts.empty()) {
    throw std::invalid_argument("no client hosts");
  }
  int capacity =
      config_.max_users_per_host * static_cast<int>(client_hosts.size());
  if (n > capacity) {
    throw std::invalid_argument(
        "requested " + std::to_string(n) + " users but only " +
        std::to_string(capacity) + " fit on " +
        std::to_string(client_hosts.size()) + " client hosts");
  }
  // Even round-robin placement (paper: "evenly divide the number of
  // simulated users by the number of machines to balance the load").
  for (int i = 0; i < n; ++i) {
    const std::string& host_name = client_hosts[static_cast<std::size_t>(i) %
                                                client_hosts.size()];
    testbed_.sim().spawn(user_loop(*this, testbed_.host(host_name),
                                   testbed_.nic(host_name),
                                   testbed_.rng().fork()));
    ++users_;
  }
}

sim::Task<void> UserWorkload::user_loop(UserWorkload& self, host::Host& host,
                                        net::Interface& nic, sim::Rng rng) {
  auto& sim = host.simulation();
  // Desynchronize start-up so users do not fire in lockstep.
  co_await sim.delay(rng.uniform(0, self.config_.think_time));
  for (;;) {
    double started = sim.now();
    std::size_t retry = 0;
    QueryAttempt attempt;
    // One trace per user query (null Ctx while the collector is off or
    // absent, which keeps the whole iteration allocation-free).
    trace::Ctx root = self.collector_ != nullptr
                          ? self.collector_->new_trace()
                          : trace::Ctx{};
    {
      trace::Span query_span(root, trace::SpanKind::Query);
      for (;;) {
        attempt = co_await self.query_(nic, query_span.ctx());
        if (attempt.admitted) break;
        ++self.refused_;
        // Dropped SYN: wait out the kernel retransmission timer.
        const auto& schedule = self.config_.retry_schedule;
        double delay = schedule.empty()
                           ? 1.0
                           : schedule[std::min(retry, schedule.size() - 1)];
        double j = self.config_.retry_jitter;
        trace::Span backoff(query_span.ctx(), trace::SpanKind::Backoff);
        co_await sim.delay(delay * rng.uniform(1.0 - j, 1.0 + j));
        ++retry;
      }
      query_span.set_arg(attempt.response_bytes);
    }
    self.completions_.push_back(
        Completion{sim.now(), sim.now() - started, attempt.response_bytes});
    if (self.config_.client_cpu_per_query > 0) {
      co_await host.cpu().consume(self.config_.client_cpu_per_query);
    }
    trace::Span think(root, trace::SpanKind::Think);
    co_await sim.delay(self.config_.think_time);
    think.end();
  }
}

double UserWorkload::throughput(double t0, double t1) const {
  if (t1 <= t0) return 0;
  std::size_t n = 0;
  for (const auto& c : completions_) {
    if (c.t >= t0 && c.t <= t1) ++n;
  }
  return static_cast<double>(n) / (t1 - t0);
}

double UserWorkload::mean_response(double t0, double t1) const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& c : completions_) {
    if (c.t >= t0 && c.t <= t1) {
      sum += c.response_time;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0;
}

}  // namespace gridmon::core
