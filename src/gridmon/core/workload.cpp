#include "gridmon/core/workload.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "gridmon/sim/event.hpp"

namespace gridmon::core {
namespace {

/// Shared mailbox between a user and one in-flight query attempt. The
/// user may abandon the attempt at its deadline; the attempt coroutine
/// keeps running (the server still does the work) and posts its result
/// into a box nobody reads.
struct AttemptBox {
  std::optional<QueryAttempt> result;
  sim::Event done;
  explicit AttemptBox(sim::Simulation& s) : done(s) {}
};

sim::Task<void> run_attempt(const TracedQueryFn& query, net::Interface& nic,
                            trace::Ctx ctx, std::shared_ptr<AttemptBox> box) {
  QueryAttempt a = co_await query(nic, ctx);
  box->result = a;
  box->done.trigger();
}

}  // namespace

UserWorkload::UserWorkload(Testbed& testbed, QueryFn query,
                           WorkloadConfig config)
    : UserWorkload(testbed,
                   TracedQueryFn([q = std::move(query)](
                       net::Interface& nic, trace::Ctx) { return q(nic); }),
                   config) {}

UserWorkload::UserWorkload(Testbed& testbed, TracedQueryFn query,
                           WorkloadConfig config)
    : testbed_(testbed),
      query_(std::move(query)),
      config_(config),
      policy_(config_.resilience) {
  backoff_.schedule = config_.retry_schedule;
  backoff_.jitter = config_.retry_jitter;
}

void UserWorkload::spawn_users(int n,
                               const std::vector<std::string>& client_hosts) {
  if (client_hosts.empty()) {
    throw std::invalid_argument("no client hosts");
  }
  int capacity =
      config_.max_users_per_host * static_cast<int>(client_hosts.size());
  if (n > capacity) {
    throw std::invalid_argument(
        "requested " + std::to_string(n) + " users but only " +
        std::to_string(capacity) + " fit on " +
        std::to_string(client_hosts.size()) + " client hosts");
  }
  // Even round-robin placement (paper: "evenly divide the number of
  // simulated users by the number of machines to balance the load").
  for (int i = 0; i < n; ++i) {
    const std::string& host_name = client_hosts[static_cast<std::size_t>(i) %
                                                client_hosts.size()];
    testbed_.sim().spawn(user_loop(*this, testbed_.host(host_name),
                                   testbed_.nic(host_name),
                                   testbed_.rng().fork()));
    ++users_;
  }
}

sim::Task<void> UserWorkload::user_loop(UserWorkload& self, host::Host& host,
                                        net::Interface& nic, sim::Rng rng) {
  auto& sim = host.simulation();
  // Desynchronize start-up so users do not fire in lockstep.
  co_await sim.delay(rng.uniform(0, self.config_.think_time));
  for (;;) {
    double started = sim.now();
    ++self.queries_;
    self.policy_.on_query();
    double deadline = self.config_.query_deadline > 0
                          ? started + self.config_.query_deadline
                          : -1;
    std::size_t retry = 0;
    int attempts = 0;
    bool abandoned = false;
    QueryAttempt attempt;
    // One trace per user query (null Ctx while the collector is off or
    // absent, which keeps the whole iteration allocation-free).
    trace::Ctx root = self.collector_ != nullptr
                          ? self.collector_->new_trace()
                          : trace::Ctx{};
    {
      trace::Span query_span(root, trace::SpanKind::Query);
      for (;;) {
        ++attempts;
        // Circuit breaker toward the service: while Open, fail the
        // attempt locally without touching the network. Fast-fails are
        // client-side decisions, so they do not count as refusals.
        bool fast_failed = !self.policy_.allow(sim.now());
        if (fast_failed) {
          attempt = QueryAttempt{};
        } else if (deadline < 0) {
          ++self.attempts_;
          attempt = co_await self.query_(nic, query_span.ctx());
        } else {
          double remaining = deadline - sim.now();
          if (remaining <= 0) {
            abandoned = true;
            break;
          }
          // Race the attempt against the script's remaining patience.
          ++self.attempts_;
          auto box = std::make_shared<AttemptBox>(sim);
          sim.spawn(run_attempt(self.query_, nic, query_span.ctx(), box));
          bool finished = co_await box->done.wait_for(remaining);
          if (!finished || !box->result) {
            // Deadline hit with the attempt still in flight: the client
            // kills its query tool and walks away; the orphaned attempt
            // runs on server-side until it fizzles out. The breaker
            // learns nothing (the outcome is unknown to the client).
            abandoned = true;
            break;
          }
          attempt = *box->result;
        }
        if (!fast_failed) {
          self.policy_.record(sim.now(), attempt.admitted && !attempt.failed &&
                                             !attempt.timed_out);
          if (attempt.timed_out) ++self.timeouts_;
          if (attempt.failed) ++self.failures_;
          if (attempt.admitted && !attempt.failed && !attempt.timed_out) break;
          if (!attempt.admitted && !attempt.timed_out) ++self.refused_;
        }
        if (self.config_.max_attempts > 0 &&
            attempts >= self.config_.max_attempts) {
          abandoned = true;
          break;
        }
        // Retry budget: an exhausted budget abandons the query rather
        // than amplifying an outage into a retry storm.
        if (!self.policy_.allow_retry()) {
          abandoned = true;
          break;
        }
        // Dropped SYN / failed attempt: wait out the retransmission timer.
        double delay = self.backoff_.delay(retry, rng);
        if (deadline >= 0 && sim.now() + delay >= deadline) {
          // The deadline lands inside this backoff: die right there.
          trace::Span backoff(query_span.ctx(), trace::SpanKind::Backoff);
          if (deadline > sim.now()) co_await sim.delay(deadline - sim.now());
          abandoned = true;
          break;
        }
        trace::Span backoff(query_span.ctx(), trace::SpanKind::Backoff);
        co_await sim.delay(delay);
        ++retry;
      }
      query_span.set_arg(attempt.response_bytes);
      if (abandoned && root) {
        root.col->instant(query_span.ctx(), trace::SpanKind::Timeout,
                          "query_deadline");
      }
    }
    if (abandoned) {
      ++self.abandoned_;
    } else {
      self.completions_.push_back(Completion{sim.now(), sim.now() - started,
                                             attempt.response_bytes,
                                             attempt.stale});
    }
    if (self.config_.client_cpu_per_query > 0) {
      co_await host.cpu().consume(self.config_.client_cpu_per_query);
    }
    trace::Span think(root, trace::SpanKind::Think);
    co_await sim.delay(self.config_.think_time);
    think.end();
  }
}

double UserWorkload::throughput(double t0, double t1) const {
  if (t1 <= t0) return 0;
  std::size_t n = 0;
  for (const auto& c : completions_) {
    if (c.t >= t0 && c.t <= t1) ++n;
  }
  return static_cast<double>(n) / (t1 - t0);
}

double UserWorkload::mean_response(double t0, double t1) const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& c : completions_) {
    if (c.t >= t0 && c.t <= t1) {
      sum += c.response_time;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0;
}

std::size_t UserWorkload::completed(double t0, double t1) const {
  std::size_t n = 0;
  for (const auto& c : completions_) {
    if (c.t >= t0 && c.t <= t1) ++n;
  }
  return n;
}

double UserWorkload::stale_fraction(double t0, double t1) const {
  std::size_t n = 0;
  std::size_t stale = 0;
  for (const auto& c : completions_) {
    if (c.t >= t0 && c.t <= t1) {
      ++n;
      if (c.stale) ++stale;
    }
  }
  return n ? static_cast<double>(stale) / static_cast<double>(n) : 0;
}

double UserWorkload::goodput(double t0, double t1, double deadline) const {
  if (t1 <= t0) return 0;
  std::size_t n = 0;
  for (const auto& c : completions_) {
    if (c.t >= t0 && c.t <= t1 &&
        (deadline <= 0 || c.response_time <= deadline)) {
      ++n;
    }
  }
  return static_cast<double>(n) / (t1 - t0);
}

double UserWorkload::first_success_after(double t) const {
  double best = -1;
  for (const auto& c : completions_) {
    if (c.t >= t && (best < 0 || c.t < best)) best = c.t;
  }
  return best;
}

}  // namespace gridmon::core
