#pragma once

/// \file scenarios.hpp
/// Deployment builders reproducing the service placements of the paper's
/// four experiment sets (§3.3-§3.6). Shared by the bench binaries and the
/// integration tests so every consumer measures the same configuration.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gridmon/core/adapters.hpp"
#include "gridmon/core/testbed.hpp"
#include "gridmon/core/workload.hpp"
#include "gridmon/fault/injector.hpp"
#include "gridmon/hawkeye/agent.hpp"
#include "gridmon/hawkeye/manager.hpp"
#include "gridmon/mds/giis.hpp"
#include "gridmon/mds/gris.hpp"
#include "gridmon/rgma/composite_producer.hpp"
#include "gridmon/rgma/consumer_servlet.hpp"
#include "gridmon/rgma/producer_servlet.hpp"
#include "gridmon/rgma/registry.hpp"
#include "gridmon/sim/stats.hpp"
#include "gridmon/store/log.hpp"

namespace gridmon::core {

/// Base for scenarios: guarantees every coroutine referencing scenario
/// components is destroyed (via Simulation::shutdown) before those
/// components are.
class Scenario {
 public:
  explicit Scenario(Testbed& tb) : testbed_(tb) {}
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;
  virtual ~Scenario() { testbed_.sim().shutdown(); }

  Testbed& testbed() noexcept { return testbed_; }

  /// Attach the scenario's service-level usage probes (thread pools,
  /// daemon threads) to counter tracks in `col`. Default: nothing.
  /// `col` must outlive the scenario's services.
  virtual void instrument(trace::Collector& col) { (void)col; }

  /// Register the scenario's crashable components with `inj`. Every
  /// scenario names its service under test "server"; secondary components
  /// get their own stable names ("manager", "registry", "gris0", ...).
  /// Default: nothing registered.
  virtual void register_faults(fault::Injector& inj) { (void)inj; }

  /// Advance the simulation through the deployment's settling phase
  /// (cache warm-up, first advertisements, registration rounds) so
  /// measurement starts from the steady state the paper measured.
  /// Call once, before attaching workloads. Default: nothing.
  virtual void prefill() {}

  /// The canonical client query bound by make_scenario (empty for
  /// push-only deployments such as the streaming fan-out).
  const TracedQueryFn& query_fn() const noexcept { return query_; }
  void set_query(TracedQueryFn q) { query_ = std::move(q); }

  /// Thread the overload-control layer through the deployment: server
  /// policy on every listen port, serve-stale in the caches, client
  /// breakers on the inter-service call paths. Default: nothing.
  virtual void apply_resilience(const resilience::Config& config) {
    (void)config;
  }

  /// The listen port of the service under test — measure() reads its
  /// shed counters through this. Null for push-only deployments.
  virtual const net::ServerPort* server_port() const { return nullptr; }

  /// Durability engine of the service under test (null when the service
  /// runs volatile or has no durable-state support). gridmon_run's
  /// [store] columns and the durability bench read through this.
  virtual const store::Log* store_log() const { return nullptr; }

  /// Absolute sim time the crashed service's state re-converged to its
  /// pre-crash size (-1 until it happens, or when the service does not
  /// track the notion). Feeds SweepPoint::recovery_complete.
  virtual double recovered_at() const { return -1; }

 protected:
  Testbed& testbed_;
  TracedQueryFn query_;
};

/// Attach host-level probes for `host` to `col`: the CPU run queue as
/// track "<host>.cpu" and the NIC's transmit/receive flow counts as
/// "<host>.nic_tx" / "<host>.nic_rx".
void instrument_host(Testbed& tb, trace::Collector& col,
                     const std::string& host);

/// The default ten MDS information providers ("ip0".."ip9"), 4 entries of
/// ~2 KB each.
std::vector<mds::ProviderSpec> default_providers(int count = 10);

// ---- Experiment 1 / 3: information servers ----

/// A GRIS with `providers` information providers on `host` (paper:
/// lucky7). `cache` false reproduces the "nocache" configuration.
struct GrisScenario : Scenario {
  ~GrisScenario() override { testbed_.sim().shutdown(); }

  GrisScenario(Testbed& tb, int providers, bool cache,
               const std::string& host = "lucky7");
  /// Explicit provider specs (the TTL / entry-volume ablations).
  GrisScenario(Testbed& tb, std::vector<mds::ProviderSpec> providers,
               bool cache, const std::string& host = "lucky7");
  /// Full config control (the overload ablations shrink the listen
  /// backlog so the admission queue, not slapd's internals, is the bound).
  GrisScenario(Testbed& tb, std::vector<mds::ProviderSpec> providers,
               mds::GrisConfig config, const std::string& host = "lucky7");
  void instrument(trace::Collector& col) override { gris->instrument(col); }
  void register_faults(fault::Injector& inj) override {
    inj.add_service("server", *gris);
  }
  void apply_resilience(const resilience::Config& config) override {
    gris->set_resilience(config);
  }
  const net::ServerPort* server_port() const override {
    return &gris->port();
  }
  std::unique_ptr<mds::Gris> gris;
};

/// A Hawkeye Agent on lucky4 reporting to a Manager on lucky3 (paper's
/// Experiment 1 layout); `modules` scales Experiment 3.
struct AgentScenario : Scenario {
  ~AgentScenario() override { testbed_.sim().shutdown(); }

  AgentScenario(Testbed& tb, int modules = 11,
                const std::string& agent_host = "lucky4",
                const std::string& manager_host = "lucky3");
  void instrument(trace::Collector& col) override {
    manager->instrument(col);
    agent->instrument(col);
  }
  void register_faults(fault::Injector& inj) override {
    inj.add_service("server", *agent);
    inj.add_service("agent", *agent);
    inj.add_service("manager", *manager);
  }
  void apply_resilience(const resilience::Config& config) override {
    agent->set_resilience(config);
    manager->set_resilience(config);
  }
  const net::ServerPort* server_port() const override {
    return &agent->port();
  }
  std::unique_ptr<hawkeye::Manager> manager;
  std::unique_ptr<hawkeye::Agent> agent;
};

/// R-GMA: Registry on lucky1, one ProducerServlet with `producers`
/// Producers on lucky3, plus ConsumerServlets either on every lucky node
/// (paper's "lucky" user placement) or a single shared one at UC.
struct RgmaScenario : Scenario {
  ~RgmaScenario() override { testbed_.sim().shutdown(); }

  enum class Consumers { PerLuckyNode, SingleAtUc, None };
  RgmaScenario(Testbed& tb, int producers, Consumers consumers);
  void instrument(trace::Collector& col) override;
  void register_faults(fault::Injector& inj) override;
  void apply_resilience(const resilience::Config& config) override {
    producer_servlet->port().set_policy(config.server);
    registry->port().set_policy(config.server);
    for (auto& [machine, servlet] : consumer_servlets) {
      servlet->set_resilience(config);
    }
  }
  const net::ServerPort* server_port() const override {
    return consumer_servlets.empty()
               ? &producer_servlet->port()
               : &consumer_servlets.begin()->second->port();
  }

  std::unique_ptr<rgma::Registry> registry;
  std::unique_ptr<rgma::ProducerServlet> producer_servlet;
  std::map<std::string, std::unique_ptr<rgma::ConsumerServlet>>
      consumer_servlets;  // keyed by hosting machine

  /// Query routing each user through the ConsumerServlet on (or
  /// assigned to) its own client host.
  TracedQueryFn mediated_query(const std::string& table = "cpuload");
  /// Query going straight at the ProducerServlet (Experiment 3).
  TracedQueryFn direct_query(const std::string& table = "cpuload");
};

// ---- Experiment 2: directory servers ----

/// MDS: GIIS on lucky0 aggregating a GRIS (10 providers each) on every
/// of lucky3..lucky7, data pinned in cache (huge cachettl).
struct GiisScenario : Scenario {
  ~GiisScenario() override { testbed_.sim().shutdown(); }

  GiisScenario(Testbed& tb, int gris_count = 5, int providers_per_gris = 10,
               double cachettl = 1e18);
  void instrument(trace::Collector& col) override;
  void register_faults(fault::Injector& inj) override;
  void apply_resilience(const resilience::Config& config) override {
    giis->set_resilience(config);
    for (auto& g : gris) g->set_resilience(config);
  }
  const net::ServerPort* server_port() const override {
    return &giis->port();
  }
  std::unique_ptr<mds::Giis> giis;
  std::vector<std::unique_ptr<mds::Gris>> gris;

  /// Run the initial cache fill so measurements start warm.
  void prefill() override;
};

/// Hawkeye: Manager on lucky3 with Agents (11 modules each) advertising
/// from the six other lucky nodes.
struct ManagerScenario : Scenario {
  ~ManagerScenario() override { testbed_.sim().shutdown(); }

  explicit ManagerScenario(Testbed& tb, int modules_per_agent = 11,
                           hawkeye::ManagerConfig config = {});
  void instrument(trace::Collector& col) override;
  /// "server" crashes the Manager; its collector hook hangs every
  /// advertising agent's modules at once (the Manager has no collectors
  /// of its own, so an outage means the startd feeds go silent).
  void register_faults(fault::Injector& inj) override;
  /// Let the agents' first ads land (the benches' `run(40.0)`).
  void prefill() override { testbed_.sim().run(40.0); }
  void apply_resilience(const resilience::Config& config) override {
    manager->set_resilience(config);
    for (auto& a : agents) a->set_resilience(config);
  }
  const net::ServerPort* server_port() const override {
    return &manager->port();
  }
  const store::Log* store_log() const override {
    return manager->store_log();
  }
  double recovered_at() const override { return manager->recovered_at(); }
  std::unique_ptr<hawkeye::Manager> manager;
  std::vector<std::unique_ptr<hawkeye::Agent>> agents;
};

/// R-GMA: Registry on lucky1, a ProducerServlet with 10 producers on each
/// of the five other lucky nodes (the paper's Experiment 2 layout).
struct RegistryScenario : Scenario {
  ~RegistryScenario() override { testbed_.sim().shutdown(); }

  explicit RegistryScenario(Testbed& tb, int servlets = 5,
                            int producers_each = 10,
                            rgma::RegistryConfig config = {});
  void instrument(trace::Collector& col) override;
  void register_faults(fault::Injector& inj) override;
  /// Let the servlet registrations land (the benches' `run(10.0)`).
  void prefill() override { testbed_.sim().run(10.0); }
  void apply_resilience(const resilience::Config& config) override {
    registry->port().set_policy(config.server);
    for (auto& s : servlets) s->port().set_policy(config.server);
  }
  const net::ServerPort* server_port() const override {
    return &registry->port();
  }
  const store::Log* store_log() const override {
    return registry->store_log();
  }
  double recovered_at() const override { return registry->recovered_at(); }
  std::unique_ptr<rgma::Registry> registry;
  std::vector<std::unique_ptr<rgma::ProducerServlet>> servlets;
};

/// A lone ProducerServlet with no registry: the fault-tolerance bench's
/// direct-query target, optionally self-publishing so its latest-N
/// buffers keep refreshing (and go stale when the feed is cut).
struct StandaloneRgmaScenario : Scenario {
  ~StandaloneRgmaScenario() override { testbed_.sim().shutdown(); }

  StandaloneRgmaScenario(Testbed& tb, int producers,
                         rgma::ProducerServletConfig config = {},
                         double self_publish_interval = 0,
                         const std::string& host = "lucky3");
  void instrument(trace::Collector& col) override {
    servlet->instrument(col);
  }
  void register_faults(fault::Injector& inj) override {
    inj.add_service("server", *servlet);
  }
  void apply_resilience(const resilience::Config& config) override {
    servlet->port().set_policy(config.server);
  }
  const net::ServerPort* server_port() const override {
    return &servlet->port();
  }
  std::unique_ptr<rgma::ProducerServlet> servlet;
};

// ---- Experiment 4: aggregate information servers ----

/// MDS: GIIS on lucky0 with `gris_count` GRIS instances spread over the
/// six other lucky nodes (the paper simulated up to 500 this way).
struct GiisAggregationScenario : Scenario {
  ~GiisAggregationScenario() override { testbed_.sim().shutdown(); }

  GiisAggregationScenario(Testbed& tb, int gris_count,
                          int providers_per_gris = 10);
  void instrument(trace::Collector& col) override;
  void register_faults(fault::Injector& inj) override;
  void apply_resilience(const resilience::Config& config) override {
    giis->set_resilience(config);
    for (auto& g : gris) g->set_resilience(config);
  }
  const net::ServerPort* server_port() const override {
    return &giis->port();
  }
  std::unique_ptr<mds::Giis> giis;
  std::vector<std::unique_ptr<mds::Gris>> gris;
  void prefill() override;
};

/// Hawkeye: Manager on lucky3 with `machines` hawkeye_advertise senders
/// (30-second interval) spread over the other lucky nodes.
struct ManagerAggregationScenario : Scenario {
  ~ManagerAggregationScenario() override { testbed_.sim().shutdown(); }

  ManagerAggregationScenario(Testbed& tb, int machines,
                             int modules_per_machine = 11,
                             hawkeye::ManagerConfig config = {});
  void instrument(trace::Collector& col) override {
    manager->instrument(col);
  }
  void register_faults(fault::Injector& inj) override {
    inj.add_service("server", *manager);
    inj.add_service("manager", *manager);
  }
  void apply_resilience(const resilience::Config& config) override {
    manager->set_resilience(config);
  }
  const net::ServerPort* server_port() const override {
    return &manager->port();
  }
  const store::Log* store_log() const override {
    return manager->store_log();
  }
  double recovered_at() const override { return manager->recovered_at(); }
  std::unique_ptr<hawkeye::Manager> manager;
  std::vector<std::unique_ptr<hawkeye::Advertiser>> advertisers;

  /// Let every advertiser send at least one ad.
  void prefill() override;
};

// ---- Extensions: deployments past the paper's experiment grid ----

/// The multi-layer fix the paper's §3.6 conclusion proposes: a root GIIS
/// either aggregating `gris_count` GRIS directly (flat) or over six site
/// GIISes each owning a subset (two_level), with a finite cache TTL so
/// aggregation keeps re-pulling.
struct HierarchyScenario : Scenario {
  ~HierarchyScenario() override { testbed_.sim().shutdown(); }

  HierarchyScenario(Testbed& tb, int gris_count, bool two_level,
                    double cachettl = 45.0);
  void instrument(trace::Collector& col) override;
  void register_faults(fault::Injector& inj) override;
  void apply_resilience(const resilience::Config& config) override {
    root->set_resilience(config);
    for (auto& m : mids) m->set_resilience(config);
    for (auto& g : gris) g->set_resilience(config);
  }
  const net::ServerPort* server_port() const override {
    return &root->port();
  }
  void prefill() override;

  /// Round-robin user routing over the six site GIISes (the deployment
  /// §3.6 proposes, where "each middle-level aggregate information
  /// server manages a subset").
  TracedQueryFn site_routed_query();

  std::unique_ptr<mds::Giis> root;
  std::vector<std::unique_ptr<mds::Giis>> mids;
  std::vector<std::unique_ptr<mds::Gris>> gris;

 private:
  std::size_t next_ = 0;
};

/// The R-GMA aggregate information server the paper's Table 1 lists as
/// "None": a CompositeProducer on lucky3 subscribed to `source_servlets`
/// ProducerServlets whose producers publish on a 30 s cadence.
struct CompositeScenario : Scenario {
  ~CompositeScenario() override { testbed_.sim().shutdown(); }

  CompositeScenario(Testbed& tb, int source_servlets);
  void instrument(trace::Collector& col) override {
    composite->servlet().instrument(col);
  }
  void register_faults(fault::Injector& inj) override {
    inj.add_service("server", composite->servlet());
  }
  void apply_resilience(const resilience::Config& config) override {
    composite->servlet().port().set_policy(config.server);
    for (auto& s : sources) s->port().set_policy(config.server);
  }
  const net::ServerPort* server_port() const override {
    return &composite->servlet().port();
  }
  /// Let the first publish round reach the aggregate (`run(60.0)`).
  void prefill() override { testbed_.sim().run(60.0); }

  std::unique_ptr<rgma::CompositeProducer> composite;
  std::vector<std::unique_ptr<rgma::ProducerServlet>> sources;

 private:
  static sim::Task<void> publish_loop(Testbed& tb,
                                      rgma::ProducerServlet& servlet,
                                      rgma::Producer& producer,
                                      std::string host, int phase);
};

/// R-GMA push delivery: one ProducerServlet publishing a 1 Hz tuple
/// stream to `subscribers` consumers spread over the UC client hosts.
/// There is no pull query; the bench reads `latency` / `published`.
struct FanoutScenario : Scenario {
  ~FanoutScenario() override { testbed_.sim().shutdown(); }

  FanoutScenario(Testbed& tb, int subscribers);
  void instrument(trace::Collector& col) override {
    servlet->instrument(col);
  }
  void register_faults(fault::Injector& inj) override {
    inj.add_service("server", *servlet);
  }
  void apply_resilience(const resilience::Config& config) override {
    servlet->port().set_policy(config.server);
  }
  const net::ServerPort* server_port() const override {
    return &servlet->port();
  }

  std::unique_ptr<rgma::ProducerServlet> servlet;
  rgma::Producer* producer = nullptr;
  sim::Samples latency;  // publish -> consumer callback, seconds
  std::uint64_t published = 0;

 private:
  static sim::Task<void> publish_loop(FanoutScenario& self);
};

/// The paper's §3.3 recommendation "multiple ProducerServlets for the
/// same information": `replicas` servlets (10 producers each, 30 rows
/// prefilled) behind a Registry, consumers balanced round-robin.
struct ReplicatedRgmaScenario : Scenario {
  ~ReplicatedRgmaScenario() override { testbed_.sim().shutdown(); }

  ReplicatedRgmaScenario(Testbed& tb, int replicas, int pool_size);
  void instrument(trace::Collector& col) override;
  void register_faults(fault::Injector& inj) override;
  void apply_resilience(const resilience::Config& config) override {
    registry->port().set_policy(config.server);
    for (auto& s : servlets) s->port().set_policy(config.server);
  }
  const net::ServerPort* server_port() const override {
    return servlets.empty() ? nullptr : &servlets.front()->port();
  }
  /// Let the replica registrations land (`run(10.0)`).
  void prefill() override { testbed_.sim().run(10.0); }

  /// Round-robin consumers over the replicas.
  TracedQueryFn balanced_query(const std::string& table = "cpuload");

  std::unique_ptr<rgma::Registry> registry;
  std::vector<std::unique_ptr<rgma::ProducerServlet>> servlets;

 private:
  std::size_t next_ = 0;
};

}  // namespace gridmon::core
