#pragma once

/// \file scenarios.hpp
/// Deployment builders reproducing the service placements of the paper's
/// four experiment sets (§3.3-§3.6). Shared by the bench binaries and the
/// integration tests so every consumer measures the same configuration.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gridmon/core/adapters.hpp"
#include "gridmon/core/testbed.hpp"
#include "gridmon/core/workload.hpp"
#include "gridmon/fault/injector.hpp"
#include "gridmon/hawkeye/agent.hpp"
#include "gridmon/hawkeye/manager.hpp"
#include "gridmon/mds/giis.hpp"
#include "gridmon/mds/gris.hpp"
#include "gridmon/rgma/consumer_servlet.hpp"
#include "gridmon/rgma/producer_servlet.hpp"
#include "gridmon/rgma/registry.hpp"

namespace gridmon::core {

/// Base for scenarios: guarantees every coroutine referencing scenario
/// components is destroyed (via Simulation::shutdown) before those
/// components are.
class Scenario {
 public:
  explicit Scenario(Testbed& tb) : testbed_(tb) {}
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;
  virtual ~Scenario() { testbed_.sim().shutdown(); }

  Testbed& testbed() noexcept { return testbed_; }

  /// Attach the scenario's service-level usage probes (thread pools,
  /// daemon threads) to counter tracks in `col`. Default: nothing.
  /// `col` must outlive the scenario's services.
  virtual void instrument(trace::Collector& col) { (void)col; }

  /// Register the scenario's crashable components with `inj`. Every
  /// scenario names its service under test "server"; secondary components
  /// get their own stable names ("manager", "registry", "gris0", ...).
  /// Default: nothing registered.
  virtual void register_faults(fault::Injector& inj) { (void)inj; }

 protected:
  Testbed& testbed_;
};

/// Attach host-level probes for `host` to `col`: the CPU run queue as
/// track "<host>.cpu" and the NIC's transmit/receive flow counts as
/// "<host>.nic_tx" / "<host>.nic_rx".
void instrument_host(Testbed& tb, trace::Collector& col,
                     const std::string& host);

/// The default ten MDS information providers ("ip0".."ip9"), 4 entries of
/// ~2 KB each.
std::vector<mds::ProviderSpec> default_providers(int count = 10);

// ---- Experiment 1 / 3: information servers ----

/// A GRIS with `providers` information providers on `host` (paper:
/// lucky7). `cache` false reproduces the "nocache" configuration.
struct GrisScenario : Scenario {
  ~GrisScenario() override { testbed_.sim().shutdown(); }

  GrisScenario(Testbed& tb, int providers, bool cache,
               const std::string& host = "lucky7");
  void instrument(trace::Collector& col) override { gris->instrument(col); }
  void register_faults(fault::Injector& inj) override {
    inj.add_service("server", *gris);
  }
  std::unique_ptr<mds::Gris> gris;
};

/// A Hawkeye Agent on lucky4 reporting to a Manager on lucky3 (paper's
/// Experiment 1 layout); `modules` scales Experiment 3.
struct AgentScenario : Scenario {
  ~AgentScenario() override { testbed_.sim().shutdown(); }

  AgentScenario(Testbed& tb, int modules = 11,
                const std::string& agent_host = "lucky4",
                const std::string& manager_host = "lucky3");
  void instrument(trace::Collector& col) override {
    manager->instrument(col);
    agent->instrument(col);
  }
  void register_faults(fault::Injector& inj) override {
    inj.add_service("server", *agent);
    inj.add_service("agent", *agent);
    inj.add_service("manager", *manager);
  }
  std::unique_ptr<hawkeye::Manager> manager;
  std::unique_ptr<hawkeye::Agent> agent;
};

/// R-GMA: Registry on lucky1, one ProducerServlet with `producers`
/// Producers on lucky3, plus ConsumerServlets either on every lucky node
/// (paper's "lucky" user placement) or a single shared one at UC.
struct RgmaScenario : Scenario {
  ~RgmaScenario() override { testbed_.sim().shutdown(); }

  enum class Consumers { PerLuckyNode, SingleAtUc, None };
  RgmaScenario(Testbed& tb, int producers, Consumers consumers);
  void instrument(trace::Collector& col) override;
  void register_faults(fault::Injector& inj) override;

  std::unique_ptr<rgma::Registry> registry;
  std::unique_ptr<rgma::ProducerServlet> producer_servlet;
  std::map<std::string, std::unique_ptr<rgma::ConsumerServlet>>
      consumer_servlets;  // keyed by hosting machine

  /// Query routing each user through the ConsumerServlet on (or
  /// assigned to) its own client host.
  TracedQueryFn mediated_query(const std::string& table = "cpuload");
  /// Query going straight at the ProducerServlet (Experiment 3).
  TracedQueryFn direct_query(const std::string& table = "cpuload");
};

// ---- Experiment 2: directory servers ----

/// MDS: GIIS on lucky0 aggregating a GRIS (10 providers each) on every
/// of lucky3..lucky7, data pinned in cache (huge cachettl).
struct GiisScenario : Scenario {
  ~GiisScenario() override { testbed_.sim().shutdown(); }

  GiisScenario(Testbed& tb, int gris_count = 5, int providers_per_gris = 10,
               double cachettl = 1e18);
  void instrument(trace::Collector& col) override;
  void register_faults(fault::Injector& inj) override;
  std::unique_ptr<mds::Giis> giis;
  std::vector<std::unique_ptr<mds::Gris>> gris;

  /// Run the initial cache fill so measurements start warm.
  void prefill();
};

/// Hawkeye: Manager on lucky3 with Agents (11 modules each) advertising
/// from the six other lucky nodes.
struct ManagerScenario : Scenario {
  ~ManagerScenario() override { testbed_.sim().shutdown(); }

  explicit ManagerScenario(Testbed& tb, int modules_per_agent = 11);
  void instrument(trace::Collector& col) override;
  void register_faults(fault::Injector& inj) override;
  std::unique_ptr<hawkeye::Manager> manager;
  std::vector<std::unique_ptr<hawkeye::Agent>> agents;
};

/// R-GMA: Registry on lucky1, a ProducerServlet with 10 producers on each
/// of the five other lucky nodes (the paper's Experiment 2 layout).
struct RegistryScenario : Scenario {
  ~RegistryScenario() override { testbed_.sim().shutdown(); }

  explicit RegistryScenario(Testbed& tb, int servlets = 5,
                            int producers_each = 10);
  void instrument(trace::Collector& col) override;
  void register_faults(fault::Injector& inj) override;
  std::unique_ptr<rgma::Registry> registry;
  std::vector<std::unique_ptr<rgma::ProducerServlet>> servlets;
};

// ---- Experiment 4: aggregate information servers ----

/// MDS: GIIS on lucky0 with `gris_count` GRIS instances spread over the
/// six other lucky nodes (the paper simulated up to 500 this way).
struct GiisAggregationScenario : Scenario {
  ~GiisAggregationScenario() override { testbed_.sim().shutdown(); }

  GiisAggregationScenario(Testbed& tb, int gris_count,
                          int providers_per_gris = 10);
  void instrument(trace::Collector& col) override;
  void register_faults(fault::Injector& inj) override;
  std::unique_ptr<mds::Giis> giis;
  std::vector<std::unique_ptr<mds::Gris>> gris;
  void prefill();
};

/// Hawkeye: Manager on lucky3 with `machines` hawkeye_advertise senders
/// (30-second interval) spread over the other lucky nodes.
struct ManagerAggregationScenario : Scenario {
  ~ManagerAggregationScenario() override { testbed_.sim().shutdown(); }

  ManagerAggregationScenario(Testbed& tb, int machines,
                             int modules_per_machine = 11);
  void instrument(trace::Collector& col) override {
    manager->instrument(col);
  }
  void register_faults(fault::Injector& inj) override {
    inj.add_service("server", *manager);
    inj.add_service("manager", *manager);
  }
  std::unique_ptr<hawkeye::Manager> manager;
  std::vector<std::unique_ptr<hawkeye::Advertiser>> advertisers;

  /// Let every advertiser send at least one ad.
  void prefill();
};

}  // namespace gridmon::core
