#pragma once

/// \file open_workload.hpp
/// Open-loop workload: queries arrive as a Poisson process at a fixed
/// rate, regardless of how fast earlier queries complete — the "additional
/// patterns of user access" the paper's §4 leaves for future work.
///
/// The closed-loop UserWorkload self-throttles (a slow server slows its
/// own offered load); an open-loop arrival stream does not, so overload
/// behaves very differently: queue lengths and response times diverge
/// instead of plateauing. ext_access_patterns contrasts the two.

#include <cstdint>
#include <string>
#include <vector>

#include "gridmon/core/testbed.hpp"
#include "gridmon/core/workload.hpp"

namespace gridmon::core {

struct OpenWorkloadConfig {
  /// Mean arrivals per second across the whole client population.
  double arrival_rate = 1.0;
  /// Give up counting a query after this many refused-connection retries
  /// (open-loop clients are typically one-shot scripts). The workload
  /// constructor rejects a non-empty retry_schedule shorter than this —
  /// the two knobs silently drifting apart meant later retries reused
  /// whatever the last entry happened to be.
  int max_retries = 3;
  std::vector<double> retry_schedule{3, 6, 12};
  /// Multiplicative backoff jitter (the legacy inline constant).
  double retry_jitter = 0.02;
  /// Client-side overload control; disabled by default (byte-identical
  /// legacy behavior).
  resilience::ClientPolicyConfig resilience{};
};

class OpenWorkload {
 public:
  OpenWorkload(Testbed& testbed, QueryFn query, OpenWorkloadConfig config);
  /// Traced adapters plug in directly; open-loop runs stay untraced (the
  /// null Ctx), tracing belongs to the closed-loop measurement protocol.
  OpenWorkload(Testbed& testbed, TracedQueryFn query,
               OpenWorkloadConfig config);
  OpenWorkload(const OpenWorkload&) = delete;
  OpenWorkload& operator=(const OpenWorkload&) = delete;
  ~OpenWorkload() { testbed_.sim().shutdown(); }

  /// Begin generating arrivals, launched from the given client hosts in
  /// round-robin order.
  void start(const std::vector<std::string>& client_hosts);

  const std::vector<Completion>& completions() const noexcept {
    return completions_;
  }
  std::uint64_t arrivals() const noexcept { return arrivals_; }
  std::uint64_t failures() const noexcept { return failures_; }
  /// Queries in flight right now (grows without bound past saturation).
  int outstanding() const noexcept { return outstanding_; }
  /// Network attempts actually issued (excludes breaker fast-fails).
  std::uint64_t total_attempts() const noexcept { return attempts_; }
  /// attempts/arrivals — the open-loop retry-storm signature is this
  /// ratio diverging during an outage.
  double retry_amplification() const noexcept {
    return arrivals_ > 0 ? static_cast<double>(attempts_) /
                               static_cast<double>(arrivals_)
                         : 0;
  }
  /// Shared client policy toward the service under test.
  const resilience::ClientPolicy& resilience_policy() const noexcept {
    return policy_;
  }

  double throughput(double t0, double t1) const;
  double mean_response(double t0, double t1) const;

 private:
  static sim::Task<void> arrival_loop(OpenWorkload& self,
                                      std::vector<std::string> hosts);
  static sim::Task<void> one_query(OpenWorkload& self, net::Interface& nic,
                                   sim::Rng rng);

  Testbed& testbed_;
  QueryFn query_;
  OpenWorkloadConfig config_;
  resilience::BackoffPolicy backoff_;
  resilience::ClientPolicy policy_;
  std::vector<Completion> completions_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t attempts_ = 0;
  int outstanding_ = 0;
};

}  // namespace gridmon::core
