#include "gridmon/core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>

#include "gridmon/net/server_port.hpp"

namespace gridmon::core {

SweepPoint measure(Testbed& testbed, UserWorkload& workload,
                   const std::string& server_host, double x,
                   MeasureConfig config) {
  testbed.sim().run(testbed.sim().now() + config.warmup);
  double t0 = testbed.sim().now();
  double refused_before = static_cast<double>(workload.refused_attempts());
  double errors_before = static_cast<double>(workload.error_count());
  double abandoned_before = static_cast<double>(workload.abandoned_queries());
  double attempts_before = static_cast<double>(workload.total_attempts());
  double queries_before = static_cast<double>(workload.total_queries());
  double shed_before = config.port != nullptr
                           ? static_cast<double>(config.port->total_shed())
                           : 0;
  if (config.collector != nullptr) config.collector->set_enabled(true);
  testbed.sim().run(t0 + config.duration);
  if (config.collector != nullptr) config.collector->set_enabled(false);
  double t1 = testbed.sim().now();

  SweepPoint p;
  p.x = x;
  p.throughput = workload.throughput(t0, t1);
  p.response = workload.mean_response(t0, t1);
  p.load1 = testbed.sampler().series(server_host + ".load1").mean_over(t0, t1);
  p.cpu = testbed.sampler().series(server_host + ".cpu_pct").mean_over(t0, t1);
  p.refused =
      (static_cast<double>(workload.refused_attempts()) - refused_before) /
      config.duration;
  double succ = static_cast<double>(workload.completed(t0, t1));
  double abandoned =
      static_cast<double>(workload.abandoned_queries()) - abandoned_before;
  p.availability = succ + abandoned > 0 ? succ / (succ + abandoned) : 1.0;
  p.error_rate =
      (static_cast<double>(workload.error_count()) - errors_before) /
      config.duration;
  p.stale_frac = workload.stale_fraction(t0, t1);
  p.goodput = workload.goodput(t0, t1, config.goodput_deadline);
  if (config.port != nullptr) {
    p.shed_rate = (static_cast<double>(config.port->total_shed()) -
                   shed_before) /
                  config.duration;
  }
  double d_queries =
      static_cast<double>(workload.total_queries()) - queries_before;
  p.retry_amp =
      d_queries > 0
          ? (static_cast<double>(workload.total_attempts()) - attempts_before) /
                d_queries
          : 0;
  if (config.recovery_mark >= 0) {
    double first = workload.first_success_after(config.recovery_mark);
    p.recovery = first >= 0 ? first - config.recovery_mark : -1;
    if (config.recovered_at) {
      double rc = config.recovered_at();
      // Replay can finish inside the fault window (restart happens at the
      // mark); clamp so "already recovered" reads as 0, not negative.
      p.recovery_complete =
          rc >= 0 ? std::max(0.0, rc - config.recovery_mark) : -1;
    } else {
      p.recovery_complete = -1;
    }
  }
  return p;
}

SweepPoint replicate(const std::vector<std::uint64_t>& seeds,
                     const std::function<SweepPoint(std::uint64_t)>& run_one,
                     double* throughput_stddev_out) {
  SweepPoint mean;
  mean.availability = 0;   // the struct default is 1; accumulate from zero
  mean.peak_rss_kb = 0;    // likewise (-1 = "not measured")
  mean.shards = 0;         // likewise (the struct default is 1)
  std::vector<double> throughputs;
  // The schema is the field list: every metric column accumulates and
  // averages, so new columns join replication without touching this loop.
  for (auto seed : seeds) {
    SweepPoint p = run_one(seed);
    mean.x = p.x;
    for (const auto& col : metric_columns()) {
      if (col.field == &SweepPoint::x) continue;
      mean.*(col.field) += p.*(col.field);
    }
    throughputs.push_back(p.throughput);
  }
  double n = static_cast<double>(seeds.size());
  if (n > 0) {
    for (const auto& col : metric_columns()) {
      if (col.field == &SweepPoint::x) continue;
      mean.*(col.field) /= n;
    }
  }
  if (throughput_stddev_out != nullptr) {
    double ss = 0;
    for (double t : throughputs) {
      ss += (t - mean.throughput) * (t - mean.throughput);
    }
    *throughput_stddev_out = n > 1 ? std::sqrt(ss / n) : 0;
  }
  return mean;
}

void print_figures(std::ostream& os, int first_figure,
                   const std::string& subject, const std::string& x_label,
                   const std::vector<Series>& series) {
  struct Metric {
    const char* title;
    double SweepPoint::* field;
    int precision;
  };
  const Metric metrics[] = {
      {"Throughput (queries/sec)", &SweepPoint::throughput, 2},
      {"Response Time (sec)", &SweepPoint::response, 2},
      {"Load1", &SweepPoint::load1, 3},
      {"CPU Load (%)", &SweepPoint::cpu, 1},
  };

  // Collect the union of x values, sorted.
  std::map<double, bool> xs;
  for (const auto& s : series) {
    for (const auto& p : s.points) xs[p.x] = true;
  }

  int figure_index = 0;
  for (const auto& m : metrics) {
    metrics::Table table("Figure " +
                         std::to_string(first_figure + figure_index) + ": " +
                         subject + " " + m.title + " vs. " + x_label);
    std::vector<std::string> cols{x_label};
    for (const auto& s : series) cols.push_back(s.name);
    table.set_columns(cols);
    for (const auto& [x, unused] : xs) {
      std::vector<std::string> row{metrics::Table::num(x, 0)};
      for (const auto& s : series) {
        double v = -1;
        for (const auto& p : s.points) {
          if (p.x == x) {
            v = m.field == &SweepPoint::load1 ? p.load1 : p.*(m.field);
            break;
          }
        }
        row.push_back(metrics::Table::num(v, m.precision));
      }
      table.add_row(row);
    }
    table.print_text(os);
    os << '\n';
    ++figure_index;
  }
}

}  // namespace gridmon::core
