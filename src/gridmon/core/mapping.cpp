#include "gridmon/core/mapping.hpp"

namespace gridmon::core {

const std::vector<MappingEntry>& component_mapping() {
  static const std::vector<MappingEntry> kTable = {
      {Role::InformationCollector, "Information Collector",
       "Information Provider", "Producer", "Module"},
      {Role::InformationServer, "Information Server", "GRIS",
       "ProducerServlet", "Agent"},
      {Role::AggregateInformationServer, "Aggregate Information Server",
       "GIIS", "None", "Manager"},
      {Role::DirectoryServer, "Directory Server", "GIIS", "Registry",
       "Manager"},
  };
  return kTable;
}

std::string role_name(Role role) {
  for (const auto& e : component_mapping()) {
    if (e.role == role) return e.role_name;
  }
  return "Unknown";
}

}  // namespace gridmon::core
