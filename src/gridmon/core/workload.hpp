#pragma once

/// \file workload.hpp
/// The paper's user simulator (§3.1): N user processes spread over the
/// client machines (at most 50 per machine), each issuing blocking
/// queries with a one-second wait between response and next query.
/// Refused connections are retried with exponential backoff; the response
/// time of a query counts from first attempt to final success, exactly as
/// a looping shell script would measure it.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gridmon/core/testbed.hpp"
#include "gridmon/net/network.hpp"
#include "gridmon/resilience/backoff.hpp"
#include "gridmon/resilience/policy.hpp"
#include "gridmon/sim/rng.hpp"
#include "gridmon/sim/task.hpp"
#include "gridmon/trace/collector.hpp"

namespace gridmon::core {

/// One query attempt as seen by the client.
struct QueryAttempt {
  bool admitted = false;
  double response_bytes = 0;
  bool timed_out = false;  // a connect/transfer deadline expired on the way
  bool failed = false;     // admitted, but the service could not answer
  bool stale = false;      // answered from data older than the service's bound
};

/// A client-side query function: performs one complete attempt against a
/// service from the given client NIC. Adapters for each service live in
/// adapters.hpp.
using QueryFn = std::function<sim::Task<QueryAttempt>(net::Interface&)>;

/// Trace-aware variant: also receives the query's trace context (the
/// null Ctx when tracing is off). The adapters produce these; plain
/// QueryFn lambdas in tests keep working via a wrapping constructor.
using TracedQueryFn =
    std::function<sim::Task<QueryAttempt>(net::Interface&, trace::Ctx)>;

struct WorkloadConfig {
  double think_time = 1.0;          // the paper's 1-second wait
  int max_users_per_host = 50;      // the paper's per-machine cap
  /// Retry delays after a refused connection. A 2002 Linux client whose
  /// SYN was dropped by a full listen queue silently retransmits on the
  /// kernel's schedule (~3, 6, 12, 24, 48 s ...); the last entry repeats.
  std::vector<double> retry_schedule{3, 6, 12, 24, 48, 75};
  /// Retransmission timing is nearly deterministic, which synchronizes
  /// overloaded clients into arrival bursts — the cause of the load
  /// *decrease* past the saturation threshold seen in the paper.
  double retry_jitter = 0.02;
  /// Client-script bookkeeping CPU per query (fork, parsing output).
  double client_cpu_per_query = 0.01;
  /// End-to-end patience per query (the shell script's `timeout N`
  /// wrapper): once this much wall clock has passed since the first
  /// attempt the query is abandoned and counted as an error. 0 disables
  /// the deadline entirely (the original blocking-client behavior).
  double query_deadline = 0;
  /// Give up after this many attempts (first try + retries). 0 = retry
  /// forever (the original behavior).
  int max_attempts = 0;
  /// Client-side overload control (retry budget + circuit breaker toward
  /// the service under test). Disabled by default; when disabled the
  /// workload's behavior and RNG stream are byte-identical to the
  /// pre-resilience tree.
  resilience::ClientPolicyConfig resilience{};
};

struct Completion {
  double t;              // completion time
  double response_time;  // first attempt -> success
  double bytes;
  bool stale = false;    // the answer was flagged stale by the service
};

class UserWorkload {
 public:
  UserWorkload(Testbed& testbed, QueryFn query, WorkloadConfig config = {});
  UserWorkload(Testbed& testbed, TracedQueryFn query,
               WorkloadConfig config = {});
  UserWorkload(const UserWorkload&) = delete;
  UserWorkload& operator=(const UserWorkload&) = delete;
  /// User coroutines reference this object; destroy them first.
  ~UserWorkload() { testbed_.sim().shutdown(); }

  /// Launch `n` users spread evenly over `client_hosts` (paper's load
  /// balancing). Throws if that would exceed max_users_per_host.
  void spawn_users(int n, const std::vector<std::string>& client_hosts);

  const std::vector<Completion>& completions() const noexcept {
    return completions_;
  }
  std::uint64_t refused_attempts() const noexcept { return refused_; }
  /// Attempts that timed out on a dead path (connect/transfer deadline).
  std::uint64_t timeout_attempts() const noexcept { return timeouts_; }
  /// Attempts admitted but answered with an error by the service.
  std::uint64_t failed_attempts() const noexcept { return failures_; }
  /// Whole queries given up on (deadline expired or max_attempts hit).
  std::uint64_t abandoned_queries() const noexcept { return abandoned_; }
  /// Total errors the user scripts observed.
  std::uint64_t error_count() const noexcept {
    return timeouts_ + failures_ + abandoned_;
  }
  int users() const noexcept { return users_; }

  /// Queries started (first attempts issued, whether or not they ever
  /// completed).
  std::uint64_t total_queries() const noexcept { return queries_; }
  /// Network attempts actually issued (excludes breaker fast-fails).
  std::uint64_t total_attempts() const noexcept { return attempts_; }
  /// attempts/queries — 1.0 means no retries; the retry-storm signature
  /// is this ratio diverging during an outage.
  double retry_amplification() const noexcept {
    return queries_ > 0 ? static_cast<double>(attempts_) /
                              static_cast<double>(queries_)
                        : 0;
  }
  /// The shared client policy toward the service under test (fast-fail /
  /// budget-suppression counters live on its breaker and budget).
  const resilience::ClientPolicy& resilience_policy() const noexcept {
    return policy_;
  }

  /// Completed queries per second over [t0, t1].
  double throughput(double t0, double t1) const;
  /// Mean response time of queries completing in [t0, t1].
  double mean_response(double t0, double t1) const;
  /// Number of queries completing in [t0, t1].
  std::size_t completed(double t0, double t1) const;
  /// Fraction of completions in [t0, t1] whose answer was stale.
  double stale_fraction(double t0, double t1) const;
  /// Timely completions per second over [t0, t1]: response_time <=
  /// `deadline`. deadline <= 0 counts every completion (== throughput).
  double goodput(double t0, double t1, double deadline) const;
  /// Completion time of the first successful query at or after `t`, or -1
  /// if none — the raw material for time-to-recovery.
  double first_success_after(double t) const;

  /// Route each user query through `collector`: a root Query span per
  /// query (opened while the collector is enabled), Backoff spans around
  /// SYN-retransmission waits, Think spans between queries. The
  /// collector must outlive this workload's users.
  void enable_tracing(trace::Collector& collector) {
    collector_ = &collector;
  }

 private:
  static sim::Task<void> user_loop(UserWorkload& self, host::Host& host,
                                   net::Interface& nic, sim::Rng rng);

  Testbed& testbed_;
  TracedQueryFn query_;
  WorkloadConfig config_;
  resilience::BackoffPolicy backoff_;
  resilience::ClientPolicy policy_;
  trace::Collector* collector_ = nullptr;
  std::vector<Completion> completions_;
  std::uint64_t refused_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t queries_ = 0;
  std::uint64_t attempts_ = 0;
  int users_ = 0;
};

}  // namespace gridmon::core
