#pragma once

/// \file frontier.hpp
/// The million-user frontier workload: UserWorkload's closed-loop user
/// population rebuilt for scales where a coroutine frame per user and a
/// single event heap stop being affordable.
///
/// Split of responsibilities across sim::ShardGroup shards:
///  - Shard 0 is the Testbed's full Simulation — every byte of network
///    and CPU physics stays there. Each query attempt runs as a short
///    gateway coroutine against the user's real UC-host NIC, through
///    the scenario's unmodified query function, so the service under
///    test sees exactly the traffic the legacy engine would send it.
///  - Shards 1..K hold only user state, struct-of-arrays: one slab of
///    contiguous per-user fields (state byte, retry level, RNG draw
///    counter, query start time) plus a lean 24-byte-keyed timer heap.
///    No coroutine frames, no per-user allocation.
///
/// The two sides talk exclusively through the group's deterministic
/// mailboxes with one lookahead hop (the WAN one-way latency) in each
/// direction. Because even a K=1 run takes the same mailbox trips, the
/// results are byte-identical for every shard count — the property the
/// frontier golden tests pin per seed.
///
/// Per-user randomness is a counter-based splitmix stream keyed by
/// (testbed seed, global user id, draw index): fully deterministic and
/// independent of shard placement, at 4 bytes of state per user.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gridmon/core/metrics_report.hpp"
#include "gridmon/core/testbed.hpp"
#include "gridmon/core/workload.hpp"
#include "gridmon/net/server_port.hpp"
#include "gridmon/sim/shard.hpp"

namespace gridmon::core {

struct FrontierConfig {
  int shards = 1;        // client-state shards (>= 1)
  int threads = 0;       // >= 2 drives windows on a worker pool
  double lookahead = 0;  // window seconds; 0 = min WAN one-way latency
  double think_time = 1.0;  // the paper's 1-second wait
  /// Retry ladder after a refused/failed attempt (same 2002-kernel SYN
  /// retransmission schedule the legacy workload uses).
  std::vector<double> retry_schedule{3, 6, 12, 24, 48, 75};
  double retry_jitter = 0.02;
  double client_cpu_per_query = 0.01;
  /// Optional admission gate enabling the batched refusal fast path
  /// (see frontier.cpp): the gateway keeps a bounded standing pool of
  /// real in-flight attempts and prices each lookahead-window cohort of
  /// surplus attempts as one aggregate SYN/RST round trip. Point it at
  /// the scenario's server_port() and name the port's host; leave null
  /// to keep every attempt on the full per-attempt physics path.
  const net::ServerPort* admission_port = nullptr;
  std::string server_host;
  /// Standing-pool size as a multiple of the port's listen backlog.
  int pool_factor = 4;
};

/// One completed query, tagged with its user so merges across shards
/// have a total (t, uid) order.
struct FrontierCompletion {
  double t = 0;
  double response_time = 0;  // first attempt -> success, client-observed
  double bytes = 0;
  std::uint64_t uid = 0;
  bool stale = false;
};

class FrontierWorkload {
 public:
  /// `query` is the scenario's query function; attempts run on shard 0
  /// from the user's UC-host NIC. The testbed's seed keys every
  /// per-user random stream.
  FrontierWorkload(Testbed& testbed, TracedQueryFn query,
                   FrontierConfig config = {});
  FrontierWorkload(const FrontierWorkload&) = delete;
  FrontierWorkload& operator=(const FrontierWorkload&) = delete;
  /// Gateway coroutines reference this object; destroy them first.
  ~FrontierWorkload();

  /// Create `n` users round-robin over the client shards, mapped onto
  /// the testbed's UC hosts at the paper's 50-per-machine cap. One call
  /// per workload.
  void spawn_users(int n);

  /// Drive all shards to absolute sim time `until` in lookahead
  /// windows. Returns events executed (gateway events + user timers).
  std::size_t run(double until);

  /// The shared measurement protocol over the sharded engine: warm up,
  /// measure `duration` seconds, report the study metrics plus the
  /// engine's shard count. Mirrors core::measure() field for field
  /// (events is filled too; wall-clock stays with the caller, per the
  /// determinism contract).
  MetricsReport measure_window(double x, double warmup, double duration,
                               const std::string& server_host);

  /// All completions so far, canonically ordered by (t, uid) —
  /// identical bytes for every shard count.
  const std::vector<FrontierCompletion>& merged_completions();

  std::uint64_t refused_attempts() const noexcept;
  std::uint64_t timeout_attempts() const noexcept;
  std::uint64_t failed_attempts() const noexcept;
  std::uint64_t error_count() const noexcept {
    return timeout_attempts() + failed_attempts();
  }
  std::uint64_t total_queries() const noexcept;
  std::uint64_t total_attempts() const noexcept { return attempts_; }
  /// Attempts refused on the batched fast path (0 with no
  /// admission_port). Included in total_attempts()/refused_attempts().
  std::uint64_t fast_refused() const noexcept { return fast_refused_; }
  int users() const noexcept { return users_; }
  int shards() const noexcept { return config_.shards; }
  double lookahead() const noexcept { return lookahead_; }
  double now() const noexcept;
  std::uint64_t messages_delivered() const noexcept;

 private:
  struct ClientShard;

  static sim::Task<void> gateway_attempt(FrontierWorkload& self,
                                         std::uint64_t uid);
  static sim::Task<void> flush_requests(FrontierWorkload& self);
  void on_gateway_message(const sim::ShardMessage& m);
  int shard_index_of(std::uint64_t uid) const noexcept {
    return 1 + static_cast<int>(uid % static_cast<std::uint64_t>(
                                          config_.shards));
  }

  Testbed& testbed_;
  TracedQueryFn query_;
  FrontierConfig config_;
  double lookahead_ = 0;
  std::uint64_t seed_ = 0;
  std::unique_ptr<sim::SimulationShard> gateway_;
  std::vector<std::unique_ptr<ClientShard>> clients_;
  std::unique_ptr<sim::ShardGroup> group_;
  std::vector<net::Interface*> nics_;   // UC-host NIC per uid % pool
  std::vector<host::Host*> hosts_;      // matching hosts (client CPU)
  net::Interface* server_nic_ = nullptr;  // set with admission_port
  std::vector<FrontierCompletion> merged_;
  /// Pending request cohorts keyed by flush time (the end of the
  /// lookahead-wide bucket containing each request's delivery instant).
  /// At most two buckets are live at once.
  std::map<double, std::vector<std::uint64_t>> buckets_;
  std::uint64_t outstanding_ = 0;  // gateway_attempt coroutines in flight
  std::uint64_t attempts_ = 0;
  std::uint64_t fast_refused_ = 0;
  int users_ = 0;
};

}  // namespace gridmon::core
