#include "gridmon/core/scenarios.hpp"

namespace gridmon::core {
namespace {

/// Fill a producer with `rows` latest-value tuples so SELECTs have data
/// to chew on from the first query.
void prefill_producer(rgma::Producer& producer, const std::string& host,
                      int rows = 30) {
  for (int i = 0; i < rows; ++i) {
    producer.publish({rdbms::Value::text(host),
                      rdbms::Value::text("cpu_load"),
                      rdbms::Value::real(0.1 * i),
                      rdbms::Value::real(static_cast<double>(i))});
  }
}

}  // namespace

void instrument_host(Testbed& tb, trace::Collector& col,
                     const std::string& host) {
  tb.host(host).cpu().ps().set_probe(&col.track(host + ".cpu"));
  tb.nic(host).tx().set_probe(&col.track(host + ".nic_tx"));
  tb.nic(host).rx().set_probe(&col.track(host + ".nic_rx"));
}

std::vector<mds::ProviderSpec> default_providers(int count) {
  std::vector<mds::ProviderSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    mds::ProviderSpec spec;
    spec.name = "ip" + std::to_string(i);
    spec.entries = 4;
    spec.bytes_per_entry = 2000;
    // The paper's cache experiments keep provider data "always in cache";
    // the nocache configurations ignore the TTL anyway.
    spec.cache_ttl = 1e18;
    specs.push_back(spec);
  }
  return specs;
}

GrisScenario::GrisScenario(Testbed& tb, int providers, bool cache,
                           const std::string& host)
    : GrisScenario(tb, default_providers(providers), cache, host) {}

GrisScenario::GrisScenario(Testbed& tb, std::vector<mds::ProviderSpec> providers,
                           bool cache, const std::string& host)
    : GrisScenario(tb, std::move(providers),
                   [cache] {
                     mds::GrisConfig config;
                     config.cache_enabled = cache;
                     return config;
                   }(),
                   host) {}

GrisScenario::GrisScenario(Testbed& tb, std::vector<mds::ProviderSpec> providers,
                           mds::GrisConfig config, const std::string& host)
    : Scenario(tb) {
  gris = std::make_unique<mds::Gris>(tb.network(), tb.host(host), tb.nic(host),
                                     host + ".mcs.anl.gov",
                                     std::move(providers), config);
}

AgentScenario::AgentScenario(Testbed& tb, int modules,
                             const std::string& agent_host,
                             const std::string& manager_host)
    : Scenario(tb) {
  manager = std::make_unique<hawkeye::Manager>(
      tb.network(), tb.host(manager_host), tb.nic(manager_host));
  agent = std::make_unique<hawkeye::Agent>(
      tb.network(), tb.host(agent_host), tb.nic(agent_host),
      agent_host + ".mcs.anl.gov", hawkeye::scaled_modules(modules));
  agent->start_advertising(*manager);
}

RgmaScenario::RgmaScenario(Testbed& tb, int producers, Consumers consumers)
    : Scenario(tb) {
  registry = std::make_unique<rgma::Registry>(tb.network(), tb.host("lucky1"),
                                              tb.nic("lucky1"));
  registry->start_sweeper();
  producer_servlet = std::make_unique<rgma::ProducerServlet>(
      tb.network(), tb.host("lucky3"), tb.nic("lucky3"), "ps-lucky3");
  for (int i = 0; i < producers; ++i) {
    auto& p = producer_servlet->add_producer("producer" + std::to_string(i),
                                             "cpuload");
    prefill_producer(p, "lucky3");
  }
  producer_servlet->start_registration(*registry);

  auto add_cs = [&](const std::string& host) {
    auto cs = std::make_unique<rgma::ConsumerServlet>(
        tb.network(), tb.host(host), tb.nic(host), "cs-" + host, *registry);
    cs->add_producer_servlet(*producer_servlet);
    consumer_servlets.emplace(host, std::move(cs));
  };
  switch (consumers) {
    case Consumers::PerLuckyNode:
      for (const auto& name : tb.lucky_names()) add_cs(name);
      break;
    case Consumers::SingleAtUc:
      add_cs("uc01");
      break;
    case Consumers::None:
      break;
  }
}

void RgmaScenario::instrument(trace::Collector& col) {
  registry->instrument(col);
  producer_servlet->instrument(col);
  for (auto& [host, cs] : consumer_servlets) cs->instrument(col);
}

void RgmaScenario::register_faults(fault::Injector& inj) {
  inj.add_service("server", *producer_servlet);
  inj.add_service("registry", *registry);
  for (auto& [host, cs] : consumer_servlets) {
    inj.add_service("cs-" + host, *cs);
  }
}

TracedQueryFn RgmaScenario::mediated_query(const std::string& table) {
  // Route a user to the ConsumerServlet on its own host, or to the single
  // shared servlet when only one exists (the UC setup).
  // gridmon-lint: suppress(coroutine.this-capture) -- the scenario owns
  // every servlet the query reaches and is held alive by the Experiment
  // for the whole run; no query coroutine outlives it (sim.shutdown()
  // drains frames before the scenario is destroyed).
  return [this, table](net::Interface& client,
                       trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto it = consumer_servlets.find(client.host());
    if (it == consumer_servlets.end()) it = consumer_servlets.begin();
    auto r = co_await it->second->query(client, table, "", ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

TracedQueryFn RgmaScenario::direct_query(const std::string& table) {
  // gridmon-lint: suppress(coroutine.this-capture) -- same lifetime
  // argument as mediated_query above: the Experiment keeps the scenario
  // alive past the last query coroutine.
  return [this, table](net::Interface& client,
                       trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto r = co_await producer_servlet->client_query(client, table, "", ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

GiisScenario::GiisScenario(Testbed& tb, int gris_count, int providers_per_gris,
                           double cachettl)
    : Scenario(tb) {
  mds::GiisConfig config;
  config.cachettl = cachettl;
  giis = std::make_unique<mds::Giis>(tb.network(), tb.host("lucky0"),
                                     tb.nic("lucky0"), "giis-lucky0", config);
  const std::vector<std::string> gris_hosts{"lucky3", "lucky4", "lucky5",
                                            "lucky6", "lucky7"};
  for (int i = 0; i < gris_count; ++i) {
    const std::string& host =
        gris_hosts[static_cast<std::size_t>(i) % gris_hosts.size()];
    gris.push_back(std::make_unique<mds::Gris>(
        tb.network(), tb.host(host), tb.nic(host),
        host + "-gris" + std::to_string(i),
        default_providers(providers_per_gris)));
    giis->add_registrant(*gris.back());
  }
}

void GiisScenario::instrument(trace::Collector& col) {
  giis->instrument(col);
  for (auto& g : gris) g->instrument(col);
}

void GiisScenario::register_faults(fault::Injector& inj) {
  inj.add_service("server", *giis);
  for (std::size_t i = 0; i < gris.size(); ++i) {
    inj.add_service("gris" + std::to_string(i), *gris[i]);
  }
}

void GiisScenario::prefill() {
  // One throwaway query triggers the initial cache pull from every GRIS.
  auto warm = [](GiisScenario& self) -> sim::Task<void> {
    (void)co_await self.giis->query(self.testbed_.nic("uc01"),
                                    mds::QueryScope::Part);
  };
  testbed_.sim().spawn(warm(*this));
  testbed_.sim().run(testbed_.sim().now() + 60);
}

ManagerScenario::ManagerScenario(Testbed& tb, int modules_per_agent,
                                 hawkeye::ManagerConfig config)
    : Scenario(tb) {
  manager = std::make_unique<hawkeye::Manager>(tb.network(), tb.host("lucky3"),
                                               tb.nic("lucky3"), config);
  for (const auto& name : tb.lucky_names()) {
    if (name == "lucky3") continue;
    agents.push_back(std::make_unique<hawkeye::Agent>(
        tb.network(), tb.host(name), tb.nic(name), name + ".mcs.anl.gov",
        hawkeye::scaled_modules(modules_per_agent)));
    agents.back()->start_advertising(*manager);
  }
}

void ManagerScenario::instrument(trace::Collector& col) {
  manager->instrument(col);
  for (auto& a : agents) a->instrument(col);
}

void ManagerScenario::register_faults(fault::Injector& inj) {
  // The Manager itself has no collectors; a collector outage on "server"
  // means every advertising startd's modules hang at once.
  fault::Injector::Hooks hooks;
  hooks.crash = [m = manager.get()](bool blackhole) { m->crash(blackhole); };
  hooks.restart = [m = manager.get()] { m->restart(); };
  hooks.collectors = [as = &agents](bool down) {
    for (auto& a : *as) a->set_collectors_down(down);
  };
  inj.add_target("server", std::move(hooks));
  inj.add_service("manager", *manager);
  for (std::size_t i = 0; i < agents.size(); ++i) {
    inj.add_service("agent" + std::to_string(i), *agents[i]);
  }
}

RegistryScenario::RegistryScenario(Testbed& tb, int servlet_count,
                                   int producers_each,
                                   rgma::RegistryConfig config)
    : Scenario(tb) {
  registry = std::make_unique<rgma::Registry>(tb.network(), tb.host("lucky1"),
                                              tb.nic("lucky1"),
                                              std::move(config));
  registry->start_sweeper();
  const std::vector<std::string> hosts{"lucky3", "lucky4", "lucky5", "lucky6",
                                       "lucky7"};
  for (int i = 0; i < servlet_count; ++i) {
    const std::string& host = hosts[static_cast<std::size_t>(i) % hosts.size()];
    auto servlet = std::make_unique<rgma::ProducerServlet>(
        tb.network(), tb.host(host), tb.nic(host),
        "ps-" + host + "-" + std::to_string(i));
    for (int p = 0; p < producers_each; ++p) {
      auto& producer = servlet->add_producer(
          "producer-" + std::to_string(i) + "-" + std::to_string(p),
          "cpuload");
      prefill_producer(producer, host);
    }
    servlet->start_registration(*registry);
    servlets.push_back(std::move(servlet));
  }
}

void RegistryScenario::instrument(trace::Collector& col) {
  registry->instrument(col);
  for (auto& s : servlets) s->instrument(col);
}

void RegistryScenario::register_faults(fault::Injector& inj) {
  inj.add_service("server", *registry);
  inj.add_service("registry", *registry);
  for (std::size_t i = 0; i < servlets.size(); ++i) {
    inj.add_service("ps" + std::to_string(i), *servlets[i]);
  }
}

GiisAggregationScenario::GiisAggregationScenario(Testbed& tb, int gris_count,
                                                 int providers_per_gris)
    : Scenario(tb) {
  mds::GiisConfig config;
  config.cachettl = 1e18;
  giis = std::make_unique<mds::Giis>(tb.network(), tb.host("lucky0"),
                                     tb.nic("lucky0"), "giis-lucky0", config);
  const std::vector<std::string> hosts{"lucky1", "lucky3", "lucky4",
                                       "lucky5", "lucky6", "lucky7"};
  for (int i = 0; i < gris_count; ++i) {
    const std::string& host = hosts[static_cast<std::size_t>(i) % hosts.size()];
    gris.push_back(std::make_unique<mds::Gris>(
        tb.network(), tb.host(host), tb.nic(host),
        host + "-gris" + std::to_string(i),
        default_providers(providers_per_gris)));
    giis->add_registrant(*gris.back());
  }
}

void GiisAggregationScenario::instrument(trace::Collector& col) {
  giis->instrument(col);
  for (auto& g : gris) g->instrument(col);
}

void GiisAggregationScenario::register_faults(fault::Injector& inj) {
  inj.add_service("server", *giis);
  for (std::size_t i = 0; i < gris.size(); ++i) {
    inj.add_service("gris" + std::to_string(i), *gris[i]);
  }
}

void GiisAggregationScenario::prefill() {
  auto warm = [](GiisAggregationScenario& self) -> sim::Task<void> {
    (void)co_await self.giis->query(self.testbed_.nic("uc01"),
                                    mds::QueryScope::Part);
  };
  testbed_.sim().spawn(warm(*this));
  testbed_.sim().run(testbed_.sim().now() + 120);
}

ManagerAggregationScenario::ManagerAggregationScenario(
    Testbed& tb, int machines, int modules_per_machine,
    hawkeye::ManagerConfig config)
    : Scenario(tb) {
  manager = std::make_unique<hawkeye::Manager>(tb.network(), tb.host("lucky3"),
                                               tb.nic("lucky3"),
                                               std::move(config));
  const std::vector<std::string> hosts{"lucky0", "lucky1", "lucky4",
                                       "lucky5", "lucky6", "lucky7"};
  for (int i = 0; i < machines; ++i) {
    const std::string& host = hosts[static_cast<std::size_t>(i) % hosts.size()];
    advertisers.push_back(std::make_unique<hawkeye::Advertiser>(
        tb.network(), tb.host(host), tb.nic(host),
        "sim-machine-" + std::to_string(i), modules_per_machine));
    advertisers.back()->start(*manager);
  }
}

void ManagerAggregationScenario::prefill() {
  testbed_.sim().run(testbed_.sim().now() + 60);
}

StandaloneRgmaScenario::StandaloneRgmaScenario(
    Testbed& tb, int producers, rgma::ProducerServletConfig config,
    double self_publish_interval, const std::string& host)
    : Scenario(tb) {
  servlet = std::make_unique<rgma::ProducerServlet>(
      tb.network(), tb.host(host), tb.nic(host), "ps-" + host, config);
  for (int i = 0; i < producers; ++i) {
    auto& p = servlet->add_producer("producer" + std::to_string(i),
                                    "cpuload");
    prefill_producer(p, host);
  }
  if (self_publish_interval > 0) {
    servlet->start_publishing(self_publish_interval);
  }
}

HierarchyScenario::HierarchyScenario(Testbed& tb, int gris_count,
                                     bool two_level, double cachettl)
    : Scenario(tb) {
  mds::GiisConfig root_config;
  root_config.cachettl = cachettl;
  root = std::make_unique<mds::Giis>(tb.network(), tb.host("lucky0"),
                                     tb.nic("lucky0"), "root", root_config);
  const std::vector<std::string> hosts{"lucky1", "lucky3", "lucky4",
                                       "lucky5", "lucky6", "lucky7"};
  if (two_level) {
    mds::GiisConfig mid_config;
    mid_config.cachettl = cachettl;
    for (std::size_t m = 0; m < hosts.size(); ++m) {
      mids.push_back(std::make_unique<mds::Giis>(
          tb.network(), tb.host(hosts[m]), tb.nic(hosts[m]),
          "site-" + std::to_string(m), mid_config));
      root->add_registrant(*mids.back());
    }
  }
  for (int i = 0; i < gris_count; ++i) {
    const std::string& host = hosts[static_cast<std::size_t>(i) % hosts.size()];
    gris.push_back(std::make_unique<mds::Gris>(
        tb.network(), tb.host(host), tb.nic(host),
        host + "-gris" + std::to_string(i), default_providers(10)));
    if (two_level) {
      mids[static_cast<std::size_t>(i) % mids.size()]->add_registrant(
          *gris.back());
    } else {
      root->add_registrant(*gris.back());
    }
  }
}

void HierarchyScenario::instrument(trace::Collector& col) {
  root->instrument(col);
  for (auto& m : mids) m->instrument(col);
  for (auto& g : gris) g->instrument(col);
}

void HierarchyScenario::register_faults(fault::Injector& inj) {
  inj.add_service("server", *root);
  for (std::size_t i = 0; i < mids.size(); ++i) {
    inj.add_service("site" + std::to_string(i), *mids[i]);
  }
  for (std::size_t i = 0; i < gris.size(); ++i) {
    inj.add_service("gris" + std::to_string(i), *gris[i]);
  }
}

void HierarchyScenario::prefill() {
  auto warm = [](HierarchyScenario& self) -> sim::Task<void> {
    (void)co_await self.root->query(self.testbed_.nic("uc01"),
                                    mds::QueryScope::Part);
  };
  testbed_.sim().spawn(warm(*this));
  testbed_.sim().run(testbed_.sim().now() + 120);
}

TracedQueryFn HierarchyScenario::site_routed_query() {
  // gridmon-lint: suppress(coroutine.this-capture) -- `this` is needed
  // mutably for the next_ round-robin cursor; the scenario outlives every
  // query coroutine (owned by the Experiment for the full run).
  return [this](net::Interface& client,
                trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto& mid = *mids[next_++ % mids.size()];
    auto r = co_await mid.query(client, mds::QueryScope::Part, ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

CompositeScenario::CompositeScenario(Testbed& tb, int source_servlets)
    : Scenario(tb) {
  rgma::CompositeProducerConfig config;
  config.merge_history = static_cast<std::size_t>(source_servlets) * 10 * 5;
  composite = std::make_unique<rgma::CompositeProducer>(
      tb.network(), tb.host("lucky3"), tb.nic("lucky3"), "agg", "cpuload",
      config);
  const std::vector<std::string> hosts{"lucky0", "lucky1", "lucky4",
                                       "lucky5", "lucky6", "lucky7"};
  for (int i = 0; i < source_servlets; ++i) {
    const std::string& host = hosts[static_cast<std::size_t>(i) % hosts.size()];
    auto servlet = std::make_unique<rgma::ProducerServlet>(
        tb.network(), tb.host(host), tb.nic(host), "src-" + std::to_string(i));
    for (int p = 0; p < 10; ++p) {
      auto& producer = servlet->add_producer(
          "p-" + std::to_string(i) + "-" + std::to_string(p), "cpuload");
      tb.sim().spawn(publish_loop(tb, *servlet, producer, host,
                                  (i * 37 + p * 7) % 30));
    }
    composite->attach_source(*servlet);
    sources.push_back(std::move(servlet));
  }
}

sim::Task<void> CompositeScenario::publish_loop(Testbed& tb,
                                                rgma::ProducerServlet& servlet,
                                                rgma::Producer& producer,
                                                std::string host, int phase) {
  auto& sim = tb.sim();
  co_await sim.delay(static_cast<double>(phase));
  for (;;) {
    rdbms::Row row{rdbms::Value::text(host), rdbms::Value::text("load1"),
                   rdbms::Value::real(0.5), rdbms::Value::real(sim.now())};
    co_await servlet.publish(producer, std::move(row));
    co_await sim.delay(30.0);
  }
}

FanoutScenario::FanoutScenario(Testbed& tb, int subscribers) : Scenario(tb) {
  servlet = std::make_unique<rgma::ProducerServlet>(
      tb.network(), tb.host("lucky3"), tb.nic("lucky3"), "ps");
  producer = &servlet->add_producer("stream", "loadstream");
  for (int i = 0; i < subscribers; ++i) {
    const std::string& host =
        tb.uc_names()[static_cast<std::size_t>(i) % tb.uc_names().size()];
    servlet->subscribe(tb.nic(host), "loadstream", "",
                       [this](const rdbms::Row& row) {
                         double sent_at = row[3].as_number();
                         latency.add(testbed_.sim().now() - sent_at);
                       });
  }
  tb.sim().spawn(publish_loop(*this));
}

sim::Task<void> FanoutScenario::publish_loop(FanoutScenario& self) {
  auto& sim = self.testbed_.sim();
  for (;;) {
    rdbms::Row row{rdbms::Value::text("lucky3"), rdbms::Value::text("load1"),
                   rdbms::Value::real(0.5), rdbms::Value::real(sim.now())};
    co_await self.servlet->publish(*self.producer, std::move(row));
    ++self.published;
    co_await sim.delay(1.0);
  }
}

ReplicatedRgmaScenario::ReplicatedRgmaScenario(Testbed& tb, int replicas,
                                               int pool_size)
    : Scenario(tb) {
  registry = std::make_unique<rgma::Registry>(tb.network(), tb.host("lucky1"),
                                              tb.nic("lucky1"));
  registry->start_sweeper();
  const std::vector<std::string> hosts{"lucky3", "lucky4", "lucky5", "lucky6",
                                       "lucky7"};
  rgma::ProducerServletConfig ps_config;
  ps_config.pool_size = pool_size;
  for (int r = 0; r < replicas; ++r) {
    const std::string& host = hosts[static_cast<std::size_t>(r) % hosts.size()];
    auto servlet = std::make_unique<rgma::ProducerServlet>(
        tb.network(), tb.host(host), tb.nic(host),
        "ps-replica-" + std::to_string(r), ps_config);
    for (int i = 0; i < 10; ++i) {
      auto& p = servlet->add_producer(
          "producer-" + std::to_string(r) + "-" + std::to_string(i),
          "cpuload");
      for (int row = 0; row < 30; ++row) {
        p.publish({rdbms::Value::text(host), rdbms::Value::text("cpu"),
                   rdbms::Value::real(row * 0.1),
                   rdbms::Value::real(static_cast<double>(row))});
      }
    }
    servlet->start_registration(*registry);
    servlets.push_back(std::move(servlet));
  }
}

void ReplicatedRgmaScenario::instrument(trace::Collector& col) {
  registry->instrument(col);
  for (auto& s : servlets) s->instrument(col);
}

void ReplicatedRgmaScenario::register_faults(fault::Injector& inj) {
  inj.add_service("server", *servlets.front());
  inj.add_service("registry", *registry);
  for (std::size_t i = 0; i < servlets.size(); ++i) {
    inj.add_service("ps" + std::to_string(i), *servlets[i]);
  }
}

TracedQueryFn ReplicatedRgmaScenario::balanced_query(const std::string& table) {
  // gridmon-lint: suppress(coroutine.this-capture) -- `this` carries the
  // next_ balance cursor; the scenario outlives every query coroutine
  // (owned by the Experiment for the full run).
  return [this, table](net::Interface& client,
                       trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto& servlet = *servlets[next_++ % servlets.size()];
    auto r = co_await servlet.client_query(client, table, "", ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

}  // namespace gridmon::core
