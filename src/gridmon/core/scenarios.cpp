#include "gridmon/core/scenarios.hpp"

namespace gridmon::core {
namespace {

/// Fill a producer with `rows` latest-value tuples so SELECTs have data
/// to chew on from the first query.
void prefill_producer(rgma::Producer& producer, const std::string& host,
                      int rows = 30) {
  for (int i = 0; i < rows; ++i) {
    producer.publish({rdbms::Value::text(host),
                      rdbms::Value::text("cpu_load"),
                      rdbms::Value::real(0.1 * i),
                      rdbms::Value::real(static_cast<double>(i))});
  }
}

}  // namespace

void instrument_host(Testbed& tb, trace::Collector& col,
                     const std::string& host) {
  tb.host(host).cpu().ps().set_probe(&col.track(host + ".cpu"));
  tb.nic(host).tx().set_probe(&col.track(host + ".nic_tx"));
  tb.nic(host).rx().set_probe(&col.track(host + ".nic_rx"));
}

std::vector<mds::ProviderSpec> default_providers(int count) {
  std::vector<mds::ProviderSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    mds::ProviderSpec spec;
    spec.name = "ip" + std::to_string(i);
    spec.entries = 4;
    spec.bytes_per_entry = 2000;
    // The paper's cache experiments keep provider data "always in cache";
    // the nocache configurations ignore the TTL anyway.
    spec.cache_ttl = 1e18;
    specs.push_back(spec);
  }
  return specs;
}

GrisScenario::GrisScenario(Testbed& tb, int providers, bool cache,
                           const std::string& host)
    : Scenario(tb) {
  mds::GrisConfig config;
  config.cache_enabled = cache;
  gris = std::make_unique<mds::Gris>(tb.network(), tb.host(host), tb.nic(host),
                                     host + ".mcs.anl.gov",
                                     default_providers(providers), config);
}

AgentScenario::AgentScenario(Testbed& tb, int modules,
                             const std::string& agent_host,
                             const std::string& manager_host)
    : Scenario(tb) {
  manager = std::make_unique<hawkeye::Manager>(
      tb.network(), tb.host(manager_host), tb.nic(manager_host));
  agent = std::make_unique<hawkeye::Agent>(
      tb.network(), tb.host(agent_host), tb.nic(agent_host),
      agent_host + ".mcs.anl.gov", hawkeye::scaled_modules(modules));
  agent->start_advertising(*manager);
}

RgmaScenario::RgmaScenario(Testbed& tb, int producers, Consumers consumers)
    : Scenario(tb) {
  registry = std::make_unique<rgma::Registry>(tb.network(), tb.host("lucky1"),
                                              tb.nic("lucky1"));
  registry->start_sweeper();
  producer_servlet = std::make_unique<rgma::ProducerServlet>(
      tb.network(), tb.host("lucky3"), tb.nic("lucky3"), "ps-lucky3");
  for (int i = 0; i < producers; ++i) {
    auto& p = producer_servlet->add_producer("producer" + std::to_string(i),
                                             "cpuload");
    prefill_producer(p, "lucky3");
  }
  producer_servlet->start_registration(*registry);

  auto add_cs = [&](const std::string& host) {
    auto cs = std::make_unique<rgma::ConsumerServlet>(
        tb.network(), tb.host(host), tb.nic(host), "cs-" + host, *registry);
    cs->add_producer_servlet(*producer_servlet);
    consumer_servlets.emplace(host, std::move(cs));
  };
  switch (consumers) {
    case Consumers::PerLuckyNode:
      for (const auto& name : tb.lucky_names()) add_cs(name);
      break;
    case Consumers::SingleAtUc:
      add_cs("uc01");
      break;
    case Consumers::None:
      break;
  }
}

void RgmaScenario::instrument(trace::Collector& col) {
  registry->instrument(col);
  producer_servlet->instrument(col);
  for (auto& [host, cs] : consumer_servlets) cs->instrument(col);
}

void RgmaScenario::register_faults(fault::Injector& inj) {
  inj.add_service("server", *producer_servlet);
  inj.add_service("registry", *registry);
  for (auto& [host, cs] : consumer_servlets) {
    inj.add_service("cs-" + host, *cs);
  }
}

TracedQueryFn RgmaScenario::mediated_query(const std::string& table) {
  // Route a user to the ConsumerServlet on its own host, or to the single
  // shared servlet when only one exists (the UC setup).
  return [this, table](net::Interface& client,
                       trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto it = consumer_servlets.find(client.host());
    if (it == consumer_servlets.end()) it = consumer_servlets.begin();
    auto r = co_await it->second->query(client, table, "", ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

TracedQueryFn RgmaScenario::direct_query(const std::string& table) {
  return [this, table](net::Interface& client,
                       trace::Ctx ctx) -> sim::Task<QueryAttempt> {
    auto r = co_await producer_servlet->client_query(client, table, "", ctx);
    co_return QueryAttempt{r.admitted, r.response_bytes, r.timed_out,
                           r.failed, r.stale};
  };
}

GiisScenario::GiisScenario(Testbed& tb, int gris_count, int providers_per_gris,
                           double cachettl)
    : Scenario(tb) {
  mds::GiisConfig config;
  config.cachettl = cachettl;
  giis = std::make_unique<mds::Giis>(tb.network(), tb.host("lucky0"),
                                     tb.nic("lucky0"), "giis-lucky0", config);
  const std::vector<std::string> gris_hosts{"lucky3", "lucky4", "lucky5",
                                            "lucky6", "lucky7"};
  for (int i = 0; i < gris_count; ++i) {
    const std::string& host =
        gris_hosts[static_cast<std::size_t>(i) % gris_hosts.size()];
    gris.push_back(std::make_unique<mds::Gris>(
        tb.network(), tb.host(host), tb.nic(host),
        host + "-gris" + std::to_string(i),
        default_providers(providers_per_gris)));
    giis->add_registrant(*gris.back());
  }
}

void GiisScenario::instrument(trace::Collector& col) {
  giis->instrument(col);
  for (auto& g : gris) g->instrument(col);
}

void GiisScenario::register_faults(fault::Injector& inj) {
  inj.add_service("server", *giis);
  for (std::size_t i = 0; i < gris.size(); ++i) {
    inj.add_service("gris" + std::to_string(i), *gris[i]);
  }
}

void GiisScenario::prefill() {
  // One throwaway query triggers the initial cache pull from every GRIS.
  auto warm = [](GiisScenario& self) -> sim::Task<void> {
    (void)co_await self.giis->query(self.testbed_.nic("uc01"),
                                    mds::QueryScope::Part);
  };
  testbed_.sim().spawn(warm(*this));
  testbed_.sim().run(testbed_.sim().now() + 60);
}

ManagerScenario::ManagerScenario(Testbed& tb, int modules_per_agent)
    : Scenario(tb) {
  manager = std::make_unique<hawkeye::Manager>(tb.network(), tb.host("lucky3"),
                                               tb.nic("lucky3"));
  for (const auto& name : tb.lucky_names()) {
    if (name == "lucky3") continue;
    agents.push_back(std::make_unique<hawkeye::Agent>(
        tb.network(), tb.host(name), tb.nic(name), name + ".mcs.anl.gov",
        hawkeye::scaled_modules(modules_per_agent)));
    agents.back()->start_advertising(*manager);
  }
}

void ManagerScenario::instrument(trace::Collector& col) {
  manager->instrument(col);
  for (auto& a : agents) a->instrument(col);
}

void ManagerScenario::register_faults(fault::Injector& inj) {
  inj.add_service("server", *manager);
  inj.add_service("manager", *manager);
  for (std::size_t i = 0; i < agents.size(); ++i) {
    inj.add_service("agent" + std::to_string(i), *agents[i]);
  }
}

RegistryScenario::RegistryScenario(Testbed& tb, int servlet_count,
                                   int producers_each)
    : Scenario(tb) {
  registry = std::make_unique<rgma::Registry>(tb.network(), tb.host("lucky1"),
                                              tb.nic("lucky1"));
  registry->start_sweeper();
  const std::vector<std::string> hosts{"lucky3", "lucky4", "lucky5", "lucky6",
                                       "lucky7"};
  for (int i = 0; i < servlet_count; ++i) {
    const std::string& host = hosts[static_cast<std::size_t>(i) % hosts.size()];
    auto servlet = std::make_unique<rgma::ProducerServlet>(
        tb.network(), tb.host(host), tb.nic(host),
        "ps-" + host + "-" + std::to_string(i));
    for (int p = 0; p < producers_each; ++p) {
      auto& producer = servlet->add_producer(
          "producer-" + std::to_string(i) + "-" + std::to_string(p),
          "cpuload");
      prefill_producer(producer, host);
    }
    servlet->start_registration(*registry);
    servlets.push_back(std::move(servlet));
  }
}

void RegistryScenario::instrument(trace::Collector& col) {
  registry->instrument(col);
  for (auto& s : servlets) s->instrument(col);
}

void RegistryScenario::register_faults(fault::Injector& inj) {
  inj.add_service("server", *registry);
  inj.add_service("registry", *registry);
  for (std::size_t i = 0; i < servlets.size(); ++i) {
    inj.add_service("ps" + std::to_string(i), *servlets[i]);
  }
}

GiisAggregationScenario::GiisAggregationScenario(Testbed& tb, int gris_count,
                                                 int providers_per_gris)
    : Scenario(tb) {
  mds::GiisConfig config;
  config.cachettl = 1e18;
  giis = std::make_unique<mds::Giis>(tb.network(), tb.host("lucky0"),
                                     tb.nic("lucky0"), "giis-lucky0", config);
  const std::vector<std::string> hosts{"lucky1", "lucky3", "lucky4",
                                       "lucky5", "lucky6", "lucky7"};
  for (int i = 0; i < gris_count; ++i) {
    const std::string& host = hosts[static_cast<std::size_t>(i) % hosts.size()];
    gris.push_back(std::make_unique<mds::Gris>(
        tb.network(), tb.host(host), tb.nic(host),
        host + "-gris" + std::to_string(i),
        default_providers(providers_per_gris)));
    giis->add_registrant(*gris.back());
  }
}

void GiisAggregationScenario::instrument(trace::Collector& col) {
  giis->instrument(col);
  for (auto& g : gris) g->instrument(col);
}

void GiisAggregationScenario::register_faults(fault::Injector& inj) {
  inj.add_service("server", *giis);
  for (std::size_t i = 0; i < gris.size(); ++i) {
    inj.add_service("gris" + std::to_string(i), *gris[i]);
  }
}

void GiisAggregationScenario::prefill() {
  auto warm = [](GiisAggregationScenario& self) -> sim::Task<void> {
    (void)co_await self.giis->query(self.testbed_.nic("uc01"),
                                    mds::QueryScope::Part);
  };
  testbed_.sim().spawn(warm(*this));
  testbed_.sim().run(testbed_.sim().now() + 120);
}

ManagerAggregationScenario::ManagerAggregationScenario(Testbed& tb,
                                                       int machines,
                                                       int modules_per_machine)
    : Scenario(tb) {
  manager = std::make_unique<hawkeye::Manager>(tb.network(), tb.host("lucky3"),
                                               tb.nic("lucky3"));
  const std::vector<std::string> hosts{"lucky0", "lucky1", "lucky4",
                                       "lucky5", "lucky6", "lucky7"};
  for (int i = 0; i < machines; ++i) {
    const std::string& host = hosts[static_cast<std::size_t>(i) % hosts.size()];
    advertisers.push_back(std::make_unique<hawkeye::Advertiser>(
        tb.network(), tb.host(host), tb.nic(host),
        "sim-machine-" + std::to_string(i), modules_per_machine));
    advertisers.back()->start(*manager);
  }
}

void ManagerAggregationScenario::prefill() {
  testbed_.sim().run(testbed_.sim().now() + 60);
}

}  // namespace gridmon::core
