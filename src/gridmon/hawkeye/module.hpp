#pragma once

/// \file module.hpp
/// Hawkeye Modules: sensors that emit a ClassAd fragment (e.g. the
/// "vmstat" module). An Agent integrates module fragments into a single
/// Startd ClassAd.

#include <cstdint>
#include <string>
#include <vector>

#include "gridmon/classad/classad.hpp"

namespace gridmon::hawkeye {

struct ModuleSpec {
  std::string name = "vmstat";
  /// Attributes the module contributes to the Startd ad.
  int attrs = 6;
  /// Reference CPU-seconds to collect this module's data at query /
  /// integration time (reading the sensor pipe, parsing).
  double collect_cpu_ref = 0.0018;
};

/// Synthesize one module's ClassAd fragment. `sequence` marks the
/// collection round; `load_value` feeds attributes like CpuLoad that the
/// examples/triggers evaluate.
classad::ClassAd run_module(const ModuleSpec& spec, std::uint64_t sequence,
                            double load_value = 0.0);

/// Integrate module fragments plus identity attributes into a Startd ad.
classad::ClassAd build_startd_ad(const std::string& machine,
                                 const std::vector<classad::ClassAd>& parts);

/// The 11 modules of a default Hawkeye install.
std::vector<ModuleSpec> default_modules();

/// `extra` additional instances of the vmstat module (the paper's
/// Experiment 3 scaled module counts this way).
std::vector<ModuleSpec> scaled_modules(int total);

}  // namespace gridmon::hawkeye
