#include "gridmon/hawkeye/module.hpp"

namespace gridmon::hawkeye {

classad::ClassAd run_module(const ModuleSpec& spec, std::uint64_t sequence,
                            double load_value) {
  classad::ClassAd ad;
  ad.insert(spec.name + "_sequence", static_cast<std::int64_t>(sequence));
  if (spec.name == "vmstat" || spec.name == "cpuload") {
    ad.insert("CpuLoad", load_value);
  }
  for (int i = 0; i < spec.attrs; ++i) {
    ad.insert(spec.name + "_attr" + std::to_string(i),
              static_cast<std::int64_t>(sequence * 31 + i));
  }
  return ad;
}

classad::ClassAd build_startd_ad(const std::string& machine,
                                 const std::vector<classad::ClassAd>& parts) {
  classad::ClassAd ad;
  ad.insert("MyType", "Machine");
  ad.insert("Name", machine);
  ad.insert("OpSys", "LINUX");
  ad.insert_text("Requirements", "true");
  for (const auto& part : parts) ad.update(part);
  return ad;
}

std::vector<ModuleSpec> default_modules() {
  std::vector<ModuleSpec> mods;
  for (const char* name :
       {"vmstat", "df", "netstat", "uptime", "memory", "processes", "users",
        "syslog", "ckpt", "condor_status", "openfiles"}) {
    ModuleSpec spec;
    spec.name = name;
    mods.push_back(spec);
  }
  return mods;
}

std::vector<ModuleSpec> scaled_modules(int total) {
  auto mods = default_modules();
  int extra = total - static_cast<int>(mods.size());
  for (int i = 0; i < extra; ++i) {
    ModuleSpec spec;
    spec.name = "vmstat_copy" + std::to_string(i);
    mods.push_back(spec);
  }
  if (total < static_cast<int>(mods.size())) {
    mods.resize(static_cast<std::size_t>(total));
  }
  return mods;
}

}  // namespace gridmon::hawkeye
