#pragma once

/// \file manager.hpp
/// The Hawkeye Manager: head node of a pool. Receives Startd ClassAds
/// from Agents (or `hawkeye_advertise`), keeps them in an indexed resident
/// database, answers status / dump / constraint queries, and runs Trigger
/// ClassAd matchmaking against every incoming ad.
///
/// Like all Condor daemons of the era it is single-threaded: one request
/// is processed (including the blocking response send) at a time.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gridmon/classad/classad.hpp"
#include "gridmon/classad/matchmaker.hpp"
#include "gridmon/host/host.hpp"
#include "gridmon/net/network.hpp"
#include "gridmon/net/server_port.hpp"
#include "gridmon/sim/resource.hpp"
#include "gridmon/sim/task.hpp"
#include "gridmon/store/durable.hpp"
#include "gridmon/store/log.hpp"

namespace gridmon::hawkeye {

struct HawkeyeReply {
  bool admitted = false;
  std::size_t machines = 0;  // machines covered by the reply
  double response_bytes = 0;
  bool timed_out = false;  // connect or transfer gave up on a dead path
  bool failed = false;     // admitted but collection failed (hung module)
  bool stale = false;      // every resident ad is older than stale_after
};

struct ManagerConfig {
  /// Condor daemons process one request at a time.
  int threads = 1;
  int backlog = 50;
  /// condor_status-style client tool startup.
  double client_tool_latency = 0.4;
  /// CPU to parse and dispatch one query.
  double query_base_cpu = 0.008;
  /// CPU per attribute serialized in a *status* (summary) reply.
  double status_cpu_per_attr = 0.0002;
  /// CPU per attribute serialized in a *dump* (full ads) reply.
  double dump_cpu_per_attr = 0.0008;
  /// CPU per resident ad evaluated during a constraint scan.
  double match_cpu_per_ad = 0.003;
  /// CPU to ingest one incoming Startd ad (parse + index + store).
  double ad_process_cpu = 0.004;
  /// Summary bytes per machine in a status reply.
  double status_bytes_per_machine = 2000;
  double request_bytes = 320;
  /// Client/transfer patience on a dead path (blackholed SYN, partitioned
  /// WAN). Only consulted under faults.
  double connect_timeout = 75.0;
  /// Resident ads older than this are dropped at query time — the
  /// classad-lifetime expiry of the real Collector. 0 keeps ads forever
  /// (exactly the pre-fault behaviour).
  double ad_lifetime = 0;
  /// Replies whose newest resident ad is older than this are flagged
  /// stale (the pool stopped advertising — e.g. every agent crashed).
  /// 0 disables the check.
  double stale_after = 0;
  /// Durability of the resident ad database. Volatile reproduces the
  /// paper (Condor's in-memory Collector store); wal / wal+snapshot
  /// persist every ad mutation and replay them on restart.
  store::StoreConfig store;
};

class Manager : private store::Durable {
 public:
  using TriggerAction =
      std::function<void(const std::string& trigger_name,
                         const std::string& machine)>;

  Manager(net::Network& net, host::Host& host, net::Interface& nic,
          ManagerConfig config = {});

  host::Host& host() noexcept { return host_; }
  net::Interface& nic() noexcept { return nic_; }
  net::ServerPort& port() noexcept { return port_; }

  /// Install the overload-control layer: server policy on the query port,
  /// serve-stale so expired ads keep answering under shed pressure.
  void set_resilience(const resilience::Config& config) {
    resilience_ = config;
    port_.set_policy(config.server);
  }

  /// Ingest a Startd ad sent from `from`. UDP-like: if the daemon's
  /// backlog is full the ad is silently dropped. `wire_bytes` defaults to
  /// the ad's own rendering size.
  sim::Task<bool> advertise(net::Interface& from, classad::ClassAd ad,
                            double wire_bytes = -1);

  /// Directory-style lookup (the paper's Experiment 2): the status
  /// summary of pool members — cheap, served from the indexed store.
  sim::Task<HawkeyeReply> query_status(net::Interface& client,
                                       trace::Ctx ctx = {});

  /// Full-data dump of every machine's complete Startd ad (Experiment 3).
  sim::Task<HawkeyeReply> query_dump(net::Interface& client,
                                     trace::Ctx ctx = {});

  /// Constraint scan over all resident ads (Experiment 4's worst case is
  /// a constraint no machine meets). Returns matching machine count.
  sim::Task<HawkeyeReply> query_constraint(net::Interface& client,
                                           std::string constraint,
                                           trace::Ctx ctx = {});

  /// The paper's §2.3 two-step protocol: "the client must first consult
  /// the Manager for the Agent's IP-address" before querying a Module
  /// directly. Indexed lookup; machines=1 and the name in `address_out`
  /// on success, machines=0 if unknown.
  sim::Task<HawkeyeReply> lookup_agent(net::Interface& client,
                                       std::string machine,
                                       std::string* address_out,
                                       trace::Ctx ctx = {});

  /// Attach resource timelines ("manager.daemon") to a trace collector.
  void instrument(trace::Collector& col) {
    thread_.set_probe(&col.track("manager.daemon"));
  }

  /// Register a Trigger ClassAd; `Requirements` is matched (one-way)
  /// against every incoming Startd ad; on match `action` runs (the
  /// paper's example: kill Netscape on the matched machine).
  void add_trigger(const std::string& name, classad::ClassAd trigger,
                   TriggerAction action);

  /// Convenience: a trigger whose job is the paper's other example —
  /// "the administrator is notified by email". On each match an
  /// email-sized message is sent to `admin`; `action` (optional) runs
  /// after delivery.
  void add_email_trigger(const std::string& name,
                         const std::string& requirements,
                         net::Interface& admin,
                         TriggerAction action = nullptr);

  std::uint64_t emails_sent() const noexcept { return emails_sent_; }

  std::size_t machine_count() const noexcept { return ads_.size(); }
  const classad::ClassAd* find_machine(const std::string& name) const;
  std::uint64_t ads_received() const noexcept { return ads_received_; }
  std::uint64_t ads_dropped() const noexcept { return ads_dropped_; }
  std::uint64_t trigger_firings() const noexcept { return trigger_firings_; }

  /// Durability engine behind the ad database (null when volatile).
  const store::Log* store_log() const noexcept { return log_.get(); }
  /// Absolute sim time when the ad database re-converged to its pre-crash
  /// machine count after the most recent crash (-1 until it happens).
  /// Durable modes get there via replay; volatile waits for the agents'
  /// advertise beats to refill the pool.
  double recovered_at() const noexcept { return recovered_at_; }

  // ---- fault injection ----
  /// Crash the Manager daemon (blackhole: the head node is gone). The
  /// in-memory resident ad database dies with the process; the
  /// StableImage in the store (if durability is on) survives for
  /// restart() to replay.
  void crash(bool blackhole = false);
  void restart();
  bool process_up() const noexcept { return port_.up(); }

 private:
  struct Trigger {
    std::string name;
    classad::ClassAd ad;
    TriggerAction action;
  };

  struct AdEntry {
    classad::ClassAd ad;
    double received_at = 0;
  };

  double total_attrs() const;
  /// Drop resident ads past ad_lifetime (no-op when disabled) and return
  /// whether what remains is uniformly older than stale_after.
  bool expire_and_check_stale();

  // store::Durable — the Manager is its own snapshot/replay client (the
  // ad map serializes directly, no table indirection needed).
  void write_snapshot(store::Encoder& out) const override;
  void load_snapshot(store::Decoder& in) override;
  void apply_record(store::Decoder& in) override;

  sim::Task<void> recover_then_restart();
  void note_recovery_progress();

  net::Network& net_;
  host::Host& host_;
  net::Interface& nic_;
  ManagerConfig config_;
  sim::Resource thread_;
  net::ServerPort port_;
  // The indexed resident database: machine name -> latest Startd ad.
  std::map<std::string, AdEntry> ads_;
  std::vector<Trigger> triggers_;
  sim::Task<void> send_email(net::Interface* admin, std::string trigger_name,
                             std::string machine, TriggerAction after);

  std::uint64_t ads_received_ = 0;
  std::uint64_t ads_dropped_ = 0;
  std::uint64_t trigger_firings_ = 0;
  std::uint64_t emails_sent_ = 0;

  resilience::Config resilience_{};
  std::unique_ptr<store::Log> log_;
  std::size_t ads_at_crash_ = 0;
  bool awaiting_recovery_ = false;
  double recovered_at_ = -1;
};

}  // namespace gridmon::hawkeye
