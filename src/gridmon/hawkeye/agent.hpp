#pragma once

/// \file agent.hpp
/// The Hawkeye Monitoring Agent: runs on every pool member, integrates
/// its Modules' ClassAds into one Startd ad, pushes it to the Manager at
/// a fixed interval, and answers direct queries. Crucially (and unlike
/// the Manager) it has no resident database: every query re-collects
/// fresh module data, which is why its response time degrades faster in
/// the paper's Experiment 1.

#include <cstdint>
#include <string>
#include <vector>

#include "gridmon/classad/classad.hpp"
#include "gridmon/hawkeye/manager.hpp"
#include "gridmon/hawkeye/module.hpp"
#include "gridmon/host/host.hpp"
#include "gridmon/net/network.hpp"
#include "gridmon/net/server_port.hpp"
#include "gridmon/sim/resource.hpp"
#include "gridmon/sim/task.hpp"

namespace gridmon::hawkeye {

struct AgentConfig {
  int threads = 1;  // single-threaded Condor daemon
  int backlog = 400;  // requests park in the startd's deep request queue
  double client_tool_latency = 0.4;
  double query_base_cpu = 0.004;
  /// CPU to integrate the collected fragments into one Startd ad.
  double integrate_cpu = 0.003;
  double request_bytes = 320;
  /// Pad the Startd ad to roughly this wire size (module attrs alone are
  /// compact; real ads carry full machine state).
  double min_ad_bytes = 5000;
  double advertise_interval = 30.0;
  /// The maximum modules an Agent accepts before its Startd crashes — the
  /// paper hit this at 98.
  int max_modules = 98;
  /// Client/transfer patience on a dead path (blackholed SYN, partitioned
  /// WAN). Only consulted under faults.
  double connect_timeout = 75.0;
  /// How long a hung module is allowed to run before the collection sweep
  /// gives up (no resident DB, so the query fails outright).
  double module_timeout = 10.0;
};

class AgentError : public std::runtime_error {
 public:
  explicit AgentError(const std::string& m) : std::runtime_error(m) {}
};

class Agent {
 public:
  Agent(net::Network& net, host::Host& host, net::Interface& nic,
        std::string machine_name, std::vector<ModuleSpec> modules,
        AgentConfig config = {});

  const std::string& machine() const noexcept { return machine_; }
  host::Host& host() noexcept { return host_; }
  net::Interface& nic() noexcept { return nic_; }
  net::ServerPort& port() noexcept { return port_; }
  std::size_t module_count() const noexcept { return modules_.size(); }

  /// Install the overload-control layer: server policy on the query port,
  /// a circuit breaker on the advertise path toward the Manager.
  void set_resilience(const resilience::Config& config) {
    resilience_ = config;
    port_.set_policy(config.server);
    advertise_breaker_ = resilience::CircuitBreaker(config.client.breaker);
  }
  const resilience::CircuitBreaker& advertise_breaker() const noexcept {
    return advertise_breaker_;
  }

  /// Sensor input for modules that publish CpuLoad (drives trigger
  /// examples; defaults to this host's live one-minute load x 100).
  void set_load_value(double v) { forced_load_ = v; }

  /// Direct client query: collects fresh data from every module, builds
  /// the Startd ad, sends it back.
  sim::Task<HawkeyeReply> query(net::Interface& client, trace::Ctx ctx = {});

  /// Direct query "about a particular Module" (paper §2.3): collects
  /// only that module's data. machines=0 if the module is unknown.
  sim::Task<HawkeyeReply> query_module(net::Interface& client,
                                       std::string module_name,
                                       trace::Ctx ctx = {});

  /// Attach resource timelines ("<machine>.startd") to a trace collector.
  void instrument(trace::Collector& col) {
    thread_.set_probe(&col.track(machine_ + ".startd"));
  }

  /// Begin the periodic Startd-ad push to `manager`.
  void start_advertising(Manager& manager);
  void stop_advertising() { advertising_ = false; }

  std::uint64_t collections() const noexcept { return collections_; }

  // ---- fault injection ----
  /// Crash the startd (blackhole: the whole machine is gone). Advertising
  /// pauses while down, so the Manager's resident ad goes stale.
  void crash(bool blackhole = false) { port_.crash(blackhole); }
  void restart() { port_.restart(); }
  bool process_up() const noexcept { return port_.up(); }
  /// Hang (or un-hang) the monitoring modules: queries wait out
  /// `module_timeout` under the thread lease, then fail — the Agent has
  /// no resident database to fall back on.
  void set_collectors_down(bool down) noexcept { collectors_down_ = down; }

 private:
  sim::Task<classad::ClassAd> collect(trace::Ctx ctx = {});
  sim::Task<void> advertise_loop(Manager& manager);

  double current_load() const;

  net::Network& net_;
  host::Host& host_;
  net::Interface& nic_;
  std::string machine_;
  std::vector<ModuleSpec> modules_;
  AgentConfig config_;
  sim::Resource thread_;
  net::ServerPort port_;
  std::uint64_t sequence_ = 0;
  std::uint64_t collections_ = 0;
  double forced_load_ = -1;
  bool advertising_ = false;
  bool collectors_down_ = false;
  resilience::Config resilience_{};
  resilience::CircuitBreaker advertise_breaker_{};
};

/// Standalone `hawkeye_advertise`: pushes synthetic Startd ads for a
/// (possibly fictitious) machine at a fixed interval — how the paper
/// simulated pools of up to 1000 computers in Experiment 4.
class Advertiser {
 public:
  Advertiser(net::Network& net, host::Host& host, net::Interface& nic,
             std::string machine_name, int modules = 11,
             double interval = 30.0, double jitter = 0.5);

  void start(Manager& manager);
  void stop() { running_ = false; }
  std::uint64_t ads_sent() const noexcept { return ads_sent_; }

 private:
  sim::Task<void> loop(Manager& manager);

  net::Network& net_;
  host::Host& host_;
  net::Interface& nic_;
  std::string machine_;
  int modules_;
  double interval_;
  double jitter_;
  std::uint64_t sequence_ = 0;
  std::uint64_t ads_sent_ = 0;
  bool running_ = false;
};

}  // namespace gridmon::hawkeye
