#include "gridmon/hawkeye/agent.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace gridmon::hawkeye {

Agent::Agent(net::Network& net, host::Host& host, net::Interface& nic,
             std::string machine_name, std::vector<ModuleSpec> modules,
             AgentConfig config)
    : net_(net),
      host_(host),
      nic_(nic),
      machine_(std::move(machine_name)),
      modules_(std::move(modules)),
      config_(config),
      thread_(host.simulation(), config.threads),
      port_(host.simulation(), config.backlog) {
  if (static_cast<int>(modules_.size()) > config_.max_modules) {
    // The paper: "adding another Module caused the Startd to crash."
    throw AgentError("startd crash: " + std::to_string(modules_.size()) +
                     " modules exceeds the " +
                     std::to_string(config_.max_modules) + "-module limit");
  }
}

double Agent::current_load() const {
  if (forced_load_ >= 0) return forced_load_;
  return host_.load1().value() * 100.0;
}

sim::Task<classad::ClassAd> Agent::collect(trace::Ctx ctx) {
  trace::Span span(ctx, trace::SpanKind::Collect, machine_,
                   static_cast<double>(modules_.size()));
  ++sequence_;
  ++collections_;
  std::vector<classad::ClassAd> parts;
  parts.reserve(modules_.size());
  // Indexed loop, not range-for: the collect CPU charge suspends every
  // iteration, and modules_ must be re-entered through the index after
  // each suspension rather than through a live iterator.
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    co_await host_.cpu().consume(modules_[i].collect_cpu_ref);
    parts.push_back(run_module(modules_[i], sequence_, current_load()));
  }
  co_await host_.cpu().consume(config_.integrate_cpu);
  co_return build_startd_ad(machine_, parts);
}

sim::Task<HawkeyeReply> Agent::query(net::Interface& client, trace::Ctx ctx) {
  auto& sim = host_.simulation();
  {
    trace::Span tool(ctx, trace::SpanKind::ClientTool);
    co_await sim.delay(config_.client_tool_latency);
  }
  if (!co_await net_.connect(client, nic_, ctx, config_.connect_timeout)) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Timeout, machine_);
    HawkeyeReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    HawkeyeReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    if (ctx) {
      ctx.col->instant(ctx,
                       reply.timed_out ? trace::SpanKind::Timeout
                                       : trace::SpanKind::Refused,
                       machine_);
    }
    co_return reply;
  }
  net::AdmissionSlot slot(&port_);
  if (!co_await net_.transfer(client, nic_, config_.request_bytes, ctx,
                              trace::SpanKind::RequestSend,
                              config_.connect_timeout)) {
    HawkeyeReply reply;
    reply.timed_out = true;
    co_return reply;
  }

  HawkeyeReply reply;
  {
    trace::Span wait(ctx, trace::SpanKind::PoolWait, machine_);
    auto lease = co_await thread_.acquire();
    wait.end();
    {
      trace::Span cpu(ctx, trace::SpanKind::Cpu, "query_base",
                      config_.query_base_cpu);
      co_await host_.cpu().consume(config_.query_base_cpu);
    }
    if (collectors_down_) {
      // A hung module wedges the whole collection sweep: the daemon waits
      // out the module timeout holding its one thread, then fails — there
      // is no resident database to fall back on.
      co_await sim.delay(config_.module_timeout);
      reply.failed = true;
      reply.response_bytes = 128;  // error envelope
      reply.admitted = true;
    } else {
      classad::ClassAd ad =
          co_await collect(ctx);  // no resident DB: always fresh
      reply.machines = 1;
      reply.response_bytes = std::max(ad.wire_bytes(), config_.min_ad_bytes);
      reply.admitted = true;
    }
  }
  // The startd hands the reply buffer to the kernel and moves on; unlike
  // the Manager's large result sets, a single ad fits the socket buffer.
  if (!co_await net_.transfer(nic_, client, reply.response_bytes, ctx,
                              trace::SpanKind::ResponseSend,
                              config_.connect_timeout)) {
    reply.timed_out = true;
  }
  co_return reply;
}

sim::Task<HawkeyeReply> Agent::query_module(net::Interface& client,
                                            std::string module_name,
                                            trace::Ctx ctx) {
  auto& sim = host_.simulation();
  {
    trace::Span tool(ctx, trace::SpanKind::ClientTool);
    co_await sim.delay(config_.client_tool_latency);
  }
  if (!co_await net_.connect(client, nic_, ctx, config_.connect_timeout)) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Timeout, machine_);
    HawkeyeReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    HawkeyeReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    if (ctx) {
      ctx.col->instant(ctx,
                       reply.timed_out ? trace::SpanKind::Timeout
                                       : trace::SpanKind::Refused,
                       machine_);
    }
    co_return reply;
  }
  net::AdmissionSlot slot(&port_);
  if (!co_await net_.transfer(client, nic_, config_.request_bytes, ctx,
                              trace::SpanKind::RequestSend,
                              config_.connect_timeout)) {
    HawkeyeReply reply;
    reply.timed_out = true;
    co_return reply;
  }

  HawkeyeReply reply;
  {
    trace::Span wait(ctx, trace::SpanKind::PoolWait, machine_);
    auto lease = co_await thread_.acquire();
    wait.end();
    {
      trace::Span cpu(ctx, trace::SpanKind::Cpu, "query_base",
                      config_.query_base_cpu);
      co_await host_.cpu().consume(config_.query_base_cpu);
    }
    if (collectors_down_) {
      co_await sim.delay(config_.module_timeout);
      reply.failed = true;
      reply.response_bytes = 128;
      reply.admitted = true;
    } else {
      trace::Span span(ctx, trace::SpanKind::Collect, module_name, 1);
      // Indexed loop: the CPU charge suspends mid-iteration, so the
      // matched module is re-entered through its index afterwards.
      for (std::size_t i = 0; i < modules_.size(); ++i) {
        if (modules_[i].name != module_name) continue;
        co_await host_.cpu().consume(modules_[i].collect_cpu_ref);
        ++sequence_;
        ++collections_;
        classad::ClassAd fragment =
            run_module(modules_[i], sequence_, current_load());
        reply.machines = 1;
        reply.response_bytes = std::max(fragment.wire_bytes(), 512.0);
        break;
      }
      if (reply.machines == 0) reply.response_bytes = 128;  // unknown module
      reply.admitted = true;
    }
  }
  if (!co_await net_.transfer(nic_, client, reply.response_bytes, ctx,
                              trace::SpanKind::ResponseSend,
                              config_.connect_timeout)) {
    reply.timed_out = true;
  }
  co_return reply;
}

void Agent::start_advertising(Manager& manager) {
  if (advertising_) return;
  advertising_ = true;
  host_.simulation().spawn(advertise_loop(manager));
}

sim::Task<void> Agent::advertise_loop(Manager& manager) {
  auto& sim = host_.simulation();
  while (advertising_) {
    // A crashed startd (or one whose modules hang) skips its advertise
    // beats; the Manager's resident ad for this machine goes stale.
    if (!port_.up() || collectors_down_) {
      co_await sim.delay(config_.advertise_interval);
      continue;
    }
    if (resilience_.client.enabled && !advertise_breaker_.allow(sim.now())) {
      // Breaker open toward the Manager: skip the whole beat — including
      // the collection CPU — instead of building ads a dead or drowning
      // head node will drop anyway.
      co_await sim.delay(config_.advertise_interval);
      continue;
    }
    classad::ClassAd ad;
    {
      auto lease = co_await thread_.acquire();
      ad = co_await collect();
    }
    double bytes = std::max(ad.wire_bytes(), config_.min_ad_bytes);
    bool delivered = co_await manager.advertise(nic_, std::move(ad), bytes);
    if (resilience_.client.enabled) {
      advertise_breaker_.record(sim.now(), delivered);
    }
    co_await sim.delay(config_.advertise_interval);
  }
}

Advertiser::Advertiser(net::Network& net, host::Host& host,
                       net::Interface& nic, std::string machine_name,
                       int modules, double interval, double jitter)
    : net_(net),
      host_(host),
      nic_(nic),
      machine_(std::move(machine_name)),
      modules_(modules),
      interval_(interval),
      jitter_(jitter) {}

void Advertiser::start(Manager& manager) {
  if (running_) return;
  running_ = true;
  host_.simulation().spawn(loop(manager));
}

sim::Task<void> Advertiser::loop(Manager& manager) {
  auto& sim = host_.simulation();
  // Deterministic phase offset so a thousand advertisers do not fire in
  // the same event tick.
  double phase = static_cast<double>(std::hash<std::string>{}(machine_) %
                                     100000) /
                 100000.0 * interval_ * std::max(jitter_, 1.0);
  co_await sim.delay(phase);

  auto specs = scaled_modules(modules_);
  while (running_) {
    ++sequence_;
    std::vector<classad::ClassAd> parts;
    parts.reserve(specs.size());
    for (const auto& mod : specs) parts.push_back(run_module(mod, sequence_));
    classad::ClassAd ad = build_startd_ad(machine_, parts);
    // hawkeye_advertise is a lightweight sender: tiny CPU, no daemon.
    co_await host_.cpu().consume(0.002);
    double bytes = std::max(ad.wire_bytes(), 5000.0);
    co_await manager.advertise(nic_, std::move(ad), bytes);
    ++ads_sent_;
    co_await sim.delay(interval_);
  }
}

}  // namespace gridmon::hawkeye
