#include "gridmon/hawkeye/manager.hpp"

#include "gridmon/classad/parser.hpp"

namespace gridmon::hawkeye {
namespace {

// WAL record op tags for the resident ad database.
constexpr std::uint8_t kOpPut = 1;    // machine, received_at, ad text
constexpr std::uint8_t kOpErase = 2;  // machine

}  // namespace

Manager::Manager(net::Network& net, host::Host& host, net::Interface& nic,
                 ManagerConfig config)
    : net_(net),
      host_(host),
      nic_(nic),
      config_(config),
      thread_(host.simulation(), config.threads),
      port_(host.simulation(), config.backlog) {
  if (config_.store.enabled()) {
    // The private-base conversion must happen here, inside the class.
    store::Durable& self = *this;
    log_ = std::make_unique<store::Log>(host, self, config_.store);
    log_->start();
  }
}

void Manager::crash(bool blackhole) {
  port_.crash(blackhole);
  if (log_) log_->crash();
  ads_at_crash_ = ads_.size();
  awaiting_recovery_ = true;
  recovered_at_ = -1;
  // The resident database dies with the daemon; the store's crash() above
  // already closed the log, so clearing journals nothing.
  ads_.clear();
}

void Manager::restart() {
  if (log_) {
    host_.simulation().spawn(recover_then_restart());
    return;
  }
  port_.restart();
  note_recovery_progress();
}

sim::Task<void> Manager::recover_then_restart() {
  co_await log_->recover();
  port_.restart();
  note_recovery_progress();
}

void Manager::note_recovery_progress() {
  if (awaiting_recovery_ && ads_.size() >= ads_at_crash_) {
    recovered_at_ = host_.simulation().now();
    awaiting_recovery_ = false;
  }
}

void Manager::write_snapshot(store::Encoder& out) const {
  out.u64(static_cast<std::uint64_t>(ads_.size()));
  for (const auto& [name, e] : ads_) {  // std::map: deterministic order
    out.str(name);
    out.f64(e.received_at);
    out.str(e.ad.to_string());
  }
}

void Manager::load_snapshot(store::Decoder& in) {
  std::uint64_t n = 0;
  if (!in.u64(n)) return;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    double at = 0;
    std::string text;
    if (!in.str(name) || !in.f64(at) || !in.str(text)) return;
    ads_[name] = AdEntry{classad::ClassAd::parse(text), at};
  }
}

void Manager::apply_record(store::Decoder& in) {
  std::uint8_t op = 0;
  if (!in.u8(op)) return;
  if (op == kOpPut) {
    std::string name;
    double at = 0;
    std::string text;
    if (!in.str(name) || !in.f64(at) || !in.str(text)) return;
    ads_[name] = AdEntry{classad::ClassAd::parse(text), at};
  } else if (op == kOpErase) {
    std::string name;
    if (in.str(name)) ads_.erase(name);
  }
}

const classad::ClassAd* Manager::find_machine(const std::string& name) const {
  auto it = ads_.find(name);
  return it == ads_.end() ? nullptr : &it->second.ad;
}

double Manager::total_attrs() const {
  double n = 0;
  for (const auto& [name, e] : ads_) n += static_cast<double>(e.ad.size());
  return n;
}

bool Manager::expire_and_check_stale() {
  double now = host_.simulation().now();
  if (resilience_.server.serve_stale && port_.overloaded() && !ads_.empty()) {
    // Degraded mode under shed pressure: keep answering from expired ads
    // instead of dropping them — the staleness is visible to the client.
    return true;
  }
  if (config_.ad_lifetime > 0) {
    for (auto it = ads_.begin(); it != ads_.end();) {
      if (now - it->second.received_at > config_.ad_lifetime) {
        if (log_) {
          store::Encoder rec;
          rec.u8(kOpErase);
          rec.str(it->first);
          log_->append(rec.take());  // flushed by the group-commit window
        }
        it = ads_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (config_.stale_after <= 0 || ads_.empty()) return false;
  double newest = -1;
  for (const auto& [name, e] : ads_) {
    if (e.received_at > newest) newest = e.received_at;
  }
  return now - newest > config_.stale_after;
}

sim::Task<bool> Manager::advertise(net::Interface& from, classad::ClassAd ad,
                                   double wire_bytes) {
  if (wire_bytes < 0) wire_bytes = ad.wire_bytes();
  co_await net_.transfer(from, nic_, wire_bytes);
  if (!port_.try_admit()) {
    ++ads_dropped_;  // UDP-style: overloaded (or dead) manager loses ads
    co_return false;
  }
  net::AdmissionSlot slot(&port_);
  auto lease = co_await thread_.acquire();
  co_await host_.cpu().consume(config_.ad_process_cpu);
  ++ads_received_;

  double now = host_.simulation().now();
  std::string machine = "unknown";
  {
    auto v = ad.evaluate("Name");
    if (v.is_string()) machine = v.as_string();
  }
  for (const auto& trig : triggers_) {
    if (classad::one_way_match(trig.ad, ad, now)) {
      ++trigger_firings_;
      if (trig.action) trig.action(trig.name, machine);
    }
  }
  if (log_) {
    store::Encoder rec;
    rec.u8(kOpPut);
    rec.str(machine);
    rec.f64(now);
    rec.str(ad.to_string());
    log_->append(rec.take());
  }
  ads_[machine] = AdEntry{std::move(ad), now};
  // Durable modes hold the (UDP-ish) ingest until the ad is on the
  // platter — the single daemon thread is pinned for the fsync, which is
  // exactly the overhead the durability benchmark measures.
  if (log_) co_await log_->commit();
  note_recovery_progress();
  co_return true;
}

sim::Task<HawkeyeReply> Manager::query_status(net::Interface& client,
                                              trace::Ctx ctx) {
  auto& sim = host_.simulation();
  {
    trace::Span tool(ctx, trace::SpanKind::ClientTool);
    co_await sim.delay(config_.client_tool_latency);
  }
  if (!co_await net_.connect(client, nic_, ctx, config_.connect_timeout)) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Timeout, "manager");
    HawkeyeReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    HawkeyeReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    if (ctx) {
      ctx.col->instant(ctx,
                       reply.timed_out ? trace::SpanKind::Timeout
                                       : trace::SpanKind::Refused,
                       "manager");
    }
    co_return reply;
  }
  net::AdmissionSlot slot(&port_);
  if (!co_await net_.transfer(client, nic_, config_.request_bytes, ctx,
                              trace::SpanKind::RequestSend,
                              config_.connect_timeout)) {
    HawkeyeReply reply;
    reply.timed_out = true;
    co_return reply;
  }

  HawkeyeReply reply;
  {
    trace::Span wait(ctx, trace::SpanKind::PoolWait, "manager");
    auto lease = co_await thread_.acquire();
    wait.end();
    reply.stale = expire_and_check_stale();
    trace::Span cpu(ctx, trace::SpanKind::Cpu, "status");
    co_await host_.cpu().consume(config_.query_base_cpu);
    // Summary line per machine straight out of the indexed store: a fixed
    // handful of attributes each.
    double attrs = 10.0 * static_cast<double>(ads_.size());
    co_await host_.cpu().consume(config_.status_cpu_per_attr * attrs);
    cpu.end();
    reply.machines = ads_.size();
    reply.response_bytes =
        config_.status_bytes_per_machine * static_cast<double>(ads_.size());
    reply.admitted = true;
    // Single-threaded daemon: the blocking response send happens inside
    // the service thread.
    if (!co_await net_.transfer(nic_, client, reply.response_bytes, ctx,
                                trace::SpanKind::ResponseSend,
                                config_.connect_timeout)) {
      reply.timed_out = true;
    }
  }
  co_return reply;
}

sim::Task<HawkeyeReply> Manager::query_dump(net::Interface& client,
                                            trace::Ctx ctx) {
  auto& sim = host_.simulation();
  {
    trace::Span tool(ctx, trace::SpanKind::ClientTool);
    co_await sim.delay(config_.client_tool_latency);
  }
  if (!co_await net_.connect(client, nic_, ctx, config_.connect_timeout)) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Timeout, "manager");
    HawkeyeReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    HawkeyeReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    if (ctx) {
      ctx.col->instant(ctx,
                       reply.timed_out ? trace::SpanKind::Timeout
                                       : trace::SpanKind::Refused,
                       "manager");
    }
    co_return reply;
  }
  net::AdmissionSlot slot(&port_);
  if (!co_await net_.transfer(client, nic_, config_.request_bytes, ctx,
                              trace::SpanKind::RequestSend,
                              config_.connect_timeout)) {
    HawkeyeReply reply;
    reply.timed_out = true;
    co_return reply;
  }

  HawkeyeReply reply;
  {
    trace::Span wait(ctx, trace::SpanKind::PoolWait, "manager");
    auto lease = co_await thread_.acquire();
    wait.end();
    reply.stale = expire_and_check_stale();
    trace::Span cpu(ctx, trace::SpanKind::Cpu, "dump");
    co_await host_.cpu().consume(config_.query_base_cpu);
    co_await host_.cpu().consume(config_.dump_cpu_per_attr * total_attrs());
    cpu.end();
    double bytes = 0;
    for (const auto& [name, e] : ads_) bytes += e.ad.wire_bytes();
    reply.machines = ads_.size();
    reply.response_bytes = bytes;
    reply.admitted = true;
    if (!co_await net_.transfer(nic_, client, reply.response_bytes, ctx,
                                trace::SpanKind::ResponseSend,
                                config_.connect_timeout)) {
      reply.timed_out = true;
    }
  }
  co_return reply;
}

sim::Task<HawkeyeReply> Manager::query_constraint(
    net::Interface& client, std::string constraint, trace::Ctx ctx) {
  auto& sim = host_.simulation();
  {
    trace::Span tool(ctx, trace::SpanKind::ClientTool);
    co_await sim.delay(config_.client_tool_latency);
  }
  if (!co_await net_.connect(client, nic_, ctx, config_.connect_timeout)) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Timeout, "manager");
    HawkeyeReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    HawkeyeReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    if (ctx) {
      ctx.col->instant(ctx,
                       reply.timed_out ? trace::SpanKind::Timeout
                                       : trace::SpanKind::Refused,
                       "manager");
    }
    co_return reply;
  }
  net::AdmissionSlot slot(&port_);
  if (!co_await net_.transfer(
          client, nic_,
          config_.request_bytes + static_cast<double>(constraint.size()), ctx,
          trace::SpanKind::RequestSend, config_.connect_timeout)) {
    HawkeyeReply reply;
    reply.timed_out = true;
    co_return reply;
  }

  HawkeyeReply reply;
  {
    trace::Span wait(ctx, trace::SpanKind::PoolWait, "manager");
    auto lease = co_await thread_.acquire();
    wait.end();
    reply.stale = expire_and_check_stale();
    {
      trace::Span cpu(ctx, trace::SpanKind::Cpu, "query_base",
                      config_.query_base_cpu);
      co_await host_.cpu().consume(config_.query_base_cpu);
    }
    trace::Span scan(ctx, trace::SpanKind::ClassAdEval, constraint,
                     static_cast<double>(ads_.size()));
    auto expr = classad::parse_expression(constraint);
    co_await host_.cpu().consume(config_.match_cpu_per_ad *
                                 static_cast<double>(ads_.size()));
    double bytes = 128;  // envelope
    std::size_t matches = 0;
    for (const auto& [name, e] : ads_) {
      if (classad::satisfies(e.ad, *expr, sim.now())) {
        ++matches;
        bytes += e.ad.wire_bytes();
      }
    }
    scan.end();
    reply.machines = matches;
    reply.response_bytes = bytes;
    reply.admitted = true;
    if (!co_await net_.transfer(nic_, client, reply.response_bytes, ctx,
                                trace::SpanKind::ResponseSend,
                                config_.connect_timeout)) {
      reply.timed_out = true;
    }
  }
  co_return reply;
}

sim::Task<HawkeyeReply> Manager::lookup_agent(net::Interface& client,
                                              std::string machine,
                                              std::string* address_out,
                                              trace::Ctx ctx) {
  auto& sim = host_.simulation();
  {
    trace::Span tool(ctx, trace::SpanKind::ClientTool);
    co_await sim.delay(config_.client_tool_latency);
  }
  if (!co_await net_.connect(client, nic_, ctx, config_.connect_timeout)) {
    if (ctx) ctx.col->instant(ctx, trace::SpanKind::Timeout, "manager");
    HawkeyeReply reply;
    reply.timed_out = true;
    co_return reply;
  }
  auto admission = co_await port_.admit(config_.connect_timeout);
  if (admission != net::Admission::Ok) {
    HawkeyeReply reply;
    reply.timed_out = admission == net::Admission::TimedOut;
    if (ctx) {
      ctx.col->instant(ctx,
                       reply.timed_out ? trace::SpanKind::Timeout
                                       : trace::SpanKind::Refused,
                       "manager");
    }
    co_return reply;
  }
  net::AdmissionSlot slot(&port_);
  if (!co_await net_.transfer(client, nic_, config_.request_bytes, ctx,
                              trace::SpanKind::RequestSend,
                              config_.connect_timeout)) {
    HawkeyeReply reply;
    reply.timed_out = true;
    co_return reply;
  }

  HawkeyeReply reply;
  {
    trace::Span wait(ctx, trace::SpanKind::PoolWait, "manager");
    auto lease = co_await thread_.acquire();
    wait.end();
    reply.stale = expire_and_check_stale();
    trace::Span cpu(ctx, trace::SpanKind::Cpu, "lookup");
    co_await host_.cpu().consume(config_.query_base_cpu);
    cpu.end();
    const classad::ClassAd* ad = find_machine(machine);  // indexed lookup
    if (ad != nullptr) {
      reply.machines = 1;
      if (address_out != nullptr) *address_out = machine;
    }
    reply.response_bytes = 256;
    reply.admitted = true;
    if (!co_await net_.transfer(nic_, client, reply.response_bytes, ctx,
                                trace::SpanKind::ResponseSend,
                                config_.connect_timeout)) {
      reply.timed_out = true;
    }
  }
  co_return reply;
}

void Manager::add_trigger(const std::string& name, classad::ClassAd trigger,
                          TriggerAction action) {
  triggers_.push_back(Trigger{name, std::move(trigger), std::move(action)});
}

void Manager::add_email_trigger(const std::string& name,
                                const std::string& requirements,
                                net::Interface& admin, TriggerAction action) {
  classad::ClassAd trigger;
  trigger.insert("MyType", "Trigger");
  trigger.insert("Job", "mail admin");
  trigger.insert_text("Requirements", requirements);
  net::Interface* admin_ptr = &admin;
  TriggerAction after = std::move(action);
  add_trigger(name, std::move(trigger),
              [this, admin_ptr, after](const std::string& trigger_name,
                                       const std::string& machine) {
                host_.simulation().spawn(
                    send_email(admin_ptr, trigger_name, machine, after));
              });
}

sim::Task<void> Manager::send_email(net::Interface* admin,
                                    std::string trigger_name,
                                    std::string machine,
                                    TriggerAction after) {
  // Compose + hand to the MTA, then push the message to the admin host.
  co_await host_.cpu().consume(0.005);
  co_await net_.transfer(nic_, *admin, 2048);
  ++emails_sent_;
  if (after) after(trigger_name, machine);
}

}  // namespace gridmon::hawkeye
