/// The Hawkeye motivating example from the paper (§2.3): a Trigger
/// ClassAd that fires when any machine advertises CpuLoad > 50 and runs a
/// job on the matched machine ("kill that machine's Netscape process").
///
/// Two agents advertise into a Manager; one machine ramps its load up and
/// back down; the trigger fires only while the threshold is crossed.
///
///   $ ./examples/load_alarm

#include <iostream>

#include "gridmon/core/testbed.hpp"
#include "gridmon/hawkeye/agent.hpp"
#include "gridmon/hawkeye/manager.hpp"

using namespace gridmon;

int main() {
  core::Testbed testbed;
  auto& sim = testbed.sim();

  hawkeye::Manager manager(testbed.network(), testbed.host("lucky3"),
                           testbed.nic("lucky3"));
  hawkeye::Agent quiet(testbed.network(), testbed.host("lucky4"),
                       testbed.nic("lucky4"), "lucky4.mcs.anl.gov",
                       hawkeye::default_modules());
  hawkeye::Agent spiky(testbed.network(), testbed.host("lucky5"),
                       testbed.nic("lucky5"), "lucky5.mcs.anl.gov",
                       hawkeye::default_modules());

  // The Trigger ClassAd: event (Requirements) + job to run on match.
  classad::ClassAd trigger;
  trigger.insert("MyType", "Trigger");
  trigger.insert("Job", "killall netscape");
  trigger.insert_text("Requirements", "TARGET.CpuLoad > 50");
  manager.add_trigger(
      "kill-netscape", std::move(trigger),
      [&](const std::string& name, const std::string& machine) {
        std::cout << "  t=" << sim.now() << "s  trigger '" << name
                  << "' matched " << machine << " -> executing job\n";
      });

  quiet.set_load_value(5.0);
  spiky.set_load_value(5.0);
  quiet.start_advertising(manager);
  spiky.start_advertising(manager);

  // Load profile on lucky5: spike between t=100 and t=220.
  sim.schedule(100, [&] {
    std::cout << "t=100s  lucky5 load jumps to 85\n";
    spiky.set_load_value(85.0);
  });
  sim.schedule(220, [&] {
    std::cout << "t=220s  lucky5 load falls back to 10\n";
    spiky.set_load_value(10.0);
  });

  sim.run(400);

  std::cout << "\nads received by manager: " << manager.ads_received()
            << "\ntrigger firings:         " << manager.trigger_firings()
            << "\n";
  // Expected: roughly one firing per 30 s advertise interval during the
  // 120 s spike window, on lucky5 only.
  sim.shutdown();
  return 0;
}
