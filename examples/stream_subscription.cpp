/// The R-GMA motivating example from the paper (§2.2): "a user can
/// subscribe to a flow of data with specific properties directly from a
/// data source... subscribe to a load-data data stream and allow
/// notification when the load reaches some maximum."
///
/// A producer publishes a load time series; a consumer subscribes with
/// the SQL predicate `value > 0.8` and is notified (push, not pull) only
/// for threshold crossings — the delivery model MDS does not offer.
///
///   $ ./examples/stream_subscription

#include <cmath>
#include <iostream>

#include "gridmon/core/testbed.hpp"
#include "gridmon/rgma/consumer_servlet.hpp"
#include "gridmon/rgma/producer_servlet.hpp"
#include "gridmon/rgma/registry.hpp"

using namespace gridmon;

namespace {

/// Publish a sinusoidal load curve, one tuple every 5 seconds.
sim::Task<void> publisher(core::Testbed& tb, rgma::ProducerServlet& ps,
                          rgma::Producer& producer) {
  auto& sim = tb.sim();
  for (int i = 0; i < 120; ++i) {
    double load = 0.5 + 0.5 * std::sin(i * 0.1);
    rdbms::Row row{rdbms::Value::text("lucky3"), rdbms::Value::text("load1"),
                   rdbms::Value::real(load), rdbms::Value::real(sim.now())};
    co_await ps.publish(producer, std::move(row));
    co_await sim.delay(5.0);
  }
}

sim::Task<void> subscriber(core::Testbed& tb, rgma::ConsumerServlet& cs,
                           int* alerts) {
  bool ok = co_await cs.subscribe(
      tb.nic("uc01"), "loadstream", "value > 0.8",
      [&tb, alerts](const rdbms::Row& row) {
        ++*alerts;
        std::cout << "  t=" << tb.sim().now()
                  << "s  ALERT load=" << row[2].as_number() << " on "
                  << row[0].as_text() << "\n";
      });
  std::cout << (ok ? "subscription established\n"
                   : "no producer found for table\n");
}

}  // namespace

int main() {
  core::Testbed testbed;

  rgma::Registry registry(testbed.network(), testbed.host("lucky1"),
                          testbed.nic("lucky1"));
  registry.start_sweeper();

  rgma::ProducerServlet ps(testbed.network(), testbed.host("lucky3"),
                           testbed.nic("lucky3"), "ps-lucky3");
  auto& producer = ps.add_producer("load-producer", "loadstream");
  ps.start_registration(registry);

  rgma::ConsumerServlet cs(testbed.network(), testbed.host("lucky5"),
                           testbed.nic("lucky5"), "cs-lucky5", registry);
  cs.add_producer_servlet(ps);

  // Let registration land, subscribe, then start the data stream.
  testbed.sim().run(5.0);
  int alerts = 0;
  testbed.sim().spawn(subscriber(testbed, cs, &alerts));
  testbed.sim().run(10.0);
  testbed.sim().spawn(publisher(testbed, ps, producer));
  testbed.sim().run(700.0);

  std::cout << "\ntuples published: 120, alerts delivered: " << alerts
            << " (only values above the 0.8 threshold were pushed)\n";
  testbed.sim().shutdown();
  return 0;
}
