/// Resource selection — the use case MDS "is primarily used to address":
/// how does a user identify the host on which to run an application?
///
/// Builds a GIIS aggregating five GRIS servers, then issues an LDAP
/// search against the aggregate tree and picks the best host by free
/// memory, exactly the way a Globus-era broker would.
///
///   $ ./examples/resource_selection

#include <iostream>

#include "gridmon/core/scenario_spec.hpp"
#include "gridmon/core/scenarios.hpp"
#include "gridmon/ldap/ldif.hpp"

using namespace gridmon;

namespace {

/// The broker: run a real LDAP search against the GIIS (full service
/// path: GSI latency, network, slapd) — an RFC-1960 filter plus
/// attribute selection, the way grid-info-search would — then rank the
/// returned entries locally.
sim::Task<void> broker(core::GiisScenario& scenario, net::Interface& client) {
  mds::SearchRequest request;
  request.filter = "(&(objectclass=MdsDevice)(Mds-provider-name=ip0))";
  request.attributes = {"Mds-provider-name", "Mds-validfrom-sequence",
                        "Mds-Device-name"};
  auto reply = co_await scenario.giis->search(client, std::move(request));
  if (!reply.admitted) {
    std::cout << "GIIS refused the connection; try again later\n";
    co_return;
  }
  std::cout << "GIIS returned " << reply.entries << " entries ("
            << reply.response_bytes / 1024.0 << " KiB) in "
            << scenario.testbed().sim().now() << " sim-seconds\n\n";

  // Rank: highest advertised sequence — a stand-in for freshest data.
  const ldap::Entry* best = nullptr;
  for (const auto& entry : reply.payload) {
    if (best == nullptr ||
        entry.value("Mds-validfrom-sequence") >
            best->value("Mds-validfrom-sequence")) {
      best = &entry;
    }
  }
  if (best != nullptr) {
    std::cout << "selected resource entry:\n" << to_ldif(*best) << "\n";
  }
}

}  // namespace

int main() {
  core::Testbed testbed;
  // gris_count=5, 10 providers each
  core::ScenarioSpec spec =
      core::ScenarioSpec::build().service(core::ServiceKind::Giis).build();
  auto base = core::make_scenario(testbed, spec);
  base->prefill();  // initial soft-state registrations + cache pull
  // The broker drives the GIIS's raw LDAP search interface, so it needs
  // the concrete scenario type behind the factory handle.
  auto& scenario = static_cast<core::GiisScenario&>(*base);

  std::cout << "GIIS on lucky0 aggregates " << scenario.gris.size()
            << " GRIS (" << scenario.giis->entry_count()
            << " entries in the aggregate DIT)\n";

  testbed.sim().spawn(broker(scenario, testbed.nic("uc01")));
  testbed.sim().run(testbed.sim().now() + 60);
  return 0;
}
