/// Side-by-side comparison through the Table-1 component mapping: stand
/// up the *same functional role* (information server) in all three
/// systems, drive each with an identical 100-user workload, and print a
/// comparison table — a miniature of the paper's whole methodology.
///
///   $ ./examples/compare_services

#include <iostream>

#include "gridmon/core/adapters.hpp"
#include "gridmon/core/experiment.hpp"
#include "gridmon/core/mapping.hpp"
#include "gridmon/core/scenarios.hpp"
#include "gridmon/metrics/report.hpp"

using namespace gridmon;
using core::MeasureConfig;
using core::SweepPoint;
using core::Testbed;
using core::UserWorkload;

namespace {

struct Result {
  std::string system;
  std::string component;
  SweepPoint point;
};

MeasureConfig quick() {
  MeasureConfig mc;
  mc.warmup = 60;
  mc.duration = 300;
  return mc;
}

}  // namespace

int main() {
  const int kUsers = 100;
  std::vector<Result> results;

  {
    Testbed tb;
    core::GrisScenario scenario(tb, 10, true);
    UserWorkload w(tb, core::query_gris(*scenario.gris));
    w.spawn_users(kUsers, tb.uc_names());
    tb.sampler().start();
    results.push_back(
        {"MDS", "GRIS (cache)", measure(tb, w, "lucky7", kUsers, quick())});
  }
  {
    Testbed tb;
    core::AgentScenario scenario(tb);
    UserWorkload w(tb, core::query_agent(*scenario.agent));
    w.spawn_users(kUsers, tb.uc_names());
    tb.sampler().start();
    results.push_back(
        {"Hawkeye", "Agent", measure(tb, w, "lucky4", kUsers, quick())});
  }
  {
    Testbed tb;
    core::RgmaScenario scenario(tb, 10,
                                core::RgmaScenario::Consumers::SingleAtUc);
    UserWorkload w(tb, scenario.mediated_query());
    w.spawn_users(kUsers, tb.uc_names());
    tb.sampler().start();
    results.push_back({"R-GMA", "ProducerServlet",
                       measure(tb, w, "lucky3", kUsers, quick())});
  }

  std::cout << "The role under test, per the paper's Table 1:\n";
  for (const auto& e : core::component_mapping()) {
    if (e.role == core::Role::InformationServer) {
      std::cout << "  " << e.role_name << " = MDS " << e.mds << " / R-GMA "
                << e.rgma << " / Hawkeye " << e.hawkeye << "\n\n";
    }
  }

  metrics::Table table("Information servers under 100 concurrent users");
  table.set_columns({"system", "component", "throughput (q/s)",
                     "response (s)", "load1", "cpu %"});
  for (const auto& r : results) {
    table.add_row({r.system, r.component,
                   metrics::Table::num(r.point.throughput),
                   metrics::Table::num(r.point.response),
                   metrics::Table::num(r.point.load1, 3),
                   metrics::Table::num(r.point.cpu, 1)});
  }
  table.print_text(std::cout);

  std::cout << "\nNote the paper's headline findings in miniature: the\n"
               "cached LDAP server scales smoothly; the Condor agent is\n"
               "capped by its single-threaded fresh collection; the Java\n"
               "servlet chain saturates earliest.\n";
  return 0;
}
