/// Side-by-side comparison through the Table-1 component mapping: stand
/// up the *same functional role* (information server) in all three
/// systems, drive each with an identical 100-user workload, and print a
/// comparison table — a miniature of the paper's whole methodology.
///
///   $ ./examples/compare_services

#include <iostream>

#include "gridmon/core/experiment.hpp"
#include "gridmon/core/mapping.hpp"
#include "gridmon/core/scenario_spec.hpp"
#include "gridmon/core/scenarios.hpp"
#include "gridmon/metrics/report.hpp"

using namespace gridmon;
using core::MeasureConfig;
using core::ScenarioSpec;
using core::ServiceKind;
using core::SweepPoint;
using core::Testbed;
using core::UserWorkload;

namespace {

struct Result {
  std::string system;
  std::string component;
  SweepPoint point;
};

MeasureConfig quick() {
  MeasureConfig mc;
  mc.warmup = 60;
  mc.duration = 300;
  return mc;
}

}  // namespace

int main() {
  const int kUsers = 100;
  std::vector<Result> results;

  struct Config {
    std::string system;
    std::string component;
    ServiceKind service;
    int collectors;
  };
  for (const Config& config :
       {Config{"MDS", "GRIS (cache)", ServiceKind::Gris, 10},
        Config{"Hawkeye", "Agent", ServiceKind::Agent, 11},
        Config{"R-GMA", "ProducerServlet", ServiceKind::RgmaMediated, 10}}) {
    Testbed tb;
    ScenarioSpec spec = ScenarioSpec::build()
                            .service(config.service)
                            .collectors(config.collectors)
                            .build();
    auto scenario = core::make_scenario(tb, spec);
    scenario->prefill();
    UserWorkload w(tb, scenario->query_fn());
    w.spawn_users(kUsers, tb.uc_names());
    tb.sampler().start();
    results.push_back({config.system, config.component,
                       measure(tb, w, spec.server_host(), kUsers, quick())});
  }

  std::cout << "The role under test, per the paper's Table 1:\n";
  for (const auto& e : core::component_mapping()) {
    if (e.role == core::Role::InformationServer) {
      std::cout << "  " << e.role_name << " = MDS " << e.mds << " / R-GMA "
                << e.rgma << " / Hawkeye " << e.hawkeye << "\n\n";
    }
  }

  metrics::Table table("Information servers under 100 concurrent users");
  table.set_columns({"system", "component", "throughput (q/s)",
                     "response (s)", "load1", "cpu %"});
  for (const auto& r : results) {
    table.add_row({r.system, r.component,
                   metrics::Table::num(r.point.throughput),
                   metrics::Table::num(r.point.response),
                   metrics::Table::num(r.point.load1, 3),
                   metrics::Table::num(r.point.cpu, 1)});
  }
  table.print_text(std::cout);

  std::cout << "\nNote the paper's headline findings in miniature: the\n"
               "cached LDAP server scales smoothly; the Condor agent is\n"
               "capped by its single-threaded fresh collection; the Java\n"
               "servlet chain saturates earliest.\n";
  return 0;
}
