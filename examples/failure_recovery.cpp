/// Soft state under failure — why MDS registers "using a soft-state
/// protocol that allows dynamic cleaning of dead resources" (paper §2.1).
///
/// A GIIS at ANL aggregates a local GRIS and a remote one at UChicago.
/// The WAN partitions: the remote GRIS's re-registrations stop arriving,
/// its registration ages out, and the directory heals itself to serve
/// only reachable data. When the WAN returns, the GRIS re-registers and
/// its data reappears — no operator action anywhere.
///
///   $ ./examples/failure_recovery

#include <iostream>

#include "gridmon/core/scenarios.hpp"
#include "gridmon/core/testbed.hpp"
#include "gridmon/mds/giis.hpp"

using namespace gridmon;

namespace {

sim::Task<void> probe(core::Testbed& tb, mds::Giis& giis,
                      const char* label) {
  auto reply = co_await giis.query(tb.nic("lucky1"), mds::QueryScope::All);
  std::cout << "  t=" << static_cast<int>(tb.sim().now()) << "s  " << label
            << ": " << reply.entries << " device entries from "
            << giis.live_registrant_count() << " live registrants\n";
}

}  // namespace

int main() {
  core::Testbed testbed;
  auto& sim = testbed.sim();

  mds::GiisConfig config;
  config.registration_ttl = 90;  // soft state: 3 missed beats = dead
  config.cachettl = 30;          // re-pull (and sweep) every 30 s
  mds::Giis giis(testbed.network(), testbed.host("lucky0"),
                 testbed.nic("lucky0"), "giis", config);

  mds::Gris local(testbed.network(), testbed.host("lucky3"),
                  testbed.nic("lucky3"), "lucky3.mcs.anl.gov",
                  core::default_providers(5));
  mds::Gris remote(testbed.network(), testbed.host("uc01"),
                   testbed.nic("uc01"), "grid.uchicago.edu",
                   core::default_providers(5));
  giis.add_registrant(local);
  giis.add_registrant(remote);

  std::cout << "two GRIS registered (one local, one across the WAN)\n";
  sim.spawn(probe(testbed, giis, "healthy   "));
  sim.run(60);

  std::cout << "\n*** WAN between ANL and UChicago partitions at t=60 ***\n";
  testbed.network().set_wan_down("anl", "uc", true);
  // Probe after the remote registration TTL (90 s) has lapsed; probing
  // earlier would stall the GIIS refresh on a fetch across the dead WAN.
  sim.schedule(200, [&] { sim.spawn(probe(testbed, giis, "aged out  ")); });
  sim.schedule(320, [&] { sim.spawn(probe(testbed, giis, "still down")); });
  sim.run(400);

  std::cout << "\n*** WAN heals at t=400 ***\n";
  testbed.network().set_wan_down("anl", "uc", false);
  sim.schedule(80, [&] { sim.spawn(probe(testbed, giis, "recovered ")); });
  sim.run(sim.now() + 200);

  std::cout << "\nThe dead registration was cleaned and restored without\n"
               "any explicit failure detection — just registration TTLs.\n";
  sim.shutdown();
  return 0;
}
