/// Quickstart: build the paper's testbed, stand up one MDS GRIS with ten
/// information providers, point fifty simulated users at it, and print
/// the four metrics of the study (throughput, response time, load1, CPU).
///
///   $ ./examples/quickstart

#include <iostream>

#include "gridmon/core/experiment.hpp"
#include "gridmon/core/scenario_spec.hpp"
#include "gridmon/core/scenarios.hpp"

using namespace gridmon;

int main() {
  // The Lucky testbed (7 dual-CPU nodes at ANL) plus 20 client machines
  // at UChicago, joined by a WAN — all simulated, fully deterministic.
  core::Testbed testbed;

  // A GRIS on lucky7 with the default 10 information providers, caching
  // enabled (the paper's fast configuration). Every deployment the study
  // measures is described by a ScenarioSpec, assembled and validated by
  // its builder, and built by make_scenario.
  core::ScenarioSpec spec =
      core::ScenarioSpec::build().service(core::ServiceKind::Gris).build();
  auto scenario = core::make_scenario(testbed, spec);
  scenario->prefill();

  // Fifty users at UChicago, each looping: query, wait 1 s, repeat. The
  // factory already bound the canonical query for the service.
  core::UserWorkload users(testbed, scenario->query_fn());
  users.spawn_users(50, testbed.uc_names());

  // Ganglia-style sampling at 5 s, then a 10-minute measured window
  // after a 2-minute warm-up.
  testbed.sampler().start();
  core::SweepPoint p = core::measure(testbed, users, spec.server_host(), 50);

  std::cout << "MDS GRIS (cache), 50 concurrent users, 10-minute average:\n"
            << "  throughput     " << p.throughput << " queries/sec\n"
            << "  response time  " << p.response << " sec\n"
            << "  load1          " << p.load1 << "\n"
            << "  cpu load       " << p.cpu << " %\n"
            << "  queries done   " << users.completions().size() << "\n";

  // The simulation is deterministic: run it twice and the numbers match.
  return 0;
}
