/// Unit tests for the trace subsystem: span collection, zero-cost
/// disabled path, breakdown math, Chrome export / reader round trip and
/// timeline integration.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "gridmon/sim/simulation.hpp"
#include "gridmon/sim/task.hpp"
#include "gridmon/trace/breakdown.hpp"
#include "gridmon/trace/chrome_export.hpp"
#include "gridmon/trace/collector.hpp"
#include "gridmon/trace/reader.hpp"
#include "gridmon/trace/timeline.hpp"

namespace gridmon::trace {
namespace {

sim::Task<void> traced_query(sim::Simulation& sim, Collector& col) {
  Ctx root = col.new_trace();
  Span query(root, SpanKind::Query);
  co_await sim.delay(1.0);
  {
    Span cpu(query.ctx(), SpanKind::Cpu, "work", 2.5);
    co_await sim.delay(2.0);
  }
  co_await sim.delay(1.0);
  query.set_arg(4096);
}

TEST(TraceCollectorTest, SpanNestingAndTiming) {
  sim::Simulation sim;
  Collector col(sim, 7);
  col.set_enabled(true);
  sim.spawn(traced_query(sim, col));
  sim.run();

  const auto& spans = col.spans();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& query = spans[0];
  const SpanRecord& cpu = spans[1];
  EXPECT_EQ(query.kind, SpanKind::Query);
  EXPECT_EQ(query.parent, 0u);
  EXPECT_NE(query.trace_id, 0u);
  EXPECT_DOUBLE_EQ(query.start, 0.0);
  EXPECT_DOUBLE_EQ(query.end, 4.0);
  EXPECT_DOUBLE_EQ(query.arg, 4096);

  EXPECT_EQ(cpu.kind, SpanKind::Cpu);
  EXPECT_EQ(cpu.parent, query.seq);
  EXPECT_EQ(cpu.trace_id, query.trace_id);
  EXPECT_DOUBLE_EQ(cpu.start, 1.0);
  EXPECT_DOUBLE_EQ(cpu.end, 3.0);
  EXPECT_DOUBLE_EQ(cpu.arg, 2.5);
  EXPECT_EQ(col.name(cpu.name_id), "work");
}

TEST(TraceCollectorTest, DisabledCollectorRecordsNothing) {
  sim::Simulation sim;
  Collector col(sim, 7);  // never enabled
  sim.spawn(traced_query(sim, col));
  sim.run();
  EXPECT_TRUE(col.spans().empty());
  EXPECT_TRUE(col.counters().empty());
}

TEST(TraceCollectorTest, NullCtxSpansAreNoops) {
  Ctx null;
  EXPECT_FALSE(null);
  Span s(null, SpanKind::Cpu, "x", 1.0);
  s.set_arg(2.0);
  s.end();  // must not crash
  EXPECT_FALSE(s.ctx());
}

TEST(TraceCollectorTest, TakeDetachesDataAndDisables) {
  sim::Simulation sim;
  Collector col(sim, 7);
  col.set_enabled(true);
  sim.spawn(traced_query(sim, col));
  sim.run();
  TraceData data = col.take();
  EXPECT_EQ(data.spans.size(), 2u);
  EXPECT_TRUE(col.spans().empty());
  EXPECT_FALSE(col.enabled());
}

TEST(TraceCollectorTest, DifferentSaltsGiveDifferentTraceIds) {
  sim::Simulation sim;
  Collector a(sim, 1);
  Collector b(sim, 2);
  a.set_enabled(true);
  b.set_enabled(true);
  EXPECT_NE(a.new_trace().trace_id, b.new_trace().trace_id);
}

TEST(TraceSpanTest, KindNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(SpanKind::NetTransfer); ++i) {
    auto kind = static_cast<SpanKind>(i);
    SpanKind parsed;
    ASSERT_TRUE(kind_from_name(kind_name(kind), parsed)) << kind_name(kind);
    EXPECT_EQ(parsed, kind);
  }
  SpanKind unused;
  EXPECT_FALSE(kind_from_name("no_such_kind", unused));
}

TEST(TraceBreakdownTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 0.99), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile({4, 2, 1, 3}, 0.5), 2.5);  // unsorted input
}

TEST(TraceBreakdownTest, SelfTimeExcludesChildUnion) {
  SeriesTrace st;
  st.series = "unit";
  st.data.names = {""};
  // Query [0,10] with two overlapping Cpu children [2,5] and [4,7]:
  // child union is [2,7] so the query's self time is 10 - 5 = 5.
  st.data.spans.push_back({1, 1, 0, SpanKind::Query, 0, 0.0, 10.0, 0});
  st.data.spans.push_back({1, 2, 1, SpanKind::Cpu, 0, 2.0, 5.0, 0});
  st.data.spans.push_back({1, 3, 1, SpanKind::Cpu, 0, 4.0, 7.0, 0});
  // A Think span at top level must not count as a trace root.
  st.data.spans.push_back({1, 4, 0, SpanKind::Think, 0, 10.0, 11.0, 0});

  SeriesBreakdown bd = compute_breakdown(st);
  EXPECT_EQ(bd.traces, 1u);
  EXPECT_DOUBLE_EQ(bd.root_total, 10.0);
  ASSERT_EQ(bd.kinds.size(), 3u);

  const KindStats* query = nullptr;
  const KindStats* cpu = nullptr;
  for (const auto& ks : bd.kinds) {
    if (ks.kind == SpanKind::Query) query = &ks;
    if (ks.kind == SpanKind::Cpu) cpu = &ks;
  }
  ASSERT_NE(query, nullptr);
  ASSERT_NE(cpu, nullptr);
  EXPECT_DOUBLE_EQ(query->incl_total, 10.0);
  EXPECT_DOUBLE_EQ(query->self_total, 5.0);
  EXPECT_DOUBLE_EQ(query->share, 0.5);
  EXPECT_EQ(cpu->count, 2u);
  EXPECT_DOUBLE_EQ(cpu->incl_total, 6.0);  // 3 s each, overlap not deduped
  EXPECT_DOUBLE_EQ(cpu->self_total, 6.0);
  EXPECT_DOUBLE_EQ(cpu->incl_p50, 3.0);
}

sim::Task<void> probe_ticks(sim::Simulation& sim, CounterTrack& track) {
  track.on_usage(sim.now(), 1, 0);
  co_await sim.delay(5.0);
  track.on_usage(sim.now(), 2, 1);
  co_await sim.delay(5.0);
  track.on_usage(sim.now(), 0, 0);
}

TEST(TraceExportTest, ChromeRoundTripPreservesRecords) {
  sim::Simulation sim;
  Collector col(sim, 7);
  col.set_enabled(true);
  sim.spawn(traced_query(sim, col));
  sim.spawn(probe_ticks(sim, col.track("lucky7.cpu")));
  sim.run();

  std::vector<SeriesTrace> series;
  series.push_back(SeriesTrace{"MDS GRIS (cache)", col.take()});

  std::ostringstream os;
  write_chrome_trace(os, series);
  std::istringstream is(os.str());
  std::vector<SeriesTrace> back = read_chrome_trace(is);

  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].series, "MDS GRIS (cache)");
  const TraceData& orig = series[0].data;
  const TraceData& got = back[0].data;
  ASSERT_EQ(got.spans.size(), orig.spans.size());
  for (std::size_t i = 0; i < orig.spans.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(got.spans[i].trace_id, orig.spans[i].trace_id);
    EXPECT_EQ(got.spans[i].seq, orig.spans[i].seq);
    EXPECT_EQ(got.spans[i].parent, orig.spans[i].parent);
    EXPECT_EQ(got.spans[i].kind, orig.spans[i].kind);
    EXPECT_NEAR(got.spans[i].start, orig.spans[i].start, 1e-8);
    EXPECT_NEAR(got.spans[i].end, orig.spans[i].end, 1e-8);
    EXPECT_NEAR(got.spans[i].arg, orig.spans[i].arg, 1e-9);
    EXPECT_EQ(got.name(got.spans[i].name_id),
              orig.name(orig.spans[i].name_id));
  }
  // The initial flush at set_enabled plus the three probe ticks.
  ASSERT_EQ(got.counters.size(), orig.counters.size());
  for (std::size_t i = 0; i < orig.counters.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(got.name(got.counters[i].track),
              orig.name(orig.counters[i].track));
    EXPECT_NEAR(got.counters[i].t, orig.counters[i].t, 1e-8);
    EXPECT_DOUBLE_EQ(got.counters[i].active, orig.counters[i].active);
    EXPECT_DOUBLE_EQ(got.counters[i].backlog, orig.counters[i].backlog);
  }
}

TEST(TraceReaderTest, RejectsMalformedJson) {
  std::istringstream is("{\"traceEvents\": [ {\"ph\": ");
  EXPECT_THROW(read_chrome_trace(is), ReadError);
}

TEST(TraceTimelineTest, IntegrateActiveStepFunction) {
  TraceData data;
  data.names = {"", "cpu"};
  // Step function: 1 on [0,5), 3 on [5,10), 0 after.
  data.counters.push_back({1, 0.0, 1, 0});
  data.counters.push_back({1, 5.0, 3, 0});
  data.counters.push_back({1, 10.0, 0, 0});
  // Uncapped: 5*1 + 5*3 = 20 value-seconds over [0,10].
  EXPECT_DOUBLE_EQ(integrate_active(data, "cpu", 0, 10), 20.0);
  // Capped at 2 cores: 5*1 + 5*2 = 15.
  EXPECT_DOUBLE_EQ(integrate_active(data, "cpu", 0, 10, 2), 15.0);
  // Sub-window [4,6]: 1*1 + 1*3 = 4.
  EXPECT_DOUBLE_EQ(integrate_active(data, "cpu", 4, 6), 4.0);
  // Unknown track integrates to zero.
  EXPECT_DOUBLE_EQ(integrate_active(data, "nic", 0, 10), 0.0);
}

}  // namespace
}  // namespace gridmon::trace
