/// Determinism of trace files: the exporter controls every byte, the
/// collector allocates seqs in event order and derives trace ids from the
/// seed — so re-running a scenario with the same seed must reproduce the
/// trace file exactly, and a different seed must yield different ids.
/// This doubles as a whole-simulator determinism regression: any
/// event-ordering drift shows up as a byte diff here.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "gridmon/core/experiment.hpp"
#include "gridmon/core/scenario_spec.hpp"
#include "gridmon/core/scenarios.hpp"
#include "gridmon/trace/chrome_export.hpp"

namespace gridmon {
namespace {

/// A small Experiment-1 style run: GRIS (nocache) on lucky7, a handful of
/// UC users, short warmup+measure window, full instrumentation.
trace::TraceData run_gris_trace(std::uint64_t seed) {
  core::TestbedConfig tc;
  tc.seed = seed;
  core::Testbed tb(tc);
  core::ScenarioSpec spec;
  spec.service = core::ServiceKind::GrisNocache;
  auto scenario = core::make_scenario(tb, spec);
  trace::Collector collector(tb.sim(), tb.config().seed);
  core::UserWorkload workload(tb, scenario->query_fn());
  scenario->instrument(collector);
  core::instrument_host(tb, collector, "lucky7");
  workload.enable_tracing(collector);
  workload.spawn_users(5, tb.uc_names());
  tb.sampler().start();
  core::MeasureConfig mc;
  mc.warmup = 10;
  mc.duration = 60;
  mc.collector = &collector;
  core::measure(tb, workload, "lucky7", 5, mc);
  return collector.take();
}

std::string to_json(trace::TraceData data) {
  std::vector<trace::SeriesTrace> series;
  series.push_back(trace::SeriesTrace{"exp1", std::move(data)});
  std::ostringstream os;
  trace::write_chrome_trace(os, series);
  return os.str();
}

TEST(TraceDeterminismTest, SameSeedSameBytes) {
  trace::TraceData a = run_gris_trace(42);
  trace::TraceData b = run_gris_trace(42);
  ASSERT_FALSE(a.spans.empty());
  EXPECT_EQ(a.spans.size(), b.spans.size());
  EXPECT_EQ(a.counters.size(), b.counters.size());
  EXPECT_EQ(to_json(std::move(a)), to_json(std::move(b)));
}

TEST(TraceDeterminismTest, DifferentSeedDifferentTraceIds) {
  trace::TraceData a = run_gris_trace(42);
  trace::TraceData b = run_gris_trace(43);
  ASSERT_FALSE(a.spans.empty());
  ASSERT_FALSE(b.spans.empty());
  // Trace ids derive from the seed (splitmix64 of salt + query index), so
  // the id streams start at different points.
  EXPECT_NE(a.spans.front().trace_id, b.spans.front().trace_id);
  EXPECT_NE(to_json(std::move(a)), to_json(std::move(b)));
}

}  // namespace
}  // namespace gridmon
