#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "gridmon/metrics/load_average.hpp"
#include "gridmon/metrics/report.hpp"
#include "gridmon/metrics/sampler.hpp"
#include "gridmon/metrics/time_series.hpp"
#include "gridmon/sim/simulation.hpp"

namespace gridmon::metrics {
namespace {

TEST(TimeSeriesTest, RecordAndWindowMean) {
  TimeSeries ts("x");
  for (int i = 0; i <= 10; ++i) ts.record(i, 2.0 * i);
  EXPECT_DOUBLE_EQ(ts.mean_over(0, 10), 10.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(5, 10), 15.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(100, 200), 0.0);
  EXPECT_DOUBLE_EQ(ts.max_over(0, 10), 20.0);
  EXPECT_DOUBLE_EQ(ts.last(), 20.0);
}

TEST(TimeSeriesTest, EmptySeriesDefaults) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
  EXPECT_DOUBLE_EQ(ts.last(), 0.0);
}

TEST(LoadAverageTest, ConvergesToConstantInput) {
  LoadAverage la;
  for (int i = 0; i < 600; ++i) la.sample(5.0, 3.0);
  EXPECT_NEAR(la.value(), 3.0, 1e-6);
}

TEST(LoadAverageTest, DecaysTowardZero) {
  LoadAverage la;
  la.sample(5.0, 12.0);
  double peak = la.value();
  for (int i = 0; i < 24; ++i) la.sample(5.0, 0.0);  // 2 minutes idle
  EXPECT_LT(la.value(), peak * 0.2);
}

TEST(LoadAverageTest, OneMinuteTimeConstant) {
  LoadAverage la;
  la.sample(60.0, 1.0);
  // After one time constant of constant load 1, value = 1 - 1/e.
  EXPECT_NEAR(la.value(), 1.0 - std::exp(-1.0), 1e-9);
}

TEST(SamplerTest, PollsGaugesAtInterval) {
  sim::Simulation sim;
  Sampler sampler(sim, 5.0);
  double value = 0;
  sampler.add_gauge("g", [&] { return value; });
  sampler.start();
  sim.schedule(7.0, [&] { value = 10.0; });
  sim.run(20.0);
  const auto& ts = sampler.series("g");
  // Samples at t = 5, 10, 15, 20.
  ASSERT_EQ(ts.size(), 4u);
  EXPECT_DOUBLE_EQ(ts.points()[0].value, 0.0);
  EXPECT_DOUBLE_EQ(ts.points()[1].value, 10.0);
  EXPECT_DOUBLE_EQ(ts.points()[0].t, 5.0);
}

TEST(SamplerTest, UnknownSeriesIsEmpty) {
  sim::Simulation sim;
  Sampler sampler(sim);
  EXPECT_TRUE(sampler.series("nope").empty());
  EXPECT_FALSE(sampler.has_series("nope"));
}

TEST(TableTest, TextLayoutAligned) {
  Table t("Figure 5");
  t.set_columns({"users", "throughput"});
  t.add_row({"10", "99.5"});
  t.add_row({"600", "3.2"});
  std::ostringstream os;
  t.print_text(os);
  std::string out = os.str();
  EXPECT_NE(out.find("Figure 5"), std::string::npos);
  EXPECT_NE(out.find("users"), std::string::npos);
  EXPECT_NE(out.find("99.5"), std::string::npos);
}

TEST(TableTest, CsvRoundTrip) {
  Table t("fig");
  t.set_columns({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "# fig\na,b\n1,2\n");
}

TEST(TableTest, NumFormatsNegativeAsDash) {
  EXPECT_EQ(Table::num(-1), "-");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace gridmon::metrics
