/// Unit tests for the flow-sensitive foundation: CFG construction
/// (cfg.hpp) and the worklist dataflow instances (dataflow.hpp). The
/// fixture tests exercise these through whole checks; here the graph and
/// the lattices are probed directly, so a regression pinpoints the layer
/// that broke rather than the check that happened to notice.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "cfg.hpp"
#include "dataflow.hpp"
#include "lexer.hpp"
#include "model.hpp"

using gridmon::lint::Cfg;
using gridmon::lint::Model;
using gridmon::lint::build_cfg;

namespace {

/// Lexed + modeled source, with lookup helpers keyed on token text.
struct Parsed {
  gridmon::lint::LexResult lexed;
  Model m;

  explicit Parsed(const std::string& src)
      : lexed(gridmon::lint::lex(src)),
        m(gridmon::lint::build_model(lexed, nullptr)) {}

  const gridmon::lint::Func& func(const std::string& name) const {
    for (const auto& f : m.funcs) {
      if (f.name == name) return f;
    }
    throw std::runtime_error("no function " + name);
  }

  Cfg cfg_of(const std::string& name) const {
    const auto& f = func(name);
    return build_cfg(m, f.body_begin, f.body_end);
  }

  /// Token index of the nth occurrence of `text` (n is 0-based).
  int tok(const std::string& text, int nth = 0) const {
    for (int i = 0; i < static_cast<int>(m.toks.size()); ++i) {
      if (m.toks[i].text == text && nth-- == 0) return i;
    }
    return -1;
  }
};

int count_suspend_nodes(const Cfg& cfg) {
  int n = 0;
  for (const auto& nd : cfg.nodes) n += nd.is_suspend ? 1 : 0;
  return n;
}

// --- CFG shape ------------------------------------------------------------

TEST(CfgBuild, StraightLineIsSingleBlock) {
  Parsed p(R"cpp(
    int f(int a) {
      int b = a + 1;
      int c = b * 2;
      return c;
    }
  )cpp");
  Cfg cfg = p.cfg_of("f");
  EXPECT_FALSE(cfg.has_suspension);
  EXPECT_EQ(count_suspend_nodes(cfg), 0);
  // All three statements land in one node.
  int nb = cfg.node_of(p.tok("b"));
  EXPECT_EQ(nb, cfg.node_of(p.tok("c")));
  EXPECT_GE(nb, 0);
}

TEST(CfgBuild, SplitsAtEverySuspension) {
  Parsed p(R"cpp(
    Task<void> f(Backend& be) {
      int a = 1;
      co_await be.query(a);
      int b = 2;
      co_await be.query(b);
      int c = a + b;
      (void)c;
    }
  )cpp");
  Cfg cfg = p.cfg_of("f");
  EXPECT_TRUE(cfg.has_suspension);
  EXPECT_EQ(count_suspend_nodes(cfg), 2);
  // The suspension happens at the END of its node: the awaiting
  // statement shares a node with the co_await keyword, and the next
  // statement starts a new node.
  int s1 = cfg.node_of(p.tok("co_await", 0));
  ASSERT_GE(s1, 0);
  EXPECT_TRUE(cfg.nodes[s1].is_suspend);
  EXPECT_EQ(cfg.nodes[s1].suspend_tok, p.tok("co_await", 0));
  EXPECT_NE(s1, cfg.node_of(p.tok("b")));
  EXPECT_NE(cfg.node_of(p.tok("b")), cfg.node_of(p.tok("co_await", 1)));
}

TEST(CfgBuild, LoopHasBackEdge) {
  Parsed p(R"cpp(
    int f(int n) {
      int total = 0;
      while (n > 0) {
        total += n;
        n -= 1;
      }
      return total;
    }
  )cpp");
  Cfg cfg = p.cfg_of("f");
  // Some node must have a successor with a lower id: the back-edge to
  // the loop head.
  bool back_edge = false;
  for (int i = 0; i < static_cast<int>(cfg.nodes.size()); ++i) {
    for (int s : cfg.nodes[i].succ) {
      if (s < i && s != cfg.exit) back_edge = true;
    }
  }
  EXPECT_TRUE(back_edge);
  // pred mirrors succ.
  for (int i = 0; i < static_cast<int>(cfg.nodes.size()); ++i) {
    for (int s : cfg.nodes[i].succ) {
      const auto& preds = cfg.nodes[s].pred;
      EXPECT_NE(std::find(preds.begin(), preds.end(), i), preds.end())
          << "edge " << i << "->" << s << " missing from pred";
    }
  }
}

TEST(CfgBuild, BranchForksAndRejoins) {
  Parsed p(R"cpp(
    int f(bool flip) {
      int r = 0;
      if (flip) {
        r = 1;
      } else {
        r = 2;
      }
      return r;
    }
  )cpp");
  Cfg cfg = p.cfg_of("f");
  int head = cfg.node_of(p.tok("flip", 1));  // the condition use
  ASSERT_GE(head, 0);
  EXPECT_GE(cfg.nodes[head].succ.size(), 2u) << "condition node must fork";
  int ret = cfg.node_of(p.tok("return"));
  ASSERT_GE(ret, 0);
  // Both arms reach the return node (directly or through a join node).
  EXPECT_GE(cfg.nodes[ret].pred.size(), 1u);
}

TEST(CfgBuild, NestedLambdaTokensBelongToNoNode) {
  Parsed p(R"cpp(
    Task<void> f(Sim& sim) {
      auto inner = [&] { co_await sim.tick(); };
      (void)inner;
      co_await sim.tick();
    }
  )cpp");
  Cfg cfg = p.cfg_of("f");
  // The lambda's co_await does not suspend f: only one suspend node, and
  // the node holding the lambda statement is not marked as suspending.
  EXPECT_EQ(count_suspend_nodes(cfg), 1);
  int lam_node = cfg.node_of(p.tok("co_await", 0));
  ASSERT_GE(lam_node, 0);
  EXPECT_FALSE(cfg.nodes[lam_node].is_suspend)
      << "a lambda's suspension must not suspend the enclosing function";
  EXPECT_TRUE(cfg.nodes[cfg.node_of(p.tok("co_await", 1))].is_suspend);
}

// --- Dataflow instances ---------------------------------------------------

TEST(Dataflow, ReachingDefsJoinUnionsBranchDefs) {
  Parsed p(R"cpp(
    int f(bool flip) {
      int r = 0;
      if (flip) {
        r = 1;
      }
      return r;
    }
  )cpp");
  Cfg cfg = p.cfg_of("f");
  auto reach = gridmon::lint::reaching_defs(p.m, cfg);
  int ret = cfg.node_of(p.tok("return"));
  ASSERT_GE(ret, 0);
  // Both the initial def and the branch redef reach the return.
  EXPECT_EQ(reach[ret].at("r").size(), 2u);
}

TEST(Dataflow, ReachingDefsStraightLineIsStrongUpdate) {
  Parsed p(R"cpp(
    int f() {
      int r = 0;
      r = 1;
      r = 2;
      return r;
    }
  )cpp");
  Cfg cfg = p.cfg_of("f");
  auto reach = gridmon::lint::reaching_defs(p.m, cfg);
  // Straight line: a later def kills the earlier ones; only sets of
  // size one can appear at any entry.
  for (const auto& st : reach) {
    auto it = st.find("r");
    if (it != st.end()) EXPECT_LE(it->second.size(), 1u);
  }
}

TEST(Dataflow, LiveVarsExposeUpwardUse) {
  Parsed p(R"cpp(
    int f(int a) {
      int dead = a;
      int live = a + 1;
      a = 0;
      return live;
    }
  )cpp");
  Cfg cfg = p.cfg_of("f");
  auto live = gridmon::lint::live_vars(p.m, cfg);
  // At entry, `a` is live (used before any redefinition); `live` and
  // `dead` are not (defined before use / never used).
  const auto& at_entry = live[cfg.entry];
  EXPECT_TRUE(at_entry.count("a"));
  EXPECT_FALSE(at_entry.count("dead"));
  EXPECT_FALSE(at_entry.count("live"));
}

TEST(Dataflow, TaintJoinOrsBitsAcrossPaths) {
  // Drive solve_forward directly with a hand-rolled transfer: one branch
  // arm taints x with Env, the other with Clock; the join must OR them.
  Parsed p(R"cpp(
    int f(bool flip) {
      int x = 0;
      if (flip) {
        x = 1;
      } else {
        x = 2;
      }
      return x;
    }
  )cpp");
  Cfg cfg = p.cfg_of("f");
  int arm1 = cfg.node_of(p.tok("1"));
  int arm2 = cfg.node_of(p.tok("2"));
  ASSERT_GE(arm1, 0);
  ASSERT_GE(arm2, 0);
  ASSERT_NE(arm1, arm2);
  auto states = gridmon::lint::solve_forward(
      cfg, [&](int node, gridmon::lint::VarBits& st) {
        if (node == arm1) st["x"] |= gridmon::lint::kTaintEnv;
        if (node == arm2) st["x"] |= gridmon::lint::kTaintClock;
      });
  int ret = cfg.node_of(p.tok("return"));
  ASSERT_GE(ret, 0);
  EXPECT_EQ(states[ret].at("x"),
            gridmon::lint::kTaintEnv | gridmon::lint::kTaintClock);
}

TEST(Dataflow, TaintLabelNamesBits) {
  EXPECT_EQ(gridmon::lint::taint_label(gridmon::lint::kTaintEnv),
            "environment");
  std::string joined = gridmon::lint::taint_label(
      gridmon::lint::kTaintEnv | gridmon::lint::kTaintClock);
  EXPECT_NE(joined.find("environment"), std::string::npos);
  EXPECT_NE(joined.find("+"), std::string::npos);
}

TEST(Dataflow, VarEventsClassifyDefsAndUses) {
  Parsed p(R"cpp(
    int f(int a) {
      int b = a;
      b += 1;
      return b;
    }
  )cpp");
  const auto& fn = p.func("f");
  auto evs = gridmon::lint::var_events(p.m, fn.body_begin, fn.body_end);
  auto kind_of = [&](const std::string& name, int nth) {
    for (const auto& ev : evs) {
      if (ev.name == name && nth-- == 0) return ev.kind;
    }
    throw std::runtime_error("event not found: " + name);
  };
  EXPECT_EQ(kind_of("b", 0), gridmon::lint::VarEventKind::Def);
  EXPECT_EQ(kind_of("a", 0), gridmon::lint::VarEventKind::Use);
  EXPECT_EQ(kind_of("b", 1), gridmon::lint::VarEventKind::DefUse);
  EXPECT_EQ(kind_of("b", 2), gridmon::lint::VarEventKind::Use);
}

// --- Drain reachability ---------------------------------------------------

TEST(DrainReach, AllPathsDrainWhenRunIsUnconditional) {
  Parsed p(R"cpp(
    void f(Sim& sim) {
      int hits = 0;
      sim.spawn(probe(sim, hits));
      sim.run();
    }
  )cpp");
  Cfg cfg = p.cfg_of("f");
  EXPECT_TRUE(
      gridmon::lint::all_paths_reach_drain(p.m, cfg, p.tok("spawn")));
}

TEST(DrainReach, BranchSkippingRunIsNotDrained) {
  Parsed p(R"cpp(
    void f(Sim& sim, bool fast) {
      int hits = 0;
      sim.spawn(probe(sim, hits));
      if (fast) {
        return;
      }
      sim.run();
    }
  )cpp");
  Cfg cfg = p.cfg_of("f");
  EXPECT_FALSE(
      gridmon::lint::all_paths_reach_drain(p.m, cfg, p.tok("spawn")));
}

TEST(DrainReach, RunInsideNestedLambdaDoesNotCount) {
  Parsed p(R"cpp(
    void f(Sim& sim) {
      int hits = 0;
      sim.spawn(probe(sim, hits));
      auto later = [&] { sim.run(); };
      (void)later;
    }
  )cpp");
  Cfg cfg = p.cfg_of("f");
  EXPECT_FALSE(
      gridmon::lint::all_paths_reach_drain(p.m, cfg, p.tok("spawn")));
}

}  // namespace
