// Negative fixture: spec construction through the builder, reads and
// comparisons of spec fields, and mutations of unrelated types that
// happen to have a member named like a spec field. Must be clean.
#include <string>
#include <vector>

namespace core {
struct ScenarioSpec {
  int collectors = 10;
  std::vector<int> users{10};
};
class SpecBuilder {
 public:
  SpecBuilder& collectors(int v);
  SpecBuilder& users(std::vector<int> v);
  ScenarioSpec build();
};
}  // namespace core

using core::ScenarioSpec;
using core::SpecBuilder;

// The supported path: fluent setters, one validating build().
ScenarioSpec via_builder() {
  return SpecBuilder{}.collectors(40).users({10, 100}).build();
}

// Reads and comparisons are not mutations.
int read_only(const ScenarioSpec& spec) {
  if (spec.collectors == 10) return spec.users.front();
  return spec.collectors;
}

// A different type with spec-looking members is not a ScenarioSpec.
struct ProviderSpec {
  std::string name;
  int entries = 0;
};
ProviderSpec provider(int i) {
  ProviderSpec spec;
  spec.name = "ip" + std::to_string(i);
  spec.entries = 4;
  return spec;
}
