// Positive fixture: every banned wall-clock / ambient-PRNG spelling the
// determinism family must catch. Lines are pinned by the .expected file.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double wall_seconds() {
  auto t = std::chrono::system_clock::now();            // line 9
  auto u = std::chrono::steady_clock::now();            // line 10
  auto v = std::chrono::high_resolution_clock::now();   // line 11
  (void)t;
  (void)u;
  (void)v;
  return 0.0;
}

int ambient_randomness() {
  std::random_device rd;         // line 19
  std::srand(42);                // line 20
  int a = std::rand();           // line 21
  int b = rand();                // line 22
  srand(7);                      // line 23
  double c = drand48();          // line 24
  return a + b + static_cast<int>(c) + static_cast<int>(rd());
}

long wall_clock_calls() {
  long t = time(nullptr);        // line 29
  t += std::time(nullptr);       // line 30
  struct timeval tv;
  gettimeofday(&tv, nullptr);    // line 32
  return t;
}
