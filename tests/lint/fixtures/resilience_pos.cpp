// Positive fixture: retry loops that back off and re-send without ever
// consulting a retry budget or circuit breaker. Lines pinned by the
// .expected file.
#include <cstddef>

namespace sim {
struct Simulation {
  struct Awaiter {};
  Awaiter delay(double seconds);
};
}  // namespace sim

struct Reply {
  bool admitted = false;
};

Reply send_once();

// line 21: unbounded while-loop retry with backoff
void query_until_admitted(sim::Simulation& sim) {
  while (true) {
    Reply r = send_once();
    if (r.admitted) break;
    double backoff = 2.0;
    (void)sim.delay(backoff);  // co_await in real code
  }
}

// line 31: counted for-loop retry, still no budget
void query_n_times(sim::Simulation& sim, int max_retries) {
  for (int retry = 0; retry < max_retries; ++retry) {
    Reply r = send_once();
    if (r.admitted) return;
    (void)sim.delay(1.0);
  }
}
