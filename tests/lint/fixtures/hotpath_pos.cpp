// gridmon-lint: hot-path — fixture file opted into per-event cost checks.
// Positive fixture: allocation/copy patterns that are fine in cold code but
// not in per-event code. Lines pinned by the .expected file.
#include <functional>
#include <string>
#include <vector>

struct Entry {
  double time;
  std::string payload;
};

struct Queue {
  std::function<void()> callback_;         // line 14: type-erased, allocates
  std::vector<Entry> entries_;
  std::vector<std::string> names_;

  void push(Entry e) { entries_.push_back(e); }  // line 18: copy per call

  double drain() {
    double total = 0.0;
    for (auto e : entries_) {              // line 22: copies Entry per step
      total += e.time;
    }
    for (auto name : names_) {             // line 25: copies string per step
      total += static_cast<double>(name.size());
    }
    return total;
  }
};
