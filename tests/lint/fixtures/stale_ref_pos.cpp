// Positive fixture for coroutine.stale-ref-across-suspend: borrows into
// shared containers (iterators, references, pointers) that stay live
// across a co_await. While the frame is suspended any other frame may
// mutate the container, invalidating the borrow.

#include <map>
#include <vector>

struct Backend {
  Task<int> query(int);
};

struct Servlet {
  std::map<int, int> sessions_;
  std::vector<int> rows_;
  Backend be_;

  // The awaited expression itself evaluates before suspension (clean),
  // but the post-await increment re-uses the pre-await iterator.
  Task<void> handle(int id) {
    auto it = sessions_.find(id);
    co_await be_.query(it->second);
    it->second += 1;
  }

  // A reference borrow is just as stale as an iterator.
  Task<void> by_ref(int id) {
    int& slot = sessions_[id];
    co_await be_.query(0);
    slot = 7;
  }

  // Loop shape: the iterator is advanced after a suspension, so the
  // back-edge carries the stale borrow into iteration two.
  Task<void> sweep() {
    auto it = sessions_.begin();
    while (it != sessions_.end()) {
      co_await be_.query(1);
      ++it;
    }
  }
};
