// Positive fixture: coroutine lifetime hazards. A lambda's captures live in
// the closure object, not the coroutine frame; references into spawned
// coroutines must outlive the coroutine. Lines pinned by the .expected file.
#include <string>

namespace sim {
template <typename T>
struct Task {};
struct Simulation {
  void spawn(Task<void> t);
};
}  // namespace sim

struct Widget {
  sim::Task<int> tick();
};

Widget make_widget() { return Widget{}; }

sim::Task<void> user_loop(Widget& w) {
  co_await w.tick();
}

void hazards(sim::Simulation& sim) {
  Widget local;
  int count = 0;
  sim.spawn(user_loop(local));          // line 27: local dies before coroutine
  sim.spawn(user_loop(make_widget()));  // line 28: temporary dies at the `;`
  auto lam = [&count]() -> sim::Task<int> {  // line 29: by-ref capture
    co_return count;
  };
  (void)lam;
}

struct Driver {
  sim::Simulation* sim_;
  int calls_ = 0;
  void go() {
    auto lam = [this]() -> sim::Task<int> {  // line 39: `this` may dangle
      co_return calls_;
    };
    (void)lam;
  }
};
