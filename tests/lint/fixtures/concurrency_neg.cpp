// Negative fixture: the sanctioned counterpart of every concurrency.*
// positive — scoped locks released before suspension, predicated waits,
// joined threads, and worker writes that are guarded or atomic.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

struct Gate {
  bool ready() const;
};
Gate gate;

struct Pool {
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  std::atomic<int> done_count_{0};
  int total_ = 0;
  bool ready_ = false;

  // The guard's scope ends before the suspension point.
  Task<void> drain() {
    {
      std::lock_guard<std::mutex> guard(mu_);
      total_ = 0;
    }
    co_await gate;
  }

  // Predicated waits re-check the condition: no lost or spurious wakeups.
  void block() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return ready_; });
    cv_.wait_for(lk, 100, [&] { return ready_; });
  }

  // Worker writes are either lock-guarded or atomic.
  void start() {
    workers_.emplace_back([this] {
      ++done_count_;  // atomic
      std::lock_guard<std::mutex> guard(mu_);
      total_ += 1;  // guarded
    });
  }

  // Joined at shutdown: the supported ShardGroup shape.
  void stop() {
    for (auto& w : workers_) w.join();
  }

  // Flow-refined negative: a named unique_lock explicitly released
  // before the suspension point is not held across it, even though the
  // lock's scope textually spans the co_await.
  Task<void> drain_unlocked() {
    std::unique_lock<std::mutex> lk(mu_);
    total_ = 0;
    lk.unlock();
    co_await gate;
  }

  // Relock dance: the mutex is held before and after the await, but the
  // dataflow shows it is never held across the suspension itself.
  Task<void> relock() {
    std::unique_lock<std::mutex> lk(mu_);
    total_ = 1;
    lk.unlock();
    co_await gate;
    lk.lock();
    total_ = 2;
  }
};
