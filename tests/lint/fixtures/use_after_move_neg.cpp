// Negative fixture for coroutine.use-after-move: every sanctioned shape
// that re-establishes a value after the move. Reassignment kills the
// moved-from state; so does .clear()/.assign() style re-init, and the
// accumulator idiom (move out, immediately rebuild) common in batching.

#include <string>
#include <utility>
#include <vector>

void sink(std::string s);
void sink_vec(std::vector<int> v);
bool flip();

// Reassignment re-defines the variable: later reads are fine.
void reassigned() {
  std::string row = "x";
  sink(std::move(row));
  row = "fresh";
  sink(row);
}

// Disjoint branches: the move and the read never share a path.
void exclusive() {
  std::string row = "y";
  if (flip()) {
    sink(std::move(row));
  } else {
    sink(row);
  }
}

// Accumulator idiom: the batch is moved out and immediately rebuilt, so
// the back-edge carries a re-defined value, not a moved-from one.
void batched() {
  std::vector<int> batch;
  while (flip()) {
    batch.push_back(1);
    sink_vec(std::move(batch));
    batch = {};
  }
}
