// Cross-TU taint fixture, source side: functions whose return values are
// environment-derived. In isolation these are clean — the env read never
// reaches sim state in this TU — but the project index records the
// return-taint summary that taint_caller.cpp needs.

#include <cstdlib>

// Depth 0: the return value is tainted directly by getenv.
int env_users() { return std::atoi(std::getenv("USERS")); }

// Depth 1: tainted through a same-index call, proving the summary
// fixpoint composes before it is exported.
int scaled_users() { return env_users() * 2; }
