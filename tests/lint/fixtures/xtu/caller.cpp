// Cross-TU fixture, caller side: clean in isolation — every diagnostic
// here needs the project index built over sinks.cpp to resolve the
// callees' facts. One transitive hop (stamp -> wall_now) and one
// two-hop chain (jitter -> seed_from_wall -> ambient_draw) prove the
// fixpoint propagates, and sum() shows an unordered return value leaking
// its iteration order through a range-for at the call site.

double stamp() { return wall_now() + 1.0; }

int seed_from_wall() { return ambient_draw() % 7; }

int jitter() { return seed_from_wall() * 3; }

int sum() {
  int total = 0;
  for (const auto& kv : snapshot()) total += kv.second;
  return total;
}
