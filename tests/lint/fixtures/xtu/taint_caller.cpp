// Cross-TU taint fixture, caller side: clean in isolation — no getenv
// spelling appears here. Only the project index's return-taint summary
// for env_users()/scaled_users() (defined in taint_source.cpp) lets the
// flow-sensitive rule see the tainted value reach sim state.

struct Sim {
  void spawn(int);
};

// The callee's return taint flows straight into the sink.
void seed_direct(Sim& sim) { sim.spawn(env_users()); }  // line 11

// Through a local: the lattice carries the imported taint bit.
void seed_via_local(Sim& sim) {
  int n = scaled_users();
  sim.spawn(n);  // line 16
}

// Negative control: the imported taint dies before the sink.
void seed_clean(Sim& sim) {
  int n = env_users();
  n = 10;
  sim.spawn(n);
}
