// Cross-TU fixture, sink side: one function that reaches the wall clock,
// one that reaches ambient RNG, and one that returns an unordered
// container. caller.cpp calls all three across the TU boundary; the
// project index carries these facts over.

#include <chrono>
#include <cstdlib>
#include <unordered_map>

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int ambient_draw() { return rand(); }

std::unordered_map<int, int> snapshot() {
  return std::unordered_map<int, int>{{1, 2}};
}
