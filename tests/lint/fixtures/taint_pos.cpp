// Positive fixture for determinism.tainted-sim-state: environment reads
// whose values actually flow into simulation state. The taint lattice
// follows the value through assignments and arithmetic — these are the
// flows the old coarse getenv sink flagged by spelling alone.

#include <cstdlib>
#include <string>

struct Sim {
  void spawn(int);
  void set_seed(unsigned);
};

// Direct propagation: getenv -> atoi -> spawn argument.
void direct(Sim& sim) {
  const char* e = std::getenv("USERS");
  int users = std::atoi(e);
  sim.spawn(users);  // line 18
}

// Through arithmetic: the derived value is still tainted.
void derived(Sim& sim) {
  int base = std::atoi(std::getenv("SCALE"));
  int doubled = base * 2;
  sim.spawn(doubled);  // line 25
}
