// Negative fixture: declarations, definitions and commit-path usage that
// the store.* checks must leave alone. Must analyze clean.
#include <string>

namespace sim {
template <typename T>
struct Task {};
}  // namespace sim

struct Disk {
  // Declarations and in-class definitions of the banned names are not
  // calls (the Disk API itself lives outside store/).
  sim::Task<void> fsync();
  sim::Task<void> flush_now() { return {}; }
  unsigned long fsyncs() const { return fsyncs_; }
  unsigned long fsyncs_ = 0;
};

// Out-of-class definition: qualified, but preceded by the return type.
sim::Task<void> Disk::fsync() {
  ++fsyncs_;
  return {};
}

struct Log {
  struct Awaiter {};
  void append(const std::string& payload);
  Awaiter commit();
};

struct Registry {
  Log log_;
  void register_producer(const std::string& rec) {
    // The blessed path: append through the log, await the group commit.
    log_.append(rec);
    (void)log_.commit();
  }
  // A different name containing the banned one is not a match.
  void refsync() {}
  void use() { refsync(); }
};
