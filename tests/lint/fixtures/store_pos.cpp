// Positive fixture: durability-discipline violations a service file must
// not contain. Lines pinned by the .expected file.
#include <string>

namespace store {
void append_frame(std::string& wal, unsigned long seq,
                  const std::string& payload);
}

struct Disk {
  void fsync();
  void flush_now();
};

struct Registry {
  Disk disk_;
  std::string wal_;
  unsigned long seq_ = 0;

  void register_producer(const std::string& rec) {
    store::append_frame(wal_, seq_++, rec);  // line 21: bypasses Log::append
    append_frame(wal_, seq_++, rec);         // line 22: unqualified, same
    disk_.fsync();                           // line 23: inline barrier
    fsync();                                 // line 24: bare call
    disk_.flush_now();                       // line 25: forced flush
  }

  void fsync();  // declaring a member of this name is fine
};
