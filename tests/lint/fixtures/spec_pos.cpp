// Positive fixture: direct assignment to ScenarioSpec fields, the
// pattern the SpecBuilder redesign deprecates. Lines pinned by the
// .expected file.
#include <string>
#include <vector>

namespace core {
struct StoreConfig {
  double fsync_latency = 0;
};
struct ScenarioSpec {
  int collectors = 10;
  std::vector<int> users{10};
  StoreConfig store;
};
}  // namespace core

using core::ScenarioSpec;

// lines 23-24: plain field writes on a fresh spec
ScenarioSpec legacy_construction() {
  ScenarioSpec spec;
  spec.collectors = 40;
  spec.users = {10, 100};
  return spec;
}

// line 30: a nested member chain is still a spec mutation
void tweak_store(ScenarioSpec& spec) {
  spec.store.fsync_latency = 0.005;
}

// Comparisons and reads are not mutations.
bool is_default(const ScenarioSpec& spec) {
  return spec.collectors == 10 && spec.store.fsync_latency == 0;
}
