// Negative fixture: sanctioned coroutine patterns. Expected diagnostics: none.
#include <memory>
#include <string>

namespace sim {
template <typename T>
struct Task {};
struct Simulation {
  void spawn(Task<void> t);
};
}  // namespace sim

struct Widget {
  sim::Task<int> tick();
};

sim::Task<void> user_loop(Widget& w) {
  co_await w.tick();
}

sim::Task<void> owning_loop(std::shared_ptr<Widget> w) {
  co_await w->tick();
}

struct Driver {
  Widget widget_;
  sim::Simulation* sim_;

  void go() {
    // Member state outlives coroutines the owner spawns.
    sim_->spawn(user_loop(widget_));
    // By-value ownership transfer is the sanctioned alternative.
    sim_->spawn(owning_loop(std::make_shared<Widget>()));
    // Init-captures copy into the closure: safe even for coroutines.
    int count = 0;
    auto lam = [count, w = &widget_]() -> sim::Task<int> {
      co_await w->tick();
      co_return count;
    };
    (void)lam;
    // By-ref captures in a plain (non-coroutine) lambda are fine.
    auto plain = [&count]() { return count + 1; };
    (void)plain;
  }
};

void reference_local(sim::Simulation& sim, Driver& d) {
  // A reference-typed local is just a name for something that outlives us.
  Widget& w = d.widget_;
  sim.spawn(user_loop(w));
}
