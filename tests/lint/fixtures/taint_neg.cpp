// Negative fixture for determinism.tainted-sim-state: environment reads
// that never reach simulation state. The flow-sensitive rule clears
// these, where the old coarse getenv sink flagged the spelling no matter
// where the value went — the exact false positives that forced the
// bench_common suppression.

#include <cstdio>
#include <cstdlib>
#include <string>

struct Sim {
  void spawn(int);
};

// Harness-only flow: the value configures output, not the simulation.
void output_path() {
  const char* dir = std::getenv("OUT_DIR");
  if (dir != nullptr) std::printf("%s\n", dir);
}

// The tainted value is overwritten with a constant before the sink.
void sanitized(Sim& sim) {
  int users = std::atoi(std::getenv("USERS"));
  users = 100;
  sim.spawn(users);
}

// Env read gates verbosity; the spawned count is a literal.
void gated(Sim& sim) {
  bool verbose = std::getenv("VERBOSE") != nullptr;
  if (verbose) std::printf("spawning\n");
  sim.spawn(5);
}
