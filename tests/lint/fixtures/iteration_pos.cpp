// Positive fixture: hash-order iteration that can leak bucket order into
// simulator output. Lines are pinned by the .expected file.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Registry {
  std::unordered_map<std::string, int> load_;
  std::unordered_set<int> hosts_;
  std::unordered_multimap<int, int> index_;

  int sum() const {
    int total = 0;
    for (const auto& kv : load_) {   // line 15
      total += kv.second;
    }
    for (int h : hosts_) {           // line 18
      total += h;
    }
    return total;
  }

  int walk() const {
    int total = 0;
    for (auto it = load_.begin(); it != load_.end(); ++it) {  // line 26
      total += it->second;
    }
    return total;
  }

  std::vector<int> lookup(int key) const {
    std::vector<int> out;
    auto [lo, hi] = index_.equal_range(key);  // line 34: result order unsorted
    for (auto it = lo; it != hi; ++it) {
      out.push_back(it->second);
    }
    return out;
  }
};
