// Negative fixture for coroutine.stale-ref-across-suspend: the
// sanctioned shapes. Borrows that die before the suspension, borrows
// re-derived after it, value copies, and direct indexed accesses all
// analyze clean — the dataflow kills the borrow at the right point.

#include <map>
#include <vector>

struct Backend {
  Task<int> query(int);
};

struct Servlet {
  std::map<int, int> sessions_;
  std::vector<int> rows_;
  Backend be_;

  // The borrow's last use is the awaited expression itself, which is
  // evaluated before the frame suspends.
  Task<void> read_then_await(int id) {
    auto it = sessions_.find(id);
    co_await be_.query(it->second);
  }

  // Re-derivation after the suspension: the post-await iterator is a
  // fresh borrow, not the stale one.
  Task<void> rederive(int id) {
    auto it = sessions_.find(id);
    co_await be_.query(it->second);
    auto again = sessions_.find(id);
    again->second += 1;
  }

  // A value copy survives reallocation; only borrows go stale.
  Task<void> by_value(int id) {
    int snapshot = sessions_[id];
    co_await be_.query(snapshot);
    snapshot += 1;
    (void)snapshot;
  }

  // Direct indexed access after the suspension: no named borrow exists
  // to carry across it.
  Task<void> indexed(int id) {
    co_await be_.query(0);
    sessions_[id] += 1;
  }
};
