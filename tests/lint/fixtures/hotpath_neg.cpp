// Negative fixture: identical patterns to hotpath_pos.cpp but WITHOUT the
// hot-path tag — the hotpath family is opt-in per file, so none of these
// may be flagged. Expected diagnostics: none.
#include <functional>
#include <string>
#include <vector>

struct Entry {
  double time;
  std::string payload;
};

struct Queue {
  std::function<void()> callback_;
  std::vector<Entry> entries_;
  std::vector<std::string> names_;

  void push(Entry e) { entries_.push_back(e); }

  double drain() {
    double total = 0.0;
    for (auto e : entries_) {
      total += e.time;
    }
    for (auto name : names_) {
      total += static_cast<double>(name.size());
    }
    return total;
  }
};
