// Positive fixture for coroutine.use-after-move: reads of a moved-from
// object on a path after the move. The dataflow is path-sensitive enough
// to follow the moved state through straight-line code, branches that
// rejoin, and loop back-edges.

#include <string>
#include <utility>
#include <vector>

void sink(std::string s);
void sink_vec(std::vector<int> v);
bool flip();

// Straight-line: the read follows the move unconditionally.
void straight() {
  std::string row = "x";
  sink(std::move(row));
  int n = static_cast<int>(row.size());  // line 18
  (void)n;
}

// The move happens on one branch; the rejoin point reads the variable,
// so the moved-from state reaches the read on the may-path.
void branchy() {
  std::string row = "y";
  if (flip()) sink(std::move(row));
  sink(row);  // line 27
}

// Loop back-edge: iteration two reads what iteration one moved out.
void looped() {
  std::vector<int> batch;
  while (flip()) {
    batch.push_back(1);
    sink_vec(std::move(batch));  // line 34 (the next-iteration push_back)
  }
}
