// Positive fixture: every concurrency.* rule fires.

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

struct Gate {
  bool ready() const;
};
Gate gate;

struct Pool {
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  int done_count_ = 0;
  int total_ = 0;

  // Suspension point while the guard is alive: the frame can resume on
  // another thread with mu_ still held.
  Task<void> drain() {
    std::lock_guard<std::mutex> guard(mu_);
    co_await gate;
    done_count_ = 0;
  }

  // No predicate: a notify that lands before the wait is lost, and a
  // spurious wakeup sails through.
  void block() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk);
  }

  void bump() { total_ += 1; }

  // Worker closure writes members with no lock and no atomic —
  // ++done_count_ directly, total_ through the same-file callee bump().
  void start() {
    workers_.emplace_back([this] {
      ++done_count_;
      bump();
    });
  }
};

// A detached thread's last writes race against teardown.
void fire_and_forget() {
  std::thread(fire_and_forget).detach();
}
