// Negative fixture: retry loops on the blessed path — every retry is
// gated on the shared budget / breaker machinery — plus loops that merely
// look retry-adjacent. Must analyze clean.
#include <cstddef>

namespace sim {
struct Simulation {
  struct Awaiter {};
  Awaiter delay(double seconds);
};
}  // namespace sim

namespace resilience {
struct ClientPolicy {
  bool allow_retry();
  bool allow(double now);
  void record(double now, bool success);
};
struct RetryBudget {
  bool try_withdraw();
};
}  // namespace resilience

struct Reply {
  bool admitted = false;
};

Reply send_once();

// The blessed path: each retry withdraws from the budget before backing
// off, so amplification is bounded during an outage.
void query_with_budget(sim::Simulation& sim, resilience::ClientPolicy& p) {
  for (int retry = 0; retry < 5; ++retry) {
    Reply r = send_once();
    if (r.admitted) return;
    if (!p.allow_retry()) return;  // budget exhausted: give up
    (void)sim.delay(2.0);
  }
}

// Raw budget variant is equally fine.
void query_with_raw_budget(sim::Simulation& sim,
                           resilience::RetryBudget& budget) {
  while (true) {
    Reply r = send_once();
    if (r.admitted) break;
    if (!budget.try_withdraw()) break;
    (void)sim.delay(1.0);
  }
}

// A retry loop that never sleeps is a tight poll, not a backoff retry —
// out of scope for this check.
int count_retries_no_delay(int max_retries) {
  int retries = 0;
  for (int retry = 0; retry < max_retries; ++retry) ++retries;
  return retries;
}

// A delay loop with no retry semantics (periodic beat) is fine.
void heartbeat(sim::Simulation& sim) {
  while (true) {
    (void)sim.delay(30.0);
  }
}
