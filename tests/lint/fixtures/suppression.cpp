// Suppression-machinery fixture: a justified suppression silences its
// diagnostic; a bare one silences nothing AND is itself flagged; one that
// matches nothing is flagged as unused. Lines pinned by the .expected file.
#include <cstdlib>

int justified() {
  // gridmon-lint: suppress(determinism.ambient-rng) -- fixture: proves the
  // escape hatch silences exactly the diagnostic it names.
  return rand();  // silenced by the justified suppression above
}

int bare() {
  return rand();  // gridmon-lint: suppress(determinism.ambient-rng)
}

// gridmon-lint: suppress(determinism.wall-clock) -- the next line reads no
// clock, so this suppression silences nothing and must be flagged.
int unused_target = 3;

int wrong_prefix() {
  // gridmon-lint: suppress(iteration) -- names the wrong family, so the
  // rand() below must still be reported (and this hatch counts as unused).
  return rand();  // line 23
}
