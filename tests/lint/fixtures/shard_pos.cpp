// Positive fixture: every shard.* rule fires. The file mentions the shard
// engine (ShardGroup/ShardRunner tokens), so the family is active.

#include <cstdint>

struct ShardMessage {
  double deliver_at = 0;
  std::uint64_t uid = 0;
  std::uint64_t seq = 0;
  int from = 0;
};

struct ShardGroup {
  void post(const ShardMessage& m);
};

struct ClientShard : ShardRunner {
  int credits_ = 0;
  void deliver(const ShardMessage& m);
};

// post() with a deliver_at derived from nothing horizon-shaped: the
// enclosing function never consults lookahead/window_end.
void send_now(ShardGroup& group, ShardMessage msg, double now) {
  msg.deliver_at = now + 0.001;
  group.post(msg);
}

// Handing a message straight to the runner skips the mailbox merge.
void shortcut(ClientShard& runner, const ShardMessage& msg) {
  runner.deliver(msg);
}

// Writing through a variable that holds another runner: cross-shard
// influence outside the mailbox.
struct Owner {
  ClientShard* peer_ = nullptr;
  void steal() { peer_->credits_ -= 1; }
};

// A merge comparator that reads sender identity: order changes with the
// shard count.
bool merge_before(const ShardMessage& a, const ShardMessage& b) {
  if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
  return a.from < b.from;
}
