// Negative fixture: near-misses for every shard.* rule. Mentions the
// shard engine, so the family IS active — each pattern below is the
// sanctioned shape of the corresponding positive case.

#include <cstdint>

struct ShardMessage {
  double deliver_at = 0;
  std::uint64_t uid = 0;
  std::uint64_t seq = 0;
  int from = 0;
};

struct ShardGroup {
  void post(const ShardMessage& m);
  double window_end() const;
};

struct ClientShard : ShardRunner {
  int credits_ = 0;
  int delivered = 0;
};

// post() is fine when deliver_at is derived from the lookahead horizon.
void send_later(ShardGroup& group, ShardMessage msg, double now,
                double lookahead) {
  msg.deliver_at = now + lookahead;
  group.post(msg);
}

// Reading another runner is the supported owner-side aggregation pattern;
// only writes smuggle influence around the mailbox.
struct Owner {
  ClientShard* peer_ = nullptr;
  int total() { return peer_->credits_ + peer_->delivered; }
};

// "delivered" is not "deliver": member names that merely contain the
// banned stem stay silent.
void tally(ClientShard& runner, int* sum) { *sum += runner.delivered; }

// A comparator over the canonical key (deliver_at, uid, seq) is the
// required shape; it never reads sender identity.
bool merge_before(const ShardMessage& a, const ShardMessage& b) {
  if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
  if (a.uid != b.uid) return a.uid < b.uid;
  return a.seq < b.seq;
}
