// Negative fixture: deterministic idioms and near-miss spellings that the
// determinism family must NOT flag. Expected diagnostics: none.
#include <cstdint>

namespace sim {
struct Rng {
  std::uint64_t next_u64();
  double uniform();
  Rng fork();
};
struct Simulation {
  double now() const;
};
}  // namespace sim

struct Sampler {
  // A member named like a banned function is fine when called through an
  // object or scope: only unqualified call position is banned.
  double time(int idx) const;
  double rand() const;
};

double fine(sim::Simulation& s, sim::Rng& rng, Sampler& smp) {
  double t = s.now();                    // sim time: the sanctioned source
  double u = rng.uniform();              // seeded stream: sanctioned
  double v = smp.time(3) + smp.rand();   // qualified member calls
  double w = Sampler{}.rand();
  // Words containing banned names are not banned names.
  int randomized_total = 0;
  double time_series = t + u;
  const char* label = "rand() and time() inside a string literal";
  (void)label;
  return v + w + time_series + randomized_total;
}
