// Negative fixture: ordered containers, sorted equal_range results, and a
// justified escape hatch. Expected diagnostics: none.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

struct Registry {
  std::map<std::string, int> ordered_;
  std::set<int> ids_;
  std::unordered_map<std::string, int> cache_;
  std::unordered_multimap<int, int> index_;

  int sum() const {
    int total = 0;
    for (const auto& kv : ordered_) {  // std::map iterates in key order
      total += kv.second;
    }
    for (int id : ids_) {
      total += id;
    }
    return total;
  }

  int commutative() const {
    int total = 0;
    // gridmon-lint: iteration-order-independent -- integer addition is
    // commutative; only the total is observable.
    for (const auto& kv : cache_) {
      total += kv.second;
    }
    return total;
  }

  std::vector<int> lookup(int key) const {
    std::vector<int> out;
    auto [lo, hi] = index_.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      out.push_back(it->second);
    }
    std::sort(out.begin(), out.end());  // order restored before it escapes
    return out;
  }
};
