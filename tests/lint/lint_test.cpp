/// Fixture self-tests for gridmon_lint. Each fixture under
/// tests/lint/fixtures/ is paired with a `<fixture>.expected` file listing
/// `line:check-id` per expected diagnostic (empty file = must be clean);
/// the tests fail with a readable diff when the analyzer drifts. A final
/// test runs the analyzer over the real src/gridmon tree and asserts the
/// zero-findings baseline the CI gate enforces.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace fs = std::filesystem;
using gridmon::lint::Diagnostic;
using gridmon::lint::Options;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// "line:check-id" pairs, sorted — column numbers are deliberately not part
/// of the contract so fixtures stay editable.
using Expectation = std::pair<int, std::string>;

std::vector<Expectation> parse_expected(const fs::path& p) {
  std::vector<Expectation> out;
  std::istringstream in(read_file(p));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto colon = line.find(':');
    if (colon == std::string::npos) {
      ADD_FAILURE() << p << ": bad line '" << line << "'";
      continue;
    }
    out.emplace_back(std::stoi(line.substr(0, colon)), line.substr(colon + 1));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Expectation> actual_pairs(const std::vector<Diagnostic>& diags) {
  std::vector<Expectation> out;
  for (const Diagnostic& d : diags) out.emplace_back(d.line, d.check);
  std::sort(out.begin(), out.end());
  return out;
}

std::string render(const std::vector<Expectation>& v) {
  std::ostringstream ss;
  for (const auto& [line, check] : v) ss << "  " << line << ":" << check << "\n";
  return ss.str().empty() ? "  (none)\n" : ss.str();
}

fs::path fixture_dir() { return fs::path(GRIDMON_LINT_FIXTURE_DIR); }

void run_fixture(const std::string& name) {
  fs::path src = fixture_dir() / name;
  fs::path exp = fixture_dir() / (name + ".expected");
  ASSERT_TRUE(fs::exists(src)) << src;
  ASSERT_TRUE(fs::exists(exp)) << exp;
  SCOPED_TRACE(exp.string());
  std::vector<Expectation> expected = parse_expected(exp);
  auto actual =
      actual_pairs(gridmon::lint::analyze_file(src.string(), Options{}));
  EXPECT_EQ(actual, expected) << "fixture " << name << "\nexpected:\n"
                              << render(expected) << "actual:\n"
                              << render(actual);
}

}  // namespace

TEST(LintFixtures, DeterminismPositive) { run_fixture("determinism_pos.cpp"); }
TEST(LintFixtures, DeterminismNegative) { run_fixture("determinism_neg.cpp"); }
TEST(LintFixtures, IterationPositive) { run_fixture("iteration_pos.cpp"); }
TEST(LintFixtures, IterationNegative) { run_fixture("iteration_neg.cpp"); }
TEST(LintFixtures, CoroutinePositive) { run_fixture("coroutine_pos.cpp"); }
TEST(LintFixtures, CoroutineNegative) { run_fixture("coroutine_neg.cpp"); }
TEST(LintFixtures, HotpathPositive) { run_fixture("hotpath_pos.cpp"); }
TEST(LintFixtures, HotpathNegative) { run_fixture("hotpath_neg.cpp"); }
TEST(LintFixtures, Suppression) { run_fixture("suppression.cpp"); }
TEST(LintFixtures, StorePositive) { run_fixture("store_pos.cpp"); }
TEST(LintFixtures, StoreNegative) { run_fixture("store_neg.cpp"); }
TEST(LintFixtures, ResiliencePositive) { run_fixture("resilience_pos.cpp"); }
TEST(LintFixtures, ResilienceNegative) { run_fixture("resilience_neg.cpp"); }
TEST(LintFixtures, SpecPositive) { run_fixture("spec_pos.cpp"); }
TEST(LintFixtures, SpecNegative) { run_fixture("spec_neg.cpp"); }
TEST(LintFixtures, ShardPositive) { run_fixture("shard_pos.cpp"); }
TEST(LintFixtures, ShardNegative) { run_fixture("shard_neg.cpp"); }
TEST(LintFixtures, ConcurrencyPositive) { run_fixture("concurrency_pos.cpp"); }
TEST(LintFixtures, ConcurrencyNegative) { run_fixture("concurrency_neg.cpp"); }
TEST(LintFixtures, StaleRefPositive) { run_fixture("stale_ref_pos.cpp"); }
TEST(LintFixtures, StaleRefNegative) { run_fixture("stale_ref_neg.cpp"); }
TEST(LintFixtures, UseAfterMovePositive) {
  run_fixture("use_after_move_pos.cpp");
}
TEST(LintFixtures, UseAfterMoveNegative) {
  run_fixture("use_after_move_neg.cpp");
}
TEST(LintFixtures, TaintPositive) { run_fixture("taint_pos.cpp"); }
TEST(LintFixtures, TaintNegative) { run_fixture("taint_neg.cpp"); }

// Every fixture on disk must be exercised: adding a fixture without a test
// (or an .expected without a fixture) is itself a failure.
TEST(LintFixtures, AllFixturesCovered) {
  const std::vector<std::string> covered = {
      "determinism_pos.cpp", "determinism_neg.cpp", "iteration_pos.cpp",
      "iteration_neg.cpp",   "coroutine_pos.cpp",   "coroutine_neg.cpp",
      "hotpath_pos.cpp",     "hotpath_neg.cpp",     "suppression.cpp",
      "store_pos.cpp",       "store_neg.cpp",       "resilience_pos.cpp",
      "resilience_neg.cpp",  "spec_pos.cpp",        "spec_neg.cpp",
      "shard_pos.cpp",       "shard_neg.cpp",       "concurrency_pos.cpp",
      "concurrency_neg.cpp", "stale_ref_pos.cpp",   "stale_ref_neg.cpp",
      "use_after_move_pos.cpp", "use_after_move_neg.cpp",
      "taint_pos.cpp",       "taint_neg.cpp"};
  for (const auto& entry : fs::directory_iterator(fixture_dir())) {
    fs::path p = entry.path();
    if (p.extension() != ".cpp") continue;
    EXPECT_NE(std::find(covered.begin(), covered.end(),
                        p.filename().string()),
              covered.end())
        << "fixture " << p.filename() << " has no test";
  }
  for (const std::string& name : covered) {
    EXPECT_TRUE(fs::exists(fixture_dir() / name)) << name;
    EXPECT_TRUE(fs::exists(fixture_dir() / (name + ".expected"))) << name;
  }
}

// The acceptance gate: seeding a determinism violation into otherwise-clean
// source must produce a finding (this is what makes the CI lint job fail on
// a regression).
TEST(LintGate, SeededViolationIsCaught) {
  const std::string clean = R"cpp(
    double now_seconds(const sim::Simulation& s) { return s.now(); }
  )cpp";
  EXPECT_TRUE(
      gridmon::lint::analyze_source("seed.cpp", clean, Options{}).empty());

  const std::string seeded = R"cpp(
    #include <chrono>
    double now_seconds() {
      return std::chrono::duration<double>(
          std::chrono::steady_clock::now().time_since_epoch()).count();
    }
  )cpp";
  auto diags = gridmon::lint::analyze_source("seed.cpp", seeded, Options{});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "determinism.wall-clock");
  EXPECT_FALSE(diags[0].suggestion.empty());
}

TEST(LintGate, BannedNamesInsideStringsAndCommentsIgnored) {
  const std::string src = R"cpp(
    // rand() and std::chrono::system_clock in a comment are fine.
    const char* kDoc = "call rand() then time(nullptr)";
    const char* kRaw = R"(std::random_device inside a raw string)";
  )cpp";
  EXPECT_TRUE(
      gridmon::lint::analyze_source("strings.cpp", src, Options{}).empty());
}

TEST(LintGate, CheckFilterRestrictsFamilies) {
  const std::string src = R"cpp(
    #include <cstdlib>
    #include <chrono>
    int f() {
      auto t = std::chrono::system_clock::now();
      (void)t;
      return rand();
    }
  )cpp";
  Options only_rng;
  only_rng.enabled_checks = {"determinism.ambient-rng"};
  auto diags = gridmon::lint::analyze_source("filter.cpp", src, only_rng);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "determinism.ambient-rng");
}

TEST(LintGate, SiblingHeaderDeclarationsParticipate) {
  const std::string header = R"cpp(
    #include <unordered_map>
    struct Registry {
      std::unordered_map<int, int> load_;
      int sum() const;
    };
  )cpp";
  const std::string source = R"cpp(
    int Registry::sum() const {
      int total = 0;
      for (const auto& kv : load_) total += kv.second;
      return total;
    }
  )cpp";
  auto diags =
      gridmon::lint::analyze_source("registry.cpp", source, Options{}, header);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "iteration.unordered-range-for");
}

TEST(LintGate, CompileDbExtractsAbsoluteSortedUniqueFiles) {
  const std::string db = R"json([
    {"directory": "/b", "command": "c++ -c z.cpp", "file": "z.cpp"},
    {"directory": "/a", "command": "c++ -c x.cpp", "file": "x.cpp"},
    {"directory": "/a", "command": "c++ -c x.cpp", "file": "x.cpp"},
    {"directory": "/a", "command": "c++ -c /abs/y.cpp", "file": "/abs/y.cpp"}
  ])json";
  auto files = gridmon::lint::compile_db_files(db);
  std::vector<std::string> want = {"/a/x.cpp", "/abs/y.cpp", "/b/z.cpp"};
  EXPECT_EQ(files, want);
}

// Inside src/gridmon/store the flush path IS the implementation: the same
// tokens that are violations elsewhere must pass there.
TEST(LintGate, StorePathIsExemptFromStoreChecks) {
  const std::string src = R"cpp(
    struct Disk { void fsync(); };
    void flush_batch(Disk& disk, std::string& wal, const std::string& batch) {
      append_frame(wal, 1, batch);
      disk.fsync();
    }
  )cpp";
  auto inside = gridmon::lint::analyze_source("src/gridmon/store/log.cpp",
                                              src, Options{});
  EXPECT_TRUE(inside.empty());
  auto outside = gridmon::lint::analyze_source("src/gridmon/rgma/registry.cpp",
                                               src, Options{});
  ASSERT_EQ(outside.size(), 2u);
  EXPECT_EQ(outside[0].check, "store.wal-append-outside-txn");
  EXPECT_EQ(outside[1].check, "store.sync-in-hot-path");
}

// Pass 1 + pass 2 across a translation-unit boundary: caller.cpp is clean
// in isolation — every fact it needs lives in sinks.cpp. The fixpoint must
// carry depth-0 sink facts through one hop (stamp -> wall_now) and two
// hops (jitter -> seed_from_wall -> ambient_draw), and the unordered
// return type of snapshot() must flag the range-for at its call site.
TEST(LintCrossTU, FactsResolveAcrossFiles) {
  fs::path dir = fixture_dir() / "xtu";
  std::vector<std::string> files = {(dir / "caller.cpp").string(),
                                    (dir / "sinks.cpp").string()};
  auto index = gridmon::lint::build_project_index(files);

  const auto* wall = index.fact("wall_now");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->wall_depth, 0);
  const auto* stamp = index.fact("stamp");
  ASSERT_NE(stamp, nullptr);
  EXPECT_EQ(stamp->wall_depth, 1);
  EXPECT_NE(stamp->wall_via.find("wall_now"), std::string::npos);
  const auto* jitter = index.fact("jitter");
  ASSERT_NE(jitter, nullptr);
  EXPECT_EQ(jitter->rng_depth, 2);
  EXPECT_NE(jitter->rng_via.find("ambient_draw"), std::string::npos);
  EXPECT_EQ(index.unordered_returning.count("snapshot"), 1u);

  Options solo;
  EXPECT_TRUE(gridmon::lint::analyze_file(files[0], solo).empty())
      << "caller.cpp must be clean without the project index";
  Options project;
  project.project = &index;
  auto actual = actual_pairs(gridmon::lint::analyze_file(files[0], project));
  std::vector<Expectation> expected = {
      {8, "determinism.transitive-wall-clock"},
      {10, "determinism.transitive-ambient-rng"},
      {16, "iteration.unordered-return-leak"}};
  EXPECT_EQ(actual, expected) << "expected:\n"
                              << render(expected) << "actual:\n"
                              << render(actual);
}

// Return-taint summaries across a TU boundary: taint_caller.cpp has no
// getenv spelling of its own, so it is clean in isolation; with the
// project index the env_users()/scaled_users() summaries from
// taint_source.cpp reach its sim.spawn() sinks. seed_clean() proves the
// imported taint still dies at a re-definition — the flow sensitivity
// survives the import.
TEST(LintCrossTU, TaintFlowsAcrossFiles) {
  fs::path dir = fixture_dir() / "xtu";
  std::vector<std::string> files = {(dir / "taint_caller.cpp").string(),
                                    (dir / "taint_source.cpp").string()};
  auto index = gridmon::lint::build_project_index(files);

  EXPECT_NE(index.taint_of("env_users"), 0u);
  EXPECT_NE(index.taint_via("env_users").find("getenv"), std::string::npos);
  EXPECT_NE(index.taint_of("scaled_users"), 0u)
      << "summary fixpoint must compose env_users -> scaled_users";

  Options solo;
  EXPECT_TRUE(gridmon::lint::analyze_file(files[0], solo).empty())
      << "taint_caller.cpp must be clean without the project index";
  Options project;
  project.project = &index;
  auto actual = actual_pairs(gridmon::lint::analyze_file(files[0], project));
  std::vector<Expectation> expected = {
      {11, "determinism.tainted-sim-state"},
      {16, "determinism.tainted-sim-state"}};
  EXPECT_EQ(actual, expected) << "expected:\n"
                              << render(expected) << "actual:\n"
                              << render(actual);
}

// The index cache must round-trip through its file format and hit on
// unchanged content — and the facts served from cache must resolve
// identically to a cold build.
TEST(LintCrossTU, IndexCacheRoundTrip) {
  fs::path dir = fixture_dir() / "xtu";
  std::vector<std::string> files = {(dir / "caller.cpp").string(),
                                    (dir / "sinks.cpp").string()};
  fs::path cache_file =
      fs::temp_directory_path() / "gridmon_lint_test_index.cache";
  fs::remove(cache_file);

  auto cold = gridmon::lint::IndexCache::load(cache_file.string());
  auto index1 = gridmon::lint::build_project_index(files, &cold);
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, files.size());
  cold.save(cache_file.string());

  auto warm = gridmon::lint::IndexCache::load(cache_file.string());
  auto index2 = gridmon::lint::build_project_index(files, &warm);
  EXPECT_EQ(warm.hits, files.size());
  EXPECT_EQ(warm.misses, 0u);
  const auto* stamp = index2.fact("stamp");
  ASSERT_NE(stamp, nullptr);
  EXPECT_EQ(stamp->wall_depth, 1);
  EXPECT_EQ(index2.unordered_returning.count("snapshot"), 1u);
  fs::remove(cache_file);
}

// SARIF output: structurally 2.1.0, one rule entry per fired check id,
// results carrying the physical location CI annotates with.
TEST(LintSarif, ReportCarriesRulesAndLocations) {
  const std::string seeded = R"cpp(
    #include <chrono>
    double now_seconds() {
      return std::chrono::duration<double>(
          std::chrono::steady_clock::now().time_since_epoch()).count();
    }
  )cpp";
  auto diags = gridmon::lint::analyze_source("seed.cpp", seeded, Options{});
  ASSERT_EQ(diags.size(), 1u);
  std::string sarif = gridmon::lint::sarif_report(diags);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"gridmon_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"determinism.wall-clock\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"determinism.wall-clock\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"seed.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": " + std::to_string(diags[0].line)),
            std::string::npos);
  // Escaping: a quote and a backslash in the message must not break the
  // document (spot-check the escape sequences).
  Diagnostic hostile{"a\\b.cpp", 1, 1, "x.y", "say \"hi\"\nbye", ""};
  std::string escaped = gridmon::lint::sarif_report({hostile});
  EXPECT_NE(escaped.find("say \\\"hi\\\"\\nbye"), std::string::npos);
  EXPECT_NE(escaped.find("a\\\\b.cpp"), std::string::npos);
}

// The suppression-debt budget: the format round-trips, malformed input
// throws, and — the acceptance case — adding one justified suppression
// moves the measured family count off the checked-in budget, which the
// strict-equality gate rejects.
TEST(LintBudget, FormatRoundTrips) {
  std::map<std::string, int> counts = {
      {"coroutine", 11}, {"determinism", 9}, {"hotpath", 2}};
  auto parsed = gridmon::lint::parse_suppression_budget(
      gridmon::lint::format_suppression_budget(counts));
  EXPECT_EQ(parsed, counts);
  EXPECT_TRUE(gridmon::lint::parse_suppression_budget("# only\n").empty());
}

TEST(LintBudget, MalformedLineThrows) {
  EXPECT_THROW(gridmon::lint::parse_suppression_budget("determinism many"),
               std::runtime_error);
  EXPECT_THROW(gridmon::lint::parse_suppression_budget("justaword"),
               std::runtime_error);
}

TEST(LintBudget, AddedSuppressionIsRejectedByStrictEquality) {
  const std::string with_escape_hatch = R"cpp(
    #include <chrono>
    // gridmon-lint: suppress(determinism.wall-clock) -- harness-only timer
    auto t0 = std::chrono::steady_clock::now();
  )cpp";
  auto fa = gridmon::lint::analyze_source_full("seed.cpp", with_escape_hatch,
                                               Options{});
  EXPECT_TRUE(fa.diagnostics.empty())
      << "the justified suppression must silence the finding";
  std::map<std::string, int> measured = {{"determinism", 1}};
  EXPECT_EQ(fa.suppressions_by_family, measured);
  // The committed budget says zero: the new suppression is debt the gate
  // refuses until the budget file is regenerated.
  auto budget = gridmon::lint::parse_suppression_budget("determinism 0\n");
  EXPECT_NE(budget, fa.suppressions_by_family);
}

// The rule catalogue backs --list-checks, --explain, and the SARIF rule
// metadata: every id is unique, dotted, and fully documented.
TEST(LintCatalogue, EveryCheckFullyDocumented) {
  auto checks = gridmon::lint::all_checks();
  EXPECT_GE(checks.size(), 27u);
  std::vector<std::string> ids;
  for (const auto& c : checks) {
    ids.emplace_back(c.id);
    EXPECT_NE(ids.back().find('.'), std::string::npos) << c.id;
    EXPECT_FALSE(std::string(c.summary).empty()) << c.id;
    EXPECT_FALSE(std::string(c.contract).empty()) << c.id;
    EXPECT_FALSE(std::string(c.example).empty()) << c.id;
    EXPECT_FALSE(std::string(c.fix).empty()) << c.id;
  }
  auto sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate check id";
  for (const char* required :
       {"determinism.transitive-wall-clock",
        "determinism.transitive-ambient-rng", "iteration.unordered-return-leak",
        "shard.unguarded-post-horizon", "shard.direct-deliver",
        "shard.peer-runner-write", "shard.sender-dependent-order",
        "concurrency.lock-across-await", "concurrency.detached-thread",
        "concurrency.cv-wait-no-predicate",
        "concurrency.unguarded-shared-write"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), required), ids.end())
        << required;
  }
}

// The zero-baseline contract, enforced in-process so plain `ctest` catches a
// regression even when nobody runs the `lint` target: every source file in
// src/gridmon analyzes clean, and every suppression in the tree carries a
// justification (bare ones would surface as lint.bare-suppression above).
TEST(LintGate, SrcGridmonIsCleanWithEmptyBaseline) {
  fs::path root(GRIDMON_LINT_SRC_DIR);
  ASSERT_TRUE(fs::exists(root)) << root;
  auto files = gridmon::lint::collect_sources(root.string());
  ASSERT_GT(files.size(), 50u) << "src/gridmon walk looks wrong";
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  std::size_t findings = 0;
  for (const std::string& f : files) {
    for (const Diagnostic& d : gridmon::lint::analyze_file(f, Options{})) {
      ADD_FAILURE() << d.file << ":" << d.line << ": " << d.message << " ["
                    << d.check << "]";
      ++findings;
    }
  }
  EXPECT_EQ(findings, 0u);
}

// The full project-mode gate, in-process: every linted tree (src/gridmon,
// bench, tools, examples) is clean under the cross-TU index, and the
// measured suppression debt matches the checked-in budget exactly — in
// both directions, so paid-down debt is surfaced too.
TEST(LintGate, LintedTreesCleanAndBudgetExact) {
  fs::path repo(GRIDMON_LINT_REPO_DIR);
  ASSERT_TRUE(fs::exists(repo)) << repo;
  std::vector<std::string> files;
  for (const char* dir :
       {"src/gridmon", "bench", "tools", "examples", "tests"}) {
    auto part = gridmon::lint::collect_sources((repo / dir).string());
    EXPECT_FALSE(part.empty()) << dir;
    files.insert(files.end(), part.begin(), part.end());
  }
  // The fixture tree is the lint suite's own positive cases — deliberate
  // violations, exercised file-by-file by AllFixturesCovered above.
  std::erase_if(files, [](const std::string& f) {
    return f.find("tests/lint/fixtures") != std::string::npos;
  });
  ASSERT_GT(files.size(), 150u) << "project walk looks wrong";

  auto index = gridmon::lint::build_project_index(files);
  Options opts;
  opts.project = &index;
  std::size_t findings = 0;
  std::map<std::string, int> measured;
  for (const std::string& f : files) {
    auto fa = gridmon::lint::analyze_file_full(f, opts);
    for (const Diagnostic& d : fa.diagnostics) {
      ADD_FAILURE() << d.file << ":" << d.line << ": " << d.message << " ["
                    << d.check << "]";
      ++findings;
    }
    for (const auto& [family, count] : fa.suppressions_by_family) {
      measured[family] += count;
    }
  }
  EXPECT_EQ(findings, 0u);

  auto budget = gridmon::lint::parse_suppression_budget(
      read_file(repo / "tools" / "gridmon_lint" / "suppression_budget.txt"));
  EXPECT_EQ(measured, budget)
      << "suppression debt drifted from tools/gridmon_lint/"
         "suppression_budget.txt; regenerate with --write-suppression-budget";
}
