/// Fixture self-tests for gridmon_lint. Each fixture under
/// tests/lint/fixtures/ is paired with a `<fixture>.expected` file listing
/// `line:check-id` per expected diagnostic (empty file = must be clean);
/// the tests fail with a readable diff when the analyzer drifts. A final
/// test runs the analyzer over the real src/gridmon tree and asserts the
/// zero-findings baseline the CI gate enforces.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using gridmon::lint::Diagnostic;
using gridmon::lint::Options;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// "line:check-id" pairs, sorted — column numbers are deliberately not part
/// of the contract so fixtures stay editable.
using Expectation = std::pair<int, std::string>;

std::vector<Expectation> parse_expected(const fs::path& p) {
  std::vector<Expectation> out;
  std::istringstream in(read_file(p));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto colon = line.find(':');
    if (colon == std::string::npos) {
      ADD_FAILURE() << p << ": bad line '" << line << "'";
      continue;
    }
    out.emplace_back(std::stoi(line.substr(0, colon)), line.substr(colon + 1));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Expectation> actual_pairs(const std::vector<Diagnostic>& diags) {
  std::vector<Expectation> out;
  for (const Diagnostic& d : diags) out.emplace_back(d.line, d.check);
  std::sort(out.begin(), out.end());
  return out;
}

std::string render(const std::vector<Expectation>& v) {
  std::ostringstream ss;
  for (const auto& [line, check] : v) ss << "  " << line << ":" << check << "\n";
  return ss.str().empty() ? "  (none)\n" : ss.str();
}

fs::path fixture_dir() { return fs::path(GRIDMON_LINT_FIXTURE_DIR); }

void run_fixture(const std::string& name) {
  fs::path src = fixture_dir() / name;
  fs::path exp = fixture_dir() / (name + ".expected");
  ASSERT_TRUE(fs::exists(src)) << src;
  ASSERT_TRUE(fs::exists(exp)) << exp;
  SCOPED_TRACE(exp.string());
  std::vector<Expectation> expected = parse_expected(exp);
  auto actual =
      actual_pairs(gridmon::lint::analyze_file(src.string(), Options{}));
  EXPECT_EQ(actual, expected) << "fixture " << name << "\nexpected:\n"
                              << render(expected) << "actual:\n"
                              << render(actual);
}

}  // namespace

TEST(LintFixtures, DeterminismPositive) { run_fixture("determinism_pos.cpp"); }
TEST(LintFixtures, DeterminismNegative) { run_fixture("determinism_neg.cpp"); }
TEST(LintFixtures, IterationPositive) { run_fixture("iteration_pos.cpp"); }
TEST(LintFixtures, IterationNegative) { run_fixture("iteration_neg.cpp"); }
TEST(LintFixtures, CoroutinePositive) { run_fixture("coroutine_pos.cpp"); }
TEST(LintFixtures, CoroutineNegative) { run_fixture("coroutine_neg.cpp"); }
TEST(LintFixtures, HotpathPositive) { run_fixture("hotpath_pos.cpp"); }
TEST(LintFixtures, HotpathNegative) { run_fixture("hotpath_neg.cpp"); }
TEST(LintFixtures, Suppression) { run_fixture("suppression.cpp"); }
TEST(LintFixtures, StorePositive) { run_fixture("store_pos.cpp"); }
TEST(LintFixtures, StoreNegative) { run_fixture("store_neg.cpp"); }
TEST(LintFixtures, ResiliencePositive) { run_fixture("resilience_pos.cpp"); }
TEST(LintFixtures, ResilienceNegative) { run_fixture("resilience_neg.cpp"); }
TEST(LintFixtures, SpecPositive) { run_fixture("spec_pos.cpp"); }
TEST(LintFixtures, SpecNegative) { run_fixture("spec_neg.cpp"); }

// Every fixture on disk must be exercised: adding a fixture without a test
// (or an .expected without a fixture) is itself a failure.
TEST(LintFixtures, AllFixturesCovered) {
  const std::vector<std::string> covered = {
      "determinism_pos.cpp", "determinism_neg.cpp", "iteration_pos.cpp",
      "iteration_neg.cpp",   "coroutine_pos.cpp",   "coroutine_neg.cpp",
      "hotpath_pos.cpp",     "hotpath_neg.cpp",     "suppression.cpp",
      "store_pos.cpp",       "store_neg.cpp",       "resilience_pos.cpp",
      "resilience_neg.cpp",  "spec_pos.cpp",        "spec_neg.cpp"};
  for (const auto& entry : fs::directory_iterator(fixture_dir())) {
    fs::path p = entry.path();
    if (p.extension() != ".cpp") continue;
    EXPECT_NE(std::find(covered.begin(), covered.end(),
                        p.filename().string()),
              covered.end())
        << "fixture " << p.filename() << " has no test";
  }
  for (const std::string& name : covered) {
    EXPECT_TRUE(fs::exists(fixture_dir() / name)) << name;
    EXPECT_TRUE(fs::exists(fixture_dir() / (name + ".expected"))) << name;
  }
}

// The acceptance gate: seeding a determinism violation into otherwise-clean
// source must produce a finding (this is what makes the CI lint job fail on
// a regression).
TEST(LintGate, SeededViolationIsCaught) {
  const std::string clean = R"cpp(
    double now_seconds(const sim::Simulation& s) { return s.now(); }
  )cpp";
  EXPECT_TRUE(
      gridmon::lint::analyze_source("seed.cpp", clean, Options{}).empty());

  const std::string seeded = R"cpp(
    #include <chrono>
    double now_seconds() {
      return std::chrono::duration<double>(
          std::chrono::steady_clock::now().time_since_epoch()).count();
    }
  )cpp";
  auto diags = gridmon::lint::analyze_source("seed.cpp", seeded, Options{});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "determinism.wall-clock");
  EXPECT_FALSE(diags[0].suggestion.empty());
}

TEST(LintGate, BannedNamesInsideStringsAndCommentsIgnored) {
  const std::string src = R"cpp(
    // rand() and std::chrono::system_clock in a comment are fine.
    const char* kDoc = "call rand() then time(nullptr)";
    const char* kRaw = R"(std::random_device inside a raw string)";
  )cpp";
  EXPECT_TRUE(
      gridmon::lint::analyze_source("strings.cpp", src, Options{}).empty());
}

TEST(LintGate, CheckFilterRestrictsFamilies) {
  const std::string src = R"cpp(
    #include <cstdlib>
    #include <chrono>
    int f() {
      auto t = std::chrono::system_clock::now();
      (void)t;
      return rand();
    }
  )cpp";
  Options only_rng;
  only_rng.enabled_checks = {"determinism.ambient-rng"};
  auto diags = gridmon::lint::analyze_source("filter.cpp", src, only_rng);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "determinism.ambient-rng");
}

TEST(LintGate, SiblingHeaderDeclarationsParticipate) {
  const std::string header = R"cpp(
    #include <unordered_map>
    struct Registry {
      std::unordered_map<int, int> load_;
      int sum() const;
    };
  )cpp";
  const std::string source = R"cpp(
    int Registry::sum() const {
      int total = 0;
      for (const auto& kv : load_) total += kv.second;
      return total;
    }
  )cpp";
  auto diags =
      gridmon::lint::analyze_source("registry.cpp", source, Options{}, header);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "iteration.unordered-range-for");
}

TEST(LintGate, CompileDbExtractsAbsoluteSortedUniqueFiles) {
  const std::string db = R"json([
    {"directory": "/b", "command": "c++ -c z.cpp", "file": "z.cpp"},
    {"directory": "/a", "command": "c++ -c x.cpp", "file": "x.cpp"},
    {"directory": "/a", "command": "c++ -c x.cpp", "file": "x.cpp"},
    {"directory": "/a", "command": "c++ -c /abs/y.cpp", "file": "/abs/y.cpp"}
  ])json";
  auto files = gridmon::lint::compile_db_files(db);
  std::vector<std::string> want = {"/a/x.cpp", "/abs/y.cpp", "/b/z.cpp"};
  EXPECT_EQ(files, want);
}

// Inside src/gridmon/store the flush path IS the implementation: the same
// tokens that are violations elsewhere must pass there.
TEST(LintGate, StorePathIsExemptFromStoreChecks) {
  const std::string src = R"cpp(
    struct Disk { void fsync(); };
    void flush_batch(Disk& disk, std::string& wal, const std::string& batch) {
      append_frame(wal, 1, batch);
      disk.fsync();
    }
  )cpp";
  auto inside = gridmon::lint::analyze_source("src/gridmon/store/log.cpp",
                                              src, Options{});
  EXPECT_TRUE(inside.empty());
  auto outside = gridmon::lint::analyze_source("src/gridmon/rgma/registry.cpp",
                                               src, Options{});
  ASSERT_EQ(outside.size(), 2u);
  EXPECT_EQ(outside[0].check, "store.wal-append-outside-txn");
  EXPECT_EQ(outside[1].check, "store.sync-in-hot-path");
}

// The zero-baseline contract, enforced in-process so plain `ctest` catches a
// regression even when nobody runs the `lint` target: every source file in
// src/gridmon analyzes clean, and every suppression in the tree carries a
// justification (bare ones would surface as lint.bare-suppression above).
TEST(LintGate, SrcGridmonIsCleanWithEmptyBaseline) {
  fs::path root(GRIDMON_LINT_SRC_DIR);
  ASSERT_TRUE(fs::exists(root)) << root;
  auto files = gridmon::lint::collect_sources(root.string());
  ASSERT_GT(files.size(), 50u) << "src/gridmon walk looks wrong";
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  std::size_t findings = 0;
  for (const std::string& f : files) {
    for (const Diagnostic& d : gridmon::lint::analyze_file(f, Options{})) {
      ADD_FAILURE() << d.file << ":" << d.line << ": " << d.message << " ["
                    << d.check << "]";
      ++findings;
    }
  }
  EXPECT_EQ(findings, 0u);
}
