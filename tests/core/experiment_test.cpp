#include "gridmon/core/experiment.hpp"

#include <gtest/gtest.h>

#include "gridmon/core/adapters.hpp"
#include "gridmon/core/scenarios.hpp"

namespace gridmon::core {
namespace {

TEST(ReplicateTest, AveragesAcrossSeeds) {
  std::vector<std::uint64_t> used;
  auto run_one = [&](std::uint64_t seed) {
    used.push_back(seed);
    SweepPoint p;
    p.x = 7;
    p.throughput = static_cast<double>(seed);
    p.response = 2.0 * static_cast<double>(seed);
    return p;
  };
  double stddev = -1;
  SweepPoint mean = replicate({1, 2, 3}, run_one, &stddev);
  EXPECT_EQ(used, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(mean.x, 7);
  EXPECT_DOUBLE_EQ(mean.throughput, 2.0);
  EXPECT_DOUBLE_EQ(mean.response, 4.0);
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(ReplicateTest, RealExperimentSeedsAgreeClosely) {
  auto run_one = [](std::uint64_t seed) {
    TestbedConfig tc;
    tc.seed = seed;
    Testbed tb(tc);
    GrisScenario scenario(tb, 10, true);
    UserWorkload w(tb, query_gris(*scenario.gris));
    w.spawn_users(50, tb.uc_names());
    tb.sampler().start();
    MeasureConfig mc;
    mc.warmup = 30;
    mc.duration = 90;
    return measure(tb, w, "lucky7", 50, mc);
  };
  double stddev = -1;
  SweepPoint mean = replicate({11, 22, 33}, run_one, &stddev);
  EXPECT_GT(mean.throughput, 8.0);
  // Different seeds perturb only think-time phases: spread is tiny.
  EXPECT_LT(stddev, 0.15 * mean.throughput);
}

TEST(MeasureTest, RefusedRateReported) {
  Testbed tb;
  // A 1-deep, very slow server refuses nearly everything.
  mds::GrisConfig config;
  config.backlog = 1;
  config.cache_serve_latency = 30.0;
  Testbed* tbp = &tb;
  GrisScenario scenario(tb, 2, true);
  scenario.gris = std::make_unique<mds::Gris>(
      tb.network(), tb.host("lucky7"), tb.nic("lucky7"), "slow",
      default_providers(2), config);
  UserWorkload w(*tbp, query_gris(*scenario.gris));
  w.spawn_users(30, tb.uc_names());
  tb.sampler().start();
  MeasureConfig mc;
  mc.warmup = 30;
  mc.duration = 120;
  SweepPoint p = measure(tb, w, "lucky7", 30, mc);
  EXPECT_GT(p.refused, 0.1);
}

}  // namespace
}  // namespace gridmon::core
