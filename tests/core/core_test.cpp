#include <gtest/gtest.h>

#include <sstream>

#include "gridmon/core/adapters.hpp"
#include "gridmon/core/experiment.hpp"
#include "gridmon/core/mapping.hpp"
#include "gridmon/core/scenarios.hpp"
#include "gridmon/core/testbed.hpp"
#include "gridmon/core/workload.hpp"

namespace gridmon::core {
namespace {

TEST(MappingTest, MatchesPaperTable1) {
  const auto& table = component_mapping();
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table[0].mds, "Information Provider");
  EXPECT_EQ(table[0].rgma, "Producer");
  EXPECT_EQ(table[0].hawkeye, "Module");
  EXPECT_EQ(table[1].mds, "GRIS");
  EXPECT_EQ(table[1].rgma, "ProducerServlet");
  EXPECT_EQ(table[1].hawkeye, "Agent");
  EXPECT_EQ(table[2].rgma, "None");
  EXPECT_EQ(table[3].mds, "GIIS");
  EXPECT_EQ(table[3].rgma, "Registry");
  EXPECT_EQ(table[3].hawkeye, "Manager");
  EXPECT_EQ(role_name(Role::DirectoryServer), "Directory Server");
}

TEST(TestbedTest, PaperTopology) {
  Testbed tb;
  EXPECT_EQ(tb.lucky_names().size(), 7u);  // lucky0,1,3..7 — no lucky2
  EXPECT_EQ(tb.uc_names().size(), 20u);
  EXPECT_EQ(tb.host("lucky0").cpu().cores(), 2);
  EXPECT_DOUBLE_EQ(tb.host("lucky0").cpu().speed_factor(), 1.133);
  EXPECT_EQ(tb.host("uc01").cpu().cores(), 1);
  // 15 fast + 5 slow UC clients.
  int fast = 0, slow = 0;
  for (const auto& name : tb.uc_names()) {
    double mhz = tb.host(name).cpu().speed_factor() * 1000;
    if (mhz > 1000) ++fast;
    else ++slow;
  }
  EXPECT_EQ(fast, 15);
  EXPECT_EQ(slow, 5);
  // Cross-site latency is WAN, intra-site is LAN.
  EXPECT_GT(tb.network().latency(tb.nic("uc01"), tb.nic("lucky0")), 0.001);
  EXPECT_LT(tb.network().latency(tb.nic("lucky0"), tb.nic("lucky1")), 0.001);
}

TEST(TestbedTest, NoLucky2) {
  Testbed tb;
  EXPECT_THROW(tb.host("lucky2"), std::invalid_argument);
}

TEST(WorkloadTest, SpawnCapsUsersPerHost) {
  Testbed tb;
  QueryFn noop = [](net::Interface&) -> sim::Task<QueryAttempt> {
    co_return QueryAttempt{true, 100};
  };
  UserWorkload w(tb, noop);
  EXPECT_THROW(w.spawn_users(51, {"uc01"}), std::invalid_argument);
  w.spawn_users(50, {"uc01"});
  EXPECT_EQ(w.users(), 50);
}

TEST(WorkloadTest, ThinkTimePacesQueries) {
  Testbed tb;
  // Instant service: each user completes ~1 query per think period.
  QueryFn instant = [](net::Interface&) -> sim::Task<QueryAttempt> {
    co_return QueryAttempt{true, 0};
  };
  WorkloadConfig config;
  config.client_cpu_per_query = 0;
  UserWorkload w(tb, instant, config);
  w.spawn_users(10, {"uc01", "uc02"});
  tb.sim().run(101.0);
  // 10 users x ~1 query/s for 100 s.
  double tput = w.throughput(1.0, 101.0);
  EXPECT_NEAR(tput, 10.0, 1.0);
  EXPECT_LT(w.mean_response(0, 101.0), 0.01);
}

TEST(WorkloadTest, ResponseTimeIncludesServiceDelay) {
  Testbed tb;
  QueryFn slow = [&tb](net::Interface&) -> sim::Task<QueryAttempt> {
    co_await tb.sim().delay(3.0);
    co_return QueryAttempt{true, 0};
  };
  WorkloadConfig config;
  config.client_cpu_per_query = 0;
  UserWorkload w(tb, slow, config);
  w.spawn_users(5, {"uc01"});
  tb.sim().run(50.0);
  EXPECT_NEAR(w.mean_response(0, 50.0), 3.0, 0.01);
  // Each user cycles every ~4 s.
  EXPECT_NEAR(w.throughput(4.0, 48.0), 5.0 / 4.0, 0.3);
}

TEST(WorkloadTest, RefusalsTriggerBackoffAndRetry) {
  Testbed tb;
  int attempts = 0;
  // Refuse the first two attempts of every query.
  QueryFn flaky = [&attempts](net::Interface&) -> sim::Task<QueryAttempt> {
    ++attempts;
    co_return QueryAttempt{attempts % 3 == 0, 0};
  };
  WorkloadConfig config;
  config.client_cpu_per_query = 0;
  UserWorkload w(tb, flaky, config);
  w.spawn_users(1, {"uc01"});
  tb.sim().run(60.0);
  EXPECT_GT(w.refused_attempts(), 2u);
  ASSERT_FALSE(w.completions().empty());
  // SYN retransmit schedule: 3 s then 6 s before the third attempt lands.
  EXPECT_GE(w.completions()[0].response_time, 8.0);  // 3 s + 6 s SYN retries
}

TEST(MeasureTest, CollectsAllFourMetrics) {
  Testbed tb;
  GrisScenario scenario(tb, 10, true);
  UserWorkload w(tb, query_gris(*scenario.gris));
  w.spawn_users(10, tb.uc_names());
  tb.sampler().start();
  MeasureConfig mc;
  mc.warmup = 60;
  mc.duration = 120;
  SweepPoint p = measure(tb, w, "lucky7", 10, mc);
  EXPECT_EQ(p.x, 10);
  EXPECT_GT(p.throughput, 0.5);
  EXPECT_GT(p.response, 1.0);   // client tool + cache validation latency
  EXPECT_LT(p.response, 10.0);
  EXPECT_GE(p.cpu, 0.0);
}

TEST(PrintFiguresTest, RendersAllMetricTables) {
  Series s;
  s.name = "MDS GRIS (cache)";
  s.points.push_back(SweepPoint{10, 2.3, 3.4, 0.2, 11});
  s.points.push_back(SweepPoint{100, 23.0, 3.5, 0.9, 40});
  std::ostringstream os;
  print_figures(os, 5, "Information Server", "No. of Users", {s});
  std::string out = os.str();
  EXPECT_NE(out.find("Figure 5"), std::string::npos);
  EXPECT_NE(out.find("Figure 8"), std::string::npos);
  EXPECT_NE(out.find("Throughput"), std::string::npos);
  EXPECT_NE(out.find("MDS GRIS (cache)"), std::string::npos);
  EXPECT_NE(out.find("CPU Load"), std::string::npos);
}

TEST(ScenarioTest, RgmaMediatedRouting) {
  Testbed tb;
  RgmaScenario scenario(tb, 10, RgmaScenario::Consumers::PerLuckyNode);
  EXPECT_EQ(scenario.consumer_servlets.size(), 7u);
  UserWorkload w(tb, scenario.mediated_query());
  w.spawn_users(7, tb.lucky_names());
  tb.sim().run(120.0);
  EXPECT_GT(w.completions().size(), 0u);
}

TEST(ScenarioTest, GiisPrefillWarmsCache) {
  Testbed tb;
  GiisScenario scenario(tb, 3, 10);
  scenario.prefill();
  EXPECT_GT(scenario.giis->entry_count(), 3u * 40u);
}

}  // namespace
}  // namespace gridmon::core
