/// FrontierWorkload golden-determinism tests: the sharded engine's
/// results must be byte-identical across shard counts (K=1 vs K=3) and
/// across reruns, per seed — the tentpole property of the sharded
/// conservative-lookahead engine (docs/SCALE.md).

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "gridmon/core/frontier.hpp"
#include "gridmon/core/scenario_spec.hpp"
#include "gridmon/core/scenarios.hpp"

using namespace gridmon;
using core::FrontierConfig;
using core::FrontierWorkload;

namespace {

/// One complete sharded run: fresh testbed, GRIS scenario, `users`
/// frontier users on K shards, one 10+30 s window. Returns the full
/// observable surface as text at round-trip precision: the metrics row,
/// the counters, and every completion.
std::string run_digest(int users, int shards, std::uint64_t seed,
                       int threads = 0, int gris_backlog = 0) {
  core::TestbedConfig tc;
  tc.seed = seed;
  core::Testbed tb(tc);
  core::ScenarioSpec spec;
  spec.service = core::ServiceKind::Gris;
  spec.gris_backlog = gris_backlog;
  auto scenario = core::make_scenario(tb, spec);
  scenario->prefill();
  FrontierConfig fc;
  fc.shards = shards;
  fc.threads = threads;
  fc.admission_port = scenario->server_port();
  fc.server_host = spec.server_host();
  FrontierWorkload fw(tb, scenario->query_fn(), fc);
  fw.spawn_users(users);
  tb.sampler().start();
  core::MetricsReport p =
      fw.measure_window(users, 10.0, 30.0, spec.server_host());

  std::ostringstream out;
  out.precision(17);
  core::write_csv_row(out, p, core::kMetricAll);
  out << "\nqueries=" << fw.total_queries()
      << " attempts=" << fw.total_attempts()
      << " refused=" << fw.refused_attempts()
      << " fast=" << fw.fast_refused()
      << " errors=" << fw.error_count()
      << " messages=" << fw.messages_delivered() << "\n";
  for (const auto& c : fw.merged_completions()) {
    out << c.t << ' ' << c.uid << ' ' << c.response_time << ' ' << c.bytes
        << ' ' << c.stale << '\n';
  }
  return out.str();
}

}  // namespace

/// K=1 and K=3 must produce identical bytes: same completions, same
/// float sums, same message counts modulo the shard column.
TEST(FrontierDeterminism, ShardCountDoesNotChangeResults) {
  for (std::uint64_t seed : {42ull, 7ull}) {
    std::string k1 = run_digest(300, 1, seed);
    std::string k3 = run_digest(300, 3, seed);
    // The metrics row's `shards` column necessarily differs; splice it
    // out before comparing (it is the last CSV column).
    auto normalize = [](std::string s) {
      auto nl = s.find('\n');
      auto comma = s.rfind(',', nl);
      return s.substr(0, comma) + s.substr(nl);
    };
    EXPECT_EQ(normalize(k1), normalize(k3)) << "seed " << seed;
    EXPECT_NE(k1.substr(0, k1.find('\n')), "");
  }
}

TEST(FrontierDeterminism, RerunIsByteIdentical) {
  EXPECT_EQ(run_digest(200, 2, 42), run_digest(200, 2, 42));
}

TEST(FrontierDeterminism, SeedsDiverge) {
  EXPECT_NE(run_digest(200, 2, 42), run_digest(200, 2, 43));
}

TEST(FrontierDeterminism, ThreadedMatchesSerial) {
  EXPECT_EQ(run_digest(200, 4, 42, 0), run_digest(200, 4, 42, 3));
}

/// A tiny listen backlog saturates the port, so the batched refusal
/// fast path (frontier.cpp flush_requests) carries most attempts; its
/// cohorts must be shard-count-independent too.
TEST(FrontierDeterminism, SaturatedFastPathIsShardInvariant) {
  std::string k1 = run_digest(300, 1, 42, 0, /*gris_backlog=*/4);
  std::string k3 = run_digest(300, 3, 42, 0, /*gris_backlog=*/4);
  auto normalize = [](std::string s) {
    auto nl = s.find('\n');
    auto comma = s.rfind(',', nl);
    return s.substr(0, comma) + s.substr(nl);
  };
  EXPECT_EQ(normalize(k1), normalize(k3));
  // The run must actually have exercised the batched path.
  EXPECT_EQ(k1.find(" fast=0 "), std::string::npos)
      << "expected fast-path refusals, digest: "
      << k1.substr(0, k1.find('\n', k1.find('\n') + 1));
}

TEST(FrontierWorkloadApi, RejectsBadConfigs) {
  core::Testbed tb;
  core::ScenarioSpec spec;
  spec.service = core::ServiceKind::Gris;
  auto scenario = core::make_scenario(tb, spec);
  FrontierConfig zero;
  zero.shards = 0;
  EXPECT_THROW(FrontierWorkload(tb, scenario->query_fn(), zero),
               std::invalid_argument);
  FrontierConfig ok;
  FrontierWorkload fw(tb, scenario->query_fn(), ok);
  EXPECT_THROW(fw.spawn_users(0), std::invalid_argument);
  // 20 UC hosts x 50 users is the default capacity.
  EXPECT_THROW(fw.spawn_users(1001), std::invalid_argument);
  fw.spawn_users(100);
  EXPECT_THROW(fw.spawn_users(100), std::logic_error);
  EXPECT_EQ(fw.users(), 100);
  EXPECT_GT(fw.lookahead(), 0.0);
}
