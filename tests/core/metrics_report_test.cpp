/// The typed metrics row and its schema-driven serializer: the core
/// column group must reproduce the historical bench CSV layout
/// byte-for-byte, groups must append in a fixed order, and the JSON
/// emission must round-trip doubles.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gridmon/core/metrics_report.hpp"

namespace gridmon::core {
namespace {

MetricsReport sample() {
  MetricsReport p;
  p.x = 100;
  p.throughput = 23.5;
  p.response = 3.25;
  p.load1 = 0.304;
  p.cpu = 11.2;
  p.refused = 2;
  p.availability = 0.75;
  p.error_rate = 0.5;
  p.stale_frac = 0.125;
  p.recovery = 12;
  p.recovery_complete = 30;
  p.goodput = 20;
  p.shed_rate = 1.5;
  p.retry_amp = 1.25;
  p.events = 1e6;
  p.wall_clock_s = 2.5;
  p.events_per_sec = 4e5;
  p.peak_rss_kb = 1024;
  p.shards = 8;
  return p;
}

TEST(MetricsReportTest, CoreHeaderMatchesHistoricalBenchLayout) {
  const std::vector<std::string> prefix{"bench", "series"};
  EXPECT_EQ(csv_header(kMetricCore, prefix),
            "bench,series,x,throughput,response,load1,cpu,refused_per_sec");
}

TEST(MetricsReportTest, CoreRowMatchesHistoricalBenchLayout) {
  // The pre-redesign emitters wrote `os << p.x << ',' << ...` with the
  // stream's default formatting; the serializer must keep those bytes.
  MetricsReport p = sample();
  std::ostringstream expected;
  expected << "b,s," << p.x << ',' << p.throughput << ',' << p.response << ','
           << p.load1 << ',' << p.cpu << ',' << p.refused;
  std::ostringstream got;
  const std::vector<std::string> prefix{"b", "s"};
  write_csv_row(got, p, kMetricCore, prefix);
  EXPECT_EQ(got.str(), expected.str());
}

TEST(MetricsReportTest, GroupsAppendInFixedOrder) {
  EXPECT_EQ(csv_header(kMetricCore | kMetricHealth | kMetricRecovery),
            "x,throughput,response,load1,cpu,refused_per_sec,"
            "availability,error_rate,stale_frac,"
            "recovery_s,recovery_complete_s");
  EXPECT_EQ(csv_header(kMetricEngine),
            "events,wall_clock_s,events_per_sec,peak_rss_kb,shards");
}

TEST(MetricsReportTest, SchemaCoversEveryFieldExactlyOnce) {
  // Pointers-to-member have no operator<, so dedup with a linear scan.
  std::vector<double MetricsReport::*> seen;
  std::set<std::string> names;
  unsigned groups = 0;
  for (const auto& col : metric_columns()) {
    EXPECT_EQ(std::find(seen.begin(), seen.end(), col.field), seen.end())
        << col.name << " duplicated";
    seen.push_back(col.field);
    EXPECT_TRUE(names.insert(col.name).second) << col.name << " duplicated";
    groups |= col.group;
  }
  EXPECT_EQ(groups, kMetricAll & ~0u);
  // 19 doubles in MetricsReport; a new field must come with a schema row.
  EXPECT_EQ(metric_columns().size(), 19u);
  EXPECT_EQ(metric_columns().size() * sizeof(double), sizeof(MetricsReport));
}

TEST(MetricsReportTest, RowRespectsStreamPrecision) {
  MetricsReport p;
  p.throughput = 23.333333333333332;
  std::ostringstream os;
  os.precision(17);
  write_csv_row(os, p, kMetricCore);
  EXPECT_NE(os.str().find("23.333333333333332"), std::string::npos);
}

TEST(MetricsReportTest, JsonFieldsRoundTrip) {
  MetricsReport p = sample();
  p.response = 1.0 / 3.0;
  std::ostringstream os;
  write_json_fields(os, p, kMetricCore | kMetricEngine);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"throughput\": 23.5"), std::string::npos);
  EXPECT_NE(json.find("\"response\": 0.33333333333333331"),
            std::string::npos);
  EXPECT_NE(json.find("\"shards\": 8"), std::string::npos);
  EXPECT_EQ(json.find("availability"), std::string::npos);
}

}  // namespace
}  // namespace gridmon::core
