#include "gridmon/core/scenario_spec.hpp"

#include <gtest/gtest.h>

#include "gridmon/core/scenarios.hpp"
#include "gridmon/core/testbed.hpp"

namespace gridmon::core {
namespace {

TEST(IniParseTest, SectionsKeysValues) {
  auto ini = parse_ini(
      "# comment\n"
      "[Experiment]\n"
      "Service = gris   ; inline comment\n"
      "users=1, 2,3\n"
      "\n"
      "[other]\n"
      "k = v\n");
  ASSERT_TRUE(ini.contains("experiment"));
  EXPECT_EQ(ini["experiment"]["service"], "gris");
  EXPECT_EQ(ini["experiment"]["users"], "1, 2,3");
  EXPECT_EQ(ini["other"]["k"], "v");
}

TEST(IniParseTest, Errors) {
  EXPECT_THROW(parse_ini("key = before section\n"), ConfigError);
  EXPECT_THROW(parse_ini("[unterminated\n"), ConfigError);
  EXPECT_THROW(parse_ini("[s]\nno equals here\n"), ConfigError);
  EXPECT_THROW(parse_ini("[s]\n= empty key\n"), ConfigError);
}

TEST(ScenarioSpecTest, FullExample) {
  auto spec = parse_scenario_spec(
      "[experiment]\n"
      "service = gris-nocache\n"
      "users = 10, 50, 100\n"
      "collectors = 40\n"
      "clients = lucky\n"
      "warmup = 30\n"
      "duration = 120\n"
      "seed = 7\n");
  EXPECT_EQ(spec.service, ServiceKind::GrisNocache);
  EXPECT_EQ(spec.users, (std::vector<int>{10, 50, 100}));
  EXPECT_EQ(spec.collectors, 40);
  EXPECT_TRUE(spec.lucky_clients);
  EXPECT_DOUBLE_EQ(spec.warmup, 30);
  EXPECT_DOUBLE_EQ(spec.duration, 120);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.server_host(), "lucky7");
  EXPECT_EQ(spec.service_name(), "MDS GRIS (nocache)");
}

TEST(ScenarioSpecTest, DefaultsApply) {
  auto spec = parse_scenario_spec("[experiment]\nservice = manager\n");
  EXPECT_EQ(spec.service, ServiceKind::Manager);
  EXPECT_EQ(spec.users, std::vector<int>{10});
  EXPECT_EQ(spec.collectors, 10);
  EXPECT_FALSE(spec.lucky_clients);
  EXPECT_DOUBLE_EQ(spec.duration, 600);
  EXPECT_EQ(spec.server_host(), "lucky3");
}

TEST(ScenarioSpecTest, EveryServiceParses) {
  const std::pair<const char*, std::string> cases[] = {
      {"gris", "lucky7"},           {"gris-nocache", "lucky7"},
      {"giis", "lucky0"},           {"agent", "lucky4"},
      {"manager", "lucky3"},        {"registry", "lucky1"},
      {"rgma-mediated", "lucky3"},  {"rgma-direct", "lucky3"},
      {"rgma-standalone", "lucky3"}, {"giis-aggregate", "lucky0"},
      {"manager-aggregate", "lucky3"}, {"hierarchy", "lucky0"},
      {"rgma-composite", "lucky3"}, {"stream-fanout", "lucky3"},
      {"rgma-replicated", "lucky3"},
  };
  for (const auto& [name, host] : cases) {
    auto spec = parse_scenario_spec(
        std::string("[experiment]\nservice = ") + name + "\n");
    EXPECT_EQ(spec.server_host(), host) << name;
  }
}

TEST(ScenarioSpecTest, TopologyAndQueryKeys) {
  auto spec = parse_scenario_spec(
      "[experiment]\n"
      "service = hierarchy\n"
      "query = site-routed\n"
      "gris_count = 120\n"
      "two_level = true\n"
      "cachettl = 45\n");
  EXPECT_EQ(spec.service, ServiceKind::Hierarchy);
  EXPECT_EQ(spec.query, QueryVariant::SiteRouted);
  EXPECT_EQ(spec.gris_count, 120);
  EXPECT_TRUE(spec.two_level);
  EXPECT_DOUBLE_EQ(spec.cachettl, 45);
  // Two-level metrics are reported for one site server.
  EXPECT_EQ(spec.server_host(), "lucky1");

  auto rep = parse_scenario_spec(
      "[experiment]\n"
      "service = rgma-replicated\n"
      "replicas = 4\n"
      "pool_size = 16\n"
      "table = memload\n");
  EXPECT_EQ(rep.replicas, 4);
  EXPECT_EQ(rep.pool_size, 16);
  EXPECT_EQ(rep.table, "memload");
}

TEST(ScenarioSpecTest, FaultSection) {
  auto spec = parse_scenario_spec(
      "[experiment]\n"
      "service = gris\n"
      "[faults]\n"
      "crash = server, 300, 360\n"
      "query_deadline = 25\n"
      "max_attempts = 5\n");
  EXPECT_FALSE(spec.faults.empty());
  EXPECT_DOUBLE_EQ(spec.query_deadline, 25);
  EXPECT_EQ(spec.max_attempts, 5);
}

TEST(ScenarioSpecTest, StoreSection) {
  auto spec = parse_scenario_spec(
      "[experiment]\n"
      "service = registry\n"
      "[store]\n"
      "mode = wal+snapshot\n"
      "fsync_latency = 0.02\n"
      "write_bandwidth = 10e6\n"
      "group_commit_window = 0.01\n"
      "snapshot_interval = 30\n"
      "replay_cpu_per_record = 1e-4\n");
  EXPECT_EQ(spec.store.mode, store::DurabilityMode::WalSnapshot);
  EXPECT_TRUE(spec.store.enabled());
  EXPECT_DOUBLE_EQ(spec.store.fsync_latency, 0.02);
  EXPECT_DOUBLE_EQ(spec.store.write_bandwidth, 10e6);
  EXPECT_DOUBLE_EQ(spec.store.group_commit_window, 0.01);
  EXPECT_DOUBLE_EQ(spec.store.snapshot_interval, 30);
  EXPECT_DOUBLE_EQ(spec.store.replay_cpu_per_record, 1e-4);

  // Omitted section = the paper's soft state.
  auto off = parse_scenario_spec("[experiment]\nservice = registry\n");
  EXPECT_EQ(off.store.mode, store::DurabilityMode::Volatile);
  EXPECT_FALSE(off.store.enabled());

  // mode = volatile is accepted anywhere (it is the no-op).
  auto vol = parse_scenario_spec(
      "[experiment]\nservice = gris\n[store]\nmode = volatile\n");
  EXPECT_FALSE(vol.store.enabled());
}

TEST(ScenarioSpecTest, StoreSectionRejections) {
  // Unknown key, bad mode, and durability on a service with no durable
  // state are all config errors.
  EXPECT_THROW(parse_scenario_spec(
                   "[experiment]\nservice = registry\n[store]\nfrob = 1\n"),
               ConfigError);
  EXPECT_THROW(
      parse_scenario_spec(
          "[experiment]\nservice = registry\n[store]\nmode = paranoid\n"),
      ConfigError);
  EXPECT_THROW(parse_scenario_spec(
                   "[experiment]\nservice = gris\n[store]\nmode = wal\n"),
               ConfigError);
}

TEST(MakeScenarioTest, StoreModeReachesServices) {
  ScenarioSpec spec;
  spec.service = ServiceKind::Registry;
  spec.store.mode = store::DurabilityMode::Wal;
  Testbed tb;
  auto scenario = make_scenario(tb, spec);
  EXPECT_NE(scenario->store_log(), nullptr);
  EXPECT_EQ(scenario->store_log()->config().mode, store::DurabilityMode::Wal);

  ScenarioSpec vol;
  vol.service = ServiceKind::Registry;
  Testbed tb2;
  auto volatile_scenario = make_scenario(tb2, vol);
  EXPECT_EQ(volatile_scenario->store_log(), nullptr);
}

TEST(ScenarioSpecTest, Rejections) {
  EXPECT_THROW(parse_scenario_spec("[other]\nk = v\n"), ConfigError);
  EXPECT_THROW(
      parse_scenario_spec("[experiment]\nservice = frobnicator\n"),
      ConfigError);
  EXPECT_THROW(parse_scenario_spec("[experiment]\nsrevice = gris\n"),
               ConfigError);  // typo caught
  EXPECT_THROW(parse_scenario_spec("[experiment]\nusers = ten\n"),
               ConfigError);
  EXPECT_THROW(parse_scenario_spec("[experiment]\nusers = -5\n"),
               ConfigError);
  EXPECT_THROW(parse_scenario_spec("[experiment]\nclients = mars\n"),
               ConfigError);
  EXPECT_THROW(
      parse_scenario_spec("[experiment]\n[extra]\nk = v\n"), ConfigError);
  EXPECT_THROW(parse_scenario_spec(
                   "[experiment]\nservice = gris\n[faults]\nfrob = 1\n"),
               ConfigError);
}

TEST(MakeScenarioTest, BuildsEveryServiceKind) {
  const ServiceKind kinds[] = {
      ServiceKind::Gris,          ServiceKind::GrisNocache,
      ServiceKind::Giis,          ServiceKind::Agent,
      ServiceKind::Manager,       ServiceKind::Registry,
      ServiceKind::RgmaMediated,  ServiceKind::RgmaDirect,
      ServiceKind::RgmaStandalone, ServiceKind::GiisAggregate,
      ServiceKind::ManagerAggregate, ServiceKind::Hierarchy,
      ServiceKind::RgmaComposite, ServiceKind::StreamFanout,
      ServiceKind::RgmaReplicated,
  };
  for (ServiceKind kind : kinds) {
    ScenarioSpec spec;
    spec.service = kind;
    spec.gris_count = 6;  // keep the hierarchy/aggregate builds small
    spec.machines = 5;
    spec.sources = 3;
    spec.subscribers = 4;
    Testbed tb;
    auto scenario = make_scenario(tb, spec);
    ASSERT_NE(scenario, nullptr) << static_cast<int>(kind);
    // Every pull service binds its canonical query; the push fan-out has
    // none to bind.
    if (kind == ServiceKind::StreamFanout) {
      EXPECT_FALSE(scenario->query_fn());
    } else {
      EXPECT_TRUE(scenario->query_fn()) << static_cast<int>(kind);
    }
    scenario->prefill();
  }
}

TEST(MakeScenarioTest, RejectsImpossibleQueryVariant) {
  ScenarioSpec spec;
  spec.service = ServiceKind::Agent;
  spec.query = QueryVariant::ManagerDump;
  Testbed tb;
  EXPECT_THROW(make_scenario(tb, spec), ConfigError);
}

TEST(MakeScenarioTest, QueryVariantSelectsManagerQuery) {
  ScenarioSpec spec;
  spec.service = ServiceKind::Manager;
  spec.query = QueryVariant::ManagerConstraint;
  spec.constraint = "CpuLoad > 1";
  Testbed tb;
  auto scenario = make_scenario(tb, spec);
  EXPECT_TRUE(scenario->query_fn());
}

}  // namespace
}  // namespace gridmon::core
