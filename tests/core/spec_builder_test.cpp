/// SpecBuilder: validating ScenarioSpec construction. The point of the
/// API is that *every* problem is reported at once — setters and the
/// INI path record errors instead of throwing, and build() raises one
/// ConfigError listing them all.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gridmon/core/scenario_spec.hpp"

namespace gridmon::core {
namespace {

TEST(SpecBuilderTest, CleanBuildMatchesDirectConstruction) {
  ScenarioSpec spec = ScenarioSpec::build()
                          .service(ServiceKind::GrisNocache)
                          .collectors(40)
                          .users({10, 50, 100})
                          .lucky_clients(true)
                          .window(30, 120)
                          .seed(7)
                          .build();
  EXPECT_EQ(spec.service, ServiceKind::GrisNocache);
  EXPECT_EQ(spec.collectors, 40);
  EXPECT_EQ(spec.users, (std::vector<int>{10, 50, 100}));
  EXPECT_TRUE(spec.lucky_clients);
  EXPECT_DOUBLE_EQ(spec.warmup, 30);
  EXPECT_DOUBLE_EQ(spec.duration, 120);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.engine.shards, 0);  // legacy engine by default
}

TEST(SpecBuilderTest, CollectsEveryError) {
  SpecBuilder b;
  b.users({});            // empty sweep
  b.collectors(0);        // must be positive
  b.window(-1, 0);        // negative warmup, zero duration
  b.set("experiment", "service", "frobnicator");  // unknown service
  b.set("experiment", "srevice", "gris");         // typo'd key
  try {
    b.build();
    FAIL() << "build() should have thrown";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("6 errors"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown service 'frobnicator'"), std::string::npos);
    EXPECT_NE(msg.find("unknown key 'srevice'"), std::string::npos);
    EXPECT_NE(msg.find("at least one sweep point"), std::string::npos);
    EXPECT_NE(msg.find("collectors must be positive"), std::string::npos);
    EXPECT_NE(msg.find("warmup must be non-negative"), std::string::npos);
    EXPECT_NE(msg.find("duration must be positive"), std::string::npos);
  }
}

TEST(SpecBuilderTest, IniPathCollectsAllBadKeys) {
  // First-error parsing would stop at the first bad key; the builder
  // reports all three.
  const std::string ini =
      "[experiment]\n"
      "service = gris\n"
      "users = ten\n"
      "collectors = -3\n"
      "[store]\n"
      "mode = paranoid\n";
  try {
    parse_scenario_spec(ini);
    FAIL() << "parse_scenario_spec should have thrown";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bad integer 'ten'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bad integer '-3'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown durability mode 'paranoid'"),
              std::string::npos)
        << msg;
  }
}

TEST(SpecBuilderTest, EngineSectionParses) {
  ScenarioSpec spec = parse_scenario_spec(
      "[experiment]\n"
      "service = gris\n"
      "[engine]\n"
      "shards = 8\n"
      "threads = 2\n"
      "lookahead = 0.005\n");
  EXPECT_EQ(spec.engine.shards, 8);
  EXPECT_EQ(spec.engine.threads, 2);
  EXPECT_DOUBLE_EQ(spec.engine.lookahead, 0.005);
  EXPECT_TRUE(spec.engine.sharded());
}

TEST(SpecBuilderTest, ShardedEngineRejectsUnsupportedCombinations) {
  // Push-only services have no pull query for the sharded frontier.
  EXPECT_THROW(ScenarioSpec::build()
                   .service(ServiceKind::StreamFanout)
                   .shards(4)
                   .build(),
               ConfigError);
  // Fault injection is a legacy-engine feature for now.
  EXPECT_THROW(parse_scenario_spec("[experiment]\nservice = gris\n"
                                   "[engine]\nshards = 4\n"
                                   "[faults]\ncrash = server, 30, 60\n"),
               ConfigError);
  fault::FaultPlan plan;
  plan.crash("server", 30, 60);
  EXPECT_THROW(
      ScenarioSpec::build().faults(std::move(plan)).shards(2).build(),
      ConfigError);
  // And so is the resilience layer.
  resilience::Config res;
  res.enabled = true;
  EXPECT_THROW(
      ScenarioSpec::build().resilience(res).shards(2).build(),
      ConfigError);
  // The frontier clients retry forever from the UC pool: the legacy
  // abandonment knobs and the lucky-client placement are rejected.
  EXPECT_THROW(ScenarioSpec::build().lucky_clients(true).shards(2).build(),
               ConfigError);
  EXPECT_THROW(ScenarioSpec::build().query_deadline(25).shards(2).build(),
               ConfigError);
  EXPECT_THROW(ScenarioSpec::build().max_attempts(5).shards(2).build(),
               ConfigError);
  // All knobs stay legal on the legacy engine.
  EXPECT_NO_THROW(
      ScenarioSpec::build().lucky_clients(true).query_deadline(25).build());
}

TEST(SpecBuilderTest, SeededFromExistingSpecPreset) {
  ScenarioSpec preset;
  preset.service = ServiceKind::Agent;
  preset.collectors = 11;
  ScenarioSpec spec = SpecBuilder(preset).seed(9).build();
  EXPECT_EQ(spec.service, ServiceKind::Agent);
  EXPECT_EQ(spec.collectors, 11);
  EXPECT_EQ(spec.seed, 9u);
}

TEST(SpecBuilderTest, WhereTagPrefixesIniErrors) {
  SpecBuilder b;
  b.set("experiment", "users", "zero", "line 3");
  try {
    b.build();
    FAIL() << "build() should have thrown";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3: [experiment] users:"),
              std::string::npos)
        << e.what();
  }
}

TEST(SpecBuilderTest, StoreValidationStillApplies) {
  store::StoreConfig wal;
  wal.mode = store::DurabilityMode::Wal;
  EXPECT_THROW(ScenarioSpec::build()
                   .service(ServiceKind::Gris)
                   .store(wal)
                   .build(),
               ConfigError);
  EXPECT_NO_THROW(ScenarioSpec::build()
                      .service(ServiceKind::Registry)
                      .store(wal)
                      .build());
}

}  // namespace
}  // namespace gridmon::core
