#include "gridmon/core/open_workload.hpp"

#include <gtest/gtest.h>

#include "gridmon/core/adapters.hpp"
#include "gridmon/core/scenarios.hpp"

namespace gridmon::core {
namespace {

TEST(OpenWorkloadTest, ArrivalRateIsHonored) {
  Testbed tb;
  QueryFn instant = [](net::Interface&) -> sim::Task<QueryAttempt> {
    co_return QueryAttempt{true, 0};
  };
  OpenWorkloadConfig config;
  config.arrival_rate = 20.0;
  OpenWorkload w(tb, instant, config);
  w.start(tb.uc_names());
  tb.sim().run(200.0);
  EXPECT_NEAR(static_cast<double>(w.arrivals()) / 200.0, 20.0, 2.0);
  EXPECT_NEAR(w.throughput(0, 200), 20.0, 2.0);
}

TEST(OpenWorkloadTest, ResponseTimeMeasured) {
  Testbed tb;
  QueryFn slow = [&tb](net::Interface&) -> sim::Task<QueryAttempt> {
    co_await tb.sim().delay(2.0);
    co_return QueryAttempt{true, 0};
  };
  OpenWorkloadConfig config;
  config.arrival_rate = 3.0;
  OpenWorkload w(tb, slow, config);
  w.start(tb.uc_names());
  tb.sim().run(100.0);
  EXPECT_NEAR(w.mean_response(0, 100), 2.0, 0.01);
  // Open loop: ~6 queries outstanding on average never throttles arrivals.
  EXPECT_GT(w.arrivals(), 250u);
}

TEST(OpenWorkloadTest, GivesUpAfterMaxRetries) {
  Testbed tb;
  QueryFn always_refused = [](net::Interface&) -> sim::Task<QueryAttempt> {
    co_return QueryAttempt{false, 0};
  };
  OpenWorkloadConfig config;
  config.arrival_rate = 1.0;
  config.max_retries = 2;
  config.retry_schedule = {0.5, 0.5};
  OpenWorkload w(tb, always_refused, config);
  w.start(tb.uc_names());
  tb.sim().run(60.0);
  EXPECT_GT(w.failures(), 30u);
  EXPECT_TRUE(w.completions().empty());
  // At the cutoff at most the newest arrival can still be mid-retry.
  EXPECT_LE(w.outstanding(), 1);
}

TEST(OpenWorkloadTest, OverloadGrowsOutstandingQueue) {
  // Offered load ~3x a single-threaded server's capacity: the in-flight
  // count must grow roughly linearly with time (no self-throttling).
  Testbed tb;
  sim::Resource server(tb.sim(), 1);
  QueryFn one_at_a_time = [&](net::Interface&) -> sim::Task<QueryAttempt> {
    auto lease = co_await server.acquire();
    co_await tb.sim().delay(1.0);
    co_return QueryAttempt{true, 0};
  };
  OpenWorkloadConfig config;
  config.arrival_rate = 3.0;
  OpenWorkload w(tb, one_at_a_time, config);
  w.start(tb.uc_names());
  tb.sim().run(60.0);
  int at60 = w.outstanding();
  tb.sim().run(120.0);
  int at120 = w.outstanding();
  EXPECT_GT(at60, 60);           // ~2 excess arrivals/s pile up
  EXPECT_GT(at120, at60 + 60);   // and keep piling
}

}  // namespace
}  // namespace gridmon::core
