#include <gtest/gtest.h>

#include "gridmon/rdbms/database.hpp"

namespace gridmon::rdbms {
namespace {

Database grid_db() {
  Database db;
  db.execute(
      "CREATE TABLE cpuload (host VARCHAR(64), site TEXT, load REAL, "
      "ts INT)");
  db.execute(
      "INSERT INTO cpuload VALUES "
      "('lucky0', 'anl', 0.5, 100), "
      "('lucky1', 'anl', 1.5, 100), "
      "('lucky3', 'anl', 0.9, 110), "
      "('ucgrid1', 'uc', 2.5, 120), "
      "('ucgrid2', 'uc', 0.1, 130)");
  return db;
}

TEST(SqlTest, CreateInsertSelectStar) {
  auto db = grid_db();
  auto r = db.execute("SELECT * FROM cpuload");
  EXPECT_EQ(r.columns.size(), 4u);
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows_examined, 5u);
}

TEST(SqlTest, SelectProjection) {
  auto db = grid_db();
  auto r = db.execute("SELECT host, load FROM cpuload WHERE site = 'uc'");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"host", "load"}));
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST(SqlTest, WhereComparisons) {
  auto db = grid_db();
  EXPECT_EQ(db.execute("SELECT * FROM cpuload WHERE load > 1.0").rows.size(),
            2u);
  EXPECT_EQ(db.execute("SELECT * FROM cpuload WHERE load <= 0.5").rows.size(),
            2u);
  EXPECT_EQ(
      db.execute("SELECT * FROM cpuload WHERE host != 'lucky0'").rows.size(),
      4u);
  EXPECT_EQ(
      db.execute("SELECT * FROM cpuload WHERE host <> 'lucky0'").rows.size(),
      4u);
}

TEST(SqlTest, WhereBooleanComposition) {
  auto db = grid_db();
  auto r = db.execute(
      "SELECT host FROM cpuload WHERE site = 'anl' AND load < 1.0");
  EXPECT_EQ(r.rows.size(), 2u);
  r = db.execute(
      "SELECT host FROM cpuload WHERE load > 2.0 OR load < 0.2");
  EXPECT_EQ(r.rows.size(), 2u);
  r = db.execute("SELECT host FROM cpuload WHERE NOT site = 'anl'");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST(SqlTest, LikePatterns) {
  auto db = grid_db();
  EXPECT_EQ(
      db.execute("SELECT * FROM cpuload WHERE host LIKE 'lucky%'").rows.size(),
      3u);
  EXPECT_EQ(
      db.execute("SELECT * FROM cpuload WHERE host LIKE '%grid%'").rows.size(),
      2u);
  EXPECT_EQ(
      db.execute("SELECT * FROM cpuload WHERE host LIKE 'lucky_'").rows.size(),
      3u);
  EXPECT_EQ(db.execute("SELECT * FROM cpuload WHERE host NOT LIKE 'lucky%'")
                .rows.size(),
            2u);
  // Case-insensitive, MySQL-style.
  EXPECT_EQ(
      db.execute("SELECT * FROM cpuload WHERE host LIKE 'LUCKY%'").rows.size(),
      3u);
}

TEST(SqlTest, InList) {
  auto db = grid_db();
  auto r = db.execute(
      "SELECT * FROM cpuload WHERE host IN ('lucky0', 'ucgrid2')");
  EXPECT_EQ(r.rows.size(), 2u);
  r = db.execute(
      "SELECT * FROM cpuload WHERE host NOT IN ('lucky0', 'ucgrid2')");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST(SqlTest, OrderByAndLimit) {
  auto db = grid_db();
  auto r = db.execute("SELECT host FROM cpuload ORDER BY load DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0], Value::text("ucgrid1"));
  EXPECT_EQ(r.rows[1][0], Value::text("lucky1"));
  r = db.execute("SELECT host FROM cpuload ORDER BY load ASC LIMIT 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::text("ucgrid2"));
}

TEST(SqlTest, NullSemantics) {
  Database db;
  db.execute("CREATE TABLE t (a INT, b TEXT)");
  db.execute("INSERT INTO t VALUES (1, 'x'), (NULL, 'y'), (3, NULL)");
  // NULL never matches a comparison.
  EXPECT_EQ(db.execute("SELECT * FROM t WHERE a > 0").rows.size(), 2u);
  EXPECT_EQ(db.execute("SELECT * FROM t WHERE a = NULL").rows.size(), 0u);
  EXPECT_EQ(db.execute("SELECT * FROM t WHERE a IS NULL").rows.size(), 1u);
  EXPECT_EQ(db.execute("SELECT * FROM t WHERE a IS NOT NULL").rows.size(),
            2u);
  // Kleene: unknown OR true = true.
  EXPECT_EQ(db.execute("SELECT * FROM t WHERE a > 0 OR b = 'y'").rows.size(),
            3u);
}

TEST(SqlTest, UpdateRows) {
  auto db = grid_db();
  auto r = db.execute("UPDATE cpuload SET load = 0.0 WHERE site = 'anl'");
  EXPECT_EQ(r.affected, 3u);
  EXPECT_EQ(db.execute("SELECT * FROM cpuload WHERE load = 0.0").rows.size(),
            3u);
  // Expression referencing the row's own columns.
  db.execute("UPDATE cpuload SET load = load + 1 WHERE host = 'ucgrid1'");
  auto check = db.execute("SELECT load FROM cpuload WHERE host = 'ucgrid1'");
  ASSERT_EQ(check.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(check.rows[0][0].as_number(), 3.5);
}

TEST(SqlTest, DeleteRows) {
  auto db = grid_db();
  auto r = db.execute("DELETE FROM cpuload WHERE site = 'uc'");
  EXPECT_EQ(r.affected, 2u);
  EXPECT_EQ(db.execute("SELECT * FROM cpuload").rows.size(), 3u);
  r = db.execute("DELETE FROM cpuload");
  EXPECT_EQ(r.affected, 3u);
  EXPECT_EQ(db.execute("SELECT * FROM cpuload").rows.size(), 0u);
}

TEST(SqlTest, InsertWithExplicitColumns) {
  auto db = grid_db();
  db.execute("INSERT INTO cpuload (host, load) VALUES ('partial', 9.9)");
  auto r = db.execute("SELECT site, ts FROM cpuload WHERE host = 'partial'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST(SqlTest, CreateIndexAndDrop) {
  auto db = grid_db();
  db.execute("CREATE INDEX ON cpuload (host)");
  EXPECT_TRUE(db.table("cpuload").has_index_on("host"));
  db.execute("CREATE INDEX idx_name ON cpuload (site)");
  EXPECT_TRUE(db.table("cpuload").has_index_on("site"));
  db.execute("DROP TABLE cpuload");
  EXPECT_FALSE(db.has_table("cpuload"));
  db.execute("DROP TABLE IF EXISTS cpuload");  // no throw
  EXPECT_THROW(db.execute("DROP TABLE cpuload"), SqlError);
}

TEST(SqlTest, TableNamesCaseInsensitive) {
  auto db = grid_db();
  EXPECT_EQ(db.execute("SELECT * FROM CPULOAD").rows.size(), 5u);
  EXPECT_TRUE(db.has_table("CpuLoad"));
}

TEST(SqlTest, StringEscapes) {
  Database db;
  db.execute("CREATE TABLE t (s TEXT)");
  db.execute("INSERT INTO t VALUES ('o''brien')");
  auto r = db.execute("SELECT * FROM t WHERE s = 'o''brien'");
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST(SqlTest, ArithmeticInSelectViaWhere) {
  auto db = grid_db();
  auto r = db.execute("SELECT host FROM cpuload WHERE load * 2 > 2.9");
  EXPECT_EQ(r.rows.size(), 2u);
  r = db.execute("SELECT host FROM cpuload WHERE ts - 100 >= 20");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST(SqlTest, ParseErrors) {
  Database db;
  EXPECT_THROW(db.execute("SELEC * FROM x"), SqlError);
  EXPECT_THROW(db.execute("SELECT FROM x"), SqlError);
  EXPECT_THROW(db.execute("SELECT * FROM"), SqlError);
  EXPECT_THROW(db.execute("CREATE TABLE t ()"), SqlError);
  EXPECT_THROW(db.execute("INSERT INTO t VALUES (1"), SqlError);
  EXPECT_THROW(db.execute("SELECT * FROM t WHERE"), SqlError);
  EXPECT_THROW(db.execute("SELECT * FROM t LIMIT x"), SqlError);
}

TEST(SqlTest, RuntimeErrors) {
  auto db = grid_db();
  EXPECT_THROW(db.execute("SELECT nope FROM cpuload"), SqlError);
  EXPECT_THROW(db.execute("SELECT * FROM nothere"), SqlError);
  EXPECT_THROW(db.execute("SELECT * FROM cpuload WHERE nocol = 1"), SqlError);
  EXPECT_THROW(db.execute("CREATE TABLE cpuload (x INT)"), SqlError);
}

TEST(SqlTest, SemicolonTolerated) {
  auto db = grid_db();
  EXPECT_EQ(db.execute("SELECT * FROM cpuload;").rows.size(), 5u);
}

TEST(SqlTest, WireBytesGrowsWithResult) {
  auto db = grid_db();
  auto all = db.execute("SELECT * FROM cpuload");
  auto one = db.execute("SELECT * FROM cpuload LIMIT 1");
  EXPECT_GT(all.wire_bytes(), one.wire_bytes());
}

TEST(SqlExprTest, StandaloneExpressionParse) {
  auto e = sql_parse_expression("load > 0.5 AND site = 'anl'");
  Schema schema({{"site", ColumnType::Text}, {"load", ColumnType::Real}});
  Row row{Value::text("anl"), Value::real(0.7)};
  RowContext ctx{&schema, &row};
  EXPECT_EQ(e->eval(ctx), Value::integer(1));
}

TEST(SqlExprTest, LikeMatcherEdgeCases) {
  EXPECT_TRUE(SqlLike::like_match("", ""));
  EXPECT_TRUE(SqlLike::like_match("", "%"));
  EXPECT_FALSE(SqlLike::like_match("", "_"));
  EXPECT_TRUE(SqlLike::like_match("abc", "a%c"));
  EXPECT_TRUE(SqlLike::like_match("abc", "%%%"));
  EXPECT_TRUE(SqlLike::like_match("a%c", "a%c"));  // % in text
  EXPECT_FALSE(SqlLike::like_match("ab", "a"));
  EXPECT_TRUE(SqlLike::like_match("aXbXc", "a%b%c"));
}

}  // namespace
}  // namespace gridmon::rdbms
