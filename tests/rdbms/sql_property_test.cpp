/// Parameterized/property suites for the SQL engine: LIKE algebra,
/// predicate/scan agreement, index-vs-scan equivalence, and NULL logic
/// laws.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "gridmon/rdbms/database.hpp"

namespace gridmon::rdbms {
namespace {

// ---- LIKE corpus ----

using LikeCase = std::tuple<const char*, const char*, bool>;

class LikeMatcher : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatcher, MatchesExpected) {
  auto [text, pattern, expected] = GetParam();
  EXPECT_EQ(SqlLike::like_match(text, pattern), expected)
      << "'" << text << "' LIKE '" << pattern << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LikeMatcher,
    ::testing::Values(
        LikeCase{"lucky7.mcs.anl.gov", "lucky%", true},
        LikeCase{"lucky7.mcs.anl.gov", "%anl%", true},
        LikeCase{"lucky7.mcs.anl.gov", "%gov", true},
        LikeCase{"lucky7.mcs.anl.gov", "lucky_.mcs.anl.gov", true},
        LikeCase{"lucky17.mcs.anl.gov", "lucky_.mcs.anl.gov", false},
        LikeCase{"abc", "%", true},
        LikeCase{"", "%", true},
        LikeCase{"", "_", false},
        LikeCase{"a", "_", true},
        LikeCase{"abc", "a_c", true},
        LikeCase{"ac", "a_c", false},
        LikeCase{"aXbXcXd", "a%c%d", true},
        LikeCase{"abc", "ABC", true},  // case-insensitive
        LikeCase{"abc", "%%%%", true},
        LikeCase{"abcd", "a%b%c%d%", true},
        LikeCase{"mississippi", "%iss%ipp%", true},
        LikeCase{"mississippi", "%ipp%iss%", false}));

// ---- index-vs-scan equivalence under mutation ----

class IndexEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(IndexEquivalence, FindEqualMatchesScanAfterChurn) {
  int seed = GetParam();
  Table indexed("t", Schema({{"k", ColumnType::Text},
                             {"v", ColumnType::Integer}}));
  Table plain("t", Schema({{"k", ColumnType::Text},
                           {"v", ColumnType::Integer}}));
  indexed.create_index("k");
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  // Random insert/update/delete churn applied identically to both tables.
  for (int op = 0; op < 400; ++op) {
    auto roll = next() % 10;
    if (roll < 6 || indexed.row_count() == 0) {
      Row row{Value::text("key" + std::to_string(next() % 20)),
              Value::integer(static_cast<std::int64_t>(next() % 100))};
      indexed.insert(row);
      plain.insert(row);
    } else {
      // Pick the nth live row (same in both by construction).
      std::size_t target = next() % indexed.row_count();
      std::size_t seen = 0;
      std::size_t victim = 0;
      indexed.scan([&](std::size_t id, const Row&) {
        if (seen++ == target) {
          victim = id;
          return false;
        }
        return true;
      });
      if (roll < 8) {
        Row row{Value::text("key" + std::to_string(next() % 20)),
                Value::integer(static_cast<std::int64_t>(next() % 100))};
        indexed.update_row(victim, row);
        plain.update_row(victim, row);
      } else {
        indexed.erase_row(victim);
        plain.erase_row(victim);
      }
    }
  }
  for (int k = 0; k < 20; ++k) {
    Value key = Value::text("key" + std::to_string(k));
    auto a = indexed.find_equal("k", key);
    auto b = plain.find_equal("k", key);
    EXPECT_EQ(a.size(), b.size()) << "key" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- NULL (Kleene) logic laws in WHERE ----

TEST(SqlNullLogic, WhereNullNeverMatchesButIsNullDoes) {
  Database db;
  db.execute("CREATE TABLE t (a INT)");
  db.execute("INSERT INTO t VALUES (1), (NULL), (2)");
  // For every comparison op, NULL rows never qualify.
  for (const char* cond :
       {"a = 1", "a <> 1", "a < 10", "a >= 0", "a > 0 OR a < 100"}) {
    auto r = db.execute(std::string("SELECT * FROM t WHERE ") + cond);
    for (const auto& row : r.rows) EXPECT_FALSE(row[0].is_null()) << cond;
  }
  // Complement rule: WHERE c plus WHERE NOT c plus WHERE c IS NULL-ish
  // partitions the table.
  auto pos = db.execute("SELECT * FROM t WHERE a > 1").rows.size();
  auto neg = db.execute("SELECT * FROM t WHERE NOT (a > 1)").rows.size();
  auto nul = db.execute("SELECT * FROM t WHERE a IS NULL").rows.size();
  EXPECT_EQ(pos + neg + nul, 3u);
}

// ---- ORDER BY is a permutation and is sorted ----

TEST(SqlOrderProperty, OrderBySortsAndPreservesRows) {
  Database db;
  db.execute("CREATE TABLE t (v REAL)");
  std::uint64_t s = 42;
  double sum = 0;
  for (int i = 0; i < 64; ++i) {
    s = s * 6364136223846793005ull + 1;
    double v = static_cast<double>(s % 1000) / 10.0;
    sum += v;
    db.execute("INSERT INTO t VALUES (" + std::to_string(v) + ")");
  }
  auto r = db.execute("SELECT v FROM t ORDER BY v ASC");
  ASSERT_EQ(r.rows.size(), 64u);
  double got = 0;
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    got += r.rows[i][0].as_number();
    if (i > 0) {
      EXPECT_LE(r.rows[i - 1][0].as_number(), r.rows[i][0].as_number());
    }
  }
  EXPECT_NEAR(got, sum, 1e-9);
}

// ---- LIMIT is a prefix of the unlimited result ----

class LimitPrefix : public ::testing::TestWithParam<int> {};

TEST_P(LimitPrefix, LimitedIsPrefixOfUnlimited) {
  int limit = GetParam();
  Database db;
  db.execute("CREATE TABLE t (v INT)");
  for (int i = 0; i < 30; ++i) {
    db.execute("INSERT INTO t VALUES (" + std::to_string(i * 7 % 30) + ")");
  }
  auto all = db.execute("SELECT v FROM t ORDER BY v DESC");
  auto some = db.execute("SELECT v FROM t ORDER BY v DESC LIMIT " +
                         std::to_string(limit));
  ASSERT_EQ(some.rows.size(),
            std::min<std::size_t>(static_cast<std::size_t>(limit), 30u));
  for (std::size_t i = 0; i < some.rows.size(); ++i) {
    EXPECT_EQ(some.rows[i][0], all.rows[i][0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Limits, LimitPrefix,
                         ::testing::Values(0, 1, 5, 29, 30, 100));

}  // namespace
}  // namespace gridmon::rdbms
