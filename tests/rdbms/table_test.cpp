#include "gridmon/rdbms/table.hpp"

#include <gtest/gtest.h>

namespace gridmon::rdbms {
namespace {

Table make_hosts() {
  Table t("hosts", Schema({{"name", ColumnType::Text},
                           {"cpus", ColumnType::Integer},
                           {"load", ColumnType::Real}}));
  t.insert({Value::text("lucky0"), Value::integer(2), Value::real(0.5)});
  t.insert({Value::text("lucky1"), Value::integer(2), Value::real(1.5)});
  t.insert({Value::text("lucky3"), Value::integer(4), Value::real(0.1)});
  return t;
}

TEST(ValueTest, CompareSemantics) {
  EXPECT_EQ(Value::compare(Value::integer(1), Value::integer(2)), -1);
  EXPECT_EQ(Value::compare(Value::integer(2), Value::real(2.0)), 0);
  EXPECT_EQ(Value::compare(Value::text("b"), Value::text("a")), 1);
  EXPECT_EQ(Value::compare(Value::null(), Value::integer(1)), std::nullopt);
  EXPECT_EQ(Value::compare(Value::text("1"), Value::integer(1)),
            std::nullopt);
}

TEST(ValueTest, ToStringQuoting) {
  EXPECT_EQ(Value::text("o'brien").to_string(), "'o''brien'");
  EXPECT_EQ(Value::null().to_string(), "NULL");
  EXPECT_EQ(Value::integer(-3).to_string(), "-3");
}

TEST(TableTest, InsertAndScan) {
  auto t = make_hosts();
  EXPECT_EQ(t.row_count(), 3u);
  int seen = 0;
  t.scan([&](std::size_t, const Row&) {
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 3);
}

TEST(TableTest, ArityChecked) {
  auto t = make_hosts();
  EXPECT_THROW(t.insert({Value::text("x")}), TableError);
}

TEST(TableTest, TypeChecked) {
  auto t = make_hosts();
  EXPECT_THROW(
      t.insert({Value::integer(5), Value::integer(2), Value::real(1)}),
      TableError);
  // NULL allowed anywhere.
  t.insert({Value::null(), Value::null(), Value::null()});
  EXPECT_EQ(t.row_count(), 4u);
}

TEST(TableTest, IntWidensIntoRealColumn) {
  auto t = make_hosts();
  t.insert({Value::text("w"), Value::integer(1), Value::integer(3)});
  auto rows = t.find_equal("name", Value::text("w"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(t.row(rows[0])[2].is_real());
}

TEST(TableTest, FindEqualWithoutIndexScans) {
  auto t = make_hosts();
  auto hits = t.find_equal("cpus", Value::integer(2));
  EXPECT_EQ(hits.size(), 2u);
}

TEST(TableTest, IndexLookupMatchesScan) {
  auto t = make_hosts();
  t.create_index("name");
  EXPECT_TRUE(t.has_index_on("name"));
  EXPECT_FALSE(t.has_index_on("cpus"));
  auto hits = t.find_equal("name", Value::text("lucky1"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(t.row(hits[0])[0], Value::text("lucky1"));
}

TEST(TableTest, IndexStaysInSyncThroughMutation) {
  auto t = make_hosts();
  t.create_index("name");
  auto ids = t.find_equal("name", Value::text("lucky0"));
  ASSERT_EQ(ids.size(), 1u);
  t.update_row(ids[0],
               {Value::text("renamed"), Value::integer(2), Value::real(0.5)});
  EXPECT_TRUE(t.find_equal("name", Value::text("lucky0")).empty());
  EXPECT_EQ(t.find_equal("name", Value::text("renamed")).size(), 1u);

  t.erase_row(ids[0]);
  EXPECT_TRUE(t.find_equal("name", Value::text("renamed")).empty());
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, VacuumCompacts) {
  auto t = make_hosts();
  t.create_index("name");
  auto ids = t.find_equal("name", Value::text("lucky1"));
  t.erase_row(ids[0]);
  t.vacuum();
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.find_equal("name", Value::text("lucky3")).size(), 1u);
  int live = 0;
  t.scan([&](std::size_t, const Row&) {
    ++live;
    return true;
  });
  EXPECT_EQ(live, 2);
}

TEST(TableTest, UpdateDeletedRowThrows) {
  auto t = make_hosts();
  t.erase_row(0);
  EXPECT_THROW(t.update_row(0, {Value::text("x"), Value::integer(1),
                                Value::real(0)}),
               TableError);
}

}  // namespace
}  // namespace gridmon::rdbms
