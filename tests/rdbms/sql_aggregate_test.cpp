#include <gtest/gtest.h>

#include "gridmon/rdbms/database.hpp"

namespace gridmon::rdbms {
namespace {

Database metrics_db() {
  Database db;
  db.execute("CREATE TABLE m (host TEXT, value REAL)");
  db.execute(
      "INSERT INTO m VALUES "
      "('a', 1.0), ('a', 3.0), ('a', NULL), "
      "('b', 10.0), ('b', 20.0), "
      "('c', 5.0)");
  return db;
}

TEST(SqlAggregateTest, CountStarAndCountColumn) {
  auto db = metrics_db();
  auto r = db.execute("SELECT COUNT(*) FROM m");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::integer(6));
  // COUNT(col) skips NULLs.
  r = db.execute("SELECT COUNT(value) FROM m");
  EXPECT_EQ(r.rows[0][0], Value::integer(5));
  EXPECT_EQ(r.columns[0], "COUNT(value)");
}

TEST(SqlAggregateTest, SumAvgMinMax) {
  auto db = metrics_db();
  auto r = db.execute(
      "SELECT SUM(value), AVG(value), MIN(value), MAX(value) FROM m");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].as_number(), 39.0);
  EXPECT_DOUBLE_EQ(r.rows[0][1].as_number(), 39.0 / 5);
  EXPECT_DOUBLE_EQ(r.rows[0][2].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(r.rows[0][3].as_number(), 20.0);
}

TEST(SqlAggregateTest, AggregateWithWhere) {
  auto db = metrics_db();
  auto r = db.execute("SELECT MAX(value) FROM m WHERE host = 'a'");
  EXPECT_DOUBLE_EQ(r.rows[0][0].as_number(), 3.0);
}

TEST(SqlAggregateTest, GroupBy) {
  auto db = metrics_db();
  auto r = db.execute(
      "SELECT host, COUNT(*), AVG(value) FROM m GROUP BY host");
  ASSERT_EQ(r.rows.size(), 3u);  // a, b, c (map-ordered)
  EXPECT_EQ(r.rows[0][0], Value::text("a"));
  EXPECT_EQ(r.rows[0][1], Value::integer(3));
  EXPECT_DOUBLE_EQ(r.rows[0][2].as_number(), 2.0);  // NULL skipped
  EXPECT_EQ(r.rows[1][0], Value::text("b"));
  EXPECT_DOUBLE_EQ(r.rows[1][2].as_number(), 15.0);
}

TEST(SqlAggregateTest, GroupByWithWhere) {
  auto db = metrics_db();
  auto r = db.execute(
      "SELECT host, SUM(value) FROM m WHERE value >= 3 GROUP BY host");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(r.rows[0][1].as_number(), 3.0);   // a
  EXPECT_DOUBLE_EQ(r.rows[1][1].as_number(), 30.0);  // b
  EXPECT_DOUBLE_EQ(r.rows[2][1].as_number(), 5.0);   // c
}

TEST(SqlAggregateTest, EmptyTableAggregates) {
  Database db;
  db.execute("CREATE TABLE t (v REAL)");
  auto r = db.execute("SELECT COUNT(*), SUM(v), MIN(v) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::integer(0));
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
  // With GROUP BY and no rows: no groups at all.
  r = db.execute("SELECT v, COUNT(*) FROM t GROUP BY v");
  EXPECT_TRUE(r.rows.empty());
}

TEST(SqlAggregateTest, MinMaxOnText) {
  Database db;
  db.execute("CREATE TABLE t (s TEXT)");
  db.execute("INSERT INTO t VALUES ('banana'), ('apple'), ('cherry')");
  auto r = db.execute("SELECT MIN(s), MAX(s) FROM t");
  EXPECT_EQ(r.rows[0][0], Value::text("apple"));
  EXPECT_EQ(r.rows[0][1], Value::text("cherry"));
}

TEST(SqlAggregateTest, BareColumnWithAggregateRejectedUnlessGrouped) {
  auto db = metrics_db();
  EXPECT_THROW(db.execute("SELECT host, COUNT(*) FROM m"), SqlError);
  EXPECT_THROW(db.execute("SELECT value, COUNT(*) FROM m GROUP BY host"),
               SqlError);
  // The group key itself is fine.
  EXPECT_NO_THROW(db.execute("SELECT host, COUNT(*) FROM m GROUP BY host"));
}

TEST(SqlAggregateTest, UnknownAggregateColumnThrows) {
  auto db = metrics_db();
  EXPECT_THROW(db.execute("SELECT SUM(nope) FROM m"), SqlError);
  EXPECT_THROW(db.execute("SELECT COUNT(*) FROM m GROUP BY nope"), SqlError);
}

TEST(SqlAggregateTest, CountAsIdentifierStillUsableAsColumn) {
  // COUNT without parentheses is an ordinary identifier.
  Database db;
  db.execute("CREATE TABLE t (count INT)");
  db.execute("INSERT INTO t VALUES (7)");
  auto r = db.execute("SELECT count FROM t");
  EXPECT_EQ(r.rows[0][0], Value::integer(7));
}

TEST(SqlAggregateTest, LimitAppliesToGroups) {
  auto db = metrics_db();
  auto r = db.execute("SELECT host, COUNT(*) FROM m GROUP BY host LIMIT 2");
  EXPECT_EQ(r.rows.size(), 2u);
}

}  // namespace
}  // namespace gridmon::rdbms
