#include "gridmon/ldap/dit.hpp"

#include <gtest/gtest.h>

#include "gridmon/ldap/ldif.hpp"

namespace gridmon::ldap {
namespace {

Entry make_entry(const std::string& dn_text, const std::string& oc) {
  Entry e(Dn::parse(dn_text));
  e.add("objectclass", oc);
  return e;
}

/// Small MDS-style tree: o=grid -> hosts -> devices.
Dit sample_tree() {
  Dit dit;
  dit.add(make_entry("o=grid", "organization"));
  for (int h = 0; h < 3; ++h) {
    std::string host = "Mds-Host-hn=lucky" + std::to_string(h) + ", o=grid";
    auto he = make_entry(host, "MdsHost");
    he.add("Mds-Cpu-Total-count", std::to_string(2 + h));
    dit.add(he);
    for (const char* dev : {"memory", "cpu", "filesystem"}) {
      auto de = make_entry(
          std::string("Mds-Device-name=") + dev + ", " + host, "MdsDevice");
      de.add("Mds-Device-name", dev);
      dit.add(de);
    }
  }
  return dit;
}

TEST(DitTest, AddAndFind) {
  auto dit = sample_tree();
  EXPECT_EQ(dit.size(), 1u + 3u + 9u);
  EXPECT_TRUE(dit.contains(Dn::parse("o=grid")));
  EXPECT_TRUE(dit.contains(Dn::parse("MDS-HOST-HN=LUCKY1, O=GRID")));
  const Entry* e = dit.find(Dn::parse("mds-host-hn=lucky2, o=grid"));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value("Mds-Cpu-Total-count"), "4");
}

TEST(DitTest, AddWithoutParentThrows) {
  Dit dit;
  EXPECT_THROW(dit.add(make_entry("cn=orphan, o=missing", "x")), DnError);
}

TEST(DitTest, ReplaceKeepsChildren) {
  auto dit = sample_tree();
  auto replacement = make_entry("Mds-Host-hn=lucky0, o=grid", "MdsHost");
  replacement.add("Mds-Cpu-Total-count", "16");
  dit.add(replacement);
  EXPECT_EQ(dit.find(Dn::parse("mds-host-hn=lucky0,o=grid"))
                ->value("mds-cpu-total-count"),
            "16");
  // Children survive the replace.
  auto r = dit.search(Dn::parse("Mds-Host-hn=lucky0, o=grid"), Scope::One,
                      *Filter::match_all());
  EXPECT_EQ(r.entries.size(), 3u);
}

TEST(DitTest, BaseScopeSearch) {
  auto dit = sample_tree();
  auto r = dit.search(Dn::parse("Mds-Host-hn=lucky1, o=grid"), Scope::Base,
                      *Filter::match_all());
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].dn().normalized(), "mds-host-hn=lucky1,o=grid");
}

TEST(DitTest, OneLevelSearch) {
  auto dit = sample_tree();
  auto r = dit.search(Dn::parse("o=grid"), Scope::One, *Filter::match_all());
  EXPECT_EQ(r.entries.size(), 3u);  // only the hosts, not devices
}

TEST(DitTest, SubtreeSearchWithFilter) {
  auto dit = sample_tree();
  auto filter = Filter::parse("(objectclass=MdsDevice)");
  auto r = dit.search(Dn::parse("o=grid"), Scope::Subtree, *filter);
  EXPECT_EQ(r.entries.size(), 9u);
  auto mem = Filter::parse("(Mds-Device-name=memory)");
  auto rm = dit.search(Dn::parse("o=grid"), Scope::Subtree, *mem);
  EXPECT_EQ(rm.entries.size(), 3u);
}

TEST(DitTest, SubtreeFromMidTree) {
  auto dit = sample_tree();
  auto r = dit.search(Dn::parse("Mds-Host-hn=lucky1, o=grid"), Scope::Subtree,
                      *Filter::match_all());
  EXPECT_EQ(r.entries.size(), 4u);  // host + 3 devices
}

TEST(DitTest, SearchNonexistentBaseIsEmpty) {
  auto dit = sample_tree();
  auto r = dit.search(Dn::parse("o=nothing"), Scope::Subtree,
                      *Filter::match_all());
  EXPECT_TRUE(r.entries.empty());
}

TEST(DitTest, SizeLimitTruncates) {
  auto dit = sample_tree();
  auto r = dit.search(Dn::parse("o=grid"), Scope::Subtree,
                      *Filter::match_all(), {}, 5);
  EXPECT_EQ(r.entries.size(), 5u);
  EXPECT_TRUE(r.size_limit_exceeded);
}

TEST(DitTest, EntriesExaminedCountsWork) {
  auto dit = sample_tree();
  auto r = dit.search(Dn::parse("o=grid"), Scope::Subtree,
                      *Filter::parse("(objectclass=nothing)"));
  EXPECT_TRUE(r.entries.empty());
  EXPECT_EQ(r.entries_examined, 13u);
}

TEST(DitTest, AttributeSelection) {
  auto dit = sample_tree();
  auto r = dit.search(Dn::parse("o=grid"), Scope::One, *Filter::match_all(),
                      {"Mds-Cpu-Total-count"});
  ASSERT_FALSE(r.entries.empty());
  for (const auto& e : r.entries) {
    EXPECT_TRUE(e.has_attribute("Mds-Cpu-Total-count"));
    EXPECT_FALSE(e.has_attribute("objectclass"));
  }
}

TEST(DitTest, RemoveSubtree) {
  auto dit = sample_tree();
  std::size_t removed =
      dit.remove_subtree(Dn::parse("Mds-Host-hn=lucky1, o=grid"));
  EXPECT_EQ(removed, 4u);
  EXPECT_EQ(dit.size(), 13u - 4u);
  EXPECT_FALSE(dit.contains(Dn::parse("mds-host-hn=lucky1,o=grid")));
  // Parent's child list updated: one-level search no longer sees it.
  auto r = dit.search(Dn::parse("o=grid"), Scope::One, *Filter::match_all());
  EXPECT_EQ(r.entries.size(), 2u);
}

TEST(DitTest, RemoveMissingIsZero) {
  auto dit = sample_tree();
  EXPECT_EQ(dit.remove_subtree(Dn::parse("cn=ghost, o=grid")), 0u);
}

TEST(DitTest, WireBytesPositive) {
  auto dit = sample_tree();
  auto r = dit.search(Dn::parse("o=grid"), Scope::Subtree,
                      *Filter::match_all());
  EXPECT_GT(r.wire_bytes(), 13 * 8.0);
}

TEST(LdifTest, RenderEntry) {
  Entry e(Dn::parse("Mds-Host-hn=lucky7, o=grid"));
  e.add("objectclass", "MdsHost");
  e.add("Mds-Os-name", "Linux");
  std::string ldif = to_ldif(e);
  EXPECT_NE(ldif.find("dn: mds-host-hn=lucky7, o=grid"), std::string::npos);
  EXPECT_NE(ldif.find("mds-os-name: Linux"), std::string::npos);
}

TEST(LdifTest, RenderMultipleSeparatedByBlankLine) {
  Entry a(Dn::parse("cn=a"));
  Entry b(Dn::parse("cn=b"));
  std::string ldif = to_ldif(std::vector<Entry>{a, b});
  EXPECT_NE(ldif.find("dn: cn=a\n\ndn: cn=b\n"), std::string::npos);
}

}  // namespace
}  // namespace gridmon::ldap
