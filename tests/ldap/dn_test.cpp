#include "gridmon/ldap/dn.hpp"

#include <gtest/gtest.h>

namespace gridmon::ldap {
namespace {

TEST(DnTest, ParseBasic) {
  auto dn = Dn::parse("Mds-Host-hn=lucky7.mcs.anl.gov, o=grid");
  EXPECT_EQ(dn.depth(), 2u);
  EXPECT_EQ(dn.front().attr, "mds-host-hn");
  EXPECT_EQ(dn.front().value, "lucky7.mcs.anl.gov");
}

TEST(DnTest, WhitespaceInsignificant) {
  auto a = Dn::parse("cn=x,ou=y,o=grid");
  auto b = Dn::parse("  cn = x ,  ou = y , o = grid ");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.normalized(), b.normalized());
}

TEST(DnTest, CaseInsensitiveEquality) {
  EXPECT_EQ(Dn::parse("CN=Foo, O=Grid"), Dn::parse("cn=foo, o=grid"));
}

TEST(DnTest, NormalizedForm) {
  EXPECT_EQ(Dn::parse("CN = Foo , O = Grid").normalized(), "cn=foo,o=grid");
}

TEST(DnTest, ToStringPreservesValueCase) {
  EXPECT_EQ(Dn::parse("CN=Foo,O=Grid").to_string(), "cn=Foo, o=Grid");
}

TEST(DnTest, ParentChain) {
  auto dn = Dn::parse("a=1, b=2, c=3");
  EXPECT_EQ(dn.parent(), Dn::parse("b=2, c=3"));
  EXPECT_EQ(dn.parent().parent(), Dn::parse("c=3"));
  EXPECT_TRUE(dn.parent().parent().parent().empty());
}

TEST(DnTest, ChildAndDescendantRelations) {
  auto root = Dn::parse("o=grid");
  auto host = Dn::parse("Mds-Host-hn=lucky1, o=grid");
  auto dev = Dn::parse("Mds-Device-name=memory, Mds-Host-hn=lucky1, o=grid");
  EXPECT_TRUE(host.is_child_of(root));
  EXPECT_FALSE(dev.is_child_of(root));
  EXPECT_TRUE(dev.is_child_of(host));
  EXPECT_TRUE(dev.is_descendant_of(root));
  EXPECT_FALSE(root.is_descendant_of(dev));
  EXPECT_FALSE(host.is_descendant_of(host));  // strict
}

TEST(DnTest, ParseErrors) {
  EXPECT_THROW(Dn::parse("noequals"), DnError);
  EXPECT_THROW(Dn::parse("cn=a,,o=grid"), DnError);
  EXPECT_THROW(Dn::parse("=value"), DnError);
  EXPECT_THROW(Dn::parse("cn=, o=grid"), DnError);
}

TEST(DnTest, EmptyDnParses) {
  auto dn = Dn::parse("");
  EXPECT_TRUE(dn.empty());
  EXPECT_EQ(dn.depth(), 0u);
}

}  // namespace
}  // namespace gridmon::ldap
