#include "gridmon/ldap/ldif.hpp"

#include <gtest/gtest.h>

namespace gridmon::ldap {
namespace {

TEST(LdifParseTest, SingleRecord) {
  auto entries = from_ldif(
      "dn: Mds-Host-hn=lucky7, o=grid\n"
      "objectclass: MdsHost\n"
      "Mds-Os-name: Linux\n");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].dn(), Dn::parse("Mds-Host-hn=lucky7, o=grid"));
  EXPECT_EQ(entries[0].value("Mds-Os-name"), "Linux");
}

TEST(LdifParseTest, MultipleRecordsAndComments) {
  auto entries = from_ldif(
      "# grid dump\n"
      "dn: cn=a\n"
      "x: 1\n"
      "\n"
      "dn: cn=b\n"
      "x: 2\n"
      "x: 3\n"
      "\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].values("x").size(), 2u);
}

TEST(LdifParseTest, ContinuationLines) {
  auto entries = from_ldif(
      "dn: cn=long\n"
      "description: first part\n"
      "  and second part\n");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].value("description"), "first part and second part");
}

TEST(LdifParseTest, CrLfTolerated) {
  auto entries = from_ldif("dn: cn=a\r\nx: 1\r\n");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].value("x"), "1");
}

TEST(LdifParseTest, RoundTripThroughToLdif) {
  Entry a(Dn::parse("Mds-Device-name=mem, Mds-Host-hn=lucky1, o=grid"));
  a.add("objectclass", "MdsDevice");
  a.add("Mds-Device-name", "mem");
  Entry b(Dn::parse("cn=other"));
  b.add("v", "x");
  b.add("v", "y");
  auto parsed = from_ldif(to_ldif(std::vector<Entry>{a, b}));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].dn(), a.dn());
  EXPECT_EQ(parsed[0].values("objectclass").size(), 1u);
  EXPECT_EQ(parsed[1].values("v"), b.values("v"));
}

TEST(LdifParseTest, Errors) {
  EXPECT_THROW(from_ldif("x: no dn first\n"), LdifError);
  EXPECT_THROW(from_ldif("dn: cn=a\nmalformed line\n"), LdifError);
  EXPECT_THROW(from_ldif("  continuation first\n"), LdifError);
  EXPECT_THROW(from_ldif(": empty attr\n"), LdifError);
}

TEST(LdifParseTest, EmptyInputIsEmpty) {
  EXPECT_TRUE(from_ldif("").empty());
  EXPECT_TRUE(from_ldif("\n\n# only comments\n\n").empty());
}

}  // namespace
}  // namespace gridmon::ldap
