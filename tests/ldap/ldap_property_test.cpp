/// Parameterized/property suites for the LDAP engine: filter algebra,
/// scope containment, and DN normalization laws.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "gridmon/ldap/dit.hpp"

namespace gridmon::ldap {
namespace {

Dit grid_tree() {
  Dit dit;
  Entry root(Dn::parse("o=grid"));
  root.add("objectclass", "organization");
  dit.add(std::move(root));
  for (int h = 0; h < 4; ++h) {
    std::string host = "Mds-Host-hn=lucky" + std::to_string(h) + ", o=grid";
    Entry he(Dn::parse(host));
    he.add("objectclass", "MdsHost");
    he.add("Mds-Cpu-Total-count", std::to_string(1 << h));
    he.add("Mds-Os-name", h % 2 ? "Linux" : "Solaris");
    dit.add(std::move(he));
    for (int d = 0; d < 5; ++d) {
      Entry de(Dn::parse("Mds-Device-name=dev" + std::to_string(d) + ", " +
                         host));
      de.add("objectclass", "MdsDevice");
      de.add("Mds-Device-name", "dev" + std::to_string(d));
      de.add("size", std::to_string(d * 100));
      dit.add(std::move(de));
    }
  }
  return dit;
}

// ---- filter algebra over a corpus ----

const char* kFilters[] = {
    "(objectclass=*)",
    "(objectclass=MdsHost)",
    "(Mds-Os-name=linux)",
    "(Mds-Cpu-Total-count>=4)",
    "(size<=200)",
    "(Mds-Device-name=dev*)",
    "(Mds-Device-name=*2)",
    "(&(objectclass=MdsDevice)(size>=300))",
    "(|(Mds-Os-name=solaris)(size=400))",
};

class FilterAlgebra : public ::testing::TestWithParam<const char*> {};

TEST_P(FilterAlgebra, NotNotIsIdentity) {
  auto dit = grid_tree();
  auto f = Filter::parse(GetParam());
  auto nn = Filter::parse("(!(!" + std::string(GetParam()) + "))");
  auto base = Dn::parse("o=grid");
  auto a = dit.search(base, Scope::Subtree, *f);
  auto b = dit.search(base, Scope::Subtree, *nn);
  EXPECT_EQ(a.entries.size(), b.entries.size());
}

TEST_P(FilterAlgebra, FilterAndNotFilterPartitionTheTree) {
  auto dit = grid_tree();
  auto f = Filter::parse(GetParam());
  auto nf = Filter::parse("(!" + std::string(GetParam()) + ")");
  auto base = Dn::parse("o=grid");
  auto all = dit.search(base, Scope::Subtree, *Filter::match_all());
  auto yes = dit.search(base, Scope::Subtree, *f);
  auto no = dit.search(base, Scope::Subtree, *nf);
  EXPECT_EQ(yes.entries.size() + no.entries.size(), all.entries.size());
}

TEST_P(FilterAlgebra, AndWithSelfIsIdempotent) {
  auto dit = grid_tree();
  std::string s = GetParam();
  auto f = Filter::parse(s);
  auto ff = Filter::parse("(&" + s + s + ")");
  auto base = Dn::parse("o=grid");
  EXPECT_EQ(dit.search(base, Scope::Subtree, *f).entries.size(),
            dit.search(base, Scope::Subtree, *ff).entries.size());
}

TEST_P(FilterAlgebra, RoundTripKeepsSemantics) {
  auto dit = grid_tree();
  auto f = Filter::parse(GetParam());
  auto g = Filter::parse(f->to_string());
  auto base = Dn::parse("o=grid");
  EXPECT_EQ(dit.search(base, Scope::Subtree, *f).entries.size(),
            dit.search(base, Scope::Subtree, *g).entries.size());
}

INSTANTIATE_TEST_SUITE_P(Corpus, FilterAlgebra,
                         ::testing::ValuesIn(kFilters));

// ---- scope containment: Base <= One+Base <= Subtree ----

TEST(ScopeProperty, ScopesNest) {
  auto dit = grid_tree();
  auto all = Filter::match_all();
  for (const char* base_text :
       {"o=grid", "Mds-Host-hn=lucky1, o=grid",
        "Mds-Device-name=dev0, Mds-Host-hn=lucky0, o=grid"}) {
    auto base = Dn::parse(base_text);
    auto b = dit.search(base, Scope::Base, *all).entries.size();
    auto o = dit.search(base, Scope::One, *all).entries.size();
    auto s = dit.search(base, Scope::Subtree, *all).entries.size();
    EXPECT_LE(b, 1u);
    EXPECT_GE(s, b + o) << base_text;  // subtree covers base and children
  }
}

// ---- DN normalization laws ----

class DnNormalization : public ::testing::TestWithParam<const char*> {};

TEST_P(DnNormalization, NormalizeIsIdempotent) {
  auto dn = Dn::parse(GetParam());
  auto again = Dn::parse(dn.normalized());
  EXPECT_EQ(dn, again);
  EXPECT_EQ(dn.normalized(), again.normalized());
}

TEST_P(DnNormalization, ToStringParsesBackEqual) {
  auto dn = Dn::parse(GetParam());
  EXPECT_EQ(dn, Dn::parse(dn.to_string()));
}

TEST_P(DnNormalization, ParentIsStrictPrefix) {
  auto dn = Dn::parse(GetParam());
  if (dn.depth() > 1) {
    EXPECT_TRUE(dn.is_child_of(dn.parent()));
    EXPECT_TRUE(dn.is_descendant_of(dn.parent()));
    EXPECT_EQ(dn.parent().depth(), dn.depth() - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DnNormalization,
    ::testing::Values("o=grid", "CN=Foo, O=Grid",
                      "mds-device-name=CPU, mds-host-hn=Lucky7, o=Grid",
                      "a=1, b=2, c=3, d=4, e=5",
                      "cn = spaced out , o = grid"));

}  // namespace
}  // namespace gridmon::ldap
