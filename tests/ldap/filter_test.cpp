#include "gridmon/ldap/filter.hpp"

#include <gtest/gtest.h>

namespace gridmon::ldap {
namespace {

Entry host_entry() {
  Entry e(Dn::parse("Mds-Host-hn=lucky7.mcs.anl.gov, o=grid"));
  e.add("objectclass", "MdsHost");
  e.add("Mds-Host-hn", "lucky7.mcs.anl.gov");
  e.add("Mds-Cpu-Total-count", "2");
  e.add("Mds-Memory-Ram-Total-sizeMB", "512");
  e.add("Mds-Os-name", "Linux");
  e.add("description", "compute node");
  return e;
}

TEST(FilterTest, EqualityCaseInsensitive) {
  auto e = host_entry();
  EXPECT_TRUE(Filter::parse("(Mds-Os-name=linux)")->matches(e));
  EXPECT_TRUE(Filter::parse("(MDS-OS-NAME=LINUX)")->matches(e));
  EXPECT_FALSE(Filter::parse("(Mds-Os-name=solaris)")->matches(e));
}

TEST(FilterTest, Presence) {
  auto e = host_entry();
  EXPECT_TRUE(Filter::parse("(description=*)")->matches(e));
  EXPECT_FALSE(Filter::parse("(no-such-attr=*)")->matches(e));
  EXPECT_TRUE(Filter::parse("(objectclass=*)")->matches(e));
}

TEST(FilterTest, NumericOrdering) {
  auto e = host_entry();
  EXPECT_TRUE(Filter::parse("(Mds-Cpu-Total-count>=2)")->matches(e));
  EXPECT_FALSE(Filter::parse("(Mds-Cpu-Total-count>=3)")->matches(e));
  EXPECT_TRUE(Filter::parse("(Mds-Memory-Ram-Total-sizeMB<=512)")->matches(e));
  // Numeric, not lexicographic: "512" >= "64".
  EXPECT_TRUE(Filter::parse("(Mds-Memory-Ram-Total-sizeMB>=64)")->matches(e));
}

TEST(FilterTest, LexicographicOrderingForNonNumbers) {
  auto e = host_entry();
  EXPECT_TRUE(Filter::parse("(Mds-Os-name>=lin)")->matches(e));
  EXPECT_FALSE(Filter::parse("(Mds-Os-name<=abc)")->matches(e));
}

TEST(FilterTest, SubstringForms) {
  auto e = host_entry();
  EXPECT_TRUE(Filter::parse("(Mds-Host-hn=lucky*)")->matches(e));
  EXPECT_TRUE(Filter::parse("(Mds-Host-hn=*anl.gov)")->matches(e));
  EXPECT_TRUE(Filter::parse("(Mds-Host-hn=*mcs*)")->matches(e));
  EXPECT_TRUE(Filter::parse("(Mds-Host-hn=lucky*anl*)")->matches(e));
  EXPECT_TRUE(Filter::parse("(Mds-Host-hn=lucky*mcs*gov)")->matches(e));
  EXPECT_FALSE(Filter::parse("(Mds-Host-hn=happy*)")->matches(e));
  EXPECT_FALSE(Filter::parse("(Mds-Host-hn=*edu)")->matches(e));
}

TEST(FilterTest, SubstringOrderMatters) {
  Entry e(Dn::parse("cn=x"));
  e.add("v", "abcdef");
  EXPECT_TRUE(Filter::parse("(v=*bc*de*)")->matches(e));
  EXPECT_FALSE(Filter::parse("(v=*de*bc*)")->matches(e));
}

TEST(FilterTest, AndOrNot) {
  auto e = host_entry();
  EXPECT_TRUE(
      Filter::parse("(&(objectclass=MdsHost)(Mds-Os-name=linux))")->matches(e));
  EXPECT_FALSE(
      Filter::parse("(&(objectclass=MdsHost)(Mds-Os-name=aix))")->matches(e));
  EXPECT_TRUE(
      Filter::parse("(|(Mds-Os-name=aix)(Mds-Os-name=linux))")->matches(e));
  EXPECT_TRUE(Filter::parse("(!(Mds-Os-name=aix))")->matches(e));
  EXPECT_FALSE(Filter::parse("(!(Mds-Os-name=linux))")->matches(e));
}

TEST(FilterTest, NestedComposition) {
  auto e = host_entry();
  auto f = Filter::parse(
      "(&(objectclass=MdsHost)"
      "(|(Mds-Cpu-Total-count>=4)(Mds-Memory-Ram-Total-sizeMB>=256))"
      "(!(Mds-Os-name=windows)))");
  EXPECT_TRUE(f->matches(e));
}

TEST(FilterTest, ApproxTreatedAsEquality) {
  auto e = host_entry();
  EXPECT_TRUE(Filter::parse("(Mds-Os-name~=linux)")->matches(e));
}

TEST(FilterTest, MultiValuedAttributeAnyValueMatches) {
  Entry e(Dn::parse("cn=multi"));
  e.add("member", "alice");
  e.add("member", "bob");
  EXPECT_TRUE(Filter::parse("(member=bob)")->matches(e));
  EXPECT_FALSE(Filter::parse("(member=carol)")->matches(e));
}

TEST(FilterTest, ToStringRoundTrip) {
  const char* filters[] = {
      "(objectclass=*)",
      "(&(a=1)(b=2))",
      "(|(a=1)(!(b=2)))",
      "(cn=lucky*anl*gov)",
      "(x>=10)",
      "(y<=20)",
  };
  for (const char* text : filters) {
    auto f1 = Filter::parse(text);
    auto f2 = Filter::parse(f1->to_string());
    EXPECT_EQ(f1->to_string(), f2->to_string()) << text;
  }
}

TEST(FilterTest, ParseErrors) {
  EXPECT_THROW(Filter::parse("no-parens"), FilterError);
  EXPECT_THROW(Filter::parse("(unclosed"), FilterError);
  EXPECT_THROW(Filter::parse("(&)"), FilterError);
  EXPECT_THROW(Filter::parse("(a=1)(b=2)"), FilterError);
  EXPECT_THROW(Filter::parse("(=value)"), FilterError);
  EXPECT_THROW(Filter::parse("(attr=)"), FilterError);
  EXPECT_THROW(Filter::parse("(attr)"), FilterError);
}

TEST(FilterTest, MatchAllMatchesAnything) {
  Entry bare(Dn::parse("cn=bare"));
  EXPECT_TRUE(Filter::match_all()->matches(bare));
}

}  // namespace
}  // namespace gridmon::ldap
