/// Tests for the composite Consumer/Producer — the R-GMA aggregate
/// information server the paper describes as buildable but missing.

#include <gtest/gtest.h>

#include "gridmon/core/testbed.hpp"
#include "gridmon/rgma/composite_producer.hpp"
#include "gridmon/rgma/consumer_servlet.hpp"

namespace gridmon::rgma {
namespace {

using core::Testbed;

struct Fixture {
  Testbed tb;
  Registry registry{tb.network(), tb.host("lucky1"), tb.nic("lucky1")};
  ProducerServlet source_a{tb.network(), tb.host("lucky4"), tb.nic("lucky4"),
                           "src-a"};
  ProducerServlet source_b{tb.network(), tb.host("lucky5"), tb.nic("lucky5"),
                           "src-b"};
  CompositeProducer composite{tb.network(), tb.host("lucky3"),
                              tb.nic("lucky3"), "agg", "cpuload"};
  Producer* pa = nullptr;
  Producer* pb = nullptr;

  Fixture() {
    pa = &source_a.add_producer("pa", "cpuload");
    pb = &source_b.add_producer("pb", "cpuload");
    composite.attach_source(source_a);
    composite.attach_source(source_b);
  }
  ~Fixture() { tb.sim().shutdown(); }

  sim::Task<void> publish_from(ProducerServlet& src, Producer& p,
                               std::string host, int n) {
    for (int i = 0; i < n; ++i) {
      rdbms::Row row{rdbms::Value::text(host), rdbms::Value::text("load"),
                     rdbms::Value::real(i * 0.1),
                     rdbms::Value::real(static_cast<double>(i))};
      co_await src.publish(p, std::move(row));
      co_await tb.sim().delay(1.0);
    }
  }
};

sim::Task<void> query_composite(CompositeProducer& c, net::Interface& client,
                                RgmaReply* out, std::string where = "") {
  *out = co_await c.client_query(client, where);
}

TEST(CompositeProducerTest, StreamsFromAllSourcesMerge) {
  Fixture f;
  f.tb.sim().spawn(f.publish_from(f.source_a, *f.pa, "lucky4", 6));
  f.tb.sim().spawn(f.publish_from(f.source_b, *f.pb, "lucky5", 4));
  f.tb.sim().run(f.tb.sim().now() + 30);
  EXPECT_EQ(f.composite.tuples_ingested(), 10u);
  EXPECT_EQ(f.composite.merged_rows(), 10u);
  EXPECT_EQ(f.composite.sources(), 2u);
}

TEST(CompositeProducerTest, ServesAggregatedData) {
  Fixture f;
  f.tb.sim().spawn(f.publish_from(f.source_a, *f.pa, "lucky4", 5));
  f.tb.sim().spawn(f.publish_from(f.source_b, *f.pb, "lucky5", 5));
  f.tb.sim().run(f.tb.sim().now() + 30);

  RgmaReply reply;
  f.tb.sim().spawn(query_composite(f.composite, f.tb.nic("uc01"), &reply));
  f.tb.sim().run(f.tb.sim().now() + 20);
  EXPECT_TRUE(reply.admitted);
  EXPECT_EQ(reply.rows, 10u);  // both sources' tuples from one server
}

TEST(CompositeProducerTest, PredicateFiltersMergedStore) {
  Fixture f;
  f.tb.sim().spawn(f.publish_from(f.source_a, *f.pa, "lucky4", 10));
  f.tb.sim().run(f.tb.sim().now() + 30);
  RgmaReply reply;
  f.tb.sim().spawn(query_composite(f.composite, f.tb.nic("uc01"), &reply,
                                   "host = 'lucky4' AND value >= 0.5"));
  f.tb.sim().run(f.tb.sim().now() + 20);
  EXPECT_EQ(reply.rows, 5u);
}

TEST(CompositeProducerTest, DiscoverableThroughRegistry) {
  Fixture f;
  f.composite.start_registration(f.registry);
  f.tb.sim().run(f.tb.sim().now() + 10);
  // The aggregate registered like any producer; a ConsumerServlet can
  // mediate to it.
  ConsumerServlet cs(f.tb.network(), f.tb.host("lucky6"), f.tb.nic("lucky6"),
                     "cs", f.registry);
  cs.add_producer_servlet(f.composite.servlet());
  f.tb.sim().spawn(f.publish_from(f.source_a, *f.pa, "lucky4", 3));
  f.tb.sim().run(f.tb.sim().now() + 20);

  RgmaReply reply;
  auto q = [](ConsumerServlet& c, net::Interface& client,
              RgmaReply* out) -> sim::Task<void> {
    *out = co_await c.query(client, "cpuload");
  };
  f.tb.sim().spawn(q(cs, f.tb.nic("uc01"), &reply));
  f.tb.sim().run(f.tb.sim().now() + 30);
  EXPECT_TRUE(reply.admitted);
  EXPECT_EQ(reply.rows, 3u);
}

TEST(CompositeProducerTest, BoundedMergeHistory) {
  Testbed tb;
  CompositeProducerConfig config;
  config.merge_history = 8;
  CompositeProducer composite(tb.network(), tb.host("lucky3"),
                              tb.nic("lucky3"), "agg", "cpuload", config);
  ProducerServlet src(tb.network(), tb.host("lucky4"), tb.nic("lucky4"),
                      "src");
  auto& p = src.add_producer("p", "cpuload");
  composite.attach_source(src);
  auto publish = [](Testbed& t, ProducerServlet& s, Producer& prod,
                    int n) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) {
      rdbms::Row row{rdbms::Value::text("h"), rdbms::Value::text("m"),
                     rdbms::Value::real(i), rdbms::Value::real(i)};
      co_await s.publish(prod, std::move(row));
      co_await t.sim().delay(0.5);
    }
  };
  tb.sim().spawn(publish(tb, src, p, 20));
  tb.sim().run(30.0);
  EXPECT_EQ(composite.tuples_ingested(), 20u);
  EXPECT_EQ(composite.merged_rows(), 8u);  // latest-N semantics
  tb.sim().shutdown();
}

}  // namespace
}  // namespace gridmon::rgma
