#include <gtest/gtest.h>

#include "gridmon/core/testbed.hpp"
#include "gridmon/rgma/consumer_servlet.hpp"
#include "gridmon/rgma/producer_servlet.hpp"
#include "gridmon/rgma/registry.hpp"

namespace gridmon::rgma {
namespace {

using core::Testbed;

struct Deployment {
  Testbed tb;
  Registry registry{tb.network(), tb.host("lucky1"), tb.nic("lucky1")};
  ProducerServlet ps{tb.network(), tb.host("lucky3"), tb.nic("lucky3"),
                     "ps-lucky3"};
  ConsumerServlet cs{tb.network(), tb.host("lucky5"), tb.nic("lucky5"),
                     "cs-lucky5", registry};

  Deployment() {
    cs.add_producer_servlet(ps);
  }
  ~Deployment() { tb.sim().shutdown(); }

  Producer& add_filled_producer(const std::string& name, int rows = 10) {
    auto& p = ps.add_producer(name, "cpuload");
    for (int i = 0; i < rows; ++i) {
      p.publish({rdbms::Value::text("lucky3"), rdbms::Value::text("cpu"),
                 rdbms::Value::real(i * 0.1),
                 rdbms::Value::real(static_cast<double>(i))});
    }
    return p;
  }
};

sim::Task<void> do_register(Registry& r, net::Interface& from,
                            ProducerInfo info, bool* ok) {
  *ok = co_await r.register_producer(from, info);
}

sim::Task<void> do_lookup(Registry& r, net::Interface& from,
                          std::string table, std::vector<ProducerInfo>* out) {
  *out = co_await r.lookup(from, table);
}

sim::Task<void> do_query(ConsumerServlet& cs, net::Interface& client,
                         std::string table, RgmaReply* out) {
  *out = co_await cs.query(client, table);
}

TEST(RegistryTest, RegisterAndLookup) {
  Deployment d;
  bool ok = false;
  d.tb.sim().spawn(do_register(
      d.registry, d.tb.nic("lucky3"),
      ProducerInfo{"p1", "cpuload", "ps-lucky3", "host='lucky3'"}, &ok));
  d.tb.sim().run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(d.registry.registered_count(), 1u);

  std::vector<ProducerInfo> found;
  d.tb.sim().spawn(do_lookup(d.registry, d.tb.nic("lucky5"), "cpuload",
                             &found));
  d.tb.sim().run();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].producer, "p1");
  EXPECT_EQ(found[0].servlet, "ps-lucky3");
  EXPECT_EQ(found[0].predicate, "host='lucky3'");
}

TEST(RegistryTest, LookupWrongTableEmpty) {
  Deployment d;
  bool ok = false;
  d.tb.sim().spawn(do_register(d.registry, d.tb.nic("lucky3"),
                               ProducerInfo{"p1", "cpuload", "s", ""}, &ok));
  d.tb.sim().run();
  std::vector<ProducerInfo> found;
  d.tb.sim().spawn(do_lookup(d.registry, d.tb.nic("lucky5"), "memused",
                             &found));
  d.tb.sim().run();
  EXPECT_TRUE(found.empty());
}

TEST(RegistryTest, ReregistrationReplacesNotDuplicates) {
  Deployment d;
  bool ok = false;
  for (int i = 0; i < 3; ++i) {
    d.tb.sim().spawn(do_register(d.registry, d.tb.nic("lucky3"),
                                 ProducerInfo{"p1", "cpuload", "s", ""}, &ok));
    d.tb.sim().run();
  }
  EXPECT_EQ(d.registry.registered_count(), 1u);
}

TEST(RegistryTest, LeaseExpiresWithoutReregistration) {
  Deployment d;
  bool ok = false;
  d.tb.sim().spawn(do_register(d.registry, d.tb.nic("lucky3"),
                               ProducerInfo{"p1", "cpuload", "s", ""}, &ok));
  d.tb.sim().run();
  d.registry.start_sweeper();
  // Default lease 120 s: after 200 s the sweeper has removed it.
  d.tb.sim().run(d.tb.sim().now() + 200);
  EXPECT_EQ(d.registry.registered_count(), 0u);
  std::vector<ProducerInfo> found;
  d.tb.sim().spawn(do_lookup(d.registry, d.tb.nic("lucky5"), "cpuload",
                             &found));
  d.tb.sim().run(d.tb.sim().now() + 10);
  EXPECT_TRUE(found.empty());
}

TEST(RegistryTest, ServletRegistrationLoopKeepsLeaseAlive) {
  Deployment d;
  d.add_filled_producer("p1");
  d.ps.start_registration(d.registry);
  d.registry.start_sweeper();
  d.tb.sim().run(d.tb.sim().now() + 400);
  EXPECT_EQ(d.registry.registered_count(), 1u);
  EXPECT_GT(d.registry.registrations(), 4u);
}

TEST(ProducerTest, BoundedHistory) {
  Producer p("p", "cpuload",
             rdbms::Schema({{"host", rdbms::ColumnType::Text},
                            {"metric", rdbms::ColumnType::Text},
                            {"value", rdbms::ColumnType::Real},
                            {"ts", rdbms::ColumnType::Real}}),
             "", 5);
  for (int i = 0; i < 12; ++i) {
    p.publish({rdbms::Value::text("h"), rdbms::Value::text("m"),
               rdbms::Value::real(i), rdbms::Value::real(i)});
  }
  EXPECT_EQ(p.data().row_count(), 5u);
  // Oldest rows were dropped: remaining values are 7..11.
  double min_seen = 1e9;
  p.data().scan([&](std::size_t, const rdbms::Row& row) {
    min_seen = std::min(min_seen, row[2].as_number());
    return true;
  });
  EXPECT_DOUBLE_EQ(min_seen, 7.0);
}

TEST(MediatedQueryTest, EndToEndPull) {
  Deployment d;
  d.add_filled_producer("p1", 10);
  d.add_filled_producer("p2", 10);
  d.ps.start_registration(d.registry);
  d.tb.sim().run(d.tb.sim().now() + 5);  // registrations land

  RgmaReply reply;
  d.tb.sim().spawn(do_query(d.cs, d.tb.nic("uc01"), "cpuload", &reply));
  d.tb.sim().run(d.tb.sim().now() + 30);
  EXPECT_TRUE(reply.admitted);
  EXPECT_EQ(reply.rows, 20u);
  EXPECT_GT(reply.response_bytes, 20 * 100.0);
}

TEST(MediatedQueryTest, UnknownTableYieldsZeroRows) {
  Deployment d;
  d.add_filled_producer("p1");
  d.ps.start_registration(d.registry);
  d.tb.sim().run(d.tb.sim().now() + 5);
  RgmaReply reply;
  d.tb.sim().spawn(do_query(d.cs, d.tb.nic("uc01"), "nothing", &reply));
  d.tb.sim().run(d.tb.sim().now() + 30);
  EXPECT_TRUE(reply.admitted);
  EXPECT_EQ(reply.rows, 0u);
}

TEST(DirectQueryTest, SelectWithPredicate) {
  Deployment d;
  d.add_filled_producer("p1", 10);
  auto run = [](ProducerServlet& ps, net::Interface& c,
                RgmaReply* out) -> sim::Task<void> {
    *out = co_await ps.client_query(c, "cpuload", "value >= 0.5");
  };
  RgmaReply reply;
  d.tb.sim().spawn(run(d.ps, d.tb.nic("uc01"), &reply));
  d.tb.sim().run();
  EXPECT_TRUE(reply.admitted);
  EXPECT_EQ(reply.rows, 5u);  // values 0.5..0.9
}

TEST(StreamingTest, PushDeliversMatchingTuples) {
  Deployment d;
  auto& producer = d.add_filled_producer("p1", 0);
  d.ps.start_registration(d.registry);
  d.tb.sim().run(d.tb.sim().now() + 5);

  std::vector<double> received;
  auto subscribe = [](Deployment& dep,
                      std::vector<double>* out) -> sim::Task<void> {
    co_await dep.cs.subscribe(
        dep.tb.nic("uc01"), "cpuload", "value > 0.5",
        [out](const rdbms::Row& row) { out->push_back(row[2].as_number()); });
  };
  d.tb.sim().spawn(subscribe(d, &received));
  d.tb.sim().run(d.tb.sim().now() + 10);

  auto publish = [](Deployment& dep, Producer& p) -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      rdbms::Row row{rdbms::Value::text("lucky3"), rdbms::Value::text("cpu"),
                     rdbms::Value::real(i * 0.2),
                     rdbms::Value::real(static_cast<double>(i))};
      co_await dep.ps.publish(p, std::move(row));
      co_await dep.tb.sim().delay(1.0);
    }
  };
  d.tb.sim().spawn(publish(d, producer));
  d.tb.sim().run(d.tb.sim().now() + 30);

  // Values 0.0,0.2,...,1.8: those > 0.5 are 0.6..1.8 -> 7 tuples.
  EXPECT_EQ(received.size(), 7u);
  for (double v : received) EXPECT_GT(v, 0.5);
  EXPECT_EQ(d.ps.tuples_pushed(), 7u);
}

TEST(BackpressureTest, RefusalsWhenBacklogFull) {
  Deployment d;
  RegistryConfig config;
  config.backlog = 1;
  config.query_base_cpu = 10.0;  // very slow
  Registry slow(d.tb.network(), d.tb.host("lucky6"), d.tb.nic("lucky6"),
                config);
  auto q = [](Registry& r, net::Interface& c, RgmaReply* out) -> sim::Task<void> {
    *out = co_await r.client_query(c, "cpuload");
  };
  std::vector<RgmaReply> replies(5);
  for (int i = 0; i < 5; ++i) {
    d.tb.sim().spawn(q(slow, d.tb.nic("uc01"), &replies[i]));
  }
  d.tb.sim().run(d.tb.sim().now() + 5);
  EXPECT_GT(slow.port().total_refused(), 0u);
}

}  // namespace
}  // namespace gridmon::rgma
