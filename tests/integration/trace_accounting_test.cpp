/// Cross-checks the trace subsystem against the metrics subsystem: the
/// CPU-busy timeline derived from trace counter samples (exact, fired on
/// every run-queue change) must integrate to the same utilization the
/// Ganglia-style Sampler reports from served-work deltas. The two paths
/// share no code below the PsServer, so agreement validates both.

#include <gtest/gtest.h>

#include "gridmon/core/experiment.hpp"
#include "gridmon/core/scenario_spec.hpp"
#include "gridmon/core/scenarios.hpp"
#include "gridmon/trace/timeline.hpp"

namespace gridmon {
namespace {

TEST(TraceAccountingTest, CpuTimelineMatchesSamplerUtilization) {
  core::Testbed tb;
  // GRIS without caching: every query fork/execs ten providers, which
  // keeps the server CPU visibly busy.
  core::ScenarioSpec spec;
  spec.service = core::ServiceKind::GrisNocache;
  auto scenario = core::make_scenario(tb, spec);
  trace::Collector collector(tb.sim(), tb.config().seed);
  core::UserWorkload workload(tb, scenario->query_fn());
  scenario->instrument(collector);
  core::instrument_host(tb, collector, "lucky7");
  workload.enable_tracing(collector);
  workload.spawn_users(40, tb.uc_names());
  tb.sampler().start();

  core::MeasureConfig mc;
  mc.warmup = 30;
  mc.duration = 120;
  mc.collector = &collector;
  double t0 = tb.sim().now() + mc.warmup;
  double t1 = t0 + mc.duration;
  core::SweepPoint p = core::measure(tb, workload, "lucky7", 40, mc);

  trace::TraceData data = collector.take();
  ASSERT_FALSE(data.counters.empty());

  int cores = tb.host("lucky7").cpu().cores();
  // The run-queue track samples min(active, cores) busy cores exactly;
  // integrating the step function gives busy core-seconds.
  double busy = trace::integrate_active(data, "lucky7.cpu", t0, t1,
                                        static_cast<double>(cores));
  double trace_pct = 100.0 * busy / (static_cast<double>(cores) * (t1 - t0));

  // The workload must actually load the server for the check to mean
  // anything.
  EXPECT_GT(p.cpu, 10.0);
  // Sampler percent comes from 5-second served-work deltas; boundary
  // intervals can straddle the window edges, hence the tolerance.
  EXPECT_NEAR(trace_pct, p.cpu, 2.0);

  // NIC flow tracks exist and saw traffic.
  EXPECT_GT(trace::integrate_active(data, "lucky7.nic_tx", t0, t1), 0.0);
  EXPECT_GT(trace::integrate_active(data, "lucky7.nic_rx", t0, t1), 0.0);
}

}  // namespace
}  // namespace gridmon
