/// Golden byte-determinism of the fault-free experiments: a miniature
/// point from each of exp1-exp4, formatted exactly as the bench CSVs
/// are, must (a) reproduce itself byte-for-byte on a rerun in the same
/// process and (b) match the golden bytes recorded from the seed
/// implementation — the pre-overhaul std::priority_queue engine, whose
/// pop sequence the indexed-heap scheduler and incremental PS rates are
/// required to preserve exactly.
///
/// If an *intentional* model change breaks MatchesRecordedSeedGolden,
/// the test writes the new bytes to golden_determinism_actual.csv in the
/// working directory; update kGolden from that file after confirming the
/// change is wanted.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gridmon/core/experiment.hpp"
#include "gridmon/core/scenario_spec.hpp"
#include "gridmon/core/scenarios.hpp"

namespace gridmon::core {
namespace {

SweepPoint run_mini(const ScenarioSpec& spec, int users) {
  Testbed tb;
  auto scenario = make_scenario(tb, spec);
  scenario->prefill();
  UserWorkload w(tb, scenario->query_fn());
  w.spawn_users(users, tb.uc_names());
  tb.sampler().start();
  MeasureConfig mc;
  mc.warmup = 30;
  mc.duration = 120;
  return measure(tb, w, spec.server_host(), users, mc);
}

/// One fault-free point per experiment, serialized with full precision
/// so any drift in the event order shows up as a byte diff.
std::string mini_experiments_csv() {
  std::ostringstream csv;
  csv.precision(17);
  // Serialized through the shared MetricsReport schema: the core group
  // is exactly the historical six-column row the goldens were recorded
  // with, and the stream's precision(17) makes the bytes round-trip.
  auto add = [&](const std::string& name, const SweepPoint& p) {
    const std::vector<std::string> prefix{name};
    write_csv_row(csv, p, kMetricCore, prefix);
    csv << '\n';
  };

  {  // exp1: information server under concurrent users.
    ScenarioSpec spec = SpecBuilder().service(ServiceKind::Gris).build();
    add("exp1_gris_cache", run_mini(spec, 100));
  }
  {  // exp2: directory server under concurrent users.
    ScenarioSpec spec = SpecBuilder().service(ServiceKind::Giis).build();
    add("exp2_giis", run_mini(spec, 100));
  }
  {  // exp3: information server vs collector count.
    ScenarioSpec spec = SpecBuilder()
                            .service(ServiceKind::GrisNocache)
                            .collectors(50)
                            .build();
    add("exp3_gris_nocache_50c", run_mini(spec, 10));
  }
  {  // exp4: directory aggregation scale.
    ScenarioSpec spec = SpecBuilder()
                            .service(ServiceKind::ManagerAggregate)
                            .machines(50)
                            .collectors(11)
                            .build();
    add("exp4_manager_50m", run_mini(spec, 10));
  }
  return csv.str();
}

/// Computed once; the rerun test pays for the second computation.
const std::string& csv_once() {
  static const std::string csv = mini_experiments_csv();
  return csv;
}

// Recorded from the seed implementation's event order (which the
// overhauled engine reproduces byte-identically).
const char kGolden[] =
    "exp1_gris_cache,100,23.333333333333332,3.2834079531763702,"
    "0.304135190410803,11.214827890553401,0\n"
    "exp2_giis,100,44.116666666666667,1.2637566145994759,"
    "0.47127005340004879,32.451120917917159,0\n"
    "exp3_gris_nocache_50c,10,0.43333333333333335,21.225172869308722,"
    "2.937392428074491,100,0\n"
    "exp4_manager_50m,10,6.3666666666666663,0.56044118643673657,"
    "0.81100670155620525,44.739081679172614,0\n";

TEST(GoldenDeterminismTest, RerunIsByteIdentical) {
  EXPECT_EQ(csv_once(), mini_experiments_csv());
}

TEST(GoldenDeterminismTest, MatchesRecordedSeedGolden) {
  if (csv_once() != kGolden) {
    std::ofstream out("golden_determinism_actual.csv");
    out << csv_once();
  }
  EXPECT_EQ(csv_once(), kGolden)
      << "event-order drift vs the recorded seed-engine bytes; actual "
         "written to golden_determinism_actual.csv";
}

}  // namespace
}  // namespace gridmon::core
