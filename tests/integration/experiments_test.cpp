/// Integration tests: run miniature versions of the paper's experiments
/// end-to-end and assert the qualitative findings hold. These are the
/// executable form of the shape targets in DESIGN.md §3.

#include <gtest/gtest.h>

#include "gridmon/core/experiment.hpp"
#include "gridmon/core/scenario_spec.hpp"
#include "gridmon/core/scenarios.hpp"

namespace gridmon::core {
namespace {

MeasureConfig short_measure() {
  MeasureConfig mc;
  mc.warmup = 30;
  mc.duration = 120;
  return mc;
}

SweepPoint run_gris(int users, bool cache) {
  Testbed tb;
  ScenarioSpec spec =
      SpecBuilder()
          .service(cache ? ServiceKind::Gris : ServiceKind::GrisNocache)
          .build();
  auto scenario = make_scenario(tb, spec);
  UserWorkload w(tb, scenario->query_fn());
  w.spawn_users(users, tb.uc_names());
  tb.sampler().start();
  return measure(tb, w, "lucky7", users, short_measure());
}

TEST(Exp1Integration, CachingBeatsNoCacheByAnOrderOfMagnitude) {
  auto cached = run_gris(200, true);
  auto nocache = run_gris(200, false);
  // The paper: nocache throughput never exceeds ~2 q/s; cached scales.
  EXPECT_LT(nocache.throughput, 3.0);
  EXPECT_GT(cached.throughput, 10 * nocache.throughput);
  EXPECT_GT(nocache.response, 5 * cached.response);
  // nocache pegs the host CPU re-executing providers.
  EXPECT_GT(nocache.cpu, 90.0);
}

TEST(Exp1Integration, GrisCacheThroughputScalesNearLinearly) {
  auto p100 = run_gris(100, true);
  auto p300 = run_gris(300, true);
  ASSERT_GT(p100.throughput, 0);
  double ratio = p300.throughput / p100.throughput;
  EXPECT_GT(ratio, 2.0);  // ~3 for perfectly linear scaling
  // Response time stays roughly flat (the paper's "approximately 4 s").
  EXPECT_LT(p300.response, p100.response * 2);
}

TEST(Exp1Integration, AgentThroughputHitsSingleThreadCeiling) {
  auto run_agent = [](int users) {
    Testbed tb;
    ScenarioSpec spec =
        SpecBuilder().service(ServiceKind::Agent).collectors(11).build();
    auto scenario = make_scenario(tb, spec);
    UserWorkload w(tb, scenario->query_fn());
    w.spawn_users(users, tb.uc_names());
    tb.sampler().start();
    return measure(tb, w, "lucky4", users, short_measure());
  };
  auto p100 = run_agent(100);
  auto p400 = run_agent(400);
  // Plateau: quadrupling users does not raise throughput materially.
  EXPECT_LT(p400.throughput, p100.throughput * 1.3);
  // But response time grows.
  EXPECT_GT(p400.response, p100.response * 1.5);
}

TEST(Exp2Integration, DirectoryServersRankAsInThePaper) {
  const int kUsers = 200;
  SweepPoint giis, manager, registry;
  {
    Testbed tb;
    ScenarioSpec spec = SpecBuilder().service(ServiceKind::Giis).build();
    auto scenario = make_scenario(tb, spec);
    scenario->prefill();
    UserWorkload w(tb, scenario->query_fn());
    w.spawn_users(kUsers, tb.uc_names());
    tb.sampler().start();
    giis = measure(tb, w, "lucky0", kUsers, short_measure());
  }
  {
    Testbed tb;
    ScenarioSpec spec =
        SpecBuilder().service(ServiceKind::Manager).collectors(11).build();
    auto scenario = make_scenario(tb, spec);
    scenario->prefill();
    UserWorkload w(tb, scenario->query_fn());
    w.spawn_users(kUsers, tb.uc_names());
    tb.sampler().start();
    manager = measure(tb, w, "lucky3", kUsers, short_measure());
  }
  {
    Testbed tb;
    ScenarioSpec spec = SpecBuilder().service(ServiceKind::Registry).build();
    auto scenario = make_scenario(tb, spec);
    scenario->prefill();
    UserWorkload w(tb, scenario->query_fn());
    w.spawn_users(kUsers, tb.uc_names());
    tb.sampler().start();
    registry = measure(tb, w, "lucky1", kUsers, short_measure());
  }
  // "Both the MDS GIIS and Hawkeye Manager present good scalability...
  //  while R-GMA had slightly less" (lower throughput, higher response).
  EXPECT_GT(giis.throughput, registry.throughput * 2);
  EXPECT_GT(manager.throughput, registry.throughput * 2);
  EXPECT_GT(registry.response, giis.response);
  EXPECT_GT(registry.response, manager.response);
  // "the load of GIIS is nearly twice as bad as Hawkeye Manager" — the
  // indexed resident database beats the LDAP backend.
  EXPECT_GT(giis.cpu, 1.5 * manager.cpu);
  // Manager's single-threaded daemon keeps load1 below ~1.
  EXPECT_LT(manager.load1, 1.0);
}

TEST(Exp3Integration, CollectorsDegradeEveryServerButCacheHelps) {
  auto run_p = [](int providers, bool cache) {
    Testbed tb;
    ScenarioSpec spec =
        SpecBuilder()
            .service(cache ? ServiceKind::Gris : ServiceKind::GrisNocache)
            .collectors(providers)
            .build();
    auto scenario = make_scenario(tb, spec);
    UserWorkload w(tb, scenario->query_fn());
    w.spawn_users(10, tb.uc_names());
    tb.sampler().start();
    return measure(tb, w, "lucky7", providers, short_measure());
  };
  auto cache10 = run_p(10, true);
  auto cache90 = run_p(90, true);
  auto nocache90 = run_p(90, false);
  // Cached GRIS degrades mildly with 9x the collectors...
  EXPECT_GT(cache90.throughput, cache10.throughput * 0.5);
  // ...while nocache collapses below 1 query/sec with >10 s responses.
  EXPECT_LT(nocache90.throughput, 1.0);
  EXPECT_GT(nocache90.response, 10.0);
}

TEST(Exp4Integration, AggregationDegradesAndPartBeatsAll) {
  auto run_giis = [](int gris, QueryVariant variant) {
    Testbed tb;
    ScenarioSpec spec = SpecBuilder()
                            .service(ServiceKind::GiisAggregate)
                            .gris_count(gris)
                            .query(variant)
                            .build();
    auto scenario = make_scenario(tb, spec);
    scenario->prefill();
    UserWorkload w(tb, scenario->query_fn());
    w.spawn_users(10, tb.uc_names());
    tb.sampler().start();
    return measure(tb, w, "lucky0", gris, short_measure());
  };
  auto all10 = run_giis(10, QueryVariant::ScopeAll);
  auto all100 = run_giis(100, QueryVariant::ScopeAll);
  auto part100 = run_giis(100, QueryVariant::ScopePart);
  EXPECT_LT(all100.throughput, all10.throughput * 0.6);
  EXPECT_GT(all100.response, 2 * all10.response);
  // Asking for a portion scales further than asking for everything.
  EXPECT_GT(part100.throughput, all100.throughput);
  EXPECT_LT(part100.response, all100.response);
}

TEST(Exp4Integration, ManagerConstraintScanDegradesWithMachines) {
  auto run_mgr = [](int machines) {
    Testbed tb;
    ScenarioSpec spec = SpecBuilder()
                            .service(ServiceKind::ManagerAggregate)
                            .machines(machines)
                            .collectors(11)
                            .build();
    auto scenario = make_scenario(tb, spec);
    scenario->prefill();
    UserWorkload w(tb, scenario->query_fn());
    w.spawn_users(10, tb.uc_names());
    tb.sampler().start();
    return measure(tb, w, "lucky3", machines, short_measure());
  };
  auto m10 = run_mgr(10);
  auto m200 = run_mgr(200);
  EXPECT_LT(m200.throughput, m10.throughput * 0.7);
  EXPECT_GT(m200.response, m10.response);
  // Single-threaded daemon: load1 stays bounded regardless of pool size.
  EXPECT_LT(m200.load1, 1.5);
}

TEST(SoftStateIntegration, WholeStackSurvivesComponentDeath) {
  // A GIIS aggregating two GRIS; one dies; directory data ages out but
  // the service keeps answering with the survivor's data.
  Testbed tb;
  mds::GiisConfig config;
  config.registration_ttl = 60;
  config.cachettl = 5;  // re-pull frequently so the sweep takes effect
  mds::Giis giis(tb.network(), tb.host("lucky0"), tb.nic("lucky0"), "giis",
                 config);
  mds::Gris g1(tb.network(), tb.host("lucky3"), tb.nic("lucky3"), "g1",
               default_providers(5));
  mds::Gris g2(tb.network(), tb.host("lucky4"), tb.nic("lucky4"), "g2",
               default_providers(5));
  giis.add_registrant(g1);
  giis.add_registrant(g2);

  auto query_once = [](mds::Giis& g, net::Interface& c,
                       mds::MdsReply* out) -> sim::Task<void> {
    *out = co_await g.query(c, mds::QueryScope::All);
  };
  mds::MdsReply before, after;
  tb.sim().spawn(query_once(giis, tb.nic("uc01"), &before));
  tb.sim().run(tb.sim().now() + 60);
  EXPECT_EQ(before.entries, 40u);  // both GRIS visible

  giis.kill_registrant("g2");
  tb.sim().run(tb.sim().now() + 300);  // g2's soft state expires

  tb.sim().spawn(query_once(giis, tb.nic("uc01"), &after));
  tb.sim().run(tb.sim().now() + 60);
  EXPECT_TRUE(after.admitted);
  EXPECT_EQ(after.entries, 20u);  // only g1's 5 providers x 4 entries
  tb.sim().shutdown();
}

}  // namespace
}  // namespace gridmon::core
