#include "gridmon/net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gridmon/sim/simulation.hpp"
#include "gridmon/sim/task.hpp"

namespace gridmon::net {
namespace {

constexpr double kMega = 1e6;

struct Fixture {
  sim::Simulation sim;
  Network net{sim};

  Fixture() {
    net.add_site({.name = "anl",
                  .nic_bandwidth_bytes_per_s = 12.5 * kMega,
                  .one_way_latency = 0.0001});
    net.add_site({.name = "uc",
                  .nic_bandwidth_bytes_per_s = 12.5 * kMega,
                  .one_way_latency = 0.0001});
    net.add_wan("anl", "uc",
                {.bandwidth_bytes_per_s = 5 * kMega,
                 .one_way_latency = 0.005,
                 .per_flow_cap_bytes_per_s = 2.5 * kMega});
  }
};

sim::Task<void> send(Network& net, Interface& a, Interface& b, double bytes,
                     std::vector<double>* done) {
  co_await net.transfer(a, b, bytes);
  done->push_back(net.simulation().now());
}

TEST(NetworkTest, LanTransferTimeIsSerializationPlusLatency) {
  Fixture f;
  auto& a = f.net.attach("lucky1", "anl");
  auto& b = f.net.attach("lucky2", "anl");
  std::vector<double> done;
  // 1 MB + overhead over two 12.5 MB/s hops (tx then rx) + 0.1 ms.
  f.sim.spawn(send(f.net, a, b, 1.0 * kMega, &done));
  f.sim.run();
  double bytes = 1.0 * kMega + Network::kMessageOverheadBytes;
  double expected = 2 * bytes / (12.5 * kMega) + 0.0001;
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], expected, 1e-9);
}

TEST(NetworkTest, LoopbackIsFree) {
  Fixture f;
  auto& a = f.net.attach("lucky1", "anl");
  std::vector<double> done;
  f.sim.spawn(send(f.net, a, a, 100 * kMega, &done));
  f.sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 0.0);
}

TEST(NetworkTest, WanFlowIsCappedPerFlow) {
  Fixture f;
  auto& a = f.net.attach("lucky1", "anl");
  auto& b = f.net.attach("client1", "uc");
  std::vector<double> done;
  // 10 MB at a 2.5 MB/s per-flow cap dominates: >= 4 s.
  f.sim.spawn(send(f.net, a, b, 10 * kMega, &done));
  f.sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_GT(done[0], 4.0);
  EXPECT_LT(done[0], 6.0);
}

TEST(NetworkTest, ServerNicIsSharedBottleneck) {
  Fixture f;
  auto& server = f.net.attach("server", "anl");
  std::vector<double> done;
  const int n = 10;
  std::vector<Interface*> clients;
  for (int i = 0; i < n; ++i) {
    clients.push_back(&f.net.attach("c" + std::to_string(i), "anl"));
  }
  // Server sends 1 MB to each of 10 clients concurrently: its tx NIC is
  // the bottleneck, so total time ~ 10 MB / 12.5 MB/s = 0.8 s.
  for (auto* c : clients) f.sim.spawn(send(f.net, server, *c, 1.0 * kMega, &done));
  f.sim.run();
  ASSERT_EQ(done.size(), static_cast<std::size_t>(n));
  for (double t : done) EXPECT_NEAR(t, 0.8, 0.1);
}

TEST(NetworkTest, WanPipeSharedAcrossFlows) {
  Fixture f;
  std::vector<double> done;
  const int n = 4;
  // n senders at ANL to n receivers at UC, 5 MB each; per-flow cap would
  // allow 2.5 MB/s each = 10 MB/s total, but the pipe is 5 MB/s, so each
  // flow effectively gets 1.25 MB/s -> ~4 s.
  for (int i = 0; i < n; ++i) {
    auto& s = f.net.attach("s" + std::to_string(i), "anl");
    auto& r = f.net.attach("r" + std::to_string(i), "uc");
    f.sim.spawn(send(f.net, s, r, 5 * kMega, &done));
  }
  f.sim.run();
  ASSERT_EQ(done.size(), static_cast<std::size_t>(n));
  for (double t : done) {
    EXPECT_GT(t, 3.5);
    EXPECT_LT(t, 6.0);
  }
}

TEST(NetworkTest, LatencyLookup) {
  Fixture f;
  auto& a = f.net.attach("lucky1", "anl");
  auto& b = f.net.attach("lucky2", "anl");
  auto& c = f.net.attach("client", "uc");
  EXPECT_DOUBLE_EQ(f.net.latency(a, b), 0.0001);
  EXPECT_DOUBLE_EQ(f.net.latency(a, c), 0.005);
  EXPECT_DOUBLE_EQ(f.net.rtt(a, c), 0.01);
  EXPECT_DOUBLE_EQ(f.net.latency(a, a), 0.0);
}

TEST(NetworkTest, ConnectCostsOneRoundTrip) {
  Fixture f;
  auto& a = f.net.attach("lucky1", "anl");
  auto& c = f.net.attach("client", "uc");
  std::vector<double> done;
  auto conn = [](Network& net, Interface& x, Interface& y,
                 std::vector<double>* out) -> sim::Task<void> {
    co_await net.connect(x, y);
    out->push_back(net.simulation().now());
  };
  f.sim.spawn(conn(f.net, c, a, &done));
  f.sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 0.01, 0.001);  // dominated by 2x 5 ms
}

TEST(NetworkTest, UnknownHostThrows) {
  Fixture f;
  EXPECT_THROW(f.net.interface("ghost"), std::invalid_argument);
}

TEST(NetworkTest, DuplicateAttachThrows) {
  Fixture f;
  f.net.attach("h", "anl");
  EXPECT_THROW(f.net.attach("h", "anl"), std::invalid_argument);
}

TEST(NetworkTest, MissingWanThrows) {
  sim::Simulation sim;
  Network net(sim);
  net.add_site({.name = "a"});
  net.add_site({.name = "b"});
  auto& ia = net.attach("h1", "a");
  auto& ib = net.attach("h2", "b");
  EXPECT_THROW(net.latency(ia, ib), std::invalid_argument);
}

}  // namespace
}  // namespace gridmon::net
