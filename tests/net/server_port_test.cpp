#include "gridmon/net/server_port.hpp"

#include <gtest/gtest.h>

namespace gridmon::net {
namespace {

TEST(ServerPortTest, AdmitsUpToBacklog) {
  ServerPort port(3);
  EXPECT_TRUE(port.try_admit());
  EXPECT_TRUE(port.try_admit());
  EXPECT_TRUE(port.try_admit());
  EXPECT_FALSE(port.try_admit());
  EXPECT_EQ(port.in_flight(), 3);
  EXPECT_EQ(port.total_admitted(), 3u);
  EXPECT_EQ(port.total_refused(), 1u);
}

TEST(ServerPortTest, ReleaseReopensSlot) {
  ServerPort port(1);
  EXPECT_TRUE(port.try_admit());
  EXPECT_FALSE(port.try_admit());
  port.release();
  EXPECT_TRUE(port.try_admit());
  EXPECT_EQ(port.total_refused(), 1u);
}

TEST(ServerPortTest, SlotReleasesOnScopeExit) {
  ServerPort port(1);
  {
    ASSERT_TRUE(port.try_admit());
    AdmissionSlot slot(&port);
    EXPECT_EQ(port.in_flight(), 1);
  }
  EXPECT_EQ(port.in_flight(), 0);
}

TEST(ServerPortTest, MovedSlotReleasesOnce) {
  ServerPort port(2);
  ASSERT_TRUE(port.try_admit());
  AdmissionSlot a(&port);
  AdmissionSlot b = std::move(a);
  a.release();  // no-op: ownership moved
  EXPECT_EQ(port.in_flight(), 1);
  b.release();
  EXPECT_EQ(port.in_flight(), 0);
  b.release();  // idempotent
  EXPECT_EQ(port.in_flight(), 0);
}

TEST(ServerPortTest, DefaultSlotHoldsNothing) {
  AdmissionSlot slot;
  slot.release();  // harmless
}

}  // namespace
}  // namespace gridmon::net
