#include "gridmon/net/server_port.hpp"

#include <gtest/gtest.h>

#include "gridmon/sim/simulation.hpp"
#include "gridmon/sim/task.hpp"

namespace gridmon::net {
namespace {

TEST(ServerPortTest, AdmitsUpToBacklog) {
  sim::Simulation s;
  ServerPort port(s, 3);
  EXPECT_TRUE(port.try_admit());
  EXPECT_TRUE(port.try_admit());
  EXPECT_TRUE(port.try_admit());
  EXPECT_FALSE(port.try_admit());
  EXPECT_EQ(port.in_flight(), 3);
  EXPECT_EQ(port.total_admitted(), 3u);
  EXPECT_EQ(port.total_refused(), 1u);
}

TEST(ServerPortTest, ReleaseReopensSlot) {
  sim::Simulation s;
  ServerPort port(s, 1);
  EXPECT_TRUE(port.try_admit());
  EXPECT_FALSE(port.try_admit());
  port.release();
  EXPECT_TRUE(port.try_admit());
  EXPECT_EQ(port.total_refused(), 1u);
}

TEST(ServerPortTest, SlotReleasesOnScopeExit) {
  sim::Simulation s;
  ServerPort port(s, 1);
  {
    ASSERT_TRUE(port.try_admit());
    AdmissionSlot slot(&port);
    EXPECT_EQ(port.in_flight(), 1);
  }
  EXPECT_EQ(port.in_flight(), 0);
}

TEST(ServerPortTest, MovedSlotReleasesOnce) {
  sim::Simulation s;
  ServerPort port(s, 2);
  ASSERT_TRUE(port.try_admit());
  AdmissionSlot a(&port);
  AdmissionSlot b = std::move(a);
  a.release();  // no-op: ownership moved
  EXPECT_EQ(port.in_flight(), 1);
  b.release();
  EXPECT_EQ(port.in_flight(), 0);
  b.release();  // idempotent
  EXPECT_EQ(port.in_flight(), 0);
}

TEST(ServerPortTest, DefaultSlotHoldsNothing) {
  AdmissionSlot slot;
  slot.release();  // harmless
}

TEST(ServerPortTest, CrashRefusesUntilRestart) {
  sim::Simulation s;
  ServerPort port(s, 4);
  port.crash();
  EXPECT_FALSE(port.up());
  EXPECT_EQ(port.state(), PortState::Refusing);
  EXPECT_FALSE(port.try_admit());
  EXPECT_EQ(port.total_refused(), 1u);
  port.restart();
  EXPECT_TRUE(port.up());
  EXPECT_TRUE(port.try_admit());
}

TEST(ServerPortTest, AdmitSynchronousWhenUp) {
  sim::Simulation s;
  ServerPort port(s, 1);
  Admission first = Admission::TimedOut;
  Admission second = Admission::TimedOut;
  s.spawn([](ServerPort& p, Admission& a, Admission& b) -> sim::Task<void> {
    a = co_await p.admit(10.0);
    b = co_await p.admit(10.0);
  }(port, first, second));
  s.run(0.0);  // no time must pass: admit() completes synchronously
  EXPECT_EQ(first, Admission::Ok);
  EXPECT_EQ(second, Admission::Refused);
}

TEST(ServerPortTest, BlackholeTimesOutThenRecovers) {
  sim::Simulation s;
  ServerPort port(s, 4);
  port.crash(/*blackhole=*/true);
  EXPECT_EQ(port.state(), PortState::Blackhole);

  Admission hung = Admission::Ok;
  double hung_at = -1;
  s.spawn([](sim::Simulation& sim, ServerPort& p, Admission& out,
             double& when) -> sim::Task<void> {
    out = co_await p.admit(5.0);
    when = sim.now();
  }(s, port, hung, hung_at));

  Admission waited = Admission::Refused;
  s.spawn([](sim::Simulation& sim, ServerPort& p,
             Admission& out) -> sim::Task<void> {
    co_await sim.delay(1.0);
    out = co_await p.admit(30.0);  // restart at t=10 beats this deadline
  }(s, port, waited));

  s.schedule(10.0, [&] { port.restart(); });
  s.run(60.0);
  EXPECT_EQ(hung, Admission::TimedOut);
  EXPECT_DOUBLE_EQ(hung_at, 5.0);
  EXPECT_EQ(waited, Admission::Ok);
}

}  // namespace
}  // namespace gridmon::net
