/// WAN partition fault injection and its interaction with the soft-state
/// protocols built on top.

#include <gtest/gtest.h>

#include "gridmon/core/testbed.hpp"
#include "gridmon/mds/giis.hpp"
#include "gridmon/core/scenarios.hpp"
#include "gridmon/mds/gris.hpp"

namespace gridmon::net {
namespace {

using core::Testbed;

sim::Task<void> send(Network& net, Interface& a, Interface& b, double bytes,
                     std::vector<double>* done) {
  co_await net.transfer(a, b, bytes);
  done->push_back(net.simulation().now());
}

TEST(PartitionTest, TransferStallsUntilHeal) {
  Testbed tb;
  auto& net = tb.network();
  std::vector<double> done;
  net.set_wan_down("anl", "uc", true);
  tb.sim().spawn(send(net, tb.nic("uc01"), tb.nic("lucky0"), 1000, &done));
  tb.sim().run(30.0);
  EXPECT_TRUE(done.empty());  // stuck behind the partition
  net.set_wan_down("anl", "uc", false);
  tb.sim().run(40.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_GE(done[0], 30.0);
  tb.sim().shutdown();
}

TEST(PartitionTest, LanTrafficUnaffected) {
  Testbed tb;
  auto& net = tb.network();
  std::vector<double> done;
  net.set_wan_down("anl", "uc", true);
  tb.sim().spawn(send(net, tb.nic("lucky0"), tb.nic("lucky1"), 1000, &done));
  tb.sim().run(5.0);
  EXPECT_EQ(done.size(), 1u);
  tb.sim().shutdown();
}

TEST(PartitionTest, RepeatedPartitionsQueueAndDrain) {
  Testbed tb;
  auto& net = tb.network();
  std::vector<double> done;
  for (int i = 0; i < 5; ++i) {
    tb.sim().spawn(send(net, tb.nic("uc01"), tb.nic("lucky0"), 500, &done));
  }
  net.set_wan_down("anl", "uc", true);
  tb.sim().run(10.0);
  EXPECT_TRUE(done.empty());
  net.set_wan_down("anl", "uc", false);
  tb.sim().run(20.0);
  EXPECT_EQ(done.size(), 5u);
  // Partition again: link state queryable.
  net.set_wan_down("anl", "uc", true);
  EXPECT_TRUE(net.wan_down("anl", "uc"));
  net.set_wan_down("anl", "uc", false);
  EXPECT_FALSE(net.wan_down("uc", "anl"));  // order-insensitive
  tb.sim().shutdown();
}


TEST(PartitionTest, GiisFetchTimeoutSkipsUnreachableRegistrant) {
  // A GIIS whose registrant is stranded behind a partition must still
  // answer queries after its fetch timeout, with the reachable data.
  Testbed tb;
  mds::GiisConfig config;
  config.fetch_timeout = 20.0;
  config.registration_ttl = 1e9;  // keep the registration alive: the
                                  // fetch timeout is what we exercise
  mds::Giis giis(tb.network(), tb.host("lucky0"), tb.nic("lucky0"), "giis",
                 config);
  mds::Gris local(tb.network(), tb.host("lucky3"), tb.nic("lucky3"), "near",
                  core::default_providers(2));
  mds::Gris remote(tb.network(), tb.host("uc01"), tb.nic("uc01"), "far",
                   core::default_providers(2));
  giis.add_registrant(local);
  giis.add_registrant(remote);
  tb.network().set_wan_down("anl", "uc", true);

  auto run_query = [](mds::Giis& g, Interface& c,
                      mds::MdsReply* out) -> sim::Task<void> {
    *out = co_await g.query(c, mds::QueryScope::All);
  };
  mds::MdsReply reply;
  tb.sim().spawn(run_query(giis, tb.nic("lucky1"), &reply));
  tb.sim().run(60.0);
  EXPECT_TRUE(reply.admitted);
  EXPECT_EQ(reply.entries, 8u);  // the near GRIS's 2 providers x 4
  tb.sim().shutdown();
}

TEST(PartitionTest, SoftStateSurvivesIntraSitePartitionIrrelevance) {
  // A GIIS and its GRIS are both at ANL: a UC partition must not disturb
  // their registration soft state.
  Testbed tb;
  mds::Giis giis(tb.network(), tb.host("lucky0"), tb.nic("lucky0"), "giis");
  mds::Gris gris(tb.network(), tb.host("lucky3"), tb.nic("lucky3"), "g",
                 core::default_providers(2));
  giis.add_registrant(gris);
  tb.network().set_wan_down("anl", "uc", true);
  tb.sim().run(tb.sim().now() + 300);
  EXPECT_EQ(giis.live_registrant_count(), 1u);
  tb.sim().shutdown();
}

}  // namespace
}  // namespace gridmon::net
