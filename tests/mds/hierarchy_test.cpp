/// Tests for the multi-level GIIS hierarchy (paper Figure 1: "any GRIS
/// or GIIS can register with another") and the DN rebase machinery
/// underneath it.

#include <gtest/gtest.h>

#include "gridmon/core/testbed.hpp"
#include "gridmon/mds/giis.hpp"
#include "gridmon/mds/gris.hpp"

namespace gridmon::mds {
namespace {

using core::Testbed;

TEST(DnRebaseTest, MovesSubtree) {
  auto dn = ldap::Dn::parse("dev=x, host=h, o=grid");
  auto out = dn.rebased(ldap::Dn::parse("o=grid"),
                        ldap::Dn::parse("vo=a, o=grid"));
  EXPECT_EQ(out, ldap::Dn::parse("dev=x, host=h, vo=a, o=grid"));
}

TEST(DnRebaseTest, WholeDnRebasesToTarget) {
  auto dn = ldap::Dn::parse("o=grid");
  auto out = dn.rebased(ldap::Dn::parse("o=grid"),
                        ldap::Dn::parse("vo=a, o=grid"));
  EXPECT_EQ(out, ldap::Dn::parse("vo=a, o=grid"));
}

TEST(DnRebaseTest, NonSuffixThrows) {
  auto dn = ldap::Dn::parse("dev=x, o=grid");
  EXPECT_THROW(dn.rebased(ldap::Dn::parse("o=other"),
                          ldap::Dn::parse("o=grid")),
               ldap::DnError);
}

std::vector<ProviderSpec> providers(int n) {
  std::vector<ProviderSpec> specs;
  for (int i = 0; i < n; ++i) {
    ProviderSpec s;
    s.name = "ip" + std::to_string(i);
    s.entries = 4;
    s.bytes_per_entry = 800;
    s.cache_ttl = 1e18;
    specs.push_back(s);
  }
  return specs;
}

sim::Task<void> run_query(Giis& giis, net::Interface& client, MdsReply* out,
                          QueryScope scope = QueryScope::All) {
  *out = co_await giis.query(client, scope);
}

struct TwoLevel {
  Testbed tb;
  Giis root{tb.network(), tb.host("lucky0"), tb.nic("lucky0"), "root"};
  Giis mid_a{tb.network(), tb.host("lucky1"), tb.nic("lucky1"), "site-a"};
  Giis mid_b{tb.network(), tb.host("lucky3"), tb.nic("lucky3"), "site-b"};
  Gris g1{tb.network(), tb.host("lucky4"), tb.nic("lucky4"), "g1",
          providers(3)};
  Gris g2{tb.network(), tb.host("lucky5"), tb.nic("lucky5"), "g2",
          providers(3)};
  Gris g3{tb.network(), tb.host("lucky6"), tb.nic("lucky6"), "g3",
          providers(3)};

  TwoLevel() {
    mid_a.add_registrant(g1);
    mid_a.add_registrant(g2);
    mid_b.add_registrant(g3);
    root.add_registrant(mid_a);
    root.add_registrant(mid_b);
  }
  ~TwoLevel() { tb.sim().shutdown(); }
};

TEST(GiisHierarchyTest, RootSeesAllLeafData) {
  TwoLevel h;
  MdsReply reply;
  h.tb.sim().spawn(run_query(h.root, h.tb.nic("uc01"), &reply));
  h.tb.sim().run(h.tb.sim().now() + 120);
  EXPECT_TRUE(reply.admitted);
  // 3 GRIS x 3 providers x 4 entries of device data through two levels.
  EXPECT_EQ(reply.entries, 36u);
}

TEST(GiisHierarchyTest, DataLandsUnderVoSubtrees) {
  TwoLevel h;
  MdsReply reply;
  h.tb.sim().spawn(run_query(h.root, h.tb.nic("uc01"), &reply));
  h.tb.sim().run(h.tb.sim().now() + 120);
  // Root's tree: root + 2 VO entries + per-VO (hosts + devices).
  // site-a: vo + 2 hosts + 24 devices; site-b: vo + 1 host + 12 devices.
  EXPECT_EQ(h.root.entry_count(), 1u + (1 + 2 + 24) + (1 + 1 + 12));
}

TEST(GiisHierarchyTest, PartQueryCrossesLevels) {
  TwoLevel h;
  MdsReply reply;
  h.tb.sim().spawn(run_query(h.root, h.tb.nic("uc01"), &reply,
                             QueryScope::Part));
  h.tb.sim().run(h.tb.sim().now() + 120);
  // Provider "ip0" of each of the three GRIS: 3 x 4 entries.
  EXPECT_EQ(reply.entries, 12u);
}

TEST(GiisHierarchyTest, MidLevelDeathAgesOutAtRoot) {
  Testbed tb;
  GiisConfig config;
  config.registration_ttl = 60;
  config.cachettl = 20;  // root re-pulls so the sweep can take effect
  Giis root(tb.network(), tb.host("lucky0"), tb.nic("lucky0"), "root",
            config);
  Giis mid(tb.network(), tb.host("lucky1"), tb.nic("lucky1"), "mid");
  Gris leaf(tb.network(), tb.host("lucky4"), tb.nic("lucky4"), "leaf",
            providers(2));
  mid.add_registrant(leaf);
  root.add_registrant(mid);

  MdsReply before, after;
  tb.sim().spawn(run_query(root, tb.nic("uc01"), &before));
  tb.sim().run(tb.sim().now() + 60);
  EXPECT_EQ(before.entries, 8u);

  root.kill_registrant("mid");
  tb.sim().run(tb.sim().now() + 300);
  tb.sim().spawn(run_query(root, tb.nic("uc01"), &after));
  tb.sim().run(tb.sim().now() + 60);
  EXPECT_TRUE(after.admitted);
  EXPECT_EQ(after.entries, 0u);  // whole VO subtree swept
  tb.sim().shutdown();
}

TEST(GiisHierarchyTest, ThreeLevelsDeep) {
  Testbed tb;
  Giis top(tb.network(), tb.host("lucky0"), tb.nic("lucky0"), "top");
  Giis mid(tb.network(), tb.host("lucky1"), tb.nic("lucky1"), "mid");
  Giis low(tb.network(), tb.host("lucky3"), tb.nic("lucky3"), "low");
  Gris leaf(tb.network(), tb.host("lucky4"), tb.nic("lucky4"), "leaf",
            providers(2));
  low.add_registrant(leaf);
  mid.add_registrant(low);
  top.add_registrant(mid);

  MdsReply reply;
  tb.sim().spawn(run_query(top, tb.nic("uc01"), &reply));
  tb.sim().run(tb.sim().now() + 180);
  EXPECT_TRUE(reply.admitted);
  EXPECT_EQ(reply.entries, 8u);  // 2 providers x 4 entries, three hops up
  tb.sim().shutdown();
}

}  // namespace
}  // namespace gridmon::mds
