/// The general LDAP search API on GRIS and GIIS: caller-supplied
/// filters, attribute selection and size limits over the live service
/// pipeline.

#include <gtest/gtest.h>

#include <memory>

#include "gridmon/core/scenario_spec.hpp"
#include "gridmon/core/scenarios.hpp"
#include "gridmon/core/testbed.hpp"
#include "gridmon/mds/giis.hpp"
#include "gridmon/mds/gris.hpp"

namespace gridmon::mds {
namespace {

using core::Testbed;

/// The tests below drive the raw search() member API, so they reach the
/// concrete scenario types through the unified factory handle.
std::unique_ptr<core::Scenario> make_gris(Testbed& tb, int providers) {
  core::ScenarioSpec spec;
  spec.service = core::ServiceKind::Gris;
  spec.collectors = providers;
  return core::make_scenario(tb, spec);
}

sim::Task<void> run_search(Gris& g, net::Interface& c, SearchRequest req,
                           MdsReply* out) {
  *out = co_await g.search(c, std::move(req));
}

sim::Task<void> run_search(Giis& g, net::Interface& c, SearchRequest req,
                           MdsReply* out) {
  *out = co_await g.search(c, std::move(req));
}

TEST(SearchApiTest, FilterSelectsProviderSubset) {
  Testbed tb;
  auto base = make_gris(tb, 10);
  auto& scenario = static_cast<core::GrisScenario&>(*base);
  MdsReply reply;
  SearchRequest req;
  req.filter = "(|(Mds-provider-name=ip1)(Mds-provider-name=ip2))";
  tb.sim().spawn(run_search(*scenario.gris, tb.nic("uc01"), req, &reply));
  tb.sim().run(60.0);
  EXPECT_TRUE(reply.admitted);
  EXPECT_EQ(reply.entries, 8u);  // two providers x 4 entries
}

TEST(SearchApiTest, AttributeSelectionShrinksResponse) {
  Testbed tb;
  auto base = make_gris(tb, 10);
  auto& scenario = static_cast<core::GrisScenario&>(*base);
  MdsReply all, slim;
  SearchRequest full;
  SearchRequest narrow;
  narrow.attributes = {"Mds-provider-name"};
  tb.sim().spawn(run_search(*scenario.gris, tb.nic("uc01"), full, &all));
  tb.sim().run(60.0);
  tb.sim().spawn(run_search(*scenario.gris, tb.nic("uc01"), narrow, &slim));
  tb.sim().run(120.0);
  EXPECT_EQ(all.entries, slim.entries);
  EXPECT_LT(slim.response_bytes, all.response_bytes / 4);
  ASSERT_FALSE(slim.payload.empty());
  // Device entries keep the selected attribute; nothing keeps the bulky
  // padding attribute.
  std::size_t with_selected = 0;
  for (const auto& e : slim.payload) {
    if (e.has_attribute("Mds-provider-name")) ++with_selected;
    EXPECT_FALSE(e.has_attribute("Mds-data"));
  }
  EXPECT_GE(with_selected, 40u);  // the 10 providers x 4 device entries
}

TEST(SearchApiTest, SizeLimitTruncates) {
  Testbed tb;
  auto base = make_gris(tb, 10);
  auto& scenario = static_cast<core::GrisScenario&>(*base);
  MdsReply reply;
  SearchRequest req;
  req.size_limit = 7;
  tb.sim().spawn(run_search(*scenario.gris, tb.nic("uc01"), req, &reply));
  tb.sim().run(60.0);
  EXPECT_EQ(reply.entries, 7u);
}

TEST(SearchApiTest, GiisSearchSpansRegistrants) {
  Testbed tb;
  core::ScenarioSpec spec;
  spec.service = core::ServiceKind::Giis;
  spec.gris_count = 3;
  auto base = core::make_scenario(tb, spec);
  base->prefill();
  auto& scenario = static_cast<core::GiisScenario&>(*base);
  MdsReply reply;
  SearchRequest req;
  req.filter = "(objectclass=MdsHost)";
  tb.sim().spawn(run_search(*scenario.giis, tb.nic("uc01"), req, &reply));
  tb.sim().run(tb.sim().now() + 60);
  EXPECT_TRUE(reply.admitted);
  EXPECT_EQ(reply.entries, 3u);  // one host entry per registered GRIS
}

TEST(SearchApiTest, BadFilterRejectedBeforeService) {
  Testbed tb;
  auto base = make_gris(tb, 2);
  auto& scenario = static_cast<core::GrisScenario&>(*base);
  SearchRequest req;
  req.filter = "((broken";
  auto attempt = [](Gris& g, net::Interface& c, SearchRequest r,
                    bool* threw) -> sim::Task<void> {
    try {
      (void)co_await g.search(c, std::move(r));
    } catch (const ldap::FilterError&) {
      *threw = true;
    }
  };
  bool threw = false;
  tb.sim().spawn(attempt(*scenario.gris, tb.nic("uc01"), req, &threw));
  tb.sim().run(60.0);
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace gridmon::mds
