#include <gtest/gtest.h>

#include "gridmon/core/testbed.hpp"
#include "gridmon/mds/giis.hpp"
#include "gridmon/mds/gris.hpp"

namespace gridmon::mds {
namespace {

using core::Testbed;

sim::Task<void> run_query(Gris& gris, net::Interface& client, MdsReply* out,
                          QueryScope scope = QueryScope::All) {
  *out = co_await gris.query(client, scope);
}

sim::Task<void> run_query(Giis& giis, net::Interface& client, MdsReply* out,
                          QueryScope scope = QueryScope::All) {
  *out = co_await giis.query(client, scope);
}

std::vector<ProviderSpec> providers(int n) {
  std::vector<ProviderSpec> specs;
  for (int i = 0; i < n; ++i) {
    ProviderSpec s;
    s.name = "ip" + std::to_string(i);
    s.entries = 4;
    s.bytes_per_entry = 1000;
    specs.push_back(s);
  }
  return specs;
}

TEST(ProviderTest, EmitsRequestedEntries) {
  ProviderSpec spec;
  spec.name = "memory";
  spec.entries = 3;
  spec.bytes_per_entry = 500;
  auto entries =
      run_provider(spec, ldap::Dn::parse("Mds-Host-hn=lucky7, o=grid"), 1);
  ASSERT_EQ(entries.size(), 3u);
  for (const auto& e : entries) {
    EXPECT_TRUE(e.dn().is_descendant_of(ldap::Dn::parse("o=grid")));
    EXPECT_EQ(e.value("Mds-provider-name"), "memory");
    EXPECT_GE(e.wire_bytes(), 500);
  }
}

TEST(GrisTest, QueryReturnsAllProviderEntries) {
  Testbed tb;
  Gris gris(tb.network(), tb.host("lucky7"), tb.nic("lucky7"), "lucky7",
            providers(10));
  MdsReply reply;
  tb.sim().spawn(run_query(gris, tb.nic("uc01"), &reply));
  tb.sim().run();
  EXPECT_TRUE(reply.admitted);
  EXPECT_EQ(reply.entries, 40u);
  EXPECT_GT(reply.response_bytes, 40 * 900.0);
}

TEST(GrisTest, PartScopeReturnsOneProvider) {
  Testbed tb;
  Gris gris(tb.network(), tb.host("lucky7"), tb.nic("lucky7"), "lucky7",
            providers(10));
  MdsReply reply;
  tb.sim().spawn(run_query(gris, tb.nic("uc01"), &reply, QueryScope::Part));
  tb.sim().run();
  EXPECT_EQ(reply.entries, 4u);
}

TEST(GrisTest, CacheAvoidsProviderReexecution) {
  Testbed tb;
  Gris gris(tb.network(), tb.host("lucky7"), tb.nic("lucky7"), "lucky7",
            providers(10));
  MdsReply r1, r2;
  tb.sim().spawn(run_query(gris, tb.nic("uc01"), &r1));
  tb.sim().run();
  EXPECT_EQ(gris.provider_runs(), 10u);  // first query fills the cache
  EXPECT_FALSE(r1.cache_hit);
  tb.sim().spawn(run_query(gris, tb.nic("uc01"), &r2));
  tb.sim().run();
  EXPECT_EQ(gris.provider_runs(), 10u);  // served from cache
  EXPECT_TRUE(r2.cache_hit);
}

TEST(GrisTest, CacheExpiresAfterTtl) {
  Testbed tb;
  auto specs = providers(2);
  for (auto& s : specs) s.cache_ttl = 30.0;
  Gris gris(tb.network(), tb.host("lucky7"), tb.nic("lucky7"), "lucky7",
            specs);
  MdsReply reply;
  tb.sim().spawn(run_query(gris, tb.nic("uc01"), &reply));
  tb.sim().run();
  EXPECT_EQ(gris.provider_runs(), 2u);
  // Sit past the TTL, then query again.
  tb.sim().schedule(40.0, [] {});
  tb.sim().run();
  tb.sim().spawn(run_query(gris, tb.nic("uc01"), &reply));
  tb.sim().run();
  EXPECT_EQ(gris.provider_runs(), 4u);
}

TEST(GrisTest, NocacheReexecutesEveryQuery) {
  Testbed tb;
  GrisConfig config;
  config.cache_enabled = false;
  Gris gris(tb.network(), tb.host("lucky7"), tb.nic("lucky7"), "lucky7",
            providers(5), config);
  MdsReply reply;
  for (int i = 0; i < 3; ++i) {
    tb.sim().spawn(run_query(gris, tb.nic("uc01"), &reply));
    tb.sim().run();
  }
  EXPECT_EQ(gris.provider_runs(), 15u);
  EXPECT_FALSE(reply.cache_hit);
}

TEST(GrisTest, NocacheQueriesAreMuchSlower) {
  Testbed tb;
  Gris cached(tb.network(), tb.host("lucky7"), tb.nic("lucky7"), "cached",
              providers(10));
  GrisConfig nocache_cfg;
  nocache_cfg.cache_enabled = false;
  Gris nocache(tb.network(), tb.host("lucky6"), tb.nic("lucky6"), "nocache",
               providers(10), nocache_cfg);

  // Warm the cached GRIS.
  MdsReply r;
  tb.sim().spawn(run_query(cached, tb.nic("uc01"), &r));
  tb.sim().run();

  auto timed = [](Gris& g, net::Interface& c, double* out) -> sim::Task<void> {
    double t0 = g.host().simulation().now();
    (void)co_await g.query(c);
    *out = g.host().simulation().now() - t0;
  };
  double cached_time = 0, nocache_time = 0;
  tb.sim().spawn(timed(cached, tb.nic("uc01"), &cached_time));
  tb.sim().run();
  tb.sim().spawn(timed(nocache, tb.nic("uc02"), &nocache_time));
  tb.sim().run();
  // Cache hit pays the validation latency; nocache pays 10 fork/execs.
  EXPECT_GT(nocache_time, 0.5);
  EXPECT_GT(cached_time, 1.0);  // client tool + validation
  EXPECT_LT(cached_time, nocache_time + 3.0);
}

TEST(GrisTest, BacklogRefusesWhenFull) {
  Testbed tb;
  GrisConfig config;
  config.backlog = 2;
  config.cache_serve_latency = 50.0;  // park requests to fill the backlog
  Gris gris(tb.network(), tb.host("lucky7"), tb.nic("lucky7"), "lucky7",
            providers(1), config);
  // Warm cache first.
  MdsReply warm;
  tb.sim().spawn(run_query(gris, tb.nic("uc01"), &warm));
  tb.sim().run();

  std::vector<MdsReply> replies(5);
  for (int i = 0; i < 5; ++i) {
    tb.sim().spawn(run_query(gris, tb.nic("uc01"), &replies[i]));
  }
  tb.sim().run(20.0);
  int refused = 0;
  for (const auto& r : replies) {
    if (!r.admitted && r.entries == 0) ++refused;
  }
  EXPECT_GE(refused, 3);
  EXPECT_GE(gris.port().total_refused(), 3u);
}

TEST(GiisTest, AggregatesRegisteredGris) {
  Testbed tb;
  Giis giis(tb.network(), tb.host("lucky0"), tb.nic("lucky0"), "giis");
  std::vector<std::unique_ptr<Gris>> gris;
  for (const std::string host : {"lucky3", "lucky4", "lucky5"}) {
    gris.push_back(std::make_unique<Gris>(tb.network(), tb.host(host),
                                          tb.nic(host), host, providers(10)));
    giis.add_registrant(*gris.back());
  }
  MdsReply reply;
  tb.sim().spawn(run_query(giis, tb.nic("uc01"), &reply));
  tb.sim().run(300.0);
  EXPECT_TRUE(reply.admitted);
  EXPECT_EQ(reply.entries, 3u * 40u);  // all devices of all three GRIS
  EXPECT_EQ(giis.live_registrant_count(), 3u);
  tb.sim().shutdown();
}

TEST(GiisTest, PartQueryReturnsOneProviderPerGris) {
  Testbed tb;
  Giis giis(tb.network(), tb.host("lucky0"), tb.nic("lucky0"), "giis");
  Gris g3(tb.network(), tb.host("lucky3"), tb.nic("lucky3"), "lucky3",
          providers(10));
  Gris g4(tb.network(), tb.host("lucky4"), tb.nic("lucky4"), "lucky4",
          providers(10));
  giis.add_registrant(g3);
  giis.add_registrant(g4);
  MdsReply reply;
  tb.sim().spawn(run_query(giis, tb.nic("uc01"), &reply, QueryScope::Part));
  tb.sim().run(300.0);
  EXPECT_EQ(reply.entries, 2u * 4u);  // "ip0" slice of each GRIS
  tb.sim().shutdown();
}

TEST(GiisTest, DeadGrisAgesOutOfDirectory) {
  Testbed tb;
  GiisConfig config;
  config.registration_ttl = 60.0;
  config.cachettl = 1.0;  // force re-pull so the sweep runs
  Giis giis(tb.network(), tb.host("lucky0"), tb.nic("lucky0"), "giis",
            config);
  Gris g3(tb.network(), tb.host("lucky3"), tb.nic("lucky3"), "lucky3",
          providers(5));
  giis.add_registrant(g3);

  MdsReply reply;
  tb.sim().spawn(run_query(giis, tb.nic("uc01"), &reply));
  tb.sim().run(tb.sim().now() + 30);
  EXPECT_EQ(reply.entries, 20u);

  // Kill the GRIS's re-registration and let soft state expire.
  giis.kill_registrant("lucky3");
  tb.sim().run(tb.sim().now() + 200);
  EXPECT_EQ(giis.live_registrant_count(), 0u);

  tb.sim().spawn(run_query(giis, tb.nic("uc01"), &reply));
  tb.sim().run(tb.sim().now() + 30);
  EXPECT_EQ(reply.entries, 0u);  // data swept with the registration
  tb.sim().shutdown();
}

TEST(GiisTest, ReregistrationRefreshesSoftState) {
  Testbed tb;
  GiisConfig config;
  config.registration_ttl = 90.0;
  Giis giis(tb.network(), tb.host("lucky0"), tb.nic("lucky0"), "giis",
            config);
  Gris g3(tb.network(), tb.host("lucky3"), tb.nic("lucky3"), "lucky3",
          providers(2));
  giis.add_registrant(g3);
  // Far beyond the TTL: periodic re-registration keeps it alive.
  tb.sim().run(tb.sim().now() + 600);
  EXPECT_EQ(giis.live_registrant_count(), 1u);
  EXPECT_GT(giis.registrations_processed(), 10u);
  tb.sim().shutdown();
}

}  // namespace
}  // namespace gridmon::mds
