/// WAL framing and replay, exercised adversarially: the crash-at-every-byte
/// property truncates a log image at every offset and the byte-flip sweep
/// corrupts every position — in all cases replay must recover exactly the
/// clean prefix of records, never throw, and never resurrect a torn or
/// corrupt record.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gridmon/store/codec.hpp"
#include "gridmon/store/wal.hpp"

namespace gridmon::store {
namespace {

struct Applied {
  std::uint64_t seq;
  std::string payload;
  bool operator==(const Applied& o) const {
    return seq == o.seq && payload == o.payload;
  }
};

std::vector<Applied> replay_all(std::string_view image, ReplayResult* out) {
  std::vector<Applied> applied;
  ReplayResult r = replay(image, [&](std::uint64_t seq,
                                     std::string_view payload) {
    applied.push_back({seq, std::string(payload)});
  });
  if (out != nullptr) *out = r;
  return applied;
}

/// A log of records with varied sizes (including empty) and binary bytes.
std::vector<std::string> sample_payloads() {
  return {"",
          "a",
          "producer=ps0 table=cpuload",
          std::string(3, '\0') + "binary\xff\x7f",
          std::string(200, 'x'),
          "tail"};
}

std::string sample_image(std::vector<std::size_t>* boundaries = nullptr) {
  std::string image;
  std::uint64_t seq = 1;
  for (const std::string& p : sample_payloads()) {
    append_frame(image, seq++, p);
    if (boundaries != nullptr) boundaries->push_back(image.size());
  }
  return image;
}

TEST(WalTest, Crc32KnownVector) {
  // The IEEE CRC-32 check value ("123456789" -> 0xCBF43926).
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  // Incremental form agrees with one-shot.
  std::uint32_t inc = crc32_update(0, "12345");
  inc = crc32_update(inc, "6789");
  EXPECT_EQ(inc, 0xCBF43926u);
}

TEST(WalTest, FrameRoundTrip) {
  std::string image = sample_image();
  ReplayResult r;
  auto applied = replay_all(image, &r);
  auto payloads = sample_payloads();
  ASSERT_EQ(applied.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(applied[i].seq, i + 1);
    EXPECT_EQ(applied[i].payload, payloads[i]);
  }
  EXPECT_EQ(r.status, ReplayStatus::Ok);
  EXPECT_EQ(r.records, payloads.size());
  EXPECT_EQ(r.last_seq, payloads.size());
  EXPECT_EQ(r.valid_bytes, image.size());
}

TEST(WalTest, FrameSizeMatchesOverhead) {
  std::string image;
  append_frame(image, 7, "abc");
  EXPECT_EQ(image.size(), frame_overhead() + 3);
}

TEST(WalTest, WrongSequenceFailsCrc) {
  // The CRC covers the sequence bytes: re-framing the same payload under a
  // different seq must not replay under the original frame's CRC.
  std::string good;
  append_frame(good, 1, "payload");
  std::string tampered = good;
  tampered[4] = static_cast<char>(2);  // seq LSB: 1 -> 2
  ReplayResult r;
  auto applied = replay_all(tampered, &r);
  EXPECT_TRUE(applied.empty());
  EXPECT_EQ(r.status, ReplayStatus::Corrupt);
  EXPECT_EQ(r.valid_bytes, 0u);
}

TEST(WalTest, CrashAtEveryByte) {
  std::vector<std::size_t> boundaries;
  std::string image = sample_image(&boundaries);
  auto payloads = sample_payloads();

  for (std::size_t cut = 0; cut <= image.size(); ++cut) {
    std::string truncated = image.substr(0, cut);
    ReplayResult r;
    auto applied = replay_all(truncated, &r);  // must never throw

    // The records that survive are exactly the frames wholly before the
    // cut — a torn record is never resurrected.
    std::size_t whole = 0;
    while (whole < boundaries.size() && boundaries[whole] <= cut) ++whole;
    ASSERT_EQ(applied.size(), whole) << "cut=" << cut;
    for (std::size_t i = 0; i < whole; ++i) {
      EXPECT_EQ(applied[i].seq, i + 1);
      EXPECT_EQ(applied[i].payload, payloads[i]);
    }
    EXPECT_LE(r.valid_bytes, cut);
    bool at_boundary = cut == 0 || (whole > 0 && boundaries[whole - 1] == cut);
    EXPECT_EQ(r.status,
              at_boundary ? ReplayStatus::Ok : ReplayStatus::TornTail)
        << "cut=" << cut;
    EXPECT_EQ(r.valid_bytes, whole > 0 ? boundaries[whole - 1] : 0u);

    // Replaying the clean prefix again is a full clean parse — recovery's
    // truncate-and-carry-on converges.
    ReplayResult again;
    replay_all(truncated.substr(0, r.valid_bytes), &again);
    EXPECT_EQ(again.status, ReplayStatus::Ok);
    EXPECT_EQ(again.records, r.records);
  }
}

TEST(WalTest, ByteFlipSweep) {
  std::string image = sample_image();
  auto payloads = sample_payloads();
  for (std::size_t pos = 0; pos < image.size(); ++pos) {
    std::string flipped = image;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x5a);
    ReplayResult r;
    auto applied = replay_all(flipped, &r);  // must never throw
    EXPECT_NE(r.status, ReplayStatus::Ok) << "pos=" << pos;
    // Whatever replays must be a clean prefix of the original records:
    // corruption may truncate, it must never fabricate or reorder.
    ASSERT_LE(applied.size(), payloads.size());
    for (std::size_t i = 0; i < applied.size(); ++i) {
      EXPECT_EQ(applied[i].seq, i + 1) << "pos=" << pos;
      EXPECT_EQ(applied[i].payload, payloads[i]) << "pos=" << pos;
    }
  }
}

TEST(WalTest, DecoderTruncationReturnsFalse) {
  Encoder enc;
  enc.u32(7);
  enc.u64(9);
  enc.f64(2.5);
  enc.str("hello");
  std::string full = enc.take();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Decoder d(std::string_view(full).substr(0, cut));
    std::uint32_t a = 0;
    std::uint64_t b = 0;
    double c = 0;
    std::string s;
    // Whichever field the cut lands in must fail cleanly; everything
    // before it must still parse.
    bool ok = d.u32(a) && d.u64(b) && d.f64(c) && d.str(s);
    EXPECT_FALSE(ok) << "cut=" << cut;
  }
  Decoder d(full);
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  double c = 0;
  std::string s;
  EXPECT_TRUE(d.u32(a) && d.u64(b) && d.f64(c) && d.str(s));
  EXPECT_EQ(a, 7u);
  EXPECT_EQ(b, 9u);
  EXPECT_EQ(c, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(d.done());
}

}  // namespace
}  // namespace gridmon::store
