/// Crash/recovery semantics of the durability engine, from the raw Log up
/// through the three durable services: group-commit loss windows, torn
/// in-flight writes, table replay, and the Registry / Manager replaying
/// their directories orders of magnitude before the soft-state
/// re-registration baseline refills them.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "gridmon/core/scenarios.hpp"
#include "gridmon/core/testbed.hpp"
#include "gridmon/hawkeye/manager.hpp"
#include "gridmon/rdbms/database.hpp"
#include "gridmon/rgma/registry.hpp"
#include "gridmon/store/log.hpp"
#include "gridmon/store/table_store.hpp"

namespace gridmon {
namespace {

using store::DurabilityMode;

/// Minimal Durable client: recovered state is just the payload list.
struct VecClient final : store::Durable {
  std::vector<std::string> applied;

  void write_snapshot(store::Encoder& out) const override {
    out.u64(applied.size());
    for (const auto& s : applied) out.str(s);
  }
  void load_snapshot(store::Decoder& in) override {
    applied.clear();
    std::uint64_t n = 0;
    if (!in.u64(n)) return;
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string s;
      if (!in.str(s)) return;
      applied.push_back(s);
    }
  }
  void apply_record(store::Decoder& in) override {
    std::string s;
    if (in.str(s)) applied.push_back(s);
  }
};

std::string record(const std::string& s) {
  store::Encoder e;
  e.str(s);
  return e.take();
}

std::string dump_rows(const rdbms::Table& t) {
  std::ostringstream ss;
  t.scan([&](std::size_t id, const rdbms::Row& row) {
    ss << id << '|';
    for (const auto& v : row) ss << v.to_string() << ',';
    ss << '\n';
    return true;
  });
  return ss.str();
}

/// An append that never reaches its group-commit flush is lost — the
/// window is exactly the acknowledged-durability boundary.
TEST(StoreRecoveryTest, UnflushedAppendIsLostOnCrash) {
  core::Testbed tb;
  store::StoreConfig sc;
  sc.mode = DurabilityMode::Wal;
  VecClient client;
  store::Log log(tb.host("lucky1"), client, sc);
  log.start();

  log.append(record("lost"));
  log.crash();  // before the 5 ms window elapses
  EXPECT_TRUE(log.image().wal.empty());

  tb.sim().spawn(log.recover());
  tb.sim().run(1);
  EXPECT_FALSE(log.down());
  EXPECT_TRUE(client.applied.empty());

  // The re-opened log flushes normally.
  log.append(record("kept"));
  tb.sim().run(2);
  EXPECT_FALSE(log.image().wal.empty());
  EXPECT_GE(log.stats().flushes, 1u);
  tb.sim().shutdown();
}

/// Crash mid-write keeps exactly the bytes the platter reached; replay
/// truncates the torn frame and recovers the empty prefix.
TEST(StoreRecoveryTest, TornInFlightWriteIsTruncatedOnReplay) {
  core::Testbed tb;
  store::StoreConfig sc;
  sc.mode = DurabilityMode::Wal;
  sc.group_commit_window = 0.001;
  sc.write_bandwidth = 100;  // 1 s per 100-byte frame: crash lands mid-write
  VecClient client;
  store::Log log(tb.host("lucky1"), client, sc);
  log.start();

  log.append(record(std::string(80, 'r')));  // 84-byte payload, 100B frame
  tb.sim().run(0.5);  // flush began at t=0.001; the write is in flight
  log.crash();
  EXPECT_GT(log.image().wal.size(), 0u);
  EXPECT_LT(log.image().wal.size(), 100u);

  tb.sim().spawn(log.recover());
  tb.sim().run(5);  // waits behind the zombie write holding the spindle
  EXPECT_FALSE(log.down());
  EXPECT_TRUE(client.applied.empty());
  EXPECT_TRUE(log.image().wal.empty());  // torn tail truncated for good
  EXPECT_EQ(log.stats().torn_truncations, 1u);
  EXPECT_EQ(log.stats().recoveries, 1u);
  tb.sim().shutdown();
}

/// The TableStore bridge: journaled mutations (insert, update, erase,
/// vacuum — NULLs, ints, reals and text all crossing the codec) replay
/// into a byte-identical table.
TEST(StoreRecoveryTest, TableReplayRestoresExactRows) {
  core::Testbed tb;
  rdbms::Database db;
  db.execute(
      "CREATE TABLE producers (producer TEXT, tablename TEXT, load REAL, "
      "hits INTEGER)");
  rdbms::Table& t = db.table("producers");
  store::StoreConfig sc;
  sc.mode = DurabilityMode::Wal;
  store::TableStore ts(tb.host("lucky1"), t, sc);
  t.set_journal(&ts);
  ts.log().start();

  using rdbms::Value;
  t.insert({Value::text("ps0"), Value::text("cpuload"), Value::real(0.25),
            Value::integer(3)});
  t.insert({Value::text("ps1"), Value::text("memory"), Value::null(),
            Value::integer(0)});
  t.insert({Value::text("ps2"), Value::text("cpuload"), Value::real(1.5),
            Value::integer(9)});
  t.update_row(0, {Value::text("ps0"), Value::text("cpuload"),
                   Value::real(0.75), Value::integer(4)});
  t.erase_row(1);
  t.vacuum();
  tb.sim().run(1);  // let the group commit flush
  std::string before = dump_rows(t);
  ASSERT_EQ(t.row_count(), 2u);

  // Process death: the volatile table clears; the journal hooks fired by
  // the clearing are dropped because the log is down.
  ts.log().crash();
  std::vector<std::size_t> ids;
  t.scan([&](std::size_t id, const rdbms::Row&) {
    ids.push_back(id);
    return true;
  });
  for (std::size_t id : ids) t.erase_row(id);
  t.vacuum();
  ASSERT_EQ(t.row_count(), 0u);

  tb.sim().spawn(ts.log().recover());
  tb.sim().run(3);
  EXPECT_EQ(dump_rows(t), before);
  EXPECT_EQ(ts.log().stats().replayed_records, 6u);
  tb.sim().shutdown();
}

/// Durable Registry: 50 acknowledged registrations replay within seconds
/// of restart — well before the 45 s re-registration beat that is the
/// volatile baseline's only way back.
TEST(StoreRecoveryTest, RegistryReplayBeatsReRegistration) {
  core::TestbedConfig tc;
  tc.seed = 42;
  core::Testbed tb(tc);
  rgma::RegistryConfig rc;
  rc.store.mode = DurabilityMode::Wal;
  core::RegistryScenario scen(tb, 5, 10, rc);
  scen.prefill();
  tb.sim().run(30);
  std::size_t before = scen.registry->registered_count();
  ASSERT_EQ(before, 50u);
  ASSERT_NE(scen.registry->store_log(), nullptr);

  scen.registry->crash();
  EXPECT_EQ(scen.registry->registered_count(), 0u);
  tb.sim().run(32);
  scen.registry->restart();
  tb.sim().run(35);  // replay only: the next re-registration beat is ~45 s
  EXPECT_EQ(scen.registry->registered_count(), before);
  double rec = scen.registry->recovered_at();
  EXPECT_GE(rec, 32.0);
  EXPECT_LE(rec, 35.0);
  EXPECT_EQ(scen.registry->store_log()->stats().recoveries, 1u);
  EXPECT_EQ(scen.registry->store_log()->stats().replayed_records, 50u);
}

/// Volatile contrast: the same crash leaves the directory empty until the
/// producers' own soft-state beats refill it.
TEST(StoreRecoveryTest, VolatileRegistryWaitsForSoftState) {
  core::TestbedConfig tc;
  tc.seed = 42;
  core::Testbed tb(tc);
  core::RegistryScenario scen(tb, 5, 10, rgma::RegistryConfig{});
  scen.prefill();
  tb.sim().run(30);
  ASSERT_EQ(scen.registry->registered_count(), 50u);
  EXPECT_EQ(scen.registry->store_log(), nullptr);

  scen.registry->crash();
  tb.sim().run(32);
  scen.registry->restart();
  tb.sim().run(35);  // where the durable run was already whole again...
  EXPECT_EQ(scen.registry->registered_count(), 0u);
  EXPECT_LT(scen.registry->recovered_at(), 0.0);

  tb.sim().run(180);  // ...the volatile one waits out re-registration
  EXPECT_EQ(scen.registry->registered_count(), 50u);
  EXPECT_GE(scen.registry->recovered_at(), 40.0);
}

/// Durable Manager: the resident ClassAd store (snapshot + WAL tail)
/// replays on restart; ads survive with their contents intact.
TEST(StoreRecoveryTest, ManagerReplayRestoresAds) {
  core::TestbedConfig tc;
  tc.seed = 42;
  core::Testbed tb(tc);
  hawkeye::ManagerConfig mc;
  mc.store.mode = DurabilityMode::WalSnapshot;
  core::ManagerScenario scen(tb, 11, mc);
  scen.prefill();
  tb.sim().run(100);  // past the first 60 s snapshot
  std::size_t before = scen.manager->machine_count();
  ASSERT_GT(before, 0u);
  ASSERT_NE(scen.manager->store_log(), nullptr);
  EXPECT_GE(scen.manager->store_log()->stats().snapshots, 1u);
  const classad::ClassAd* ad = scen.manager->find_machine("lucky0.mcs.anl.gov");
  ASSERT_NE(ad, nullptr);
  std::string ad_before = ad->to_string();

  scen.manager->crash();
  EXPECT_EQ(scen.manager->machine_count(), 0u);
  tb.sim().run(102);
  scen.manager->restart();
  tb.sim().run(104);
  EXPECT_EQ(scen.manager->machine_count(), before);
  const classad::ClassAd* back =
      scen.manager->find_machine("lucky0.mcs.anl.gov");
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->to_string(), ad_before);
  double rec = scen.manager->recovered_at();
  EXPECT_GE(rec, 102.0);
  EXPECT_LE(rec, 104.0);
}

}  // namespace
}  // namespace gridmon
