/// The durability determinism contract: identical seed + plan produce
/// byte-identical WAL and snapshot images AND byte-identical recovered
/// state, for the table bridge, the Registry and the Manager. This is
/// what makes a crash-recovery sweep a regression artifact.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "gridmon/core/scenarios.hpp"
#include "gridmon/core/testbed.hpp"
#include "gridmon/hawkeye/manager.hpp"
#include "gridmon/rgma/registry.hpp"
#include "gridmon/store/log.hpp"
#include "gridmon/store/table_store.hpp"

namespace gridmon {
namespace {

using store::DurabilityMode;

struct DurableRun {
  std::string wal;
  std::string snapshot;
  std::uint64_t snapshot_seq = 0;
  std::string state;  // deterministic dump of the recovered service state
};

std::string dump_rows(const rdbms::Table& t) {
  std::ostringstream ss;
  t.scan([&](std::size_t id, const rdbms::Row& row) {
    ss << id << '|';
    for (const auto& v : row) ss << v.to_string() << ',';
    ss << '\n';
    return true;
  });
  return ss.str();
}

DurableRun capture(const store::Log& log, std::string state) {
  DurableRun r;
  r.wal = log.image().wal;
  r.snapshot = log.image().snapshot;
  r.snapshot_seq = log.image().snapshot_seq;
  r.state = std::move(state);
  return r;
}

/// Registry with wal+snapshot through a crash/restart cycle, driven purely
/// by the seeded scenario (servlet registration jitter comes from the
/// testbed Rng).
DurableRun run_registry(std::uint64_t seed) {
  core::TestbedConfig tc;
  tc.seed = seed;
  core::Testbed tb(tc);
  rgma::RegistryConfig rc;
  rc.store.mode = DurabilityMode::WalSnapshot;
  rc.store.snapshot_interval = 20;
  core::RegistryScenario scen(tb, 5, 10, rc);
  scen.prefill();
  tb.sim().run(50);  // snapshots at 20 and 40
  scen.registry->crash();
  tb.sim().run(52);
  scen.registry->restart();
  tb.sim().run(60);
  EXPECT_EQ(scen.registry->registered_count(), 50u);
  return capture(*scen.registry->store_log(),
                 dump_rows(scen.registry->database().table("producers")));
}

DurableRun run_manager(std::uint64_t seed) {
  core::TestbedConfig tc;
  tc.seed = seed;
  core::Testbed tb(tc);
  hawkeye::ManagerConfig mc;
  mc.store.mode = DurabilityMode::Wal;
  core::ManagerScenario scen(tb, 11, mc);
  scen.prefill();
  tb.sim().run(90);
  scen.manager->crash();
  tb.sim().run(92);
  scen.manager->restart();
  tb.sim().run(96);
  EXPECT_GT(scen.manager->machine_count(), 0u);
  std::ostringstream state;
  state << scen.manager->machine_count();
  for (const auto& name : tb.lucky_names()) {
    const classad::ClassAd* ad =
        scen.manager->find_machine(name + ".mcs.anl.gov");
    if (ad != nullptr) state << '|' << name << '=' << ad->to_string();
  }
  return capture(*scen.manager->store_log(), state.str());
}

TEST(StoreDeterminismTest, RegistrySameSeedSameBytes) {
  DurableRun a = run_registry(42);
  DurableRun b = run_registry(42);
  ASSERT_FALSE(a.wal.empty() && a.snapshot.empty());
  ASSERT_FALSE(a.state.empty());
  EXPECT_EQ(a.wal, b.wal);
  EXPECT_EQ(a.snapshot, b.snapshot);
  EXPECT_EQ(a.snapshot_seq, b.snapshot_seq);
  EXPECT_EQ(a.state, b.state);
}

TEST(StoreDeterminismTest, ManagerSameSeedSameBytes) {
  DurableRun a = run_manager(7);
  DurableRun b = run_manager(7);
  ASSERT_FALSE(a.wal.empty());
  ASSERT_FALSE(a.state.empty());
  EXPECT_EQ(a.wal, b.wal);
  EXPECT_EQ(a.snapshot, b.snapshot);
  EXPECT_EQ(a.state, b.state);
}

/// The WAL byte image is a pure function of the mutation sequence: the
/// same mutations through two independent TableStores produce identical
/// bytes, and replaying one store's image into the other's table produces
/// identical rows.
TEST(StoreDeterminismTest, TableWalIsPureFunctionOfMutations) {
  core::Testbed tb;
  auto drive = [](rdbms::Table& t) {
    using rdbms::Value;
    t.insert({Value::text("ps0"), Value::real(0.5)});
    t.insert({Value::text("ps1"), Value::real(1.25)});
    t.update_row(1, {Value::text("ps1"), Value::real(2.0)});
    t.erase_row(0);
  };
  store::StoreConfig sc;
  sc.mode = DurabilityMode::Wal;

  rdbms::Schema schema({{"producer", rdbms::ColumnType::Text},
                        {"load", rdbms::ColumnType::Real}});
  rdbms::Table t1("producers", schema);
  store::TableStore s1(tb.host("lucky1"), t1, sc);
  t1.set_journal(&s1);
  s1.log().start();
  drive(t1);

  rdbms::Table t2("producers", schema);
  store::TableStore s2(tb.host("lucky4"), t2, sc);
  t2.set_journal(&s2);
  s2.log().start();
  drive(t2);

  tb.sim().run(1);  // both flush
  ASSERT_FALSE(s1.log().image().wal.empty());
  EXPECT_EQ(s1.log().image().wal, s2.log().image().wal);
  EXPECT_EQ(dump_rows(t1), dump_rows(t2));
  tb.sim().shutdown();
}

}  // namespace
}  // namespace gridmon
