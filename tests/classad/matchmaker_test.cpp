#include "gridmon/classad/matchmaker.hpp"

#include <gtest/gtest.h>

#include "gridmon/classad/parser.hpp"

namespace gridmon::classad {
namespace {

ClassAd machine_ad(const std::string& name, double cpu_load, int memory,
                   const std::string& opsys = "LINUX") {
  ClassAd ad;
  ad.insert("MyType", "Machine");
  ad.insert("Name", name);
  ad.insert("CpuLoad", cpu_load);
  ad.insert("Memory", static_cast<std::int64_t>(memory));
  ad.insert("OpSys", opsys);
  ad.insert_text("Requirements", "true");
  return ad;
}

TEST(MatchmakerTest, SatisfiesConstraint) {
  auto ad = machine_ad("lucky1", 60.0, 512);
  auto hot = parse_expression("CpuLoad > 50");
  auto cold = parse_expression("CpuLoad > 90");
  EXPECT_TRUE(satisfies(ad, *hot));
  EXPECT_FALSE(satisfies(ad, *cold));
}

TEST(MatchmakerTest, UndefinedConstraintDoesNotMatch) {
  auto ad = machine_ad("lucky1", 60.0, 512);
  auto missing = parse_expression("NoSuchAttr > 50");
  EXPECT_FALSE(satisfies(ad, *missing));
}

TEST(MatchmakerTest, SymmetricMatchBothDirections) {
  ClassAd job;
  job.insert("MyType", "Job");
  job.insert("MinMemory", static_cast<std::int64_t>(256));
  job.insert_text("Requirements",
                  "TARGET.Memory >= MY.MinMemory && TARGET.OpSys == \"LINUX\"");
  ClassAd machine = machine_ad("lucky2", 10.0, 512);
  machine.insert_text("Requirements", "TARGET.MyType == \"Job\"");
  EXPECT_TRUE(symmetric_match(job, machine));

  ClassAd small_machine = machine_ad("lucky3", 10.0, 128);
  small_machine.insert_text("Requirements", "TARGET.MyType == \"Job\"");
  EXPECT_FALSE(symmetric_match(job, small_machine));
}

TEST(MatchmakerTest, MissingRequirementsFailsMatch) {
  ClassAd a, b;
  a.insert_text("Requirements", "true");
  EXPECT_FALSE(symmetric_match(a, b));
  EXPECT_FALSE(symmetric_match(b, a));
}

TEST(MatchmakerTest, OneWayTriggerMatch) {
  // The paper's example: kill Netscape when CPU load exceeds 50.
  ClassAd trigger;
  trigger.insert("MyType", "Trigger");
  trigger.insert("Job", "kill_netscape");
  trigger.insert_text("Requirements", "TARGET.CpuLoad > 50");

  auto busy = machine_ad("lucky4", 62.0, 512);
  auto idle = machine_ad("lucky5", 3.0, 512);
  EXPECT_TRUE(one_way_match(trigger, busy));
  EXPECT_FALSE(one_way_match(trigger, idle));
}

TEST(MatchmakerTest, RankPicksBestCandidate) {
  ClassAd request;
  request.insert_text("Requirements", "TARGET.Memory >= 128");
  request.insert_text("Rank", "TARGET.Memory");

  auto m1 = machine_ad("a", 0, 256);
  auto m2 = machine_ad("b", 0, 1024);
  auto m3 = machine_ad("c", 0, 512);
  m1.insert_text("Requirements", "true");
  m2.insert_text("Requirements", "true");
  m3.insert_text("Requirements", "true");

  std::vector<const ClassAd*> cands{&m1, &m2, &m3};
  EXPECT_EQ(best_match(request, cands), 1);
}

TEST(MatchmakerTest, BestMatchNoCandidates) {
  ClassAd request;
  request.insert_text("Requirements", "TARGET.Memory >= 4096");
  auto m1 = machine_ad("a", 0, 256);
  std::vector<const ClassAd*> cands{&m1};
  EXPECT_EQ(best_match(request, cands), -1);
  EXPECT_EQ(best_match(request, {}), -1);
}

TEST(MatchmakerTest, ScanReturnsMatchingIndices) {
  auto m1 = machine_ad("a", 80.0, 256);
  auto m2 = machine_ad("b", 10.0, 256);
  auto m3 = machine_ad("c", 95.0, 256);
  std::vector<const ClassAd*> ads{&m1, &m2, &m3};
  auto constraint = parse_expression("CpuLoad > 50");
  auto hits = scan(ads, *constraint);
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 2}));
}

TEST(MatchmakerTest, WorstCaseScanMatchesNothing) {
  // Exactly the paper's Experiment 4 setup for Hawkeye: a constraint met
  // by no machine forces a full scan.
  std::vector<ClassAd> ads;
  for (int i = 0; i < 100; ++i) {
    ads.push_back(machine_ad("m" + std::to_string(i), 10.0, 512));
  }
  std::vector<const ClassAd*> ptrs;
  for (auto& ad : ads) ptrs.push_back(&ad);
  auto constraint = parse_expression("CpuLoad > 1000");
  EXPECT_TRUE(scan(ptrs, *constraint).empty());
}

TEST(MatchmakerTest, RankNonNumericIsZero) {
  ClassAd ranker;
  ranker.insert_text("Rank", "\"not a number\"");
  ClassAd cand;
  EXPECT_DOUBLE_EQ(rank_of(ranker, cand), 0.0);
  ClassAd no_rank;
  EXPECT_DOUBLE_EQ(rank_of(no_rank, cand), 0.0);
}

}  // namespace
}  // namespace gridmon::classad
