/// Parameterized/property suites for the ClassAd engine: algebraic laws
/// of the four-valued logic, parse/print round-trips over a corpus, and
/// matchmaking symmetry.

#include <gtest/gtest.h>

#include <string>

#include "gridmon/classad/classad.hpp"
#include "gridmon/classad/matchmaker.hpp"
#include "gridmon/classad/parser.hpp"

namespace gridmon::classad {
namespace {

Value eval_text(const std::string& text) {
  auto e = parse_expression(text);
  EvalContext ctx;
  return e->evaluate(ctx);
}

// ---- logic laws over all value literals ----

const char* kLogicLiterals[] = {"TRUE", "FALSE", "UNDEFINED", "ERROR",
                                "1", "0"};

class LogicLaws
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(LogicLaws, AndOrAreCommutative) {
  auto [a, b] = GetParam();
  std::string ab = std::string(a) + " && " + b;
  std::string ba = std::string(b) + " && " + a;
  EXPECT_EQ(eval_text(ab).to_string(), eval_text(ba).to_string()) << ab;
  ab = std::string(a) + " || " + b;
  ba = std::string(b) + " || " + a;
  EXPECT_EQ(eval_text(ab).to_string(), eval_text(ba).to_string()) << ab;
}

TEST_P(LogicLaws, DeMorgan) {
  auto [a, b] = GetParam();
  std::string lhs = "!(" + std::string(a) + " && " + b + ")";
  std::string rhs = "(!" + std::string(a) + ") || (!" + b + ")";
  EXPECT_EQ(eval_text(lhs).to_string(), eval_text(rhs).to_string()) << lhs;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, LogicLaws,
    ::testing::Combine(::testing::ValuesIn(kLogicLiterals),
                       ::testing::ValuesIn(kLogicLiterals)));

// ---- meta-equality totality: =?= never yields UNDEFINED/ERROR ----

const char* kAllLiterals[] = {"TRUE",     "FALSE", "UNDEFINED", "ERROR",
                              "3",        "3.5",   "\"str\"",   "-1",
                              "0.0",      "\"\"",  "42"};

class MetaEqualsTotal
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(MetaEqualsTotal, AlwaysBoolean) {
  auto [a, b] = GetParam();
  Value v = eval_text(std::string(a) + " =?= " + b);
  EXPECT_TRUE(v.is_boolean()) << a << " =?= " << b;
  Value n = eval_text(std::string(a) + " =!= " + b);
  EXPECT_TRUE(n.is_boolean());
  EXPECT_NE(v.as_boolean(), n.as_boolean());
}

TEST_P(MetaEqualsTotal, ReflexiveOnIdenticalLiterals) {
  auto [a, b] = GetParam();
  (void)b;
  Value v = eval_text(std::string(a) + " =?= " + a);
  EXPECT_TRUE(v.as_boolean()) << a;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, MetaEqualsTotal,
    ::testing::Combine(::testing::ValuesIn(kAllLiterals),
                       ::testing::ValuesIn(kAllLiterals)));

// ---- parse/print round-trip over an expression corpus ----

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, PrintThenParseIsStable) {
  auto e1 = parse_expression(GetParam());
  std::string p1 = e1->to_string();
  auto e2 = parse_expression(p1);
  EXPECT_EQ(p1, e2->to_string());
}

TEST_P(RoundTrip, CloneEvaluatesIdentically) {
  ClassAd ad;
  ad.insert("Memory", static_cast<std::int64_t>(512));
  ad.insert("CpuLoad", 0.3);
  ad.insert("OpSys", "LINUX");
  auto e = parse_expression(GetParam());
  auto c = e->clone();
  EXPECT_EQ(ad.evaluate_expr(*e).to_string(),
            ad.evaluate_expr(*c).to_string());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTrip,
    ::testing::Values(
        "1 + 2 * 3 - 4 / 2 % 3",
        "Memory >= 256 && OpSys == \"LINUX\"",
        "TARGET.CpuLoad > MY.Threshold",
        "(a < b) ? strcat(\"lo\", \"w\") : toUpper(\"high\")",
        "isUndefined(x) || isError(y / 0)",
        "-(-(3)) + +4",
        "min(max(1, 2), floor(3.7))",
        "x =?= UNDEFINED && y =!= ERROR",
        "substr(\"abcdef\", 1 + 1, size(\"ab\"))",
        "((((1))))",
        "true && false || true && !false"));

// ---- matchmaking properties ----

TEST(MatchmakingProperty, SymmetricMatchIsSymmetric) {
  ClassAd job, machine;
  job.insert("MyType", "Job");
  job.insert("MinMemory", static_cast<std::int64_t>(128));
  job.insert_text("Requirements", "TARGET.Memory >= MY.MinMemory");
  machine.insert("MyType", "Machine");
  machine.insert("Memory", static_cast<std::int64_t>(256));
  machine.insert_text("Requirements", "TARGET.MyType == \"Job\"");
  EXPECT_EQ(symmetric_match(job, machine), symmetric_match(machine, job));
  EXPECT_TRUE(symmetric_match(job, machine));
}

TEST(MatchmakingProperty, ScanEqualsIndividualSatisfies) {
  std::vector<ClassAd> ads;
  for (int i = 0; i < 25; ++i) {
    ClassAd ad;
    ad.insert("CpuLoad", 4.0 * i);
    ads.push_back(std::move(ad));
  }
  std::vector<const ClassAd*> ptrs;
  for (auto& ad : ads) ptrs.push_back(&ad);
  auto constraint = parse_expression("CpuLoad > 50");
  auto hits = scan(ptrs, *constraint);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < ads.size(); ++i) {
    if (satisfies(ads[i], *constraint)) {
      ASSERT_LT(expected, hits.size());
      EXPECT_EQ(hits[expected], i);
      ++expected;
    }
  }
  EXPECT_EQ(hits.size(), expected);
}

}  // namespace
}  // namespace gridmon::classad
