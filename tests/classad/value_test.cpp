#include "gridmon/classad/value.hpp"

#include <gtest/gtest.h>

namespace gridmon::classad {
namespace {

TEST(ValueTest, DefaultIsUndefined) {
  Value v;
  EXPECT_TRUE(v.is_undefined());
  EXPECT_TRUE(v.is_exceptional());
  EXPECT_FALSE(v.is_number());
}

TEST(ValueTest, FactoryTypes) {
  EXPECT_TRUE(Value::error().is_error());
  EXPECT_TRUE(Value::boolean(true).is_boolean());
  EXPECT_TRUE(Value::integer(3).is_integer());
  EXPECT_TRUE(Value::real(3.5).is_real());
  EXPECT_TRUE(Value::string("x").is_string());
  EXPECT_TRUE(Value::integer(3).is_number());
  EXPECT_TRUE(Value::real(3.5).is_number());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::integer(-7).as_integer(), -7);
  EXPECT_DOUBLE_EQ(Value::real(2.25).as_real(), 2.25);
  EXPECT_EQ(Value::string("abc").as_string(), "abc");
  EXPECT_TRUE(Value::boolean(true).as_boolean());
  EXPECT_DOUBLE_EQ(Value::integer(4).as_number(), 4.0);
  EXPECT_DOUBLE_EQ(Value::real(4.5).as_number(), 4.5);
}

TEST(ValueTest, ToStringLiteralForms) {
  EXPECT_EQ(Value::undefined().to_string(), "UNDEFINED");
  EXPECT_EQ(Value::error().to_string(), "ERROR");
  EXPECT_EQ(Value::boolean(true).to_string(), "TRUE");
  EXPECT_EQ(Value::boolean(false).to_string(), "FALSE");
  EXPECT_EQ(Value::integer(42).to_string(), "42");
  EXPECT_EQ(Value::real(2.0).to_string(), "2.0");
  EXPECT_EQ(Value::string("hi").to_string(), "\"hi\"");
}

TEST(ValueTest, StringEscaping) {
  EXPECT_EQ(Value::string("a\"b").to_string(), "\"a\\\"b\"");
  EXPECT_EQ(Value::string("a\\b").to_string(), "\"a\\\\b\"");
}

TEST(ValueTest, StructuralEquality) {
  EXPECT_EQ(Value::integer(3), Value::integer(3));
  EXPECT_FALSE(Value::integer(3) == Value::real(3.0));
  EXPECT_EQ(Value::undefined(), Value::undefined());
  EXPECT_FALSE(Value::string("A") == Value::string("a"));  // case-sensitive
}

}  // namespace
}  // namespace gridmon::classad
